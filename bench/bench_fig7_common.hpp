// Shared driver for Figure 7(a)/(b): end-to-end inference latency of the
// DGL-substitute (fp32) vs QGTC at 2/4/8/16/32 bits over the Table-1
// datasets. One epoch = forward pass over every subgraph batch (the paper's
// reported time per epoch, preprocessing excluded).
#pragma once

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "gnn/model.hpp"

namespace qgtc::bench {

/// The paper's bitwidth grid; "32" executes as 31 planes (int32 carries 31
/// magnitude bits — documented in EXPERIMENTS.md).
inline const std::vector<std::pair<std::string, int>>& fig7_bit_grid() {
  static const std::vector<std::pair<std::string, int>> grid = {
      {"QGTC (2-bit)", 2},   {"QGTC (4-bit)", 4},   {"QGTC (8-bit)", 8},
      {"QGTC (16-bit)", 16}, {"QGTC (32-bit)", 31},
  };
  return grid;
}

/// Times one inference epoch (seconds), optionally capping timed batches and
/// extrapolating to the full epoch.
template <typename Fn>
double time_epoch(const std::vector<core::QgtcEngine::BatchRef>& data,
                  i64 max_batches, Fn&& per_batch) {
  const i64 usable =
      max_batches > 0 ? std::min<i64>(max_batches, static_cast<i64>(data.size()))
                      : static_cast<i64>(data.size());
  // Warm-up pass over the timed subset.
  for (i64 i = 0; i < usable; ++i) per_batch(*data[static_cast<std::size_t>(i)], i);
  // Min over repetitions: robust against scheduler/frequency noise on
  // shared hosts (matches the paper's best-of-averaged-rounds spirit).
  double best = 1e300;
  Timer total;
  do {
    Timer t;
    for (i64 i = 0; i < usable; ++i) per_batch(*data[static_cast<std::size_t>(i)], i);
    best = std::min(best, t.seconds());
  } while (total.seconds() < 0.6);
  return best * static_cast<double>(data.size()) / static_cast<double>(usable);
}

inline void run_fig7(gnn::ModelKind kind, i64 hidden_dim) {
  using core::TablePrinter;
  const i64 max_batches = env_i64("QGTC_MAX_BATCHES", quick() ? 8 : 0);

  JsonReport json(kind == gnn::ModelKind::kClusterGCN ? "fig7a_cluster_gcn"
                                                      : "fig7b_batched_gin",
                  env_flag("QGTC_JSON"));
  json.meta("model", gnn::model_name(kind));
  json.meta("hidden_dim", static_cast<double>(hidden_dim));

  std::vector<std::string> headers = {"Dataset", "DGL (fp32) ms"};
  for (const auto& [label, bits] : fig7_bit_grid()) {
    (void)bits;
    headers.push_back(label + " ms");
  }
  headers.push_back("best speedup");
  TablePrinter table(headers);

  double geo_speedup = 1.0;
  int n_rows = 0;
  for (const auto& spec : bench_datasets()) {
    const Dataset ds = generate_dataset(spec);

    core::EngineConfig ecfg;
    ecfg.model.kind = kind;
    ecfg.model.num_layers = 3;
    ecfg.model.in_dim = spec.feature_dim;
    ecfg.model.hidden_dim = hidden_dim;
    ecfg.model.out_dim = spec.num_classes;
    ecfg.model.feat_bits = 2;  // placeholder; per-bit models built below
    ecfg.model.weight_bits = 2;
    ecfg.num_partitions = 1500;
    ecfg.batch_size = 16;
    const core::QgtcEngine engine(ds, ecfg);
    const auto& data = engine.batch_data();

    // DGL-substitute fp32 path (sparse SpMM + dense GEMM per batch).
    const gnn::QgtcModel& any_model = engine.model();
    const double dgl_s = time_epoch(data, max_batches, [&](const auto& bd, i64) {
      (void)any_model.forward_fp32(bd.local, bd.features);
    });

    std::vector<std::string> row = {spec.name, ms(dgl_s)};
    std::vector<std::pair<std::string, double>> json_nums = {
        {"dgl_fp32_ms", dgl_s * 1e3}};
    double best = 0.0;
    for (const auto& [label, bits] : fig7_bit_grid()) {
      (void)label;
      gnn::GnnConfig mcfg = ecfg.model;
      mcfg.feat_bits = bits;
      mcfg.weight_bits = bits;
      gnn::QgtcModel model = gnn::QgtcModel::create(mcfg, ecfg.seed);
      model.calibrate(data.front()->adj, data.front()->features);
      // Host-side packing happens before transfer (§4.6) and is untimed,
      // like the paper's excluded preprocessing. Only the timed subset needs
      // packing.
      const i64 n_pack = max_batches > 0
                             ? std::min<i64>(max_batches, static_cast<i64>(data.size()))
                             : static_cast<i64>(data.size());
      std::vector<StackedBitTensor> inputs;
      inputs.reserve(static_cast<std::size_t>(n_pack));
      for (i64 i = 0; i < n_pack; ++i) {
        inputs.push_back(model.prepare_input(data[static_cast<std::size_t>(i)]->features));
      }
      const double q_s = time_epoch(data, max_batches, [&](const auto& bd, i64 i) {
        (void)model.forward_prepared(bd.adj, &bd.tile_map,
                                     inputs[static_cast<std::size_t>(i)]);
      });
      row.push_back(ms(q_s));
      json_nums.emplace_back("qgtc_" + std::to_string(bits) + "bit_ms",
                             q_s * 1e3);
      best = std::max(best, dgl_s / q_s);
    }
    row.push_back(TablePrinter::fmt(best, 2) + "x");
    table.add_row(std::move(row));
    json_nums.emplace_back("best_speedup", best);
    json.add_row({{"dataset", spec.name}}, json_nums);
    geo_speedup *= best;
    ++n_rows;
    std::cerr << "  [done] " << spec.name << "\n";
  }
  table.print(std::cout);
  if (n_rows > 0) {
    std::cout << "\nGeometric-mean best speedup vs DGL(fp32): "
              << TablePrinter::fmt(std::pow(geo_speedup, 1.0 / n_rows), 2)
              << "x  (paper: ~"
              << (kind == gnn::ModelKind::kClusterGCN ? "2.6" : "2.8")
              << "x average)\n";
  }
  if (max_batches > 0) {
    std::cout << "(timed on first " << max_batches
              << " batches per epoch, extrapolated; QGTC_MAX_BATCHES=0 for full)\n";
  }
}

}  // namespace qgtc::bench
