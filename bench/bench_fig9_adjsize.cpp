// Figure 9: adjacency-matrix-size impact — 1-bit BMM (A x X, both 1-bit)
// throughput in TFLOPs as N sweeps 128..32768 and D sweeps 16..1024.
// Expected shape: little growth at small N (under-utilisation), steep rise
// through mid sizes, saturation at large N; larger D => higher TFLOPs.
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "kernels/bmm.hpp"

int main() {
  using namespace qgtc;
  using core::TablePrinter;

  bench::print_banner(
      "Figure 9 — adjacency matrix size impact (1-bit BMM TFLOPs)",
      "throughput scales with N, saturates past ~16k; larger D utilises the "
      "substrate better");

  std::vector<i64> ns = {128, 256, 512, 1024, 2048, 4096, 8192, 16384};
  if (bench::full_scale()) ns.push_back(32768);
  if (bench::quick()) ns.resize(5);
  const std::vector<i64> dims = bench::quick()
                                    ? std::vector<i64>{16, 64}
                                    : std::vector<i64>{16, 32, 64, 128, 256, 512, 1024};

  std::vector<std::string> headers = {"N \\ D"};
  for (const i64 d : dims) headers.push_back(std::to_string(d));
  TablePrinter table(headers);

  Rng rng(777);
  for (const i64 n : ns) {
    // 50 % random density; zero-tile jumping off — this figure measures raw
    // BMM scaling, not sparsity exploitation.
    BitMatrix a(n, n, BitLayout::kRowMajorK);
    for (i64 w = 0; w < a.lines() * a.k_words(); ++w) {
      a.data()[w] = static_cast<u32>(rng.next_u64());
    }
    std::vector<std::string> row = {std::to_string(n)};
    for (const i64 d : dims) {
      BitMatrix b(n, d, BitLayout::kColMajorK);
      for (i64 w = 0; w < b.lines() * b.k_words(); ++w) {
        b.data()[w] = static_cast<u32>(rng.next_u64());
      }
      MatrixI32 c = make_padded_accumulator(a, b);
      const double s = time_it([&] { bmm_accumulate(a, b, c); },
                               n >= 8192 ? 0.05 : 0.15, 1);
      row.push_back(TablePrinter::fmt(bench::tflops(n, d, s), 2));
    }
    table.add_row(std::move(row));
    std::cerr << "  [done] N=" << n << "\n";
  }
  table.print(std::cout);
  if (!bench::full_scale()) {
    std::cout << "\n(N=32768 omitted by default; QGTC_FULL_SCALE=1 to include)\n";
  }
  return 0;
}
