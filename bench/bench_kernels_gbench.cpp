// google-benchmark microbenchmarks for the kernel stack: 1-bit BMM,
// any-bitwidth composition, fused epilogues, packing, and the baseline GEMMs.
// Complements the table-style harness with statistically robust per-kernel
// numbers (run with --benchmark_filter=... for a subset).
#include <benchmark/benchmark.h>

#include "baselines/dgl_fp32.hpp"
#include "baselines/int8_gemm.hpp"
#include "bittensor/stacked.hpp"
#include "common/rng.hpp"
#include "kernels/anybit_mm.hpp"

namespace {

using namespace qgtc;

MatrixI32 random_codes(u64 seed, i64 rows, i64 cols, int bits) {
  Rng rng(seed);
  MatrixI32 m(rows, cols);
  const u64 range = u64{1} << bits;
  for (i64 i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<i32>(rng.next_below(range));
  }
  return m;
}

void BM_Bmm1Bit(benchmark::State& state) {
  const i64 n = state.range(0), d = state.range(1);
  const MatrixI32 a = random_codes(1, n, n, 1);
  const MatrixI32 b = random_codes(2, n, d, 1);
  const BitMatrix pa = pack_nonzero(a, BitLayout::kRowMajorK);
  const BitMatrix pb = pack_nonzero(b, BitLayout::kColMajorK);
  MatrixI32 c = make_padded_accumulator(pa, pb);
  for (auto _ : state) {
    c.fill(0);
    bmm_accumulate(pa, pb, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["TFLOPs"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * static_cast<double>(n) * static_cast<double>(d) / 1e12,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Bmm1Bit)->Args({1024, 64})->Args({2048, 64})->Args({4096, 128});

void BM_AnyBitComposed(benchmark::State& state) {
  const i64 n = 1024, d = 64;
  const int bits = static_cast<int>(state.range(0));
  const MatrixI32 a = random_codes(3, n, n, 1);
  const MatrixI32 x = random_codes(4, n, d, bits);
  const BitMatrix pa = pack_nonzero(a, BitLayout::kRowMajorK);
  const auto px = StackedBitTensor::decompose(x, bits, BitLayout::kColMajorK);
  for (auto _ : state) {
    auto out = aggregate_1bit(pa, px, ReuseMode::kCrossTile);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["bit_planes"] = bits;
}
BENCHMARK(BM_AnyBitComposed)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ZeroTileJump(benchmark::State& state) {
  // Block-diagonal adjacency: ~1/8 tiles non-zero; jumping on/off.
  const i64 n = 4096, d = 64;
  const bool jump = state.range(0) != 0;
  MatrixI32 a(n, n, 0);
  Rng rng(5);
  const i64 block = n / 8;
  for (i64 bidx = 0; bidx < 8; ++bidx) {
    for (i64 i = bidx * block; i < (bidx + 1) * block; ++i) {
      for (int e = 0; e < 16; ++e) {
        a(i, bidx * block + static_cast<i64>(rng.next_below(static_cast<u64>(block)))) = 1;
      }
    }
  }
  const MatrixI32 x = random_codes(6, n, d, 4);
  const BitMatrix pa = pack_nonzero(a, BitLayout::kRowMajorK);
  const auto px = StackedBitTensor::decompose(x, 4, BitLayout::kColMajorK);
  BmmOptions opt;
  opt.zero_tile_jump = jump;
  for (auto _ : state) {
    auto out = aggregate_1bit(pa, px, ReuseMode::kCrossTile, opt);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ZeroTileJump)->Arg(0)->Arg(1);

void BM_FusedVsUnfusedBitOutput(benchmark::State& state) {
  const bool fused = state.range(0) != 0;
  const i64 n = 1024, d = 64;
  const MatrixI32 a = random_codes(7, n, n, 1);
  const MatrixI32 x = random_codes(8, n, d, 4);
  const BitMatrix pa = pack_nonzero(a, BitLayout::kRowMajorK);
  const auto px = StackedBitTensor::decompose(x, 4, BitLayout::kColMajorK);
  FusedEpilogue epi;
  epi.rshift = 8;
  for (auto _ : state) {
    if (fused) {
      auto out = aggregate_fused_bit(pa, px, 4, epi);
      benchmark::DoNotOptimize(&out);
    } else {
      auto raw = aggregate_1bit(pa, px, ReuseMode::kCrossTile);
      for (i64 i = 0; i < raw.size(); ++i) {
        raw.data()[i] = std::min(raw.data()[i] >> 8, 15);
      }
      auto out = StackedBitTensor::decompose(raw, 4, BitLayout::kRowMajorK);
      benchmark::DoNotOptimize(&out);
    }
  }
}
BENCHMARK(BM_FusedVsUnfusedBitOutput)->Arg(1)->Arg(0);

void BM_Int8Baseline(benchmark::State& state) {
  const i64 n = state.range(0), d = 64;
  const MatrixI32 a = random_codes(9, n, n, 1);
  const MatrixI32 b = random_codes(10, n, d, 7);
  const auto a8 = baselines::to_int8(a);
  const auto b8 = baselines::to_int8(b);
  for (auto _ : state) {
    auto c = baselines::gemm_int8(a8, b8);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_Int8Baseline)->Arg(1024)->Arg(2048);

void BM_Fp32Spmm(benchmark::State& state) {
  // DGL-path SpMM on an SBM batch-like graph.
  const i64 n = 8192;
  Rng rng(11);
  std::vector<std::pair<i32, i32>> edges;
  for (i64 e = 0; e < n * 8; ++e) {
    edges.emplace_back(static_cast<i32>(rng.next_below(static_cast<u64>(n))),
                       static_cast<i32>(rng.next_below(static_cast<u64>(n))));
  }
  const CsrGraph g = CsrGraph::from_edges(n, std::move(edges));
  MatrixF x(n, 64);
  for (i64 i = 0; i < x.size(); ++i) x.data()[i] = rng.next_float();
  for (auto _ : state) {
    auto y = baselines::spmm_csr(g, x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Fp32Spmm);

void BM_BitDecompose(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const MatrixI32 x = random_codes(12, 4096, 128, bits);
  for (auto _ : state) {
    auto planes = StackedBitTensor::decompose(x, bits, BitLayout::kColMajorK);
    benchmark::DoNotOptimize(&planes);
  }
}
BENCHMARK(BM_BitDecompose)->Arg(2)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
