// Backend sweep over the Fig. 7(a) cluster-GCN workload: quantized epoch
// latency for every substrate backend (scalar vs simd vs blocked) and for
// single- vs multi-worker inter-batch execution, verifying along the way
// that op counters and logits are invariant to the execution setup.
//
//   bench_backend_sweep [--json]
//
// Env knobs as bench_util.hpp; QGTC_SWEEP_THREADS overrides the worker
// count tried for the parallel rows (default: the host's OpenMP width).
#include <cmath>

#include "bench_util.hpp"
#include "parallel/parallel_for.hpp"

int main(int argc, char** argv) {
  using namespace qgtc;
  using core::TablePrinter;
  using tcsim::BackendKind;

  bench::print_banner(
      "Backend sweep — Fig. 7(a) cluster-GCN workload",
      "blocked/simd substrate beats scalar; inter-batch workers beat "
      "single-threaded epochs at equal op counts");

  bench::JsonReport json("backend_sweep", argc, argv);
  const int par_threads = static_cast<int>(
      env_i64("QGTC_SWEEP_THREADS", std::max(num_threads(), 2)));
  const int rounds = bench::quick() ? 1 : 2;
  json.meta("inter_batch_threads_parallel", static_cast<double>(par_threads));
  json.meta("simd_active", tcsim::simd_active() ? 1.0 : 0.0);

  TablePrinter table({"Dataset", "Backend", "Workers", "ms/epoch",
                      "vs scalar", "tile MMAs", "tiles jumped"});

  for (const auto& spec : bench::bench_datasets()) {
    const Dataset ds = generate_dataset(spec);
    core::EngineConfig cfg;
    cfg.model.kind = gnn::ModelKind::kClusterGCN;
    cfg.model.num_layers = 3;
    cfg.model.in_dim = spec.feature_dim;
    cfg.model.hidden_dim = 16;  // the paper's cluster-GCN setting
    cfg.model.out_dim = spec.num_classes;
    cfg.model.feat_bits = 4;
    cfg.model.weight_bits = 4;
    cfg.num_partitions = 1500;
    cfg.batch_size = 16;
    core::QgtcEngine engine(ds, cfg);

    // Reference logits + counters from the scalar single-thread run.
    engine.set_execution(BackendKind::kScalar, 1);
    const core::EngineStats base = engine.run_quantized(rounds);
    const auto& bd0 = *engine.batch_data().front();
    const tcsim::ExecutionContext scalar_ctx(BackendKind::kScalar);
    const MatrixI32 ref_logits = engine.model().forward_prepared(
        bd0.adj, &bd0.tile_map, bd0.x_planes, nullptr, &scalar_ctx);

    struct Config {
      BackendKind kind;
      int workers;
    };
    std::vector<Config> configs = {{BackendKind::kScalar, 1},
                                   {BackendKind::kSimd, 1},
                                   {BackendKind::kBlocked, 1},
                                   {BackendKind::kBlocked, par_threads}};
    for (const auto& c : configs) {
      engine.set_execution(c.kind, c.workers);
      const core::EngineStats s =
          (c.kind == BackendKind::kScalar && c.workers == 1)
              ? base
              : engine.run_quantized(rounds);

      bool invariant = (s.bmma_ops == base.bmma_ops) &&
                       (s.tiles_jumped == base.tiles_jumped);
      const tcsim::ExecutionContext ctx(c.kind);
      invariant = invariant &&
                  engine.model().forward_prepared(bd0.adj, &bd0.tile_map,
                                                  bd0.x_planes, nullptr,
                                                  &ctx) == ref_logits;
      if (!invariant) {
        std::cerr << "INVARIANCE VIOLATION: " << s.backend << " x"
                  << s.inter_batch_threads << " diverged from scalar\n";
      }

      const double speedup = base.forward_seconds / s.forward_seconds;
      table.add_row({spec.name, s.backend,
                     std::to_string(s.inter_batch_threads),
                     bench::ms(s.forward_seconds),
                     TablePrinter::fmt(speedup, 2) + "x",
                     std::to_string(s.bmma_ops),
                     std::to_string(s.tiles_jumped)});
      json.add_row({{"dataset", spec.name}, {"backend", s.backend}},
                   {{"workers", static_cast<double>(s.inter_batch_threads)},
                    {"ms_per_epoch", s.forward_seconds * 1e3},
                    {"speedup_vs_scalar", speedup},
                    {"bmma_ops", static_cast<double>(s.bmma_ops)},
                    {"tiles_jumped", static_cast<double>(s.tiles_jumped)},
                    {"invariant", invariant ? 1.0 : 0.0}});
    }
    std::cerr << "  [done] " << spec.name << "\n";
  }

  table.print(std::cout);
  std::cout << "\n(kSimd isolates the vector micro-kernel; kBlocked adds "
               "§4.4-style A-fragment reuse across N tiles; the last row "
               "adds inter-batch workers on top. Op counts and logits are "
               "asserted identical across all configurations.)\n";
  return 0;
}
