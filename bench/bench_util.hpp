// Shared helpers for the benchmark harness. Every bench binary prints the
// same rows/series as the paper's table or figure it regenerates, plus a
// header documenting workload and environment knobs:
//
//   QGTC_FULL_SCALE=1   full Table-1 dataset sizes (default scales
//                       ogbn-products to 10 % for a small host)
//   QGTC_QUICK=1        shrink sweeps/epochs for smoke runs
//   QGTC_MAX_BATCHES=N  cap timed batches per epoch (extrapolated, printed)
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "core/engine.hpp"
#include "core/stats.hpp"

namespace qgtc::bench {

inline bool quick() { return env_flag("QGTC_QUICK"); }
inline bool full_scale() { return env_flag("QGTC_FULL_SCALE"); }

inline double products_scale() { return full_scale() ? 1.0 : 0.1; }

/// Table-1 datasets at the configured scale. QGTC_QUICK keeps only the two
/// smallest so smoke runs finish in seconds.
inline std::vector<DatasetSpec> bench_datasets() {
  auto specs = table1_specs(products_scale());
  if (quick()) specs.resize(2);
  return specs;
}

inline void print_banner(const std::string& title, const std::string& claim) {
  std::cout << "==============================================================\n"
            << title << '\n'
            << "Paper claim (shape to reproduce): " << claim << '\n'
            << "Host substrate: software tensor core (see DESIGN.md); absolute\n"
            << "numbers differ from the paper's RTX3090, shapes should hold.\n"
            << "==============================================================\n";
}

/// Milliseconds with 1 decimal.
inline std::string ms(double seconds) {
  return core::TablePrinter::fmt(seconds * 1e3, 1);
}

/// TFLOPs for an N x N x D GEMM-equivalent executed in `seconds`
/// (2 ops per MAC, the convention of Figure 7(c)/9 and Table 3).
inline double tflops(i64 n, i64 d, double seconds) {
  return 2.0 * static_cast<double>(n) * static_cast<double>(n) *
         static_cast<double>(d) / seconds / 1e12;
}

}  // namespace qgtc::bench
