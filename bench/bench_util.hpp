// Shared helpers for the benchmark harness. Every bench binary prints the
// same rows/series as the paper's table or figure it regenerates, plus a
// header documenting workload and environment knobs:
//
//   QGTC_FULL_SCALE=1   full Table-1 dataset sizes (default scales
//                       ogbn-products to 10 % for a small host)
//   QGTC_QUICK=1        shrink sweeps/epochs for smoke runs
//   QGTC_MAX_BATCHES=N  cap timed batches per epoch (extrapolated, printed)
//   QGTC_JSON=1         also write machine-readable BENCH_<name>.json
//                       (same as passing --json; QGTC_JSON_DIR sets the
//                       output directory)
#pragma once

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/env.hpp"
#include "common/mem.hpp"
#include "core/engine.hpp"
#include "core/stats.hpp"

namespace qgtc::bench {

inline bool quick() { return env_flag("QGTC_QUICK"); }
inline bool full_scale() { return env_flag("QGTC_FULL_SCALE"); }

inline double products_scale() { return full_scale() ? 1.0 : 0.1; }

/// Table-1 datasets at the configured scale. QGTC_QUICK keeps only the two
/// smallest so smoke runs finish in seconds.
inline std::vector<DatasetSpec> bench_datasets() {
  auto specs = table1_specs(products_scale());
  if (quick()) specs.resize(2);
  return specs;
}

inline void print_banner(const std::string& title, const std::string& claim) {
  std::cout << "==============================================================\n"
            << title << '\n'
            << "Paper claim (shape to reproduce): " << claim << '\n'
            << "Host substrate: software tensor core (see DESIGN.md); absolute\n"
            << "numbers differ from the paper's RTX3090, shapes should hold.\n"
            << "==============================================================\n";
}

/// Milliseconds with 1 decimal.
inline std::string ms(double seconds) {
  return core::TablePrinter::fmt(seconds * 1e3, 1);
}

/// TFLOPs for an N x N x D GEMM-equivalent executed in `seconds`
/// (2 ops per MAC, the convention of Figure 7(c)/9 and Table 3).
inline double tflops(i64 n, i64 d, double seconds) {
  return 2.0 * static_cast<double>(n) * static_cast<double>(n) *
         static_cast<double>(d) / seconds / 1e12;
}

/// True when `--json` appears in a bench's argv (QGTC_JSON=1 is the no-argv
/// equivalent for benches driven through shared helpers).
inline bool json_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") return true;
  }
  return env_flag("QGTC_JSON");
}

/// Machine-readable benchmark output: rows of key -> value pairs written as
/// BENCH_<name>.json next to the human-readable table. Disabled (no-op)
/// unless --json / QGTC_JSON=1 is given, so existing bench invocations are
/// unchanged.
class JsonReport {
 public:
  explicit JsonReport(std::string name, bool enabled)
      : name_(std::move(name)), enabled_(enabled) {}
  JsonReport(std::string name, int argc, char** argv)
      : JsonReport(std::move(name), json_flag(argc, argv)) {}

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Bench-level metadata ("workload", "backend_default", ...).
  void meta(const std::string& key, const std::string& value) {
    if (enabled_) meta_.emplace_back(key, quote(value));
  }
  void meta(const std::string& key, double value) {
    if (enabled_) meta_.emplace_back(key, num(value));
  }

  /// One result row; string and numeric fields are kept in caller order.
  void add_row(const std::vector<std::pair<std::string, std::string>>& strs,
               const std::vector<std::pair<std::string, double>>& nums) {
    if (!enabled_) return;
    std::ostringstream os;
    os << "    {";
    bool first = true;
    for (const auto& [k, v] : strs) {
      os << (first ? "" : ", ") << quote(k) << ": " << quote(v);
      first = false;
    }
    for (const auto& [k, v] : nums) {
      os << (first ? "" : ", ") << quote(k) << ": " << num(v);
      first = false;
    }
    os << "}";
    rows_.push_back(os.str());
  }

  /// Writes BENCH_<name>.json (QGTC_JSON_DIR prefixes the path). Called by
  /// the destructor; safe to call early and repeatedly.
  void write() {
    if (!enabled_ || written_) return;
    const std::string dir = env_str("QGTC_JSON_DIR", ".");
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "JsonReport: cannot write " << path << "\n";
      return;
    }
    out << "{\n  \"bench\": " << quote(name_) << ",\n";
    for (const auto& [k, v] : meta_) out << "  " << quote(k) << ": " << v << ",\n";
    out << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out << rows_[i] << (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    written_ = true;
    std::cout << "[json] wrote " << path << " (" << rows_.size() << " rows)\n";
  }

  ~JsonReport() { write(); }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) break;  // drop controls
          out += c;
      }
    }
    return out + "\"";
  }
  static std::string num(double v) {
    std::ostringstream os;
    os.precision(12);
    os << v;
    const std::string s = os.str();
    // JSON has no inf/nan literals.
    return (s.find("inf") != std::string::npos ||
            s.find("nan") != std::string::npos)
               ? "null"
               : s;
  }

  std::string name_;
  bool enabled_;
  bool written_ = false;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::string> rows_;
};

/// Standard process-memory metadata for bench JSON output: the kernel's own
/// peak-RSS high-water next to whatever per-row prepared-bytes accounting
/// the bench reports (call right before the report is written, so the
/// high-water covers the benched work).
inline void add_memory_meta(JsonReport& json) {
  json.meta("vm_hwm_bytes", static_cast<double>(vm_hwm_bytes()));
  json.meta("vm_rss_bytes", static_cast<double>(vm_rss_bytes()));
}

}  // namespace qgtc::bench
