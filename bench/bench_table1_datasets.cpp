// Table 1: dataset inventory. Regenerates each dataset from its SBM spec and
// prints the realised |V| / |E| / Dim / #Class next to the paper's targets.
#include <iostream>

#include "bench_util.hpp"
#include "graph/generator.hpp"

int main() {
  using namespace qgtc;
  using core::TablePrinter;

  bench::print_banner("Table 1 — Datasets for evaluation",
                      "six graphs across three types; sizes as listed");

  TablePrinter t({"Dataset", "#Vertex(spec)", "#Vertex(gen)", "#Edge(spec)",
                  "#Edge(gen,undirected)", "Dim", "#Class"});
  for (const auto& spec : bench::bench_datasets()) {
    const Dataset ds = generate_dataset(spec);
    t.add_row({spec.name, std::to_string(spec.num_nodes),
               std::to_string(ds.graph.num_nodes()),
               std::to_string(spec.num_edges),
               std::to_string(ds.graph.num_edges() / 2),
               std::to_string(spec.feature_dim),
               std::to_string(spec.num_classes)});
  }
  t.print(std::cout);
  if (!bench::full_scale()) {
    std::cout << "\n(ogbn-products at 10% scale; QGTC_FULL_SCALE=1 for full size)\n";
  }
  return 0;
}
