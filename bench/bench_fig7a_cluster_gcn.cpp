// Figure 7(a): end-to-end Cluster GCN inference (3 layers, hidden 16) —
// DGL(fp32) vs QGTC at 2/4/8/16/32 bits across the Table-1 datasets.
#include <cmath>

#include "bench_fig7_common.hpp"

int main() {
  using namespace qgtc;
  bench::print_banner(
      "Figure 7(a) — Cluster GCN end-to-end inference vs DGL",
      "QGTC beats DGL (avg ~2.6x); fewer bits => faster; 16/32-bit much "
      "slower than <=8-bit");
  bench::run_fig7(gnn::ModelKind::kClusterGCN, /*hidden_dim=*/16);
  return 0;
}
