// Dense+zero-tile-jump vs tile-sparse adjacency on the Figure 7(a)
// cluster-GCN workload, swept over batch sizes. The tile-CSR layout must be
// no slower than the dense flag-jump path while storing and shipping only
// ~the nonzero-tile ratio of the adjacency bytes (both paths execute the
// exact same tile schedule — bit-identical logits, identical bmma_ops).
#include "bench_util.hpp"

namespace qgtc::bench {
namespace {

struct ModeResult {
  double seconds = 0.0;
  i64 bmma_ops = 0;
  i64 tiles_jumped = 0;
  i64 adj_storage_bytes = 0;  // resident adjacency representation
  i64 adj_shipped_bytes = 0;  // adjacency share of the packed transfer
  double nz_tile_ratio = 0.0;
};

ModeResult run_mode(const Dataset& ds, core::EngineConfig cfg, bool sparse,
                    int rounds) {
  cfg.mode.adjacency = sparse ? core::RunMode::Adjacency::kTileSparse
                              : core::RunMode::Adjacency::kDenseJump;
  core::QgtcEngine engine(ds, cfg);
  ModeResult r;
  for (const auto& bdp : engine.batch_data()) {
    const auto& bd = *bdp;
    r.adj_storage_bytes += sparse ? bd.adj_tiles.bytes() : bd.adj.bytes();
  }
  r.adj_shipped_bytes = engine.transfer_accounting().adj_bytes;
  r.nz_tile_ratio = engine.nonzero_tile_ratio();
  const auto stats = engine.run_quantized(rounds);
  r.seconds = stats.forward_seconds;
  r.bmma_ops = stats.bmma_ops;
  r.tiles_jumped = stats.tiles_jumped;
  return r;
}

int run(int argc, char** argv) {
  print_banner("Tile-sparse adjacency vs dense + zero-tile jump (Fig. 7a workload)",
               "structural sparsity stores/ships ~the nonzero-tile ratio "
               "(Fig. 8: 5-15%) at dense-or-better epoch time");

  const DatasetSpec spec = table1_spec("Proteins", products_scale());
  const Dataset ds = generate_dataset(spec);
  const int rounds = quick() ? 1 : 3;
  std::vector<i64> batch_sizes = {4, 8, 16, 32};
  if (quick()) batch_sizes = {8, 16};

  JsonReport json("sparse_adj", argc, argv);
  json.meta("workload", "fig7a_cluster_gcn/" + spec.name);
  json.meta("rounds", static_cast<double>(rounds));

  core::TablePrinter table({"batch", "dense ms", "sparse ms", "speedup",
                            "dense adj MB", "sparse adj MB", "bytes ratio",
                            "shipped dense MB", "shipped sparse MB",
                            "nz tile ratio"});
  bool counters_match = true;
  for (const i64 batch : batch_sizes) {
    core::EngineConfig cfg;
    cfg.model.kind = gnn::ModelKind::kClusterGCN;
    cfg.model.num_layers = 3;
    cfg.model.in_dim = spec.feature_dim;
    cfg.model.hidden_dim = 16;
    cfg.model.out_dim = spec.num_classes;
    cfg.model.feat_bits = 4;
    cfg.model.weight_bits = 4;
    cfg.num_partitions = quick() ? 256 : 1500;
    cfg.batch_size = batch;

    const ModeResult dense = run_mode(ds, cfg, /*sparse=*/false, rounds);
    const ModeResult sparse = run_mode(ds, cfg, /*sparse=*/true, rounds);
    counters_match = counters_match && dense.bmma_ops == sparse.bmma_ops &&
                     dense.tiles_jumped == sparse.tiles_jumped;

    const double nz = sparse.nz_tile_ratio;
    const double bytes_ratio = static_cast<double>(sparse.adj_storage_bytes) /
                               static_cast<double>(dense.adj_storage_bytes);
    table.add_row({std::to_string(batch), ms(dense.seconds), ms(sparse.seconds),
                   core::TablePrinter::fmt(dense.seconds / sparse.seconds, 2) + "x",
                   core::TablePrinter::fmt(dense.adj_storage_bytes / 1e6, 2),
                   core::TablePrinter::fmt(sparse.adj_storage_bytes / 1e6, 2),
                   core::TablePrinter::fmt_pct(bytes_ratio, 1),
                   core::TablePrinter::fmt(dense.adj_shipped_bytes / 1e6, 2),
                   core::TablePrinter::fmt(sparse.adj_shipped_bytes / 1e6, 2),
                   core::TablePrinter::fmt_pct(nz, 1)});
    json.add_row(
        {},
        {{"batch_size", static_cast<double>(batch)},
         {"dense_ms", dense.seconds * 1e3},
         {"sparse_ms", sparse.seconds * 1e3},
         {"speedup", dense.seconds / sparse.seconds},
         {"dense_adj_bytes", static_cast<double>(dense.adj_storage_bytes)},
         {"sparse_adj_bytes", static_cast<double>(sparse.adj_storage_bytes)},
         {"adj_bytes_ratio", bytes_ratio},
         {"dense_shipped_bytes", static_cast<double>(dense.adj_shipped_bytes)},
         {"sparse_shipped_bytes", static_cast<double>(sparse.adj_shipped_bytes)},
         {"nonzero_tile_ratio", nz},
         {"bmma_ops_match", dense.bmma_ops == sparse.bmma_ops ? 1.0 : 0.0}});
    std::cerr << "  [done] batch " << batch << "\n";
  }
  table.print(std::cout);
  std::cout << (counters_match
                    ? "\nSchedule parity: bmma_ops and tiles_jumped identical "
                      "between flag-based and structural jumping.\n"
                    : "\nWARNING: counter mismatch between dense and sparse "
                      "schedules!\n");
  return counters_match ? 0 : 1;
}

}  // namespace
}  // namespace qgtc::bench

int main(int argc, char** argv) { return qgtc::bench::run(argc, argv); }
