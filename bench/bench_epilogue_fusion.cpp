// Fused quantized epilogue vs unfused fallback on the Figure 7(a)
// cluster-GCN and 7(b) batched-GIN workloads, swept over batch sizes. The
// fused path requantizes/activates/re-packs inside the tile flush, so it
// must be no slower than the unfused int32-sweep path while producing
// bit-identical logits, the identical tile schedule, and a positive
// int32-bytes-avoided count (the intermediates it never materialised).
//
// Exit status is the regression gate: non-zero when logits/counters diverge,
// when no int32 bytes were avoided, or when the fused path is slower beyond
// noise.
#include "bench_util.hpp"

namespace qgtc::bench {
namespace {

struct ModeResult {
  double seconds = 0.0;
  i64 bmma_ops = 0;
  i64 tiles_jumped = 0;
  i64 fused_stages = 0;
  i64 int32_bytes_avoided = 0;
  std::vector<MatrixI32> logits;
};

ModeResult run_mode(const Dataset& ds, core::EngineConfig cfg, bool fused,
                    int rounds) {
  cfg.model.fused_epilogue = fused;
  core::QgtcEngine engine(ds, cfg);
  ModeResult r;
  const auto stats = engine.run_quantized(rounds, &r.logits);
  r.seconds = stats.forward_seconds;
  r.bmma_ops = stats.bmma_ops;
  r.tiles_jumped = stats.tiles_jumped;
  r.fused_stages = stats.epilogue_fused_layers;
  r.int32_bytes_avoided = stats.int32_bytes_avoided;
  return r;
}

int run(int argc, char** argv) {
  print_banner("Fused quantized epilogue vs unfused fallback (Fig. 7a/7b workloads)",
               "requantize/activate/re-pack inside the tile flush is "
               "bit-identical and no slower, with zero int32 intermediates");

  const DatasetSpec spec = table1_spec("Proteins", products_scale());
  const Dataset ds = generate_dataset(spec);
  const int rounds = quick() ? 1 : 3;
  // Quick smoke runs carry more timer noise on a loaded CI host; tolerate
  // more apparent slowdown before failing there.
  const double tolerance = quick() ? 1.35 : 1.10;
  std::vector<i64> batch_sizes = {4, 8, 16, 32};
  if (quick()) batch_sizes = {8, 16};

  JsonReport json("epilogue", argc, argv);
  json.meta("workload", "fig7ab_gcn_gin/" + spec.name);
  json.meta("rounds", static_cast<double>(rounds));
  json.meta("tolerance", tolerance);

  core::TablePrinter table({"model", "batch", "unfused ms", "fused ms",
                            "speedup", "fused stages", "int32 MB avoided",
                            "parity"});
  bool ok = true;
  double worst_ratio = 0.0;
  for (const auto mk :
       {gnn::ModelKind::kClusterGCN, gnn::ModelKind::kBatchedGIN}) {
    for (const i64 batch : batch_sizes) {
      core::EngineConfig cfg;
      cfg.model.kind = mk;
      cfg.model.num_layers = 3;
      cfg.model.in_dim = spec.feature_dim;
      cfg.model.hidden_dim = mk == gnn::ModelKind::kClusterGCN ? 16 : 64;
      cfg.model.out_dim = spec.num_classes;
      cfg.model.feat_bits = 4;
      cfg.model.weight_bits = 4;
      cfg.num_partitions = quick() ? 256 : 1500;
      cfg.batch_size = batch;

      const ModeResult unfused = run_mode(ds, cfg, /*fused=*/false, rounds);
      const ModeResult fused = run_mode(ds, cfg, /*fused=*/true, rounds);

      const bool parity = fused.logits == unfused.logits &&
                          fused.bmma_ops == unfused.bmma_ops &&
                          fused.tiles_jumped == unfused.tiles_jumped;
      const bool avoided = fused.int32_bytes_avoided > 0 &&
                           unfused.int32_bytes_avoided == 0 &&
                           fused.fused_stages > 0;
      const double ratio = fused.seconds / unfused.seconds;
      worst_ratio = std::max(worst_ratio, ratio);
      ok = ok && parity && avoided;

      table.add_row(
          {gnn::model_name(mk), std::to_string(batch), ms(unfused.seconds),
           ms(fused.seconds),
           core::TablePrinter::fmt(unfused.seconds / fused.seconds, 2) + "x",
           std::to_string(fused.fused_stages),
           core::TablePrinter::fmt(
               static_cast<double>(fused.int32_bytes_avoided) / 1e6, 2),
           parity && avoided ? "ok" : "MISMATCH"});
      json.add_row(
          {{"model", gnn::model_name(mk)}},
          {{"batch_size", static_cast<double>(batch)},
           {"unfused_ms", unfused.seconds * 1e3},
           {"fused_ms", fused.seconds * 1e3},
           {"speedup", unfused.seconds / fused.seconds},
           {"fused_stages", static_cast<double>(fused.fused_stages)},
           {"int32_bytes_avoided",
            static_cast<double>(fused.int32_bytes_avoided)},
           {"logits_match", fused.logits == unfused.logits ? 1.0 : 0.0},
           {"counters_match",
            fused.bmma_ops == unfused.bmma_ops &&
                    fused.tiles_jumped == unfused.tiles_jumped
                ? 1.0
                : 0.0}});
      std::cerr << "  [done] " << gnn::model_name(mk) << " batch " << batch
                << "\n";
    }
  }
  add_memory_meta(json);
  json.meta("worst_fused_over_unfused", worst_ratio);
  table.print(std::cout);

  if (!ok) {
    std::cout << "\nFAIL: fused/unfused parity or int32-avoidance broken.\n";
    return 1;
  }
  if (worst_ratio > tolerance) {
    std::cout << "\nFAIL: fused path slower than unfused beyond noise ("
              << core::TablePrinter::fmt(worst_ratio, 2) << "x > "
              << core::TablePrinter::fmt(tolerance, 2) << "x allowed).\n";
    return 1;
  }
  std::cout << "\nEpilogue fusion: bit-identical, schedule-identical, and no "
               "slower than the unfused path on every configuration.\n";
  return 0;
}

}  // namespace
}  // namespace qgtc::bench

int main(int argc, char** argv) { return qgtc::bench::run(argc, argv); }
