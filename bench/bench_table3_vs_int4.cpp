// Table 3: aggregation throughput (TFLOPs) vs the CUTLASS(int4) substitute.
// CUTLASS only supports 4-bit x 4-bit, so the binary adjacency must be
// stored in 4 bits; QGTC keeps it at 1 bit and scales the embedding side
// from 1 to 4 bits.
#include <iostream>

#include "baselines/int4_gemm.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "kernels/anybit_mm.hpp"

int main() {
  using namespace qgtc;
  using core::TablePrinter;

  bench::print_banner(
      "Table 3 — vs CUTLASS int4 (TFLOPs, A 1-bit x X n-bit)",
      "QGTC wins at every bitwidth; margin largest at 1-bit, shrinking "
      "toward 4-bit");

  const std::vector<i64> ns = bench::quick() ? std::vector<i64>{2048}
                                             : std::vector<i64>{2048, 4096, 8192};
  const std::vector<i64> dims = {32, 64};

  TablePrinter table({"N", "Dim", "CUTLASS(int4)", "QGTC(1-bit)", "QGTC(2-bit)",
                      "QGTC(3-bit)", "QGTC(4-bit)"});
  Rng rng(31337);
  for (const i64 n : ns) {
    for (const i64 d : dims) {
      MatrixI32 adj(n, n);
      for (i64 i = 0; i < adj.size(); ++i) adj.data()[i] = rng.next_bool(0.1f) ? 1 : 0;

      // CUTLASS substitute: both operands forced to 4-bit.
      MatrixI32 x4(n, d);
      for (i64 i = 0; i < x4.size(); ++i) x4.data()[i] = static_cast<i32>(rng.next_below(16));
      const auto a_i4 = baselines::Int4Matrix::pack(adj);
      const auto b_i4 = baselines::Int4Matrix::pack(x4);
      const double int4_s =
          time_it([&] { (void)baselines::gemm_int4(a_i4, b_i4); }, 0.3);

      std::vector<std::string> row = {std::to_string(n), std::to_string(d),
                                      TablePrinter::fmt(bench::tflops(n, d, int4_s), 2)};

      const BitMatrix pa = pack_nonzero(adj, BitLayout::kRowMajorK);
      for (const int bits : {1, 2, 3, 4}) {
        MatrixI32 xq(n, d);
        const u64 range = u64{1} << bits;
        for (i64 i = 0; i < xq.size(); ++i) {
          xq.data()[i] = static_cast<i32>(rng.next_below(range));
        }
        const auto px = StackedBitTensor::decompose(xq, bits, BitLayout::kColMajorK);
        const double q_s = time_it(
            [&] { (void)aggregate_1bit(pa, px, ReuseMode::kCrossTile); }, 0.3);
        row.push_back(TablePrinter::fmt(bench::tflops(n, d, q_s), 2));
      }
      table.add_row(std::move(row));
      std::cerr << "  [done] N=" << n << " Dim=" << d << "\n";
    }
  }
  table.print(std::cout);
  return 0;
}
