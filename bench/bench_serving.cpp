// Online serving bench, two phases:
//
// 1. Parity gate: requests replaying an offline epoch's batch memberships
//    through the serving pipeline must produce bit-identical logits and
//    identical substrate counters (bmma_ops, tiles_jumped) on every backend
//    — the serving layer is a scheduling change, not a numerics change.
//    Exits non-zero on any mismatch.
// 2. Open-loop Poisson load: per-request ego-graph queries at a target QPS,
//    reporting p50/p99/p99.9 latency, sustained QPS and the coalescing the
//    dynamic micro-batcher achieved. Exits non-zero if the tail percentiles
//    come back unreported (p99 <= 0 with completions).
#include "bench_util.hpp"

#include "core/autotune.hpp"
#include "core/serving.hpp"
#include "parallel/parallel_for.hpp"

namespace qgtc::bench {
namespace {

core::EngineConfig serving_engine_config(const Dataset& ds) {
  core::EngineConfig cfg;
  cfg.model.kind = gnn::ModelKind::kClusterGCN;
  cfg.model.num_layers = 3;
  cfg.model.in_dim = ds.spec.feature_dim;
  cfg.model.hidden_dim = 16;
  cfg.model.out_dim = ds.spec.num_classes;
  cfg.model.feat_bits = 4;
  cfg.model.weight_bits = 4;
  cfg.num_partitions = 128;
  cfg.batch_size = 8;
  cfg.mode.adjacency = core::RunMode::Adjacency::kTileSparse;
  return cfg;
}

/// Replays every offline batch membership through the serving pipeline and
/// compares logits + counters bit-for-bit. Returns true on exact parity.
bool parity_gate(const Dataset& ds, tcsim::BackendKind backend, bool sparse,
                 core::TablePrinter& table) {
  core::EngineConfig cfg = serving_engine_config(ds);
  cfg.backend = backend;
  cfg.mode.adjacency = sparse ? core::RunMode::Adjacency::kTileSparse
                              : core::RunMode::Adjacency::kDenseJump;

  core::QgtcEngine offline(ds, cfg);
  std::vector<MatrixI32> ref_logits;
  const core::EngineStats ref = offline.run_quantized(1, &ref_logits);

  core::ServingPolicy policy;
  policy.max_batch_requests = cfg.batch_size;
  policy.max_batch_nodes = i64{1} << 40;  // request count alone rules dispatch
  policy.max_wait_us = i64{60} * 1000 * 1000;
  policy.prepare_workers = 2;
  policy.compute_workers = 2;
  core::ServingEngine serving(ds, cfg, policy);

  std::vector<std::future<core::ServingResult>> futures;
  std::vector<std::pair<i64, i64>> origin;
  for (i64 b = 0; b < offline.num_batches(); ++b) {
    const SubgraphBatch& batch =
        offline.batch_data()[static_cast<std::size_t>(b)]->batch;
    for (i64 p = 0; p < batch.num_parts(); ++p) {
      core::ServingRequest req;
      req.fanout = 0;
      req.seeds.assign(batch.nodes.begin() + batch.part_bounds[p],
                       batch.nodes.begin() + batch.part_bounds[p + 1]);
      futures.push_back(serving.submit(std::move(req)));
      origin.emplace_back(b, p);
    }
  }
  serving.stop();

  bool logits_ok = true;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const core::ServingResult res = futures[i].get();
    const auto [b, p] = origin[i];
    const SubgraphBatch& batch =
        offline.batch_data()[static_cast<std::size_t>(b)]->batch;
    const MatrixI32& ref_b = ref_logits[static_cast<std::size_t>(b)];
    const i64 r0 = batch.part_bounds[p];
    const i64 r1 = batch.part_bounds[p + 1];
    if (res.logits.rows() != r1 - r0 || res.logits.cols() != ref_b.cols()) {
      logits_ok = false;
      continue;
    }
    for (i64 r = r0; r < r1 && logits_ok; ++r) {
      for (i64 c = 0; c < ref_b.cols(); ++c) {
        if (res.logits(r - r0, c) != ref_b(r, c)) logits_ok = false;
      }
    }
  }
  const core::ServingStats st = serving.stats();
  const bool counters_ok =
      st.bmma_ops == ref.bmma_ops && st.tiles_jumped == ref.tiles_jumped;
  const bool ok = logits_ok && counters_ok && st.requests_failed == 0;

  table.add_row({std::string(tcsim::backend_name(backend)),
                 sparse ? "tile-sparse" : "dense",
                 std::to_string(st.requests_completed),
                 std::to_string(ref.bmma_ops), std::to_string(st.bmma_ops),
                 std::to_string(ref.tiles_jumped),
                 std::to_string(st.tiles_jumped),
                 ok ? "bit-identical" : "MISMATCH"});
  return ok;
}

int run(int argc, char** argv) {
  print_banner(
      "Online serving: dynamic micro-batching vs offline epochs",
      "per-request ego-graph serving rides the offline prepare/ship/compute "
      "path bit-identically, and the micro-batcher sustains open-loop "
      "Poisson load with bounded tails (§6 deployed as a service)");

  const DatasetSpec spec = table1_spec("Proteins", products_scale());
  const Dataset ds = generate_dataset(spec);
  JsonReport json("serving", argc, argv);
  json.meta("workload", "serving/" + spec.name);
  json.meta("host_threads", static_cast<double>(num_threads()));

  // ------------------------------------------------------- parity phase
  std::cout << "\n-- Phase 1: serving vs offline-epoch parity --\n";
  core::TablePrinter parity({"backend", "adjacency", "requests", "ref MMAs",
                             "served MMAs", "ref jumped", "served jumped",
                             "verdict"});
  bool parity_ok = true;
  for (const auto backend :
       {tcsim::BackendKind::kScalar, tcsim::BackendKind::kSimd,
        tcsim::BackendKind::kBlocked}) {
    for (const bool sparse : quick() ? std::vector<bool>{true}
                                     : std::vector<bool>{false, true}) {
      parity_ok = parity_gate(ds, backend, sparse, parity) && parity_ok;
    }
  }
  parity.print(std::cout);
  json.meta("parity", parity_ok ? "bit-identical" : "MISMATCH");

  // --------------------------------------------------- Poisson load phase
  std::cout << "\n-- Phase 2: open-loop Poisson load --\n";
  core::EngineConfig cfg = serving_engine_config(ds);
  const auto tuned = core::generate_runtime_config(
      spec, cfg.model, {}, /*sparse_adj=*/true, core::TuneObjective::kLatency);
  core::ServingPolicy policy = tuned.serving;
  core::TablePrinter load_table({"offered QPS", "sustained QPS", "p50 ms",
                                 "p99 ms", "p99.9 ms", "req/batch",
                                 "completed", "failed"});
  std::vector<double> qps_points = quick() ? std::vector<double>{200.0}
                                           : std::vector<double>{100.0, 400.0,
                                                                 800.0};
  bool tails_ok = true;
  {
    core::ServingEngine serving(ds, cfg, policy);
    for (const double qps : qps_points) {
      core::LoadSpec load;
      load.num_requests = quick() ? 64 : 512;
      load.target_qps = qps;
      load.seeds_per_request = 4;
      load.fanout = 1;
      load.max_nodes = 512;
      const core::LoadReport rep = core::run_poisson_load(serving, load);
      load_table.add_row(
          {core::TablePrinter::fmt(rep.offered_qps, 0),
           core::TablePrinter::fmt(rep.sustained_qps, 1),
           core::TablePrinter::fmt(rep.p50_ms, 3),
           core::TablePrinter::fmt(rep.p99_ms, 3),
           core::TablePrinter::fmt(rep.p999_ms, 3),
           core::TablePrinter::fmt(rep.mean_batch_requests, 2),
           std::to_string(rep.completed), std::to_string(rep.failed)});
      json.add_row({},
                   {{"offered_qps", rep.offered_qps},
                    {"sustained_qps", rep.sustained_qps},
                    {"p50_ms", rep.p50_ms},
                    {"p99_ms", rep.p99_ms},
                    {"p999_ms", rep.p999_ms},
                    {"mean_batch_requests", rep.mean_batch_requests},
                    {"completed", static_cast<double>(rep.completed)},
                    {"failed", static_cast<double>(rep.failed)}});
      // The gate the CI smoke run enforces: tails must be measured.
      tails_ok = tails_ok && rep.completed > 0 && rep.failed == 0 &&
                 rep.p99_ms > 0.0 && rep.p999_ms >= rep.p99_ms &&
                 rep.p99_ms >= rep.p50_ms;
    }
    serving.stop();
    const core::ServingStats st = serving.stats();
    json.meta("batches_dispatched", static_cast<double>(st.batches_dispatched));
    json.meta("dispatches_timeout", static_cast<double>(st.dispatches_timeout));
    json.meta("packed_bytes", static_cast<double>(st.packed_bytes));
    // Per-stage busy/stall attribution over the whole load phase: the stall
    // columns separate queue-wait from service time per stage, which is the
    // tail-latency debugging signal (a stalled compute stage means prepare
    // or ship is the straggler; batcher stall is idle admission time).
    json.meta("batcher_busy_ms", st.batcher_stage.busy_seconds * 1e3);
    json.meta("batcher_stall_ms", st.batcher_stage.stall_seconds * 1e3);
    json.meta("prepare_busy_ms", st.prepare_stage.busy_seconds * 1e3);
    json.meta("prepare_stall_ms", st.prepare_stage.stall_seconds * 1e3);
    json.meta("ship_busy_ms", st.ship_stage.busy_seconds * 1e3);
    json.meta("ship_stall_ms", st.ship_stage.stall_seconds * 1e3);
    json.meta("compute_busy_ms", st.compute_stage.busy_seconds * 1e3);
    json.meta("compute_stall_ms", st.compute_stage.stall_seconds * 1e3);
    std::cout << "Stage busy/stall ms (batcher/prepare/ship/compute): "
              << core::TablePrinter::fmt(st.batcher_stage.busy_seconds * 1e3, 1)
              << "/"
              << core::TablePrinter::fmt(st.batcher_stage.stall_seconds * 1e3, 1)
              << "  "
              << core::TablePrinter::fmt(st.prepare_stage.busy_seconds * 1e3, 1)
              << "/"
              << core::TablePrinter::fmt(st.prepare_stage.stall_seconds * 1e3, 1)
              << "  "
              << core::TablePrinter::fmt(st.ship_stage.busy_seconds * 1e3, 1)
              << "/"
              << core::TablePrinter::fmt(st.ship_stage.stall_seconds * 1e3, 1)
              << "  "
              << core::TablePrinter::fmt(st.compute_stage.busy_seconds * 1e3, 1)
              << "/"
              << core::TablePrinter::fmt(st.compute_stage.stall_seconds * 1e3, 1)
              << "\n";
  }
  load_table.print(std::cout);

  add_memory_meta(json);
  json.write();
  std::cout << (parity_ok
                    ? "\nParity gate holds: serving logits and counters are "
                      "bit-identical to the offline epoch on every backend.\n"
                    : "\nWARNING: serving/offline parity MISMATCH!\n");
  std::cout << (tails_ok ? "Tail latencies reported (p50 <= p99 <= p99.9), "
                           "no failed requests.\n"
                         : "WARNING: tail latency gate failed (unreported "
                           "percentiles or failed requests)!\n");
  return parity_ok && tails_ok ? 0 : 1;
}

}  // namespace
}  // namespace qgtc::bench

int main(int argc, char** argv) { return qgtc::bench::run(argc, argv); }