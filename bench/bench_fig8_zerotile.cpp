// Figure 8: zero-tile jumping efficiency — fraction of 8x128 TC tiles of the
// batched subgraph adjacency that actually contain edges (the tiles QGTC
// processes) per Table-1 dataset.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace qgtc;
  using core::TablePrinter;

  bench::print_banner(
      "Figure 8 — zero-tile jumping efficiency",
      "only 6..43% of adjacency tiles processed (paper: Proteins 33.3%, "
      "artist 43.1%, BlogCatalog 36.2%, PPI 34.7%, arxiv 6.3%, products 16.5%)");

  TablePrinter table({"Dataset", "tiles total", "tiles non-zero",
                      "processed w/ ZTS", "paper"});
  const std::vector<std::string> paper_pct = {"33.33%", "43.10%", "36.22%",
                                              "34.71%", "6.32%", "16.50%"};
  std::size_t idx = 0;
  for (const auto& spec : bench::bench_datasets()) {
    const Dataset ds = generate_dataset(spec);
    core::EngineConfig ecfg;
    ecfg.model.kind = gnn::ModelKind::kClusterGCN;
    ecfg.model.num_layers = 3;
    ecfg.model.in_dim = spec.feature_dim;
    ecfg.model.hidden_dim = 16;
    ecfg.model.out_dim = spec.num_classes;
    ecfg.num_partitions = 1500;
    ecfg.batch_size = 16;
    const core::QgtcEngine engine(ds, ecfg);

    i64 total = 0, nonzero = 0;
    for (const auto& bdp : engine.batch_data()) {
      const auto& bd = *bdp;
      const TileMap map = build_tile_map(bd.adj);
      total += map.total_tiles();
      nonzero += map.nonzero_tiles();
    }
    table.add_row({spec.name, std::to_string(total), std::to_string(nonzero),
                   TablePrinter::fmt_pct(static_cast<double>(nonzero) /
                                             static_cast<double>(total),
                                         2),
                   idx < paper_pct.size() ? paper_pct[idx] : "-"});
    ++idx;
    std::cerr << "  [done] " << spec.name << "\n";
  }
  table.print(std::cout);
  std::cout << "\nZero tiles come from (1) batching: no edges between "
               "different subgraphs\nof a batch, and (2) missing "
               "intra-subgraph edges (paper §6.3).\n";
  return 0;
}
