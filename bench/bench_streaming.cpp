// Streaming pipeline vs precomputed epoch on the Fig. 7a cluster-GCN
// workload: the streaming executor must hold only O(pipeline_depth) batches
// resident (peak prepared bytes ~ depth/num_batches of the precomputed
// engine) while matching its counters bit-for-bit, at epoch time at parity
// or better once prepare and packed transfer overlap compute. Also reports
// the overlap accounting: total modelled wire time vs the share not hidden
// behind compute (exposed).
#include "bench_util.hpp"

#include <algorithm>
#include <cmath>

#include "common/timer.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"

namespace qgtc::bench {
namespace {

struct ModeResult {
  double seconds = 0.0;
  double build_seconds = 0.0;  // engine construction (precomputed: includes
                               // materialising the whole epoch, untimed prep)
  i64 bmma_ops = 0;
  i64 tiles_jumped = 0;
  i64 peak_prepared_bytes = 0;
  i64 packed_bytes = 0;
  double wire_ms = 0.0;
  double exposed_ms = 0.0;
  i64 batches = 0;
  // Streaming only: per-stage busy/stall attribution (averaged over rounds).
  core::EngineStats::StageBreakdownSet stages;
};

ModeResult run_mode(const Dataset& ds, core::EngineConfig cfg, int rounds) {
  Timer build;
  core::QgtcEngine engine(ds, cfg);
  const double build_seconds = build.seconds();
  const auto stats = engine.run_quantized(rounds);
  ModeResult r;
  r.build_seconds = build_seconds;
  r.seconds = stats.forward_seconds;
  r.bmma_ops = stats.bmma_ops;
  r.tiles_jumped = stats.tiles_jumped;
  r.peak_prepared_bytes = stats.peak_prepared_bytes;
  r.packed_bytes = stats.packed_bytes;
  r.wire_ms = stats.packed_transfer_seconds * 1e3;
  r.exposed_ms = stats.exposed_transfer_seconds * 1e3;
  r.batches = stats.batches;
  r.stages = stats.stage_breakdown;
  return r;
}

int run(int argc, char** argv) {
  print_banner("Streaming epoch pipeline vs precomputed batches (Fig. 7a workload)",
               "bounded-memory prepare/ship/compute overlap holds "
               "~O(pipeline_depth) batches resident at epoch parity, "
               "bit-identical counters (§4.6 deployment pipeline)");

  const DatasetSpec spec = table1_spec("Proteins", products_scale());
  const Dataset ds = generate_dataset(spec);
  const int rounds = quick() ? 1 : 3;
  std::vector<int> depths = {1, 2, 4};
  if (quick()) depths = {2};

  core::EngineConfig cfg;
  cfg.model.kind = gnn::ModelKind::kClusterGCN;
  cfg.model.num_layers = 3;
  cfg.model.in_dim = spec.feature_dim;
  cfg.model.hidden_dim = 16;
  cfg.model.out_dim = spec.num_classes;
  cfg.model.feat_bits = 4;
  cfg.model.weight_bits = 4;
  cfg.num_partitions = quick() ? 256 : 1500;
  // Enough batches per epoch that the in-flight window (~2*depth + stage
  // workers, see pipeline.hpp) is a small fraction of the epoch — that
  // fraction IS the memory claim being measured.
  cfg.batch_size = quick() ? 4 : 16;
  // Split the host between the compute stage and the prepare stage (capped:
  // the window bound must not scale with the host's core count).
  const int stage_threads = std::clamp(num_threads() / 2, 1, 4);
  cfg.inter_batch_threads = stage_threads;

  JsonReport json("streaming", argc, argv);
  json.meta("workload", "fig7a_cluster_gcn/" + spec.name);
  json.meta("rounds", static_cast<double>(rounds));
  json.meta("batch_size", static_cast<double>(cfg.batch_size));
  // Overlap needs cores: with one host thread the prepare stage serialises
  // with compute and the streaming epoch pays the full prepare cost inline
  // (the precomputed row pays it untimed, at construction — see build ms).
  json.meta("host_threads", static_cast<double>(num_threads()));
  json.meta("stage_threads", static_cast<double>(stage_threads));

  const ModeResult pre = run_mode(ds, cfg, rounds);
  std::cerr << "  [done] precomputed (" << pre.batches << " batches)\n";

  core::TablePrinter table({"mode", "ms/epoch", "vs precomp", "build ms",
                            "peak MB", "peak ratio", "wire ms", "exposed ms",
                            "counters"});
  table.add_row({"precomputed", ms(pre.seconds), "1.00x", ms(pre.build_seconds),
                 core::TablePrinter::fmt(pre.peak_prepared_bytes / 1e6, 2),
                 "100.0%", "post-hoc", "-", "ref"});
  json.add_row({{"mode", "precomputed"}},
               {{"ms_per_epoch", pre.seconds * 1e3},
                {"build_ms", pre.build_seconds * 1e3},
                {"peak_prepared_bytes", static_cast<double>(pre.peak_prepared_bytes)},
                {"peak_ratio", 1.0},
                {"batches", static_cast<double>(pre.batches)},
                {"bmma_ops", static_cast<double>(pre.bmma_ops)}});

  bool counters_match = true;
  bool memory_bounded = true;
  for (const int depth : depths) {
    core::EngineConfig scfg = cfg;
    scfg.mode = core::RunMode::streaming_pipeline(depth, stage_threads);
    const ModeResult s = run_mode(ds, scfg, rounds);
    const bool match =
        s.bmma_ops == pre.bmma_ops && s.tiles_jumped == pre.tiles_jumped;
    counters_match = counters_match && match;
    const double peak_ratio = static_cast<double>(s.peak_prepared_bytes) /
                              static_cast<double>(pre.peak_prepared_bytes);
    // The acceptance bar: depth-proportional residency, ≤ 50% at depth 2.
    if (depth <= 2) memory_bounded = memory_bounded && peak_ratio <= 0.5;

    table.add_row({"streaming d=" + std::to_string(depth), ms(s.seconds),
                   core::TablePrinter::fmt(pre.seconds / s.seconds, 2) + "x",
                   ms(s.build_seconds),
                   core::TablePrinter::fmt(s.peak_prepared_bytes / 1e6, 2),
                   core::TablePrinter::fmt_pct(peak_ratio, 1),
                   core::TablePrinter::fmt(s.wire_ms, 2),
                   core::TablePrinter::fmt(s.exposed_ms, 2),
                   match ? "match" : "MISMATCH"});
    json.add_row({{"mode", "streaming"}},
                 {{"pipeline_depth", static_cast<double>(depth)},
                  {"ms_per_epoch", s.seconds * 1e3},
                  {"build_ms", s.build_seconds * 1e3},
                  {"peak_prepared_bytes", static_cast<double>(s.peak_prepared_bytes)},
                  {"peak_ratio", peak_ratio},
                  {"wire_ms", s.wire_ms},
                  {"exposed_ms", s.exposed_ms},
                  {"packed_bytes", static_cast<double>(s.packed_bytes)},
                  {"counters_match", match ? 1.0 : 0.0},
                  // Per-stage busy/stall attribution (ms per epoch): the
                  // stall columns say which stage the depth knob starves.
                  {"prepare_busy_ms", s.stages.prepare.busy_seconds * 1e3},
                  {"prepare_stall_ms", s.stages.prepare.stall_seconds * 1e3},
                  {"ship_busy_ms", s.stages.ship.busy_seconds * 1e3},
                  {"ship_stall_ms", s.stages.ship.stall_seconds * 1e3},
                  {"compute_busy_ms", s.stages.compute.busy_seconds * 1e3},
                  {"compute_stall_ms", s.stages.compute.stall_seconds * 1e3}});
    std::cerr << "  [done] streaming depth " << depth
              << " (stalls ms p/s/c: "
              << core::TablePrinter::fmt(s.stages.prepare.stall_seconds * 1e3, 1)
              << "/" << core::TablePrinter::fmt(s.stages.ship.stall_seconds * 1e3, 1)
              << "/"
              << core::TablePrinter::fmt(s.stages.compute.stall_seconds * 1e3, 1)
              << ")\n";
  }

  bool overhead_gate_ok = true;
  // ----------------------------------------------- tracing overhead gate
  // The observability claim: instrumentation compiled in and *disabled* is
  // one relaxed atomic load per span site (within run-to-run noise), and
  // *enabled* tracing stays under 5% epoch overhead. Three runs of the same
  // depth-2 streaming config: disabled, disabled again (noise floor),
  // enabled. The allowance is max(5%, 2x measured noise + 5 ms) so a noisy
  // CI host widens the gate rather than flaking it.
  {
    core::EngineConfig scfg = cfg;
    scfg.mode = core::RunMode::streaming_pipeline(2, stage_threads);
    const double off1 = run_mode(ds, scfg, rounds).seconds;
    const double off2 = run_mode(ds, scfg, rounds).seconds;
    obs::SpanSink::instance().enable();
    const double on = run_mode(ds, scfg, rounds).seconds;
    obs::SpanSink::instance().disable();
    const i64 traced_spans = static_cast<i64>(obs::SpanSink::instance().span_count());

    const double off = std::min(off1, off2);
    const double noise = std::abs(off1 - off2);
    const double overhead = on - off;
    const double allowance = std::max(0.05 * off, 2.0 * noise + 5e-3);
    const bool overhead_ok = overhead <= allowance && traced_spans > 0;
    std::cout << "\nTracing overhead (streaming d=2): disabled " << ms(off1)
              << "/" << ms(off2) << " ms, enabled " << ms(on) << " ms ("
              << traced_spans << " spans) -> overhead " << ms(overhead)
              << " ms, allowance " << ms(allowance) << " ms: "
              << (overhead_ok ? "OK" : "EXCEEDED") << "\n";
    json.meta("trace_off_ms", off * 1e3);
    json.meta("trace_off_noise_ms", noise * 1e3);
    json.meta("trace_on_ms", on * 1e3);
    json.meta("trace_overhead_ms", overhead * 1e3);
    json.meta("trace_allowance_ms", allowance * 1e3);
    json.meta("trace_spans", static_cast<double>(traced_spans));
    json.meta("trace_overhead_ok", overhead_ok ? 1.0 : 0.0);
    overhead_gate_ok = overhead_ok;
  }
  // Process-level peak RSS is monotonic over the whole run (the precomputed
  // baseline sets the high-water); per-mode memory is peak_prepared_bytes.
  add_memory_meta(json);
  table.print(std::cout);
  std::cout << (counters_match
                    ? "\nSchedule parity: bmma_ops and tiles_jumped identical "
                      "between streaming and precomputed epochs.\n"
                    : "\nWARNING: counter mismatch between streaming and "
                      "precomputed epochs!\n");
  std::cout << (memory_bounded
                    ? "Memory bound holds: peak resident <= 50% of "
                      "precomputed at depth <= 2.\n"
                    : "WARNING: streaming peak resident exceeded 50% of "
                      "precomputed at depth <= 2!\n");
  std::cout << (overhead_gate_ok
                    ? "Tracing overhead gate holds: disabled within noise, "
                      "enabled within the 5% allowance.\n"
                    : "WARNING: tracing overhead gate failed!\n");
  return counters_match && memory_bounded && overhead_gate_ok ? 0 : 1;
}

}  // namespace
}  // namespace qgtc::bench

int main(int argc, char** argv) { return qgtc::bench::run(argc, argv); }
