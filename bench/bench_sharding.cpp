// bench_sharding — the NUMA-sharded engine's gates and scaling surface.
//
// 1. Parity gate: a 2-shard (and 4-shard) run must produce bit-identical
//    logits and identical substrate counters to the single-engine run — the
//    determinism contract sharding is built on.
// 2. Scaling: sharded epoch wall time vs the single-engine baseline at the
//    same total worker budget spread across shards; the gate (>= 1.3x at 2
//    shards) is enforced only on hosts with >= 4 cores, where there is real
//    parallelism to win.
// 3. Telemetry: per-shard busy/stall, halo bytes and exposed-halo seconds
//    rows, plus the imbalance summary — the rebalancer's input surface.
//
// Any gate violation prints FAIL and exits non-zero (the CI smoke contract).
#include <iostream>

#include "bench_util.hpp"
#include "core/sharded.hpp"
#include "parallel/parallel_for.hpp"

int main(int argc, char** argv) {
  using namespace qgtc;
  using core::TablePrinter;

  bench::print_banner(
      "NUMA-sharded engine (halo exchange + modelled interconnect)",
      "sharding a partitioned GNN epoch across memory domains scales epoch "
      "throughput while halo traffic stays a small, accounted fraction");

  const auto spec = table1_spec(bench::quick() ? "Proteins" : "artist");
  const Dataset ds = generate_dataset(spec);
  const int rounds = bench::quick() ? 2 : 3;

  core::EngineConfig cfg;
  cfg.model.kind = gnn::ModelKind::kClusterGCN;
  cfg.model.num_layers = 3;
  cfg.model.in_dim = spec.feature_dim;
  cfg.model.hidden_dim = 16;
  cfg.model.out_dim = spec.num_classes;
  cfg.model.feat_bits = 4;
  cfg.model.weight_bits = 4;
  cfg.num_partitions = bench::quick() ? 256 : 1500;
  cfg.batch_size = 16;
  cfg.mode.adjacency = core::RunMode::Adjacency::kTileSparse;

  bench::JsonReport json("sharding", argc, argv);
  json.meta("workload", "sharded epoch scaling + halo accounting");
  json.meta("dataset", spec.name);
  json.meta("host_threads", static_cast<double>(num_threads()));
  json.meta("rounds", static_cast<double>(rounds));

  // ------------------------------------------------------------ parity gate
  // Single-engine reference at 1 worker (the per-shard budget below).
  cfg.inter_batch_threads = 1;
  core::QgtcEngine reference(ds, cfg);
  std::vector<MatrixI32> ref_logits;
  const core::EngineStats ref = reference.run_quantized(rounds, &ref_logits);

  bool parity_ok = true;
  TablePrinter table({"config", "epoch ms", "speedup", "halo MB",
                      "exposed halo ms", "max/mean busy"});
  table.add_row({"1 engine", bench::ms(ref.forward_seconds), "1.00", "0.00",
                 "0.00", "1.00"});
  json.add_row({{"kind", "baseline"}},
               {{"shards", 1.0},
                {"epoch_seconds", ref.forward_seconds},
                {"speedup", 1.0},
                {"halo_bytes", 0.0},
                {"exposed_halo_seconds", 0.0},
                {"bmma_ops", static_cast<double>(ref.bmma_ops)}});

  double two_shard_speedup = 0.0;
  for (const int shards : {2, 4}) {
    core::EngineConfig scfg_engine = cfg;
    // Same total worker budget as `shards` single-engine workers would use:
    // the coordinator divides this across shards, so each shard matches the
    // baseline's per-engine staffing and the speedup measures the shard
    // fan-out itself.
    scfg_engine.inter_batch_threads = shards;
    core::ShardedConfig scfg;
    scfg.num_shards = shards;
    core::ShardedEngine sharded(ds, scfg_engine, scfg);
    std::vector<MatrixI32> logits;
    const core::EngineStats st = sharded.run_quantized(rounds, &logits);

    bool match = logits.size() == ref_logits.size() &&
                 st.bmma_ops == ref.bmma_ops &&
                 st.tiles_jumped == ref.tiles_jumped &&
                 st.nodes == ref.nodes;
    if (match) {
      for (std::size_t b = 0; b < logits.size(); ++b) {
        if (!(logits[b] == ref_logits[b])) {
          match = false;
          break;
        }
      }
    }
    if (!match) {
      std::cout << "FAIL: " << shards
                << "-shard run diverged from the single-engine reference\n";
      parity_ok = false;
    }
    if (st.halo_bytes <= 0) {
      std::cout << "FAIL: " << shards << "-shard run reported no halo bytes\n";
      parity_ok = false;
    }

    const double speedup = st.forward_seconds > 0.0
                               ? ref.forward_seconds / st.forward_seconds
                               : 0.0;
    if (shards == 2) two_shard_speedup = speedup;
    const core::ImbalanceReport imb = sharded.imbalance();
    table.add_row({std::to_string(shards) + " shards",
                   bench::ms(st.forward_seconds),
                   TablePrinter::fmt(speedup, 2),
                   TablePrinter::fmt(static_cast<double>(st.halo_bytes) /
                                         (1024.0 * 1024.0),
                                     2),
                   bench::ms(st.exposed_halo_seconds),
                   TablePrinter::fmt(imb.max_over_mean, 2)});
    json.add_row({{"kind", "sharded"}},
                 {{"shards", static_cast<double>(shards)},
                  {"epoch_seconds", st.forward_seconds},
                  {"speedup", speedup},
                  {"halo_nodes", static_cast<double>(st.halo_nodes)},
                  {"halo_bytes", static_cast<double>(st.halo_bytes)},
                  {"halo_wire_seconds", st.halo_wire_seconds},
                  {"exposed_halo_seconds", st.exposed_halo_seconds},
                  {"max_over_mean_busy", imb.max_over_mean},
                  {"halo_stall_share", imb.halo_stall_share},
                  {"parity", match ? 1.0 : 0.0}});

    // Per-shard telemetry rows: the imbalance analysis' raw input.
    for (const core::ShardReport& r : sharded.shard_reports()) {
      json.add_row(
          {{"kind", "shard"}},
          {{"shards", static_cast<double>(shards)},
           {"shard", static_cast<double>(r.shard)},
           {"batches", static_cast<double>(r.batches)},
           {"nodes", static_cast<double>(r.nodes)},
           {"busy_seconds", r.busy_seconds},
           {"stall_seconds", r.stall_seconds},
           {"halo_bytes", static_cast<double>(r.halo_bytes)},
           {"halo_wire_seconds", r.halo_wire_seconds},
           {"exposed_halo_seconds", r.exposed_halo_seconds},
           {"pinned", r.pinned ? 1.0 : 0.0}});
    }
  }
  table.print(std::cout);

  // ------------------------------------------------------- scaling gate
  // Only meaningful with real cores to spread over: 2 shards x 1 worker
  // needs >= 4 cores to leave room for OS noise; below that the bench still
  // reports the numbers but does not enforce the ratio.
  const bool enforce_scaling = num_threads() >= 4;
  bool scaling_ok = true;
  if (enforce_scaling && two_shard_speedup < 1.3) {
    std::cout << "FAIL: 2-shard speedup " << TablePrinter::fmt(two_shard_speedup, 2)
              << "x below the 1.3x gate (host has " << num_threads()
              << " threads)\n";
    scaling_ok = false;
  }
  json.meta("scaling_gate_enforced", enforce_scaling ? 1.0 : 0.0);
  json.meta("two_shard_speedup", two_shard_speedup);
  json.meta("parity", parity_ok ? 1.0 : 0.0);
  bench::add_memory_meta(json);
  json.write();

  if (parity_ok && scaling_ok) {
    std::cout << "\nSharding gates hold: S-shard runs bit-identical to the "
                 "single engine, halo accounted"
              << (enforce_scaling ? ", 2-shard speedup >= 1.3x.\n"
                                  : " (scaling gate skipped: small host).\n");
    return 0;
  }
  return 1;
}
