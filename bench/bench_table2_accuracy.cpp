// Table 2: model accuracy vs quantization bitwidth. QAT-trained 2-layer GCN
// on the (synthetic, scaled) ogbn graphs at fp32/16/8/4/2 bits.
#include <iostream>

#include "bench_util.hpp"
#include "gnn/qat.hpp"

int main() {
  using namespace qgtc;
  using core::TablePrinter;

  bench::print_banner(
      "Table 2 — accuracy w.r.t. quantization bitwidth (QAT GCN)",
      "fp32 ~ 16-bit ~ 8-bit; drops at 4-bit; collapses at 2-bit "
      "(paper ogbn-arxiv: 0.724/0.708/0.707/0.685/0.498)");

  // Scaled-down ogbn stand-ins: QAT is a training loop, and the trend (not
  // the wall-clock) is the deliverable here.
  const double arxiv_scale = bench::quick() ? 0.05 : 0.2;
  const double products_scale = bench::quick() ? 0.005 : 0.02;
  DatasetSpec arxiv = table1_spec("ogbn-arxiv");
  arxiv.num_nodes = static_cast<i64>(arxiv.num_nodes * arxiv_scale);
  arxiv.num_edges = static_cast<i64>(arxiv.num_edges * arxiv_scale);
  arxiv.num_clusters = std::max<i64>(arxiv.num_clusters / 5, 40);
  DatasetSpec products = table1_spec("ogbn-products", 1.0);
  products.num_nodes = static_cast<i64>(products.num_nodes * products_scale);
  products.num_edges = static_cast<i64>(products.num_edges * products_scale);
  products.num_clusters = std::max<i64>(products.num_clusters / 10, 50);

  const std::vector<std::pair<std::string, int>> settings = {
      {"FP32", 32}, {"16 bits", 16}, {"8 bits", 8}, {"4 bits", 4}, {"2 bits", 2}};

  TablePrinter table({"Settings", "FP32", "16 bits", "8 bits", "4 bits", "2 bits"});
  for (const DatasetSpec* spec : {&products, &arxiv}) {
    const Dataset ds = generate_dataset(*spec);
    std::vector<std::string> row = {spec->name};
    for (const auto& [label, bits] : settings) {
      (void)label;
      gnn::QatConfig qcfg;
      qcfg.bits = bits;
      qcfg.epochs = bench::quick() ? 10 : 25;
      qcfg.hidden = 64;
      const auto res = gnn::train_qat_gcn(ds, qcfg);
      row.push_back(TablePrinter::fmt(res.test_acc, 3));
      std::cerr << "  [done] " << spec->name << " @ " << bits << " bits -> "
                << res.test_acc << "\n";
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(planted-community SBM stand-ins for the ogbn graphs; the"
               "\n accuracy *trend* across bitwidths is the reproduced claim)\n";
  return 0;
}
