// Figure 7(b): end-to-end Batched GIN inference (3 layers, hidden 64) —
// DGL(fp32) vs QGTC at 2/4/8/16/32 bits across the Table-1 datasets.
// GIN applies the node update before aggregation (§6.1), raising the
// computation-to-communication ratio and QGTC's relative win.
#include <cmath>

#include "bench_fig7_common.hpp"

int main() {
  using namespace qgtc;
  bench::print_banner(
      "Figure 7(b) — Batched GIN end-to-end inference vs DGL",
      "QGTC beats DGL (avg ~2.8x), larger margin than GCN due to "
      "update-before-aggregate");
  bench::run_fig7(gnn::ModelKind::kBatchedGIN, /*hidden_dim=*/64);
  return 0;
}
