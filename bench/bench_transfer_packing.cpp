// §4.6 study: bandwidth-optimised subgraph packing — bytes and modelled PCIe
// time per epoch, packed low-bit compound object vs dense fp32 (two
// transfers), per Table-1 dataset.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace qgtc;
  using core::TablePrinter;

  bench::print_banner(
      "Transfer study (§4.6) — packed low-bit vs dense fp32 over PCIe",
      "packed compound object cuts bytes by >8x and wire time accordingly");

  TablePrinter table({"Dataset", "packed MB", "dense MB", "byte ratio",
                      "packed ms (PCIe)", "dense ms (PCIe)", "speedup"});
  for (const auto& spec : bench::bench_datasets()) {
    const Dataset ds = generate_dataset(spec);
    core::EngineConfig ecfg;
    ecfg.model.kind = gnn::ModelKind::kClusterGCN;
    ecfg.model.num_layers = 3;
    ecfg.model.in_dim = spec.feature_dim;
    ecfg.model.hidden_dim = 16;
    ecfg.model.out_dim = spec.num_classes;
    ecfg.model.feat_bits = 4;
    ecfg.model.weight_bits = 4;
    ecfg.num_partitions = 1500;
    ecfg.batch_size = 16;
    const core::QgtcEngine engine(ds, ecfg);
    const core::EngineStats s = engine.transfer_accounting();

    table.add_row(
        {spec.name, TablePrinter::fmt(static_cast<double>(s.packed_bytes) / 1e6, 1),
         TablePrinter::fmt(static_cast<double>(s.dense_bytes) / 1e6, 1),
         TablePrinter::fmt(static_cast<double>(s.dense_bytes) /
                               static_cast<double>(s.packed_bytes),
                           1) + "x",
         bench::ms(s.packed_transfer_seconds), bench::ms(s.dense_transfer_seconds),
         TablePrinter::fmt(s.dense_transfer_seconds / s.packed_transfer_seconds, 1) +
             "x"});
    std::cerr << "  [done] " << spec.name << "\n";
  }
  table.print(std::cout);
  return 0;
}
