// bench_feature_store — the out-of-core store + prepared-batch cache gates.
//
// Phase A (cache): one streaming engine with the BatchCache enabled vs one
// without, same dataset, same knobs. The cached engine's timed (warm) epochs
// must hit the cache on >= 90% of lookups and run >= 1.3x faster than the
// uncached engine's epochs (which pay prepare + pack every batch).
//
// Phase B (out-of-core): the Figure 7(a) cluster-GCN sweep runs twice in
// CHILD processes (fork + exec of /proc/self/exe) — once loading the whole
// dataset in-core, once over the mmap'd store with a small residency budget.
// VmHWM is monotonic per process, so peak RSS is measured per child via
// wait4()'s ru_maxrss. Gates: identical logits hash + substrate counters,
// and out-of-core peak RSS <= 60% of in-core.
//
// Any gate violation prints FAIL and exits non-zero (the CI smoke contract).
// QGTC_QUICK=1 shrinks phase A; phase B keeps its dataset large enough that
// the feature matrix dominates a small host's base RSS.
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "graph/io.hpp"
#include "store/dataset_store.hpp"

namespace {

using namespace qgtc;
namespace fs = std::filesystem;

u64 logits_hash(const std::vector<MatrixI32>& logits) {
  u64 h = 0xcbf29ce484222325ull;
  const auto mix = [&h](u64 v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  for (const MatrixI32& m : logits) {
    mix(static_cast<u64>(m.rows()));
    for (i64 i = 0; i < m.size(); ++i) {
      mix(static_cast<u64>(static_cast<u32>(m.data()[i])));
    }
  }
  return h;
}

// ------------------------------------------------------------------ phase B

DatasetSpec fig7a_spec() {
  // Sized so the fp32 feature matrix (~164 MB) dominates the process base
  // RSS: the in-core child must hold all of it, the out-of-core child only
  // the residency budget's worth of mapped pages.
  return DatasetSpec{"fig7a-ooc", 160000, 1200000, 256, 16, 1024, 11};
}

core::EngineConfig fig7a_config() {
  core::EngineConfig cfg;
  cfg.model.kind = gnn::ModelKind::kClusterGCN;
  cfg.model.num_layers = 2;
  cfg.model.in_dim = 256;
  cfg.model.hidden_dim = 16;
  cfg.model.out_dim = 16;
  cfg.model.feat_bits = 4;
  cfg.model.weight_bits = 4;
  cfg.num_partitions = 1024;
  cfg.batch_size = 16;
  // Streaming keeps prepared data O(depth) in BOTH children, so the RSS gap
  // isolates exactly the feature/CSR storage substitution.
  cfg.mode = core::RunMode::streaming_pipeline(
      1, 1, core::RunMode::Adjacency::kTileSparse);
  cfg.inter_batch_threads = 1;
  return cfg;
}

/// Child body: run the sweep, write counters + logits hash, exit 0.
/// (`--child-write` instead generates the dataset and writes both on-disk
/// forms; it runs in a child so the parent's RSS stays small — a forked
/// child's ru_maxrss starts at the parent's resident set, so the parent
/// must be tiny when the measured children are spawned.)
int run_child(const std::string& mode, const std::string& data_path,
              const std::string& out_path) {
  if (mode == "--child-write") {
    const Dataset ds = generate_dataset(fig7a_spec());
    io::save_dataset_file(data_path + "/dataset.bin", ds);
    io::save_dataset_store(data_path + "/store", ds);
    std::ofstream out(out_path);
    out << "0 0 0 0\n";
    return out ? 0 : 1;
  }
  Dataset ds;
  std::unique_ptr<store::DatasetStore> st;
  std::unique_ptr<core::QgtcEngine> engine;
  const core::EngineConfig cfg = fig7a_config();
  if (mode == "--child-incore") {
    ds = io::load_dataset_file(data_path);
    engine = std::make_unique<core::QgtcEngine>(ds, cfg);
  } else {
    store::StoreOpenOptions opt;
    opt.residency_budget_bytes = 8ll << 20;
    st = std::make_unique<store::DatasetStore>(
        store::DatasetStore::open(data_path, opt));
    engine = std::make_unique<core::QgtcEngine>(*st, cfg);
  }
  std::vector<MatrixI32> logits;
  const core::EngineStats s = engine->run_quantized(1, &logits);
  std::ofstream out(out_path);
  out << s.bmma_ops << ' ' << s.tiles_jumped << ' ' << s.nodes << ' '
      << logits_hash(logits) << '\n';
  return out ? 0 : 1;
}

struct ChildResult {
  i64 bmma = 0;
  i64 jumped = 0;
  i64 nodes = 0;
  u64 lhash = 0;
  i64 peak_rss_bytes = 0;
};

/// Forks + execs this binary in child mode and reads back counters + the
/// child's own ru_maxrss.
ChildResult spawn_child(const std::string& mode, const std::string& data_path,
                        const std::string& out_path) {
  const pid_t pid = fork();
  QGTC_CHECK(pid >= 0, "fork failed");
  if (pid == 0) {
    const char* argv[] = {"/proc/self/exe", mode.c_str(), data_path.c_str(),
                          out_path.c_str(), nullptr};
    execv("/proc/self/exe", const_cast<char**>(argv));
    _exit(127);  // exec failed
  }
  int status = 0;
  struct rusage ru {};
  QGTC_CHECK(wait4(pid, &status, 0, &ru) == pid, "wait4 failed");
  QGTC_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0,
             "child " + mode + " failed");
  ChildResult r;
  r.peak_rss_bytes = static_cast<i64>(ru.ru_maxrss) * 1024;  // KB -> bytes
  std::ifstream in(out_path);
  QGTC_CHECK(static_cast<bool>(in >> r.bmma >> r.jumped >> r.nodes >> r.lhash),
             "child result unreadable: " + out_path);
  return r;
}

// ------------------------------------------------------------------ phase A

core::EngineConfig cache_bench_config(const DatasetSpec& spec) {
  core::EngineConfig cfg;
  cfg.model.kind = gnn::ModelKind::kClusterGCN;
  cfg.model.num_layers = 2;
  cfg.model.in_dim = spec.feature_dim;
  cfg.model.hidden_dim = 16;
  cfg.model.out_dim = spec.num_classes;
  cfg.model.feat_bits = 4;
  cfg.model.weight_bits = 4;
  cfg.num_partitions = spec.num_clusters;
  cfg.batch_size = 8;
  cfg.mode = core::RunMode::streaming_pipeline(
      2, 1, core::RunMode::Adjacency::kTileSparse);
  cfg.inter_batch_threads = 1;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qgtc;
  if (argc == 4 && std::strncmp(argv[1], "--child-", 8) == 0) {
    return run_child(argv[1], argv[2], argv[3]);
  }

  bench::print_banner(
      "Out-of-core feature store + prepared-batch cache",
      "warm cached epochs skip prepare+pack (>=1.3x, hit ratio >=90%); "
      "out-of-core peak RSS <=60% of in-core at identical results");
  bench::JsonReport json("feature_store", argc, argv);
  json.meta("workload", "streaming cluster-GCN, tile-sparse, 4-bit");
  std::vector<std::string> failures;

  const std::string tmp = "qgtc_bench_feature_store_tmp";
  fs::remove_all(tmp);
  fs::create_directories(tmp);

  // ---------------------------------------------------------------- phase B
  {
    std::cout << "Fig. 7(a) sweep, in-core child vs out-of-core child...\n";
    const std::string data_bin = tmp + "/dataset.bin";
    const std::string store_dir = tmp + "/store";
    // Generate + write in a child: a forked child's ru_maxrss starts at the
    // parent's resident set, so the parent must never hold the dataset.
    spawn_child("--child-write", tmp, tmp + "/write.txt");

    const ChildResult incore =
        spawn_child("--child-incore", data_bin, tmp + "/incore.txt");
    const ChildResult ooc =
        spawn_child("--child-ooc", store_dir, tmp + "/ooc.txt");

    const double rss_ratio = static_cast<double>(ooc.peak_rss_bytes) /
                             static_cast<double>(incore.peak_rss_bytes);
    const bool counters_ok = incore.bmma == ooc.bmma &&
                             incore.jumped == ooc.jumped &&
                             incore.nodes == ooc.nodes &&
                             incore.lhash == ooc.lhash;

    core::TablePrinter table({"metric", "in-core", "out-of-core"});
    table.add_row({"peak RSS MB",
                   core::TablePrinter::fmt(
                       static_cast<double>(incore.peak_rss_bytes) / 1e6, 1),
                   core::TablePrinter::fmt(
                       static_cast<double>(ooc.peak_rss_bytes) / 1e6, 1)});
    table.add_row({"tile MMAs", std::to_string(incore.bmma),
                   std::to_string(ooc.bmma)});
    table.add_row({"logits hash", std::to_string(incore.lhash),
                   std::to_string(ooc.lhash)});
    table.add_row({"RSS ratio", "-",
                   core::TablePrinter::fmt_pct(rss_ratio, 1)});
    table.print(std::cout);

    json.meta("incore_peak_rss_bytes",
              static_cast<double>(incore.peak_rss_bytes));
    json.meta("ooc_peak_rss_bytes", static_cast<double>(ooc.peak_rss_bytes));
    json.meta("rss_ratio", rss_ratio);
    json.meta("counters_parity", counters_ok ? 1.0 : 0.0);

    if (!counters_ok) {
      failures.push_back("out-of-core counters/logits differ from in-core");
    }
    if (rss_ratio > 0.60) {
      failures.push_back("out-of-core RSS ratio " + std::to_string(rss_ratio) +
                         " > 0.60");
    }
  }


  // ---------------------------------------------------------------- phase A
  {
    std::cout << "\nCached vs uncached streaming epochs...\n";
    DatasetSpec spec{"cache-bench", bench::quick() ? 20000 : 60000,
                     bench::quick() ? 140000 : 420000, 32, 8,
                     bench::quick() ? 128 : 384, 21};
    const Dataset ds = generate_dataset(spec);
    const int rounds = 3;
    core::EngineConfig off_cfg = cache_bench_config(spec);
    core::EngineConfig on_cfg = off_cfg;
    on_cfg.cache_budget_bytes = i64{1} << 30;

    core::QgtcEngine engine_off(ds, off_cfg);
    core::QgtcEngine engine_on(ds, on_cfg);
    std::vector<MatrixI32> la, lb;
    const core::EngineStats cold = engine_off.run_quantized(rounds, &la);
    const core::EngineStats warm = engine_on.run_quantized(rounds, &lb);

    const double speedup = cold.forward_seconds / warm.forward_seconds;
    const double lookups =
        static_cast<double>(warm.cache_hits + warm.cache_misses);
    const double hit_ratio =
        lookups > 0 ? static_cast<double>(warm.cache_hits) / lookups : 0.0;
    const bool parity = logits_hash(la) == logits_hash(lb);

    core::TablePrinter table({"metric", "uncached", "cached(warm)"});
    table.add_row({"epoch ms", bench::ms(cold.forward_seconds),
                   bench::ms(warm.forward_seconds)});
    table.add_row({"prepare MB read/epoch",
                   core::TablePrinter::fmt(
                       static_cast<double>(cold.prepare_bytes_read) / 1e6, 2),
                   core::TablePrinter::fmt(
                       static_cast<double>(warm.prepare_bytes_read) / 1e6, 2)});
    table.add_row({"cache hit ratio", "-",
                   core::TablePrinter::fmt_pct(hit_ratio, 1)});
    table.add_row({"warm speedup", "-",
                   core::TablePrinter::fmt(speedup, 2) + "x"});
    table.print(std::cout);

    json.meta("uncached_epoch_ms", cold.forward_seconds * 1e3);
    json.meta("cached_epoch_ms", warm.forward_seconds * 1e3);
    json.meta("warm_speedup", speedup);
    json.meta("warm_hit_ratio", hit_ratio);
    json.meta("cache_resident_bytes",
              static_cast<double>(warm.cache_resident_bytes));
    json.meta("logits_parity", parity ? 1.0 : 0.0);

    if (!parity) failures.push_back("cached vs uncached logits differ");
    if (hit_ratio < 0.90) {
      failures.push_back("warm hit ratio " + std::to_string(hit_ratio) +
                         " < 0.90");
    }
    if (speedup < 1.3) {
      failures.push_back("warm speedup " + std::to_string(speedup) +
                         "x < 1.3x");
    }
  }

  fs::remove_all(tmp);
  bench::add_memory_meta(json);
  json.meta("gates_passed", failures.empty() ? 1.0 : 0.0);
  json.write();
  if (!failures.empty()) {
    for (const std::string& f : failures) std::cerr << "FAIL: " << f << "\n";
    return 1;
  }
  std::cout << "\nAll feature-store gates passed.\n";
  return 0;
}
