// Figure 7(c): neighbour-aggregation kernel throughput (TFLOPs) — QGTC
// low-bit (2..7-bit embeddings, 1-bit adjacency) vs the cuBLASgemmEX(int8)
// substitute, on A(N x N) x X(N x D) with N in {1024, 2048, 4096} and
// D in {16, 32, 64}.
#include <iostream>

#include "baselines/int8_gemm.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "kernels/anybit_mm.hpp"

int main() {
  using namespace qgtc;
  using core::TablePrinter;

  bench::print_banner(
      "Figure 7(c) — aggregation kernel TFLOPs vs cuBLAS int8",
      "QGTC 2..7-bit well above int8; the gain shrinks toward 8 bits");

  const std::vector<i64> ns =
      bench::quick() ? std::vector<i64>{1024} : std::vector<i64>{1024, 2048, 4096};
  const std::vector<i64> dims = {16, 32, 64};
  const std::vector<int> qgtc_bits = {2, 3, 4, 5, 6, 7};

  std::vector<std::string> headers = {"N", "Dim", "CUBLAS_INT8"};
  for (const int b : qgtc_bits) headers.push_back("QGTC_" + std::to_string(b));
  TablePrinter table(headers);

  Rng rng(2023);
  for (const i64 d : dims) {
    for (const i64 n : ns) {
      // Binary adjacency at ~10% density (post-METIS subgraph blocks) and
      // random embedding codes.
      MatrixI32 adj(n, n);
      for (i64 i = 0; i < adj.size(); ++i) adj.data()[i] = rng.next_bool(0.1f) ? 1 : 0;
      MatrixI32 x8(n, d);
      for (i64 i = 0; i < x8.size(); ++i) x8.data()[i] = static_cast<i32>(rng.next_below(127));

      // cuBLAS int8 substitute: dense int8 GEMM, adjacency forced into int8.
      const auto a8 = baselines::to_int8(adj);
      const auto b8 = baselines::to_int8(x8);
      const double int8_s =
          time_it([&] { (void)baselines::gemm_int8(a8, b8); }, 0.3);

      std::vector<std::string> row = {std::to_string(n), std::to_string(d),
                                      TablePrinter::fmt(bench::tflops(n, d, int8_s), 2)};

      const BitMatrix pa = pack_nonzero(adj, BitLayout::kRowMajorK);
      for (const int bits : qgtc_bits) {
        MatrixI32 xq(n, d);
        const u64 range = u64{1} << bits;
        for (i64 i = 0; i < xq.size(); ++i) {
          xq.data()[i] = static_cast<i32>(rng.next_below(range));
        }
        const auto px = StackedBitTensor::decompose(xq, bits, BitLayout::kColMajorK);
        const double q_s = time_it(
            [&] { (void)aggregate_1bit(pa, px, ReuseMode::kCrossTile); }, 0.3);
        row.push_back(TablePrinter::fmt(bench::tflops(n, d, q_s), 2));
      }
      table.add_row(std::move(row));
      std::cerr << "  [done] N=" << n << " D=" << d << "\n";
    }
  }
  table.print(std::cout);
  return 0;
}
