// §4.1 granularity study: "the more number of the subgraphs/partitions would
// lead to denser edge connections within each subgraph, which may bring
// better computation and memory locality", and batch size controls device
// utilisation. Sweeps partition count and batch size on one dataset and
// reports intra-edge fraction, non-zero tile ratio, and epoch latency; a
// second sweep over shard counts reports the scale-out cost surface (edge
// cut + halo bytes) a sharded deployment pays.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace qgtc;
  using core::TablePrinter;

  bench::print_banner(
      "Partition/batch granularity study (paper §4.1)",
      "more partitions => denser subgraphs (fewer non-zero tiles per node); "
      "batch size trades utilisation vs memory");

  const auto spec = table1_spec(bench::quick() ? "Proteins" : "artist");
  const Dataset ds = generate_dataset(spec);
  bench::JsonReport json("partition_sweep", argc, argv);
  json.meta("workload", "partition/batch granularity + shard-count sweep");
  json.meta("dataset", spec.name);
  json.meta("nodes", static_cast<double>(spec.num_nodes));
  json.meta("edges", static_cast<double>(spec.num_edges));
  json.meta("feature_dim", static_cast<double>(spec.feature_dim));

  TablePrinter table({"partitions", "batch", "intra-edge %", "non-zero tiles %",
                      "QGTC 4-bit ms", "DGL fp32 ms"});
  const std::vector<i64> part_counts =
      bench::quick() ? std::vector<i64>{375, 1500}
                     : std::vector<i64>{375, 750, 1500, 3000};
  for (const i64 parts : part_counts) {
    for (const i64 batch : {8, 16}) {
      core::EngineConfig cfg;
      cfg.model.kind = gnn::ModelKind::kClusterGCN;
      cfg.model.num_layers = 3;
      cfg.model.in_dim = spec.feature_dim;
      cfg.model.hidden_dim = 16;
      cfg.model.out_dim = spec.num_classes;
      cfg.model.feat_bits = 4;
      cfg.model.weight_bits = 4;
      cfg.num_partitions = parts;
      cfg.batch_size = batch;
      core::QgtcEngine engine(ds, cfg);

      const PartitionResult pr = partition_graph(ds.graph, parts, {});
      const double q_s = engine.run_quantized(2).forward_seconds;
      const double f_s = engine.run_fp32(2).forward_seconds;
      table.add_row({std::to_string(parts), std::to_string(batch),
                     TablePrinter::fmt_pct(pr.intra_edge_fraction(ds.graph), 1),
                     TablePrinter::fmt_pct(engine.nonzero_tile_ratio(), 1),
                     bench::ms(q_s), bench::ms(f_s)});
      json.add_row({{"kind", "granularity"}},
                   {{"partitions", static_cast<double>(parts)},
                    {"batch", static_cast<double>(batch)},
                    {"intra_edge_fraction", pr.intra_edge_fraction(ds.graph)},
                    {"nonzero_tile_ratio", engine.nonzero_tile_ratio()},
                    {"qgtc_seconds", q_s},
                    {"fp32_seconds", f_s}});
      std::cerr << "  [done] parts=" << parts << " batch=" << batch << "\n";
    }
  }
  table.print(std::cout);

  // ------------------------------------------------- shard-count cost sweep
  // The coarse S-way ownership split a ShardedEngine plans over: what a
  // shard count costs in cross-shard edges and replicated halo features
  // (halo bytes = the fp32 rows the interconnect must move once per epoch).
  std::cout << "\nShard-count sweep (scale-out cost: edge cut + halo)\n";
  TablePrinter shard_table(
      {"shards", "edge cut", "cut %", "halo nodes", "halo MB"});
  for (const i64 shards : {2, 4, 8}) {
    const PartitionResult pr = partition_graph(ds.graph, shards, {});
    const i64 cut = pr.edge_cut(ds.graph);
    const double cut_frac =
        spec.num_edges > 0
            ? static_cast<double>(cut) / static_cast<double>(spec.num_edges)
            : 0.0;
    const i64 halo_nodes = pr.total_halo(ds.graph);
    const i64 halo_bytes =
        halo_nodes * spec.feature_dim * static_cast<i64>(sizeof(float));
    shard_table.add_row(
        {std::to_string(shards), std::to_string(cut),
         TablePrinter::fmt_pct(cut_frac, 1), std::to_string(halo_nodes),
         TablePrinter::fmt(static_cast<double>(halo_bytes) / (1024.0 * 1024.0),
                           2)});
    json.add_row({{"kind", "shard"}},
                 {{"shards", static_cast<double>(shards)},
                  {"edge_cut", static_cast<double>(cut)},
                  {"edge_cut_fraction", cut_frac},
                  {"halo_nodes", static_cast<double>(halo_nodes)},
                  {"halo_bytes", static_cast<double>(halo_bytes)}});
  }
  shard_table.print(std::cout);
  std::cout << "\n(dataset: " << spec.name << ")\n";
  bench::add_memory_meta(json);
  return 0;
}
