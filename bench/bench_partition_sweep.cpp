// §4.1 granularity study: "the more number of the subgraphs/partitions would
// lead to denser edge connections within each subgraph, which may bring
// better computation and memory locality", and batch size controls device
// utilisation. Sweeps partition count and batch size on one dataset and
// reports intra-edge fraction, non-zero tile ratio, and epoch latency.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace qgtc;
  using core::TablePrinter;

  bench::print_banner(
      "Partition/batch granularity study (paper §4.1)",
      "more partitions => denser subgraphs (fewer non-zero tiles per node); "
      "batch size trades utilisation vs memory");

  const auto spec = table1_spec(bench::quick() ? "Proteins" : "artist");
  const Dataset ds = generate_dataset(spec);

  TablePrinter table({"partitions", "batch", "intra-edge %", "non-zero tiles %",
                      "QGTC 4-bit ms", "DGL fp32 ms"});
  const std::vector<i64> part_counts =
      bench::quick() ? std::vector<i64>{375, 1500}
                     : std::vector<i64>{375, 750, 1500, 3000};
  for (const i64 parts : part_counts) {
    for (const i64 batch : {8, 16}) {
      core::EngineConfig cfg;
      cfg.model.kind = gnn::ModelKind::kClusterGCN;
      cfg.model.num_layers = 3;
      cfg.model.in_dim = spec.feature_dim;
      cfg.model.hidden_dim = 16;
      cfg.model.out_dim = spec.num_classes;
      cfg.model.feat_bits = 4;
      cfg.model.weight_bits = 4;
      cfg.num_partitions = parts;
      cfg.batch_size = batch;
      core::QgtcEngine engine(ds, cfg);

      const PartitionResult pr = partition_graph(ds.graph, parts, {});
      const double q_s = engine.run_quantized(2).forward_seconds;
      const double f_s = engine.run_fp32(2).forward_seconds;
      table.add_row({std::to_string(parts), std::to_string(batch),
                     TablePrinter::fmt_pct(pr.intra_edge_fraction(ds.graph), 1),
                     TablePrinter::fmt_pct(engine.nonzero_tile_ratio(), 1),
                     bench::ms(q_s), bench::ms(f_s)});
      std::cerr << "  [done] parts=" << parts << " batch=" << batch << "\n";
    }
  }
  table.print(std::cout);
  std::cout << "\n(dataset: " << spec.name << ")\n";
  return 0;
}
