// Ablation bench (DESIGN.md §4): isolates each §4 optimisation on one
// mid-size dataset (artist, Cluster GCN, 4-bit): zero-tile jumping, kernel
// fusion, non-zero tile reuse — full epoch latency per variant.
#include <iostream>

#include "bench_fig7_common.hpp"

int main() {
  using namespace qgtc;
  using core::TablePrinter;

  bench::print_banner(
      "Ablation — contribution of each QGTC kernel optimisation",
      "each of zero-tile jumping / fusion / tile reuse contributes; jumping "
      "dominates on sparse batched adjacencies");

  const auto spec = table1_spec(bench::quick() ? "Proteins" : "artist");
  const Dataset ds = generate_dataset(spec);

  core::EngineConfig ecfg;
  ecfg.model.kind = gnn::ModelKind::kClusterGCN;
  ecfg.model.num_layers = 3;
  ecfg.model.in_dim = spec.feature_dim;
  ecfg.model.hidden_dim = 16;
  ecfg.model.out_dim = spec.num_classes;
  ecfg.model.feat_bits = 4;
  ecfg.model.weight_bits = 4;
  ecfg.num_partitions = 1500;
  ecfg.batch_size = 16;
  const core::QgtcEngine engine(ds, ecfg);
  const auto& data = engine.batch_data();
  const i64 max_batches = env_i64("QGTC_MAX_BATCHES", bench::quick() ? 8 : 0);

  struct Variant {
    std::string name;
    bool jump;
    bool fused;
    ReuseMode reuse;
  };
  const std::vector<Variant> variants = {
      {"full (jump+fusion+reuse)", true, true, ReuseMode::kCrossTile},
      {"no zero-tile jumping", false, true, ReuseMode::kCrossTile},
      {"no kernel fusion", true, false, ReuseMode::kCrossTile},
      {"no tile reuse (cross-bit)", true, false, ReuseMode::kCrossBit},
      {"none of the three", false, false, ReuseMode::kCrossBit},
  };

  TablePrinter table({"Variant", "epoch ms", "slowdown vs full"});
  double full_s = 0.0;
  for (const auto& v : variants) {
    gnn::GnnConfig mcfg = ecfg.model;
    mcfg.zero_tile_jump = v.jump;
    mcfg.fused_epilogue = v.fused;
    mcfg.reuse = v.reuse;
    gnn::QgtcModel model = gnn::QgtcModel::create(mcfg, ecfg.seed);
    model.calibrate(data.front()->adj, data.front()->features);
    std::vector<StackedBitTensor> inputs;
    inputs.reserve(data.size());
    for (const auto& bd : data) inputs.push_back(model.prepare_input(bd->features));
    const double s = bench::time_epoch(data, max_batches, [&](const auto& bd, i64 i) {
      (void)model.forward_prepared(bd.adj, v.jump ? &bd.tile_map : nullptr,
                                   inputs[static_cast<std::size_t>(i)]);
    });
    if (full_s == 0.0) full_s = s;
    table.add_row({v.name, bench::ms(s), TablePrinter::fmt(s / full_s, 2) + "x"});
    std::cerr << "  [done] " << v.name << "\n";
  }
  table.print(std::cout);
  std::cout << "\n(dataset: " << spec.name << ", Cluster GCN 3x16, 4-bit)\n";
  return 0;
}
