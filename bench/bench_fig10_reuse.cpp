// Figure 10: non-zero tile reuse effectiveness. All-ones adjacency (so the
// tile count, not sparsity, is the controlled variable), D = 1024, X bits in
// {4, 8, 16}: speedup of cross-tile reduction (reuse) over cross-bit.
// Expected shape: reuse wins at larger N and more bits (~1.1-1.25x), can be
// neutral-to-negative at small N.
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "kernels/anybit_mm.hpp"

int main() {
  using namespace qgtc;
  using core::TablePrinter;

  bench::print_banner(
      "Figure 10 — non-zero tile reuse (speedup vs w/o reuse)",
      "reuse helps at large N / higher bits (up to ~1.2x), marginal at "
      "small sizes");

  std::vector<i64> ns = {1024, 2048, 4096, 8192};
  if (bench::quick()) ns = {1024, 2048};
  const std::vector<int> bit_list = {4, 8, 16};
  const i64 d = bench::quick() ? 256 : 1024;

  std::vector<std::string> headers = {"N"};
  for (const int b : bit_list) {
    headers.push_back("A(1)X(" + std::to_string(b) + ")");
  }
  TablePrinter table(headers);

  Rng rng(4242);
  for (const i64 n : ns) {
    // All tiles non-zero: fill adjacency with ones (paper's control).
    MatrixI32 adj(n, n, 1);
    const BitMatrix pa = pack_nonzero(adj, BitLayout::kRowMajorK);
    std::vector<std::string> row = {std::to_string(n)};
    for (const int bits : bit_list) {
      MatrixI32 xq(n, d);
      const u64 range = u64{1} << bits;
      for (i64 i = 0; i < xq.size(); ++i) {
        xq.data()[i] = static_cast<i32>(rng.next_below(range));
      }
      const auto px = StackedBitTensor::decompose(xq, bits, BitLayout::kColMajorK);
      BmmOptions opt;
      opt.allow_overflow = bits >= 16;
      const double min_s = n >= 8192 ? 0.05 : 0.15;
      const double cross_bit = time_it(
          [&] { (void)aggregate_1bit(pa, px, ReuseMode::kCrossBit, opt); },
          min_s, 1);
      const double cross_tile = time_it(
          [&] { (void)aggregate_1bit(pa, px, ReuseMode::kCrossTile, opt); },
          min_s, 1);
      row.push_back(TablePrinter::fmt(cross_bit / cross_tile, 3) + "x");
      std::cerr << "  [done] N=" << n << " bits=" << bits << "\n";
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}
