// Sharded-engine tests: the headline determinism contract — an S-shard run
// is bit-identical (logits + substrate counters) to the single-engine run
// across backends, adjacency layouts and epoch modes — plus halo-exchange
// byte-level correctness, halo accounting, skewed-plan detection, the
// telemetry-driven rebalancer, and the online pipeline-depth controller.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/autotune.hpp"
#include "core/sharded.hpp"
#include "parallel/affinity.hpp"

namespace qgtc::core {
namespace {

Dataset shard_dataset() {
  DatasetSpec spec{"shard-test", 2000, 14000, 16, 4, 16, 77};
  return generate_dataset(spec);
}

EngineConfig shard_config() {
  EngineConfig cfg;
  cfg.model.kind = gnn::ModelKind::kClusterGCN;
  cfg.model.num_layers = 3;
  cfg.model.in_dim = 16;
  cfg.model.hidden_dim = 16;
  cfg.model.out_dim = 4;
  cfg.model.feat_bits = 3;
  cfg.model.weight_bits = 3;
  cfg.num_partitions = 16;
  cfg.batch_size = 2;  // 8 batches: enough to spread over 4 shards
  cfg.inter_batch_threads = 2;
  return cfg;
}

// ----------------------------------------------------------- shard planning

TEST(ShardPlanning, EveryBatchAssignedToExactlyOneShard) {
  const Dataset ds = shard_dataset();
  const EngineConfig cfg = shard_config();
  const auto batches = make_epoch_batches(ds.graph, cfg);
  const ShardPlan plan = make_shard_plan(ds.graph, batches, 3);

  EXPECT_EQ(plan.num_shards, 3);
  EXPECT_EQ(plan.num_batches(), static_cast<i64>(batches.size()));
  EXPECT_EQ(static_cast<i64>(plan.owner.size()), ds.graph.num_nodes());
  std::vector<int> seen(batches.size(), 0);
  for (int s = 0; s < plan.num_shards; ++s) {
    for (const i64 gid : plan.shard_batches[static_cast<std::size_t>(s)]) {
      EXPECT_EQ(plan.batch_shard[static_cast<std::size_t>(gid)], s);
      ++seen[static_cast<std::size_t>(gid)];
    }
  }
  for (const int n : seen) EXPECT_EQ(n, 1);  // partition, not a cover

  // Deterministic: same inputs, same plan.
  const ShardPlan again = make_shard_plan(ds.graph, batches, 3);
  EXPECT_EQ(again.batch_shard, plan.batch_shard);
  EXPECT_EQ(again.owner, plan.owner);
}

TEST(ShardPlanning, SingleShardOwnsEverything) {
  const Dataset ds = shard_dataset();
  const auto batches = make_epoch_batches(ds.graph, shard_config());
  const ShardPlan plan = make_shard_plan(ds.graph, batches, 1);
  for (const i32 o : plan.owner) EXPECT_EQ(o, 0);
  EXPECT_EQ(static_cast<i64>(plan.shard_batches[0].size()),
            static_cast<i64>(batches.size()));
}

// ------------------------------------------------- halo exchange correctness

TEST(HaloExchangeTest, MovesExactlyTheForeignRowsByteForByte) {
  const Dataset ds = shard_dataset();
  const auto batches = make_epoch_batches(ds.graph, shard_config());
  const ShardPlan plan = make_shard_plan(ds.graph, batches, 2);
  const store::FeatureSource features(ds.features);

  comm::HaloExchange hx(2);
  const SubgraphBatch& b = batches.front();
  const int self = static_cast<int>(plan.batch_shard.front());
  MatrixF gathered;
  const auto halo = hx.exchange(features, b.nodes, plan.owner, self, &gathered);

  i64 foreign = 0;
  ASSERT_EQ(gathered.rows(), static_cast<i64>(b.nodes.size()));
  ASSERT_EQ(gathered.cols(), features.cols());
  for (std::size_t i = 0; i < b.nodes.size(); ++i) {
    const i32 u = b.nodes[i];
    if (plan.owner[static_cast<std::size_t>(u)] != self) {
      ++foreign;
      // Foreign rows survive the modelled wire byte-for-byte.
      for (i64 c = 0; c < gathered.cols(); ++c) {
        EXPECT_EQ(gathered.at(static_cast<i64>(i), c), ds.features.at(u, c));
      }
    } else {
      // Self-owned rows never cross — they stay zero in the halo surface.
      for (i64 c = 0; c < gathered.cols(); ++c) {
        EXPECT_EQ(gathered.at(static_cast<i64>(i), c), 0.0f);
      }
    }
  }
  EXPECT_EQ(halo.halo_nodes, foreign);
  EXPECT_EQ(halo.bytes,
            foreign * features.cols() * static_cast<i64>(sizeof(float)));
  EXPECT_GT(halo.halo_nodes, 0);  // a plurality split still has a boundary
  EXPECT_GT(halo.wire_seconds, 0.0);
  // The traffic matrix's diagonal stays empty and its total matches.
  EXPECT_EQ(hx.bytes_moved(self, self), 0);
  EXPECT_EQ(hx.total_bytes(), halo.bytes);
}

TEST(HaloExchangeTest, OneMessagePerRemoteSourceShard) {
  const Dataset ds = shard_dataset();
  const auto batches = make_epoch_batches(ds.graph, shard_config());
  const ShardPlan plan = make_shard_plan(ds.graph, batches, 4);
  const store::FeatureSource features(ds.features);

  comm::HaloExchange hx(4);
  const SubgraphBatch& b = batches.front();
  const int self = static_cast<int>(plan.batch_shard.front());
  const auto halo = hx.exchange(features, b.nodes, plan.owner, self);

  int sources = 0;
  for (int src = 0; src < 4; ++src) {
    if (hx.bytes_moved(src, self) > 0) ++sources;
  }
  EXPECT_EQ(halo.messages, sources);
  EXPECT_LE(halo.messages, 3);  // never more than S-1 links
  // Message latency is charged once per source, not once per row.
  EXPECT_GE(halo.wire_seconds,
            static_cast<double>(halo.messages) * hx.model().latency_us * 1e-6);
}

// --------------------------------------------------- S-shard == 1-engine

TEST(ShardedEngineParity, BitIdenticalAcrossShardCountsBackendsAndLayouts) {
  const Dataset ds = shard_dataset();
  for (const auto backend :
       {tcsim::BackendKind::kScalar, tcsim::BackendKind::kSimd,
        tcsim::BackendKind::kBlocked}) {
    for (const bool sparse : {false, true}) {
      for (const bool streaming : {false, true}) {
        EngineConfig cfg = shard_config();
        cfg.backend = backend;
        cfg.mode.adjacency = sparse ? RunMode::Adjacency::kTileSparse
                                    : RunMode::Adjacency::kDenseJump;
        if (streaming) {
          cfg.mode = RunMode::streaming_pipeline(2, 1, cfg.mode.adjacency);
        }

        QgtcEngine reference(ds, cfg);
        std::vector<MatrixI32> ref_logits;
        const EngineStats ref = reference.run_quantized(1, &ref_logits);

        for (const int shards : {1, 2, 4}) {
          ShardedConfig scfg;
          scfg.num_shards = shards;
          ShardedEngine sharded(ds, cfg, scfg);
          std::vector<MatrixI32> logits;
          const EngineStats st = sharded.run_quantized(1, &logits);

          const auto ctx = [&] {
            return std::string(tcsim::backend_name(backend)) +
                   (sparse ? "/sparse" : "/dense") +
                   (streaming ? "/streaming" : "/precomputed") + "/S=" +
                   std::to_string(shards);
          };
          EXPECT_EQ(st.shards, shards) << ctx();
          EXPECT_EQ(st.batches, ref.batches) << ctx();
          EXPECT_EQ(st.nodes, ref.nodes) << ctx();
          EXPECT_EQ(st.bmma_ops, ref.bmma_ops) << ctx();
          EXPECT_EQ(st.tiles_jumped, ref.tiles_jumped) << ctx();
          ASSERT_EQ(logits.size(), ref_logits.size()) << ctx();
          for (std::size_t b = 0; b < logits.size(); ++b) {
            EXPECT_EQ(logits[b], ref_logits[b])
                << "logits diverged at batch " << b << " (" << ctx() << ")";
          }
          if (shards == 1) {
            EXPECT_EQ(st.halo_bytes, 0) << ctx();  // degenerate: no boundary
            EXPECT_EQ(st.halo_nodes, 0) << ctx();
          } else {
            EXPECT_GT(st.halo_bytes, 0) << ctx();
            EXPECT_GT(st.halo_wire_seconds, 0.0) << ctx();
            EXPECT_GE(st.halo_wire_seconds, st.exposed_halo_seconds) << ctx();
          }
        }
      }
    }
  }
}

TEST(ShardedEngineParity, MultiRoundRunsStayIdentical) {
  const Dataset ds = shard_dataset();
  const EngineConfig cfg = shard_config();
  QgtcEngine reference(ds, cfg);
  std::vector<MatrixI32> ref_logits;
  const EngineStats ref = reference.run_quantized(2, &ref_logits);

  ShardedConfig scfg;
  scfg.num_shards = 2;
  ShardedEngine sharded(ds, cfg, scfg);
  std::vector<MatrixI32> logits;
  const EngineStats st = sharded.run_quantized(2, &logits);
  EXPECT_EQ(st.bmma_ops, ref.bmma_ops);
  EXPECT_EQ(st.tiles_jumped, ref.tiles_jumped);
  ASSERT_EQ(logits.size(), ref_logits.size());
  for (std::size_t b = 0; b < logits.size(); ++b) {
    EXPECT_EQ(logits[b], ref_logits[b]);
  }
}

// ----------------------------------------- imbalance, skew and rebalancing

TEST(ShardedEngineBalance, SkewedPlanIsFlaggedAndRebalanceFixesIt) {
  const Dataset ds = shard_dataset();
  ShardedConfig scfg;
  scfg.num_shards = 2;
  ShardedEngine sharded(ds, shard_config(), scfg);

  // Deliberately skew: every batch on shard 0, shard 1 idle.
  ShardPlan skewed = sharded.plan();
  skewed.shard_batches.assign(2, {});
  for (i64 b = 0; b < skewed.num_batches(); ++b) {
    skewed.shard_batches[0].push_back(b);
    skewed.batch_shard[static_cast<std::size_t>(b)] = 0;
  }
  sharded.set_plan(skewed);

  std::vector<MatrixI32> skewed_logits;
  (void)sharded.run_quantized(1, &skewed_logits);
  const ImbalanceReport imb = sharded.imbalance();
  // One shard did all the work: max/mean == shard count.
  EXPECT_NEAR(imb.max_over_mean, 2.0, 1e-9);
  EXPECT_TRUE(imb.skewed());
  EXPECT_EQ(imb.straggler, 0);

  // The telemetry-driven rebalancer must move work onto the idle shard...
  EXPECT_TRUE(sharded.rebalance());
  const ShardPlan& after = sharded.plan();
  EXPECT_FALSE(after.shard_batches[1].empty());
  EXPECT_FALSE(after.shard_batches[0].empty());

  // ...and the rebalanced plan still produces bit-identical results.
  QgtcEngine reference(ds, shard_config());
  std::vector<MatrixI32> ref_logits;
  (void)reference.run_quantized(1, &ref_logits);
  std::vector<MatrixI32> logits;
  (void)sharded.run_quantized(1, &logits);
  ASSERT_EQ(logits.size(), ref_logits.size());
  for (std::size_t b = 0; b < logits.size(); ++b) {
    EXPECT_EQ(logits[b], ref_logits[b]);
  }
}

TEST(ShardedEngineBalance, BalancedPlanIsNotFlagged) {
  const Dataset ds = shard_dataset();
  ShardedConfig scfg;
  scfg.num_shards = 2;
  ShardedEngine sharded(ds, shard_config(), scfg);
  (void)sharded.run_quantized(1);
  const ImbalanceReport imb = sharded.imbalance();
  EXPECT_GE(imb.max_over_mean, 1.0);
  // The plurality plan spreads 8 batches over 2 shards; both sides run.
  EXPECT_GT(imb.mean_busy, 0.0);
  EXPECT_EQ(static_cast<int>(sharded.shard_reports().size()), 2);
  i64 report_batches = 0;
  for (const ShardReport& r : sharded.shard_reports()) {
    report_batches += r.batches;
  }
  EXPECT_EQ(report_batches, sharded.num_batches());
}

// ------------------------------------------------ adaptive pipeline depth

TEST(AdaptiveDepth, StarvedComputeDeepensBlockedPrepareShallows) {
  EngineStats::StageBreakdownSet t;
  // Compute mostly stalled, prepare healthy: deepen (doubling, capped).
  t.compute = {0.2, 0.8};
  t.prepare = {1.0, 0.05};
  t.ship = {0.5, 0.0};
  EXPECT_EQ(recommend_pipeline_depth(t, 2), 4);
  EXPECT_EQ(recommend_pipeline_depth(t, 8), 8);  // cap holds

  // Prepare mostly blocked on a full queue, compute saturated: shallower.
  t.prepare = {0.3, 0.7};
  t.compute = {1.0, 0.02};
  EXPECT_EQ(recommend_pipeline_depth(t, 4), 2);
  EXPECT_EQ(recommend_pipeline_depth(t, 1), 1);  // floor holds

  // Dead band: nothing clearly wrong, keep the current depth.
  t.prepare = {1.0, 0.15};
  t.compute = {1.0, 0.15};
  EXPECT_EQ(recommend_pipeline_depth(t, 3), 3);
}

TEST(AdaptiveDepth, ShardedRunRecordsSuggestionsInStreamingMode) {
  const Dataset ds = shard_dataset();
  EngineConfig cfg = shard_config();
  cfg.mode = RunMode::streaming_pipeline(2, 1);
  ShardedConfig scfg;
  scfg.num_shards = 2;
  scfg.adapt_depth = true;
  ShardedEngine sharded(ds, cfg, scfg);
  std::vector<MatrixI32> first;
  (void)sharded.run_quantized(1, &first);
  for (const ShardReport& r : sharded.shard_reports()) {
    if (r.batches == 0) continue;
    EXPECT_GE(r.suggested_depth, 1);
    EXPECT_LE(r.suggested_depth, 8);
  }
  // Whatever depth the controller picked, results stay bit-identical.
  QgtcEngine reference(ds, cfg);
  std::vector<MatrixI32> ref_logits;
  (void)reference.run_quantized(1, &ref_logits);
  std::vector<MatrixI32> second;
  (void)sharded.run_quantized(1, &second);
  ASSERT_EQ(second.size(), ref_logits.size());
  for (std::size_t b = 0; b < second.size(); ++b) {
    EXPECT_EQ(second[b], ref_logits[b]);
  }
}

// ------------------------------------------------------- autotuned shards

TEST(AutotunedSharding, ThroughputDerivesShardsLatencyKeepsOneEngine) {
  DatasetSpec spec{"tune-shard", 20000, 120000, 16, 4, 16, 9};
  gnn::GnnConfig model;
  model.in_dim = 16;
  model.hidden_dim = 16;
  model.out_dim = 4;
  const TunedConfig thr = generate_runtime_config(spec, model);
  EXPECT_GE(thr.num_shards, 1);
  // pin_numa only ever comes with a real multi-node sysfs topology.
  if (thr.pin_numa) {
    EXPECT_GT(affinity::detect_topology().num_nodes(), 1);
  }
  const TunedConfig lat = generate_runtime_config(
      spec, model, DeviceProfile{}, true, TuneObjective::kLatency);
  EXPECT_EQ(lat.num_shards, 1);
  EXPECT_FALSE(lat.pin_numa);
}

}  // namespace
}  // namespace qgtc::core
