// Runtime-configuration generation tests (artifact appendix feature):
// partition/batch knobs derived from dataset shape and device envelope.
#include <gtest/gtest.h>

#include "core/autotune.hpp"

namespace qgtc::core {
namespace {

gnn::GnnConfig model_for(const DatasetSpec& spec) {
  gnn::GnnConfig m;
  m.in_dim = spec.feature_dim;
  m.hidden_dim = 16;
  m.out_dim = spec.num_classes;
  m.feat_bits = 4;
  m.weight_bits = 4;
  return m;
}

TEST(Autotune, PartitionCountTracksTargetSize) {
  const DatasetSpec spec = table1_spec("ogbn-arxiv");
  DeviceProfile dev;
  dev.target_partition_nodes = 160;
  const TunedConfig t = generate_runtime_config(spec, model_for(spec), dev);
  const i64 avg = spec.num_nodes / t.num_partitions;
  EXPECT_GE(avg, 100);
  EXPECT_LE(avg, 240);
}

TEST(Autotune, BatchRespectsMemoryBudget) {
  const DatasetSpec spec = table1_spec("ogbn-arxiv");
  DeviceProfile tiny;
  tiny.memory_bytes = 8 * 1024 * 1024;  // 8 MB device
  DeviceProfile big;
  big.memory_bytes = i64{24} * 1024 * 1024 * 1024;
  const TunedConfig small_cfg = generate_runtime_config(spec, model_for(spec), tiny);
  const TunedConfig big_cfg = generate_runtime_config(spec, model_for(spec), big);
  EXPECT_LE(small_cfg.batch_size, big_cfg.batch_size);
  EXPECT_LE(small_cfg.batch_bytes_estimate, tiny.memory_bytes);
  EXPECT_GE(small_cfg.batch_size, 1);
}

TEST(Autotune, SmallGraphClampsToParallelUnits) {
  DatasetSpec spec{"tiny", 500, 2000, 8, 2, 4, 3};
  DeviceProfile dev;
  dev.parallel_units = 16;
  dev.target_partition_nodes = 160;
  const TunedConfig t = generate_runtime_config(spec, model_for(spec), dev);
  // 500/160 ~ 4 partitions would starve 16 units; clamp raises it.
  EXPECT_GE(t.num_partitions, 16);
  EXPECT_LE(t.batch_size, t.num_partitions);
}

TEST(Autotune, Deterministic) {
  const DatasetSpec spec = table1_spec("artist");
  const TunedConfig a = generate_runtime_config(spec, model_for(spec));
  const TunedConfig b = generate_runtime_config(spec, model_for(spec));
  EXPECT_EQ(a.num_partitions, b.num_partitions);
  EXPECT_EQ(a.batch_size, b.batch_size);
}

TEST(Autotune, ApplyWritesEngineConfig) {
  const DatasetSpec spec = table1_spec("PPI");
  const TunedConfig t = generate_runtime_config(spec, model_for(spec));
  EngineConfig cfg;
  apply(t, cfg);
  EXPECT_EQ(cfg.num_partitions, t.num_partitions);
  EXPECT_EQ(cfg.batch_size, t.batch_size);
}

TEST(Autotune, InvalidProfileThrows) {
  const DatasetSpec spec = table1_spec("PPI");
  DeviceProfile bad;
  bad.parallel_units = 0;
  EXPECT_THROW(generate_runtime_config(spec, model_for(spec), bad),
               std::invalid_argument);
}

TEST(Autotune, StreamingKnobsFollowPrecomputeBudget) {
  const DatasetSpec spec = table1_spec("ogbn-arxiv");
  DeviceProfile tiny;
  tiny.memory_bytes = 8 * 1024 * 1024;  // epoch cannot be precomputed here
  const TunedConfig small_cfg = generate_runtime_config(spec, model_for(spec), tiny);
  EXPECT_TRUE(small_cfg.mode.streaming());
  EXPECT_GE(small_cfg.mode.pipeline_depth, 1);
  EXPECT_LE(small_cfg.mode.pipeline_depth, 8);
  EXPECT_GE(small_cfg.mode.prepare_threads, 1);
  EXPECT_GT(small_cfg.epoch_bytes_estimate, tiny.memory_bytes / 4);

  DeviceProfile big;  // 24 GB default: small graphs precompute comfortably
  DatasetSpec small_graph{"tiny", 2000, 10000, 8, 2, 4, 3};
  const TunedConfig big_cfg =
      generate_runtime_config(small_graph, model_for(small_graph), big);
  EXPECT_FALSE(big_cfg.mode.streaming());
}

TEST(Autotune, ApplyCopiesStreamingKnobs) {
  const DatasetSpec spec = table1_spec("ogbn-arxiv");
  DeviceProfile tiny;
  tiny.memory_bytes = 8 * 1024 * 1024;
  const TunedConfig t = generate_runtime_config(spec, model_for(spec), tiny);
  EngineConfig cfg;
  apply(t, cfg);
  EXPECT_EQ(cfg.mode.streaming(), t.mode.streaming());
  EXPECT_EQ(cfg.mode.pipeline_depth, t.mode.pipeline_depth);
  EXPECT_EQ(cfg.mode.prepare_threads, t.mode.prepare_threads);
}

TEST(Autotune, LatencyObjectiveShapesServingPolicy) {
  const DatasetSpec spec = table1_spec("ogbn-arxiv");
  const TunedConfig t =
      generate_runtime_config(spec, model_for(spec), DeviceProfile{},
                              /*sparse_adj=*/true, TuneObjective::kLatency);
  EXPECT_EQ(t.objective, TuneObjective::kLatency);
  // Latency profile: no queue for a request to age in, prepare staffed at
  // least as heavily as compute (prepare dominates the per-request path).
  EXPECT_EQ(t.mode.pipeline_depth, 1);
  EXPECT_EQ(t.serving.queue_depth, 1);
  EXPECT_GE(t.serving.prepare_workers, t.serving.compute_workers);
  EXPECT_GE(t.serving.max_batch_nodes, 256);
  EXPECT_LE(t.serving.max_batch_nodes, 8192);
  EXPECT_GT(t.serving.max_wait_us, 0);

  // The throughput objective leaves the serving policy at its defaults.
  const TunedConfig thr = generate_runtime_config(spec, model_for(spec));
  EXPECT_EQ(thr.objective, TuneObjective::kThroughput);
}

TEST(Autotune, TunedEngineRuns) {
  // End-to-end: autotuned knobs drive a real engine.
  DatasetSpec spec{"tuned", 3000, 18000, 16, 4, 20, 5};
  const Dataset ds = generate_dataset(spec);
  EngineConfig cfg;
  cfg.model.kind = gnn::ModelKind::kClusterGCN;
  cfg.model.num_layers = 2;
  cfg.model.in_dim = 16;
  cfg.model.hidden_dim = 8;
  cfg.model.out_dim = 4;
  cfg.model.feat_bits = 2;
  cfg.model.weight_bits = 2;
  DeviceProfile dev;
  dev.parallel_units = 4;
  apply(generate_runtime_config(spec, cfg.model, dev), cfg);
  QgtcEngine engine(ds, cfg);
  const EngineStats s = engine.run_quantized(1);
  EXPECT_EQ(s.nodes, 3000);
}

TEST(Autotune, CacheBudgetFitsInsideDeviceBudget) {
  // Streaming profiles carve the prepared-batch cache out of what the memory
  // budget leaves after the pipeline's in-flight window: cache + footprint
  // must fit inside the budget slice, and never exceed one epoch.
  const DatasetSpec spec = table1_spec("ogbn-arxiv");
  DeviceProfile dev;
  dev.memory_bytes = 64 * 1024 * 1024;  // streaming, with room for a cache
  const TunedConfig t = generate_runtime_config(spec, model_for(spec), dev);
  ASSERT_TRUE(t.mode.streaming());
  EXPECT_GT(t.streaming_footprint_estimate, 0);
  EXPECT_LE(t.cache_budget_bytes,
            dev.memory_bytes / 4 - t.streaming_footprint_estimate);
  EXPECT_LE(t.cache_budget_bytes, t.epoch_bytes_estimate);
}

TEST(Autotune, TinyBudgetDisablesCache) {
  // When the leftover budget cannot hold even one batch, the cache would
  // thrash without ever hitting — the tuner disables it outright.
  const DatasetSpec spec = table1_spec("ogbn-arxiv");
  DeviceProfile tiny;
  tiny.memory_bytes = 8 * 1024 * 1024;
  const TunedConfig t = generate_runtime_config(spec, model_for(spec), tiny);
  ASSERT_TRUE(t.mode.streaming());
  // The in-flight window was sized to fill the budget slice; what is left
  // cannot hold one more batch.
  EXPECT_LT(tiny.memory_bytes / 4 - t.streaming_footprint_estimate,
            t.batch_bytes_estimate);
  EXPECT_EQ(t.cache_budget_bytes, 0);
}

TEST(Autotune, PrecomputedProfilesDisableCache) {
  // The precomputed epoch is already fully resident; a cache on top would
  // only duplicate it.
  DatasetSpec small_graph{"tiny", 2000, 10000, 8, 2, 4, 3};
  const TunedConfig t =
      generate_runtime_config(small_graph, model_for(small_graph));
  ASSERT_FALSE(t.mode.streaming());
  EXPECT_EQ(t.cache_budget_bytes, 0);
}

TEST(Autotune, ApplyCopiesCacheBudget) {
  const DatasetSpec spec = table1_spec("ogbn-arxiv");
  DeviceProfile dev;
  dev.memory_bytes = 64 * 1024 * 1024;
  const TunedConfig t = generate_runtime_config(spec, model_for(spec), dev);
  EngineConfig cfg;
  apply(t, cfg);
  EXPECT_EQ(cfg.cache_budget_bytes, t.cache_budget_bytes);
}

}  // namespace
}  // namespace qgtc::core
