// Partitioner invariants (METIS substitute): full coverage, disjointness,
// balance, and modularity better than random.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generator.hpp"
#include "graph/partitioner.hpp"

namespace qgtc {
namespace {

CsrGraph random_graph(i64 n, i64 e, u64 seed) {
  Rng rng(seed);
  std::vector<std::pair<i32, i32>> edges;
  edges.reserve(static_cast<std::size_t>(e));
  for (i64 i = 0; i < e; ++i) {
    edges.emplace_back(static_cast<i32>(rng.next_below(static_cast<u64>(n))),
                       static_cast<i32>(rng.next_below(static_cast<u64>(n))));
  }
  return CsrGraph::from_edges(n, std::move(edges));
}

void check_invariants(const CsrGraph& g, const PartitionResult& res,
                      i64 num_parts) {
  EXPECT_EQ(res.num_parts, num_parts);
  EXPECT_EQ(static_cast<i64>(res.part_of.size()), g.num_nodes());
  // Every node assigned to a valid partition.
  std::vector<i64> counts(static_cast<std::size_t>(num_parts), 0);
  for (const i32 p : res.part_of) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, num_parts);
    ++counts[static_cast<std::size_t>(p)];
  }
  // Member lists partition the node set exactly.
  i64 total = 0;
  for (i64 p = 0; p < num_parts; ++p) {
    for (const i32 v : res.members[static_cast<std::size_t>(p)]) {
      EXPECT_EQ(res.part_of[static_cast<std::size_t>(v)], p);
    }
    total += static_cast<i64>(res.members[static_cast<std::size_t>(p)].size());
    EXPECT_EQ(static_cast<i64>(res.members[static_cast<std::size_t>(p)].size()),
              counts[static_cast<std::size_t>(p)]);
  }
  EXPECT_EQ(total, g.num_nodes());
}

TEST(Partitioner, SinglePartition) {
  const CsrGraph g = random_graph(100, 300, 1);
  const PartitionResult res = partition_graph(g, 1);
  check_invariants(g, res, 1);
  EXPECT_DOUBLE_EQ(res.intra_edge_fraction(g), 1.0);
}

TEST(Partitioner, MorePartsThanNodesClamped) {
  const CsrGraph g = random_graph(5, 4, 2);
  const PartitionResult res = partition_graph(g, 50);
  EXPECT_EQ(res.num_parts, 5);
}

TEST(Partitioner, BalanceBound) {
  const CsrGraph g = random_graph(1000, 4000, 3);
  PartitionOptions opt;
  const PartitionResult res = partition_graph(g, 10, opt);
  check_invariants(g, res, 10);
  const i64 target = 100;
  for (const auto& members : res.members) {
    EXPECT_LE(static_cast<i64>(members.size()),
              static_cast<i64>(static_cast<double>(target) * opt.balance_slack) + 1);
  }
}

TEST(Partitioner, RecoversPlantedClusters) {
  // On an SBM graph, BFS-grow + refinement should capture far more
  // intra-partition edges than a random assignment (~1/parts).
  DatasetSpec spec{"sbm", 3000, 24000, 8, 4, 30, 17};
  const CsrGraph g = generate_sbm_graph(spec);
  const PartitionResult res = partition_graph(g, 30);
  check_invariants(g, res, 30);
  EXPECT_GT(res.intra_edge_fraction(g), 0.5);  // random would be ~0.033
}

TEST(Partitioner, Deterministic) {
  const CsrGraph g = random_graph(500, 1500, 4);
  const PartitionResult a = partition_graph(g, 8);
  const PartitionResult b = partition_graph(g, 8);
  EXPECT_EQ(a.part_of, b.part_of);
}

TEST(Partitioner, RefinementImprovesModularity) {
  DatasetSpec spec{"sbm", 2000, 16000, 8, 4, 20, 23};
  const CsrGraph g = generate_sbm_graph(spec);
  PartitionOptions no_refine;
  no_refine.refine_passes = 0;
  PartitionOptions refine;
  refine.refine_passes = 3;
  const double f0 = partition_graph(g, 20, no_refine).intra_edge_fraction(g);
  const double f1 = partition_graph(g, 20, refine).intra_edge_fraction(g);
  EXPECT_GE(f1, f0);
}

TEST(Partitioner, InvalidPartCountThrows) {
  const CsrGraph g = random_graph(10, 20, 5);
  EXPECT_THROW(partition_graph(g, 0), std::invalid_argument);
}

/// Property: invariants hold across sizes/part counts.
class PartitionerProperty
    : public ::testing::TestWithParam<std::tuple<i64, i64>> {};

TEST_P(PartitionerProperty, Invariants) {
  const auto [n, parts] = GetParam();
  const CsrGraph g = random_graph(n, n * 4, static_cast<u64>(n + parts));
  const PartitionResult res = partition_graph(g, parts);
  check_invariants(g, res, std::min(parts, n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PartitionerProperty,
                         ::testing::Values(std::make_tuple<i64, i64>(50, 3),
                                           std::make_tuple<i64, i64>(200, 7),
                                           std::make_tuple<i64, i64>(1000, 16),
                                           std::make_tuple<i64, i64>(999, 13)));

}  // namespace
}  // namespace qgtc
