// Graph/dataset serialization tests: edge-list text round-trip, binary
// dataset round-trip, and failure injection (bad magic, truncation).
#include <gtest/gtest.h>

#include <sstream>

#include "graph/io.hpp"

namespace qgtc::io {
namespace {

TEST(Io, EdgeListRoundTrip) {
  const CsrGraph g = CsrGraph::from_edges(5, {{0, 1}, {1, 2}, {3, 4}, {0, 4}});
  std::stringstream ss;
  write_edge_list(ss, g);
  const CsrGraph back = read_edge_list(ss, 5);
  EXPECT_EQ(back.num_nodes(), 5);
  EXPECT_EQ(back.num_edges(), g.num_edges());
  for (i64 u = 0; u < 5; ++u) {
    for (const i32 v : g.neighbors(u)) EXPECT_TRUE(back.has_edge(u, v));
  }
}

TEST(Io, EdgeListInfersNodeCount) {
  std::stringstream ss("0 1\n2 7\n");
  const CsrGraph g = read_edge_list(ss);
  EXPECT_EQ(g.num_nodes(), 8);
}

TEST(Io, EdgeListSkipsComments) {
  std::stringstream ss("# header\n0 1\n\n# mid\n1 2\n");
  const CsrGraph g = read_edge_list(ss);
  EXPECT_EQ(g.num_edges(), 4);
}

TEST(Io, EdgeListMalformedThrows) {
  std::stringstream ss("0 one\n");
  EXPECT_THROW(read_edge_list(ss), std::invalid_argument);
}

TEST(Io, DatasetRoundTrip) {
  DatasetSpec spec{"io-test", 400, 2400, 12, 5, 4, 99};
  const Dataset ds = generate_dataset(spec);
  std::stringstream ss;
  save_dataset(ss, ds);
  const Dataset back = load_dataset(ss);

  EXPECT_EQ(back.spec.name, "io-test");
  EXPECT_EQ(back.spec.num_nodes, 400);
  EXPECT_EQ(back.spec.seed, 99u);
  EXPECT_EQ(back.graph.num_edges(), ds.graph.num_edges());
  EXPECT_EQ(back.graph.col_idx(), ds.graph.col_idx());
  ASSERT_EQ(back.features.rows(), ds.features.rows());
  ASSERT_EQ(back.features.cols(), ds.features.cols());
  EXPECT_FLOAT_EQ(max_abs_diff(back.features, ds.features), 0.0f);
  EXPECT_EQ(back.labels, ds.labels);
}

TEST(Io, BadMagicThrows) {
  std::stringstream ss("definitely not a dataset");
  EXPECT_THROW(load_dataset(ss), std::invalid_argument);
}

TEST(Io, TruncatedStreamThrows) {
  DatasetSpec spec{"t", 100, 400, 4, 2, 2, 1};
  const Dataset ds = generate_dataset(spec);
  std::stringstream ss;
  save_dataset(ss, ds);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_dataset(cut), std::invalid_argument);
}

TEST(Io, FileRoundTrip) {
  DatasetSpec spec{"file-test", 150, 600, 6, 3, 3, 7};
  const Dataset ds = generate_dataset(spec);
  const std::string path = "/tmp/qgtc_io_test.bin";
  save_dataset_file(path, ds);
  const Dataset back = load_dataset_file(path);
  EXPECT_EQ(back.spec.num_nodes, 150);
  EXPECT_EQ(back.labels, ds.labels);
  EXPECT_THROW(load_dataset_file("/tmp/qgtc_does_not_exist.bin"),
               std::invalid_argument);
}

}  // namespace
}  // namespace qgtc::io
