// Fused quantized epilogue tests: the requantize/activate/re-pack sequence
// executed inside the tile flush must be bit-identical to the unfused
// reference (int32 sweep + standalone requantization) across every backend,
// adjacency layout, epoch mode, activation and bit-width — and must actually
// avoid the int32 intermediate (counter > 0 fused, == 0 unfused).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "gnn/model.hpp"
#include "graph/generator.hpp"

namespace qgtc {
namespace {

using tcsim::Activation;
using tcsim::apply_epilogue;
using tcsim::EpilogueSpec;

const Activation kActs[] = {Activation::kIdentity, Activation::kRelu,
                            Activation::kRelu6, Activation::kHardswish};

MatrixI32 random_codes(Rng& rng, i64 rows, i64 cols, int bits) {
  MatrixI32 m(rows, cols);
  const u64 range = (u64{1} << bits);
  for (i64 i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<i32>(rng.next_below(range));
  }
  return m;
}

TEST(Epilogue, ApplySemantics) {
  // Shift, then activate, then clamp — one definition shared by every path.
  EXPECT_EQ(apply_epilogue(40, {Activation::kIdentity, 2, -1}), 10);
  EXPECT_EQ(apply_epilogue(-8, {Activation::kIdentity, 2, -1}), -2);
  EXPECT_EQ(apply_epilogue(-8, {Activation::kRelu, 2, -1}), 0);
  EXPECT_EQ(apply_epilogue(40, {Activation::kRelu6, 2, -1}), 6);
  EXPECT_EQ(apply_epilogue(5, {Activation::kRelu6, 0, -1}), 5);
  // hardswish(x) = x * clamp(x+3, 0, 6) / 6, truncating division.
  EXPECT_EQ(apply_epilogue(-4, {Activation::kHardswish, 0, -1}), 0);
  EXPECT_EQ(apply_epilogue(-2, {Activation::kHardswish, 0, -1}), 0);  // -2*1/6
  EXPECT_EQ(apply_epilogue(-1, {Activation::kHardswish, 0, -1}), 0);  // -2/6
  EXPECT_EQ(apply_epilogue(1, {Activation::kHardswish, 0, -1}), 0);   // 4/6
  EXPECT_EQ(apply_epilogue(2, {Activation::kHardswish, 0, -1}), 1);   // 10/6
  EXPECT_EQ(apply_epilogue(9, {Activation::kHardswish, 0, -1}), 9);   // linear
  // Clamp to [0, qmax] last.
  EXPECT_EQ(apply_epilogue(300, {Activation::kIdentity, 3, 15}), 15);
  EXPECT_EQ(apply_epilogue(40, {Activation::kIdentity, 2, 15}), 10);
  // ReLU commutes with the arithmetic shift (the historical ordering).
  for (i32 v : {-1000, -65, -64, -1, 0, 1, 63, 64, 1000}) {
    const i32 shifted_then_act = apply_epilogue(v, {Activation::kRelu, 6, -1});
    const i32 act_then_shifted =
        apply_epilogue(std::max(v, 0), {Activation::kIdentity, 6, -1});
    EXPECT_EQ(shifted_then_act, act_then_shifted) << v;
  }
}

TEST(Epilogue, ActivationNames) {
  for (const Activation a : kActs) {
    EXPECT_EQ(tcsim::parse_activation(tcsim::activation_name(a)), a);
  }
  EXPECT_THROW((void)tcsim::parse_activation("gelu"), std::invalid_argument);
}

// flush_planes (the plane-writer epilogue) vs the manual reference — an
// int32 MM followed by elementwise apply_epilogue and a standalone
// decompose — for every backend, both output layouts (row-major exercises
// the straight scatter, col-major the transposed one) and ragged edge
// tiles. Also checks the int32-bytes-avoided accounting.
TEST(Epilogue, FusedBitMatchesManualAcrossBackends) {
  Rng rng(101);
  const int s = 3, t = 2, out_bits = 4;
  const MatrixI32 a = random_codes(rng, 21, 140, s);  // ragged edge tiles
  const MatrixI32 b = random_codes(rng, 140, 11, t);
  const auto pa = StackedBitTensor::decompose(a, s, BitLayout::kRowMajorK);
  const auto pb = StackedBitTensor::decompose(b, t, BitLayout::kColMajorK);
  const MatrixI32 raw = bitmm_to_int(pa, pb);
  i32 mx = 0;
  for (i64 i = 0; i < raw.size(); ++i) mx = std::max(mx, raw.data()[i]);

  for (const auto kind : tcsim::all_backends()) {
    for (const Activation act : kActs) {
      FusedEpilogue epi;
      epi.act = act;
      epi.rshift = calibrate_rshift(mx, out_bits);
      const EpilogueSpec spec{act, epi.rshift,
                              static_cast<i32>((u32{1} << out_bits) - 1)};
      MatrixI32 expect = raw;
      for (i64 i = 0; i < expect.size(); ++i) {
        expect.data()[i] = apply_epilogue(expect.data()[i], spec);
      }
      for (const auto layout : {BitLayout::kRowMajorK, BitLayout::kColMajorK}) {
        tcsim::ExecutionContext ctx(kind);
        BmmOptions opt;
        opt.ctx = &ctx;
        const StackedBitTensor out = bitmm_fused_bit(
            pa, pb, out_bits, epi, opt, PadPolicy::kTile8, layout);
        EXPECT_EQ(out.compose(), expect)
            << tcsim::backend_name(kind) << "/" << tcsim::activation_name(act);
        EXPECT_EQ(ctx.counters().int32_bytes_avoided,
                  static_cast<u64>(raw.rows() * raw.cols() * sizeof(i32)));
      }
    }
  }
}

// flush_epilogue (int32 output, activation only) vs the manual reference.
TEST(Epilogue, FusedIntActivationAcrossBackends) {
  Rng rng(103);
  const MatrixI32 a = random_codes(rng, 13, 130, 2);
  const MatrixI32 b = random_codes(rng, 130, 10, 1);
  const auto pa = StackedBitTensor::decompose(a, 2, BitLayout::kRowMajorK);
  const auto pb = StackedBitTensor::decompose(b, 1, BitLayout::kColMajorK);
  const MatrixI32 raw = bitmm_to_int(pa, pb);
  for (const auto kind : tcsim::all_backends()) {
    for (const Activation act : kActs) {
      tcsim::ExecutionContext ctx(kind);
      BmmOptions opt;
      opt.ctx = &ctx;
      FusedEpilogue epi;
      epi.act = act;
      MatrixI32 expect = raw;
      for (i64 i = 0; i < expect.size(); ++i) {
        expect.data()[i] =
            apply_epilogue(expect.data()[i], EpilogueSpec{act, 0, -1});
      }
      EXPECT_EQ(bitmm_fused_int(pa, pb, epi, opt), expect)
          << tcsim::backend_name(kind) << "/" << tcsim::activation_name(act);
      // The int32 output path materialises its result — nothing avoided.
      EXPECT_EQ(ctx.counters().int32_bytes_avoided, 0u);
    }
  }
}

struct ModelFixture {
  Dataset ds;
  BitMatrix adj;
  TileSparseBitMatrix sparse_adj;
  MatrixF feats;

  explicit ModelFixture(i64 nodes = 300) {
    DatasetSpec spec{"t", nodes, nodes * 6, 16, 4, 4, 9};
    ds = generate_dataset(spec);
    PartitionResult parts = partition_graph(ds.graph, 4);
    auto batches = make_batches(parts, 4);  // single batch, whole graph
    adj = build_batch_adjacency(ds.graph, batches[0]);
    sparse_adj = TileSparseBitMatrix::from_bit_matrix(adj);
    feats = gather_rows(ds.features, batches[0].nodes);
  }

  gnn::GnnConfig config(gnn::ModelKind kind, int bits, Activation act) const {
    gnn::GnnConfig cfg;
    cfg.kind = kind;
    cfg.num_layers = 3;
    cfg.in_dim = 16;
    cfg.hidden_dim = kind == gnn::ModelKind::kClusterGCN ? 16 : 64;
    cfg.out_dim = 4;
    cfg.feat_bits = bits;
    cfg.weight_bits = bits;
    cfg.activation = act;
    return cfg;
  }
};

struct ModelRun {
  MatrixI32 logits;
  gnn::ForwardStats stats;
};

ModelRun run_model(const ModelFixture& f, const gnn::GnnConfig& cfg,
                   tcsim::BackendKind kind, bool sparse) {
  gnn::QgtcModel m = gnn::QgtcModel::create(cfg, 13);
  ModelRun r;
  tcsim::ExecutionContext ctx(kind);
  if (sparse) {
    m.calibrate(f.sparse_adj, f.feats);
    const StackedBitTensor x = m.prepare_input(f.feats);
    r.logits = m.forward_prepared(f.sparse_adj, x, &r.stats, &ctx);
  } else {
    m.calibrate(f.adj, f.feats);
    r.logits = m.forward_quantized(f.adj, f.feats, &r.stats, &ctx);
  }
  return r;
}

// The tentpole parity claim: fused and unfused model passes produce
// bit-identical logits AND the identical tile schedule (bmma_ops,
// tiles_jumped) on every backend × adjacency layout, while only the fused
// pass skips int32 intermediates. (frag_loads are deliberately not compared:
// the fused col-major plane writer parallelises over output columns, which
// re-loads A fragments in a different — but counted — pattern.)
TEST(Epilogue, ModelParityAcrossBackendsAndLayouts) {
  const ModelFixture f;
  for (const auto kind : tcsim::all_backends()) {
    for (const auto mk :
         {gnn::ModelKind::kClusterGCN, gnn::ModelKind::kBatchedGIN}) {
      for (const bool sparse : {false, true}) {
        gnn::GnnConfig fused_cfg = f.config(mk, 4, Activation::kRelu);
        fused_cfg.fused_epilogue = true;
        gnn::GnnConfig unfused_cfg = fused_cfg;
        unfused_cfg.fused_epilogue = false;
        const ModelRun fused = run_model(f, fused_cfg, kind, sparse);
        const ModelRun unfused = run_model(f, unfused_cfg, kind, sparse);
        const std::string tag = std::string(tcsim::backend_name(kind)) + "/" +
                                gnn::model_name(mk) +
                                (sparse ? "/sparse" : "/dense");
        EXPECT_EQ(fused.logits, unfused.logits) << tag;
        EXPECT_EQ(fused.stats.bmma_ops, unfused.stats.bmma_ops) << tag;
        EXPECT_EQ(fused.stats.tiles_jumped, unfused.stats.tiles_jumped) << tag;
        EXPECT_GT(fused.stats.int32_bytes_avoided, 0) << tag;
        EXPECT_EQ(unfused.stats.int32_bytes_avoided, 0) << tag;
      }
    }
  }
}

TEST(Epilogue, ModelParityAcrossActivationsAndBits) {
  const ModelFixture f;
  for (const Activation act :
       {Activation::kRelu, Activation::kRelu6, Activation::kHardswish}) {
    for (const int bits : {1, 2, 4}) {
      gnn::GnnConfig fused_cfg =
          f.config(gnn::ModelKind::kClusterGCN, bits, act);
      fused_cfg.fused_epilogue = true;
      gnn::GnnConfig unfused_cfg = fused_cfg;
      unfused_cfg.fused_epilogue = false;
      const auto kind = tcsim::default_backend();
      const ModelRun fused = run_model(f, fused_cfg, kind, false);
      const ModelRun unfused = run_model(f, unfused_cfg, kind, false);
      const std::string tag =
          std::string(tcsim::activation_name(act)) + "/" + std::to_string(bits);
      EXPECT_EQ(fused.logits, unfused.logits) << tag;
      EXPECT_EQ(fused.stats.bmma_ops, unfused.stats.bmma_ops) << tag;
      EXPECT_EQ(fused.stats.tiles_jumped, unfused.stats.tiles_jumped) << tag;
    }
  }
}

// The rewrite pass: every requantizing stage is planned fused with the
// config's activation; final-layer stages stay identity (full-precision
// logits for softmax).
TEST(Epilogue, RewritePassPlansStages) {
  const ModelFixture f;
  gnn::GnnConfig cfg = f.config(gnn::ModelKind::kClusterGCN, 4,
                                Activation::kRelu6);
  gnn::QgtcModel m = gnn::QgtcModel::create(cfg, 7);
  // GCN, 3 layers: agg+update fused on layers 0..n-2, agg only on the last.
  EXPECT_EQ(m.fused_stage_count(), 5);
  EXPECT_EQ(m.agg_plan(0).act, Activation::kIdentity);  // agg never activates
  EXPECT_EQ(m.upd_plan(0).act, Activation::kRelu6);
  EXPECT_EQ(m.upd_plan(2).act, Activation::kIdentity);  // logits layer
  cfg.fused_epilogue = false;
  EXPECT_EQ(gnn::QgtcModel::create(cfg, 7).fused_stage_count(), 0);
}

// Per-layer bit-width selection: narrowed plans are exact on the
// calibration batch and never execute more tile work than the fixed-width
// config.
TEST(Epilogue, PerLayerBitsExactOnCalibrationBatch) {
  const ModelFixture f;
  gnn::GnnConfig on_cfg = f.config(gnn::ModelKind::kClusterGCN, 6,
                                   Activation::kRelu);
  on_cfg.per_layer_bits = true;
  gnn::GnnConfig off_cfg = on_cfg;
  off_cfg.per_layer_bits = false;
  const auto kind = tcsim::default_backend();
  const ModelRun on = run_model(f, on_cfg, kind, false);
  const ModelRun off = run_model(f, off_cfg, kind, false);
  EXPECT_EQ(on.logits, off.logits);
  EXPECT_LE(on.stats.bmma_ops, off.stats.bmma_ops);
}

Dataset engine_dataset() {
  DatasetSpec spec{"epi-engine", 2000, 14000, 16, 4, 16, 77};
  return generate_dataset(spec);
}

core::EngineConfig engine_config(gnn::ModelKind kind, bool fused,
                                 bool streaming) {
  core::EngineConfig cfg;
  cfg.model.kind = kind;
  cfg.model.num_layers = 3;
  cfg.model.in_dim = 16;
  cfg.model.hidden_dim = kind == gnn::ModelKind::kClusterGCN ? 16 : 32;
  cfg.model.out_dim = 4;
  cfg.model.feat_bits = 4;
  cfg.model.weight_bits = 4;
  cfg.model.fused_epilogue = fused;
  cfg.num_partitions = 16;
  cfg.batch_size = 4;
  if (streaming) cfg.mode.epoch = core::RunMode::Epoch::kStreaming;
  return cfg;
}

// Engine-level parity: fused vs unfused across precomputed and streaming
// epoch modes — identical logits and tile schedule everywhere; the fusion
// stats report stages and avoided bytes only when fusion is on.
TEST(Epilogue, EngineParityAcrossEpochModes) {
  const Dataset ds = engine_dataset();
  for (const auto mk :
       {gnn::ModelKind::kClusterGCN, gnn::ModelKind::kBatchedGIN}) {
    std::vector<MatrixI32> ref_logits;
    i64 ref_bmma = -1, ref_jumped = -1;
    for (const bool streaming : {false, true}) {
      for (const bool fused : {true, false}) {
        core::QgtcEngine engine(ds, engine_config(mk, fused, streaming));
        std::vector<MatrixI32> logits;
        const auto stats = engine.run_quantized(1, &logits);
        const std::string tag = std::string(gnn::model_name(mk)) +
                                (streaming ? "/streaming" : "/precomputed") +
                                (fused ? "/fused" : "/unfused");
        if (ref_bmma < 0) {
          ref_logits = std::move(logits);
          ref_bmma = stats.bmma_ops;
          ref_jumped = stats.tiles_jumped;
        } else {
          EXPECT_EQ(logits, ref_logits) << tag;
          EXPECT_EQ(stats.bmma_ops, ref_bmma) << tag;
          EXPECT_EQ(stats.tiles_jumped, ref_jumped) << tag;
        }
        if (fused) {
          EXPECT_GT(stats.epilogue_fused_layers, 0) << tag;
          EXPECT_GT(stats.int32_bytes_avoided, 0) << tag;
        } else {
          EXPECT_EQ(stats.epilogue_fused_layers, 0) << tag;
          EXPECT_EQ(stats.int32_bytes_avoided, 0) << tag;
        }
      }
    }
  }
}

}  // namespace
}  // namespace qgtc
