// Randomized end-to-end cross-checks ("fuzz"): for random shapes, bit
// widths, densities, layouts and kernel options, the entire packed pipeline
// must agree exactly with naive integer references. These are the
// highest-leverage tests in the repo — any packing/padding/tiling/epilogue
// bug anywhere in the stack surfaces here.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gnn/binary_gnn.hpp"
#include "kernels/anybit_mm.hpp"

namespace qgtc {
namespace {

MatrixI32 random_codes(Rng& rng, i64 rows, i64 cols, int bits, float zero_frac) {
  MatrixI32 m(rows, cols);
  const u64 range = u64{1} << bits;
  for (i64 i = 0; i < m.size(); ++i) {
    m.data()[i] = rng.next_bool(zero_frac)
                      ? 0
                      : static_cast<i32>(rng.next_below(range));
  }
  return m;
}

/// One fuzz round: random (m, k, n, s, t, densities, jump) — full pipeline
/// vs integer reference.
class PipelineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PipelineFuzz, AnyBitPipelineMatchesReference) {
  Rng rng(static_cast<u64>(GetParam()) * 7919 + 13);
  const i64 m = rng.next_in(1, 70);
  const i64 k = rng.next_in(1, 300);
  const i64 n = rng.next_in(1, 50);
  const int s = static_cast<int>(rng.next_in(1, 6));
  const int t = static_cast<int>(rng.next_in(1, 6));
  const float za = rng.next_float(0.0f, 0.9f);
  const float zb = rng.next_float(0.0f, 0.9f);

  const MatrixI32 a = random_codes(rng, m, k, s, za);
  const MatrixI32 b = random_codes(rng, k, n, t, zb);
  const MatrixI32 expect = matmul_reference(a, b);

  const auto pa = StackedBitTensor::decompose(a, s, BitLayout::kRowMajorK);
  const auto pb = StackedBitTensor::decompose(b, t, BitLayout::kColMajorK);

  BmmOptions opt;
  opt.zero_tile_jump = rng.next_bool(0.5f);
  EXPECT_EQ(bitmm_to_int(pa, pb, opt), expect);
  EXPECT_EQ(bitmm_fused_int(pa, pb, {}, opt), expect);

  // Fused to-bit output vs manual requantization of the reference.
  const int out_bits = static_cast<int>(rng.next_in(1, 8));
  i32 mx = 0;
  for (i64 i = 0; i < expect.size(); ++i) mx = std::max(mx, expect.data()[i]);
  FusedEpilogue epi;
  epi.rshift = calibrate_rshift(mx, out_bits);
  const auto packed = bitmm_fused_bit(pa, pb, out_bits, epi, opt);
  const MatrixI32 got = packed.compose();
  const i32 qmax = (1 << out_bits) - 1;
  for (i64 i = 0; i < m; ++i) {
    for (i64 j = 0; j < n; ++j) {
      ASSERT_EQ(got(i, j), std::min(expect(i, j) >> epi.rshift, qmax))
          << "at (" << i << "," << j << ")";
    }
  }
}

TEST_P(PipelineFuzz, AggregationModesAndJumpAgree) {
  Rng rng(static_cast<u64>(GetParam()) * 104729 + 7);
  const i64 nodes = rng.next_in(1, 200);
  const i64 d = rng.next_in(1, 40);
  const int s = static_cast<int>(rng.next_in(1, 8));

  // Block-sparse adjacency: some whole row-blocks zero.
  MatrixI32 adj(nodes, nodes, 0);
  for (i64 i = 0; i < nodes; ++i) {
    if ((i / 8) % 3 == 0) continue;  // zero row-block
    for (i64 j = 0; j < nodes; ++j) adj(i, j) = rng.next_bool(0.2f) ? 1 : 0;
  }
  const MatrixI32 x = random_codes(rng, nodes, d, s, 0.3f);
  const MatrixI32 expect = matmul_reference(adj, x);

  const BitMatrix pa = pack_nonzero(adj, BitLayout::kRowMajorK);
  const auto px = StackedBitTensor::decompose(x, s, BitLayout::kColMajorK);
  const TileMap map = build_tile_map(pa);

  for (const bool jump : {false, true}) {
    for (const bool with_map : {false, true}) {
      BmmOptions opt;
      opt.zero_tile_jump = jump;
      opt.tile_map = with_map ? &map : nullptr;
      EXPECT_EQ(aggregate_1bit(pa, px, ReuseMode::kCrossBit, opt), expect);
      EXPECT_EQ(aggregate_1bit(pa, px, ReuseMode::kCrossTile, opt), expect);
    }
  }
}

TEST_P(PipelineFuzz, BinaryXnorMatchesReference) {
  Rng rng(static_cast<u64>(GetParam()) * 31337 + 3);
  const i64 m = rng.next_in(1, 60);
  const i64 k = rng.next_in(1, 280);
  const i64 n = rng.next_in(1, 30);
  MatrixI32 a(m, k), b(k, n);
  for (i64 i = 0; i < a.size(); ++i) a.data()[i] = rng.next_bool(0.5f) ? 1 : -1;
  for (i64 i = 0; i < b.size(); ++i) b.data()[i] = rng.next_bool(0.5f) ? 1 : -1;
  const BitMatrix pa = gnn::pack_pm1(a, BitLayout::kRowMajorK);
  const BitMatrix pb = gnn::pack_pm1(b, BitLayout::kColMajorK);
  EXPECT_EQ(gnn::xnor_mm_pm1(pa, pb, k), matmul_reference(a, b));
}

INSTANTIATE_TEST_SUITE_P(Rounds, PipelineFuzz, ::testing::Range(0, 16));

}  // namespace
}  // namespace qgtc
