// Affinity-helper tests: cpulist parsing (including malformed sysfs
// content), topology detection against a fixture sysfs tree and the
// single-node fallback, the graceful no-op pinning contract, and the
// shard -> CPU-slice distribution rules.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "parallel/affinity.hpp"

namespace qgtc::affinity {
namespace {

TEST(CpuList, ParsesSinglesRangesAndMixes) {
  EXPECT_EQ(parse_cpulist("0"), (std::vector<int>{0}));
  EXPECT_EQ(parse_cpulist("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpulist("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  // Deduplicated and sorted regardless of input order.
  EXPECT_EQ(parse_cpulist("5,1-2,2,0"), (std::vector<int>{0, 1, 2, 5}));
}

TEST(CpuList, SkipsMalformedTokensInsteadOfThrowing) {
  EXPECT_TRUE(parse_cpulist("").empty());
  EXPECT_TRUE(parse_cpulist("garbage").empty());
  EXPECT_EQ(parse_cpulist("x,3,2-"), (std::vector<int>{3}));
  EXPECT_EQ(parse_cpulist("4-2,7"), (std::vector<int>{7}));  // inverted range
  EXPECT_EQ(parse_cpulist(",,1,"), (std::vector<int>{1}));
}

TEST(Topology, ReadsFixtureSysfsTree) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(testing::TempDir()) / "qgtc_numa_fixture";
  fs::create_directories(root / "node0");
  fs::create_directories(root / "node1");
  std::ofstream(root / "node0" / "cpulist") << "0-1\n";
  std::ofstream(root / "node1" / "cpulist") << "2-3\n";

  const Topology topo = detect_topology(root.string());
  EXPECT_TRUE(topo.from_sysfs);
  ASSERT_EQ(topo.num_nodes(), 2);
  EXPECT_EQ(topo.nodes[0].id, 0);
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<int>{0, 1}));
  EXPECT_EQ(topo.nodes[1].cpus, (std::vector<int>{2, 3}));
  EXPECT_EQ(topo.total_cpus(), 4);
  fs::remove_all(root);
}

TEST(Topology, FallsBackToSingleNodeWhenSysfsAbsent) {
  const Topology topo =
      detect_topology("/nonexistent/qgtc/sysfs/path");
  EXPECT_FALSE(topo.from_sysfs);
  ASSERT_EQ(topo.num_nodes(), 1);
  EXPECT_GE(topo.total_cpus(), 1);  // always at least one usable CPU
}

TEST(Pinning, EmptyAndInvalidMasksAreGracefulNoOps) {
  EXPECT_FALSE(pin_current_thread({}));
  // A CPU id no host has: the mask is empty after filtering, so the call
  // must decline rather than clear the thread's affinity.
  EXPECT_FALSE(pin_current_thread({1 << 24}));
}

TEST(Pinning, RepinToCurrentMaskSucceedsOnLinux) {
  const std::vector<int> before = current_thread_cpus();
  if (before.empty()) {
    GTEST_SKIP() << "platform cannot report thread affinity";
  }
  // Re-pinning to the exact current mask is always admissible; the thread's
  // view must be unchanged afterwards.
  EXPECT_TRUE(pin_current_thread(before));
  EXPECT_EQ(current_thread_cpus(), before);
}

Topology single_node(int cpus) {
  Topology topo;
  topo.from_sysfs = false;
  NumaNode node;
  node.id = 0;
  for (int c = 0; c < cpus; ++c) node.cpus.push_back(c);
  topo.nodes.push_back(std::move(node));
  return topo;
}

TEST(ShardSlices, SingleNodeSplitsContiguouslyAndCoversAllCpus) {
  const auto slices = shard_cpu_slices(single_node(8), 3);
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_EQ(slices[0], (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(slices[1], (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(slices[2], (std::vector<int>{6, 7}));
}

TEST(ShardSlices, MoreShardsThanCpusWrapsRoundRobin) {
  const auto slices = shard_cpu_slices(single_node(2), 5);
  ASSERT_EQ(slices.size(), 5u);
  for (const auto& s : slices) EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(slices[0][0], 0);
  EXPECT_EQ(slices[1][0], 1);
  EXPECT_EQ(slices[2][0], 0);  // wrapped
}

TEST(ShardSlices, MultiNodeAssignsOneShardPerSocketThenWraps) {
  Topology topo;
  topo.from_sysfs = true;
  topo.nodes.push_back({0, {0, 1}});
  topo.nodes.push_back({1, {2, 3}});
  const auto slices = shard_cpu_slices(topo, 4);
  ASSERT_EQ(slices.size(), 4u);
  EXPECT_EQ(slices[0], topo.nodes[0].cpus);
  EXPECT_EQ(slices[1], topo.nodes[1].cpus);
  EXPECT_EQ(slices[2], topo.nodes[0].cpus);  // oversubscribed, same locality
  EXPECT_EQ(slices[3], topo.nodes[1].cpus);
}

}  // namespace
}  // namespace qgtc::affinity
