// BatchCache tests: LRU/byte-budget mechanics at the unit level, and the
// engine-level invariant the whole PR hangs on — logits and substrate
// counters are bit-identical with the cache on vs off, across backends,
// adjacency layouts and run modes, including after evictions and under
// concurrent streaming prepare workers (the TSan surface).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "store/batch_cache.hpp"

namespace qgtc {
namespace {

SubgraphBatch make_batch(i32 first, i32 count) {
  SubgraphBatch b;
  for (i32 v = first; v < first + count; ++v) b.nodes.push_back(v);
  b.part_bounds = {0, count};
  return b;
}

std::size_t shard_of(u64 h) { return static_cast<std::size_t>((h >> 56) % 8); }

TEST(BatchCache, ZeroBudgetIsPassThrough) {
  store::BatchCache<int> cache(0);
  EXPECT_FALSE(cache.enabled());
  const SubgraphBatch b = make_batch(0, 4);
  cache.insert(b, 1, store::kCapPlanes, 16, std::make_shared<const int>(7));
  EXPECT_EQ(cache.lookup(b, 1, store::kCapPlanes), nullptr);
  const store::BatchCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 0);
  EXPECT_EQ(s.misses, 0);  // disabled lookups are not even counted
  EXPECT_EQ(s.inserts, 0);
  EXPECT_EQ(s.entries, 0);
}

TEST(BatchCache, OversizedEntryNeverInserted) {
  store::BatchCache<int> cache(800);  // shard budget 100
  const SubgraphBatch b = make_batch(0, 4);
  cache.insert(b, 1, store::kCapPlanes, 101, std::make_shared<const int>(7));
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.lookup(b, 1, store::kCapPlanes), nullptr);
  // At the budget boundary it fits.
  cache.insert(b, 1, store::kCapPlanes, 100, std::make_shared<const int>(7));
  EXPECT_NE(cache.lookup(b, 1, store::kCapPlanes), nullptr);
}

TEST(BatchCache, HitRequiresFingerprintAndMembership) {
  store::BatchCache<int> cache(1 << 20);
  const SubgraphBatch b = make_batch(0, 4);
  cache.insert(b, /*fingerprint=*/1, store::kCapPlanes, 16,
               std::make_shared<const int>(7));
  const auto hit = cache.lookup(b, 1, store::kCapPlanes);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 7);
  // Different quantization config -> different fingerprint -> miss.
  EXPECT_EQ(cache.lookup(b, 2, store::kCapPlanes), nullptr);
  // Different membership -> miss.
  EXPECT_EQ(cache.lookup(make_batch(1, 4), 1, store::kCapPlanes), nullptr);
}

TEST(BatchCache, CapabilityMaskGatesHitsAndUpgradesReplace) {
  store::BatchCache<int> cache(1 << 20);
  const SubgraphBatch b = make_batch(0, 4);
  cache.insert(b, 1, store::kCapPlanes, 16, std::make_shared<const int>(1));
  // Planes-only entry cannot serve a caller needing the fp32 CSR too.
  EXPECT_EQ(cache.lookup(b, 1, store::kCapPlanes | store::kCapFp32Csr),
            nullptr);
  // The richer rebuild replaces the entry (no duplicate for the same key).
  cache.insert(b, 1, store::kCapPlanes | store::kCapFp32Csr, 24,
               std::make_shared<const int>(2));
  EXPECT_EQ(cache.stats().entries, 1);
  const auto rich = cache.lookup(b, 1, store::kCapPlanes | store::kCapFp32Csr);
  ASSERT_NE(rich, nullptr);
  EXPECT_EQ(*rich, 2);
  // ...and still covers planes-only callers.
  EXPECT_NE(cache.lookup(b, 1, store::kCapPlanes), nullptr);
}

TEST(BatchCache, EvictionThenRehitReturnsFreshValue) {
  // Craft two batches that land in the SAME shard so the second insert must
  // evict the first (shard budget fits exactly one entry).
  const u64 fp = 9;
  const SubgraphBatch first = make_batch(0, 4);
  const std::size_t target = shard_of(store::hash_batch_key(first, fp));
  SubgraphBatch second;
  for (i32 start = 100; start < 10000; ++start) {
    second = make_batch(start, 4);
    if (shard_of(store::hash_batch_key(second, fp)) == target) break;
  }
  ASSERT_EQ(shard_of(store::hash_batch_key(second, fp)), target);

  store::BatchCache<int> cache(8 * 150);  // shard budget 150, entries are 100
  cache.insert(first, fp, store::kCapPlanes, 100,
               std::make_shared<const int>(1));
  // A consumer holding the value keeps it alive across the eviction.
  const auto held = cache.lookup(first, fp, store::kCapPlanes);
  ASSERT_NE(held, nullptr);
  cache.insert(second, fp, store::kCapPlanes, 100,
               std::make_shared<const int>(2));
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(*held, 1);  // shared_ptr ownership survived the eviction
  // Evicted key misses; re-inserting (the re-prepare) re-hits with the
  // fresh value.
  EXPECT_EQ(cache.lookup(first, fp, store::kCapPlanes), nullptr);
  cache.insert(first, fp, store::kCapPlanes, 100,
               std::make_shared<const int>(3));
  const auto rehit = cache.lookup(first, fp, store::kCapPlanes);
  ASSERT_NE(rehit, nullptr);
  EXPECT_EQ(*rehit, 3);
}

// ------------------------------------------------------------------------
// Engine-level bit-identity: cache on vs off.

Dataset cache_dataset() {
  DatasetSpec spec{"cache-test", 2000, 14000, 16, 4, 16, 77};
  return generate_dataset(spec);
}

core::EngineConfig cache_config(bool sparse, bool streaming, int bits = 3) {
  core::EngineConfig cfg;
  cfg.model.kind = gnn::ModelKind::kClusterGCN;
  cfg.model.num_layers = 2;
  cfg.model.in_dim = 16;
  cfg.model.hidden_dim = 16;
  cfg.model.out_dim = 4;
  cfg.model.feat_bits = bits;
  cfg.model.weight_bits = bits;
  cfg.num_partitions = 16;
  cfg.batch_size = 4;
  cfg.mode.adjacency = sparse ? core::RunMode::Adjacency::kTileSparse
                              : core::RunMode::Adjacency::kDenseJump;
  cfg.mode.epoch = streaming ? core::RunMode::Epoch::kStreaming
                             : core::RunMode::Epoch::kPrecomputed;
  return cfg;
}

TEST(BatchCacheEngine, ParityAcrossBackendsLayoutsAndModes) {
  const Dataset ds = cache_dataset();
  for (const auto backend :
       {tcsim::BackendKind::kScalar, tcsim::BackendKind::kSimd,
        tcsim::BackendKind::kBlocked}) {
    for (const bool sparse : {false, true}) {
      for (const bool streaming : {false, true}) {
        core::EngineConfig off = cache_config(sparse, streaming);
        off.backend = backend;
        core::EngineConfig on = off;
        on.cache_budget_bytes = i64{256} << 20;
        core::QgtcEngine engine_off(ds, off);
        core::QgtcEngine engine_on(ds, on);
        std::vector<MatrixI32> la, lb;
        const core::EngineStats sa = engine_off.run_quantized(2, &la);
        const core::EngineStats sb = engine_on.run_quantized(2, &lb);
        ASSERT_EQ(la, lb) << "backend=" << static_cast<int>(backend)
                          << " sparse=" << sparse
                          << " streaming=" << streaming;
        EXPECT_EQ(sa.bmma_ops, sb.bmma_ops);
        EXPECT_EQ(sa.tiles_jumped, sb.tiles_jumped);
        if (streaming) {
          // Warm epochs (the timed rounds) are all hits: every lookup in the
          // stats delta hit, and nothing was read from the feature source.
          EXPECT_EQ(sb.cache_misses, 0);
          EXPECT_EQ(sb.cache_hits, sb.batches);
          EXPECT_EQ(sb.prepare_bytes_read, 0);
        }
      }
    }
  }
}

TEST(BatchCacheEngine, ZeroBudgetEngineNeverTouchesCache) {
  const Dataset ds = cache_dataset();
  core::QgtcEngine engine(ds, cache_config(true, true));  // budget 0
  (void)engine.run_quantized(2);
  const store::BatchCacheStats s = engine.cache_stats();
  EXPECT_EQ(s.hits + s.misses + s.inserts + s.entries, 0);
}

TEST(BatchCacheEngine, BudgetSmallerThanOneBatchDegradesToPassThrough) {
  const Dataset ds = cache_dataset();
  core::EngineConfig cfg = cache_config(true, true);
  cfg.cache_budget_bytes = 8 * 64;  // shard budget 64 bytes < any batch
  core::QgtcEngine tiny(ds, cfg);
  core::QgtcEngine off(ds, cache_config(true, true));
  std::vector<MatrixI32> la, lb;
  (void)tiny.run_quantized(2, &la);
  (void)off.run_quantized(2, &lb);
  EXPECT_EQ(la, lb);
  const store::BatchCacheStats s = tiny.cache_stats();
  EXPECT_EQ(s.inserts, 0);  // every batch was oversized
  EXPECT_EQ(s.hits, 0);
  EXPECT_GT(s.misses, 0);
}

TEST(BatchCacheEngine, EvictionThenRehitKeepsLogitsBitIdentical) {
  const Dataset ds = cache_dataset();
  // Many small batches, so several land in each of the cache's shards.
  const auto many_batches = [](core::EngineConfig cfg) {
    cfg.num_partitions = 32;
    cfg.batch_size = 2;  // 16 batches/epoch
    return cfg;
  };
  // Measure the epoch's prepared footprint with an uncapped cache...
  core::EngineConfig probe_cfg = many_batches(cache_config(true, true));
  probe_cfg.cache_budget_bytes = i64{256} << 20;
  core::QgtcEngine probe(ds, probe_cfg);
  (void)probe.run_quantized(1);
  const i64 epoch_bytes = probe.cache_stats().resident_bytes;
  ASSERT_GT(epoch_bytes, 0);

  // ...then budget each shard ~1.5 average batches: every batch fits, but a
  // shard holding two must evict, so warm epochs keep evicting and
  // re-preparing. Results must not change.
  core::EngineConfig cfg = many_batches(cache_config(true, true));
  cfg.cache_budget_bytes = epoch_bytes * 3 / 4;
  core::QgtcEngine engine(ds, cfg);
  core::QgtcEngine off(ds, many_batches(cache_config(true, true)));
  std::vector<MatrixI32> la, lb;
  const core::EngineStats sa = engine.run_quantized(3, &la);
  const core::EngineStats sb = off.run_quantized(3, &lb);
  EXPECT_EQ(la, lb);
  EXPECT_EQ(sa.bmma_ops, sb.bmma_ops);
  const store::BatchCacheStats s = engine.cache_stats();
  EXPECT_GT(s.evictions, 0);
  EXPECT_GT(s.misses, 0);  // evicted batches re-prepared
}

TEST(BatchCacheEngine, ConcurrentStreamingPrepareWorkersStayBitIdentical) {
  // Multiple prepare workers race lookup/insert on the shared cache while
  // compute workers consume the shared_ptr values — the TSan job runs this.
  const Dataset ds = cache_dataset();
  core::EngineConfig cfg = cache_config(true, true);
  cfg.cache_budget_bytes = i64{256} << 20;
  cfg.mode.prepare_threads = 2;
  cfg.inter_batch_threads = 2;
  cfg.mode.pipeline_depth = 2;
  core::EngineConfig off = cfg;
  off.cache_budget_bytes = 0;
  core::QgtcEngine engine_on(ds, cfg);
  core::QgtcEngine engine_off(ds, off);
  std::vector<MatrixI32> la, lb;
  const core::EngineStats sa = engine_on.run_quantized(2, &la);
  const core::EngineStats sb = engine_off.run_quantized(2, &lb);
  EXPECT_EQ(la, lb);
  EXPECT_EQ(sa.bmma_ops, sb.bmma_ops);
  EXPECT_EQ(sa.tiles_jumped, sb.tiles_jumped);
}

}  // namespace
}  // namespace qgtc
