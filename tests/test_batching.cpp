// Subgraph batching tests: coverage, block-diagonal adjacency, CSR/bit
// consistency, feature gathering.
#include <gtest/gtest.h>

#include "graph/batching.hpp"
#include "graph/generator.hpp"

namespace qgtc {
namespace {

struct Fixture {
  Dataset ds;
  PartitionResult parts;
  std::vector<SubgraphBatch> batches;

  explicit Fixture(i64 nodes = 800, i64 edges = 4000, i64 nparts = 8,
                   i64 batch_size = 3) {
    DatasetSpec spec{"t", nodes, edges, 8, 3, 8, 5};
    ds = generate_dataset(spec);
    parts = partition_graph(ds.graph, nparts);
    batches = make_batches(parts, batch_size);
  }
};

TEST(Batching, CoversAllNodesOnce) {
  Fixture f;
  std::vector<int> seen(800, 0);
  for (const auto& b : f.batches) {
    for (const i32 v : b.nodes) ++seen[static_cast<std::size_t>(v)];
  }
  for (const int s : seen) EXPECT_EQ(s, 1);
}

TEST(Batching, BatchSizesMatchPartitionGrouping) {
  Fixture f;
  // 8 partitions in batches of 3 -> 3 batches (3, 3, 2 partitions).
  ASSERT_EQ(f.batches.size(), 3u);
  EXPECT_EQ(f.batches[0].num_parts(), 3);
  EXPECT_EQ(f.batches[1].num_parts(), 3);
  EXPECT_EQ(f.batches[2].num_parts(), 2);
}

TEST(Batching, AdjacencyIsBlockDiagonal) {
  Fixture f;
  const auto& b = f.batches[0];
  const BitMatrix adj = build_batch_adjacency(f.ds.graph, b);
  // Edges across different partitions of the batch must be absent even when
  // the global graph has them.
  for (i64 u = 0; u < b.size(); u += 7) {
    for (i64 v = 0; v < b.size(); v += 11) {
      if (adj.get(u, v) && u != v) {
        // Find the partitions containing u and v.
        i64 pu = -1, pv = -1;
        for (i64 p = 0; p < b.num_parts(); ++p) {
          if (u >= b.part_bounds[static_cast<std::size_t>(p)] &&
              u < b.part_bounds[static_cast<std::size_t>(p) + 1])
            pu = p;
          if (v >= b.part_bounds[static_cast<std::size_t>(p)] &&
              v < b.part_bounds[static_cast<std::size_t>(p) + 1])
            pv = p;
        }
        EXPECT_EQ(pu, pv) << "cross-partition edge in batch adjacency";
      }
    }
  }
}

TEST(Batching, SelfLoops) {
  Fixture f;
  const auto& b = f.batches[0];
  const BitMatrix with = build_batch_adjacency(f.ds.graph, b, true);
  const BitMatrix without = build_batch_adjacency(f.ds.graph, b, false);
  for (i64 u = 0; u < std::min<i64>(b.size(), 50); ++u) {
    EXPECT_TRUE(with.get(u, u));
    EXPECT_FALSE(without.get(u, u));
  }
}

TEST(Batching, CsrMatchesBitAdjacency) {
  Fixture f;
  const auto& b = f.batches[1];
  const BitMatrix adj = build_batch_adjacency(f.ds.graph, b, false);
  const CsrGraph local = build_batch_csr(f.ds.graph, b, false);
  ASSERT_EQ(local.num_nodes(), b.size());
  i64 bit_edges = 0;
  for (i64 u = 0; u < b.size(); ++u) {
    for (i64 v = 0; v < b.size(); ++v) {
      if (adj.get(u, v)) {
        ++bit_edges;
        EXPECT_TRUE(local.has_edge(u, v));
      }
    }
  }
  EXPECT_EQ(bit_edges, local.num_edges());
}

TEST(Batching, AdjacencyMirrorsGlobalEdges) {
  Fixture f;
  const auto& b = f.batches[0];
  const BitMatrix adj = build_batch_adjacency(f.ds.graph, b, false);
  // Every set bit corresponds to a real global edge.
  for (i64 u = 0; u < b.size(); u += 5) {
    for (i64 v = 0; v < b.size(); v += 3) {
      if (adj.get(u, v)) {
        EXPECT_TRUE(f.ds.graph.has_edge(b.nodes[static_cast<std::size_t>(u)],
                                        b.nodes[static_cast<std::size_t>(v)]));
      }
    }
  }
}

TEST(Batching, GatherRows) {
  Fixture f;
  const auto& b = f.batches[0];
  const MatrixF feats = gather_rows(f.ds.features, b.nodes);
  ASSERT_EQ(feats.rows(), b.size());
  ASSERT_EQ(feats.cols(), f.ds.features.cols());
  for (i64 i = 0; i < std::min<i64>(b.size(), 20); ++i) {
    for (i64 j = 0; j < feats.cols(); ++j) {
      EXPECT_FLOAT_EQ(feats(i, j),
                      f.ds.features(b.nodes[static_cast<std::size_t>(i)], j));
    }
  }
}

TEST(Batching, GatherLabels) {
  Fixture f;
  const auto& b = f.batches[0];
  const auto labels = gather_labels(f.ds.labels, b.nodes);
  ASSERT_EQ(labels.size(), b.nodes.size());
  for (std::size_t i = 0; i < labels.size(); i += 9) {
    EXPECT_EQ(labels[i], f.ds.labels[static_cast<std::size_t>(b.nodes[i])]);
  }
}

TEST(Batching, InvalidBatchSizeThrows) {
  Fixture f;
  EXPECT_THROW(make_batches(f.parts, 0), std::invalid_argument);
}

}  // namespace
}  // namespace qgtc
