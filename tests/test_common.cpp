// Unit tests for common utilities: padding math, Matrix, RNG, env config.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/defs.hpp"
#include "common/env.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace qgtc {
namespace {

TEST(Defs, RoundUp) {
  EXPECT_EQ(round_up(0, 8), 0);
  EXPECT_EQ(round_up(1, 8), 8);
  EXPECT_EQ(round_up(8, 8), 8);
  EXPECT_EQ(round_up(9, 8), 16);
  EXPECT_EQ(round_up(127, 128), 128);
  EXPECT_EQ(round_up(129, 128), 256);
}

TEST(Defs, PadHelpers) {
  EXPECT_EQ(pad8(3), 8);
  EXPECT_EQ(pad8(16), 16);
  EXPECT_EQ(pad128(1), 128);
  EXPECT_EQ(pad128(128), 128);
  EXPECT_EQ(pad128(200), 256);
}

TEST(Defs, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
}

TEST(Defs, TileConstantsMatchPaper) {
  // 1-bit TC GEMM requires M = N = 8, K = 128 (paper §2.3).
  EXPECT_EQ(kTileM, 8);
  EXPECT_EQ(kTileN, 8);
  EXPECT_EQ(kTileK, 128);
  EXPECT_EQ(kTileKWords, 4);
}

TEST(Defs, CheckMacroThrows) {
  EXPECT_THROW(QGTC_CHECK(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(QGTC_CHECK(true, "fine"));
}

TEST(Matrix, BasicAccess) {
  MatrixI32 m(3, 4, 7);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  EXPECT_EQ(m(2, 3), 7);
  m(1, 2) = 42;
  EXPECT_EQ(m.at(1, 2), 42);
  EXPECT_EQ(m.row(1)[2], 42);
}

TEST(Matrix, Equality) {
  MatrixI32 a(2, 2, 1), b(2, 2, 1);
  EXPECT_EQ(a, b);
  b(0, 0) = 2;
  EXPECT_FALSE(a == b);
}

TEST(Matrix, NegativeDimensionThrows) {
  EXPECT_THROW(MatrixF(-1, 2), std::invalid_argument);
}

TEST(Matrix, MatmulReferenceInt) {
  MatrixI32 a(2, 3);
  MatrixI32 b(3, 2);
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  i32 av[] = {1, 2, 3, 4, 5, 6}, bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  const MatrixI32 c = matmul_reference(a, b);
  EXPECT_EQ(c(0, 0), 58);
  EXPECT_EQ(c(0, 1), 64);
  EXPECT_EQ(c(1, 0), 139);
  EXPECT_EQ(c(1, 1), 154);
}

TEST(Matrix, MatmulReferenceShapeMismatchThrows) {
  MatrixI32 a(2, 3), b(4, 2);
  EXPECT_THROW(matmul_reference(a, b), std::invalid_argument);
}

TEST(Matrix, MaxAbsDiff) {
  MatrixF a(2, 2, 1.0f), b(2, 2, 1.5f);
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.5f);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, FloatRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const float f = r.next_float();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(Rng, NextInBounds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const i64 v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, GaussianMoments) {
  Rng r(77);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const float g = r.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Env, IntFallback) {
  ::unsetenv("QGTC_TEST_ENV_INT");
  EXPECT_EQ(env_i64("QGTC_TEST_ENV_INT", 42), 42);
  ::setenv("QGTC_TEST_ENV_INT", "17", 1);
  EXPECT_EQ(env_i64("QGTC_TEST_ENV_INT", 42), 17);
  ::setenv("QGTC_TEST_ENV_INT", "garbage", 1);
  EXPECT_EQ(env_i64("QGTC_TEST_ENV_INT", 42), 42);
}

TEST(Env, Flag) {
  ::unsetenv("QGTC_TEST_ENV_FLAG");
  EXPECT_FALSE(env_flag("QGTC_TEST_ENV_FLAG"));
  ::setenv("QGTC_TEST_ENV_FLAG", "1", 1);
  EXPECT_TRUE(env_flag("QGTC_TEST_ENV_FLAG"));
  ::setenv("QGTC_TEST_ENV_FLAG", "0", 1);
  EXPECT_FALSE(env_flag("QGTC_TEST_ENV_FLAG"));
}

}  // namespace
}  // namespace qgtc
