// Quantizer tests: Eq. 2 semantics, clamping, round-trip error bounds, and a
// parameterized sweep over bitwidths.
#include <gtest/gtest.h>

#include "bittensor/quantize.hpp"
#include "common/rng.hpp"

namespace qgtc {
namespace {

TEST(Quantize, ScaleMatchesEq2) {
  const QuantParams p{0.0f, 8.0f, 3};
  // scale = (max - min) / 2^q = 8 / 8 = 1.
  EXPECT_FLOAT_EQ(p.scale(), 1.0f);
  EXPECT_EQ(p.qmax(), 7);
}

TEST(Quantize, FloorSemantics) {
  const QuantParams p{0.0f, 8.0f, 3};
  EXPECT_EQ(quantize_value(0.0f, p), 0);
  EXPECT_EQ(quantize_value(0.99f, p), 0);
  EXPECT_EQ(quantize_value(1.0f, p), 1);
  EXPECT_EQ(quantize_value(6.5f, p), 6);
}

TEST(Quantize, ClampsOutOfRange) {
  const QuantParams p{0.0f, 8.0f, 3};
  EXPECT_EQ(quantize_value(-5.0f, p), 0);
  EXPECT_EQ(quantize_value(100.0f, p), 7);
  EXPECT_EQ(quantize_value(8.0f, p), 7);  // alpha_max itself saturates
}

TEST(Quantize, ParamsFromData) {
  MatrixF m(2, 2);
  m(0, 0) = -1.0f;
  m(0, 1) = 3.0f;
  m(1, 0) = 0.5f;
  m(1, 1) = 2.0f;
  const QuantParams p = quant_params_from_data(m, 4);
  EXPECT_FLOAT_EQ(p.alpha_min, -1.0f);
  EXPECT_FLOAT_EQ(p.alpha_max, 3.0f);
  EXPECT_EQ(p.bits, 4);
}

TEST(Quantize, DegenerateRangeStaysPositiveScale) {
  MatrixF m(2, 2, 5.0f);
  const QuantParams p = quant_params_from_data(m, 4);
  EXPECT_GT(p.scale(), 0.0f);
  EXPECT_EQ(quantize_value(5.0f, p), 0);
}

TEST(Quantize, InvalidBitsThrow) {
  MatrixF m(1, 1, 0.0f);
  EXPECT_THROW(quant_params_from_data(m, 0), std::invalid_argument);
  EXPECT_THROW(quant_params_from_data(m, 32), std::invalid_argument);
}

TEST(Quantize, MatrixRoundTripShape) {
  MatrixF m(3, 5, 0.25f);
  const QuantParams p{0.0f, 1.0f, 8};
  const MatrixI32 q = quantize_matrix(m, p);
  EXPECT_EQ(q.rows(), 3);
  EXPECT_EQ(q.cols(), 5);
  const MatrixF back = dequantize_matrix(q, p);
  EXPECT_LE(max_abs_diff(m, back), p.scale());
}

/// Property sweep: for random data at every bitwidth, codes stay in range
/// and the dequantized round-trip error is bounded by one scale step.
class QuantizeBitSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantizeBitSweep, RoundTripErrorBounded) {
  const int bits = GetParam();
  Rng rng(1000 + static_cast<u64>(bits));
  MatrixF m(16, 16);
  for (i64 i = 0; i < m.size(); ++i) m.data()[i] = rng.next_float(-4.0f, 4.0f);
  const QuantParams p = quant_params_from_data(m, bits);
  const MatrixI32 q = quantize_matrix(m, p);
  for (i64 i = 0; i < q.size(); ++i) {
    EXPECT_GE(q.data()[i], 0);
    EXPECT_LE(q.data()[i], p.qmax());
  }
  const MatrixF back = dequantize_matrix(q, p);
  // Mid-point dequantization: |x - deq(q(x))| <= scale/2 everywhere except
  // the saturated top code (<= scale).
  EXPECT_LE(max_abs_diff(m, back), p.scale() * 1.001f);
}

INSTANTIATE_TEST_SUITE_P(AllBits, QuantizeBitSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 12, 16));

}  // namespace
}  // namespace qgtc
