// Out-of-core dataset store tests: writer/loader round-trip bit-identity,
// header (magic/version/endianness) guards, residency-budget behaviour, and
// engine parity — a store-backed engine must produce bit-identical logits
// and substrate counters to the in-core engine on the same dataset.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/engine.hpp"
#include "graph/io.hpp"
#include "store/dataset_store.hpp"
#include "store/format.hpp"

namespace qgtc {
namespace {

namespace fs = std::filesystem;

/// Self-cleaning store directory under the test cwd (the build tree).
struct TempStoreDir {
  explicit TempStoreDir(const std::string& name)
      : path("qgtc_test_store_" + name) {
    fs::remove_all(path);
  }
  ~TempStoreDir() { fs::remove_all(path); }
  std::string path;
};

Dataset small_dataset() {
  DatasetSpec spec{"store-test", 2000, 14000, 16, 4, 16, 77};
  return generate_dataset(spec);
}

core::EngineConfig small_config(int bits = 4) {
  core::EngineConfig cfg;
  cfg.model.kind = gnn::ModelKind::kClusterGCN;
  cfg.model.num_layers = 3;
  cfg.model.in_dim = 16;
  cfg.model.hidden_dim = 16;
  cfg.model.out_dim = 4;
  cfg.model.feat_bits = bits;
  cfg.model.weight_bits = bits;
  cfg.num_partitions = 16;
  cfg.batch_size = 4;
  return cfg;
}

/// Writes the dataset with geometry that forces several feature chunks and
/// several CSR shards, so the multi-file paths are exercised.
void write_sharded(const std::string& dir, const Dataset& ds) {
  io::StoreWriteOptions opt;
  opt.chunk_cols = 5;         // 16 cols -> 4 chunks (last one ragged)
  opt.nodes_per_shard = 300;  // 2000 nodes -> 7 shards (last one ragged)
  io::save_dataset_store(dir, ds, opt);
}

TEST(DatasetStore, RoundTripsSpecLabelsGraphAndFeatures) {
  const Dataset ds = small_dataset();
  TempStoreDir dir("roundtrip");
  write_sharded(dir.path, ds);
  const store::DatasetStore st = store::DatasetStore::open(dir.path);

  EXPECT_EQ(st.spec().name, ds.spec.name);
  EXPECT_EQ(st.spec().num_nodes, ds.spec.num_nodes);
  EXPECT_EQ(st.spec().feature_dim, ds.spec.feature_dim);
  EXPECT_EQ(st.labels(), ds.labels);
  EXPECT_GT(st.mapped_bytes(), 0);

  // Graph view identity across every node — including shard boundaries.
  ASSERT_EQ(st.graph().num_nodes(), ds.graph.num_nodes());
  ASSERT_EQ(st.graph().num_edges(), ds.graph.num_edges());
  for (i64 v = 0; v < ds.graph.num_nodes(); ++v) {
    ASSERT_EQ(st.graph().degree(v), ds.graph.degree(v)) << "node " << v;
    const auto a = st.graph().neighbors(v);
    const auto b = ds.graph.neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << "node " << v;
  }

  // Feature gather bit-identity against the in-core rows, with an access
  // pattern that crosses every chunk.
  std::vector<i32> nodes;
  for (i32 v = 0; v < 2000; v += 7) nodes.push_back(v);
  const MatrixF got = st.features().gather(nodes);
  ASSERT_EQ(got.rows(), static_cast<i64>(nodes.size()));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto want = ds.features.row(nodes[i]);
    const auto have = got.row(static_cast<i64>(i));
    ASSERT_TRUE(std::equal(want.begin(), want.end(), have.begin()))
        << "row " << nodes[i];
  }
}

TEST(DatasetStore, ResidencyBudgetSweepsKeepGatherIdentical) {
  const Dataset ds = small_dataset();
  TempStoreDir dir("residency");
  write_sharded(dir.path, ds);
  store::StoreOpenOptions opt;
  opt.residency_budget_bytes = 4096;  // sweep constantly
  const store::DatasetStore st = store::DatasetStore::open(dir.path, opt);
  std::vector<i32> nodes;
  for (i32 v = 0; v < 2000; v += 3) nodes.push_back(v);
  const MatrixF a = st.features().gather(nodes);
  const MatrixF b = st.features().gather(nodes);  // refault after DONTNEED
  EXPECT_EQ(a, b);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto want = ds.features.row(nodes[i]);
    const auto have = a.row(static_cast<i64>(i));
    ASSERT_TRUE(std::equal(want.begin(), want.end(), have.begin()));
  }
}

// ------------------------------------------------------------------------
// Format guards: every store file carries magic + version + endianness and
// a corrupted header must be rejected, not misread.

/// Flips bytes at `offset` in `path`.
void corrupt_file(const std::string& path, std::streamoff offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekp(offset);
  const u32 junk = 0xdeadbeef;
  f.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
}

TEST(DatasetStore, RejectsCorruptMagic) {
  const Dataset ds = small_dataset();
  TempStoreDir dir("badmagic");
  write_sharded(dir.path, ds);
  corrupt_file(dir.path + "/" + store::meta_filename(), 0);
  EXPECT_THROW(store::DatasetStore::open(dir.path), std::invalid_argument);
}

TEST(DatasetStore, RejectsCorruptVersion) {
  const Dataset ds = small_dataset();
  TempStoreDir dir("badversion");
  write_sharded(dir.path, ds);
  corrupt_file(dir.path + "/" + store::chunk_filename(0),
               offsetof(store::FileHeader, version));
  EXPECT_THROW(store::DatasetStore::open(dir.path), std::invalid_argument);
}

TEST(DatasetStore, RejectsEndiannessMismatch) {
  const Dataset ds = small_dataset();
  TempStoreDir dir("badendian");
  write_sharded(dir.path, ds);
  corrupt_file(dir.path + "/" + store::shard_filename(0),
               offsetof(store::FileHeader, endian));
  EXPECT_THROW(store::DatasetStore::open(dir.path), std::invalid_argument);
}

TEST(DatasetStore, RejectsMissingDirectory) {
  EXPECT_THROW(store::DatasetStore::open("qgtc_test_store_never_written"),
               std::invalid_argument);
}

TEST(DatasetIo, LegacyStreamRejectsEndiannessMismatch) {
  // The monolithic dataset format gained the same endianness probe (v2);
  // a stream whose probe word does not match must be rejected.
  const Dataset ds = small_dataset();
  std::stringstream buf;
  io::save_dataset(buf, ds);
  std::string bytes = buf.str();
  // Layout: magic(4) version(4) endian(4) ... — byte-swap the probe word to
  // what a big-endian writer would have produced.
  std::swap(bytes[8], bytes[11]);
  std::swap(bytes[9], bytes[10]);
  std::stringstream corrupted(bytes);
  EXPECT_THROW(io::load_dataset(corrupted), std::invalid_argument);
}

// ------------------------------------------------------------------------
// Engine parity: the store is a transparent substitution for the Dataset.

TEST(DatasetStore, EngineParityWithInCore) {
  const Dataset ds = small_dataset();
  TempStoreDir dir("parity");
  write_sharded(dir.path, ds);
  const store::DatasetStore st = store::DatasetStore::open(dir.path);

  for (const bool sparse : {false, true}) {
    for (const bool streaming : {false, true}) {
      core::EngineConfig cfg = small_config();
      cfg.mode.adjacency = sparse ? core::RunMode::Adjacency::kTileSparse
                                  : core::RunMode::Adjacency::kDenseJump;
      cfg.mode.epoch = streaming ? core::RunMode::Epoch::kStreaming
                                 : core::RunMode::Epoch::kPrecomputed;
      core::QgtcEngine in_core(ds, cfg);
      core::QgtcEngine out_of_core(st, cfg);
      std::vector<MatrixI32> logits_a, logits_b;
      const core::EngineStats sa = in_core.run_quantized(1, &logits_a);
      const core::EngineStats sb = out_of_core.run_quantized(1, &logits_b);
      ASSERT_EQ(logits_a, logits_b)
          << "sparse=" << sparse << " streaming=" << streaming;
      EXPECT_EQ(sa.bmma_ops, sb.bmma_ops);
      EXPECT_EQ(sa.tiles_jumped, sb.tiles_jumped);
      EXPECT_EQ(sa.nodes, sb.nodes);
      EXPECT_EQ(sb.mapped_bytes, st.mapped_bytes());
      EXPECT_EQ(sa.mapped_bytes, 0);
    }
  }
}

TEST(DatasetStore, StoreEngineRunsFp32AndAccounting) {
  const Dataset ds = small_dataset();
  TempStoreDir dir("fp32");
  write_sharded(dir.path, ds);
  const store::DatasetStore st = store::DatasetStore::open(dir.path);
  core::EngineConfig cfg = small_config();
  core::QgtcEngine in_core(ds, cfg);
  core::QgtcEngine out_of_core(st, cfg);
  const core::EngineStats fa = in_core.run_fp32(1);
  const core::EngineStats fb = out_of_core.run_fp32(1);
  EXPECT_EQ(fa.nodes, fb.nodes);
  const core::EngineStats ta = in_core.transfer_accounting();
  const core::EngineStats tb = out_of_core.transfer_accounting();
  EXPECT_EQ(ta.packed_bytes, tb.packed_bytes);
  EXPECT_EQ(ta.dense_bytes, tb.dense_bytes);
  EXPECT_EQ(ta.adj_bytes, tb.adj_bytes);
}

}  // namespace
}  // namespace qgtc
