// BitMatrix tests: both §4.2 packing layouts, padding policies, set/get
// round-trips, and pack/unpack consistency.
#include <gtest/gtest.h>

#include "bittensor/bit_matrix.hpp"
#include "common/rng.hpp"

namespace qgtc {
namespace {

TEST(BitMatrix, RowMajorKPaddedShape) {
  // A-side: rows pad to 8, K (cols) pads to 128.
  const BitMatrix m(10, 200, BitLayout::kRowMajorK, PadPolicy::kTile8);
  EXPECT_EQ(m.padded_rows(), 16);
  EXPECT_EQ(m.padded_cols(), 256);
  EXPECT_EQ(m.k_words(), 8);
  EXPECT_EQ(m.lines(), 16);
  EXPECT_EQ(m.bytes(), 16 * 8 * 4);
}

TEST(BitMatrix, RowMajorKOperandPadding) {
  // Hidden-layer padding rule: non-K extent pads to 128 instead of 8.
  const BitMatrix m(10, 200, BitLayout::kRowMajorK, PadPolicy::kOperand128);
  EXPECT_EQ(m.padded_rows(), 128);
  EXPECT_EQ(m.padded_cols(), 256);
}

TEST(BitMatrix, ColMajorKPaddedShape) {
  // B-side: K (rows) pads to 128, cols pad to 8.
  const BitMatrix m(200, 10, BitLayout::kColMajorK, PadPolicy::kTile8);
  EXPECT_EQ(m.padded_rows(), 256);
  EXPECT_EQ(m.padded_cols(), 16);
  EXPECT_EQ(m.k_words(), 8);
  EXPECT_EQ(m.lines(), 16);
}

TEST(BitMatrix, SetGetRowMajor) {
  BitMatrix m(9, 130, BitLayout::kRowMajorK);
  EXPECT_FALSE(m.get(3, 100));
  m.set(3, 100, true);
  EXPECT_TRUE(m.get(3, 100));
  m.set(3, 100, false);
  EXPECT_FALSE(m.get(3, 100));
  // Neighbouring bits untouched.
  m.set(3, 99, true);
  m.set(3, 101, true);
  EXPECT_FALSE(m.get(3, 100));
}

TEST(BitMatrix, SetGetColMajor) {
  BitMatrix m(130, 9, BitLayout::kColMajorK);
  m.set(100, 3, true);
  EXPECT_TRUE(m.get(100, 3));
  EXPECT_FALSE(m.get(99, 3));
  EXPECT_FALSE(m.get(100, 2));
}

TEST(BitMatrix, LittleEndianWithinWord) {
  // Paper Figure 4: every 32 bits stored little-endian. Column 0 is bit 0.
  BitMatrix m(8, 128, BitLayout::kRowMajorK);
  m.set(0, 0, true);
  EXPECT_EQ(m.row_words(0)[0], 1u);
  m.set(0, 31, true);
  EXPECT_EQ(m.row_words(0)[0], 0x80000001u);
  m.set(0, 32, true);
  EXPECT_EQ(m.row_words(0)[1], 1u);
}

TEST(BitMatrix, PackNonzero) {
  MatrixI32 m(3, 3, 0);
  m(0, 0) = 5;
  m(1, 2) = -1;
  m(2, 1) = 1;
  const BitMatrix bm = pack_nonzero(m, BitLayout::kRowMajorK);
  EXPECT_TRUE(bm.get(0, 0));
  EXPECT_TRUE(bm.get(1, 2));
  EXPECT_TRUE(bm.get(2, 1));
  EXPECT_FALSE(bm.get(0, 1));
  EXPECT_FALSE(bm.get(2, 2));
}

TEST(BitMatrix, PackBitPlane) {
  MatrixI32 m(2, 2);
  m(0, 0) = 0b101;
  m(0, 1) = 0b010;
  m(1, 0) = 0b111;
  m(1, 1) = 0b000;
  const BitMatrix p0 = pack_bit_plane(m, 0, BitLayout::kRowMajorK);
  const BitMatrix p1 = pack_bit_plane(m, 1, BitLayout::kRowMajorK);
  const BitMatrix p2 = pack_bit_plane(m, 2, BitLayout::kRowMajorK);
  EXPECT_TRUE(p0.get(0, 0));
  EXPECT_FALSE(p0.get(0, 1));
  EXPECT_TRUE(p1.get(0, 1));
  EXPECT_TRUE(p2.get(1, 0));
  EXPECT_FALSE(p2.get(0, 1));
}

TEST(BitMatrix, PackBitPlaneRangeCheck) {
  MatrixI32 m(1, 1, 0);
  EXPECT_THROW(pack_bit_plane(m, -1, BitLayout::kRowMajorK),
               std::invalid_argument);
  EXPECT_THROW(pack_bit_plane(m, 31, BitLayout::kRowMajorK),
               std::invalid_argument);
}

/// Property: pack -> unpack round-trips the 0/1 pattern for random matrices
/// in both layouts.
class BitMatrixRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, BitLayout>> {};

TEST_P(BitMatrixRoundTrip, PackUnpack) {
  const auto [rows, cols, layout] = GetParam();
  Rng rng(static_cast<u64>(rows * 1000 + cols));
  MatrixI32 m(rows, cols);
  for (i64 i = 0; i < m.size(); ++i) m.data()[i] = rng.next_bool(0.4f) ? 1 : 0;
  const BitMatrix bm = pack_nonzero(m, layout);
  const MatrixI32 back = unpack_bits(bm);
  EXPECT_EQ(m, back);
  // Padding regions stay zero: total set bits equals logical set bits.
  i64 logical = 0;
  for (i64 i = 0; i < m.size(); ++i) logical += m.data()[i];
  i64 packed = 0;
  for (i64 w = 0; w < bm.lines() * bm.k_words(); ++w) {
    packed += std::popcount(bm.data()[w]);
  }
  EXPECT_EQ(packed, logical);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BitMatrixRoundTrip,
    ::testing::Values(
        std::make_tuple(1, 1, BitLayout::kRowMajorK),
        std::make_tuple(8, 128, BitLayout::kRowMajorK),
        std::make_tuple(9, 129, BitLayout::kRowMajorK),
        std::make_tuple(33, 257, BitLayout::kRowMajorK),
        std::make_tuple(1, 1, BitLayout::kColMajorK),
        std::make_tuple(128, 8, BitLayout::kColMajorK),
        std::make_tuple(129, 9, BitLayout::kColMajorK),
        std::make_tuple(257, 33, BitLayout::kColMajorK)));

}  // namespace
}  // namespace qgtc
