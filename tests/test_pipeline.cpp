// Streaming-pipeline tests: bounded-queue semantics, overlap accounting,
// stream-epoch invariants, shutdown-on-exception safety (ASan-clean), and
// the headline guarantee — streaming and precomputed engines produce
// bit-identical logits and identical counters for every pipeline depth,
// backend and adjacency layout.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "core/engine.hpp"
#include "core/pipeline.hpp"

namespace qgtc::core {
namespace {

// ------------------------------------------------------------ BoundedQueue

TEST(BoundedQueue, FifoAndCloseDrainsRemainingItems) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // closed: no new items
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());  // drained
}

TEST(BoundedQueue, AbortDropsPendingItems) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(7));
  q.abort();
  EXPECT_FALSE(q.pop().has_value());  // pending item was dropped
  EXPECT_FALSE(q.push(8));
}

TEST(BoundedQueue, ResetReopensAfterAbort) {
  // Regression: a long-lived server must survive an aborted epoch. Before
  // reset() existed, one abort left the queue returning end-of-stream
  // forever — a single poisoned batch killed the whole server.
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.push(1));
  q.abort();
  EXPECT_FALSE(q.push(2));
  EXPECT_FALSE(q.pop().has_value());

  q.reset();
  EXPECT_FALSE(q.closed());
  EXPECT_TRUE(q.push(3));  // pushes work again
  EXPECT_TRUE(q.push(4));
  EXPECT_EQ(q.pop().value(), 3);  // and only post-reset items are visible
  EXPECT_EQ(q.pop().value(), 4);

  // reset() after a graceful close also drops undrained leftovers.
  EXPECT_TRUE(q.push(5));
  q.close();
  q.reset();
  int out = 0;
  EXPECT_EQ(q.pop_for(1000, out), BoundedQueue<int>::PopStatus::kTimeout);
}

TEST(BoundedQueue, ResetReleasesBlockedProducers) {
  // A producer parked in push() on a full+open queue must wake when reset()
  // clears the backlog, not stay wedged against the old capacity.
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.push(1));  // full
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    const bool ok = q.push(2);  // blocks until reset clears the queue
    pushed.store(ok);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  q.reset();
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);  // item 1 was dropped by reset
}

TEST(BoundedQueue, PopForTimesOutOnOpenEmptyQueue) {
  BoundedQueue<int> q(2);
  int out = 0;
  EXPECT_EQ(q.pop_for(1000, out), BoundedQueue<int>::PopStatus::kTimeout);
  EXPECT_TRUE(q.push(9));
  EXPECT_EQ(q.pop_for(1000, out), BoundedQueue<int>::PopStatus::kItem);
  EXPECT_EQ(out, 9);
  q.close();
  EXPECT_EQ(q.pop_for(1000, out), BoundedQueue<int>::PopStatus::kClosed);
}

TEST(BoundedQueue, FullQueueBlocksProducerUntilConsumerPops) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(0));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(1));
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_pushed.load());  // capacity 1: producer is parked
  EXPECT_EQ(q.pop().value(), 0);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();  // deadlock here would trip the ctest timeout
}

// ------------------------------------------------- overlap accounting math

TEST(OverlapAccounting, ComputeBoundExposesOnlyFirstTransfer) {
  const double wire[] = {1.0, 1.0, 1.0};
  const double comp[] = {10.0, 10.0, 10.0};
  // Batch 0's wire time has nothing to hide behind; 1 and 2 finish long
  // before the compute engine frees up.
  EXPECT_DOUBLE_EQ(exposed_transfer_seconds(wire, comp), 1.0);
}

TEST(OverlapAccounting, TransferBoundExposesAlmostEverything) {
  const double wire[] = {10.0, 10.0};
  const double comp[] = {1.0, 1.0};
  // Transfer 1 (ends t=20) hides only batch 0's 1s of compute (t=10..11).
  EXPECT_DOUBLE_EQ(exposed_transfer_seconds(wire, comp), 19.0);
}

TEST(OverlapAccounting, EmptyEpochAndShapeMismatch) {
  EXPECT_DOUBLE_EQ(exposed_transfer_seconds({}, {}), 0.0);
  const double one[] = {1.0};
  EXPECT_THROW(exposed_transfer_seconds(one, {}), std::invalid_argument);
}

// --------------------------------------------------------- stream epoch

StreamEpochConfig small_epoch(i64 batches, int depth) {
  StreamEpochConfig cfg;
  cfg.num_batches = batches;
  cfg.depth = depth;
  cfg.prepare_workers = 2;
  cfg.compute_workers = 2;
  return cfg;
}

transfer::PackedSubgraph fake_pack(const i64& v, transfer::StagingBuffer& slot) {
  transfer::PackedSubgraph p;
  slot.stage(&v, sizeof(v));
  p.total_bytes = sizeof(v);
  p.adjacency_bytes = 4;
  p.modeled_seconds = 1e-6;
  return p;
}

TEST(StreamEpoch, EveryBatchComputedExactlyOnceWithItsOwnData) {
  const i64 n = 48;
  std::vector<std::atomic<int>> seen(static_cast<std::size_t>(n));
  transfer::StagingRing ring(2);
  const StreamEpochStats stats = run_stream_epoch<i64>(
      small_epoch(n, 2), ring,
      [](i64 i) { return i; },
      [](const i64&) { return i64{1000}; },
      fake_pack,
      [&](const i64& item, i64 index, int worker) {
        EXPECT_EQ(item, index);  // ship/compute never mixed up payloads
        EXPECT_GE(worker, 0);
        EXPECT_LT(worker, 2);
        seen[static_cast<std::size_t>(index)].fetch_add(1);
      });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
  EXPECT_EQ(stats.packed_bytes, n * static_cast<i64>(sizeof(i64)));
  EXPECT_EQ(stats.adj_bytes, n * 4);
  EXPECT_NEAR(stats.wire_seconds, n * 1e-6, 1e-9);
  EXPECT_GT(stats.exposed_seconds, 0.0);  // at least batch 0 is exposed
}

TEST(StreamEpoch, PeakResidencyIsBoundedByDepthNotEpoch) {
  const i64 n = 64;
  const i64 item_bytes = 1000;
  const StreamEpochConfig cfg = small_epoch(n, 2);
  transfer::StagingRing ring(2);
  const StreamEpochStats stats = run_stream_epoch<i64>(
      cfg, ring,
      [](i64 i) { return i; },
      [&](const i64&) { return item_bytes; },
      fake_pack,
      [](const i64&, i64, int) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      });
  // In-flight window: both queues full + one item in each stage's hands.
  const i64 window =
      2 * cfg.depth + cfg.prepare_workers + cfg.compute_workers + 1;
  EXPECT_GE(stats.peak_prepared_bytes, item_bytes);
  EXPECT_LE(stats.peak_prepared_bytes, window * item_bytes);
  EXPECT_LT(stats.peak_prepared_bytes, n * item_bytes);  // never the epoch
}

TEST(StreamEpoch, ComputeExceptionShutsDownAllStages) {
  const i64 n = 64;
  transfer::StagingRing ring(2);
  const auto run = [&] {
    (void)run_stream_epoch<i64>(
        small_epoch(n, 1), ring,
        [](i64 i) { return i; },
        [](const i64&) { return i64{8}; },
        fake_pack,
        [](const i64&, i64 index, int) {
          if (index == 3) throw std::runtime_error("injected compute failure");
        });
  };
  // Depth 1 guarantees producers are parked on a full queue when the
  // exception fires; abort() must wake them or this deadlocks (and the
  // ctest timeout flags it).
  EXPECT_THROW(run(), std::runtime_error);
}

TEST(StreamEpoch, PrepareExceptionPropagates) {
  transfer::StagingRing ring(2);
  const auto run = [&] {
    (void)run_stream_epoch<i64>(
        small_epoch(16, 2), ring,
        [](i64 i) -> i64 {
          if (i == 5) throw std::runtime_error("injected prepare failure");
          return i;
        },
        [](const i64&) { return i64{8}; },
        fake_pack, [](const i64&, i64, int) {});
  };
  EXPECT_THROW(run(), std::runtime_error);
}

// -------------------------------------- streaming-vs-precomputed identity

Dataset pipeline_dataset() {
  DatasetSpec spec{"pipeline-test", 2000, 14000, 16, 4, 16, 77};
  return generate_dataset(spec);
}

EngineConfig pipeline_config(gnn::ModelKind kind, int bits) {
  EngineConfig cfg;
  cfg.model.kind = kind;
  cfg.model.num_layers = 3;
  cfg.model.in_dim = 16;
  cfg.model.hidden_dim = kind == gnn::ModelKind::kClusterGCN ? 16 : 32;
  cfg.model.out_dim = 4;
  cfg.model.feat_bits = bits;
  cfg.model.weight_bits = bits;
  cfg.num_partitions = 16;
  cfg.batch_size = 4;
  return cfg;
}

TEST(StreamingEngine, BitIdenticalAcrossDepthsBackendsAndLayouts) {
  const Dataset ds = pipeline_dataset();
  for (const auto backend :
       {tcsim::BackendKind::kScalar, tcsim::BackendKind::kSimd,
        tcsim::BackendKind::kBlocked}) {
    for (const bool sparse : {false, true}) {
      EngineConfig cfg = pipeline_config(gnn::ModelKind::kClusterGCN, 3);
      cfg.backend = backend;
      cfg.mode.adjacency = sparse ? RunMode::Adjacency::kTileSparse
                                  : RunMode::Adjacency::kDenseJump;
      cfg.inter_batch_threads = 2;

      QgtcEngine reference(ds, cfg);
      std::vector<MatrixI32> ref_logits;
      const EngineStats ref = reference.run_quantized(1, &ref_logits);
      ASSERT_EQ(static_cast<i64>(ref_logits.size()), reference.num_batches());

      for (const int depth : {1, 2, 8}) {
        EngineConfig scfg = cfg;
        scfg.mode = RunMode::streaming_pipeline(depth, 2, cfg.mode.adjacency);
        QgtcEngine streaming(ds, scfg);
        std::vector<MatrixI32> logits;
        const EngineStats s = streaming.run_quantized(1, &logits);

        EXPECT_EQ(s.nodes, ref.nodes) << "backend=" << tcsim::backend_name(backend)
                                      << " sparse=" << sparse << " depth=" << depth;
        EXPECT_EQ(s.bmma_ops, ref.bmma_ops);
        EXPECT_EQ(s.tiles_jumped, ref.tiles_jumped);
        ASSERT_EQ(logits.size(), ref_logits.size());
        for (std::size_t b = 0; b < logits.size(); ++b) {
          EXPECT_EQ(logits[b], ref_logits[b])
              << "logits diverged at batch " << b << " (backend="
              << tcsim::backend_name(backend) << " sparse=" << sparse
              << " depth=" << depth << ")";
        }
      }
    }
  }
}

TEST(StreamingEngine, GinModelBitIdentical) {
  const Dataset ds = pipeline_dataset();
  EngineConfig cfg = pipeline_config(gnn::ModelKind::kBatchedGIN, 4);
  QgtcEngine reference(ds, cfg);
  std::vector<MatrixI32> ref_logits;
  const EngineStats ref = reference.run_quantized(1, &ref_logits);

  EngineConfig scfg = cfg;
  scfg.mode = RunMode::streaming_pipeline(2, 1);
  QgtcEngine streaming(ds, scfg);
  std::vector<MatrixI32> logits;
  const EngineStats s = streaming.run_quantized(1, &logits);
  EXPECT_EQ(s.bmma_ops, ref.bmma_ops);
  EXPECT_EQ(s.tiles_jumped, ref.tiles_jumped);
  ASSERT_EQ(logits.size(), ref_logits.size());
  for (std::size_t b = 0; b < logits.size(); ++b) {
    EXPECT_EQ(logits[b], ref_logits[b]);
  }
}

TEST(StreamingEngine, ChargesTransferInlineAndBoundsResidency) {
  const Dataset ds = pipeline_dataset();
  EngineConfig cfg = pipeline_config(gnn::ModelKind::kClusterGCN, 4);
  // One partition per batch: 16 batches, comfortably more than the depth-1
  // in-flight window (~2*depth + stage hands), so the residency comparison
  // below is meaningful.
  cfg.batch_size = 1;
  QgtcEngine precomputed(ds, cfg);
  const EngineStats pre = precomputed.run_quantized(1);
  EXPECT_EQ(pre.packed_bytes, 0);  // precomputed: transfer is post-hoc only
  EXPECT_DOUBLE_EQ(pre.exposed_transfer_seconds, 0.0);
  EXPECT_GT(pre.peak_prepared_bytes, 0);  // whole epoch resident

  EngineConfig scfg = cfg;
  scfg.mode = RunMode::streaming_pipeline(1, 1);
  QgtcEngine streaming(ds, scfg);
  const EngineStats s = streaming.run_quantized(1);
  EXPECT_TRUE(s.streaming);
  EXPECT_EQ(s.pipeline_depth, 1);
  EXPECT_GT(s.packed_bytes, 0);  // transfer charged inline, on the timed path
  EXPECT_GT(s.packed_transfer_seconds, 0.0);
  EXPECT_GT(s.exposed_transfer_seconds, 0.0);
  EXPECT_LE(s.exposed_transfer_seconds, s.packed_transfer_seconds + 1e-12);
  // Bounded residency: the in-flight window, not the epoch.
  EXPECT_GT(s.peak_prepared_bytes, 0);
  EXPECT_LT(s.peak_prepared_bytes, pre.peak_prepared_bytes);
  // Inline accounting matches the post-hoc §4.6 accounting byte-for-byte.
  const EngineStats post = streaming.transfer_accounting();
  EXPECT_EQ(s.packed_bytes, post.packed_bytes);
  EXPECT_EQ(s.adj_bytes, post.adj_bytes);
  // And streaming never materialises the epoch.
  EXPECT_THROW(static_cast<void>(streaming.batch_data()),
               std::invalid_argument);
}

// --------------------------- transfer accounting packs the prepared planes

TEST(TransferParity, PackedTotalsMatchFreshlyQuantizedPlanes) {
  // The §4.6 accounting must ship bd.x_planes as-is: identical totals to
  // quantizing + decomposing the features from scratch in the layout the
  // first layer consumes — proving nothing is re-derived (or derived
  // differently) on the transfer path.
  const Dataset ds = pipeline_dataset();
  for (const auto kind :
       {gnn::ModelKind::kClusterGCN, gnn::ModelKind::kBatchedGIN}) {
    for (const bool sparse : {false, true}) {
      EngineConfig cfg = pipeline_config(kind, 4);
      cfg.mode.adjacency = sparse ? RunMode::Adjacency::kTileSparse
                                  : RunMode::Adjacency::kDenseJump;
      QgtcEngine engine(ds, cfg);
      transfer::PcieModel pcie;
      transfer::StagingBuffer s1, s2;
      const auto pack = [&](const QgtcEngine::BatchData& bd,
                            const StackedBitTensor& planes,
                            transfer::StagingBuffer& slot) {
        return sparse
                   ? transfer::pack_batch_tiles(bd.adj_tiles, planes, slot, pcie)
                   : transfer::pack_batch(bd.adj, planes, slot, pcie);
      };
      for (const auto& bdp : engine.batch_data()) {
        const auto& bd = *bdp;
        const auto engine_packed = pack(bd, bd.x_planes, s1);

        const QuantParams qp =
            quant_params_from_data(bd.features, cfg.model.feat_bits);
        const MatrixI32 q = quantize_matrix(bd.features, qp);
        const BitLayout layout = kind == gnn::ModelKind::kClusterGCN
                                     ? BitLayout::kColMajorK
                                     : BitLayout::kRowMajorK;
        const auto fresh = StackedBitTensor::decompose(
            q, cfg.model.feat_bits, layout, PadPolicy::kTile8);
        const auto fresh_packed = pack(bd, fresh, s2);

        EXPECT_EQ(engine_packed.total_bytes, fresh_packed.total_bytes);
        EXPECT_EQ(engine_packed.adjacency_bytes, fresh_packed.adjacency_bytes);
        EXPECT_EQ(engine_packed.embedding_bytes, fresh_packed.embedding_bytes);
        ASSERT_EQ(s1.bytes(), s2.bytes());
        EXPECT_EQ(std::memcmp(s1.data(), s2.data(),
                              static_cast<std::size_t>(s1.bytes())),
                  0);
      }
    }
  }
}

TEST(TransferParity, StreamingAndPrecomputedAccountingIdentical) {
  const Dataset ds = pipeline_dataset();
  EngineConfig cfg = pipeline_config(gnn::ModelKind::kClusterGCN, 4);
  QgtcEngine precomputed(ds, cfg);
  EngineConfig scfg = cfg;
  scfg.mode = RunMode::streaming_pipeline(2, 1);
  QgtcEngine streaming(ds, scfg);
  const EngineStats a = precomputed.transfer_accounting();
  const EngineStats b = streaming.transfer_accounting();
  EXPECT_EQ(a.packed_bytes, b.packed_bytes);
  EXPECT_EQ(a.adj_bytes, b.adj_bytes);
  EXPECT_EQ(a.dense_bytes, b.dense_bytes);
  EXPECT_DOUBLE_EQ(a.packed_transfer_seconds, b.packed_transfer_seconds);
}

}  // namespace
}  // namespace qgtc::core
