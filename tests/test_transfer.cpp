// Transfer substrate tests: PCIe model math, staging buffer, packed-vs-dense
// byte accounting (paper §4.6).
#include <gtest/gtest.h>

#include "transfer/packing.hpp"

namespace qgtc::transfer {
namespace {

TEST(Pcie, TransferSecondsMath) {
  PcieModel m;
  m.bandwidth_gbps = 32.0;
  m.latency_us = 10.0;
  // 32 GB at 32 GB/s = 1 s (+10 us latency).
  EXPECT_NEAR(m.transfer_seconds(32LL << 30), 1.0742, 0.08);
  // Zero bytes still pays latency.
  EXPECT_NEAR(m.transfer_seconds(0), 10e-6, 1e-9);
}

TEST(Staging, AppendsAndMeasures) {
  StagingBuffer s;
  const u32 a[4] = {1, 2, 3, 4};
  const u32 b[2] = {9, 10};
  EXPECT_EQ(s.stage(a, sizeof(a)), 0);
  EXPECT_EQ(s.stage(b, sizeof(b)), static_cast<i64>(sizeof(a)));
  EXPECT_EQ(s.bytes(), static_cast<i64>(sizeof(a) + sizeof(b)));
  // Contents preserved in order.
  u32 back[6];
  std::memcpy(back, s.data(), sizeof(back));
  EXPECT_EQ(back[0], 1u);
  EXPECT_EQ(back[4], 9u);
  s.clear();
  EXPECT_EQ(s.bytes(), 0);
}

TEST(Packing, PackedBytesMatchComponents) {
  BitMatrix adj(100, 100, BitLayout::kRowMajorK);
  MatrixI32 q(100, 32, 2);
  const auto planes =
      StackedBitTensor::decompose(q, 3, BitLayout::kColMajorK);
  StagingBuffer staging;
  PcieModel pcie;
  const PackedSubgraph p = pack_batch(adj, planes, staging, pcie);
  EXPECT_EQ(p.adjacency_bytes, adj.bytes());
  EXPECT_EQ(p.embedding_bytes, planes.bytes());
  EXPECT_EQ(p.total_bytes, adj.bytes() + planes.bytes());
  EXPECT_EQ(p.transfers, 1);
  EXPECT_EQ(staging.bytes(), p.total_bytes);
  EXPECT_GT(p.modeled_seconds, 0.0);
}

TEST(Packing, DenseBaselineAccounting) {
  PcieModel pcie;
  const PackedSubgraph d = dense_fp32_baseline(100, 32, pcie);
  EXPECT_EQ(d.adjacency_bytes, 100 * 100 * 4);
  EXPECT_EQ(d.embedding_bytes, 100 * 32 * 4);
  EXPECT_EQ(d.transfers, 2);
  // Two transfers pay two latencies.
  EXPECT_GT(d.modeled_seconds, pcie.transfer_seconds(d.total_bytes));
}

TEST(Packing, PackedBeatsDense) {
  // The §4.6 claim: packed low-bit payload is far smaller than dense fp32.
  const i64 n = 512, dim = 128;
  const int bits = 4;
  BitMatrix adj(n, n, BitLayout::kRowMajorK);
  MatrixI32 q(n, dim, 3);
  const auto planes = StackedBitTensor::decompose(q, bits, BitLayout::kColMajorK);
  StagingBuffer staging;
  PcieModel pcie;
  const PackedSubgraph p = pack_batch(adj, planes, staging, pcie);
  const PackedSubgraph d = dense_fp32_baseline(n, dim, pcie);
  // Adjacency: 32x smaller (1 bit vs fp32). Embedding: 8x (4 bit vs fp32).
  EXPECT_LT(p.total_bytes * 8, d.total_bytes);
  EXPECT_LT(p.modeled_seconds, d.modeled_seconds);
}

}  // namespace
}  // namespace qgtc::transfer
