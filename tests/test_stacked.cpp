// 3D-stacked bit compression tests: decompose/compose round-trips across
// bitwidths and layouts; byte accounting.
#include <gtest/gtest.h>

#include "bittensor/stacked.hpp"
#include "common/rng.hpp"

namespace qgtc {
namespace {

TEST(Stacked, PlaneCountMatchesBits) {
  MatrixI32 m(4, 4, 3);
  const auto t = StackedBitTensor::decompose(m, 5, BitLayout::kRowMajorK);
  EXPECT_EQ(t.bits(), 5);
  EXPECT_EQ(t.rows(), 4);
  EXPECT_EQ(t.cols(), 4);
}

TEST(Stacked, PlanesHoldCorrectBits) {
  MatrixI32 m(1, 2);
  m(0, 0) = 0b110;  // 6
  m(0, 1) = 0b011;  // 3
  const auto t = StackedBitTensor::decompose(m, 3, BitLayout::kRowMajorK);
  EXPECT_FALSE(t.plane(0).get(0, 0));
  EXPECT_TRUE(t.plane(1).get(0, 0));
  EXPECT_TRUE(t.plane(2).get(0, 0));
  EXPECT_TRUE(t.plane(0).get(0, 1));
  EXPECT_TRUE(t.plane(1).get(0, 1));
  EXPECT_FALSE(t.plane(2).get(0, 1));
}

TEST(Stacked, BytesSumPlanes) {
  MatrixI32 m(10, 200, 1);
  const auto t = StackedBitTensor::decompose(m, 3, BitLayout::kRowMajorK,
                                             PadPolicy::kTile8);
  EXPECT_EQ(t.bytes(), 3 * t.plane(0).bytes());
  // 16 padded rows x 8 words x 4 bytes per plane.
  EXPECT_EQ(t.plane(0).bytes(), 16 * 8 * 4);
}

TEST(Stacked, InvalidBitsThrow) {
  MatrixI32 m(2, 2, 0);
  EXPECT_THROW(StackedBitTensor::decompose(m, 0, BitLayout::kRowMajorK),
               std::invalid_argument);
  EXPECT_THROW(StackedBitTensor::decompose(m, 32, BitLayout::kRowMajorK),
               std::invalid_argument);
}

class StackedRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, BitLayout>> {};

TEST_P(StackedRoundTrip, DecomposeCompose) {
  const auto [bits, layout] = GetParam();
  Rng rng(static_cast<u64>(bits) * 31 + 7);
  MatrixI32 m(13, 37);
  const i32 qmax = static_cast<i32>((1u << bits) - 1);
  for (i64 i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<i32>(rng.next_below(static_cast<u64>(qmax) + 1));
  }
  const auto t = StackedBitTensor::decompose(m, bits, layout);
  EXPECT_EQ(t.compose(), m);
}

INSTANTIATE_TEST_SUITE_P(
    BitsAndLayouts, StackedRoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 7, 8, 12, 16),
                       ::testing::Values(BitLayout::kRowMajorK,
                                         BitLayout::kColMajorK)));

}  // namespace
}  // namespace qgtc
