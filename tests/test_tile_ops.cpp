// Cross-checks the optimised tile accumulator (detail::TileAcc — the path
// the kernels actually run) against the semantic reference tcsim::bmma_sync,
// including shift weighting, uint32 wrap at extreme shifts, and XOR mode.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kernels/tile_ops.hpp"
#include "tcsim/wmma.hpp"

namespace qgtc {
namespace {

struct TilePair {
  std::vector<u32> a;  // 8 rows x stride words
  std::vector<u32> b;  // 8 cols x stride words
  i64 stride;
};

TilePair random_tiles(u64 seed, i64 stride = kTileKWords) {
  Rng rng(seed);
  TilePair t;
  t.stride = stride;
  t.a.resize(static_cast<std::size_t>(kTileM * stride));
  t.b.resize(static_cast<std::size_t>(kTileN * stride));
  for (auto& w : t.a) w = static_cast<u32>(rng.next_u64());
  for (auto& w : t.b) w = static_cast<u32>(rng.next_u64());
  return t;
}

std::array<i32, 64> reference_tile(const TilePair& t, tcsim::BmmaOp op) {
  tcsim::FragmentA fa;
  tcsim::FragmentB fb;
  tcsim::FragmentC fc, out;
  tcsim::load_matrix_sync(fa, t.a.data(), t.stride);
  tcsim::load_matrix_sync(fb, t.b.data(), t.stride);
  tcsim::bmma_sync(out, fa, fb, fc, op);
  std::array<i32, 64> r{};
  std::copy(out.acc.begin(), out.acc.end(), r.begin());
  return r;
}

TEST(TileOps, MatchesWmmaAnd) {
  for (u64 seed = 0; seed < 8; ++seed) {
    const TilePair t = random_tiles(seed);
    detail::TileAcc acc;
    acc.reset();
    acc.mma(t.a.data(), t.stride, t.b.data(), t.stride, /*shift=*/0);
    std::array<i32, 64> got{};
    acc.flush(got.data());
    EXPECT_EQ(got, reference_tile(t, tcsim::BmmaOp::kAnd)) << "seed " << seed;
  }
}

TEST(TileOps, MatchesWmmaXor) {
  for (u64 seed = 100; seed < 106; ++seed) {
    const TilePair t = random_tiles(seed);
    detail::TileAcc acc;
    acc.reset();
    acc.mma(t.a.data(), t.stride, t.b.data(), t.stride, /*shift=*/0,
            /*use_xor=*/true);
    std::array<i32, 64> got{};
    acc.flush(got.data());
    EXPECT_EQ(got, reference_tile(t, tcsim::BmmaOp::kXor)) << "seed " << seed;
  }
}

TEST(TileOps, ShiftWeighting) {
  const TilePair t = random_tiles(7);
  const auto base = reference_tile(t, tcsim::BmmaOp::kAnd);
  detail::TileAcc acc;
  acc.reset();
  acc.mma(t.a.data(), t.stride, t.b.data(), t.stride, /*shift=*/5);
  std::array<i32, 64> got{};
  acc.flush(got.data());
  for (int e = 0; e < 64; ++e) {
    EXPECT_EQ(got[static_cast<std::size_t>(e)], base[static_cast<std::size_t>(e)] << 5);
  }
}

TEST(TileOps, AccumulatesAcrossCalls) {
  const TilePair t = random_tiles(8);
  const auto base = reference_tile(t, tcsim::BmmaOp::kAnd);
  detail::TileAcc acc;
  acc.reset();
  acc.mma(t.a.data(), t.stride, t.b.data(), t.stride, 0);
  acc.mma(t.a.data(), t.stride, t.b.data(), t.stride, 1);
  std::array<i32, 64> got{};
  acc.flush(got.data());
  for (int e = 0; e < 64; ++e) {
    EXPECT_EQ(got[static_cast<std::size_t>(e)], base[static_cast<std::size_t>(e)] * 3);
  }
}

TEST(TileOps, FlushAddsIntoExisting) {
  const TilePair t = random_tiles(9);
  const auto base = reference_tile(t, tcsim::BmmaOp::kAnd);
  detail::TileAcc acc;
  acc.reset();
  acc.mma(t.a.data(), t.stride, t.b.data(), t.stride, 0);
  std::array<i32, 64> got{};
  got.fill(10);
  acc.flush(got.data());
  for (int e = 0; e < 64; ++e) {
    EXPECT_EQ(got[static_cast<std::size_t>(e)], base[static_cast<std::size_t>(e)] + 10);
  }
}

TEST(TileOps, ExtremeShiftContributesZeroMod32) {
  // A shift >= 32 must contribute exactly 0 to the uint32-wrapped result —
  // the defined-wrap contract the 31-bit configurations rely on.
  const TilePair t = random_tiles(10);
  detail::TileAcc acc;
  acc.reset();
  acc.mma(t.a.data(), t.stride, t.b.data(), t.stride, /*shift=*/40);
  acc.mma(t.a.data(), t.stride, t.b.data(), t.stride, /*shift=*/60);
  std::array<i32, 64> got{};
  acc.flush(got.data());
  for (const i32 v : got) EXPECT_EQ(v, 0);
}

TEST(TileOps, StridedTiles) {
  // Tiles embedded in a wider matrix (stride > 4 words) must read only their
  // own 4 words per line.
  const TilePair wide = random_tiles(11, /*stride=*/9);
  detail::TileAcc acc;
  acc.reset();
  acc.mma(wide.a.data(), wide.stride, wide.b.data(), wide.stride, 0);
  std::array<i32, 64> got{};
  acc.flush(got.data());

  // Build compacted copies and compare.
  TilePair tight = wide;
  tight.stride = kTileKWords;
  tight.a.assign(static_cast<std::size_t>(kTileM * kTileKWords), 0);
  tight.b.assign(static_cast<std::size_t>(kTileN * kTileKWords), 0);
  for (int r = 0; r < kTileM; ++r) {
    for (int w = 0; w < kTileKWords; ++w) {
      tight.a[static_cast<std::size_t>(r * kTileKWords + w)] =
          wide.a[static_cast<std::size_t>(r * wide.stride + w)];
      tight.b[static_cast<std::size_t>(r * kTileKWords + w)] =
          wide.b[static_cast<std::size_t>(r * wide.stride + w)];
    }
  }
  EXPECT_EQ(got, reference_tile(tight, tcsim::BmmaOp::kAnd));
}

}  // namespace
}  // namespace qgtc
