// Cross-checks every substrate backend's tile ops (load_a / mma / flush —
// the path the kernels actually run) against the semantic reference
// tcsim::bmma_sync, including shift weighting, uint32 wrap at extreme
// shifts, XOR mode, strided operands and strided flush.
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "common/rng.hpp"
#include "tcsim/backend.hpp"
#include "tcsim/wmma.hpp"

namespace qgtc {
namespace {

struct TilePair {
  std::vector<u32> a;  // 8 rows x stride words
  std::vector<u32> b;  // 8 cols x stride words
  i64 stride;
};

TilePair random_tiles(u64 seed, i64 stride = kTileKWords) {
  Rng rng(seed);
  TilePair t;
  t.stride = stride;
  t.a.resize(static_cast<std::size_t>(kTileM * stride));
  t.b.resize(static_cast<std::size_t>(kTileN * stride));
  for (auto& w : t.a) w = static_cast<u32>(rng.next_u64());
  for (auto& w : t.b) w = static_cast<u32>(rng.next_u64());
  return t;
}

std::array<i32, 64> reference_tile(const TilePair& t, tcsim::BmmaOp op) {
  tcsim::FragmentA fa;
  tcsim::FragmentB fb;
  tcsim::FragmentC fc, out;
  tcsim::load_matrix_sync(fa, t.a.data(), t.stride);
  tcsim::load_matrix_sync(fb, t.b.data(), t.stride);
  tcsim::bmma_sync(out, fa, fb, fc, op);
  std::array<i32, 64> r{};
  std::copy(out.acc.begin(), out.acc.end(), r.begin());
  return r;
}

/// One backend tile op: reset lanes, decode A, mma, flush into `out`.
std::array<i32, 64> backend_tile(const tcsim::SubstrateBackend& be,
                                 const TilePair& t, int shift, bool use_xor,
                                 i32 out_fill = 0) {
  alignas(64) u64 acc[tcsim::kTileAccLanes];
  std::memset(acc, 0, sizeof(acc));
  tcsim::AFragment frag;
  be.load_a(frag, t.a.data(), t.stride);
  be.mma(acc, frag, t.b.data(), t.stride, shift, use_xor);
  std::array<i32, 64> out;
  out.fill(out_fill);
  be.flush(out.data(), kTileN, acc);
  return out;
}

class TileOpsAllBackends
    : public ::testing::TestWithParam<tcsim::BackendKind> {};

TEST_P(TileOpsAllBackends, MatchesWmmaAnd) {
  const auto& be = tcsim::backend(GetParam());
  for (u64 seed = 0; seed < 8; ++seed) {
    const TilePair t = random_tiles(seed);
    EXPECT_EQ(backend_tile(be, t, 0, false),
              reference_tile(t, tcsim::BmmaOp::kAnd))
        << be.name() << " seed " << seed;
  }
}

TEST_P(TileOpsAllBackends, MatchesWmmaXor) {
  const auto& be = tcsim::backend(GetParam());
  for (u64 seed = 100; seed < 106; ++seed) {
    const TilePair t = random_tiles(seed);
    EXPECT_EQ(backend_tile(be, t, 0, true),
              reference_tile(t, tcsim::BmmaOp::kXor))
        << be.name() << " seed " << seed;
  }
}

TEST_P(TileOpsAllBackends, ShiftWeighting) {
  const auto& be = tcsim::backend(GetParam());
  const TilePair t = random_tiles(7);
  const auto base = reference_tile(t, tcsim::BmmaOp::kAnd);
  const auto got = backend_tile(be, t, /*shift=*/5, false);
  for (int e = 0; e < 64; ++e) {
    EXPECT_EQ(got[static_cast<std::size_t>(e)],
              base[static_cast<std::size_t>(e)] << 5);
  }
}

TEST_P(TileOpsAllBackends, AccumulatesAcrossMmaCalls) {
  const auto& be = tcsim::backend(GetParam());
  const TilePair t = random_tiles(8);
  const auto base = reference_tile(t, tcsim::BmmaOp::kAnd);
  alignas(64) u64 acc[tcsim::kTileAccLanes];
  std::memset(acc, 0, sizeof(acc));
  tcsim::AFragment frag;
  be.load_a(frag, t.a.data(), t.stride);
  be.mma(acc, frag, t.b.data(), t.stride, /*shift=*/0, false);
  be.mma(acc, frag, t.b.data(), t.stride, /*shift=*/1, false);
  std::array<i32, 64> got{};
  be.flush(got.data(), kTileN, acc);
  for (int e = 0; e < 64; ++e) {
    EXPECT_EQ(got[static_cast<std::size_t>(e)],
              base[static_cast<std::size_t>(e)] * 3);
  }
}

TEST_P(TileOpsAllBackends, FlushAddsIntoExisting) {
  const auto& be = tcsim::backend(GetParam());
  const TilePair t = random_tiles(9);
  const auto base = reference_tile(t, tcsim::BmmaOp::kAnd);
  const auto got = backend_tile(be, t, 0, false, /*out_fill=*/10);
  for (int e = 0; e < 64; ++e) {
    EXPECT_EQ(got[static_cast<std::size_t>(e)],
              base[static_cast<std::size_t>(e)] + 10);
  }
}

TEST_P(TileOpsAllBackends, ExtremeShiftContributesZeroMod32) {
  // A shift >= 32 must contribute exactly 0 to the uint32-wrapped result —
  // the defined-wrap contract the 31-bit configurations rely on.
  const auto& be = tcsim::backend(GetParam());
  const TilePair t = random_tiles(10);
  alignas(64) u64 acc[tcsim::kTileAccLanes];
  std::memset(acc, 0, sizeof(acc));
  tcsim::AFragment frag;
  be.load_a(frag, t.a.data(), t.stride);
  be.mma(acc, frag, t.b.data(), t.stride, /*shift=*/40, false);
  be.mma(acc, frag, t.b.data(), t.stride, /*shift=*/60, false);
  std::array<i32, 64> got{};
  be.flush(got.data(), kTileN, acc);
  for (const i32 v : got) EXPECT_EQ(v, 0);
}

TEST_P(TileOpsAllBackends, StridedTiles) {
  // Tiles embedded in a wider matrix (stride > 4 words) must read only their
  // own 4 words per line.
  const auto& be = tcsim::backend(GetParam());
  const TilePair wide = random_tiles(11, /*stride=*/9);
  const auto got = backend_tile(be, wide, 0, false);

  TilePair tight = wide;
  tight.stride = kTileKWords;
  tight.a.assign(static_cast<std::size_t>(kTileM * kTileKWords), 0);
  tight.b.assign(static_cast<std::size_t>(kTileN * kTileKWords), 0);
  for (int r = 0; r < kTileM; ++r) {
    for (int w = 0; w < kTileKWords; ++w) {
      tight.a[static_cast<std::size_t>(r * kTileKWords + w)] =
          wide.a[static_cast<std::size_t>(r * wide.stride + w)];
      tight.b[static_cast<std::size_t>(r * kTileKWords + w)] =
          wide.b[static_cast<std::size_t>(r * wide.stride + w)];
    }
  }
  EXPECT_EQ(got, backend_tile(be, tight, 0, false));
}

TEST_P(TileOpsAllBackends, StridedFlush) {
  // flush with an output stride wider than the tile must only touch the
  // 8x8 window (the kernels flush straight into padded C rows).
  const auto& be = tcsim::backend(GetParam());
  const TilePair t = random_tiles(12);
  const auto base = reference_tile(t, tcsim::BmmaOp::kAnd);

  alignas(64) u64 acc[tcsim::kTileAccLanes];
  std::memset(acc, 0, sizeof(acc));
  tcsim::AFragment frag;
  be.load_a(frag, t.a.data(), t.stride);
  be.mma(acc, frag, t.b.data(), t.stride, 0, false);

  const i64 out_stride = 13;
  std::vector<i32> out(static_cast<std::size_t>(kTileM * out_stride), -7);
  be.flush(out.data(), out_stride, acc);
  for (int i = 0; i < kTileM; ++i) {
    for (i64 j = 0; j < out_stride; ++j) {
      const i32 v = out[static_cast<std::size_t>(i * out_stride + j)];
      if (j < kTileN) {
        EXPECT_EQ(v, base[static_cast<std::size_t>(i * kTileN + j)] - 7);
      } else {
        EXPECT_EQ(v, -7) << "flush wrote outside the 8x8 window";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, TileOpsAllBackends,
                         ::testing::Values(tcsim::BackendKind::kScalar,
                                           tcsim::BackendKind::kSimd,
                                           tcsim::BackendKind::kBlocked),
                         [](const auto& info) {
                           switch (info.param) {
                             case tcsim::BackendKind::kScalar: return "scalar";
                             case tcsim::BackendKind::kSimd: return "simd";
                             default: return "blocked";
                           }
                         });

}  // namespace
}  // namespace qgtc
