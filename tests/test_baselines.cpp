// Baseline kernel tests: fp32 SpMM/GEMM, int8 and int4 GEMM vs references.
#include <gtest/gtest.h>

#include "baselines/dgl_fp32.hpp"
#include "baselines/int4_gemm.hpp"
#include "baselines/int8_gemm.hpp"
#include "common/rng.hpp"

namespace qgtc::baselines {
namespace {

TEST(DglFp32, SpmmMatchesDense) {
  // 4-node path graph 0-1-2-3.
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  MatrixF x(4, 2);
  for (i64 i = 0; i < x.size(); ++i) x.data()[i] = static_cast<float>(i + 1);
  const MatrixF y = spmm_csr(g, x, /*add_self=*/true);
  // Node 1 aggregates itself + {0, 2}.
  EXPECT_FLOAT_EQ(y(1, 0), x(1, 0) + x(0, 0) + x(2, 0));
  EXPECT_FLOAT_EQ(y(0, 1), x(0, 1) + x(1, 1));
  const MatrixF y2 = spmm_csr(g, x, /*add_self=*/false);
  EXPECT_FLOAT_EQ(y2(0, 0), x(1, 0));
}

TEST(DglFp32, SpmmShapeMismatchThrows) {
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1}});
  MatrixF x(4, 2, 1.0f);
  EXPECT_THROW(spmm_csr(g, x), std::invalid_argument);
}

TEST(DglFp32, GemmMatchesReference) {
  Rng rng(6);
  MatrixF a(13, 27), b(27, 9);
  for (i64 i = 0; i < a.size(); ++i) a.data()[i] = rng.next_float(-1, 1);
  for (i64 i = 0; i < b.size(); ++i) b.data()[i] = rng.next_float(-1, 1);
  const MatrixF c = gemm_f32(a, b);
  const MatrixF ref = matmul_reference(a, b);
  EXPECT_LT(max_abs_diff(c, ref), 1e-4f);
}

TEST(DglFp32, ReluInplace) {
  MatrixF m(2, 2);
  m(0, 0) = -1.0f;
  m(0, 1) = 2.0f;
  m(1, 0) = 0.0f;
  m(1, 1) = -0.5f;
  relu_inplace(m);
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 0.0f);
}

TEST(Int8, GemmMatchesReference) {
  Rng rng(7);
  MatrixI32 a(11, 33), b(33, 17);
  for (i64 i = 0; i < a.size(); ++i) a.data()[i] = static_cast<i32>(rng.next_below(127));
  for (i64 i = 0; i < b.size(); ++i) b.data()[i] = static_cast<i32>(rng.next_below(127));
  const MatrixI32 c = gemm_int8(to_int8(a), to_int8(b));
  EXPECT_EQ(c, matmul_reference(a, b));
}

TEST(Int8, SaturatingConversion) {
  MatrixI32 m(1, 3);
  m(0, 0) = 300;
  m(0, 1) = -300;
  m(0, 2) = 5;
  const MatrixI8 q = to_int8(m);
  EXPECT_EQ(q(0, 0), 127);
  EXPECT_EQ(q(0, 1), -128);
  EXPECT_EQ(q(0, 2), 5);
}

TEST(Int4, PackRoundTrip) {
  Rng rng(8);
  MatrixI32 m(9, 13);
  for (i64 i = 0; i < m.size(); ++i) m.data()[i] = static_cast<i32>(rng.next_below(16));
  const Int4Matrix p = Int4Matrix::pack(m);
  for (i64 r = 0; r < m.rows(); ++r) {
    for (i64 c = 0; c < m.cols(); ++c) EXPECT_EQ(p.get(r, c), m(r, c));
  }
}

TEST(Int4, PackRejectsOutOfRange) {
  MatrixI32 m(1, 1, 16);
  EXPECT_THROW(Int4Matrix::pack(m), std::invalid_argument);
}

TEST(Int4, GemmMatchesReference) {
  Rng rng(9);
  MatrixI32 a(10, 40), b(40, 12);
  for (i64 i = 0; i < a.size(); ++i) a.data()[i] = static_cast<i32>(rng.next_below(16));
  for (i64 i = 0; i < b.size(); ++i) b.data()[i] = static_cast<i32>(rng.next_below(16));
  const MatrixI32 c = gemm_int4(Int4Matrix::pack(a), Int4Matrix::pack(b));
  EXPECT_EQ(c, matmul_reference(a, b));
}

TEST(Int4, OddColumnCount) {
  // Odd widths exercise the half-filled trailing byte.
  MatrixI32 a(3, 5), b(5, 3);
  for (i64 i = 0; i < a.size(); ++i) a.data()[i] = static_cast<i32>(i % 16);
  for (i64 i = 0; i < b.size(); ++i) b.data()[i] = static_cast<i32>((i * 3) % 16);
  const MatrixI32 c = gemm_int4(Int4Matrix::pack(a), Int4Matrix::pack(b));
  EXPECT_EQ(c, matmul_reference(a, b));
}

}  // namespace
}  // namespace qgtc::baselines
