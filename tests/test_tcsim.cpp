// Tests for the tensor-core substrate: bmma semantics vs a naive bit loop,
// fragment load/store round-trips, the zero-tile ballot test, and counters.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tcsim/wmma.hpp"

namespace qgtc::tcsim {
namespace {

/// Fills a 8 x 4-word packed row block with random bits.
void random_block(Rng& rng, u32* ptr, i64 stride, double density = 0.5) {
  for (int r = 0; r < kTileM; ++r) {
    for (int w = 0; w < kTileKWords; ++w) {
      u32 word = 0;
      for (int b = 0; b < 32; ++b) {
        word |= static_cast<u32>(rng.next_bool(static_cast<float>(density))) << b;
      }
      ptr[r * stride + w] = word;
    }
  }
}

int naive_dot(const u32* a, const u32* b, BmmaOp op) {
  int acc = 0;
  for (int w = 0; w < kTileKWords; ++w) {
    for (int bit = 0; bit < 32; ++bit) {
      const int av = (a[w] >> bit) & 1;
      const int bv = (b[w] >> bit) & 1;
      acc += op == BmmaOp::kAnd ? (av & bv) : (av ^ bv);
    }
  }
  return acc;
}

TEST(Tcsim, Dot128MatchesNaive) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    u32 a[4], b[4];
    for (auto& w : a) w = static_cast<u32>(rng.next_u64());
    for (auto& w : b) w = static_cast<u32>(rng.next_u64());
    EXPECT_EQ(dot128(a, b, BmmaOp::kAnd), naive_dot(a, b, BmmaOp::kAnd));
    EXPECT_EQ(dot128(a, b, BmmaOp::kXor), naive_dot(a, b, BmmaOp::kXor));
  }
}

TEST(Tcsim, BmmaMatchesNaiveTile) {
  Rng rng(22);
  std::vector<u32> abuf(kTileM * kTileKWords), bbuf(kTileN * kTileKWords);
  random_block(rng, abuf.data(), kTileKWords);
  random_block(rng, bbuf.data(), kTileKWords);

  FragmentA a;
  FragmentB b;
  load_matrix_sync(a, abuf.data(), kTileKWords);
  load_matrix_sync(b, bbuf.data(), kTileKWords);
  FragmentC c, d;
  c.fill(5);  // non-zero C exercises the "+ C" part of D = A*B + C
  bmma_sync(d, a, b, c);

  for (int i = 0; i < kTileM; ++i) {
    for (int j = 0; j < kTileN; ++j) {
      const int expect =
          5 + naive_dot(&abuf[static_cast<std::size_t>(i * kTileKWords)],
                        &bbuf[static_cast<std::size_t>(j * kTileKWords)], BmmaOp::kAnd);
      EXPECT_EQ(d.acc[static_cast<std::size_t>(i * kTileN + j)], expect);
    }
  }
}

TEST(Tcsim, StoreMatrixRoundTrip) {
  FragmentC c;
  for (int i = 0; i < 64; ++i) c.acc[static_cast<std::size_t>(i)] = i * 3 - 10;
  std::vector<i32> out(8 * 16, 0);
  store_matrix_sync(out.data(), c, 16);
  for (int i = 0; i < kTileM; ++i) {
    for (int j = 0; j < kTileN; ++j) {
      EXPECT_EQ(out[static_cast<std::size_t>(i * 16 + j)], i * 8 * 3 + j * 3 - 10);
    }
  }
}

TEST(Tcsim, TileIsZero) {
  std::vector<u32> buf(kTileM * kTileKWords, 0);
  EXPECT_TRUE(tile_is_zero(buf.data(), kTileKWords));
  buf[5] = 1;  // one bit anywhere flips the ballot
  EXPECT_FALSE(tile_is_zero(buf.data(), kTileKWords));
  buf[5] = 0;
  buf[kTileM * kTileKWords - 1] = 0x80000000u;
  EXPECT_FALSE(tile_is_zero(buf.data(), kTileKWords));
}

TEST(Tcsim, TileIsZeroRespectsStride) {
  // Tile sits inside a wider matrix: stride > kTileKWords; bits outside the
  // tile's 4 words must not affect the verdict.
  const i64 stride = 10;
  std::vector<u32> buf(kTileM * stride, 0xffffffffu);
  for (int r = 0; r < kTileM; ++r) {
    for (int w = 0; w < kTileKWords; ++w) buf[static_cast<std::size_t>(r * stride + w)] = 0;
  }
  EXPECT_TRUE(tile_is_zero(buf.data(), stride));
}

TEST(Tcsim, CountersTrackOps) {
  reset_counters();
  const Counters before = snapshot_counters();
  FragmentA a;
  FragmentB b;
  FragmentC c;
  std::vector<u32> buf(kTileM * kTileKWords, 0);
  load_matrix_sync(a, buf.data(), kTileKWords);
  load_matrix_sync(b, buf.data(), kTileKWords);
  bmma_sync(c, a, b, c);
  bmma_sync(c, a, b, c);
  const Counters after = snapshot_counters();
  EXPECT_EQ(after.frag_loads_a - before.frag_loads_a, 1u);
  EXPECT_EQ(after.frag_loads_b - before.frag_loads_b, 1u);
  EXPECT_EQ(after.bmma_ops - before.bmma_ops, 2u);
}

TEST(Tcsim, ResetCountersZeroes) {
  FragmentA a;
  std::vector<u32> buf(kTileM * kTileKWords, 0);
  load_matrix_sync(a, buf.data(), kTileKWords);
  reset_counters();
  const Counters c = snapshot_counters();
  EXPECT_EQ(c.bmma_ops, 0u);
  EXPECT_EQ(c.frag_loads_a, 0u);
}

TEST(Tcsim, XorSemantics) {
  // XOR mode: all-ones vs all-zeros disagree everywhere -> popcount 128.
  std::vector<u32> ones(kTileM * kTileKWords, 0xffffffffu);
  std::vector<u32> zeros(kTileN * kTileKWords, 0u);
  FragmentA a;
  FragmentB b;
  load_matrix_sync(a, ones.data(), kTileKWords);
  load_matrix_sync(b, zeros.data(), kTileKWords);
  FragmentC c, d;
  bmma_sync(d, a, b, c, BmmaOp::kXor);
  for (const i32 v : d.acc) EXPECT_EQ(v, 128);
  bmma_sync(d, a, b, c, BmmaOp::kAnd);
  for (const i32 v : d.acc) EXPECT_EQ(v, 0);
}

}  // namespace
}  // namespace qgtc::tcsim
