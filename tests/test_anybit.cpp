// Any-bitwidth composition tests — the heart of the paper's §3 claim: an
// s-bit x t-bit product composed from 1-bit BMMs equals the exact integer
// product of the quantized codes, for every (s, t) pair; fused/unfused and
// cross-bit/cross-tile variants are bit-identical.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kernels/anybit_mm.hpp"

namespace qgtc {
namespace {

MatrixI32 random_codes(Rng& rng, i64 rows, i64 cols, int bits) {
  MatrixI32 m(rows, cols);
  const u64 range = (u64{1} << bits);
  for (i64 i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<i32>(rng.next_below(range));
  }
  return m;
}

TEST(AnyBit, CalibrateRshift) {
  EXPECT_EQ(calibrate_rshift(0, 4), 0);
  EXPECT_EQ(calibrate_rshift(15, 4), 0);   // fits exactly
  EXPECT_EQ(calibrate_rshift(16, 4), 1);   // needs 5 bits
  EXPECT_EQ(calibrate_rshift(255, 4), 4);  // 8 bits -> shift 4
  EXPECT_EQ(calibrate_rshift(255, 8), 0);
}

TEST(AnyBit, AccumulatorBoundCheck) {
  EXPECT_NO_THROW(check_accumulator_bounds(128, 8, 8));
  EXPECT_THROW(check_accumulator_bounds(1 << 20, 8, 8), std::invalid_argument);
}

TEST(AnyBit, PaperEq5Example) {
  // The 3-bit x 2-bit scalar example of Eq. 3-5, lifted to 1x1 matrices.
  for (i32 av = 0; av < 8; ++av) {
    for (i32 bv = 0; bv < 4; ++bv) {
      MatrixI32 a(1, 1, av), b(1, 1, bv);
      const auto pa = StackedBitTensor::decompose(a, 3, BitLayout::kRowMajorK);
      const auto pb = StackedBitTensor::decompose(b, 2, BitLayout::kColMajorK);
      const MatrixI32 c = bitmm_to_int(pa, pb);
      EXPECT_EQ(c(0, 0), av * bv);
    }
  }
}

TEST(AnyBit, FusedIntMatchesUnfused) {
  Rng rng(42);
  const MatrixI32 a = random_codes(rng, 20, 150, 3);
  const MatrixI32 b = random_codes(rng, 150, 12, 5);
  const auto pa = StackedBitTensor::decompose(a, 3, BitLayout::kRowMajorK);
  const auto pb = StackedBitTensor::decompose(b, 5, BitLayout::kColMajorK);
  EXPECT_EQ(bitmm_fused_int(pa, pb), bitmm_to_int(pa, pb));
}

TEST(AnyBit, FusedReluEpilogue) {
  // With BN folding producing negatives, ReLU must clamp them.
  Rng rng(43);
  const MatrixI32 a = random_codes(rng, 10, 130, 2);
  const MatrixI32 b = random_codes(rng, 130, 6, 2);
  const auto pa = StackedBitTensor::decompose(a, 2, BitLayout::kRowMajorK);
  const auto pb = StackedBitTensor::decompose(b, 2, BitLayout::kColMajorK);
  FusedEpilogue epi;
  epi.use_bn = true;
  epi.act = tcsim::Activation::kRelu;
  epi.bn_scale.assign(6, 1.0f);
  epi.bn_bias.assign(6, -50.0f);  // push small accumulators negative
  const MatrixI32 c = bitmm_fused_int(pa, pb, epi);
  const MatrixI32 raw = bitmm_to_int(pa, pb);
  for (i64 i = 0; i < c.rows(); ++i) {
    for (i64 j = 0; j < c.cols(); ++j) {
      const i32 expect = std::max(0, raw(i, j) - 50);
      EXPECT_EQ(c(i, j), expect);
    }
  }
}

TEST(AnyBit, FusedBitMatchesManualRequant) {
  Rng rng(44);
  const int s = 3, t = 2, out_bits = 4;
  const MatrixI32 a = random_codes(rng, 17, 140, s);
  const MatrixI32 b = random_codes(rng, 140, 9, t);
  const auto pa = StackedBitTensor::decompose(a, s, BitLayout::kRowMajorK);
  const auto pb = StackedBitTensor::decompose(b, t, BitLayout::kColMajorK);

  const MatrixI32 raw = bitmm_to_int(pa, pb);
  i32 mx = 0;
  for (i64 i = 0; i < raw.size(); ++i) mx = std::max(mx, raw.data()[i]);
  FusedEpilogue epi;
  epi.rshift = calibrate_rshift(mx, out_bits);

  const StackedBitTensor out =
      bitmm_fused_bit(pa, pb, out_bits, epi, {}, PadPolicy::kTile8);
  const MatrixI32 got = out.compose();
  const i32 qmax = (1 << out_bits) - 1;
  for (i64 i = 0; i < raw.rows(); ++i) {
    for (i64 j = 0; j < raw.cols(); ++j) {
      EXPECT_EQ(got(i, j), std::min(raw(i, j) >> epi.rshift, qmax));
    }
  }
}

TEST(AnyBit, FusedBitColMajorOutput) {
  // GIN needs the update result laid out as the next B operand; values must
  // be identical regardless of the output layout.
  Rng rng(45);
  const MatrixI32 a = random_codes(rng, 11, 135, 2);
  const MatrixI32 b = random_codes(rng, 135, 7, 2);
  const auto pa = StackedBitTensor::decompose(a, 2, BitLayout::kRowMajorK);
  const auto pb = StackedBitTensor::decompose(b, 2, BitLayout::kColMajorK);
  FusedEpilogue epi;
  epi.rshift = 6;
  const auto row_out = bitmm_fused_bit(pa, pb, 4, epi, {}, PadPolicy::kTile8,
                                       BitLayout::kRowMajorK);
  const auto col_out = bitmm_fused_bit(pa, pb, 4, epi, {}, PadPolicy::kTile8,
                                       BitLayout::kColMajorK);
  EXPECT_EQ(row_out.compose(), col_out.compose());
  EXPECT_EQ(col_out.plane(0).layout(), BitLayout::kColMajorK);
}

TEST(AnyBit, AggregationModesIdentical) {
  Rng rng(46);
  // Binary adjacency with zero blocks, multi-bit features.
  MatrixI32 adj(40, 40, 0);
  for (i64 i = 0; i < 40; ++i) {
    for (i64 j = 0; j < 40; ++j) {
      if ((i / 8 + j / 8) % 2 == 0) adj(i, j) = rng.next_bool(0.3f) ? 1 : 0;
    }
  }
  const MatrixI32 x = random_codes(rng, 40, 24, 4);
  const BitMatrix pa = pack_nonzero(adj, BitLayout::kRowMajorK);
  const auto px = StackedBitTensor::decompose(x, 4, BitLayout::kColMajorK);

  BmmOptions jump;
  jump.zero_tile_jump = true;
  const MatrixI32 cross_bit = aggregate_1bit(pa, px, ReuseMode::kCrossBit, jump);
  const MatrixI32 cross_tile = aggregate_1bit(pa, px, ReuseMode::kCrossTile, jump);
  EXPECT_EQ(cross_bit, cross_tile);
  EXPECT_EQ(cross_bit, matmul_reference(adj, x));
}

TEST(AnyBit, CrossTileReusesFragments) {
  // The §4.4 claim: cross-tile reduction loads each non-zero A tile O(1)
  // times vs O(bits) for cross-bit.
  Rng rng(47);
  MatrixI32 adj(64, 256, 1);  // all-ones => all tiles non-zero
  const MatrixI32 x = random_codes(rng, 256, 64, 8);
  const BitMatrix pa = pack_nonzero(adj, BitLayout::kRowMajorK);
  const auto px = StackedBitTensor::decompose(x, 8, BitLayout::kColMajorK);

  tcsim::reset_counters();
  (void)aggregate_1bit(pa, px, ReuseMode::kCrossBit);
  const u64 loads_cross_bit = tcsim::snapshot_counters().frag_loads_a;

  tcsim::reset_counters();
  (void)aggregate_1bit(pa, px, ReuseMode::kCrossTile);
  const u64 loads_cross_tile = tcsim::snapshot_counters().frag_loads_a;

  EXPECT_EQ(loads_cross_bit, 8 * loads_cross_tile);
}

TEST(AnyBit, AggregateFusedBitMatchesManual) {
  Rng rng(48);
  MatrixI32 adj(24, 24, 0);
  for (i64 i = 0; i < adj.size(); ++i) adj.data()[i] = rng.next_bool(0.4f) ? 1 : 0;
  const MatrixI32 x = random_codes(rng, 24, 16, 3);
  const BitMatrix pa = pack_nonzero(adj, BitLayout::kRowMajorK);
  const auto px = StackedBitTensor::decompose(x, 3, BitLayout::kColMajorK);

  const MatrixI32 raw = matmul_reference(adj, x);
  i32 mx = 0;
  for (i64 i = 0; i < raw.size(); ++i) mx = std::max(mx, raw.data()[i]);
  FusedEpilogue epi;
  epi.rshift = calibrate_rshift(mx, 3);
  const auto out = aggregate_fused_bit(pa, px, 3, epi);
  const MatrixI32 got = out.compose();
  for (i64 i = 0; i < raw.rows(); ++i) {
    for (i64 j = 0; j < raw.cols(); ++j) {
      EXPECT_EQ(got(i, j), std::min(raw(i, j) >> epi.rshift, 7));
    }
  }
}

TEST(AnyBit, DimensionMismatchThrows) {
  MatrixI32 a(4, 100, 1), b(90, 4, 1);
  const auto pa = StackedBitTensor::decompose(a, 2, BitLayout::kRowMajorK);
  const auto pb = StackedBitTensor::decompose(b, 2, BitLayout::kColMajorK);
  EXPECT_THROW(bitmm_to_int(pa, pb), std::invalid_argument);
}

TEST(AnyBit, OverflowGuardAndOptOut) {
  MatrixI32 a(1, 1 << 20, 255), b(1 << 20, 1, 255);
  const auto pa = StackedBitTensor::decompose(a, 8, BitLayout::kRowMajorK);
  const auto pb = StackedBitTensor::decompose(b, 8, BitLayout::kColMajorK);
  EXPECT_THROW(bitmm_to_int(pa, pb), std::invalid_argument);
  BmmOptions opt;
  opt.allow_overflow = true;
  EXPECT_NO_THROW(bitmm_to_int(pa, pb, opt));
}

/// THE core property (paper §3.1): for random (s, t) bit pairs, the composed
/// product equals the exact integer GEMM of the quantized codes.
class AnyBitComposition
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AnyBitComposition, MatchesIntegerReference) {
  const auto [s, t] = GetParam();
  Rng rng(static_cast<u64>(s * 100 + t));
  const i64 m = rng.next_in(1, 40);
  const i64 k = rng.next_in(1, 260);
  const i64 n = rng.next_in(1, 30);
  const MatrixI32 a = random_codes(rng, m, k, s);
  const MatrixI32 b = random_codes(rng, k, n, t);
  const auto pa = StackedBitTensor::decompose(a, s, BitLayout::kRowMajorK);
  const auto pb = StackedBitTensor::decompose(b, t, BitLayout::kColMajorK);
  const MatrixI32 expect = matmul_reference(a, b);
  EXPECT_EQ(bitmm_to_int(pa, pb), expect);
  EXPECT_EQ(bitmm_fused_int(pa, pb), expect);
  BmmOptions jump;
  jump.zero_tile_jump = true;
  EXPECT_EQ(bitmm_fused_int(pa, pb, {}, jump), expect);
}

INSTANTIATE_TEST_SUITE_P(
    BitPairs, AnyBitComposition,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6, 8),
                       ::testing::Values(1, 2, 3, 4, 6, 8)));

}  // namespace
}  // namespace qgtc
