// End-to-end engine tests: pipeline wiring, stats, transfer accounting,
// zero-tile census, determinism.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/stats.hpp"

#include <sstream>

namespace qgtc::core {
namespace {

Dataset small_dataset() {
  DatasetSpec spec{"engine-test", 2000, 14000, 16, 4, 16, 77};
  return generate_dataset(spec);
}

EngineConfig small_config(gnn::ModelKind kind, int bits) {
  EngineConfig cfg;
  cfg.model.kind = kind;
  cfg.model.num_layers = 3;
  cfg.model.in_dim = 16;
  cfg.model.hidden_dim = kind == gnn::ModelKind::kClusterGCN ? 16 : 32;
  cfg.model.out_dim = 4;
  cfg.model.feat_bits = bits;
  cfg.model.weight_bits = bits;
  cfg.num_partitions = 16;
  cfg.batch_size = 4;
  return cfg;
}

TEST(Engine, BuildsBatchesAndCalibrates) {
  const Dataset ds = small_dataset();
  QgtcEngine engine(ds, small_config(gnn::ModelKind::kClusterGCN, 4));
  EXPECT_EQ(engine.num_batches(), 4);
  EXPECT_TRUE(engine.model().calibrated());
  i64 covered = 0;
  for (const auto& bd : engine.batch_data()) covered += bd->batch.size();
  EXPECT_EQ(covered, 2000);
}

TEST(Engine, RunQuantizedPopulatesStats) {
  const Dataset ds = small_dataset();
  QgtcEngine engine(ds, small_config(gnn::ModelKind::kClusterGCN, 2));
  const EngineStats s = engine.run_quantized(1);
  EXPECT_GT(s.forward_seconds, 0.0);
  EXPECT_EQ(s.batches, 4);
  EXPECT_EQ(s.nodes, 2000);
  EXPECT_GT(s.bmma_ops, 0);
  EXPECT_GT(s.tiles_jumped, 0);  // batching guarantees zero tiles
}

TEST(Engine, RunFp32Works) {
  const Dataset ds = small_dataset();
  QgtcEngine engine(ds, small_config(gnn::ModelKind::kBatchedGIN, 4));
  const EngineStats s = engine.run_fp32(1);
  EXPECT_GT(s.forward_seconds, 0.0);
  EXPECT_EQ(s.nodes, 2000);
}

TEST(Engine, TransferAccountingPackedSmaller) {
  const Dataset ds = small_dataset();
  QgtcEngine engine(ds, small_config(gnn::ModelKind::kClusterGCN, 4));
  const EngineStats s = engine.transfer_accounting();
  EXPECT_GT(s.packed_bytes, 0);
  EXPECT_GT(s.dense_bytes, s.packed_bytes);
  EXPECT_LT(s.packed_transfer_seconds, s.dense_transfer_seconds);
}

TEST(Engine, ZeroTileRatioInUnitRange) {
  const Dataset ds = small_dataset();
  QgtcEngine engine(ds, small_config(gnn::ModelKind::kClusterGCN, 4));
  const double r = engine.nonzero_tile_ratio();
  EXPECT_GT(r, 0.0);
  EXPECT_LT(r, 1.0);  // block-diagonal batching guarantees zero tiles
}

TEST(Engine, MismatchedDimsThrow) {
  const Dataset ds = small_dataset();
  EngineConfig cfg = small_config(gnn::ModelKind::kClusterGCN, 4);
  cfg.model.in_dim = 99;
  EXPECT_THROW(QgtcEngine(ds, cfg), std::invalid_argument);
}

TEST(Engine, QuantizedLogitsDeterministic) {
  const Dataset ds = small_dataset();
  const EngineConfig cfg = small_config(gnn::ModelKind::kClusterGCN, 3);
  QgtcEngine e1(ds, cfg);
  QgtcEngine e2(ds, cfg);
  const auto& bd1 = *e1.batch_data().front();
  const auto& bd2 = *e2.batch_data().front();
  EXPECT_EQ(e1.model().forward_quantized(bd1.adj, bd1.features),
            e2.model().forward_quantized(bd2.adj, bd2.features));
}

TEST(TablePrinterTest, FormatsAlignedRows) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", TablePrinter::fmt(1.23456, 2)});
  t.add_row({"b", TablePrinter::fmt_pct(0.5, 1)});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("50.0%"), std::string::npos);
}

TEST(TablePrinterTest, RowWidthMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

}  // namespace
}  // namespace qgtc::core
