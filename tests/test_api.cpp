// Tests for the §5 framework-integration surface: BitTensor conversions and
// the bitMM2Int / bitMM2Bit entry points.
#include <gtest/gtest.h>

#include "api/bit_tensor_api.hpp"
#include "common/rng.hpp"

namespace qgtc::api {
namespace {

TEST(BitTensorApi, ToBitToValRoundTrip) {
  Rng rng(61);
  MatrixF dense(12, 20);
  for (i64 i = 0; i < dense.size(); ++i) dense.data()[i] = rng.next_float(-2, 2);
  const BitTensor t = BitTensor::to_bit(dense, 5);
  EXPECT_EQ(t.bits(), 5);
  EXPECT_EQ(t.rows(), 12);
  EXPECT_EQ(t.cols(), 20);
  const MatrixI32 codes = t.to_val();
  for (i64 i = 0; i < codes.size(); ++i) {
    EXPECT_GE(codes.data()[i], 0);
    EXPECT_LE(codes.data()[i], 31);
  }
  // Decoded floats approximate the original within one quantization step.
  EXPECT_LE(max_abs_diff(dense, t.to_float()), t.qparams().scale() * 1.001f);
}

TEST(BitTensorApi, FromQuantizedValidates) {
  MatrixI32 good(2, 2, 3);
  EXPECT_NO_THROW(BitTensor::from_quantized(good, 2));
  MatrixI32 bad(2, 2, 4);
  EXPECT_THROW(BitTensor::from_quantized(bad, 2), std::invalid_argument);
  MatrixI32 neg(2, 2, -1);
  EXPECT_THROW(BitTensor::from_quantized(neg, 2), std::invalid_argument);
}

TEST(BitTensorApi, BitMM2IntMatchesReference) {
  Rng rng(62);
  MatrixI32 a(9, 140), b(140, 11);
  for (i64 i = 0; i < a.size(); ++i) a.data()[i] = static_cast<i32>(rng.next_below(8));
  for (i64 i = 0; i < b.size(); ++i) b.data()[i] = static_cast<i32>(rng.next_below(4));
  const BitTensor ta = BitTensor::from_quantized(a, 3, BitTensor::Side::kLeft);
  const BitTensor tb = BitTensor::from_quantized(b, 2, BitTensor::Side::kRight);
  EXPECT_EQ(bitMM2Int(ta, tb), matmul_reference(a, b));
}

TEST(BitTensorApi, SideMismatchThrows) {
  MatrixI32 a(4, 128, 1), b(128, 4, 1);
  const BitTensor ta = BitTensor::from_quantized(a, 1, BitTensor::Side::kRight);
  const BitTensor tb = BitTensor::from_quantized(b, 1, BitTensor::Side::kRight);
  EXPECT_THROW(bitMM2Int(ta, tb), std::invalid_argument);
}

TEST(BitTensorApi, BitMM2BitChainable) {
  Rng rng(63);
  MatrixI32 a(16, 130, 0), b(130, 16, 0);
  for (i64 i = 0; i < a.size(); ++i) a.data()[i] = static_cast<i32>(rng.next_below(4));
  for (i64 i = 0; i < b.size(); ++i) b.data()[i] = static_cast<i32>(rng.next_below(4));
  const BitTensor ta = BitTensor::from_quantized(a, 2, BitTensor::Side::kLeft);
  const BitTensor tb = BitTensor::from_quantized(b, 2, BitTensor::Side::kRight);
  const BitTensor c = bitMM2Bit(ta, tb, 4);
  EXPECT_EQ(c.bits(), 4);
  EXPECT_EQ(c.rows(), 16);
  EXPECT_EQ(c.cols(), 16);
  // Output codes fit the requested bitwidth.
  const MatrixI32 codes = c.to_val();
  for (i64 i = 0; i < codes.size(); ++i) {
    EXPECT_GE(codes.data()[i], 0);
    EXPECT_LE(codes.data()[i], 15);
  }
  // And the result is a left-side tensor: chaining works without relayout
  // (against a right-side tensor of matching inner dimension).
  MatrixI32 b2(16, 5, 1);
  const BitTensor tb2 = BitTensor::from_quantized(b2, 1, BitTensor::Side::kRight);
  const BitTensor d = bitMM2Bit(c, tb2, 4);
  EXPECT_EQ(d.rows(), 16);
  EXPECT_EQ(d.cols(), 5);
}

TEST(BitTensorApi, BitMM2BitPreservesRanking) {
  // Requantization is monotone: larger accumulator -> >= output code.
  MatrixI32 a(1, 128, 0), b(128, 2, 0);
  for (i64 k = 0; k < 128; ++k) {
    a(0, k) = 1;
    b(k, 0) = (k < 100) ? 1 : 0;  // column 0 sums to 100
    b(k, 1) = (k < 20) ? 1 : 0;   // column 1 sums to 20
  }
  const BitTensor ta = BitTensor::from_quantized(a, 1, BitTensor::Side::kLeft);
  const BitTensor tb = BitTensor::from_quantized(b, 1, BitTensor::Side::kRight);
  const MatrixI32 codes = bitMM2Bit(ta, tb, 4).to_val();
  EXPECT_GE(codes(0, 0), codes(0, 1));
  EXPECT_GT(codes(0, 0), 0);
}

}  // namespace
}  // namespace qgtc::api
