// Zero-tile census tests (paper §4.3 / Figure 8 machinery).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kernels/zerotile.hpp"

namespace qgtc {
namespace {

TEST(ZeroTile, AllZero) {
  const BitMatrix m(32, 256, BitLayout::kRowMajorK);
  const TileMap map = build_tile_map(m);
  EXPECT_EQ(map.tiles_m, 4);
  EXPECT_EQ(map.tiles_k, 2);
  EXPECT_EQ(map.nonzero_tiles(), 0);
  EXPECT_DOUBLE_EQ(map.nonzero_ratio(), 0.0);
}

TEST(ZeroTile, SingleBitMarksOneTile) {
  BitMatrix m(32, 256, BitLayout::kRowMajorK);
  m.set(9, 130, true);  // row tile 1, k tile 1
  const TileMap map = build_tile_map(m);
  EXPECT_EQ(map.nonzero_tiles(), 1);
  EXPECT_TRUE(map.is_nonzero(1, 1));
  EXPECT_FALSE(map.is_nonzero(0, 0));
  EXPECT_FALSE(map.is_nonzero(1, 0));
}

TEST(ZeroTile, BlockDiagonalPattern) {
  // Two 16-node blocks on the diagonal of a 32-node adjacency: half the
  // row-tile x k-tile grid is non-zero (the batching structure of §4.1).
  BitMatrix m(32, 256, BitLayout::kRowMajorK);
  for (i64 i = 0; i < 16; ++i) {
    for (i64 j = 0; j < 128; ++j) m.set(i, j, true);
  }
  for (i64 i = 16; i < 32; ++i) {
    for (i64 j = 128; j < 256; ++j) m.set(i, j, true);
  }
  const TileMap map = build_tile_map(m);
  EXPECT_EQ(map.total_tiles(), 8);
  EXPECT_EQ(map.nonzero_tiles(), 4);
  EXPECT_DOUBLE_EQ(map.nonzero_ratio(), 0.5);
}

TEST(ZeroTile, RequiresRowMajorLayout) {
  const BitMatrix m(256, 32, BitLayout::kColMajorK);
  EXPECT_THROW(build_tile_map(m), std::invalid_argument);
}

TEST(ZeroTile, PaddingTilesAreZero) {
  // Logical 9x129 pads to 16x256: the padding-only tiles must read zero.
  BitMatrix m(9, 129, BitLayout::kRowMajorK);
  for (i64 i = 0; i < 9; ++i) {
    for (i64 j = 0; j < 129; ++j) m.set(i, j, true);
  }
  const TileMap map = build_tile_map(m);
  EXPECT_EQ(map.tiles_m, 2);
  EXPECT_EQ(map.tiles_k, 2);
  // All four tiles contain at least one logical bit except... row tile 1
  // covers rows 8..15 (row 8 is logical), k tile 1 covers cols 128..255
  // (col 128 logical) — so all 4 tiles are non-zero here.
  EXPECT_EQ(map.nonzero_tiles(), 4);
}

TEST(ZeroTile, DensityTracksRatio) {
  Rng rng(99);
  BitMatrix m(64, 512, BitLayout::kRowMajorK);
  // ~1 bit per 1024 => most, but not all, tiles hit.
  for (int s = 0; s < 24; ++s) {
    m.set(rng.next_in(0, 63), rng.next_in(0, 511), true);
  }
  const TileMap map = build_tile_map(m);
  EXPECT_GT(map.nonzero_tiles(), 0);
  EXPECT_LE(map.nonzero_tiles(), 24);
  EXPECT_LT(map.nonzero_ratio(), 1.0);
}

}  // namespace
}  // namespace qgtc
