// GNN model tests: shapes, calibration, fused/unfused parity over the full
// forward pass, reuse-mode parity, determinism, GCN vs GIN wiring, and
// directional agreement between the quantized and fp32 paths at high bits.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gnn/model.hpp"
#include "graph/generator.hpp"

namespace qgtc::gnn {
namespace {

struct Fixture {
  Dataset ds;
  BitMatrix adj;
  CsrGraph local;
  MatrixF feats;

  explicit Fixture(i64 nodes = 300) {
    DatasetSpec spec{"t", nodes, nodes * 6, 16, 4, 4, 9};
    ds = generate_dataset(spec);
    PartitionResult parts = partition_graph(ds.graph, 4);
    auto batches = make_batches(parts, 4);  // single batch, whole graph
    adj = build_batch_adjacency(ds.graph, batches[0]);
    local = build_batch_csr(ds.graph, batches[0]);
    feats = gather_rows(ds.features, batches[0].nodes);
  }

  GnnConfig config(ModelKind kind, int bits) const {
    GnnConfig cfg;
    cfg.kind = kind;
    cfg.num_layers = 3;
    cfg.in_dim = 16;
    cfg.hidden_dim = kind == ModelKind::kClusterGCN ? 16 : 64;
    cfg.out_dim = 4;
    cfg.feat_bits = bits;
    cfg.weight_bits = bits;
    return cfg;
  }
};

TEST(Layers, InitWeightsShapes) {
  GnnConfig cfg;
  cfg.num_layers = 3;
  cfg.in_dim = 10;
  cfg.hidden_dim = 8;
  cfg.out_dim = 5;
  const auto ws = init_weights(cfg, 1);
  ASSERT_EQ(ws.size(), 3u);
  EXPECT_EQ(ws[0].w.rows(), 10);
  EXPECT_EQ(ws[0].w.cols(), 8);
  EXPECT_EQ(ws[1].w.rows(), 8);
  EXPECT_EQ(ws[1].w.cols(), 8);
  EXPECT_EQ(ws[2].w.rows(), 8);
  EXPECT_EQ(ws[2].w.cols(), 5);
}

TEST(Layers, LayerDimsHelper) {
  GnnConfig cfg;
  cfg.num_layers = 2;
  cfg.in_dim = 7;
  cfg.hidden_dim = 3;
  cfg.out_dim = 2;
  EXPECT_EQ(cfg.layer_in(0), 7);
  EXPECT_EQ(cfg.layer_out(0), 3);
  EXPECT_EQ(cfg.layer_in(1), 3);
  EXPECT_EQ(cfg.layer_out(1), 2);
}

TEST(Model, ForwardShapes) {
  Fixture f;
  for (const auto kind : {ModelKind::kClusterGCN, ModelKind::kBatchedGIN}) {
    QgtcModel m = QgtcModel::create(f.config(kind, 4), 11);
    m.calibrate(f.adj, f.feats);
    const MatrixI32 logits = m.forward_quantized(f.adj, f.feats);
    EXPECT_EQ(logits.rows(), f.adj.rows());
    EXPECT_EQ(logits.cols(), 4);
    const MatrixF ref = m.forward_fp32(f.local, f.feats);
    EXPECT_EQ(ref.rows(), f.adj.rows());
    EXPECT_EQ(ref.cols(), 4);
  }
}

TEST(Model, FusedMatchesUnfused) {
  Fixture f;
  for (const auto kind : {ModelKind::kClusterGCN, ModelKind::kBatchedGIN}) {
    GnnConfig fused_cfg = f.config(kind, 4);
    fused_cfg.fused_epilogue = true;
    GnnConfig unfused_cfg = fused_cfg;
    unfused_cfg.fused_epilogue = false;

    QgtcModel fused = QgtcModel::create(fused_cfg, 13);
    QgtcModel unfused = QgtcModel::create(unfused_cfg, 13);
    fused.calibrate(f.adj, f.feats);
    unfused.calibrate(f.adj, f.feats);
    EXPECT_EQ(fused.forward_quantized(f.adj, f.feats),
              unfused.forward_quantized(f.adj, f.feats))
        << model_name(kind);
  }
}

TEST(Model, ReuseModesIdentical) {
  Fixture f;
  GnnConfig a_cfg = f.config(ModelKind::kClusterGCN, 3);
  a_cfg.reuse = ReuseMode::kCrossBit;
  a_cfg.fused_epilogue = false;
  GnnConfig b_cfg = a_cfg;
  b_cfg.reuse = ReuseMode::kCrossTile;
  QgtcModel ma = QgtcModel::create(a_cfg, 17);
  QgtcModel mb = QgtcModel::create(b_cfg, 17);
  ma.calibrate(f.adj, f.feats);
  mb.calibrate(f.adj, f.feats);
  EXPECT_EQ(ma.forward_quantized(f.adj, f.feats),
            mb.forward_quantized(f.adj, f.feats));
}

TEST(Model, ZeroTileJumpIdentical) {
  Fixture f;
  GnnConfig on_cfg = f.config(ModelKind::kBatchedGIN, 4);
  on_cfg.zero_tile_jump = true;
  GnnConfig off_cfg = on_cfg;
  off_cfg.zero_tile_jump = false;
  QgtcModel on = QgtcModel::create(on_cfg, 19);
  QgtcModel off = QgtcModel::create(off_cfg, 19);
  on.calibrate(f.adj, f.feats);
  off.calibrate(f.adj, f.feats);

  ForwardStats s_on, s_off;
  EXPECT_EQ(on.forward_quantized(f.adj, f.feats, &s_on),
            off.forward_quantized(f.adj, f.feats, &s_off));
  EXPECT_GT(s_on.tiles_jumped, 0);
  EXPECT_EQ(s_off.tiles_jumped, 0);
  EXPECT_LT(s_on.bmma_ops, s_off.bmma_ops);
}

TEST(Model, Deterministic) {
  Fixture f;
  QgtcModel m = QgtcModel::create(f.config(ModelKind::kClusterGCN, 2), 23);
  m.calibrate(f.adj, f.feats);
  EXPECT_EQ(m.forward_quantized(f.adj, f.feats),
            m.forward_quantized(f.adj, f.feats));
}

TEST(Model, HighBitTracksFp32Ranking) {
  // At 8 bits the quantized argmax should agree with fp32 on a solid
  // majority of nodes (quantization is sign/ranking-preserving in the bulk).
  Fixture f;
  QgtcModel m = QgtcModel::create(f.config(ModelKind::kClusterGCN, 8), 29);
  m.calibrate(f.adj, f.feats);
  const MatrixI32 q = m.forward_quantized(f.adj, f.feats);
  const MatrixF r = m.forward_fp32(f.local, f.feats);
  i64 agree = 0;
  for (i64 u = 0; u < q.rows(); ++u) {
    i64 qa = 0, ra = 0;
    for (i64 c = 1; c < q.cols(); ++c) {
      if (q(u, c) > q(u, qa)) qa = c;
      if (r(u, c) > r(u, ra)) ra = c;
    }
    agree += (qa == ra);
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(q.rows()), 0.6);
}

TEST(Model, HighBitsRunWithOverflowOptIn) {
  // 16-bit configuration (paper Figure 7 runs it) must execute without
  // throwing; overflow is defined-wrap.
  Fixture f;
  QgtcModel m = QgtcModel::create(f.config(ModelKind::kClusterGCN, 16), 31);
  m.calibrate(f.adj, f.feats);
  const MatrixI32 logits = m.forward_quantized(f.adj, f.feats);
  EXPECT_EQ(logits.cols(), 4);
}

TEST(Model, GinMlpUpdateRuns) {
  Fixture f;
  GnnConfig cfg = f.config(ModelKind::kBatchedGIN, 4);
  cfg.gin_mlp = true;
  QgtcModel m = QgtcModel::create(cfg, 37);
  m.calibrate(f.adj, f.feats);
  const MatrixI32 logits = m.forward_quantized(f.adj, f.feats);
  EXPECT_EQ(logits.rows(), f.adj.rows());
  EXPECT_EQ(logits.cols(), 4);
  const MatrixF ref = m.forward_fp32(f.local, f.feats);
  EXPECT_EQ(ref.cols(), 4);
}

TEST(Model, GinMlpFusedMatchesUnfused) {
  Fixture f;
  GnnConfig fused_cfg = f.config(ModelKind::kBatchedGIN, 3);
  fused_cfg.gin_mlp = true;
  GnnConfig unfused_cfg = fused_cfg;
  unfused_cfg.fused_epilogue = false;
  QgtcModel fused = QgtcModel::create(fused_cfg, 41);
  QgtcModel unfused = QgtcModel::create(unfused_cfg, 41);
  fused.calibrate(f.adj, f.feats);
  unfused.calibrate(f.adj, f.feats);
  EXPECT_EQ(fused.forward_quantized(f.adj, f.feats),
            unfused.forward_quantized(f.adj, f.feats));
}

TEST(Model, GinMlpWeightShapes) {
  GnnConfig cfg;
  cfg.num_layers = 2;
  cfg.in_dim = 10;
  cfg.hidden_dim = 6;
  cfg.out_dim = 3;
  cfg.gin_mlp = true;
  const auto ws = init_weights(cfg, 1);
  EXPECT_EQ(ws[0].w2.rows(), 6);
  EXPECT_EQ(ws[0].w2.cols(), 6);
  EXPECT_EQ(ws[1].w2.rows(), 3);
  EXPECT_EQ(ws[1].w2.cols(), 3);
}

TEST(Model, WeightCountMismatchThrows) {
  Fixture f;
  GnnConfig cfg = f.config(ModelKind::kClusterGCN, 4);
  auto ws = init_weights(cfg, 1);
  ws.pop_back();
  EXPECT_THROW(QgtcModel::from_weights(cfg, std::move(ws)),
               std::invalid_argument);
}

}  // namespace
}  // namespace qgtc::gnn
