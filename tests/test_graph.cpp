// CSR graph + dataset generator tests.
#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "graph/generator.hpp"

namespace qgtc {
namespace {

TEST(Csr, FromEdgesBasic) {
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 6);  // symmetrised
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(3, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(Csr, DropsSelfLoopsAndDuplicates) {
  const CsrGraph g =
      CsrGraph::from_edges(3, {{0, 0}, {0, 1}, {0, 1}, {1, 0}, {2, 2}});
  EXPECT_EQ(g.num_edges(), 2);  // just 0<->1
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.degree(2), 0);
}

TEST(Csr, NeighborsSorted) {
  const CsrGraph g = CsrGraph::from_edges(5, {{0, 4}, {0, 2}, {0, 1}, {0, 3}});
  const auto n = g.neighbors(0);
  ASSERT_EQ(n.size(), 4u);
  EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
}

TEST(Csr, AsymmetricOption) {
  const CsrGraph g =
      CsrGraph::from_edges(3, {{0, 1}, {1, 2}}, /*symmetrize=*/false);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(Csr, OutOfRangeEdgeThrows) {
  EXPECT_THROW(CsrGraph::from_edges(2, {{0, 2}}), std::invalid_argument);
}

TEST(Generator, Table1Inventory) {
  const auto specs = table1_specs();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "Proteins");
  EXPECT_EQ(specs[0].num_nodes, 43471);
  EXPECT_EQ(specs[0].feature_dim, 29);
  EXPECT_EQ(specs[0].num_classes, 2);
  EXPECT_EQ(specs[4].name, "ogbn-arxiv");
  EXPECT_EQ(specs[4].num_nodes, 169343);
  // Products scaled by default.
  EXPECT_EQ(specs[5].name, "ogbn-products");
  EXPECT_LT(specs[5].num_nodes, 2449029);
  const auto full = table1_specs(1.0);
  EXPECT_EQ(full[5].num_nodes, 2449029);
}

TEST(Generator, LookupByName) {
  EXPECT_EQ(table1_spec("PPI").num_classes, 121);
  EXPECT_THROW(table1_spec("nope"), std::invalid_argument);
}

TEST(Generator, SbmGraphShape) {
  DatasetSpec spec{"tiny", 1000, 5000, 16, 4, 10, 3};
  const CsrGraph g = generate_sbm_graph(spec);
  EXPECT_EQ(g.num_nodes(), 1000);
  // Dedup + self-loop removal shrinks the count a little; symmetrisation
  // doubles directed storage.
  EXPECT_GT(g.num_edges(), 2 * 5000 * 0.7);
  EXPECT_LE(g.num_edges(), 2 * 5000);
}

TEST(Generator, SbmIsClustered) {
  // Planted structure: intra-cluster edges dominate (~85 % target) vs the
  // ~1/k expectation for a random graph.
  DatasetSpec spec{"tiny", 2000, 20000, 16, 4, 20, 5};
  const CsrGraph g = generate_sbm_graph(spec);
  const i64 cluster_size = ceil_div(spec.num_nodes, spec.num_clusters);
  i64 intra = 0;
  for (i64 u = 0; u < g.num_nodes(); ++u) {
    for (const i32 v : g.neighbors(u)) {
      intra += (u / cluster_size == v / cluster_size);
    }
  }
  const double frac = static_cast<double>(intra) / static_cast<double>(g.num_edges());
  EXPECT_GT(frac, 0.7);
}

TEST(Generator, NonDivisibleClusterSizes) {
  // Regression: cluster count not dividing node count used to index past n
  // (the ogbn-arxiv/products shapes). 169343 % 768 != 0 in miniature.
  DatasetSpec spec{"odd", 1693, 11662, 8, 4, 77, 5};
  const CsrGraph g = generate_sbm_graph(spec);
  EXPECT_EQ(g.num_nodes(), 1693);
  for (i64 u = 0; u < g.num_nodes(); ++u) {
    for (const i32 v : g.neighbors(u)) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, 1693);
    }
  }
}

TEST(Generator, Deterministic) {
  DatasetSpec spec{"tiny", 500, 2000, 8, 3, 5, 11};
  const CsrGraph a = generate_sbm_graph(spec);
  const CsrGraph b = generate_sbm_graph(spec);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.col_idx(), b.col_idx());
}

TEST(Generator, DatasetFeaturesAndLabels) {
  DatasetSpec spec{"tiny", 600, 3000, 12, 5, 6, 21};
  const Dataset ds = generate_dataset(spec);
  EXPECT_EQ(ds.features.rows(), 600);
  EXPECT_EQ(ds.features.cols(), 12);
  EXPECT_EQ(ds.labels.size(), 600u);
  for (const i32 l : ds.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 5);
  }
  // Features must carry cluster signal: same-cluster nodes are closer than
  // cross-cluster on average.
  const i64 cs = ceil_div(spec.num_nodes, spec.num_clusters);
  auto dist = [&](i64 a, i64 b) {
    float d = 0;
    for (i64 j = 0; j < 12; ++j) {
      const float diff = ds.features(a, j) - ds.features(b, j);
      d += diff * diff;
    }
    return d;
  };
  double same = 0, cross = 0;
  int n_same = 0, n_cross = 0;
  for (i64 u = 0; u < 200; u += 2) {
    same += dist(u, u + 1);  // consecutive nodes share a cluster (cs >= 100)
    ++n_same;
    cross += dist(u, u + cs);
    ++n_cross;
  }
  EXPECT_LT(same / n_same, cross / n_cross);
}

}  // namespace
}  // namespace qgtc
