// Binarized (+-1) GNN tests: XOR GEMM identity, degree-corrected
// aggregation, and full-model parity against the naive reference.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gnn/binary_gnn.hpp"
#include "graph/generator.hpp"

namespace qgtc::gnn {
namespace {

MatrixI32 random_pm1(u64 seed, i64 rows, i64 cols) {
  Rng rng(seed);
  MatrixI32 m(rows, cols);
  for (i64 i = 0; i < m.size(); ++i) m.data()[i] = rng.next_bool(0.5f) ? 1 : -1;
  return m;
}

TEST(BinaryGnn, SignPm1) {
  MatrixI32 m(1, 4);
  m(0, 0) = -3;
  m(0, 1) = 0;
  m(0, 2) = 7;
  m(0, 3) = -1;
  const MatrixI32 s = sign_pm1(m);
  EXPECT_EQ(s(0, 0), -1);
  EXPECT_EQ(s(0, 1), 1);  // >= 0 maps to +1
  EXPECT_EQ(s(0, 2), 1);
  EXPECT_EQ(s(0, 3), -1);
}

TEST(BinaryGnn, PackPm1RejectsOtherValues) {
  MatrixI32 m(1, 1, 0);
  EXPECT_THROW(pack_pm1(m, BitLayout::kRowMajorK), std::invalid_argument);
}

TEST(BinaryGnn, XnorMmMatchesReference) {
  for (u64 seed = 0; seed < 4; ++seed) {
    const MatrixI32 a = random_pm1(seed, 11, 150);
    const MatrixI32 b = random_pm1(seed + 50, 150, 9);
    const BitMatrix pa = pack_pm1(a, BitLayout::kRowMajorK);
    const BitMatrix pb = pack_pm1(b, BitLayout::kColMajorK);
    EXPECT_EQ(xnor_mm_pm1(pa, pb, 150), matmul_reference(a, b)) << seed;
  }
}

TEST(BinaryGnn, RowDegrees) {
  MatrixI32 adj(3, 200, 0);
  adj(0, 5) = 1;
  adj(0, 150) = 1;
  adj(2, 0) = 1;
  const BitMatrix p = pack_nonzero(adj, BitLayout::kRowMajorK);
  const auto deg = adjacency_row_degrees(p);
  EXPECT_EQ(deg[0], 2);
  EXPECT_EQ(deg[1], 0);
  EXPECT_EQ(deg[2], 1);
}

TEST(BinaryGnn, AggregateMatchesReference) {
  Rng rng(77);
  MatrixI32 adj(40, 40, 0);
  for (i64 i = 0; i < adj.size(); ++i) adj.data()[i] = rng.next_bool(0.25f) ? 1 : 0;
  const MatrixI32 x = random_pm1(78, 40, 12);
  const BitMatrix pa = pack_nonzero(adj, BitLayout::kRowMajorK);
  const BitMatrix px = pack_pm1(x, BitLayout::kColMajorK);
  const auto deg = adjacency_row_degrees(pa);
  const MatrixI32 got = binary_aggregate(pa, px, deg);
  EXPECT_EQ(got, matmul_reference(adj, x));
}

TEST(BinaryGnn, ModelMatchesNaiveReference) {
  DatasetSpec spec{"bin", 300, 1800, 16, 4, 4, 13};
  const Dataset ds = generate_dataset(spec);
  const PartitionResult parts = partition_graph(ds.graph, 4);
  const auto batches = make_batches(parts, 4);
  const BitMatrix adj = build_batch_adjacency(ds.graph, batches[0]);
  const MatrixF feats = gather_rows(ds.features, batches[0].nodes);

  GnnConfig cfg;
  cfg.num_layers = 3;
  cfg.in_dim = 16;
  cfg.hidden_dim = 8;
  cfg.out_dim = 4;
  const BinaryGnnModel model = BinaryGnnModel::create(cfg, 5);
  EXPECT_EQ(model.forward(adj, feats), model.forward_reference(adj, feats));
}

TEST(BinaryGnn, ModelOutputShape) {
  DatasetSpec spec{"bin", 200, 1200, 8, 3, 4, 17};
  const Dataset ds = generate_dataset(spec);
  const PartitionResult parts = partition_graph(ds.graph, 2);
  const auto batches = make_batches(parts, 2);
  const BitMatrix adj = build_batch_adjacency(ds.graph, batches[0]);
  const MatrixF feats = gather_rows(ds.features, batches[0].nodes);
  GnnConfig cfg;
  cfg.num_layers = 2;
  cfg.in_dim = 8;
  cfg.hidden_dim = 8;
  cfg.out_dim = 3;
  const BinaryGnnModel model = BinaryGnnModel::create(cfg, 6);
  const MatrixI32 out = model.forward(adj, feats);
  EXPECT_EQ(out.rows(), adj.rows());
  EXPECT_EQ(out.cols(), 3);
}

TEST(BinaryGnn, XorJumpIncompatibilityEnforced) {
  const BitMatrix a(8, 128, BitLayout::kRowMajorK);
  const BitMatrix b(128, 8, BitLayout::kColMajorK);
  MatrixI32 c = make_padded_accumulator(a, b);
  BmmOptions opt;
  opt.op = tcsim::BmmaOp::kXor;
  opt.zero_tile_jump = true;
  EXPECT_THROW(bmm_accumulate(a, b, c, 0, opt), std::invalid_argument);
}

}  // namespace
}  // namespace qgtc::gnn
