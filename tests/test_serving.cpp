// Serving-layer tests: the headline parity guarantee (a request served
// through the online micro-batching pipeline is bit-identical — logits AND
// substrate counters — to the same batch membership run through the offline
// epoch path, across every backend x adjacency layout), per-request failure
// isolation, concurrent-client hammering with a clean mid-flight shutdown
// (ASan/TSan surface), ego-graph expansion semantics, and the api::Session
// counter-accounting parity with the deprecated context-taking overloads.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "common/rng.hpp"
#include "core/serving.hpp"

namespace qgtc::core {
namespace {

Dataset serving_dataset() {
  DatasetSpec spec;
  spec.name = "serving-test";
  spec.num_nodes = 1200;
  spec.num_edges = 7200;
  spec.feature_dim = 16;
  spec.num_classes = 4;
  spec.num_clusters = 8;
  spec.seed = 11;
  return generate_dataset(spec);
}

EngineConfig serving_config() {
  EngineConfig cfg;
  cfg.model.kind = gnn::ModelKind::kClusterGCN;
  cfg.model.num_layers = 2;
  cfg.model.in_dim = 16;
  cfg.model.hidden_dim = 16;
  cfg.model.out_dim = 4;
  cfg.model.feat_bits = 3;
  cfg.model.weight_bits = 3;
  cfg.num_partitions = 8;
  cfg.batch_size = 4;  // 2 offline batches of 4 partitions each
  return cfg;
}

// ------------------------------------------------- ego-graph expansion

TEST(ExpandEgo, FanoutZeroReturnsSeedsInOrder) {
  const Dataset ds = serving_dataset();
  const std::vector<i32> seeds{5, 3, 900};
  EXPECT_EQ(expand_ego(ds.graph, seeds, 0), seeds);
}

TEST(ExpandEgo, FanoutGrowsMonotonicallyAndKeepsSeedsFirst) {
  const Dataset ds = serving_dataset();
  const std::vector<i32> seeds{10, 20};
  const auto hop1 = expand_ego(ds.graph, seeds, 1);
  const auto hop2 = expand_ego(ds.graph, seeds, 2);
  ASSERT_GE(hop1.size(), seeds.size());
  ASSERT_GE(hop2.size(), hop1.size());
  // Seeds first, then BFS discovery order; hop2 extends hop1 as a prefix.
  for (std::size_t i = 0; i < seeds.size(); ++i) EXPECT_EQ(hop1[i], seeds[i]);
  for (std::size_t i = 0; i < hop1.size(); ++i) EXPECT_EQ(hop2[i], hop1[i]);
  // No duplicates.
  std::vector<u8> seen(static_cast<std::size_t>(ds.graph.num_nodes()), 0);
  for (const i32 v : hop2) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = 1;
  }
}

TEST(ExpandEgo, MaxNodesTruncatesButKeepsSeeds) {
  const Dataset ds = serving_dataset();
  const std::vector<i32> seeds{1, 2, 3};
  const auto nodes = expand_ego(ds.graph, seeds, 3, /*max_nodes=*/8);
  EXPECT_LE(nodes.size(), 8u);
  ASSERT_GE(nodes.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) EXPECT_EQ(nodes[i], seeds[i]);
}

TEST(ExpandEgo, RejectsBadSeeds) {
  const Dataset ds = serving_dataset();
  EXPECT_THROW(expand_ego(ds.graph, {}, 0), std::invalid_argument);
  EXPECT_THROW(expand_ego(ds.graph, {-1}, 0), std::invalid_argument);
  EXPECT_THROW(expand_ego(ds.graph, {static_cast<i32>(ds.graph.num_nodes())}, 0),
               std::invalid_argument);
  EXPECT_THROW(expand_ego(ds.graph, {4, 4}, 0), std::invalid_argument);
}

// ------------------------------------------------- offline/online parity

// Submits each offline batch's partitions as explicit-node requests (fanout
// 0) with max_batch_requests = partitions-per-batch and an effectively
// infinite wait, so the batcher reproduces the offline batch membership
// deterministically — per-batch quantization then guarantees bit-identical
// logits and identical counter totals.
TEST(ServingParity, BitIdenticalToOfflineEpochAcrossBackendsAndLayouts) {
  const Dataset ds = serving_dataset();
  for (const auto backend :
       {tcsim::BackendKind::kScalar, tcsim::BackendKind::kSimd,
        tcsim::BackendKind::kBlocked}) {
    for (const bool sparse : {false, true}) {
      EngineConfig cfg = serving_config();
      cfg.backend = backend;
      cfg.mode.adjacency = sparse ? RunMode::Adjacency::kTileSparse
                                  : RunMode::Adjacency::kDenseJump;

      QgtcEngine offline(ds, cfg);
      std::vector<MatrixI32> ref_logits;
      const EngineStats ref = offline.run_quantized(1, &ref_logits);

      ServingPolicy policy;
      policy.max_batch_requests = cfg.batch_size;
      policy.max_batch_nodes = i64{1} << 40;  // only the request count rules
      policy.max_wait_us = i64{60} * 1000 * 1000;
      policy.prepare_workers = 2;
      policy.compute_workers = 2;
      ServingEngine serving(ds, cfg, policy);

      std::vector<std::future<ServingResult>> futures;
      std::vector<std::pair<i64, i64>> origin;  // (offline batch, partition)
      for (i64 b = 0; b < offline.num_batches(); ++b) {
        const SubgraphBatch& batch = offline.batch_data()[
            static_cast<std::size_t>(b)]->batch;
        for (i64 p = 0; p < batch.num_parts(); ++p) {
          ServingRequest req;
          req.fanout = 0;
          req.seeds.assign(
              batch.nodes.begin() + batch.part_bounds[p],
              batch.nodes.begin() + batch.part_bounds[p + 1]);
          futures.push_back(serving.submit(std::move(req)));
          origin.emplace_back(b, p);
        }
      }
      serving.stop();  // flushes any partial trailing micro-batch

      i64 served_nodes = 0;
      for (std::size_t i = 0; i < futures.size(); ++i) {
        const ServingResult res = futures[i].get();
        const auto [b, p] = origin[i];
        const SubgraphBatch& batch = offline.batch_data()[
            static_cast<std::size_t>(b)]->batch;
        // The micro-batch reproduced the offline membership exactly.
        EXPECT_EQ(res.batch_nodes, batch.size());
        EXPECT_EQ(res.batch_requests, batch.num_parts());
        const i64 r0 = batch.part_bounds[p];
        const i64 r1 = batch.part_bounds[p + 1];
        ASSERT_EQ(static_cast<i64>(res.nodes.size()), r1 - r0);
        served_nodes += r1 - r0;
        const MatrixI32& ref_b = ref_logits[static_cast<std::size_t>(b)];
        ASSERT_EQ(res.logits.cols(), ref_b.cols());
        for (i64 r = r0; r < r1; ++r) {
          for (i64 c = 0; c < ref_b.cols(); ++c) {
            ASSERT_EQ(res.logits(r - r0, c), ref_b(r, c))
                << "logits diverged (backend=" << tcsim::backend_name(backend)
                << " sparse=" << sparse << " batch=" << b << " part=" << p
                << " row=" << r << " col=" << c << ")";
          }
        }
      }
      EXPECT_EQ(served_nodes, ref.nodes);

      // Counter parity: the compute sessions' totals over exactly one epoch
      // of membership equal the offline per-epoch totals.
      const ServingStats st = serving.stats();
      EXPECT_EQ(st.bmma_ops, ref.bmma_ops)
          << "backend=" << tcsim::backend_name(backend) << " sparse=" << sparse;
      EXPECT_EQ(st.tiles_jumped, ref.tiles_jumped);
      EXPECT_EQ(st.requests_completed, static_cast<i64>(futures.size()));
      EXPECT_EQ(st.requests_failed, 0);
      EXPECT_EQ(st.batches_dispatched, offline.num_batches());
      EXPECT_GT(st.packed_bytes, 0);
    }
  }
}

// ------------------------------------------------- failure isolation

TEST(ServingFailure, BadRequestFailsItselfNotTheServer) {
  const Dataset ds = serving_dataset();
  ServingPolicy policy;
  policy.max_wait_us = 500;
  ServingEngine serving(ds, serving_config(), policy);

  // Out-of-range and duplicate seeds fail at admission.
  auto bad1 = serving.submit({{-3}, 0, 0});
  EXPECT_THROW(bad1.get(), std::invalid_argument);
  auto bad2 = serving.submit({{7, 7}, 0, 0});
  EXPECT_THROW(bad2.get(), std::invalid_argument);

  // The server keeps serving afterwards — including a request whose
  // ego-graph exceeds max_batch_nodes (it dispatches alone).
  const ServingResult ok = serving.infer({{1, 2, 3}, 1, 0});
  EXPECT_EQ(ok.logits.cols(), 4);
  EXPECT_GE(ok.nodes.size(), 3u);

  ServingPolicy tiny = policy;
  tiny.max_batch_nodes = 2;
  ServingEngine small(ds, serving_config(), tiny);
  const ServingResult big = small.infer({{1, 2, 3, 4, 5}, 0, 0});
  EXPECT_EQ(big.nodes.size(), 5u);
  EXPECT_EQ(big.batch_requests, 1);

  const ServingStats st = serving.stats();
  EXPECT_EQ(st.requests_completed, 1);
  EXPECT_EQ(st.requests_admitted, 1);  // the two bad ones never got in
}

TEST(ServingFailure, SubmitAfterStopThrows) {
  const Dataset ds = serving_dataset();
  ServingEngine serving(ds, serving_config(), ServingPolicy{});
  serving.stop();
  EXPECT_THROW(serving.submit({{1}, 0, 0}), std::runtime_error);
}

// ------------------------------------------------- concurrent hammering

TEST(ServingConcurrency, HammeringClientsAndMidFlightStopStayClean) {
  const Dataset ds = serving_dataset();
  ServingPolicy policy;
  policy.max_batch_nodes = 512;
  policy.max_batch_requests = 8;
  policy.max_wait_us = 100;
  policy.prepare_workers = 2;
  policy.compute_workers = 2;
  ServingEngine serving(ds, serving_config(), policy);

  constexpr int kClients = 4;
  constexpr int kPerClient = 24;
  std::atomic<int> completed{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<u64>(c) + 17);
      for (int i = 0; i < kPerClient; ++i) {
        ServingRequest req;
        req.fanout = 1;
        req.max_nodes = 64;
        req.seeds = {static_cast<i32>(
            rng.next_below(static_cast<u64>(ds.graph.num_nodes())))};
        try {
          const ServingResult res = serving.infer(std::move(req));
          ASSERT_GE(res.nodes.size(), 1u);
          ASSERT_EQ(res.logits.rows(), static_cast<i64>(res.nodes.size()));
          completed.fetch_add(1);
        } catch (const std::runtime_error&) {
          failed.fetch_add(1);  // raced with stop() below — acceptable
        }
      }
    });
  }
  // Stop mid-flight: every in-flight future must still resolve (value or
  // exception) and every thread must join — no hang, no leak, no race.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  serving.stop();
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(completed.load() + failed.load(), kClients * kPerClient);
  EXPECT_GT(completed.load(), 0);
}

// ------------------------------------------------- api::Session parity

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(SessionApi, MatchesDeprecatedContextOverloadsIncludingCounters) {
  Rng rng(23);
  MatrixF a(32, 48), b(48, 24);
  for (i64 i = 0; i < a.size(); ++i) a.data()[i] = rng.next_float(-1.f, 1.f);
  for (i64 i = 0; i < b.size(); ++i) b.data()[i] = rng.next_float(-1.f, 1.f);
  const auto ta = api::BitTensor::to_bit(a, 3, api::BitTensor::Side::kLeft);
  const auto tb = api::BitTensor::to_bit(b, 3, api::BitTensor::Side::kRight);

  for (const auto backend :
       {tcsim::BackendKind::kScalar, tcsim::BackendKind::kSimd,
        tcsim::BackendKind::kBlocked}) {
    const api::Session session(backend);
    const tcsim::ExecutionContext ctx(backend, /*private_counters=*/true);

    // mm_int: identical result, identical private-counter accounting.
    const MatrixI32 via_session = session.mm_int(ta, tb);
    const MatrixI32 via_overload = api::bitMM2Int(ta, tb, ctx);
    EXPECT_EQ(via_session, via_overload);
    EXPECT_EQ(session.counters().bmma_ops, ctx.counters().bmma_ops);
    EXPECT_EQ(session.counters().frag_loads_a, ctx.counters().frag_loads_a);
    EXPECT_EQ(session.counters().frag_stores, ctx.counters().frag_stores);

    // mm_bit: the MmOut{bits, act} spelling against the positional overload.
    const api::BitTensor s_bit = session.mm_bit(
        ta, tb, api::MmOut{4, tcsim::Activation::kRelu});
    const api::BitTensor o_bit =
        api::bitMM2Bit(ta, tb, 4, ctx, {}, tcsim::Activation::kRelu);
    EXPECT_EQ(s_bit.to_val(), o_bit.to_val());
    EXPECT_EQ(session.counters().bmma_ops, ctx.counters().bmma_ops);
  }
}
#pragma GCC diagnostic pop

TEST(SessionApi, FreeFunctionsRouteThroughDefaultSession) {
  // The plain free functions must keep their legacy global-counter
  // semantics while delegating through Session::default_session().
  Rng rng(29);
  MatrixF a(16, 32), b(32, 8);
  for (i64 i = 0; i < a.size(); ++i) a.data()[i] = rng.next_float(-1.f, 1.f);
  for (i64 i = 0; i < b.size(); ++i) b.data()[i] = rng.next_float(-1.f, 1.f);
  const auto ta = api::BitTensor::to_bit(a, 2, api::BitTensor::Side::kLeft);
  const auto tb = api::BitTensor::to_bit(b, 2, api::BitTensor::Side::kRight);

  EXPECT_FALSE(api::Session::default_session().context().has_private_counters());
  tcsim::reset_counters();
  const MatrixI32 free_fn = api::bitMM2Int(ta, tb);
  const auto after = tcsim::snapshot_counters();
  EXPECT_GT(after.bmma_ops, 0u);  // accounted globally, as before

  const api::Session session(tcsim::default_backend());
  EXPECT_EQ(free_fn, session.mm_int(ta, tb));
}

}  // namespace
}  // namespace qgtc::core
