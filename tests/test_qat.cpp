// QAT tests: fake-quant semantics and the Table-2 accuracy trend on a small
// planted-community dataset.
#include <gtest/gtest.h>

#include <cmath>

#include "gnn/qat.hpp"

namespace qgtc::gnn {
namespace {

Dataset small_dataset() {
  DatasetSpec spec{"qat", 1200, 9600, 16, 4, 8, 33};
  return generate_dataset(spec);
}

TEST(Qat, FakeQuantIdentityAt32) {
  MatrixF m(3, 3, 0.123f);
  m(1, 1) = -4.5f;
  const MatrixF q = fake_quant(m, 32);
  EXPECT_FLOAT_EQ(max_abs_diff(m, q), 0.0f);
}

TEST(Qat, FakeQuantBoundedError) {
  MatrixF m(8, 8);
  for (i64 i = 0; i < m.size(); ++i) m.data()[i] = static_cast<float>(i) * 0.17f - 3.0f;
  for (const int bits : {2, 4, 8}) {
    const QuantParams p = quant_params_from_data(m, bits);
    EXPECT_LE(max_abs_diff(m, fake_quant(m, bits)), p.scale() * 1.001f);
  }
}

TEST(Qat, FakeQuantCoarserAtFewerBits) {
  MatrixF m(32, 32);
  for (i64 i = 0; i < m.size(); ++i) m.data()[i] = std::sin(static_cast<float>(i));
  EXPECT_GT(max_abs_diff(m, fake_quant(m, 2)), max_abs_diff(m, fake_quant(m, 8)));
}

TEST(Qat, TrainingLearnsTask) {
  const Dataset ds = small_dataset();
  QatConfig cfg;
  cfg.bits = 32;
  cfg.epochs = 25;
  const QatResult res = train_qat_gcn(ds, cfg);
  // 4 balanced classes: chance is 25 %; planted features are easy.
  EXPECT_GT(res.test_acc, 0.6f);
  EXPECT_GT(res.train_acc, 0.6f);
  ASSERT_EQ(res.weights.size(), 2u);
}

TEST(Qat, Deterministic) {
  const Dataset ds = small_dataset();
  QatConfig cfg;
  cfg.bits = 8;
  cfg.epochs = 5;
  const QatResult a = train_qat_gcn(ds, cfg);
  const QatResult b = train_qat_gcn(ds, cfg);
  EXPECT_FLOAT_EQ(a.test_acc, b.test_acc);
  EXPECT_FLOAT_EQ(max_abs_diff(a.weights[0].w, b.weights[0].w), 0.0f);
}

TEST(Qat, AccuracyTrendAcrossBits) {
  // Table 2's claim: 8-bit ~ fp32; 2-bit collapses. Allow slack, assert the
  // ordering between the extremes.
  const Dataset ds = small_dataset();
  QatConfig cfg;
  cfg.epochs = 25;

  cfg.bits = 32;
  const float fp32 = train_qat_gcn(ds, cfg).test_acc;
  cfg.bits = 8;
  const float q8 = train_qat_gcn(ds, cfg).test_acc;
  cfg.bits = 2;
  const float q2 = train_qat_gcn(ds, cfg).test_acc;

  EXPECT_GT(fp32, 0.6f);
  EXPECT_GT(q8, fp32 - 0.15f);  // 8-bit within a few points of fp32
  EXPECT_LT(q2, fp32);          // 2-bit strictly worse
}

}  // namespace
}  // namespace qgtc::gnn
