// 1-bit BMM kernel tests: equivalence against the integer reference GEMM,
// zero-tile jumping producing identical results while skipping work, and
// shifted accumulation.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kernels/bmm.hpp"

namespace qgtc {
namespace {

MatrixI32 random_binary(Rng& rng, i64 rows, i64 cols, float density) {
  MatrixI32 m(rows, cols);
  for (i64 i = 0; i < m.size(); ++i) m.data()[i] = rng.next_bool(density) ? 1 : 0;
  return m;
}

TEST(Bmm, MatchesReferenceSmall) {
  Rng rng(3);
  const MatrixI32 a = random_binary(rng, 5, 7, 0.5f);
  const MatrixI32 b = random_binary(rng, 7, 6, 0.5f);
  const BitMatrix pa = pack_nonzero(a, BitLayout::kRowMajorK);
  const BitMatrix pb = pack_nonzero(b, BitLayout::kColMajorK);
  EXPECT_EQ(bmm(pa, pb), matmul_reference(a, b));
}

TEST(Bmm, MatchesReferenceAcrossTileBoundaries) {
  Rng rng(4);
  // Shapes straddling the 8 / 128 tile boundaries.
  for (const auto& [m, k, n] : std::vector<std::tuple<i64, i64, i64>>{
           {8, 128, 8}, {9, 129, 9}, {16, 256, 24}, {31, 300, 17}}) {
    const MatrixI32 a = random_binary(rng, m, k, 0.3f);
    const MatrixI32 b = random_binary(rng, k, n, 0.6f);
    const BitMatrix pa = pack_nonzero(a, BitLayout::kRowMajorK);
    const BitMatrix pb = pack_nonzero(b, BitLayout::kColMajorK);
    EXPECT_EQ(bmm(pa, pb), matmul_reference(a, b))
        << "shape " << m << "x" << k << "x" << n;
  }
}

TEST(Bmm, ZeroTileJumpSameResult) {
  Rng rng(5);
  // Sparse A with whole-block holes: rows 8..15 entirely zero.
  MatrixI32 a = random_binary(rng, 32, 256, 0.2f);
  for (i64 r = 8; r < 16; ++r) {
    for (i64 c = 0; c < 256; ++c) a(r, c) = 0;
  }
  const MatrixI32 b = random_binary(rng, 256, 16, 0.5f);
  const BitMatrix pa = pack_nonzero(a, BitLayout::kRowMajorK);
  const BitMatrix pb = pack_nonzero(b, BitLayout::kColMajorK);

  BmmOptions nojump;
  BmmOptions jump;
  jump.zero_tile_jump = true;
  EXPECT_EQ(bmm(pa, pb, jump), bmm(pa, pb, nojump));

  // With a precomputed tile map too.
  const TileMap map = build_tile_map(pa);
  BmmOptions jump_map;
  jump_map.zero_tile_jump = true;
  jump_map.tile_map = &map;
  EXPECT_EQ(bmm(pa, pb, jump_map), bmm(pa, pb, nojump));
}

TEST(Bmm, ZeroTileJumpSkipsWork) {
  // All-zero A: every tile is jumped, zero BMMA ops execute.
  MatrixI32 a(64, 256, 0);
  MatrixI32 b(256, 8, 1);
  const BitMatrix pa = pack_nonzero(a, BitLayout::kRowMajorK);
  const BitMatrix pb = pack_nonzero(b, BitLayout::kColMajorK);
  BmmOptions jump;
  jump.zero_tile_jump = true;

  tcsim::reset_counters();
  const MatrixI32 c = bmm(pa, pb, jump);
  const auto counters = tcsim::snapshot_counters();
  EXPECT_EQ(counters.bmma_ops, 0u);
  EXPECT_EQ(counters.tiles_jumped, (64 / 8) * (256 / 128));
  for (i64 i = 0; i < c.size(); ++i) EXPECT_EQ(c.data()[i], 0);
}

TEST(Bmm, ShiftedAccumulate) {
  MatrixI32 a(8, 128, 0);
  MatrixI32 b(128, 8, 0);
  a(0, 0) = 1;
  b(0, 0) = 1;
  const BitMatrix pa = pack_nonzero(a, BitLayout::kRowMajorK);
  const BitMatrix pb = pack_nonzero(b, BitLayout::kColMajorK);
  MatrixI32 c = make_padded_accumulator(pa, pb);
  bmm_accumulate(pa, pb, c, /*shift=*/0);
  bmm_accumulate(pa, pb, c, /*shift=*/3);
  EXPECT_EQ(c(0, 0), 1 + 8);
}

TEST(Bmm, LayoutMismatchThrows) {
  const BitMatrix wrong_a(8, 128, BitLayout::kColMajorK);
  const BitMatrix b(128, 8, BitLayout::kColMajorK);
  EXPECT_THROW(bmm(wrong_a, b), std::invalid_argument);
  const BitMatrix a(8, 128, BitLayout::kRowMajorK);
  const BitMatrix wrong_b(128, 8, BitLayout::kRowMajorK);
  EXPECT_THROW(bmm(a, wrong_b), std::invalid_argument);
}

TEST(Bmm, KExtentMismatchThrows) {
  const BitMatrix a(8, 128, BitLayout::kRowMajorK);
  const BitMatrix b(256, 8, BitLayout::kColMajorK);
  EXPECT_THROW(bmm(a, b), std::invalid_argument);
}

TEST(Bmm, SliceLogical) {
  MatrixI32 padded(16, 16, 9);
  const MatrixI32 s = slice_logical(padded, 3, 5);
  EXPECT_EQ(s.rows(), 3);
  EXPECT_EQ(s.cols(), 5);
  EXPECT_EQ(s(2, 4), 9);
}

/// Property: packed BMM equals reference for random shapes & densities.
class BmmProperty : public ::testing::TestWithParam<int> {};

TEST_P(BmmProperty, RandomShapes) {
  Rng rng(static_cast<u64>(GetParam()) * 1337);
  const i64 m = rng.next_in(1, 60);
  const i64 k = rng.next_in(1, 400);
  const i64 n = rng.next_in(1, 40);
  const float da = rng.next_float(0.05f, 0.9f);
  const float db = rng.next_float(0.05f, 0.9f);
  const MatrixI32 a = random_binary(rng, m, k, da);
  const MatrixI32 b = random_binary(rng, k, n, db);
  const BitMatrix pa = pack_nonzero(a, BitLayout::kRowMajorK);
  const BitMatrix pb = pack_nonzero(b, BitLayout::kColMajorK);
  BmmOptions jump;
  jump.zero_tile_jump = true;
  const MatrixI32 expect = matmul_reference(a, b);
  EXPECT_EQ(bmm(pa, pb), expect);
  EXPECT_EQ(bmm(pa, pb, jump), expect);
}

INSTANTIATE_TEST_SUITE_P(Random, BmmProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace qgtc
