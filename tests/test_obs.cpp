// Observability-layer tests: histogram quantile error bounds against the
// exact core::percentile reference, registry semantics, BoundedQueue
// blocked-time reporting, concurrent span emission under a live exporter
// (the TSan surface), tracing-on/off bit-identity of logits and substrate
// counters on every backend, and Chrome-trace exporter round-trips
// (including the serving span taxonomy the CI smoke run validates).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "core/serving.hpp"
#include "core/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace qgtc {
namespace {

// Worst half-bucket geometric-midpoint error, the bound obs/metrics.hpp
// documents: sqrt(1 + 1/kSubBuckets) - 1 ~ 1.55%.
constexpr double kQuantileRelError = 0.016;

// ------------------------------------------------------------- histogram

TEST(Histogram, BucketMidWithinHalfBucketOfValue) {
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    // Spread values over many octaves: 1e-6 .. 1e6.
    const double v =
        std::pow(10.0, -6.0 + 12.0 * static_cast<double>(rng.next_float()));
    const double mid = obs::Histogram::bucket_mid(obs::Histogram::bucket_index(v));
    EXPECT_NEAR(mid / v, 1.0, kQuantileRelError + 1e-6)
        << "v=" << v << " mid=" << mid;
  }
}

TEST(Histogram, QuantilesMatchExactPercentileWithinBound) {
  // The satellite's pin: the histogram replaces core::percentile's
  // sort-a-copy on serving paths, so its quantiles must track the exact
  // reduction within the documented relative error.
  Rng rng(23);
  obs::Histogram hist;
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    // Latency-shaped: a lognormal-ish body with a heavy tail.
    const double u = static_cast<double>(rng.next_float());
    const double v = 0.5 + 40.0 * u * u * u * u;  // ms, 0.5 .. 40.5
    xs.push_back(v);
    hist.record(v);
  }
  for (const double p : {50.0, 90.0, 99.0, 99.9}) {
    const double exact = core::percentile(xs, p);
    const double approx = hist.percentile(p);
    EXPECT_NEAR(approx / exact, 1.0, 0.03)
        << "p" << p << ": exact=" << exact << " approx=" << approx;
  }
  EXPECT_EQ(hist.count(), 20000);
  // The mean is exact (sum of samples, not bucketed).
  double exact_sum = 0.0;
  for (const double v : xs) exact_sum += v;
  EXPECT_NEAR(hist.mean(), exact_sum / static_cast<double>(xs.size()), 1e-9);
}

TEST(Histogram, QuantileIsMonotoneAndEmptyIsZero) {
  obs::Histogram hist;
  EXPECT_EQ(hist.quantile(0.5), 0.0);
  for (const double v : {3.0, 1.0, 8.0, 2.0, 5.0}) hist.record(v);
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double cur = hist.quantile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Histogram, OutOfRangeValuesClampInsteadOfCrashing) {
  obs::Histogram hist;
  hist.record(0.0);
  hist.record(-4.0);
  hist.record(1e300);
  EXPECT_EQ(hist.count(), 3);
  EXPECT_TRUE(std::isfinite(hist.quantile(0.5)));
  hist.reset();
  EXPECT_EQ(hist.count(), 0);
  EXPECT_EQ(hist.sum(), 0.0);
}

// -------------------------------------------------------------- registry

TEST(MetricsRegistry, NamesResolveToStableInstruments) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter& a = reg.counter("test.obs.counter");
  a.add(3);
  EXPECT_EQ(&reg.counter("test.obs.counter"), &a);
  EXPECT_EQ(reg.counter("test.obs.counter").value(), 3);
  EXPECT_NE(&reg.counter("test.obs.other"), &a);

  reg.gauge("test.obs.gauge").set(2.5);
  EXPECT_EQ(reg.gauge("test.obs.gauge").value(), 2.5);
  reg.histogram("test.obs.hist").record(1.0);
  EXPECT_EQ(reg.histogram("test.obs.hist").count(), 1);

  std::ostringstream json;
  reg.write_json(json);
  const std::string s = json.str();
  EXPECT_NE(s.find("\"counters\""), std::string::npos);
  EXPECT_NE(s.find("\"test.obs.counter\""), std::string::npos);
  EXPECT_NE(s.find("\"histograms\""), std::string::npos);

  std::ostringstream human;
  reg.print(human);
  EXPECT_NE(human.str().find("test.obs.gauge"), std::string::npos);
}

// ------------------------------------------- BoundedQueue blocked time

TEST(BoundedQueue, FastPathReportsZeroBlockedTime) {
  core::BoundedQueue<int> q(2);
  double blocked = 123.0;
  EXPECT_TRUE(q.push(1, &blocked));
  EXPECT_EQ(blocked, 0.0);
  blocked = 123.0;
  const std::optional<int> v = q.pop(&blocked);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  EXPECT_EQ(blocked, 0.0);
}

TEST(BoundedQueue, BlockedPopReportsWaitTime) {
  core::BoundedQueue<int> q(2);
  double blocked = 0.0;
  std::optional<int> got;
  std::thread consumer([&] { got = q.pop(&blocked); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(q.push(7));
  consumer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7);
  EXPECT_GE(blocked, 0.01);  // slept 30 ms before the push
}

TEST(BoundedQueue, BlockedPushReportsWaitTime) {
  core::BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  double blocked = 0.0;
  std::thread producer([&] { ASSERT_TRUE(q.push(2, &blocked)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(q.pop().has_value());
  producer.join();
  EXPECT_GE(blocked, 0.01);
}

TEST(BoundedQueue, PopForTimeoutChargesTheWait) {
  core::BoundedQueue<int> q(1);
  int out = 0;
  double blocked = 0.0;
  const auto st = q.pop_for(/*timeout_us=*/20000, out, &blocked);
  EXPECT_EQ(st, core::BoundedQueue<int>::PopStatus::kTimeout);
  EXPECT_GE(blocked, 0.015);
}

// ------------------------------------------------------------ span sink

TEST(SpanSink, DisabledEmissionRecordsNothing) {
  auto& sink = obs::SpanSink::instance();
  sink.disable();
  sink.clear();
  { QGTC_SPAN("test", "noop", {{"k", 1}}); }
  obs::emit_span("test", "noop2", 0, 10);
  EXPECT_EQ(sink.span_count(), 0);
}

TEST(SpanSink, ConcurrentEmittersAndLiveExporter) {
  // The TSan surface: many threads appending spans while a reader snapshots
  // mid-flight. Every committed span must eventually be visible, in
  // start-sorted order, with its args intact.
  auto& sink = obs::SpanSink::instance();
  sink.disable();
  sink.clear();
  sink.enable();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 3000;  // > kChunkSpans: exercises chunk growth
  std::vector<std::thread> emitters;
  for (int t = 0; t < kThreads; ++t) {
    emitters.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        QGTC_SPAN("obs-test", "emit", {{"thread", t}, {"i", i}});
      }
    });
  }
  // Live exporter racing the emitters.
  for (int r = 0; r < 20; ++r) {
    const std::vector<obs::Span> partial = sink.snapshot();
    for (std::size_t i = 1; i < partial.size(); ++i) {
      EXPECT_LE(partial[i - 1].start_ns, partial[i].start_ns);
    }
  }
  for (std::thread& t : emitters) t.join();
  sink.disable();

  const std::vector<obs::Span> all = sink.snapshot();
  i64 ours = 0;
  for (const obs::Span& s : all) {
    if (std::strcmp(s.category, "obs-test") == 0) {
      ++ours;
      ASSERT_EQ(s.nargs, 2u);
      EXPECT_STREQ(s.args[0].key, "thread");
    }
  }
  EXPECT_EQ(ours, static_cast<i64>(kThreads) * kSpansPerThread);
  EXPECT_EQ(sink.span_count(), static_cast<i64>(all.size()));
  sink.clear();
}

TEST(SpanSink, ChromeTraceExportShape) {
  auto& sink = obs::SpanSink::instance();
  sink.disable();
  sink.clear();
  sink.enable();
  obs::emit_span("alpha", "first", 1000, 500, {{"bytes", 42}});
  { QGTC_SPAN("beta", "second"); }
  sink.disable();

  std::ostringstream os;
  sink.export_chrome_trace(os);
  const std::string s = os.str();
  EXPECT_EQ(s.front(), '{');
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(s.find("\"cat\": \"alpha\""), std::string::npos);
  EXPECT_NE(s.find("\"cat\": \"beta\""), std::string::npos);
  EXPECT_NE(s.find("\"bytes\": 42"), std::string::npos);
  // Balanced structure (crude but catches truncation/trailing-comma bugs).
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
            std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['),
            std::count(s.begin(), s.end(), ']'));
  sink.clear();
}

// ------------------------------------------- pipeline + serving surface

Dataset obs_dataset() {
  DatasetSpec spec;
  spec.name = "obs-test";
  spec.num_nodes = 1200;
  spec.num_edges = 7200;
  spec.feature_dim = 16;
  spec.num_classes = 4;
  spec.num_clusters = 8;
  spec.seed = 11;
  return generate_dataset(spec);
}

core::EngineConfig obs_config(tcsim::BackendKind backend) {
  core::EngineConfig cfg;
  cfg.model.kind = gnn::ModelKind::kClusterGCN;
  cfg.model.num_layers = 2;
  cfg.model.in_dim = 16;
  cfg.model.hidden_dim = 16;
  cfg.model.out_dim = 4;
  cfg.model.feat_bits = 3;
  cfg.model.weight_bits = 3;
  cfg.num_partitions = 8;
  cfg.batch_size = 2;  // 4 streaming batches
  cfg.backend = backend;
  cfg.inter_batch_threads = 2;
  cfg.mode = core::RunMode::streaming_pipeline(/*depth=*/2, /*prepare=*/2);
  return cfg;
}

TEST(Tracing, OnVsOffIsBitIdenticalOnEveryBackend) {
  // The acceptance bar: the tracer observes, never perturbs. Logits and
  // substrate counters must match bit-for-bit with tracing on and off.
  const Dataset ds = obs_dataset();
  auto& sink = obs::SpanSink::instance();
  for (const auto backend :
       {tcsim::BackendKind::kScalar, tcsim::BackendKind::kSimd,
        tcsim::BackendKind::kBlocked}) {
    sink.disable();
    sink.clear();
    core::QgtcEngine off_engine(ds, obs_config(backend));
    std::vector<MatrixI32> off_logits;
    const core::EngineStats off = off_engine.run_quantized(1, &off_logits);

    sink.enable();
    core::QgtcEngine on_engine(ds, obs_config(backend));
    std::vector<MatrixI32> on_logits;
    const core::EngineStats on = on_engine.run_quantized(1, &on_logits);
    sink.disable();

    EXPECT_EQ(off.bmma_ops, on.bmma_ops);
    EXPECT_EQ(off.tiles_jumped, on.tiles_jumped);
    EXPECT_EQ(off.nodes, on.nodes);
    ASSERT_EQ(off_logits.size(), on_logits.size());
    for (std::size_t b = 0; b < off_logits.size(); ++b) {
      const MatrixI32& x = off_logits[b];
      const MatrixI32& y = on_logits[b];
      ASSERT_EQ(x.rows(), y.rows());
      ASSERT_EQ(x.cols(), y.cols());
      for (i64 r = 0; r < x.rows(); ++r) {
        for (i64 c = 0; c < x.cols(); ++c) {
          ASSERT_EQ(x(r, c), y(r, c))
              << "backend=" << tcsim::backend_name(backend) << " batch=" << b;
        }
      }
    }
    // The traced run actually produced pipeline spans.
    EXPECT_GT(sink.span_count(), 0);
    sink.clear();
  }
}

bool has_category(const std::vector<obs::Span>& spans, const char* cat) {
  for (const obs::Span& s : spans) {
    if (std::strcmp(s.category, cat) == 0) return true;
  }
  return false;
}

TEST(Tracing, StreamingEpochEmitsAllStageCategories) {
  const Dataset ds = obs_dataset();
  auto& sink = obs::SpanSink::instance();
  sink.disable();
  sink.clear();
  sink.enable();
  core::QgtcEngine engine(ds, obs_config(tcsim::default_backend()));
  const core::EngineStats stats = engine.run_quantized(1);
  sink.disable();

  const std::vector<obs::Span> spans = sink.snapshot();
  for (const char* cat : {"prepare", "ship", "compute", "engine", "transfer"}) {
    EXPECT_TRUE(has_category(spans, cat)) << "missing category " << cat;
  }
  // The stage breakdown the spans decompose reached EngineStats too.
  const auto& sb = stats.stage_breakdown;
  EXPECT_GT(sb.prepare.busy_seconds + sb.ship.busy_seconds +
                sb.compute.busy_seconds,
            0.0);
  sink.clear();
}

TEST(Tracing, ServingEmitsFullSpanTaxonomy) {
  // The --serve acceptance criterion, pinned in-tree: a traced serving run
  // covers all of prepare/ship/compute/batcher/request.
  const Dataset ds = obs_dataset();
  auto& sink = obs::SpanSink::instance();
  sink.disable();
  sink.clear();
  sink.enable();
  {
    core::EngineConfig cfg = obs_config(tcsim::default_backend());
    core::ServingPolicy policy;
    policy.max_batch_requests = 4;
    policy.max_wait_us = 200;
    policy.prepare_workers = 2;
    policy.compute_workers = 2;
    core::ServingEngine serving(ds, cfg, policy);
    std::vector<std::future<core::ServingResult>> futures;
    for (int i = 0; i < 16; ++i) {
      core::ServingRequest req;
      req.seeds = {static_cast<i32>(i * 3), static_cast<i32>(i * 3 + 1)};
      req.fanout = 1;
      req.max_nodes = 64;
      futures.push_back(serving.submit(std::move(req)));
    }
    for (auto& f : futures) EXPECT_NO_THROW(f.get());
    serving.stop();
  }
  sink.disable();

  const std::vector<obs::Span> spans = sink.snapshot();
  for (const char* cat : {"prepare", "ship", "compute", "batcher", "request"}) {
    EXPECT_TRUE(has_category(spans, cat)) << "missing category " << cat;
  }
  // Monotonic export order.
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].start_ns, spans[i].start_ns);
  }
  sink.clear();
}

}  // namespace
}  // namespace qgtc
