// Tile-sparse bit tensor tests: tile-CSR layout round-trips, the direct
// CSR->tile builder, sparse/dense kernel bit-identity across every substrate
// backend, counter consistency between flag-based and structural zero-tile
// jumping, and the shrunken transfer accounting.
#include <gtest/gtest.h>

#include <algorithm>

#include "api/bit_tensor_api.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "graph/generator.hpp"
#include "kernels/anybit_mm.hpp"
#include "transfer/packing.hpp"

namespace qgtc {
namespace {

MatrixI32 random_codes(Rng& rng, i64 rows, i64 cols, int bits) {
  MatrixI32 m(rows, cols);
  const u64 range = u64{1} << bits;
  for (i64 i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<i32>(rng.next_below(range));
  }
  return m;
}

/// Block-diagonal (the §4.1 batching structure) + optional Erdős–Rényi
/// noise: the adjacency patterns the sparse layout must handle.
MatrixI32 random_block_diagonal(Rng& rng, i64 n, i64 max_block, float density,
                                float er_noise) {
  MatrixI32 m(n, n, 0);
  i64 lo = 0;
  while (lo < n) {
    const i64 size = std::min<i64>(rng.next_in(1, max_block), n - lo);
    for (i64 i = lo; i < lo + size; ++i) {
      for (i64 j = lo; j < lo + size; ++j) {
        if (i == j || rng.next_bool(density)) m(i, j) = 1;
      }
    }
    lo += size;
  }
  if (er_noise > 0.0f) {
    for (i64 i = 0; i < m.size(); ++i) {
      if (rng.next_bool(er_noise)) m.data()[i] = 1;
    }
  }
  return m;
}

TEST(TileSparse, EmptyShapeAndAppendOrder) {
  TileSparseBitMatrix m(20, 300);
  EXPECT_EQ(m.padded_rows(), 24);
  EXPECT_EQ(m.padded_cols(), 384);
  EXPECT_EQ(m.tiles_m(), 3);
  EXPECT_EQ(m.tiles_k(), 3);
  EXPECT_EQ(m.nnz_tiles(), 0);

  u32* t = m.append_tile(0, 1);
  for (int w = 0; w < TileSparseBitMatrix::kTileWords; ++w) EXPECT_EQ(t[w], 0u);
  (void)m.append_tile(0, 2);
  (void)m.append_tile(2, 0);
  EXPECT_THROW((void)m.append_tile(1, 0), std::invalid_argument);  // tm back
  EXPECT_THROW((void)m.append_tile(2, 0), std::invalid_argument);  // tk repeat
  m.finalize();
  EXPECT_EQ(m.nnz_tiles(), 3);
  EXPECT_EQ(m.row_end(0) - m.row_begin(0), 2);
  EXPECT_EQ(m.row_end(1) - m.row_begin(1), 0);
  EXPECT_EQ(m.row_end(2) - m.row_begin(2), 1);
  EXPECT_DOUBLE_EQ(m.nonzero_ratio(), 3.0 / 9.0);
}

TEST(TileSparse, FromBitMatrixRoundTrip) {
  Rng rng(11);
  for (int trial = 0; trial < 6; ++trial) {
    const i64 n = rng.next_in(1, 90);
    const i64 k = rng.next_in(1, 400);
    BitMatrix dense(n, k, BitLayout::kRowMajorK);
    const i64 bits = rng.next_in(0, n * k / 8 + 1);
    for (i64 s = 0; s < bits; ++s) {
      dense.set(rng.next_in(0, n - 1), rng.next_in(0, k - 1), true);
    }
    const TileSparseBitMatrix sparse = TileSparseBitMatrix::from_bit_matrix(dense);
    const TileMap map = build_tile_map(dense);
    EXPECT_EQ(sparse.nnz_tiles(), map.nonzero_tiles());

    const BitMatrix back = sparse.to_bit_matrix();
    ASSERT_EQ(back.lines(), dense.lines());
    ASSERT_EQ(back.k_words(), dense.k_words());
    for (i64 i = 0; i < back.lines() * back.k_words(); ++i) {
      ASSERT_EQ(back.data()[i], dense.data()[i]) << "word " << i;
    }
    for (int probe = 0; probe < 50; ++probe) {
      const i64 r = rng.next_in(0, n - 1);
      const i64 c = rng.next_in(0, k - 1);
      EXPECT_EQ(sparse.get(r, c), dense.get(r, c));
    }
  }
}

TEST(TileSparse, ColMajorRejected) {
  const BitMatrix m(256, 32, BitLayout::kColMajorK);
  EXPECT_THROW((void)TileSparseBitMatrix::from_bit_matrix(m),
               std::invalid_argument);
}

TEST(TileSparse, BatchBuilderMatchesDenseAdjacency) {
  DatasetSpec spec{"tile-sparse-test", 1200, 9000, 8, 4, 12, 31};
  const Dataset ds = generate_dataset(spec);
  const PartitionResult parts = partition_graph(ds.graph, 12, {});
  for (const SubgraphBatch& b : make_batches(parts, 4)) {
    const BitMatrix dense = build_batch_adjacency(ds.graph, b, true);
    const TileSparseBitMatrix sparse =
        build_batch_adjacency_tiles(ds.graph, b, true);
    EXPECT_EQ(sparse.rows(), dense.rows());
    EXPECT_EQ(sparse.padded_rows(), dense.padded_rows());
    EXPECT_EQ(sparse.padded_cols(), dense.padded_cols());
    EXPECT_EQ(sparse.nnz_tiles(), build_tile_map(dense).nonzero_tiles());

    const BitMatrix back = sparse.to_bit_matrix();
    ASSERT_EQ(back.lines() * back.k_words(), dense.lines() * dense.k_words());
    for (i64 i = 0; i < back.lines() * back.k_words(); ++i) {
      ASSERT_EQ(back.data()[i], dense.data()[i]) << "word " << i;
    }
    // Block-diagonal batches must actually shrink.
    EXPECT_LT(sparse.bytes(), dense.bytes());
  }
}

/// Property over randomized block-diagonal + ER adjacencies: every backend's
/// sparse results are bit-identical to the dense path, and the structural
/// schedule reports the same bmma_ops / tiles_jumped as flag-based jumping.
class TileSparseEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(TileSparseEquivalence, SparseBmmBitIdenticalAllBackends) {
  Rng rng(static_cast<u64>(GetParam()) * 7151 + 3);
  const i64 n = rng.next_in(8, 140);
  const i64 cols = rng.next_in(1, 40);
  const MatrixI32 adj = random_block_diagonal(
      rng, n, 40, 0.3f, GetParam() % 2 == 0 ? 0.0f : 0.002f);
  const MatrixI32 b = random_codes(rng, n, cols, 1);
  const BitMatrix pa = pack_nonzero(adj, BitLayout::kRowMajorK);
  const BitMatrix pb = pack_nonzero(b, BitLayout::kColMajorK);
  const TileSparseBitMatrix sa = TileSparseBitMatrix::from_bit_matrix(pa);
  const TileMap map = build_tile_map(pa);

  for (const auto kind : tcsim::all_backends()) {
    // Flag-based jumping with a precomputed map.
    const tcsim::ExecutionContext flag_ctx(kind);
    BmmOptions flag_opt;
    flag_opt.ctx = &flag_ctx;
    flag_opt.zero_tile_jump = true;
    flag_opt.tile_map = &map;
    const MatrixI32 want = bmm(pa, pb, flag_opt);

    // Dense, no jumping: zero tiles contribute nothing under AND.
    const MatrixI32 nojump = bmm(pa, pb, {});
    EXPECT_EQ(nojump, want) << tcsim::backend_name(kind);

    // Structural jumping over the tile-CSR.
    const tcsim::ExecutionContext sparse_ctx(kind);
    BmmOptions sparse_opt;
    sparse_opt.ctx = &sparse_ctx;
    EXPECT_EQ(bmm(sa, pb, sparse_opt), want) << tcsim::backend_name(kind);

    // Flag-based and structural schedules must execute the same tiles.
    const tcsim::Counters fc = flag_ctx.counters();
    const tcsim::Counters sc = sparse_ctx.counters();
    EXPECT_EQ(sc.bmma_ops, fc.bmma_ops) << tcsim::backend_name(kind);
    EXPECT_EQ(sc.tiles_jumped, fc.tiles_jumped) << tcsim::backend_name(kind);
  }
}

TEST_P(TileSparseEquivalence, SparseAggregationBitIdenticalAllBackends) {
  Rng rng(static_cast<u64>(GetParam()) * 331 + 17);
  const i64 n = rng.next_in(8, 120);
  const i64 dim = rng.next_in(1, 32);
  const int s = static_cast<int>(rng.next_in(1, 5));
  const MatrixI32 adj = random_block_diagonal(rng, n, 32, 0.25f, 0.001f);
  const MatrixI32 x = random_codes(rng, n, dim, s);
  const BitMatrix pa = pack_nonzero(adj, BitLayout::kRowMajorK);
  const TileSparseBitMatrix sa = TileSparseBitMatrix::from_bit_matrix(pa);
  const auto px = StackedBitTensor::decompose(x, s, BitLayout::kColMajorK);

  for (const auto kind : tcsim::all_backends()) {
    const tcsim::ExecutionContext flag_ctx(kind);
    BmmOptions flag_opt;
    flag_opt.ctx = &flag_ctx;
    flag_opt.zero_tile_jump = true;
    const MatrixI32 want = aggregate_1bit(pa, px, ReuseMode::kCrossTile, flag_opt);

    const tcsim::ExecutionContext sparse_ctx(kind);
    BmmOptions sparse_opt;
    sparse_opt.ctx = &sparse_ctx;
    EXPECT_EQ(aggregate_1bit(sa, px, ReuseMode::kCrossTile, sparse_opt), want)
        << tcsim::backend_name(kind);
    EXPECT_EQ(aggregate_1bit(sa, px, ReuseMode::kCrossBit, sparse_opt), want)
        << tcsim::backend_name(kind);

    // Cross-tile flag-based vs cross-tile structural schedule parity.
    const tcsim::ExecutionContext f2(kind), s2(kind);
    BmmOptions fo, so;
    fo.ctx = &f2;
    fo.zero_tile_jump = true;
    so.ctx = &s2;
    (void)aggregate_1bit(pa, px, ReuseMode::kCrossTile, fo);
    (void)aggregate_1bit(sa, px, ReuseMode::kCrossTile, so);
    EXPECT_EQ(s2.counters().bmma_ops, f2.counters().bmma_ops);
    EXPECT_EQ(s2.counters().tiles_jumped, f2.counters().tiles_jumped);

    // Fused to-bit aggregation (the hidden-layer path).
    FusedEpilogue epi;
    epi.act = tcsim::Activation::kRelu;
    epi.rshift = 2;
    const auto dense_out =
        aggregate_fused_bit(pa, px, s, epi, flag_opt, PadPolicy::kTile8);
    const auto sparse_out =
        aggregate_fused_bit(sa, px, s, epi, sparse_opt, PadPolicy::kTile8);
    EXPECT_EQ(sparse_out.compose(), dense_out.compose())
        << tcsim::backend_name(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, TileSparseEquivalence, ::testing::Range(0, 8));

TEST(TileSparse, XorCombineRejected) {
  Rng rng(5);
  const MatrixI32 adj = random_block_diagonal(rng, 32, 16, 0.4f, 0.0f);
  const MatrixI32 b = random_codes(rng, 32, 8, 1);
  const TileSparseBitMatrix sa = TileSparseBitMatrix::from_bit_matrix(
      pack_nonzero(adj, BitLayout::kRowMajorK));
  const BitMatrix pb = pack_nonzero(b, BitLayout::kColMajorK);
  BmmOptions opt;
  opt.op = tcsim::BmmaOp::kXor;
  EXPECT_THROW((void)bmm(sa, pb, opt), std::invalid_argument);
}

TEST(TileSparse, ApiSparseBitMM2IntMatchesDense) {
  Rng rng(23);
  const MatrixI32 adj = random_block_diagonal(rng, 60, 24, 0.3f, 0.0f);
  const MatrixI32 x = random_codes(rng, 60, 12, 3);
  const TileSparseBitMatrix sa = TileSparseBitMatrix::from_bit_matrix(
      pack_nonzero(adj, BitLayout::kRowMajorK));
  const auto a_t = api::BitTensor::from_quantized(adj, 1, api::BitTensor::Side::kLeft);
  const auto b_t = api::BitTensor::from_quantized(x, 3, api::BitTensor::Side::kRight);
  EXPECT_EQ(api::bitMM2Int(sa, b_t), api::bitMM2Int(a_t, b_t));
}

TEST(TileSparse, EngineSparseModeMatchesDenseMode) {
  DatasetSpec spec{"sparse-engine-test", 1500, 10000, 16, 4, 12, 9};
  const Dataset ds = generate_dataset(spec);
  core::EngineConfig cfg;
  cfg.model.num_layers = 2;
  cfg.model.in_dim = 16;
  cfg.model.hidden_dim = 16;
  cfg.model.out_dim = 4;
  cfg.model.feat_bits = 3;
  cfg.model.weight_bits = 3;
  cfg.num_partitions = 12;
  cfg.batch_size = 4;

  core::QgtcEngine dense_engine(ds, cfg);
  cfg.mode.adjacency = core::RunMode::Adjacency::kTileSparse;
  core::QgtcEngine sparse_engine(ds, cfg);

  // Same model seed + same calibration batch (sparse calibrates through the
  // tile-CSR) => identical logits batch by batch.
  for (std::size_t i = 0; i < dense_engine.batch_data().size(); ++i) {
    const auto& db = *dense_engine.batch_data()[i];
    const auto& sb = *sparse_engine.batch_data()[i];
    EXPECT_TRUE(sb.adj.data() == nullptr || sb.adj.bytes() == 0);
    const MatrixI32 dl =
        dense_engine.model().forward_prepared(db.adj, &db.tile_map, db.x_planes);
    const MatrixI32 sl =
        sparse_engine.model().forward_prepared(sb.adj_tiles, sb.x_planes);
    EXPECT_EQ(sl, dl) << "batch " << i;
  }

  // Epoch-level substrate accounting matches the flag-based path exactly.
  const auto dstats = dense_engine.run_quantized(1);
  const auto sstats = sparse_engine.run_quantized(1);
  EXPECT_EQ(sstats.bmma_ops, dstats.bmma_ops);
  EXPECT_EQ(sstats.tiles_jumped, dstats.tiles_jumped);
  EXPECT_DOUBLE_EQ(sparse_engine.nonzero_tile_ratio(),
                   dense_engine.nonzero_tile_ratio());
}

TEST(TileSparse, TransferAccountingShipsNonzeroFootprint) {
  DatasetSpec spec{"sparse-transfer-test", 1500, 10000, 16, 4, 12, 9};
  const Dataset ds = generate_dataset(spec);
  core::EngineConfig cfg;
  cfg.model.num_layers = 2;
  cfg.model.in_dim = 16;
  cfg.model.hidden_dim = 16;
  cfg.model.out_dim = 4;
  cfg.model.feat_bits = 3;
  cfg.model.weight_bits = 3;
  cfg.num_partitions = 12;
  cfg.batch_size = 4;

  core::QgtcEngine dense_engine(ds, cfg);
  cfg.mode.adjacency = core::RunMode::Adjacency::kTileSparse;
  core::QgtcEngine sparse_engine(ds, cfg);

  const auto dt = dense_engine.transfer_accounting();
  const auto st = sparse_engine.transfer_accounting();
  EXPECT_LT(st.adj_bytes, dt.adj_bytes);
  EXPECT_LT(st.packed_bytes, dt.packed_bytes);

  // Per-batch accounting formula: payload + u32 col indices + row offsets.
  transfer::PcieModel pcie;
  transfer::StagingBuffer staging;
  const auto& bd = *sparse_engine.batch_data().front();
  const auto packed =
      transfer::pack_batch_tiles(bd.adj_tiles, bd.x_planes, staging, pcie);
  const i64 want = bd.adj_tiles.nnz_tiles() * 128 +
                   (bd.adj_tiles.nnz_tiles() + bd.adj_tiles.tiles_m() + 1) * 4;
  EXPECT_EQ(packed.adjacency_bytes, want);
  EXPECT_EQ(packed.adjacency_bytes, bd.adj_tiles.bytes());
  EXPECT_EQ(staging.bytes(), packed.total_bytes);
}

TEST(TileMapCache, NonzeroCountCachedAtBuild) {
  Rng rng(41);
  const MatrixI32 adj = random_block_diagonal(rng, 64, 24, 0.3f, 0.001f);
  const BitMatrix pa = pack_nonzero(adj, BitLayout::kRowMajorK);
  const TileMap map = build_tile_map(pa);
  i64 manual = 0;
  for (const u8 f : map.nonzero) manual += f;
  EXPECT_EQ(map.nonzero_count, manual);
  EXPECT_EQ(map.nonzero_tiles(), manual);  // O(1) accessor, no re-sum
}

}  // namespace
}  // namespace qgtc
