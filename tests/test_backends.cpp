// Concurrency & dispatch tests for the ExecutionContext refactor: every
// substrate backend must produce bit-identical results vs kScalar on
// randomized (s, t)-bit MMs, engine stats and counter totals must be
// invariant to inter_batch_threads, and the fixed parallel_for_dynamic must
// visit each iteration exactly once for any chunk size.
#include <gtest/gtest.h>

#include <atomic>

#include "api/bit_tensor_api.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "kernels/anybit_mm.hpp"
#include "parallel/parallel_for.hpp"

namespace qgtc {
namespace {

MatrixI32 random_codes(Rng& rng, i64 rows, i64 cols, int bits) {
  MatrixI32 m(rows, cols);
  const u64 range = u64{1} << bits;
  for (i64 i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<i32>(rng.next_below(range));
  }
  return m;
}

MatrixI32 random_binary(Rng& rng, i64 rows, i64 cols, float density) {
  MatrixI32 m(rows, cols);
  for (i64 i = 0; i < m.size(); ++i) m.data()[i] = rng.next_bool(density) ? 1 : 0;
  return m;
}

TEST(Backends, RegistryNamesAndParsing) {
  for (const auto k : tcsim::all_backends()) {
    EXPECT_EQ(tcsim::backend(k).kind(), k);
    EXPECT_NE(std::string(tcsim::backend_name(k)), "");
  }
  EXPECT_EQ(tcsim::parse_backend("scalar"), tcsim::BackendKind::kScalar);
  EXPECT_EQ(tcsim::parse_backend("simd"), tcsim::BackendKind::kSimd);
  EXPECT_EQ(tcsim::parse_backend("blocked"), tcsim::BackendKind::kBlocked);
  EXPECT_THROW((void)tcsim::parse_backend("cuda"), std::invalid_argument);
}

TEST(Backends, PanelWidths) {
  EXPECT_EQ(tcsim::backend(tcsim::BackendKind::kScalar).panel_width(), 1);
  EXPECT_EQ(tcsim::backend(tcsim::BackendKind::kSimd).panel_width(), 1);
  EXPECT_GT(tcsim::backend(tcsim::BackendKind::kBlocked).panel_width(), 1);
}

/// Property: every backend's bitmm_to_int / fused / aggregate results are
/// bit-identical to kScalar's on randomized shapes, bitwidths and densities.
class BackendEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BackendEquivalence, RandomAnyBitMms) {
  Rng rng(static_cast<u64>(GetParam()) * 9091 + 7);
  const i64 m = rng.next_in(1, 70);
  const i64 k = rng.next_in(1, 300);
  const i64 n = rng.next_in(1, 48);
  const int s = static_cast<int>(rng.next_in(1, 5));
  const int t = static_cast<int>(rng.next_in(1, 5));
  const MatrixI32 a = random_codes(rng, m, k, s);
  const MatrixI32 b = random_codes(rng, k, n, t);
  const auto pa = StackedBitTensor::decompose(a, s, BitLayout::kRowMajorK);
  const auto pb = StackedBitTensor::decompose(b, t, BitLayout::kColMajorK);

  const tcsim::ExecutionContext scalar(tcsim::BackendKind::kScalar);
  BmmOptions sopt;
  sopt.ctx = &scalar;
  const MatrixI32 want = bitmm_to_int(pa, pb, sopt);
  EXPECT_EQ(want, matmul_reference(a, b));

  for (const auto kind :
       {tcsim::BackendKind::kSimd, tcsim::BackendKind::kBlocked}) {
    const tcsim::ExecutionContext ctx(kind);
    BmmOptions opt;
    opt.ctx = &ctx;
    EXPECT_EQ(bitmm_to_int(pa, pb, opt), want) << tcsim::backend_name(kind);
    EXPECT_EQ(bitmm_fused_int(pa, pb, {}, opt), want)
        << tcsim::backend_name(kind);

    opt.zero_tile_jump = true;
    EXPECT_EQ(bitmm_to_int(pa, pb, opt), want)
        << tcsim::backend_name(kind) << " with zero-tile jumping";
  }
}

TEST_P(BackendEquivalence, RandomAggregations) {
  Rng rng(static_cast<u64>(GetParam()) * 4243 + 1);
  const i64 nodes = rng.next_in(4, 80);
  const i64 dim = rng.next_in(1, 40);
  const int s = static_cast<int>(rng.next_in(1, 6));
  const MatrixI32 adj = random_binary(rng, nodes, nodes, 0.2f);
  const MatrixI32 x = random_codes(rng, nodes, dim, s);
  const BitMatrix pa = pack_nonzero(adj, BitLayout::kRowMajorK);
  const auto px = StackedBitTensor::decompose(x, s, BitLayout::kColMajorK);

  const tcsim::ExecutionContext scalar(tcsim::BackendKind::kScalar);
  BmmOptions sopt;
  sopt.ctx = &scalar;
  sopt.zero_tile_jump = true;
  const MatrixI32 want = aggregate_1bit(pa, px, ReuseMode::kCrossTile, sopt);
  EXPECT_EQ(want, matmul_reference(adj, x));

  for (const auto kind :
       {tcsim::BackendKind::kSimd, tcsim::BackendKind::kBlocked}) {
    const tcsim::ExecutionContext ctx(kind);
    BmmOptions opt;
    opt.ctx = &ctx;
    opt.zero_tile_jump = true;
    EXPECT_EQ(aggregate_1bit(pa, px, ReuseMode::kCrossTile, opt), want);
    EXPECT_EQ(aggregate_1bit(pa, px, ReuseMode::kCrossBit, opt), want);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, BackendEquivalence, ::testing::Range(0, 10));

TEST(Backends, XorCombineMatchesScalarAcrossBackends) {
  Rng rng(77);
  const MatrixI32 a = random_binary(rng, 24, 200, 0.5f);
  const MatrixI32 b = random_binary(rng, 200, 16, 0.5f);
  const BitMatrix pa = pack_nonzero(a, BitLayout::kRowMajorK);
  const BitMatrix pb = pack_nonzero(b, BitLayout::kColMajorK);

  MatrixI32 results[3];
  int i = 0;
  for (const auto kind : tcsim::all_backends()) {
    const tcsim::ExecutionContext ctx(kind);
    BmmOptions opt;
    opt.ctx = &ctx;
    opt.op = tcsim::BmmaOp::kXor;
    results[i++] = bmm(pa, pb, opt);
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(Backends, PrivateCountersIsolatedFromGlobal) {
  Rng rng(5);
  const MatrixI32 a = random_binary(rng, 16, 128, 0.5f);
  const MatrixI32 b = random_binary(rng, 128, 8, 0.5f);
  const BitMatrix pa = pack_nonzero(a, BitLayout::kRowMajorK);
  const BitMatrix pb = pack_nonzero(b, BitLayout::kColMajorK);

  tcsim::ExecutionContext ctx(tcsim::BackendKind::kBlocked,
                              /*private_counters=*/true);
  BmmOptions opt;
  opt.ctx = &ctx;
  tcsim::reset_counters();
  (void)bmm(pa, pb, opt);
  EXPECT_EQ(tcsim::snapshot_counters().bmma_ops, 0u)
      << "private-context work leaked into the global registry";
  const tcsim::Counters c = ctx.counters();
  EXPECT_EQ(c.bmma_ops, 2u);  // 2 row tiles x 1 col tile x 1 K tile
  ctx.reset_counters();
  EXPECT_EQ(ctx.counters().bmma_ops, 0u);
}

TEST(Backends, ApiCtxOverloadRoutesCounters) {
  Rng rng(6);
  MatrixF a(12, 100), b(100, 8);
  for (i64 i = 0; i < a.size(); ++i) a.data()[i] = rng.next_float(-1.f, 1.f);
  for (i64 i = 0; i < b.size(); ++i) b.data()[i] = rng.next_float(-1.f, 1.f);
  const auto ta = api::BitTensor::to_bit(a, 4, api::BitTensor::Side::kLeft);
  const auto tb = api::BitTensor::to_bit(b, 4, api::BitTensor::Side::kRight);

  tcsim::ExecutionContext ctx(tcsim::BackendKind::kSimd);
  const MatrixI32 got = api::bitMM2Int(ta, tb, ctx);
  EXPECT_GT(ctx.counters().bmma_ops, 0u);
  EXPECT_EQ(got, api::bitMM2Int(ta, tb));
}

TEST(Backends, EngineStatsInvariantToInterBatchThreads) {
  DatasetSpec spec{"backend-test", 1200, 8000, 16, 4, 16, 123};
  const Dataset ds = generate_dataset(spec);
  core::EngineConfig cfg;
  cfg.model.num_layers = 2;
  cfg.model.in_dim = 16;
  cfg.model.hidden_dim = 16;
  cfg.model.out_dim = 4;
  cfg.model.feat_bits = 3;
  cfg.model.weight_bits = 3;
  cfg.num_partitions = 12;
  cfg.batch_size = 2;  // 6 batches

  core::QgtcEngine engine(ds, cfg);
  engine.set_execution(tcsim::BackendKind::kBlocked, 1);
  const core::EngineStats serial = engine.run_quantized(1);
  for (const int threads : {2, 3, 6}) {
    engine.set_execution(tcsim::BackendKind::kBlocked, threads);
    const core::EngineStats par = engine.run_quantized(1);
    EXPECT_EQ(par.bmma_ops, serial.bmma_ops) << threads << " threads";
    EXPECT_EQ(par.tiles_jumped, serial.tiles_jumped) << threads << " threads";
    EXPECT_EQ(par.nodes, serial.nodes) << threads << " threads";
    EXPECT_EQ(par.batches, serial.batches) << threads << " threads";
  }
}

TEST(Backends, EngineOutputsIdenticalAcrossBackendsAndThreads) {
  DatasetSpec spec{"backend-test2", 800, 5000, 16, 4, 16, 321};
  const Dataset ds = generate_dataset(spec);
  core::EngineConfig cfg;
  cfg.model.num_layers = 2;
  cfg.model.in_dim = 16;
  cfg.model.hidden_dim = 16;
  cfg.model.out_dim = 4;
  cfg.model.feat_bits = 4;
  cfg.model.weight_bits = 4;
  cfg.num_partitions = 8;
  cfg.batch_size = 2;
  const core::QgtcEngine engine(ds, cfg);

  // Per-batch logits must not depend on the backend or on which context ran
  // the pass — forward passes are pure given (model, batch).
  const tcsim::ExecutionContext scalar(tcsim::BackendKind::kScalar);
  for (const auto& bdp : engine.batch_data()) {
    const auto& bd = *bdp;
    const MatrixI32 want = engine.model().forward_prepared(
        bd.adj, &bd.tile_map, bd.x_planes, nullptr, &scalar);
    for (const auto kind :
         {tcsim::BackendKind::kSimd, tcsim::BackendKind::kBlocked}) {
      const tcsim::ExecutionContext ctx(kind);
      EXPECT_EQ(engine.model().forward_prepared(bd.adj, &bd.tile_map,
                                                bd.x_planes, nullptr, &ctx),
                want)
          << tcsim::backend_name(kind);
    }
  }
}

TEST(ParallelFor, DynamicVisitsEachIterationOnceForAnyChunk) {
  for (const i64 chunk : {1, 3, 7, 16, 50, 1000}) {
    const i64 n = 257;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    parallel_for_dynamic(0, n, chunk, [&](i64 i) {
      ASSERT_GE(i, 0);
      ASSERT_LT(i, n);
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (i64 i = 0; i < n; ++i) {
      EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "index " << i << " chunk " << chunk;
    }
  }
}

TEST(ParallelFor, DynamicHandlesEmptyAndNegativeRanges) {
  int calls = 0;
  parallel_for_dynamic(5, 5, 4, [&](i64) { ++calls; });
  parallel_for_dynamic(5, 3, 4, [&](i64) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, WorkersCoverRangeWithBoundedWorkerIds) {
  const i64 n = 64;
  const int threads = 3;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  std::atomic<int> bad_worker{0};
  parallel_for_workers(0, n, threads, [&](i64 i, int w) {
    if (w < 0 || w >= threads) bad_worker.fetch_add(1);
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  EXPECT_EQ(bad_worker.load(), 0);
  for (i64 i = 0; i < n; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
  }
}

TEST(Workspace, ArenaReusesStorageAcrossCalls) {
  Rng rng(9);
  const MatrixI32 a = random_binary(rng, 40, 256, 0.4f);
  const MatrixI32 b = random_binary(rng, 256, 24, 0.4f);
  const BitMatrix pa = pack_nonzero(a, BitLayout::kRowMajorK);
  const BitMatrix pb = pack_nonzero(b, BitLayout::kColMajorK);
  const MatrixI32 first = bmm(pa, pb);
  const std::size_t after_first = tcsim::thread_workspace().footprint_bytes();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(bmm(pa, pb), first);
  EXPECT_EQ(tcsim::thread_workspace().footprint_bytes(), after_first)
      << "same-shaped kernel calls should not grow the arena";
}

}  // namespace
}  // namespace qgtc
