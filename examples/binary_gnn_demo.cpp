// Fully binarized GNN demo — the XOR tensor-core mode (paper §2.3 cites
// binary GNNs as a TC workload; QGTC's 1-bit case). Compares the binarized
// model's latency against the any-bitwidth quantized model at 2 and 4 bits
// on one dataset, and verifies the XOR kernel against its naive reference.
//
// Build & run:  ./build/examples/binary_gnn_demo
#include <iostream>

#include "common/timer.hpp"
#include "core/engine.hpp"
#include "core/stats.hpp"
#include "gnn/binary_gnn.hpp"

int main() {
  using namespace qgtc;

  DatasetSpec spec{"binary-demo", 30000, 240000, 32, 8, 96, 21};
  std::cout << "Generating dataset (" << spec.num_nodes << " nodes)...\n";
  const Dataset ds = generate_dataset(spec);

  core::EngineConfig cfg;
  cfg.model.kind = gnn::ModelKind::kClusterGCN;
  cfg.model.num_layers = 3;
  cfg.model.in_dim = spec.feature_dim;
  cfg.model.hidden_dim = 16;
  cfg.model.out_dim = spec.num_classes;
  cfg.model.feat_bits = 2;
  cfg.model.weight_bits = 2;
  cfg.num_partitions = 192;
  cfg.batch_size = 8;
  core::QgtcEngine engine(ds, cfg);

  // Binarized model over the same batches.
  const gnn::BinaryGnnModel bin = gnn::BinaryGnnModel::create(cfg.model, 3);
  const auto& data = engine.batch_data();

  // Sanity: packed XOR path == naive reference on the first batch.
  const MatrixI32 a = bin.forward(data[0]->adj, data[0]->features);
  const MatrixI32 b = bin.forward_reference(data[0]->adj, data[0]->features);
  std::cout << "XOR kernel vs naive reference on batch 0: "
            << (a == b ? "EXACT MATCH" : "MISMATCH!") << "\n";

  const double bin_s = time_it([&] {
    for (const auto& bd : data) (void)bin.forward(bd->adj, bd->features);
  }, 0.5);
  const double q2_s = engine.run_quantized(2).forward_seconds;

  core::TablePrinter t({"model", "ms/epoch"});
  t.add_row({"binarized (+-1, XOR)", core::TablePrinter::fmt(bin_s * 1e3, 1)});
  t.add_row({"QGTC 2-bit (AND)", core::TablePrinter::fmt(q2_s * 1e3, 1)});
  t.print(std::cout);
  std::cout << "\nBinarized inference trades accuracy for the smallest "
               "possible bit-level footprint;\nany-bitwidth QGTC is the knob "
               "between this extreme and fp32.\n";
  return 0;
}
