// Quickstart: the 60-second tour of the QGTC public API.
//
//   1. Quantize fp32 tensors into bit-Tensors (paper §5's Tensor.to_bit).
//   2. Open an api::Session — the per-stream handle that owns the execution
//      context — and multiply with session.mm_int / session.mm_bit
//      (any-bitwidth, tensor-core substrate underneath).
//   3. Decode results with to_val / to_float.
//
// The old free functions bitMM2Int / bitMM2Bit still work (they delegate to
// a process-wide default session); the context-taking overloads are
// deprecated in favour of holding a Session per stream/worker.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "api/session.hpp"
#include "common/rng.hpp"

int main() {
  using namespace qgtc;

  // Some fp32 data: a 64x256 activation panel and a 256x32 weight panel.
  Rng rng(1);
  MatrixF x(64, 256), w(256, 32);
  for (i64 i = 0; i < x.size(); ++i) x.data()[i] = rng.next_float(0.0f, 1.0f);
  for (i64 i = 0; i < w.size(); ++i) w.data()[i] = rng.next_float(-0.5f, 0.5f);

  // Quantize: X to 3 bits (left operand), W to 2 bits (right operand).
  const auto xq = api::BitTensor::to_bit(x, 3, api::BitTensor::Side::kLeft);
  const auto wq = api::BitTensor::to_bit(w, 2, api::BitTensor::Side::kRight);
  std::cout << "X: " << xq.rows() << "x" << xq.cols() << " @ " << xq.bits()
            << " bits  (scale " << xq.qparams().scale() << ")\n";
  std::cout << "W: " << wq.rows() << "x" << wq.cols() << " @ " << wq.bits()
            << " bits\n";

  // One session per stream/worker: it pins the backend and keeps private
  // substrate counters, like a CUDA stream plus its profiler slot.
  api::Session session;

  // Any-bitwidth MM with int32 output: 3-bit x 2-bit composed from six
  // 1-bit tensor-core BMMs (paper §3.1).
  const MatrixI32 c = session.mm_int(xq, wq);
  std::cout << "session.mm_int -> int32 " << c.rows() << "x" << c.cols()
            << ", C[0,0] = " << c(0, 0) << "\n";

  // Same MM but requantized to 4 bits in the fused epilogue, ready to chain
  // into the next layer without leaving the packed domain (paper §4.5).
  const auto c4 = session.mm_bit(xq, wq, api::MmOut{/*bits=*/4});
  std::cout << "session.mm_bit -> " << c4.bits() << "-bit codes, C4[0,0] = "
            << c4.to_val()(0, 0) << "\n";

  // The session counted every 1-bit tile op it issued: 3x2 bit planes for
  // mm_int plus the mm_bit pass, nothing from other threads.
  std::cout << "session counters: " << session.counters().bmma_ops
            << " tile BMMAs on " << tcsim::backend_name(session.backend())
            << "\n";

  // Round-trip check: quantized codes decode to the fp32 neighbourhood.
  const MatrixF back = xq.to_float();
  std::cout << "max |x - dequant(quant(x))| = " << max_abs_diff(x, back)
            << "  (bounded by one quantization step = " << xq.qparams().scale()
            << ")\n";
  return 0;
}
