// Quickstart: the 60-second tour of the QGTC public API.
//
//   1. Quantize fp32 tensors into bit-Tensors (paper §5's Tensor.to_bit).
//   2. Multiply them with bitMM2Int / bitMM2Bit (any-bitwidth, tensor-core
//      substrate underneath).
//   3. Decode results with to_val / to_float.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "api/bit_tensor_api.hpp"
#include "common/rng.hpp"

int main() {
  using namespace qgtc;

  // Some fp32 data: a 64x256 activation panel and a 256x32 weight panel.
  Rng rng(1);
  MatrixF x(64, 256), w(256, 32);
  for (i64 i = 0; i < x.size(); ++i) x.data()[i] = rng.next_float(0.0f, 1.0f);
  for (i64 i = 0; i < w.size(); ++i) w.data()[i] = rng.next_float(-0.5f, 0.5f);

  // Quantize: X to 3 bits (left operand), W to 2 bits (right operand).
  const auto xq = api::BitTensor::to_bit(x, 3, api::BitTensor::Side::kLeft);
  const auto wq = api::BitTensor::to_bit(w, 2, api::BitTensor::Side::kRight);
  std::cout << "X: " << xq.rows() << "x" << xq.cols() << " @ " << xq.bits()
            << " bits  (scale " << xq.qparams().scale() << ")\n";
  std::cout << "W: " << wq.rows() << "x" << wq.cols() << " @ " << wq.bits()
            << " bits\n";

  // Any-bitwidth MM with int32 output: 3-bit x 2-bit composed from six
  // 1-bit tensor-core BMMs (paper §3.1).
  const MatrixI32 c = api::bitMM2Int(xq, wq);
  std::cout << "bitMM2Int -> int32 " << c.rows() << "x" << c.cols()
            << ", C[0,0] = " << c(0, 0) << "\n";

  // Same MM but requantized to 4 bits in the fused epilogue, ready to chain
  // into the next layer without leaving the packed domain (paper §4.5).
  const auto c4 = api::bitMM2Bit(xq, wq, /*bit_c=*/4);
  std::cout << "bitMM2Bit -> " << c4.bits() << "-bit codes, C4[0,0] = "
            << c4.to_val()(0, 0) << "\n";

  // Round-trip check: quantized codes decode to the fp32 neighbourhood.
  const MatrixF back = xq.to_float();
  std::cout << "max |x - dequant(quant(x))| = " << max_abs_diff(x, back)
            << "  (bounded by one quantization step = " << xq.qparams().scale()
            << ")\n";
  return 0;
}
