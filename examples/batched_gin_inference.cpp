// Batched GIN inference — the paper's second benchmark model (3 layers,
// hidden 64, update-before-aggregate). Sweeps bitwidths on one dataset and
// prints the latency curve, demonstrating the runtime/accuracy knob the
// paper's any-bitwidth support exists for.
//
// Build & run:  ./build/examples/batched_gin_inference
#include <iostream>

#include "core/engine.hpp"
#include "core/stats.hpp"

int main() {
  using namespace qgtc;

  std::cout << "Generating PPI-scale dataset (Table 1)...\n";
  const Dataset ds = generate_dataset(table1_spec("PPI"));

  core::TablePrinter table({"config", "ms/epoch", "vs fp32"});
  double fp32_s = 0.0;
  for (const int bits : {0, 2, 4, 8}) {  // 0 = fp32 reference row
    core::EngineConfig cfg;
    cfg.model.kind = gnn::ModelKind::kBatchedGIN;
    cfg.model.num_layers = 3;
    cfg.model.in_dim = ds.spec.feature_dim;
    cfg.model.hidden_dim = 64;
    cfg.model.out_dim = ds.spec.num_classes;
    cfg.model.feat_bits = bits == 0 ? 8 : bits;
    cfg.model.weight_bits = bits == 0 ? 8 : bits;
    cfg.num_partitions = 1500;
    cfg.batch_size = 16;
    core::QgtcEngine engine(ds, cfg);

    if (bits == 0) {
      fp32_s = engine.run_fp32(2).forward_seconds;
      table.add_row({"DGL-substitute fp32",
                     core::TablePrinter::fmt(fp32_s * 1e3, 1), "1.00x"});
      continue;
    }
    const double s = engine.run_quantized(2).forward_seconds;
    table.add_row({"QGTC " + std::to_string(bits) + "-bit",
                   core::TablePrinter::fmt(s * 1e3, 1),
                   core::TablePrinter::fmt(fp32_s / s, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nGIN updates before aggregating (paper §6.1), which raises the\n"
               "computation-to-communication ratio and widens QGTC's margin.\n";
  return 0;
}
