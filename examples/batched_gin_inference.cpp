// Batched GIN inference — the paper's second benchmark model (3 layers,
// hidden 64, update-before-aggregate). Sweeps bitwidths on one dataset and
// prints the latency curve, demonstrating the runtime/accuracy knob the
// paper's any-bitwidth support exists for.
//
// Build & run:  ./build/examples/batched_gin_inference
#include <iostream>

#include "api/session.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/stats.hpp"

int main() {
  using namespace qgtc;

  std::cout << "Generating PPI-scale dataset (Table 1)...\n";
  const Dataset ds = generate_dataset(table1_spec("PPI"));

  core::TablePrinter table({"config", "ms/epoch", "vs fp32"});
  double fp32_s = 0.0;
  for (const int bits : {0, 2, 4, 8}) {  // 0 = fp32 reference row
    core::EngineConfig cfg;
    cfg.model.kind = gnn::ModelKind::kBatchedGIN;
    cfg.model.num_layers = 3;
    cfg.model.in_dim = ds.spec.feature_dim;
    cfg.model.hidden_dim = 64;
    cfg.model.out_dim = ds.spec.num_classes;
    cfg.model.feat_bits = bits == 0 ? 8 : bits;
    cfg.model.weight_bits = bits == 0 ? 8 : bits;
    cfg.num_partitions = 1500;
    cfg.batch_size = 16;
    core::QgtcEngine engine(ds, cfg);

    if (bits == 0) {
      fp32_s = engine.run_fp32(2).forward_seconds;
      table.add_row({"DGL-substitute fp32",
                     core::TablePrinter::fmt(fp32_s * 1e3, 1), "1.00x"});
      continue;
    }
    const double s = engine.run_quantized(2).forward_seconds;
    table.add_row({"QGTC " + std::to_string(bits) + "-bit",
                   core::TablePrinter::fmt(s * 1e3, 1),
                   core::TablePrinter::fmt(fp32_s / s, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nGIN updates before aggregating (paper §6.1), which raises the\n"
               "computation-to-communication ratio and widens QGTC's margin.\n";

  // Under the hood each GIN layer is one session.mm_bit call: an
  // any-bitwidth MM whose epilogue requantizes straight back into packed
  // codes. An api::Session is the per-worker handle for exactly that —
  // here one update step of a 64-node batch, counted in isolation.
  Rng rng(7);
  MatrixF h(64, 64), w(64, 64);
  for (i64 i = 0; i < h.size(); ++i) h.data()[i] = rng.next_float(0.0f, 1.0f);
  for (i64 i = 0; i < w.size(); ++i) w.data()[i] = rng.next_float(-0.5f, 0.5f);
  api::Session session;
  const auto hq = api::BitTensor::to_bit(h, 4, api::BitTensor::Side::kLeft);
  const auto wq = api::BitTensor::to_bit(w, 4, api::BitTensor::Side::kRight);
  const auto next = session.mm_bit(
      hq, wq, api::MmOut{/*bits=*/4, tcsim::Activation::kRelu});
  std::cout << "\nOne GIN update via api::Session: " << next.rows() << "x"
            << next.cols() << " @ " << next.bits() << "-bit, "
            << session.counters().bmma_ops << " tile BMMAs on "
            << tcsim::backend_name(session.backend()) << ".\n";
  return 0;
}
