// Cluster GCN inference — the paper's headline workload, end to end:
// partition a (synthetic) Proteins-scale graph with the METIS substitute,
// batch the subgraphs, and run 3-layer quantized GCN inference on the
// tensor-core substrate, comparing against the fp32 DGL-substitute path.
//
// Build & run:  ./build/examples/cluster_gcn_inference [bits]
#include <cstdlib>
#include <iostream>

#include "core/engine.hpp"
#include "core/stats.hpp"

int main(int argc, char** argv) {
  using namespace qgtc;

  const int bits = argc > 1 ? std::atoi(argv[1]) : 4;
  std::cout << "Generating Proteins-scale dataset (Table 1)...\n";
  const Dataset ds = generate_dataset(table1_spec("Proteins"));

  core::EngineConfig cfg;
  cfg.model.kind = gnn::ModelKind::kClusterGCN;
  cfg.model.num_layers = 3;
  cfg.model.in_dim = ds.spec.feature_dim;
  cfg.model.hidden_dim = 16;
  cfg.model.out_dim = ds.spec.num_classes;
  cfg.model.feat_bits = bits;
  cfg.model.weight_bits = bits;
  cfg.num_partitions = 1500;  // the paper's METIS setting
  cfg.batch_size = 16;

  std::cout << "Partitioning into " << cfg.num_partitions
            << " subgraphs, batching " << cfg.batch_size << " per batch...\n";
  core::QgtcEngine engine(ds, cfg);
  std::cout << "  " << engine.num_batches() << " batches; non-zero tile ratio "
            << core::TablePrinter::fmt_pct(engine.nonzero_tile_ratio(), 1)
            << " (the rest are jumped, paper §4.3)\n";

  const core::EngineStats q = engine.run_quantized(3);
  const core::EngineStats f = engine.run_fp32(3);
  const core::EngineStats t = engine.transfer_accounting();

  std::cout << "\nQGTC  (" << bits << "-bit): "
            << core::TablePrinter::fmt(q.forward_seconds * 1e3, 1)
            << " ms/epoch  (" << q.bmma_ops << " tile MMAs, "
            << q.tiles_jumped << " tiles jumped)\n";
  std::cout << "DGL-substitute (fp32): "
            << core::TablePrinter::fmt(f.forward_seconds * 1e3, 1)
            << " ms/epoch\n";
  std::cout << "Speedup: "
            << core::TablePrinter::fmt(f.forward_seconds / q.forward_seconds, 2)
            << "x\n";
  std::cout << "\nHost->device traffic per epoch (PCIe 4.0 x16 model): packed "
            << t.packed_bytes / 1000000 << " MB vs dense fp32 "
            << t.dense_bytes / 1000000 << " MB ("
            << core::TablePrinter::fmt(
                   static_cast<double>(t.dense_bytes) /
                       static_cast<double>(t.packed_bytes), 1)
            << "x reduction)\n";
  return 0;
}
