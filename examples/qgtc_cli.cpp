// qgtc_cli — command-line driver for the full pipeline, the "run my own
// setting" entry point a downstream user reaches for first.
//
//   qgtc_cli --dataset ogbn-arxiv --model gcn --bits 4 \
//            [--partitions N | --autotune] [--batch B] [--layers L]
//            [--hidden H] [--rounds R] [--backend scalar|simd|blocked]
//            [--threads T] [--sparse-adj|--dense-adj]
//            [--streaming] [--pipeline-depth D] [--prepare-threads P]
//            [--shards S] [--pin-numa]
//            [--serve] [--qps Q] [--requests N] [--fanout F]
//            [--trace-out trace.json] [--metrics]
//            [--save-dataset file.bin] [--load-dataset file.bin]
//
// Prints epoch latency for the quantized and fp32 paths, substrate
// counters, zero-tile stats, transfer accounting (including the per-run
// nonzero-tile ratio and adjacency bytes, so the tile-sparse path is
// inspectable end-to-end), and memory accounting (peak prepared bytes +
// process peak RSS). --autotune enables --sparse-adj automatically and
// picks streaming/pipeline-depth from the device profile; explicit flags
// always win.
//
// --serve skips the offline epochs and stands up the online serving layer
// (core::ServingEngine) behind an open-loop Poisson client: --qps offered
// load, --requests total requests, --fanout ego-graph hops per request.
// Reports p50/p99/p99.9 latency, sustained QPS and micro-batch coalescing;
// with --autotune the serving policy comes from the latency-objective
// profile.
//
// Observability (both modes): --trace-out FILE enables the always-on span
// tracer and writes a Chrome trace-event JSON (load in chrome://tracing or
// ui.perfetto.dev) covering prepare/ship/compute stage bodies, queue stalls,
// batcher coalesce windows and request lifecycles; --metrics dumps the
// counter/gauge/histogram registry (request latency, batch occupancy) on
// exit. Streaming and serving runs also print per-stage busy/stall rows —
// the stall attribution that says which stage to staff or deepen.
#include <cstring>
#include <iostream>
#include <string>

#include "common/mem.hpp"
#include "core/autotune.hpp"
#include "core/engine.hpp"
#include "core/serving.hpp"
#include "core/sharded.hpp"
#include "core/stats.hpp"
#include "graph/io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/dataset_store.hpp"

namespace {

struct Args {
  std::string dataset = "Proteins";
  std::string model = "gcn";
  int bits = 4;
  qgtc::i64 partitions = 1500;
  qgtc::i64 batch = 16;
  int layers = 3;
  qgtc::i64 hidden = 16;
  int rounds = 2;
  bool autotune = false;
  bool sparse_adj = false;
  bool dense_adj = false;
  bool streaming = false;
  int pipeline_depth = 0;   // 0 = unset (engine default, or autotuned)
  int prepare_threads = 0;  // 0 = unset
  int shards = 0;           // 0 = unset (1 engine, or autotuned shard count)
  bool pin_numa = false;    // pin each shard's workers to its NUMA slice
  std::string backend;  // empty = engine default (QGTC_BACKEND or blocked)
  int threads = 0;      // 0 = unset (engine default, or autotuned)
  int fuse_epilogue = -1;   // -1 = unset, 0 = --no-fuse-epilogue, 1 = --fuse-epilogue
  std::string activation;   // empty = model default (relu)
  std::string save_path;
  std::string load_path;
  // Out-of-core store + prepared-batch cache.
  std::string store_path;        // --store DIR: run off a mmap'd store
  std::string write_store_path;  // --write-store DIR: export then continue
  qgtc::i64 cache_budget_mb = 0; // --cache-budget-mb N: BatchCache budget
  // --serve: online micro-batching server + open-loop Poisson client.
  bool serve = false;
  double qps = 200.0;
  qgtc::i64 requests = 64;
  int fanout = 1;
  // Observability surface: span trace export + metrics registry dump.
  std::string trace_out;
  bool metrics = false;
};

void usage() {
  std::cout << "usage: qgtc_cli [--dataset NAME] [--model gcn|gin]\n"
               "  [--bits B] [--partitions N] [--batch B] [--layers L]\n"
               "  [--hidden H] [--rounds R] [--autotune] [--sparse-adj|--dense-adj]\n"
               "  [--streaming] [--pipeline-depth D] [--prepare-threads P]\n"
               "  [--shards S] [--pin-numa]\n"
               "  [--backend scalar|simd|blocked] [--threads T]\n"
               "  [--fuse-epilogue|--no-fuse-epilogue]\n"
               "  [--activation identity|relu|relu6|hardswish]\n"
               "  [--save-dataset F] [--load-dataset F]\n"
               "  [--store DIR] [--write-store DIR] [--cache-budget-mb N]\n"
               "  [--serve] [--qps Q] [--requests N] [--fanout F]\n"
               "  [--trace-out FILE] [--metrics]\n"
               "datasets: Proteins artist BlogCatalog PPI ogbn-arxiv "
               "ogbn-products\n"
               "--trace-out FILE  enable span tracing, write Chrome "
               "trace-event JSON\n"
               "                  (chrome://tracing / ui.perfetto.dev) on "
               "exit\n"
               "--metrics         dump the counter/histogram registry on "
               "exit\n"
               "--store DIR       run out-of-core off a mmap'd store "
               "directory\n"
               "--write-store DIR export the dataset as a store directory\n"
               "--cache-budget-mb N  prepared-batch cache budget "
               "(0 = disabled)\n"
               "--shards S        shard the epoch across S engines with halo "
               "exchange\n"
               "                  (under --autotune, S comes from the NUMA "
               "topology)\n"
               "--pin-numa        pin each shard's workers to its NUMA CPU "
               "slice\n";
}

bool parse(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw std::invalid_argument("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--dataset") a.dataset = next();
    else if (flag == "--model") a.model = next();
    else if (flag == "--bits") a.bits = std::atoi(next());
    else if (flag == "--partitions") a.partitions = std::atoll(next());
    else if (flag == "--batch") a.batch = std::atoll(next());
    else if (flag == "--layers") a.layers = std::atoi(next());
    else if (flag == "--hidden") a.hidden = std::atoll(next());
    else if (flag == "--rounds") a.rounds = std::atoi(next());
    else if (flag == "--autotune") a.autotune = true;
    else if (flag == "--sparse-adj") a.sparse_adj = true;
    else if (flag == "--dense-adj") a.dense_adj = true;
    else if (flag == "--streaming") a.streaming = true;
    else if (flag == "--pipeline-depth") a.pipeline_depth = std::atoi(next());
    else if (flag == "--prepare-threads") a.prepare_threads = std::atoi(next());
    else if (flag == "--shards") a.shards = std::atoi(next());
    else if (flag == "--pin-numa") a.pin_numa = true;
    else if (flag == "--backend") a.backend = next();
    else if (flag == "--threads") a.threads = std::atoi(next());
    else if (flag == "--fuse-epilogue") a.fuse_epilogue = 1;
    else if (flag == "--no-fuse-epilogue") a.fuse_epilogue = 0;
    else if (flag == "--activation") a.activation = next();
    else if (flag == "--serve") a.serve = true;
    else if (flag == "--trace-out") a.trace_out = next();
    else if (flag == "--metrics") a.metrics = true;
    else if (flag == "--qps") a.qps = std::atof(next());
    else if (flag == "--requests") a.requests = std::atoll(next());
    else if (flag == "--fanout") a.fanout = std::atoi(next());
    else if (flag == "--save-dataset") a.save_path = next();
    else if (flag == "--load-dataset") a.load_path = next();
    else if (flag == "--store") a.store_path = next();
    else if (flag == "--write-store") a.write_store_path = next();
    else if (flag == "--cache-budget-mb") a.cache_budget_mb = std::atoll(next());
    else if (flag == "--help" || flag == "-h") { usage(); return false; }
    else throw std::invalid_argument("unknown flag: " + flag);
  }
  if (a.sparse_adj && a.dense_adj) {
    throw std::invalid_argument("--sparse-adj and --dense-adj are mutually exclusive");
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qgtc;
  Args args;
  try {
    if (!parse(argc, argv, args)) return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    usage();
    return 1;
  }

  // Tracing is enabled before any engine work so calibration and the first
  // epoch land in the trace too; export + metrics dump run after the tables.
  if (!args.trace_out.empty()) obs::SpanSink::instance().enable();
  const auto flush_observability = [&args] {
    if (!args.trace_out.empty()) {
      obs::SpanSink::instance().write_chrome_trace(args.trace_out);
      std::cout << "Wrote " << obs::SpanSink::instance().span_count()
                << " spans to " << args.trace_out << "\n";
    }
    if (args.metrics) obs::MetricsRegistry::instance().print(std::cout);
  };
  // Renders a StageBreakdown as "busy/stall" milliseconds.
  const auto stage_row = [](const obs::StageBreakdown& s) {
    return core::TablePrinter::fmt(s.busy_seconds * 1e3, 1) + "/" +
           core::TablePrinter::fmt(s.stall_seconds * 1e3, 1);
  };

  Dataset ds;
  std::unique_ptr<store::DatasetStore> dstore;
  if (!args.store_path.empty()) {
    std::cout << "Opening dataset store " << args.store_path
              << " (out-of-core)...\n";
    dstore = std::make_unique<store::DatasetStore>(
        store::DatasetStore::open(args.store_path));
  } else if (!args.load_path.empty()) {
    std::cout << "Loading dataset from " << args.load_path << "...\n";
    ds = io::load_dataset_file(args.load_path);
  } else {
    std::cout << "Generating " << args.dataset << " (Table 1 SBM stand-in)...\n";
    ds = generate_dataset(table1_spec(args.dataset));
  }
  if (!args.save_path.empty() && !dstore) {
    io::save_dataset_file(args.save_path, ds);
    std::cout << "Saved dataset to " << args.save_path << "\n";
  }
  if (!args.write_store_path.empty() && !dstore) {
    io::save_dataset_store(args.write_store_path, ds);
    std::cout << "Wrote dataset store to " << args.write_store_path << "\n";
  }
  const DatasetSpec& spec = dstore ? dstore->spec() : ds.spec;

  core::EngineConfig cfg;
  cfg.model.kind = args.model == "gin" ? gnn::ModelKind::kBatchedGIN
                                       : gnn::ModelKind::kClusterGCN;
  cfg.model.num_layers = args.layers;
  cfg.model.in_dim = spec.feature_dim;
  cfg.model.hidden_dim = args.hidden;
  cfg.model.out_dim = spec.num_classes;
  cfg.model.feat_bits = args.bits;
  cfg.model.weight_bits = args.bits;
  cfg.num_partitions = args.partitions;
  cfg.batch_size = args.batch;
  int tuned_shards = 1;
  bool tuned_pin = false;
  if (args.autotune) {
    const auto tuned = core::generate_runtime_config(
        spec, cfg.model, {}, /*sparse_adj=*/!args.dense_adj);
    core::apply(tuned, cfg);
    tuned_shards = tuned.num_shards;
    tuned_pin = tuned.pin_numa;
    std::cout << "Autotuned: " << cfg.num_partitions << " partitions, batch "
              << cfg.batch_size << ", " << cfg.inter_batch_threads
              << " inter-batch threads, "
              << (cfg.mode.sparse_adj() ? "tile-sparse" : "dense")
              << " adjacency (~" << tuned.batch_bytes_estimate / 1000000
              << " MB/batch), "
              << (cfg.mode.streaming() ? "streaming (depth " +
                                      std::to_string(cfg.mode.pipeline_depth) + ")"
                                : "precomputed")
              << " epoch (~" << tuned.epoch_bytes_estimate / 1000000
              << " MB materialised), " << tuned.num_shards << " shard"
              << (tuned.num_shards == 1 ? "" : "s")
              << (tuned.pin_numa ? " (NUMA-pinned)" : "") << "\n";
  }
  // Explicit flags beat both the defaults and the autotuner (--dense-adj
  // forces the dense+flag-jump baseline even under --autotune).
  if (args.sparse_adj) cfg.mode.adjacency = core::RunMode::Adjacency::kTileSparse;
  if (args.dense_adj) cfg.mode.adjacency = core::RunMode::Adjacency::kDenseJump;
  if (args.streaming) cfg.mode.epoch = core::RunMode::Epoch::kStreaming;
  if (args.pipeline_depth > 0) cfg.mode.pipeline_depth = args.pipeline_depth;
  if (args.prepare_threads > 0) cfg.mode.prepare_threads = args.prepare_threads;
  if (args.fuse_epilogue >= 0) cfg.model.fused_epilogue = args.fuse_epilogue != 0;
  if (!args.activation.empty()) {
    try {
      cfg.model.activation = tcsim::parse_activation(args.activation);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  if (!args.backend.empty()) {
    try {
      cfg.backend = tcsim::parse_backend(args.backend);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  if (args.threads > 0) cfg.inter_batch_threads = args.threads;
  if (args.cache_budget_mb > 0) {
    cfg.cache_budget_bytes = args.cache_budget_mb << 20;
  }

  if (args.serve) {
    // Online serving: micro-batching server + open-loop Poisson client.
    // --autotune switches the tuner to the latency objective and adopts its
    // serving policy; explicit worker flags still win.
    core::ServingPolicy policy;
    if (args.autotune) {
      const auto tuned = core::generate_runtime_config(
          spec, cfg.model, {}, /*sparse_adj=*/!args.dense_adj,
          core::TuneObjective::kLatency);
      policy = tuned.serving;
    }
    if (args.prepare_threads > 0) policy.prepare_workers = args.prepare_threads;
    if (args.threads > 0) policy.compute_workers = args.threads;
    std::cout << "Starting serving engine ("
              << gnn::model_name(cfg.model.kind) << ", " << args.bits
              << "-bit, max " << policy.max_batch_nodes << " nodes / "
              << policy.max_batch_requests << " requests / "
              << policy.max_wait_us << " us per micro-batch)...\n";
    std::unique_ptr<core::ServingEngine> serving_ptr =
        dstore ? std::make_unique<core::ServingEngine>(*dstore, cfg, policy)
               : std::make_unique<core::ServingEngine>(ds, cfg, policy);
    core::ServingEngine& serving = *serving_ptr;

    core::LoadSpec load;
    load.num_requests = args.requests;
    load.target_qps = args.qps;
    load.fanout = args.fanout;
    const core::LoadReport rep = core::run_poisson_load(serving, load);
    serving.stop();
    const core::ServingStats st = serving.stats();

    core::TablePrinter table({"metric", "value"});
    table.add_row({"requests completed", std::to_string(rep.completed)});
    table.add_row({"requests failed", std::to_string(rep.failed)});
    table.add_row({"offered QPS", core::TablePrinter::fmt(rep.offered_qps, 1)});
    table.add_row({"sustained QPS", core::TablePrinter::fmt(rep.sustained_qps, 1)});
    table.add_row({"p50 latency ms", core::TablePrinter::fmt(rep.p50_ms, 3)});
    table.add_row({"p99 latency ms", core::TablePrinter::fmt(rep.p99_ms, 3)});
    table.add_row({"p99.9 latency ms", core::TablePrinter::fmt(rep.p999_ms, 3)});
    table.add_row({"mean requests/batch",
                   core::TablePrinter::fmt(rep.mean_batch_requests, 2)});
    table.add_row({"micro-batches", std::to_string(st.batches_dispatched)});
    table.add_row({"dispatches (full/timeout)",
                   std::to_string(st.dispatches_full) + "/" +
                       std::to_string(st.dispatches_timeout)});
    table.add_row({"packed MB shipped",
                   core::TablePrinter::fmt(
                       static_cast<double>(st.packed_bytes) / 1e6, 2)});
    table.add_row({"resident-reuse batches",
                   std::to_string(st.resident_reuse_batches)});
    if (cfg.cache_budget_bytes > 0) {
      const auto cs = serving.engine().cache_stats();
      table.add_row({"cache hits/misses",
                     std::to_string(cs.hits) + "/" + std::to_string(cs.misses)});
    }
    table.add_row({"tile MMAs", std::to_string(st.bmma_ops)});
    table.add_row({"batcher busy/stall ms", stage_row(st.batcher_stage)});
    table.add_row({"prepare busy/stall ms", stage_row(st.prepare_stage)});
    table.add_row({"ship busy/stall ms", stage_row(st.ship_stage)});
    table.add_row({"compute busy/stall ms", stage_row(st.compute_stage)});
    table.print(std::cout);
    flush_observability();
    return 0;
  }

  // --shards beats the autotuner; with neither, a single engine runs below.
  const int effective_shards =
      args.shards > 0 ? args.shards : (args.autotune ? tuned_shards : 1);
  const bool effective_pin = args.pin_numa || (args.autotune && tuned_pin);
  if (effective_shards > 1) {
    if (dstore) {
      std::cerr << "error: --shards requires an in-core dataset "
                   "(--store is not supported with sharding)\n";
      return 1;
    }
    std::cout << "Building " << effective_shards << " sharded engines ("
              << gnn::model_name(cfg.model.kind) << ", " << args.bits
              << "-bit, " << cfg.num_partitions << " partitions"
              << (effective_pin ? ", NUMA-pinned" : "") << ")...\n";
    core::ShardedConfig scfg;
    scfg.num_shards = effective_shards;
    scfg.pin_numa = effective_pin;
    scfg.adapt_depth = cfg.mode.streaming();
    core::ShardedEngine sharded(ds, cfg, scfg);
    const auto st = sharded.run_quantized(args.rounds);
    const core::ImbalanceReport imb = sharded.imbalance();

    core::TablePrinter table({"metric", "value"});
    table.add_row({"backend", st.backend});
    table.add_row({"shards", std::to_string(st.shards)});
    table.add_row({"batches", std::to_string(st.batches)});
    table.add_row({"nodes/epoch", std::to_string(st.nodes)});
    table.add_row({"QGTC ms/epoch",
                   core::TablePrinter::fmt(st.forward_seconds * 1e3, 1)});
    table.add_row({"tile MMAs/epoch", std::to_string(st.bmma_ops)});
    table.add_row({"halo nodes/epoch", std::to_string(st.halo_nodes)});
    table.add_row({"halo MB/epoch",
                   core::TablePrinter::fmt(
                       static_cast<double>(st.halo_bytes) / 1e6, 2)});
    table.add_row({"halo wire ms/epoch",
                   core::TablePrinter::fmt(st.halo_wire_seconds * 1e3, 2)});
    table.add_row({"exposed halo ms",
                   core::TablePrinter::fmt(st.exposed_halo_seconds * 1e3, 2)});
    for (const core::ShardReport& r : sharded.shard_reports()) {
      table.add_row(
          {"shard " + std::to_string(r.shard) + " busy/stall ms",
           core::TablePrinter::fmt(r.busy_seconds * 1e3, 1) + "/" +
               core::TablePrinter::fmt(r.stall_seconds * 1e3, 1) + "  (" +
               std::to_string(r.batches) + " batches, " +
               std::to_string(r.nodes) + " nodes, halo " +
               core::TablePrinter::fmt(
                   static_cast<double>(r.halo_bytes) / 1e6, 2) +
               " MB" +
               (r.pinned ? ", pinned to " + std::to_string(r.cpus) + " cpus"
                         : "") +
               (r.suggested_depth > 0 && r.suggested_depth != r.pipeline_depth
                    ? ", depth " + std::to_string(r.pipeline_depth) + "->" +
                          std::to_string(r.suggested_depth)
                    : "") +
               ")"});
    }
    table.add_row({"max/mean shard busy",
                   core::TablePrinter::fmt(imb.max_over_mean, 2) +
                       (imb.skewed() ? " (skewed, straggler shard " +
                                           std::to_string(imb.straggler) + ")"
                                     : "")});
    table.add_row({"halo-stall share",
                   core::TablePrinter::fmt_pct(imb.halo_stall_share, 1)});
    table.add_row({"peak RSS MB",
                   core::TablePrinter::fmt(
                       static_cast<double>(vm_hwm_bytes()) / 1e6, 1)});
    table.print(std::cout);
    flush_observability();
    return 0;
  }

  std::cout << "Building engine (" << gnn::model_name(cfg.model.kind) << ", "
            << args.bits << "-bit, " << cfg.num_partitions << " partitions)...\n";
  std::unique_ptr<core::QgtcEngine> engine_ptr =
      dstore ? std::make_unique<core::QgtcEngine>(*dstore, cfg)
             : std::make_unique<core::QgtcEngine>(ds, cfg);
  core::QgtcEngine& engine = *engine_ptr;

  const auto q = engine.run_quantized(args.rounds);
  const auto f = engine.run_fp32(args.rounds);
  const auto t = engine.transfer_accounting();

  core::TablePrinter table({"metric", "value"});
  table.add_row({"backend", q.backend});
  table.add_row({"adjacency format",
                 cfg.mode.sparse_adj() ? "tile-sparse (CSR)" : "dense + jump map"});
  table.add_row({"epilogue",
                 cfg.model.fused_epilogue
                     ? "fused (" +
                           std::string(tcsim::activation_name(
                               cfg.model.activation)) +
                           ", " + std::to_string(q.epilogue_fused_layers) +
                           " stages/pass)"
                     : "unfused (" +
                           std::string(tcsim::activation_name(
                               cfg.model.activation)) +
                           ")"});
  table.add_row({"epoch mode",
                 cfg.mode.streaming()
                     ? "streaming (depth " + std::to_string(cfg.mode.pipeline_depth) +
                           ", " + std::to_string(q.prepare_threads) +
                           " prepare threads)"
                     : "precomputed"});
  table.add_row({"inter-batch threads", std::to_string(q.inter_batch_threads)});
  table.add_row({"batches", std::to_string(q.batches)});
  table.add_row({"nodes/epoch", std::to_string(q.nodes)});
  table.add_row({"QGTC ms/epoch", core::TablePrinter::fmt(q.forward_seconds * 1e3, 1)});
  table.add_row({"fp32 ms/epoch", core::TablePrinter::fmt(f.forward_seconds * 1e3, 1)});
  table.add_row({"speedup", core::TablePrinter::fmt(f.forward_seconds / q.forward_seconds, 2) + "x"});
  table.add_row({"tile MMAs/epoch", std::to_string(q.bmma_ops)});
  table.add_row({"tiles jumped/epoch", std::to_string(q.tiles_jumped)});
  table.add_row({"int32 MB avoided/epoch",
                 core::TablePrinter::fmt(
                     static_cast<double>(q.int32_bytes_avoided) / 1e6, 2)});
  table.add_row({"non-zero tile ratio",
                 core::TablePrinter::fmt_pct(engine.nonzero_tile_ratio(), 1)});
  table.add_row({"adjacency MB shipped",
                 core::TablePrinter::fmt(static_cast<double>(t.adj_bytes) / 1e6, 2)});
  table.add_row({"packed transfer MB",
                 core::TablePrinter::fmt(static_cast<double>(t.packed_bytes) / 1e6, 1)});
  table.add_row({"dense transfer MB",
                 core::TablePrinter::fmt(static_cast<double>(t.dense_bytes) / 1e6, 1)});
  if (cfg.mode.streaming()) {
    table.add_row({"wire ms/epoch (inline)",
                   core::TablePrinter::fmt(q.packed_transfer_seconds * 1e3, 2)});
    table.add_row({"exposed transfer ms",
                   core::TablePrinter::fmt(q.exposed_transfer_seconds * 1e3, 2)});
    table.add_row({"prepare busy/stall ms", stage_row(q.stage_breakdown.prepare)});
    table.add_row({"ship busy/stall ms", stage_row(q.stage_breakdown.ship)});
    table.add_row({"compute busy/stall ms", stage_row(q.stage_breakdown.compute)});
  }
  if (cfg.cache_budget_bytes > 0) {
    const double lookups = static_cast<double>(q.cache_hits + q.cache_misses);
    table.add_row({"cache hits/misses/evict per epoch",
                   std::to_string(q.cache_hits) + "/" +
                       std::to_string(q.cache_misses) + "/" +
                       std::to_string(q.cache_evictions)});
    table.add_row({"cache hit ratio (timed epochs)",
                   lookups > 0 ? core::TablePrinter::fmt_pct(
                                     static_cast<double>(q.cache_hits) / lookups, 1)
                               : "n/a"});
    table.add_row({"cache resident MB",
                   core::TablePrinter::fmt(
                       static_cast<double>(q.cache_resident_bytes) / 1e6, 2)});
  }
  table.add_row({"prepare MB read/epoch",
                 core::TablePrinter::fmt(
                     static_cast<double>(q.prepare_bytes_read) / 1e6, 2)});
  if (dstore) {
    table.add_row({"mapped store MB",
                   core::TablePrinter::fmt(
                       static_cast<double>(engine.mapped_bytes()) / 1e6, 2)});
  }
  table.add_row({"peak prepared MB",
                 core::TablePrinter::fmt(static_cast<double>(q.peak_prepared_bytes) / 1e6, 2)});
  table.add_row({"peak RSS MB",
                 core::TablePrinter::fmt(static_cast<double>(vm_hwm_bytes()) / 1e6, 1)});
  table.print(std::cout);
  flush_observability();
  return 0;
}
