// Accuracy/latency trade-off — the paper's closing argument ("making the
// right tradeoff between runtime performance and model accuracy", §6.1):
// QAT-train a GCN at several bitwidths on one planted-community graph, then
// measure quantized inference latency at each bitwidth with the trained
// weights, and print the combined frontier.
//
// Build & run:  ./build/examples/quantization_tradeoff
#include <iostream>

#include "core/engine.hpp"
#include "core/stats.hpp"
#include "gnn/qat.hpp"

int main() {
  using namespace qgtc;

  DatasetSpec spec{"tradeoff", 20000, 160000, 64, 8, 64, 5};
  std::cout << "Generating planted-community dataset (" << spec.num_nodes
            << " nodes, " << spec.num_edges << " edges)...\n";
  const Dataset ds = generate_dataset(spec);

  core::TablePrinter table(
      {"bits", "QAT test acc", "inference ms/epoch", "speedup vs fp32"});

  // fp32 reference latency (any engine's fp32 path).
  core::EngineConfig cfg;
  cfg.model.kind = gnn::ModelKind::kClusterGCN;
  cfg.model.num_layers = 2;
  cfg.model.in_dim = spec.feature_dim;
  cfg.model.hidden_dim = 64;
  cfg.model.out_dim = spec.num_classes;
  cfg.num_partitions = 128;
  cfg.batch_size = 8;

  double fp32_s = 0.0;
  for (const int bits : {32, 8, 4, 2}) {
    gnn::QatConfig qat;
    qat.bits = bits;
    qat.epochs = 20;
    qat.hidden = 64;
    const gnn::QatResult trained = gnn::train_qat_gcn(ds, qat);

    if (bits == 32) {
      core::QgtcEngine engine(ds, cfg);
      fp32_s = engine.run_fp32(2).forward_seconds;
      table.add_row({"fp32", core::TablePrinter::fmt(trained.test_acc, 3),
                     core::TablePrinter::fmt(fp32_s * 1e3, 1), "1.00x"});
      continue;
    }
    cfg.model.feat_bits = bits;
    cfg.model.weight_bits = bits;
    core::QgtcEngine engine(ds, cfg);
    const double s = engine.run_quantized(2).forward_seconds;
    table.add_row({std::to_string(bits),
                   core::TablePrinter::fmt(trained.test_acc, 3),
                   core::TablePrinter::fmt(s * 1e3, 1),
                   core::TablePrinter::fmt(fp32_s / s, 2) + "x"});
    std::cerr << "  [done] " << bits << " bits\n";
  }
  table.print(std::cout);
  std::cout << "\nThe bitwidth knob trades accuracy for latency monotonically:\n"
               "8-bit keeps accuracy at fp32 level, 2-bit runs ~3x faster than\n"
               "8-bit at a visible accuracy cost — pick per application (the\n"
               "paper's closing argument in §6.1).\n";
  return 0;
}
