#include "transfer/packing.hpp"

#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace qgtc::transfer {

namespace {

/// Shared pack_batch body: the adjacency representations differ only in the
/// bytes they stage, so `adj_bytes` + `stage_adjacency(staging)` is the whole
/// per-representation surface — accounting, embedding staging, timing, and
/// PCIe modeling exist once.
template <typename StageAdjacency>
PackedSubgraph pack_batch_impl(i64 adj_bytes, const StackedBitTensor& embeddings,
                               StagingBuffer& staging, const PcieModel& pcie,
                               StageAdjacency&& stage_adjacency) {
  PackedSubgraph out;
  out.adjacency_bytes = adj_bytes;
  out.embedding_bytes = embeddings.bytes();
  out.total_bytes = out.adjacency_bytes + out.embedding_bytes;
  out.transfers = 1;

  // The transfer-layer span: measured staging memcpy as the duration, the
  // modelled PCIe wire time attached as a typed arg (wire time is modelled,
  // not wall time, so it must not occupy trace real estate).
  obs::SpanScope span("transfer", "pack",
                      {{"bytes", out.total_bytes},
                       {"adj_bytes", out.adjacency_bytes}});
  Timer t;
  staging.clear();
  staging.reserve(out.total_bytes);
  stage_adjacency(staging);
  for (int b = 0; b < embeddings.bits(); ++b) {
    staging.stage(embeddings.plane(b).data(), embeddings.plane(b).bytes());
  }
  out.staging_seconds = t.seconds();
  out.modeled_seconds = pcie.transfer_seconds(out.total_bytes);
  span.arg("wire_ns", static_cast<i64>(out.modeled_seconds * 1e9));
  return out;
}

}  // namespace

PackedSubgraph pack_batch(const BitMatrix& adjacency,
                          const StackedBitTensor& embeddings,
                          StagingBuffer& staging, const PcieModel& pcie) {
  return pack_batch_impl(adjacency.bytes(), embeddings, staging, pcie,
                         [&](StagingBuffer& s) {
                           s.stage(adjacency.data(), adjacency.bytes());
                         });
}

PackedSubgraph pack_batch_tiles(const TileSparseBitMatrix& adjacency,
                                const StackedBitTensor& embeddings,
                                StagingBuffer& staging, const PcieModel& pcie) {
  // adjacency.bytes() = payload + u32 indices/offsets.
  return pack_batch_impl(
      adjacency.bytes(), embeddings, staging, pcie, [&](StagingBuffer& s) {
        s.stage(adjacency.payload_data(), adjacency.payload_bytes());
        s.stage(adjacency.col_idx_data(),
                adjacency.nnz_tiles() * static_cast<i64>(sizeof(u32)));
        s.stage(adjacency.row_ptr_data(),
                (adjacency.tiles_m() + 1) * static_cast<i64>(sizeof(u32)));
      });
}

PackedSubgraph dense_fp32_baseline(i64 num_nodes, i64 feature_dim,
                                   const PcieModel& pcie) {
  PackedSubgraph out;
  out.adjacency_bytes = num_nodes * num_nodes * static_cast<i64>(sizeof(float));
  out.embedding_bytes = num_nodes * feature_dim * static_cast<i64>(sizeof(float));
  out.total_bytes = out.adjacency_bytes + out.embedding_bytes;
  out.transfers = 2;  // adjacency and embeddings move separately (§4.6)
  out.staging_seconds = 0.0;
  out.modeled_seconds = pcie.transfer_seconds(out.adjacency_bytes) +
                        pcie.transfer_seconds(out.embedding_bytes);
  return out;
}

}  // namespace qgtc::transfer
