#include "transfer/packing.hpp"

#include "common/timer.hpp"

namespace qgtc::transfer {

PackedSubgraph pack_batch(const BitMatrix& adjacency,
                          const StackedBitTensor& embeddings,
                          StagingBuffer& staging, const PcieModel& pcie) {
  PackedSubgraph out;
  out.adjacency_bytes = adjacency.bytes();
  out.embedding_bytes = embeddings.bytes();
  out.total_bytes = out.adjacency_bytes + out.embedding_bytes;
  out.transfers = 1;

  Timer t;
  staging.clear();
  staging.reserve(out.total_bytes);
  staging.stage(adjacency.data(), adjacency.bytes());
  for (int b = 0; b < embeddings.bits(); ++b) {
    staging.stage(embeddings.plane(b).data(), embeddings.plane(b).bytes());
  }
  out.staging_seconds = t.seconds();
  out.modeled_seconds = pcie.transfer_seconds(out.total_bytes);
  return out;
}

PackedSubgraph dense_fp32_baseline(i64 num_nodes, i64 feature_dim,
                                   const PcieModel& pcie) {
  PackedSubgraph out;
  out.adjacency_bytes = num_nodes * num_nodes * static_cast<i64>(sizeof(float));
  out.embedding_bytes = num_nodes * feature_dim * static_cast<i64>(sizeof(float));
  out.total_bytes = out.adjacency_bytes + out.embedding_bytes;
  out.transfers = 2;  // adjacency and embeddings move separately (§4.6)
  out.staging_seconds = 0.0;
  out.modeled_seconds = pcie.transfer_seconds(out.adjacency_bytes) +
                        pcie.transfer_seconds(out.embedding_bytes);
  return out;
}

}  // namespace qgtc::transfer
