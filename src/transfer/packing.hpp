// Bandwidth-optimised subgraph packing (paper §4.6): instead of shipping the
// dense fp32 adjacency and a separate fp32 embedding transfer, the packed
// 1-bit adjacency and the low-bit embedding planes are compressed into one
// compound memory object (the torch `register_buffer` trick) and moved in a
// single transfer.
#pragma once

#include "bittensor/stacked.hpp"
#include "bittensor/tile_sparse.hpp"
#include "transfer/pcie.hpp"

namespace qgtc::transfer {

struct PackedSubgraph {
  i64 total_bytes = 0;
  i64 adjacency_bytes = 0;
  i64 embedding_bytes = 0;
  int transfers = 1;           // the compound object moves as one transfer
  double modeled_seconds = 0;  // PCIe model wire time
  double staging_seconds = 0;  // measured memcpy time into the compound object
};

/// Packs a batch (binary adjacency + quantized embedding planes) into one
/// compound staging buffer and reports byte/time accounting.
PackedSubgraph pack_batch(const BitMatrix& adjacency,
                          const StackedBitTensor& embeddings,
                          StagingBuffer& staging, const PcieModel& pcie);

/// Tile-sparse variant: ships only the stored tile payloads plus their u32
/// column indices and row offsets, so `adjacency_bytes` shrinks from the
/// dense plane (pad8(N) * pad128(N) / 8) to
///   nnz_tiles * 128 + (nnz_tiles + tiles_m + 1) * 4
/// — ~the nonzero-tile ratio of the dense footprint (§4.6 accounting on the
/// true nonzero working set).
PackedSubgraph pack_batch_tiles(const TileSparseBitMatrix& adjacency,
                                const StackedBitTensor& embeddings,
                                StagingBuffer& staging, const PcieModel& pcie);

/// Baseline accounting (paper's "basic approach"): dense fp32 adjacency plus
/// a standalone fp32 embedding transfer (two transfers, two latencies).
PackedSubgraph dense_fp32_baseline(i64 num_nodes, i64 feature_dim,
                                   const PcieModel& pcie);

/// Accounting for a batch whose prepared payload is already device-resident
/// (a BatchCache hit — the GPU-resident-reuse substitute, see DESIGN.md):
/// nothing crosses the wire, no staging copy, zero transfers. The streaming
/// executor recognises `transfers == 0` and counts the batch as reused.
inline PackedSubgraph resident_reuse() {
  PackedSubgraph p;
  p.transfers = 0;
  return p;
}

}  // namespace qgtc::transfer
