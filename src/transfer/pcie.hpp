// PCIe transfer model (paper §4.6). There is no discrete GPU in this
// environment, so host->device traffic is modelled explicitly: payloads are
// staged through a contiguous buffer (a real, measured memcpy — the pinned-
// buffer pack step) and the wire time is computed from the PCIe 4.0 x16
// envelope the paper cites (32 GB/s) plus a fixed per-transfer latency.
// Figure-level conclusions only depend on bytes moved and transfer count,
// both of which are exact.
#pragma once

#include <span>

#include "common/matrix.hpp"

namespace qgtc::transfer {

struct PcieModel {
  double bandwidth_gbps = 32.0;  // PCIe 4.0 x16 (paper §4.6)
  double latency_us = 10.0;      // per-transfer initiation cost

  /// Modelled wire seconds for one transfer of `bytes`.
  [[nodiscard]] double transfer_seconds(i64 bytes) const {
    return latency_us * 1e-6 +
           static_cast<double>(bytes) / (bandwidth_gbps * 1e9);
  }
};

/// A staging buffer standing in for pinned host memory. `stage()` appends a
/// payload with a measured memcpy and returns its offset. `clear()` keeps
/// the allocation, so a reused slot reaches steady-state capacity after one
/// epoch and never reallocates again (the pinned-buffer reuse discipline).
class StagingBuffer {
 public:
  void reserve(i64 bytes) { data_.reserve(static_cast<std::size_t>(bytes)); }
  i64 stage(const void* src, i64 bytes);
  void clear() { data_.clear(); }
  [[nodiscard]] i64 bytes() const { return static_cast<i64>(data_.size()); }
  /// Allocation high-water of this slot (resident even when cleared).
  [[nodiscard]] i64 capacity_bytes() const {
    return static_cast<i64>(data_.capacity());
  }
  [[nodiscard]] const u8* data() const { return data_.data(); }

 private:
  AlignedVector<u8> data_;
};

/// A fixed ring of staging slots — the double-buffered pinned host memory of
/// a copy/compute overlap scheme (§4.6 deployed as a pipeline): while slot i
/// is "on the wire", slot i+1 is being packed. Slots retain their capacity
/// across reuse, so peak staging memory is `slots * max_packed_batch`, not
/// O(epoch).
class StagingRing {
 public:
  explicit StagingRing(int slots = 2) : slots_(static_cast<std::size_t>(slots)) {
    QGTC_CHECK(slots >= 1, "staging ring needs at least one slot");
  }

  /// Next slot in round-robin order, cleared and ready to pack into.
  StagingBuffer& next() {
    StagingBuffer& slot = slots_[cur_];
    cur_ = (cur_ + 1) % slots_.size();
    slot.clear();
    return slot;
  }

  [[nodiscard]] int slots() const { return static_cast<int>(slots_.size()); }
  /// Total resident staging allocation across all slots.
  [[nodiscard]] i64 capacity_bytes() const {
    i64 total = 0;
    for (const StagingBuffer& s : slots_) total += s.capacity_bytes();
    return total;
  }

 private:
  std::vector<StagingBuffer> slots_;
  std::size_t cur_ = 0;
};

}  // namespace qgtc::transfer
