// PCIe transfer model (paper §4.6). There is no discrete GPU in this
// environment, so host->device traffic is modelled explicitly: payloads are
// staged through a contiguous buffer (a real, measured memcpy — the pinned-
// buffer pack step) and the wire time is computed from the PCIe 4.0 x16
// envelope the paper cites (32 GB/s) plus a fixed per-transfer latency.
// Figure-level conclusions only depend on bytes moved and transfer count,
// both of which are exact.
#pragma once

#include <span>

#include "common/matrix.hpp"

namespace qgtc::transfer {

struct PcieModel {
  double bandwidth_gbps = 32.0;  // PCIe 4.0 x16 (paper §4.6)
  double latency_us = 10.0;      // per-transfer initiation cost

  /// Modelled wire seconds for one transfer of `bytes`.
  [[nodiscard]] double transfer_seconds(i64 bytes) const {
    return latency_us * 1e-6 +
           static_cast<double>(bytes) / (bandwidth_gbps * 1e9);
  }
};

/// A staging buffer standing in for pinned host memory. `stage()` appends a
/// payload with a measured memcpy and returns its offset.
class StagingBuffer {
 public:
  void reserve(i64 bytes) { data_.reserve(static_cast<std::size_t>(bytes)); }
  i64 stage(const void* src, i64 bytes);
  void clear() { data_.clear(); }
  [[nodiscard]] i64 bytes() const { return static_cast<i64>(data_.size()); }
  [[nodiscard]] const u8* data() const { return data_.data(); }

 private:
  AlignedVector<u8> data_;
};

}  // namespace qgtc::transfer
