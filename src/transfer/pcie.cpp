#include "transfer/pcie.hpp"

#include <cstring>

namespace qgtc::transfer {

i64 StagingBuffer::stage(const void* src, i64 bytes) {
  const i64 offset = static_cast<i64>(data_.size());
  if (bytes > 0) {
    data_.resize(static_cast<std::size_t>(offset + bytes));
    std::memcpy(data_.data() + offset, src, static_cast<std::size_t>(bytes));
  }
  return offset;
}

}  // namespace qgtc::transfer
