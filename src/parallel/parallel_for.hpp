// Thin OpenMP wrappers. All kernel-level parallelism in the repo goes through
// these helpers so scheduling policy and thread-count control live in one
// place (see /opt guides: OpenMP worksharing idioms).
#pragma once

#include <omp.h>

#include "common/defs.hpp"

namespace qgtc {

/// Number of worker threads the parallel runtime will use.
inline int num_threads() { return omp_get_max_threads(); }

/// Override the worker count (propagates to subsequent parallel regions).
inline void set_num_threads(int n) { omp_set_num_threads(n); }

/// Iteration count below which spawning a parallel region costs more than it
/// saves; such loops run serially in the calling thread.
inline constexpr i64 kSerialCutoff = 16;

/// Statically-scheduled parallel loop over [begin, end). Use when iterations
/// have uniform cost (dense tile sweeps). Small ranges run serially — the
/// batched-GNN pipeline issues thousands of small kernels per epoch and
/// region-spawn overhead would dominate (same reason GPU kernels fuse).
template <typename Fn>
void parallel_for(i64 begin, i64 end, Fn&& fn) {
  if (end - begin < kSerialCutoff) {
    for (i64 i = begin; i < end; ++i) fn(i);
    return;
  }
#pragma omp parallel for schedule(static)
  for (i64 i = begin; i < end; ++i) fn(i);
}

/// Dynamically-scheduled parallel loop with a chunk size. Use when iteration
/// cost is irregular (zero-tile jumping makes row-block cost data-dependent).
template <typename Fn>
void parallel_for_dynamic(i64 begin, i64 end, i64 chunk, Fn&& fn) {
  if (end - begin < kSerialCutoff) {
    for (i64 i = begin; i < end; ++i) fn(i);
    return;
  }
#pragma omp parallel for schedule(dynamic, 1)
  for (i64 c = begin; c < end; c += chunk) {
    const i64 hi = (c + chunk < end) ? c + chunk : end;
    for (i64 i = c; i < hi; ++i) fn(i);
  }
}

/// Parallel sum-reduction of fn(i) over [begin, end).
template <typename Fn>
double parallel_reduce_sum(i64 begin, i64 end, Fn&& fn) {
  double acc = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : acc)
  for (i64 i = begin; i < end; ++i) acc += fn(i);
  return acc;
}

}  // namespace qgtc
