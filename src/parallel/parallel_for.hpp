// Thin OpenMP wrappers. All kernel-level parallelism in the repo goes through
// these helpers so scheduling policy and thread-count control live in one
// place (see /opt guides: OpenMP worksharing idioms).
#pragma once

#include <omp.h>

#include "common/defs.hpp"

namespace qgtc {

/// Number of worker threads the parallel runtime will use.
inline int num_threads() { return omp_get_max_threads(); }

/// Override the worker count (propagates to subsequent parallel regions).
inline void set_num_threads(int n) { omp_set_num_threads(n); }

/// Iteration count below which spawning a parallel region costs more than it
/// saves; such loops run serially in the calling thread.
inline constexpr i64 kSerialCutoff = 16;

/// Statically-scheduled parallel loop over [begin, end). Use when iterations
/// have uniform cost (dense tile sweeps). Small ranges run serially — the
/// batched-GNN pipeline issues thousands of small kernels per epoch and
/// region-spawn overhead would dominate (same reason GPU kernels fuse).
template <typename Fn>
void parallel_for(i64 begin, i64 end, Fn&& fn) {
  if (end - begin < kSerialCutoff) {
    for (i64 i = begin; i < end; ++i) fn(i);
    return;
  }
#pragma omp parallel for schedule(static)
  for (i64 i = begin; i < end; ++i) fn(i);
}

/// Dynamically-scheduled parallel loop with a chunk size. Use when iteration
/// cost is irregular (zero-tile jumping makes row-block cost data-dependent).
/// The chunk is the unit of scheduled work: workers grab one chunk of
/// `chunk` consecutive iterations at a time, and the serial cutoff counts
/// chunks (too few chunks cannot amortise a region spawn, however many raw
/// iterations they contain).
template <typename Fn>
void parallel_for_dynamic(i64 begin, i64 end, i64 chunk, Fn&& fn) {
  if (chunk < 1) chunk = 1;
  const i64 chunks = ceil_div(end - begin, chunk);
  if (chunks < kSerialCutoff) {
    for (i64 i = begin; i < end; ++i) fn(i);
    return;
  }
#pragma omp parallel for schedule(dynamic, 1)
  for (i64 ci = 0; ci < chunks; ++ci) {
    const i64 lo = begin + ci * chunk;
    const i64 hi = (lo + chunk < end) ? lo + chunk : end;
    for (i64 i = lo; i < hi; ++i) fn(i);
  }
}

/// Dynamically-scheduled loop over [begin, end) with an explicit worker
/// count; the body receives (iteration, worker) where worker is in
/// [0, threads). The engine's inter-batch parallelism: each worker owns a
/// per-worker ExecutionContext, so worker indices must be dense and bounded.
/// threads <= 1 runs serially in the caller (worker 0).
template <typename Fn>
void parallel_for_workers(i64 begin, i64 end, int threads, Fn&& fn) {
  // Respect the global OpenMP cap: an explicit num_threads clause would
  // otherwise override OMP_NUM_THREADS, and e.g. TSan runs rely on
  // OMP_NUM_THREADS=1 serialising every OpenMP layer.
  if (threads > omp_get_max_threads()) threads = omp_get_max_threads();
  if (threads <= 1 || end - begin <= 1) {
    for (i64 i = begin; i < end; ++i) fn(i, 0);
    return;
  }
#pragma omp parallel for schedule(dynamic, 1) num_threads(threads)
  for (i64 i = begin; i < end; ++i) fn(i, omp_get_thread_num());
}

/// Parallel sum-reduction of fn(i) over [begin, end).
template <typename Fn>
double parallel_reduce_sum(i64 begin, i64 end, Fn&& fn) {
  double acc = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : acc)
  for (i64 i = begin; i < end; ++i) acc += fn(i);
  return acc;
}

}  // namespace qgtc
