#include "parallel/affinity.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace qgtc::affinity {

std::vector<int> parse_cpulist(const std::string& list) {
  std::vector<int> cpus;
  std::size_t pos = 0;
  while (pos < list.size()) {
    std::size_t end = list.find(',', pos);
    if (end == std::string::npos) end = list.size();
    const std::string tok = list.substr(pos, end - pos);
    pos = end + 1;
    if (tok.empty()) continue;
    const std::size_t dash = tok.find('-');
    char* rest = nullptr;
    if (dash == std::string::npos) {
      const long v = std::strtol(tok.c_str(), &rest, 10);
      if (rest != tok.c_str() && v >= 0) cpus.push_back(static_cast<int>(v));
    } else {
      const long lo = std::strtol(tok.substr(0, dash).c_str(), &rest, 10);
      const bool lo_ok = rest != nullptr && *rest == '\0';
      const long hi = std::strtol(tok.substr(dash + 1).c_str(), &rest, 10);
      const bool hi_ok = rest != nullptr && *rest == '\0';
      if (lo_ok && hi_ok && lo >= 0 && hi >= lo) {
        for (long v = lo; v <= hi; ++v) cpus.push_back(static_cast<int>(v));
      }
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

namespace {

/// The single-node fallback: every CPU this process can see, on node 0.
Topology fallback_topology() {
  Topology topo;
  topo.from_sysfs = false;
  NumaNode node;
  node.id = 0;
  node.cpus = current_thread_cpus();
  if (node.cpus.empty()) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    for (unsigned c = 0; c < hw; ++c) node.cpus.push_back(static_cast<int>(c));
  }
  topo.nodes.push_back(std::move(node));
  return topo;
}

}  // namespace

Topology detect_topology(const std::string& sysfs_root) {
  Topology topo;
  topo.from_sysfs = true;
  // Node ids are contiguous on every Linux we care about; a gap ends the
  // scan, and an empty scan means "no sysfs topology here" — fall back.
  for (int n = 0;; ++n) {
    std::ifstream in(sysfs_root + "/node" + std::to_string(n) + "/cpulist");
    if (!in) break;
    std::string list;
    std::getline(in, list);
    NumaNode node;
    node.id = n;
    node.cpus = parse_cpulist(list);
    if (!node.cpus.empty()) topo.nodes.push_back(std::move(node));
  }
  if (topo.nodes.empty()) return fallback_topology();
  return topo;
}

std::vector<int> current_thread_cpus() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) != 0) return {};
  std::vector<int> cpus;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (CPU_ISSET(c, &set)) cpus.push_back(c);
  }
  return cpus;
#else
  return {};
#endif
}

bool pin_current_thread(const std::vector<int>& cpus) {
  if (cpus.empty()) return false;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) CPU_SET(c, &set);
  }
  if (CPU_COUNT(&set) == 0) return false;
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  return false;
#endif
}

std::vector<std::vector<int>> shard_cpu_slices(const Topology& topo,
                                               int shards) {
  QGTC_CHECK(shards >= 1, "shard count must be >= 1");
  std::vector<std::vector<int>> slices(static_cast<std::size_t>(shards));
  const int nodes = topo.num_nodes();
  if (nodes == 0) {
    // Degenerate topology: every shard gets an empty slice (pin no-ops).
    return slices;
  }
  if (nodes > 1) {
    // One shard per socket; extra shards wrap around (documented
    // oversubscription — still the right memory locality).
    for (int s = 0; s < shards; ++s) {
      slices[static_cast<std::size_t>(s)] =
          topo.nodes[static_cast<std::size_t>(s % nodes)].cpus;
    }
    return slices;
  }
  // Single node: contiguous slices, so sibling shards' worker teams do not
  // migrate across each other's caches. shards > cpus wraps round-robin.
  const std::vector<int>& cpus = topo.nodes[0].cpus;
  const int n = static_cast<int>(cpus.size());
  if (shards >= n) {
    for (int s = 0; s < shards; ++s) {
      slices[static_cast<std::size_t>(s)].push_back(cpus[static_cast<std::size_t>(s % n)]);
    }
    return slices;
  }
  const int base = n / shards;
  const int extra = n % shards;
  int cursor = 0;
  for (int s = 0; s < shards; ++s) {
    const int take = base + (s < extra ? 1 : 0);
    for (int i = 0; i < take; ++i) {
      slices[static_cast<std::size_t>(s)].push_back(cpus[static_cast<std::size_t>(cursor++)]);
    }
  }
  return slices;
}

}  // namespace qgtc::affinity
