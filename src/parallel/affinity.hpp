// CPU / NUMA-node affinity helpers for the sharded engine. A shard's worker
// threads want to run on the socket that owns the shard's memory; everything
// here degrades to an explicit no-op when the host cannot express that
// (containers with restricted cpusets, kernels without sysfs topology,
// non-Linux platforms) — pinning is advisory, never load-bearing for
// correctness, and callers must treat a `false` return as "ran unpinned".
#pragma once

#include <string>
#include <vector>

#include "common/defs.hpp"

namespace qgtc::affinity {

/// One NUMA node's online CPUs, in ascending order.
struct NumaNode {
  int id = 0;
  std::vector<int> cpus;
};

/// Host topology: the NUMA nodes and their CPU lists. `from_sysfs` is false
/// when the sysfs node directory was absent or unreadable and the topology
/// is the single-node fallback (every CPU the process can see on node 0).
struct Topology {
  std::vector<NumaNode> nodes;
  bool from_sysfs = false;

  [[nodiscard]] int num_nodes() const { return static_cast<int>(nodes.size()); }
  [[nodiscard]] int total_cpus() const {
    int n = 0;
    for (const NumaNode& node : nodes) n += static_cast<int>(node.cpus.size());
    return n;
  }
};

/// Parses a Linux cpulist string ("0-3,8,10-11") into the explicit CPU ids.
/// Malformed ranges are skipped rather than thrown — sysfs content is not
/// under our control and a parse failure must degrade, not abort.
std::vector<int> parse_cpulist(const std::string& list);

/// Reads the NUMA topology from `sysfs_root` (default the real sysfs node
/// directory; tests point it at a fixture or a nonexistent path to exercise
/// the fallback). Always returns at least one node with at least one CPU.
Topology detect_topology(
    const std::string& sysfs_root = "/sys/devices/system/node");

/// CPUs the calling thread is currently allowed to run on; empty when the
/// platform cannot report it (the fallback-path signal).
std::vector<int> current_thread_cpus();

/// Pins the calling thread to `cpus`. Returns false — leaving the thread
/// untouched — when `cpus` is empty, the platform has no sched_setaffinity,
/// or the kernel rejects the mask (e.g. a container cpuset excludes every
/// requested CPU). OpenMP worker threads spawned by this thread after a
/// successful pin inherit the mask, so pinning a shard's root thread before
/// its first parallel region covers its whole team.
bool pin_current_thread(const std::vector<int>& cpus);

/// Distributes `shards` across the topology: with several NUMA nodes, shard
/// i gets node (i % nodes)'s CPU list (one shard per socket until shards
/// outnumber sockets); with one node, the CPUs are split into `shards`
/// contiguous slices so co-located shards do not oversubscribe each other.
/// Every returned slice is non-empty.
std::vector<std::vector<int>> shard_cpu_slices(const Topology& topo,
                                               int shards);

}  // namespace qgtc::affinity
