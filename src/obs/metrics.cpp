#include "obs/metrics.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace qgtc::obs {

int Histogram::bucket_index(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) return 0;  // <=0 / NaN: lowest bucket
  int exp = 0;
  // frexp: v = frac * 2^exp with frac in [0.5, 1) -> value lies in octave
  // [2^(exp-1), 2^exp); sub-bucket from the fraction's position in [0.5, 1).
  const double frac = std::frexp(v, &exp);
  const int octave = exp - 1 - kMinExp;
  if (octave < 0) return 0;
  if (octave >= kMaxExp - kMinExp) return kBuckets - 1;
  int sub = static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return octave * kSubBuckets + sub;
}

double Histogram::bucket_mid(int b) {
  const int octave = b / kSubBuckets;
  const int sub = b % kSubBuckets;
  // Sub-buckets are *linear* in the mantissa: bucket b spans mantissas
  // [0.5 + sub/(2S), 0.5 + (sub+1)/(2S)). The geometric midpoint minimises
  // the worst-case relative error, which peaks at the octave bottom:
  // sqrt(1 + 1/S) - 1.
  const double lo_frac =
      0.5 + static_cast<double>(sub) / (2.0 * kSubBuckets);
  const double hi_frac =
      0.5 + static_cast<double>(sub + 1) / (2.0 * kSubBuckets);
  return std::ldexp(std::sqrt(lo_frac * hi_frac), kMinExp + octave + 1);
}

double Histogram::quantile(double q) const {
  QGTC_CHECK(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  const i64 n = count();
  if (n == 0) return 0.0;
  // Same rank convention as core::percentile's closest-rank floor, so the
  // two reductions are comparable in the error-bound test.
  const i64 rank = static_cast<i64>(q * static_cast<double>(n - 1));
  i64 seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen > rank) return bucket_mid(b);
  }
  return bucket_mid(kBuckets - 1);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked on exit
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

namespace {
std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(6) << v;
  return os.str();
}
}  // namespace

void MetricsRegistry::print(std::ostream& os) const {
  std::lock_guard lock(mu_);
  os << "-- metrics --\n";
  for (const auto& [name, c] : counters_) {
    os << "  counter   " << name << " = " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "  gauge     " << name << " = " << fmt(g->value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << "  histogram " << name << " count=" << h->count();
    if (h->count() > 0) {
      os << " mean=" << fmt(h->mean()) << " p50=" << fmt(h->quantile(0.5))
         << " p99=" << fmt(h->quantile(0.99))
         << " p999=" << fmt(h->quantile(0.999));
    }
    os << "\n";
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard lock(mu_);
  const auto key = [](const std::string& s) { return "\"" + s + "\""; };
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ", ") << key(name) << ": " << c->value();
    first = false;
  }
  os << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ", ") << key(name) << ": " << fmt(g->value());
    first = false;
  }
  os << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ", ") << key(name) << ": {\"count\": " << h->count()
       << ", \"mean\": " << fmt(h->mean())
       << ", \"p50\": " << fmt(h->quantile(0.5))
       << ", \"p99\": " << fmt(h->quantile(0.99))
       << ", \"p999\": " << fmt(h->quantile(0.999)) << "}";
    first = false;
  }
  os << "}\n}\n";
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace qgtc::obs
