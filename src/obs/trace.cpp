#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

namespace qgtc::obs {

namespace {

std::chrono::steady_clock::time_point trace_epoch() {
  // One fixed epoch per process so every thread's timestamps share a base.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

// Touch the epoch at static-init time so the first span doesn't pay for it
// (and timestamps stay small relative to process start).
const std::chrono::steady_clock::time_point kEpochInit = trace_epoch();

}  // namespace

SpanSink& SpanSink::instance() {
  static SpanSink* sink = new SpanSink();  // leaked: outlives exiting threads
  return *sink;
}

u64 SpanSink::now_ns() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - trace_epoch())
                              .count());
}

SpanSink::ThreadBuffer& SpanSink::local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf;
  if (!buf) {
    buf = std::make_shared<ThreadBuffer>();
    buf->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(registry_mu_);
    buffers_.push_back(buf);
  }
  return *buf;
}

void SpanSink::record(const Span& span) {
  ThreadBuffer& buf = local_buffer();
  Chunk* chunk = buf.current;
  if (chunk == nullptr ||
      chunk->used.load(std::memory_order_relaxed) >= kChunkSpans) {
    // Cold path, ~once per kChunkSpans spans: append a chunk under the
    // per-thread mutex (the only thing an exporter contends on).
    auto fresh = std::make_unique<Chunk>();
    chunk = fresh.get();
    std::lock_guard lock(buf.chunks_mu);
    buf.chunks.push_back(std::move(fresh));
    buf.current = chunk;
  }
  // Hot path: only the owner thread writes `used`, so a relaxed read of our
  // own last store is exact, and the release store commits the span for
  // concurrent exporters.
  const u32 slot = chunk->used.load(std::memory_order_relaxed);
  chunk->spans[slot] = span;
  chunk->spans[slot].tid = buf.tid;
  chunk->used.store(slot + 1, std::memory_order_release);
}

std::vector<Span> SpanSink::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> bufs;
  {
    std::lock_guard lock(registry_mu_);
    bufs = buffers_;
  }
  std::vector<Span> out;
  for (const auto& buf : bufs) {
    std::lock_guard lock(buf->chunks_mu);
    for (const auto& chunk : buf->chunks) {
      const u32 used = chunk->used.load(std::memory_order_acquire);
      out.insert(out.end(), chunk->spans, chunk->spans + used);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Span& a, const Span& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

i64 SpanSink::span_count() const {
  std::lock_guard lock(registry_mu_);
  i64 n = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard chunk_lock(buf->chunks_mu);
    for (const auto& chunk : buf->chunks) {
      n += chunk->used.load(std::memory_order_acquire);
    }
  }
  return n;
}

void SpanSink::clear() {
  std::lock_guard lock(registry_mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard chunk_lock(buf->chunks_mu);
    buf->chunks.clear();
    buf->current = nullptr;  // quiescent emitters: safe to reset owner cache
  }
}

namespace {

/// Microseconds with nanosecond precision — Chrome trace "ts"/"dur" units.
std::string us_str(u64 ns) {
  std::ostringstream os;
  os << ns / 1000 << '.' << static_cast<char>('0' + (ns / 100) % 10)
     << static_cast<char>('0' + (ns / 10) % 10)
     << static_cast<char>('0' + ns % 10);
  return os.str();
}

}  // namespace

void SpanSink::export_chrome_trace(std::ostream& os) const {
  const std::vector<Span> spans = snapshot();
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    os << "  {\"ph\": \"X\", \"pid\": 1, \"tid\": " << s.tid << ", \"cat\": \""
       << s.category << "\", \"name\": \"" << s.name
       << "\", \"ts\": " << us_str(s.start_ns)
       << ", \"dur\": " << us_str(s.dur_ns);
    if (s.nargs > 0) {
      os << ", \"args\": {";
      for (u32 a = 0; a < s.nargs; ++a) {
        os << (a ? ", " : "") << '"' << s.args[a].key
           << "\": " << s.args[a].value;
      }
      os << '}';
    }
    os << '}' << (i + 1 < spans.size() ? ",\n" : "\n");
  }
  os << "]}\n";
}

bool SpanSink::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "SpanSink: cannot write " << path << "\n";
    return false;
  }
  export_chrome_trace(out);
  return out.good();
}

void emit_span(const char* category, const char* name, u64 start_ns,
               u64 dur_ns, std::initializer_list<SpanArg> args) {
  SpanSink& sink = SpanSink::instance();
  if (!sink.enabled()) return;
  Span s;
  s.category = category;
  s.name = name;
  s.start_ns = start_ns;
  s.dur_ns = dur_ns;
  for (const SpanArg& a : args) {
    if (s.nargs < static_cast<u32>(kMaxSpanArgs)) s.args[s.nargs++] = a;
  }
  sink.record(s);
}

}  // namespace qgtc::obs
