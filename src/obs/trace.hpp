// Always-on span tracing (the CUPTI/Nsight-range substitute — see the
// DESIGN.md substitution table): every pipeline stage body, queue wait,
// request lifecycle and transfer pack emits a `Span` into a per-thread
// buffer, exportable as Chrome trace-event / Perfetto-compatible JSON
// (chrome://tracing, ui.perfetto.dev).
//
// Cost model:
//
// * **Disabled** (default): one relaxed atomic load + branch per QGTC_SPAN —
//   tracing compiled in everywhere is a branch, not a tax. Bit-identity of
//   logits and substrate counters is guaranteed by construction (the tracer
//   never touches compute state) and pinned by tests/test_obs.cpp.
// * **Enabled**: the emitting thread appends to its own chunked buffer. The
//   hot path takes no lock: spans are committed by a release store of the
//   chunk's `used` count (readers acquire-load it), and the only mutex is
//   per-thread and touched once per 1024 spans (chunk append) or when an
//   exporter walks the chunk list concurrently.
//
// Span names/categories/arg keys must be string literals (or otherwise
// outlive the sink) — the Span record stores the pointers, not copies.
#pragma once

#include <atomic>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/defs.hpp"

namespace qgtc::obs {

/// One typed span argument (e.g. {"batch", i} or {"bytes", n}).
struct SpanArg {
  const char* key;
  i64 value;
};

inline constexpr int kMaxSpanArgs = 3;

/// One completed span. POD: copied by value into the per-thread buffer.
struct Span {
  const char* category = "";  // trace-event "cat": prepare/ship/compute/...
  const char* name = "";      // trace-event "name"
  u64 start_ns = 0;           // since process trace epoch (steady clock)
  u64 dur_ns = 0;
  u32 tid = 0;  // sink-assigned emitting-thread id (stable per thread)
  u32 nargs = 0;
  SpanArg args[kMaxSpanArgs] = {};
};

/// Process-wide span collector. All methods are thread-safe except clear(),
/// which requires emitting threads to be quiescent (stopped pipelines) —
/// the exporter (snapshot / export_chrome_trace) may run concurrently with
/// emitters and sees every span committed before it started.
class SpanSink {
 public:
  static SpanSink& instance();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since the process trace epoch (steady clock) — the
  /// timestamp base every span uses.
  static u64 now_ns();

  /// Appends one completed span to the calling thread's buffer. Callers
  /// normally go through SpanScope / QGTC_SPAN or emit_span() instead.
  void record(const Span& span);

  /// Copies out every committed span (all threads), sorted by start_ns.
  [[nodiscard]] std::vector<Span> snapshot() const;

  /// Total committed spans across all threads.
  [[nodiscard]] i64 span_count() const;

  /// Chrome trace-event JSON ("traceEvents" array of "ph":"X" complete
  /// events, ts/dur in microseconds, sorted by ts) — loads in
  /// chrome://tracing and Perfetto.
  void export_chrome_trace(std::ostream& os) const;

  /// export_chrome_trace() to a file; false (with a stderr note) on I/O
  /// failure.
  bool write_chrome_trace(const std::string& path) const;

  /// Drops every recorded span (buffers keep their allocation). Emitting
  /// threads must be quiescent — call between runs, not during one.
  void clear();

 private:
  SpanSink() = default;

  static constexpr std::size_t kChunkSpans = 1024;
  struct Chunk {
    /// Committed span count: the owner thread release-stores it after
    /// writing spans[used]; readers acquire-load and read only [0, used).
    std::atomic<u32> used{0};
    Span spans[kChunkSpans];
  };
  struct ThreadBuffer {
    u32 tid = 0;
    /// Owner-thread cache of chunks.back() so the hot path never takes
    /// chunks_mu; reset by clear() (which requires emitter quiescence).
    Chunk* current = nullptr;
    /// Guards the chunk *list* (owner appends a chunk ~once per kChunkSpans
    /// spans; readers walk it) — never the span writes themselves.
    mutable std::mutex chunks_mu;
    std::vector<std::unique_ptr<Chunk>> chunks;
  };

  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::atomic<u32> next_tid_{1};
  mutable std::mutex registry_mu_;
  /// shared_ptr: buffers outlive their (possibly exited) emitting thread.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// Emits an already-timed span (start/duration measured by the caller — the
/// queue-stall and request-lifecycle paths, where the interval is known only
/// after the fact). No-op while tracing is disabled.
void emit_span(const char* category, const char* name, u64 start_ns,
               u64 dur_ns, std::initializer_list<SpanArg> args = {});

/// RAII span: records [construction, destruction) under (category, name)
/// when tracing is enabled. Extra args can be attached mid-scope via arg()
/// (e.g. result sizes known only after the work ran).
class SpanScope {
 public:
  SpanScope(const char* category, const char* name,
            std::initializer_list<SpanArg> args = {}) {
    if (!SpanSink::instance().enabled()) return;
    active_ = true;
    span_.category = category;
    span_.name = name;
    for (const SpanArg& a : args) {
      if (span_.nargs < kMaxSpanArgs) span_.args[span_.nargs++] = a;
    }
    span_.start_ns = SpanSink::now_ns();
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Attaches one more typed arg (ignored past kMaxSpanArgs, or disabled).
  void arg(const char* key, i64 value) {
    if (active_ && span_.nargs < kMaxSpanArgs) {
      span_.args[span_.nargs++] = SpanArg{key, value};
    }
  }

  ~SpanScope() {
    if (!active_) return;
    span_.dur_ns = SpanSink::now_ns() - span_.start_ns;
    SpanSink::instance().record(span_);
  }

 private:
  bool active_ = false;
  Span span_;
};

#define QGTC_SPAN_CONCAT2(a, b) a##b
#define QGTC_SPAN_CONCAT(a, b) QGTC_SPAN_CONCAT2(a, b)
/// QGTC_SPAN("category", "name"[, {{"key", i64}, ...}]): RAII span over the
/// enclosing scope. Disabled tracing costs one relaxed load + branch.
#define QGTC_SPAN(...) \
  ::qgtc::obs::SpanScope QGTC_SPAN_CONCAT(qgtc_span_, __LINE__)(__VA_ARGS__)

}  // namespace qgtc::obs
