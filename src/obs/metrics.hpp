// Named counter / gauge / histogram registry — the "metrics endpoint" half
// of the observability layer (spans are the other half, obs/trace.hpp).
//
// The histogram is fixed log2-bucket (HdrHistogram-style: 32 linear
// sub-buckets per power of two), so p50/p99/p99.9 come from a cumulative
// bucket walk without retaining samples — replacing the sort-a-copy
// `core::percentile` path on the serving hot loop. Reporting each bucket's
// geometric midpoint bounds the quantile relative error by the worst
// half-bucket, at the bottom of an octave:
//   |q_hist - q_exact| / q_exact  <=  sqrt(1 + 1/32) - 1  (~1.6%)
// for any value inside the bucketed range (pinned by tests/test_obs.cpp).
//
// All recording paths are lock-free (relaxed atomic adds); registry lookup
// takes a mutex, so callers on hot paths resolve their instruments once and
// keep the reference (references are stable for the registry's lifetime).
#pragma once

#include <atomic>
#include <cmath>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/defs.hpp"

namespace qgtc::obs {

/// Monotonic counter (events, bytes, batches).
class Counter {
 public:
  void add(i64 delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] i64 value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<i64> v_{0};
};

/// Last-write-wins instantaneous value (queue depth, resident bytes).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed log2-bucket histogram over positive doubles (latencies, sizes).
/// record() is wait-free: frexp + two relaxed atomic adds. Negative and zero
/// values clamp into the lowest bucket; values above the range clamp into
/// the highest (both far outside any latency/bytes series we record).
class Histogram {
 public:
  /// Linear sub-buckets per power of two: worst relative bucket width
  /// 1/32 ~ 3.1% (octave bottom), quantile error via the bucket geometric
  /// midpoint <= sqrt(1 + 1/32) - 1 ~ 1.6%.
  static constexpr int kSubBuckets = 32;
  /// Bucketed exponent range: [2^kMinExp, 2^kMaxExp) covers 1e-12 .. 1e12 —
  /// nanoseconds-to-hours in either seconds or milliseconds units.
  static constexpr int kMinExp = -40;
  static constexpr int kMaxExp = 40;
  static constexpr int kBuckets = (kMaxExp - kMinExp) * kSubBuckets;

  void record(double v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] i64 count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const {
    const i64 n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
  }

  /// The q-quantile (q in [0, 1]) as the geometric midpoint of the bucket
  /// holding the rank-floor(q*(n-1)) sample. 0 for an empty histogram.
  /// Monotone in q by construction.
  [[nodiscard]] double quantile(double q) const;

  /// p in [0, 100] — drop-in for the core::percentile call shape.
  [[nodiscard]] double percentile(double p) const { return quantile(p / 100.0); }

  void reset();

  /// Maps v to its bucket (exposed for the error-bound unit test).
  static int bucket_index(double v);
  /// Geometric midpoint of bucket b — the value quantile() reports.
  static double bucket_mid(int b);

 private:
  std::atomic<i64> buckets_[kBuckets] = {};
  std::atomic<i64> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Accumulated busy-vs-stall wall time of one pipeline stage (or one stage
/// worker): `busy` is time inside the stage body, `stall` is time blocked on
/// inter-stage queues — the decomposition every stage of the streaming
/// pipeline and the serving loop reports, and the signal the ROADMAP's
/// adaptive-depth / shard-rebalancing work consumes.
struct StageBreakdown {
  double busy_seconds = 0;
  double stall_seconds = 0;

  StageBreakdown& operator+=(const StageBreakdown& o) {
    busy_seconds += o.busy_seconds;
    stall_seconds += o.stall_seconds;
    return *this;
  }
  /// Stall share of the stage's total accounted time (0 when idle).
  [[nodiscard]] double stall_fraction() const {
    const double total = busy_seconds + stall_seconds;
    return total > 0 ? stall_seconds / total : 0.0;
  }
};

/// Process-wide named-instrument registry. Lookup is mutex-guarded and
/// returns stable references; recording through a resolved reference is
/// lock-free. Instruments live for the registry's lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Human-readable dump (name  value / count+mean+p50/p99/p999 rows),
  /// sorted by name. Skips never-touched instruments' empty quantiles.
  void print(std::ostream& os) const;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  void write_json(std::ostream& os) const;

  /// Zeroes every registered instrument (names stay registered) — bench and
  /// test isolation between phases.
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace qgtc::obs
