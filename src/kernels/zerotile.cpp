#include "kernels/zerotile.hpp"

#include "parallel/parallel_for.hpp"
#include "tcsim/wmma.hpp"

namespace qgtc {

i64 TileMap::nonzero_tiles() const {
  i64 n = 0;
  for (u8 f : nonzero) n += f;
  return n;
}

TileMap build_tile_map(const BitMatrix& a) {
  QGTC_CHECK(a.layout() == BitLayout::kRowMajorK,
             "tile maps are defined on the A-side (kRowMajorK) layout");
  TileMap map;
  map.tiles_m = a.padded_rows() / kTileM;
  map.tiles_k = a.padded_cols() / kTileK;
  map.nonzero.assign(static_cast<std::size_t>(map.tiles_m * map.tiles_k), 0);
  const i64 stride = a.k_words();
  parallel_for(0, map.tiles_m, [&](i64 tm) {
    const u32* block = a.row_words(tm * kTileM);
    for (i64 tk = 0; tk < map.tiles_k; ++tk) {
      const bool zero = tcsim::tile_is_zero(block + tk * kTileKWords, stride);
      map.nonzero[static_cast<std::size_t>(tm * map.tiles_k + tk)] =
          zero ? 0 : 1;
    }
  });
  return map;
}

}  // namespace qgtc
