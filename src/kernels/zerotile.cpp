#include "kernels/zerotile.hpp"

#include "parallel/parallel_for.hpp"
#include "tcsim/wmma.hpp"

namespace qgtc {

TileMap build_tile_map(const BitMatrix& a) {
  QGTC_CHECK(a.layout() == BitLayout::kRowMajorK,
             "tile maps are defined on the A-side (kRowMajorK) layout");
  TileMap map;
  map.tiles_m = a.padded_rows() / kTileM;
  map.tiles_k = a.padded_cols() / kTileK;
  map.nonzero.assign(static_cast<std::size_t>(map.tiles_m * map.tiles_k), 0);
  const i64 stride = a.k_words();
  parallel_for(0, map.tiles_m, [&](i64 tm) {
    const u32* block = a.row_words(tm * kTileM);
    for (i64 tk = 0; tk < map.tiles_k; ++tk) {
      const bool zero = tcsim::tile_is_zero(block + tk * kTileKWords, stride);
      map.nonzero[static_cast<std::size_t>(tm * map.tiles_k + tk)] =
          zero ? 0 : 1;
    }
  });
  i64 n = 0;
  for (const u8 f : map.nonzero) n += f;
  map.nonzero_count = n;
  return map;
}

TileMap build_tile_map(const TileSparseBitMatrix& a) {
  TileMap map;
  map.tiles_m = a.tiles_m();
  map.tiles_k = a.tiles_k();
  map.nonzero.assign(static_cast<std::size_t>(map.tiles_m * map.tiles_k), 0);
  for (i64 tm = 0; tm < map.tiles_m; ++tm) {
    for (i64 t = a.row_begin(tm); t < a.row_end(tm); ++t) {
      map.nonzero[static_cast<std::size_t>(tm * map.tiles_k + a.tile_col(t))] = 1;
    }
  }
  map.nonzero_count = a.nnz_tiles();
  return map;
}

}  // namespace qgtc
