#include "kernels/anybit_mm.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <cstring>

#include "parallel/parallel_for.hpp"

namespace qgtc {


void check_accumulator_bounds(i64 k, int s_bits, int t_bits) {
  const i64 max_val = k * ((i64{1} << s_bits) - 1) * ((i64{1} << t_bits) - 1);
  QGTC_CHECK(max_val <= i64{INT32_MAX},
             "K * (2^s-1) * (2^t-1) exceeds the int32 accumulator range; "
             "split K or reduce bitwidths");
}

int calibrate_rshift(i32 max_acc, int out_bits) {
  if (max_acc <= 0) return 0;
  const int bits_needed =
      32 - std::countl_zero(static_cast<u32>(max_acc));
  return bits_needed > out_bits ? bits_needed - out_bits : 0;
}

namespace {

/// Collect the plane pointers of a stacked tensor.
std::vector<const BitMatrix*> plane_ptrs(const StackedBitTensor& t) {
  std::vector<const BitMatrix*> p;
  p.reserve(static_cast<std::size_t>(t.bits()));
  for (int b = 0; b < t.bits(); ++b) p.push_back(&t.plane(b));
  return p;
}

/// True when the 8x128 tile (tm, tk) is zero in every A plane.
bool tile_zero_all_planes(const std::vector<const BitMatrix*>& ap, i64 tm,
                          i64 tk) {
  for (const BitMatrix* p : ap) {
    if (!tcsim::tile_is_zero(p->row_words(tm * kTileM) + tk * kTileKWords,
                             p->k_words())) {
      return false;
    }
  }
  return true;
}

/// Dense A-side tile source: one or more kRowMajorK bit planes whose
/// surviving tiles come from the §4.3 flag test (precomputed map or inline
/// OR+ballot). Tile handles are K-tile indices.
class DensePlanesSource {
 public:
  /// True when absent tiles are structurally skipped regardless of
  /// opt.zero_tile_jump (dense planes: no — the flag test gates skipping).
  static constexpr bool kStructural = false;

  explicit DensePlanesSource(std::vector<const BitMatrix*> ap)
      : ap_(std::move(ap)) {
    QGTC_CHECK(ap_.front()->layout() == BitLayout::kRowMajorK,
               "A planes must be kRowMajorK");
  }

  [[nodiscard]] i64 tiles_m() const { return ap_.front()->padded_rows() / kTileM; }
  [[nodiscard]] i64 tiles_k() const { return ap_.front()->padded_cols() / kTileK; }
  [[nodiscard]] i64 padded_k() const { return ap_.front()->padded_cols(); }
  [[nodiscard]] int planes() const { return static_cast<int>(ap_.size()); }

  /// Upper bound on row block tm's survivor count (dense: every K tile may
  /// survive the flag test).
  [[nodiscard]] i64 survivor_bound(i64) const { return tiles_k(); }

  /// Appends row block tm's surviving tile handles; returns the jump count.
  i64 survivors(i64 tm, const BmmOptions& opt, std::vector<i64>& list) const {
    i64 jumped = 0;
    for (i64 tk = 0; tk < tiles_k(); ++tk) {
      if (opt.zero_tile_jump) {
        const bool nz = (opt.tile_map != nullptr && planes() == 1)
                            ? opt.tile_map->is_nonzero(tm, tk)
                            : !tile_zero_all_planes(ap_, tm, tk);
        if (!nz) {
          ++jumped;
          continue;
        }
      }
      list.push_back(tk);
    }
    return jumped;
  }

  [[nodiscard]] i64 tile_col(i64 h) const { return h; }
  [[nodiscard]] const u32* tile_ptr(int plane, i64 tm, i64 h) const {
    const BitMatrix& p = *ap_[static_cast<std::size_t>(plane)];
    return p.row_words(tm * kTileM) + h * kTileKWords;
  }
  [[nodiscard]] i64 tile_stride(int plane) const {
    return ap_[static_cast<std::size_t>(plane)]->k_words();
  }

 private:
  std::vector<const BitMatrix*> ap_;
};

/// Structurally sparse A-side tile source: the tile-CSR adjacency. The
/// stored-tile range *is* the surviving list (no scan, no flags); handles
/// are payload indices, always single-plane (the adjacency is 1-bit).
class SparseAdjSource {
 public:
  static constexpr bool kStructural = true;

  explicit SparseAdjSource(const TileSparseBitMatrix& a) : a_(&a) {}

  [[nodiscard]] i64 tiles_m() const { return a_->tiles_m(); }
  [[nodiscard]] i64 tiles_k() const { return a_->tiles_k(); }
  [[nodiscard]] i64 padded_k() const { return a_->padded_cols(); }
  [[nodiscard]] int planes() const { return 1; }

  /// Exact: the tile-CSR already stores each row's schedule length.
  [[nodiscard]] i64 survivor_bound(i64 tm) const { return a_->row_nnz(tm); }

  i64 survivors(i64 tm, const BmmOptions&, std::vector<i64>& list) const {
    for (i64 t = a_->row_begin(tm); t < a_->row_end(tm); ++t) {
      list.push_back(t);
    }
    return a_->tiles_k() - a_->row_nnz(tm);
  }

  [[nodiscard]] i64 tile_col(i64 h) const { return a_->tile_col(h); }
  [[nodiscard]] const u32* tile_ptr(int, i64, i64 h) const {
    return a_->tile_words(h);
  }
  [[nodiscard]] i64 tile_stride(int) const { return kTileKWords; }

 private:
  const TileSparseBitMatrix* a_;
};

/// Single-pass any-bit tile sweep (the §4.4 cross-tile reduction generalised
/// to multi-bit A): for each output tile, every surviving K tile is decoded
/// once per A plane and multiplied against every B plane before moving on.
/// The A operand comes through a tile source (dense planes or the tile-CSR
/// adjacency), so flag-based and structural zero-tile jumping share this one
/// sweep. `consume(tm, tn, acc)` receives the finished tile's raw u64
/// accumulator lanes (backend-opaque layout) and drains them through one of
/// the backend flush variants — plain, epilogue, or plane-writer — so the
/// epilogue runs while the lanes are still hot and no intermediate i32 tile
/// is staged in the sweep itself. Tile ops execute on the context's
/// substrate backend; scratch comes from the per-thread workspace arena.
///
/// `parallel_over_n` selects the parallel axis: row-tile blocks when the
/// consumer writes row-owned data (int32 rows / kRowMajorK planes), and
/// column-tile blocks when it writes column-owned data (kColMajorK planes),
/// so plane words are never shared between threads.
template <typename Src, typename Consume>
void fused_tile_sweep(const Src& src, const std::vector<const BitMatrix*>& bp,
                      const BmmOptions& opt, bool parallel_over_n,
                      Consume&& consume) {
  const BitMatrix& b0 = *bp.front();
  QGTC_CHECK(b0.layout() == BitLayout::kColMajorK, "B planes must be kColMajorK");
  QGTC_CHECK(src.padded_k() == b0.padded_rows(),
             "padded K extents of A and B differ");
  QGTC_CHECK(!((opt.zero_tile_jump || Src::kStructural) &&
               opt.op == tcsim::BmmaOp::kXor),
             "zero-tile jumping is incompatible with the XOR combine");

  const tcsim::ExecutionContext& ctx = resolve_ctx(opt);
  const tcsim::SubstrateBackend& be = ctx.backend();
  const i64 tiles_m = src.tiles_m();
  const i64 tiles_n = b0.padded_cols() / kTileN;
  const int sa = src.planes();
  const int sb = static_cast<int>(bp.size());
  const bool use_xor = (opt.op == tcsim::BmmaOp::kXor);

  // Surviving tile handles per row block, shared across the N sweep (and
  // across threads when parallelising over N). The list-of-lists lives in
  // the calling thread's arena; inner threads only read it.
  std::vector<std::vector<i64>>& k_lists = ctx.workspace().k_lists(tiles_m);
  parallel_for(0, tiles_m, [&](i64 tm) {
    auto& list = k_lists[static_cast<std::size_t>(tm)];
    list.reserve(static_cast<std::size_t>(src.survivor_bound(tm)));
    const i64 jumped = src.survivors(tm, opt, list);
    if (jumped > 0) {
      tcsim::Counters delta;
      delta.tiles_jumped = static_cast<u64>(jumped);
      ctx.note(delta);
    }
  });

  if (parallel_over_n) {
    // ColMajorK consumers: parallel over output-column tiles. These products
    // are small (few column tiles), so the simple per-(tm, tn) path is fine.
    parallel_for_dynamic(0, tiles_n, /*chunk=*/1, [&](i64 tn) {
      u64* acc = ctx.workspace().acc_lanes(tcsim::kTileAccLanes);
      tcsim::AFragment frag;
      tcsim::Counters delta;
      for (i64 tm = 0; tm < tiles_m; ++tm) {
        std::memset(acc, 0, tcsim::kTileAccLanes * sizeof(u64));
        const auto& k_list = k_lists[static_cast<std::size_t>(tm)];
        for (const i64 h : k_list) {
          const i64 tk = src.tile_col(h);
          for (int ab = 0; ab < sa; ++ab) {
            be.load_a(frag, src.tile_ptr(ab, tm, h), src.tile_stride(ab));
            for (int bb = 0; bb < sb; ++bb) {
              const BitMatrix& pb = *bp[static_cast<std::size_t>(bb)];
              be.mma(acc, frag, pb.col_words(tn * kTileN) + tk * kTileKWords,
                     pb.k_words(), ab + bb, use_xor);
            }
          }
        }
        consume(tm, tn, static_cast<const u64*>(acc));
        const u64 kt = static_cast<u64>(k_list.size());
        delta.bmma_ops += kt * static_cast<u64>(sa) * static_cast<u64>(sb);
        delta.frag_loads_a += kt * static_cast<u64>(sa);
        delta.frag_loads_b += kt * static_cast<u64>(sa) * static_cast<u64>(sb);
      }
      // Bulk substrate accounting: one context note per column-tile sweep.
      ctx.note(delta);
    });
  } else {
    // Cross-tile reduction (§4.4), panel form: a decoded A fragment (one per
    // surviving (tk, plane)) is swept across the backend's panel of
    // output-column tiles and every B bit-plane before the next A tile is
    // touched. This both realises the paper's O(1)-loads claim and amortises
    // per-output-tile bookkeeping over the whole K reduction. The per-tile
    // backends (panel width 1) degenerate to cross-bit-style reloads.
    const i64 width = be.panel_width();
    parallel_for_dynamic(0, tiles_m, /*chunk=*/1, [&](i64 tm) {
      const auto& k_list = k_lists[static_cast<std::size_t>(tm)];
      u64* acc = ctx.workspace().acc_lanes(width * tcsim::kTileAccLanes);
      tcsim::AFragment frag;
      i64 a_loads = 0;
      for (i64 tn0 = 0; tn0 < tiles_n; tn0 += width) {
        const i64 nb = std::min<i64>(width, tiles_n - tn0);
        std::memset(acc, 0,
                    static_cast<std::size_t>(nb * tcsim::kTileAccLanes) * sizeof(u64));
        for (const i64 h : k_list) {
          const i64 tk = src.tile_col(h);
          for (int ab = 0; ab < sa; ++ab) {
            be.load_a(frag, src.tile_ptr(ab, tm, h), src.tile_stride(ab));
            ++a_loads;
            for (i64 b = 0; b < nb; ++b) {
              for (int bb = 0; bb < sb; ++bb) {
                const BitMatrix& pb = *bp[static_cast<std::size_t>(bb)];
                be.mma(acc + b * tcsim::kTileAccLanes, frag,
                       pb.col_words((tn0 + b) * kTileN) + tk * kTileKWords,
                       pb.k_words(), ab + bb, use_xor);
              }
            }
          }
        }
        for (i64 b = 0; b < nb; ++b) {
          consume(tm, tn0 + b,
                  static_cast<const u64*>(acc + b * tcsim::kTileAccLanes));
        }
      }
      tcsim::Counters delta;
      const u64 kt = static_cast<u64>(k_list.size());
      delta.bmma_ops =
          kt * static_cast<u64>(sa) * static_cast<u64>(sb) * static_cast<u64>(tiles_n);
      delta.frag_loads_a = static_cast<u64>(a_loads);
      delta.frag_loads_b =
          kt * static_cast<u64>(sa) * static_cast<u64>(sb) * static_cast<u64>(tiles_n);
      ctx.note(delta);
    });
  }
}

/// Applies the optional per-column batch-norm fold (Eq. 8) to one raw
/// accumulator value. The activation itself runs in tcsim::apply_epilogue.
inline i32 apply_bn(i32 v, i64 col, const FusedEpilogue& epi) {
  if (epi.use_bn && col < static_cast<i64>(epi.bn_scale.size())) {
    const float f = static_cast<float>(v) * epi.bn_scale[static_cast<std::size_t>(col)] +
                    epi.bn_bias[static_cast<std::size_t>(col)];
    v = static_cast<i32>(std::lround(f));
  }
  return v;
}

/// Drains one finished accumulator tile into a row-major i32 matrix of
/// logical extent m x n. Interior tiles (full 8x8, no BN) flush straight into
/// the output with the backend's fused epilogue; edge and BN tiles stage
/// through one stack tile. Assigns every covered element.
inline void drain_int_tile(const tcsim::SubstrateBackend& be, i32* out, i64 m,
                           i64 n, i64 tm, i64 tn, const u64* acc,
                           const FusedEpilogue& epi) {
  // The int path applies the activation but never requantizes (rshift/clamp
  // stay with the to-bit path), matching the historical epilogue contract.
  const tcsim::EpilogueSpec spec{epi.act, 0, -1};
  const i64 r0 = tm * kTileM, c0 = tn * kTileN;
  if (!epi.use_bn && r0 + kTileM <= m && c0 + kTileN <= n) {
    be.flush_epilogue(out + r0 * n + c0, n, acc, spec);
    return;
  }
  alignas(64) i32 tmp[kTileM * kTileN];
  be.flush_epilogue(tmp, kTileN, acc, tcsim::EpilogueSpec{});
  const i64 rows_here = std::min<i64>(kTileM, m - r0);
  const i64 cols_here = std::min<i64>(kTileN, n - c0);
  for (i64 i = 0; i < rows_here; ++i) {
    for (i64 j = 0; j < cols_here; ++j) {
      const i32 v = apply_bn(tmp[i * kTileN + j], c0 + j, epi);
      out[(r0 + i) * n + c0 + j] = tcsim::apply_epilogue(v, spec);
    }
  }
}

}  // namespace

MatrixI32 bitmm_to_int(const StackedBitTensor& a, const StackedBitTensor& b,
                       const BmmOptions& opt) {
  QGTC_CHECK(a.cols() == b.rows(), "bitmm_to_int: inner dimensions differ");
  if (!opt.allow_overflow) check_accumulator_bounds(a.cols(), a.bits(), b.bits());
  MatrixI32& padded = resolve_ctx(opt).workspace().padded_acc(
      pad8(a.plane(0).rows()), b.plane(0).padded_cols());
  for (int ab = 0; ab < a.bits(); ++ab) {
    for (int bb = 0; bb < b.bits(); ++bb) {
      bmm_accumulate(a.plane(ab), b.plane(bb), padded, ab + bb, opt);
    }
  }
  return slice_logical(padded, a.rows(), b.cols());
}

MatrixI32 bitmm_fused_int(const StackedBitTensor& a, const StackedBitTensor& b,
                          const FusedEpilogue& epi, const BmmOptions& opt) {
  MatrixI32 out(a.rows(), b.cols());
  bitmm_fused_int_into(a, b, out, epi, opt);
  return out;
}

void bitmm_fused_int_into(const StackedBitTensor& a, const StackedBitTensor& b,
                          MatrixI32& out, const FusedEpilogue& epi,
                          const BmmOptions& opt) {
  QGTC_CHECK(a.cols() == b.rows(), "bitmm_fused_int: inner dimensions differ");
  QGTC_CHECK(out.rows() == a.rows() && out.cols() == b.cols(),
             "bitmm_fused_int_into: output shape mismatch");
  if (!opt.allow_overflow) check_accumulator_bounds(a.cols(), a.bits(), b.bits());
  const i64 m = a.rows(), n = b.cols();
  const tcsim::SubstrateBackend& be = resolve_ctx(opt).backend();
  fused_tile_sweep(DensePlanesSource(plane_ptrs(a)), plane_ptrs(b), opt,
                   /*parallel_over_n=*/false,
                   [&](i64 tm, i64 tn, const u64* acc) {
                     drain_int_tile(be, out.data(), m, n, tm, tn, acc, epi);
                   });
}

namespace {

/// Shared implementation of the fused to-bit epilogue: requantize each tile
/// value and scatter its bits into the output planes. `src` is the A-side
/// tile source (dense planes or the tile-CSR adjacency).
template <typename Src>
StackedBitTensor fused_bit_output(const Src& src,
                                  const std::vector<const BitMatrix*>& bp,
                                  i64 m, i64 n, int out_bits,
                                  const FusedEpilogue& epi,
                                  const BmmOptions& opt, PadPolicy out_pad,
                                  BitLayout out_layout) {
  // Build output planes directly; bit-decomposition never materialises an
  // int32 matrix in "global memory" (§4.5).
  StackedBitTensor out =
      StackedBitTensor::zeros(m, n, out_bits, out_layout, out_pad);
  const i32 qmax = static_cast<i32>((u32{1} << out_bits) - 1);
  const tcsim::EpilogueSpec spec{epi.act, epi.rshift, qmax};
  const tcsim::ExecutionContext& ctx = resolve_ctx(opt);
  const tcsim::SubstrateBackend& be = ctx.backend();
  const i64 line_stride = out.plane(0).k_words();

  const bool parallel_over_n = (out_layout == BitLayout::kColMajorK);
  fused_tile_sweep(
      src, bp, opt, parallel_over_n,
      [&](i64 tm, i64 tn, const u64* acc) {
        // Requantize + scatter the 8x8 tile straight from the accumulator
        // lanes: one word RMW per (line, plane) — an 8-bit lane always sits
        // inside one u32 word because tile extents divide the 32-bit packing.
        const i64 rows_here = std::min<i64>(kTileM, m - tm * kTileM);
        const i64 cols_here = std::min<i64>(kTileN, n - tn * kTileN);
        u32* planes[32];
        tcsim::PlaneSink sink;
        if (out_layout == BitLayout::kRowMajorK) {
          // Line = output row; 8 column bits land in word (tn*8)/32 at
          // offset (tn%4)*8.
          const i64 word = (tn * kTileN) / kWordBits;
          for (int b = 0; b < out_bits; ++b) {
            planes[b] = out.plane(b).row_words(tm * kTileM) + word;
          }
          sink = {planes,    line_stride,
                  static_cast<int>((tn * kTileN) % kWordBits),
                  out_bits,  rows_here,
                  cols_here, /*transpose=*/false};
        } else {
          // Line = output column; 8 row bits land in word (tm*8)/32 at
          // offset (tm%4)*8.
          const i64 word = (tm * kTileM) / kWordBits;
          for (int b = 0; b < out_bits; ++b) {
            planes[b] = out.plane(b).col_words(tn * kTileN) + word;
          }
          sink = {planes,    line_stride,
                  static_cast<int>((tm * kTileM) % kWordBits),
                  out_bits,  cols_here,
                  rows_here, /*transpose=*/true};
        }
        if (!epi.use_bn) {
          be.flush_planes(sink, acc, spec);
          return;
        }
        // BN tiles stage through one stack tile: raw drain, fp32 fold, then
        // the shared epilogue + scatter.
        alignas(64) i32 q[kTileM * kTileN];
        be.flush_epilogue(q, kTileN, acc, tcsim::EpilogueSpec{});
        for (i64 i = 0; i < rows_here; ++i) {
          for (i64 j = 0; j < cols_here; ++j) {
            const i32 v = apply_bn(q[i * kTileN + j], tn * kTileN + j, epi);
            q[i * kTileN + j] = tcsim::apply_epilogue(v, spec);
          }
        }
        tcsim::scatter_planes(sink, q);
      });

  // The whole epilogue ran tile-local: the m x n int32 activation matrix the
  // unfused path would have materialised (plus re-read for requantize and
  // decompose) never existed.
  tcsim::Counters avoided;
  avoided.int32_bytes_avoided =
      static_cast<u64>(m) * static_cast<u64>(n) * sizeof(i32);
  ctx.note(avoided);
  return out;
}

}  // namespace

StackedBitTensor bitmm_fused_bit(const StackedBitTensor& a,
                                 const StackedBitTensor& b, int out_bits,
                                 const FusedEpilogue& epi,
                                 const BmmOptions& opt, PadPolicy out_pad,
                                 BitLayout out_layout) {
  QGTC_CHECK(a.cols() == b.rows(), "bitmm_fused_bit: inner dimensions differ");
  QGTC_CHECK(out_bits >= 1 && out_bits <= 31, "out_bits must be in [1,31]");
  if (!opt.allow_overflow) check_accumulator_bounds(a.cols(), a.bits(), b.bits());
  return fused_bit_output(DensePlanesSource(plane_ptrs(a)), plane_ptrs(b),
                          a.rows(), b.cols(), out_bits, epi, opt, out_pad,
                          out_layout);
}

namespace {

/// Shared aggregate_1bit body, generic over the adjacency representation
/// (bmm_accumulate overloads on it) and its tile source. `padded_m` is the
/// representation's padded row extent for the cross-bit accumulator.
/// Assigns every element of `out` (a_bin.rows x x.cols).
template <typename AdjT, typename Src>
void aggregate_1bit_into_impl(const AdjT& a_bin, i64 padded_m, const Src& src,
                              const StackedBitTensor& x, ReuseMode mode,
                              MatrixI32& out, const BmmOptions& opt) {
  QGTC_CHECK(a_bin.cols() == x.rows(), "aggregate_1bit: dimension mismatch");
  QGTC_CHECK(out.rows() == a_bin.rows() && out.cols() == x.cols(),
             "aggregate_1bit_into: output shape mismatch");
  if (!opt.allow_overflow) check_accumulator_bounds(a_bin.cols(), 1, x.bits());
  const i64 m = a_bin.rows(), n = x.cols();
  if (mode == ReuseMode::kCrossBit) {
    // Figure 6(a): one complete BMM pass per bit-plane; every surviving A
    // tile is re-loaded for each plane.
    MatrixI32& padded = resolve_ctx(opt).workspace().padded_acc(
        padded_m, x.plane(0).padded_cols());
    for (int b = 0; b < x.bits(); ++b) {
      bmm_accumulate(a_bin, x.plane(b), padded, b, opt);
    }
    for (i64 r = 0; r < m; ++r) {
      std::memcpy(out.data() + r * n, padded.data() + r * padded.cols(),
                  static_cast<std::size_t>(n) * sizeof(i32));
    }
    return;
  }
  // Figure 6(b): cross-tile reduction via the fused sweep with a single
  // 1-bit A plane (the stored tiles only, for the tile-CSR source).
  const tcsim::SubstrateBackend& be = resolve_ctx(opt).backend();
  fused_tile_sweep(src, plane_ptrs(x), opt, /*parallel_over_n=*/false,
                   [&](i64 tm, i64 tn, const u64* acc) {
                     drain_int_tile(be, out.data(), m, n, tm, tn, acc,
                                    FusedEpilogue{});
                   });
}

}  // namespace

MatrixI32 aggregate_1bit(const BitMatrix& a_bin, const StackedBitTensor& x,
                         ReuseMode mode, const BmmOptions& opt) {
  MatrixI32 out(a_bin.rows(), x.cols());
  aggregate_1bit_into_impl(a_bin, pad8(a_bin.rows()),
                           DensePlanesSource({&a_bin}), x, mode, out, opt);
  return out;
}

MatrixI32 aggregate_1bit(const TileSparseBitMatrix& a_bin,
                         const StackedBitTensor& x, ReuseMode mode,
                         const BmmOptions& opt) {
  MatrixI32 out(a_bin.rows(), x.cols());
  aggregate_1bit_into_impl(a_bin, a_bin.padded_rows(), SparseAdjSource(a_bin),
                           x, mode, out, opt);
  return out;
}

void aggregate_1bit_into(const BitMatrix& a_bin, const StackedBitTensor& x,
                         ReuseMode mode, MatrixI32& out,
                         const BmmOptions& opt) {
  aggregate_1bit_into_impl(a_bin, pad8(a_bin.rows()),
                           DensePlanesSource({&a_bin}), x, mode, out, opt);
}

void aggregate_1bit_into(const TileSparseBitMatrix& a_bin,
                         const StackedBitTensor& x, ReuseMode mode,
                         MatrixI32& out, const BmmOptions& opt) {
  aggregate_1bit_into_impl(a_bin, a_bin.padded_rows(), SparseAdjSource(a_bin),
                           x, mode, out, opt);
}

StackedBitTensor aggregate_fused_bit(const BitMatrix& a_bin,
                                     const StackedBitTensor& x, int out_bits,
                                     const FusedEpilogue& epi,
                                     const BmmOptions& opt, PadPolicy out_pad) {
  QGTC_CHECK(a_bin.cols() == x.rows(), "aggregate_fused_bit: dimension mismatch");
  QGTC_CHECK(out_bits >= 1 && out_bits <= 31, "out_bits must be in [1,31]");
  if (!opt.allow_overflow) check_accumulator_bounds(a_bin.cols(), 1, x.bits());
  return fused_bit_output(DensePlanesSource({&a_bin}), plane_ptrs(x),
                          a_bin.rows(), x.cols(), out_bits, epi, opt, out_pad,
                          BitLayout::kRowMajorK);
}

StackedBitTensor aggregate_fused_bit(const TileSparseBitMatrix& a_bin,
                                     const StackedBitTensor& x, int out_bits,
                                     const FusedEpilogue& epi,
                                     const BmmOptions& opt, PadPolicy out_pad) {
  QGTC_CHECK(a_bin.cols() == x.rows(), "aggregate_fused_bit: dimension mismatch");
  QGTC_CHECK(out_bits >= 1 && out_bits <= 31, "out_bits must be in [1,31]");
  if (!opt.allow_overflow) check_accumulator_bounds(a_bin.cols(), 1, x.bits());
  return fused_bit_output(SparseAdjSource(a_bin), plane_ptrs(x), a_bin.rows(),
                          x.cols(), out_bits, epi, opt, out_pad,
                          BitLayout::kRowMajorK);
}

}  // namespace qgtc
