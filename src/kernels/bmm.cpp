#include "kernels/bmm.hpp"

#include <algorithm>
#include <cstring>

#include "parallel/parallel_for.hpp"

namespace qgtc {

MatrixI32 make_padded_accumulator(const BitMatrix& a, const BitMatrix& b) {
  return MatrixI32(pad8(a.rows()), b.padded_cols(), 0);
}

MatrixI32 slice_logical(const MatrixI32& padded, i64 m, i64 n) {
  MatrixI32 out(m, n);
  for (i64 r = 0; r < m; ++r) {
    std::copy_n(padded.row(r).data(), n, out.row(r).data());
  }
  return out;
}

void bmm_accumulate(const BitMatrix& a, const BitMatrix& b, MatrixI32& c,
                    int shift, const BmmOptions& opt) {
  QGTC_CHECK(a.layout() == BitLayout::kRowMajorK, "A must be kRowMajorK");
  QGTC_CHECK(b.layout() == BitLayout::kColMajorK, "B must be kColMajorK");
  QGTC_CHECK(a.padded_cols() == b.padded_rows(),
             "padded K extents of A and B differ");
  QGTC_CHECK(c.rows() >= pad8(a.rows()) && c.cols() >= b.padded_cols(),
             "accumulator too small for padded output");
  // An all-zero A tile still contributes popcount(B) under XOR, so the §4.3
  // jump is only sound for the AND combine.
  QGTC_CHECK(!(opt.zero_tile_jump && opt.op == tcsim::BmmaOp::kXor),
             "zero-tile jumping is incompatible with the XOR combine");

  const tcsim::ExecutionContext& ctx = resolve_ctx(opt);
  const tcsim::SubstrateBackend& be = ctx.backend();
  const i64 tiles_m = pad8(a.rows()) / kTileM;
  const i64 tiles_n = b.padded_cols() / kTileN;
  const i64 tiles_k = a.padded_cols() / kTileK;
  const i64 a_stride = a.k_words();
  const i64 b_stride = b.k_words();
  const bool use_xor = (opt.op == tcsim::BmmaOp::kXor);
  const i64 width = be.panel_width();

  // Row-tile blocks are the parallel unit: each thread owns disjoint C rows,
  // so no accumulator races. Dynamic schedule because zero-tile jumping makes
  // per-block work data-dependent.
  parallel_for_dynamic(0, tiles_m, /*chunk=*/1, [&](i64 tm) {
    tcsim::Workspace& ws = ctx.workspace();
    // Gather this row-block's non-zero K tiles once; the list is reused for
    // every N tile (amortises the §4.3 test across the full row of output).
    i64 jumped = 0;
    std::vector<i64>& k_tiles = ws.k_list();
    k_tiles.reserve(static_cast<std::size_t>(tiles_k));
    for (i64 tk = 0; tk < tiles_k; ++tk) {
      if (opt.zero_tile_jump) {
        const bool nz = opt.tile_map != nullptr
                            ? opt.tile_map->is_nonzero(tm, tk)
                            : !tcsim::tile_is_zero(
                                  a.row_words(tm * kTileM) + tk * kTileKWords,
                                  a_stride);
        if (!nz) {
          ++jumped;
          continue;
        }
      }
      k_tiles.push_back(tk);
    }

    // Panel form: one decoded A fragment serves `width` output-column tiles
    // before the next A tile is touched (width is the backend's §4.4
    // blocking factor; 1 for the per-tile backends). The "<< bitIdx"
    // weighting of Algorithm 1 is folded into the tile accumulator lanes
    // (u64 => exact uint32 wrap for any shift at flush).
    u64* acc = ws.acc_lanes(width * tcsim::kTileAccLanes);
    tcsim::AFragment frag;
    const u32* a_block = a.row_words(tm * kTileM);
    i64 a_loads = 0;
    for (i64 tn0 = 0; tn0 < tiles_n; tn0 += width) {
      const i64 nb = std::min<i64>(width, tiles_n - tn0);
      std::memset(acc, 0,
                  static_cast<std::size_t>(nb * tcsim::kTileAccLanes) * sizeof(u64));
      for (const i64 tk : k_tiles) {
        be.load_a(frag, a_block + tk * kTileKWords, a_stride);
        ++a_loads;
        for (i64 blk = 0; blk < nb; ++blk) {
          be.mma(acc + blk * tcsim::kTileAccLanes, frag,
                 b.col_words((tn0 + blk) * kTileN) + tk * kTileKWords, b_stride,
                 shift, use_xor);
        }
      }
      for (i64 blk = 0; blk < nb; ++blk) {
        be.flush(c.data() + (tm * kTileM) * c.cols() + (tn0 + blk) * kTileN,
                 c.cols(), acc + blk * tcsim::kTileAccLanes);
      }
    }
    // Bulk substrate accounting: one context note per row block.
    tcsim::Counters delta;
    delta.tiles_jumped = static_cast<u64>(jumped);
    delta.bmma_ops = static_cast<u64>(k_tiles.size() * tiles_n);
    delta.frag_loads_a = static_cast<u64>(a_loads);
    delta.frag_loads_b = static_cast<u64>(k_tiles.size() * tiles_n);
    ctx.note(delta);
  });
}

MatrixI32 bmm(const BitMatrix& a, const BitMatrix& b, const BmmOptions& opt) {
  // The padded accumulator comes from the caller thread's arena — epochs of
  // same-shaped batches stop paying an allocation + page-fault per call.
  MatrixI32& padded =
      resolve_ctx(opt).workspace().padded_acc(pad8(a.rows()), b.padded_cols());
  bmm_accumulate(a, b, padded, /*shift=*/0, opt);
  return slice_logical(padded, a.rows(), b.cols());
}

}  // namespace qgtc
