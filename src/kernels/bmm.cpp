#include "kernels/bmm.hpp"

#include <algorithm>
#include <cstring>

#include "parallel/parallel_for.hpp"

namespace qgtc {

MatrixI32 make_padded_accumulator(const BitMatrix& a, const BitMatrix& b) {
  return MatrixI32(pad8(a.rows()), b.padded_cols(), 0);
}

MatrixI32 slice_logical(const MatrixI32& padded, i64 m, i64 n) {
  MatrixI32 out(m, n);
  for (i64 r = 0; r < m; ++r) {
    std::copy_n(padded.row(r).data(), n, out.row(r).data());
  }
  return out;
}

namespace {

// One row block's surviving tiles + panel sweep, shared by the dense
// (flag-jump) and tile-CSR overloads so the §4.4 panel loop, flush, and
// substrate accounting have exactly one body — the counter parity the
// sparse/dense benches assert is structural, not maintained by hand.
// `fill_refs(tm, refs)` appends the block's surviving tiles and returns the
// jumped count; every referenced tile has row stride `a_stride`.
template <typename FillRefs>
void panel_sweep(const tcsim::ExecutionContext& ctx, i64 tiles_m, i64 a_stride,
                 const BitMatrix& b, MatrixI32& c, int shift, bool use_xor,
                 FillRefs&& fill_refs) {
  const tcsim::SubstrateBackend& be = ctx.backend();
  const i64 tiles_n = b.padded_cols() / kTileN;
  const i64 b_stride = b.k_words();
  const i64 width = be.panel_width();

  // Row-tile blocks are the parallel unit: each thread owns disjoint C rows,
  // so no accumulator races. Dynamic schedule because zero-tile jumping makes
  // per-block work data-dependent.
  parallel_for_dynamic(0, tiles_m, /*chunk=*/1, [&](i64 tm) {
    tcsim::Workspace& ws = ctx.workspace();
    std::vector<tcsim::SparseTileRef>& refs = ws.tile_refs();
    const i64 jumped = fill_refs(tm, refs);

    // Panel form: one decoded A fragment serves `width` output-column tiles
    // before the next A tile is touched (width is the backend's §4.4
    // blocking factor; 1 for the per-tile backends). The "<< bitIdx"
    // weighting of Algorithm 1 is folded into the tile accumulator lanes
    // (u64 => exact uint32 wrap for any shift at flush).
    u64* acc = ws.acc_lanes(width * tcsim::kTileAccLanes);
    i64 a_loads = 0;
    for (i64 tn0 = 0; tn0 < tiles_n; tn0 += width) {
      const i64 nb = std::min<i64>(width, tiles_n - tn0);
      std::memset(acc, 0,
                  static_cast<std::size_t>(nb * tcsim::kTileAccLanes) * sizeof(u64));
      be.mma_tile_list(acc, refs.data(), static_cast<i64>(refs.size()),
                       a_stride, b.col_words(tn0 * kTileN), b_stride, nb,
                       shift, use_xor);
      a_loads += static_cast<i64>(refs.size());
      for (i64 blk = 0; blk < nb; ++blk) {
        be.flush(c.data() + (tm * kTileM) * c.cols() + (tn0 + blk) * kTileN,
                 c.cols(), acc + blk * tcsim::kTileAccLanes);
      }
    }
    // Bulk substrate accounting: one context note per row block.
    tcsim::Counters delta;
    delta.tiles_jumped = static_cast<u64>(jumped);
    delta.bmma_ops = static_cast<u64>(refs.size() * tiles_n);
    delta.frag_loads_a = static_cast<u64>(a_loads);
    delta.frag_loads_b = static_cast<u64>(refs.size() * tiles_n);
    ctx.note(delta);
  });
}

}  // namespace

void bmm_accumulate(const BitMatrix& a, const BitMatrix& b, MatrixI32& c,
                    int shift, const BmmOptions& opt) {
  QGTC_CHECK(a.layout() == BitLayout::kRowMajorK, "A must be kRowMajorK");
  QGTC_CHECK(b.layout() == BitLayout::kColMajorK, "B must be kColMajorK");
  QGTC_CHECK(a.padded_cols() == b.padded_rows(),
             "padded K extents of A and B differ");
  QGTC_CHECK(c.rows() >= pad8(a.rows()) && c.cols() >= b.padded_cols(),
             "accumulator too small for padded output");
  // An all-zero A tile still contributes popcount(B) under XOR, so the §4.3
  // jump is only sound for the AND combine.
  QGTC_CHECK(!(opt.zero_tile_jump && opt.op == tcsim::BmmaOp::kXor),
             "zero-tile jumping is incompatible with the XOR combine");

  const i64 tiles_k = a.padded_cols() / kTileK;
  const i64 a_stride = a.k_words();
  // Gather each row-block's non-zero K tiles into a sparse schedule once;
  // the list is reused for every N tile (amortises the §4.3 test across the
  // full row of output) and executed by the backend's tile-list hook — the
  // same path the tile-CSR operand takes.
  panel_sweep(resolve_ctx(opt), pad8(a.rows()) / kTileM, a_stride, b, c, shift,
              /*use_xor=*/opt.op == tcsim::BmmaOp::kXor,
              [&](i64 tm, std::vector<tcsim::SparseTileRef>& refs) {
                i64 jumped = 0;
                refs.reserve(static_cast<std::size_t>(tiles_k));
                const u32* a_block = a.row_words(tm * kTileM);
                for (i64 tk = 0; tk < tiles_k; ++tk) {
                  if (opt.zero_tile_jump) {
                    const bool nz =
                        opt.tile_map != nullptr
                            ? opt.tile_map->is_nonzero(tm, tk)
                            : !tcsim::tile_is_zero(a_block + tk * kTileKWords,
                                                   a_stride);
                    if (!nz) {
                      ++jumped;
                      continue;
                    }
                  }
                  refs.push_back({a_block + tk * kTileKWords, tk});
                }
                return jumped;
              });
}

void bmm_accumulate(const TileSparseBitMatrix& a, const BitMatrix& b,
                    MatrixI32& c, int shift, const BmmOptions& opt) {
  QGTC_CHECK(b.layout() == BitLayout::kColMajorK, "B must be kColMajorK");
  QGTC_CHECK(a.padded_cols() == b.padded_rows(),
             "padded K extents of A and B differ");
  QGTC_CHECK(c.rows() >= a.padded_rows() && c.cols() >= b.padded_cols(),
             "accumulator too small for padded output");
  // The tiles this layout never stored still contribute popcount(B) under
  // XOR, exactly like the §4.3 jump: structural sparsity is AND-only.
  QGTC_CHECK(opt.op != tcsim::BmmaOp::kXor,
             "tile-sparse operands are incompatible with the XOR combine");

  // The stored-tile range *is* the surviving-K list — no scan, no flags.
  // Stored tiles are row-contiguous: stride kTileKWords within a tile.
  panel_sweep(resolve_ctx(opt), a.tiles_m(), kTileKWords, b, c, shift,
              /*use_xor=*/false,
              [&](i64 tm, std::vector<tcsim::SparseTileRef>& refs) {
                refs.reserve(static_cast<std::size_t>(a.row_nnz(tm)));
                for (i64 t = a.row_begin(tm); t < a.row_end(tm); ++t) {
                  refs.push_back({a.tile_words(t), a.tile_col(t)});
                }
                return a.tiles_k() - a.row_nnz(tm);
              });
}

MatrixI32 bmm(const BitMatrix& a, const BitMatrix& b, const BmmOptions& opt) {
  // The padded accumulator comes from the caller thread's arena — epochs of
  // same-shaped batches stop paying an allocation + page-fault per call.
  MatrixI32& padded =
      resolve_ctx(opt).workspace().padded_acc(pad8(a.rows()), b.padded_cols());
  bmm_accumulate(a, b, padded, /*shift=*/0, opt);
  return slice_logical(padded, a.rows(), b.cols());
}

MatrixI32 bmm(const TileSparseBitMatrix& a, const BitMatrix& b,
              const BmmOptions& opt) {
  MatrixI32& padded = resolve_ctx(opt).workspace().padded_acc(a.padded_rows(),
                                                              b.padded_cols());
  bmm_accumulate(a, b, padded, /*shift=*/0, opt);
  return slice_logical(padded, a.rows(), b.cols());
}

}  // namespace qgtc
