// 1-bit BMM (bit-matrix multiplication) on the tensor-core substrate.
// This is the "atomic" kernel every any-bitwidth operation is composed from
// (paper §3.1, Eq. 7): C[i,j] = popcnt(rowA_i & colB_j), tiled 8x8x128.
#pragma once

#include "bittensor/bit_matrix.hpp"
#include "bittensor/tile_sparse.hpp"
#include "kernels/zerotile.hpp"
#include "tcsim/exec_context.hpp"
#include "tcsim/wmma.hpp"

namespace qgtc {

struct BmmOptions {
  /// Skip all-zero 8x128 A-tiles (paper §4.3). Requires `tile_map` or pays
  /// an inline OR+ballot test per tile.
  bool zero_tile_jump = false;
  /// Optional precomputed jump map (reused across layers/bit-planes since the
  /// adjacency pattern is shared — paper §3.2's caching note).
  const TileMap* tile_map = nullptr;
  /// Skip the worst-case int32 bound check. High-bit settings (s or t > 8,
  /// as in the paper's 16/32-bit runs) can exceed the bound; accumulation is
  /// performed in unsigned arithmetic so overflow wraps (defined behaviour),
  /// exactly like the hardware's uint32 accumulators.
  bool allow_overflow = false;
  /// Bitwise combine of the 1-bit MMA: kAnd for unsigned bit-composition
  /// (the QGTC scheme), kXor for +-1 binarized networks (paper §2.3).
  tcsim::BmmaOp op = tcsim::BmmaOp::kAnd;
  /// Execution context supplying the substrate backend, workspace arena and
  /// counter sink. Null routes to ExecutionContext::default_context().
  const tcsim::ExecutionContext* ctx = nullptr;
};

/// Resolves an options block's context (null -> process default).
[[nodiscard]] inline const tcsim::ExecutionContext& resolve_ctx(
    const BmmOptions& opt) {
  return opt.ctx != nullptr ? *opt.ctx
                            : tcsim::ExecutionContext::default_context();
}

/// C (+)= (A x B) << shift.
///
/// A: kRowMajorK, logical M x K. B: kColMajorK, logical K x N, same padded K.
/// C: row-major int32, shape pad8(M) x B.padded_cols() — callers slice the
/// logical region. `shift` implements the bit-position weighting of the
/// composition scheme (Algorithm 1 line 17).
void bmm_accumulate(const BitMatrix& a, const BitMatrix& b, MatrixI32& c,
                    int shift = 0, const BmmOptions& opt = {});

/// Convenience wrapper: allocates C (padded), runs bmm_accumulate once, and
/// returns the logical M x N slice.
MatrixI32 bmm(const BitMatrix& a, const BitMatrix& b,
              const BmmOptions& opt = {});

/// Structurally sparse A: C (+)= (A x B) << shift over the stored tiles
/// only. Jumping is free — no dense scan, no per-tile flag test; the tiles
/// the tile-CSR never stored count as `tiles_jumped`, so the substrate
/// accounting matches the dense path *with zero-tile jumping enabled*
/// exactly. `opt.zero_tile_jump` and `opt.tile_map` are ignored — the layout
/// *is* the jump map, and structural jumping cannot be disabled, so a dense
/// no-jump ablation (zero_tile_jump=false) has no sparse counter analogue.
/// The XOR combine is rejected, as with flag-based jumping.
void bmm_accumulate(const TileSparseBitMatrix& a, const BitMatrix& b,
                    MatrixI32& c, int shift = 0, const BmmOptions& opt = {});

/// Sparse-A convenience wrapper mirroring bmm().
MatrixI32 bmm(const TileSparseBitMatrix& a, const BitMatrix& b,
              const BmmOptions& opt = {});

/// Allocates the padded accumulator for a given A/B pair.
MatrixI32 make_padded_accumulator(const BitMatrix& a, const BitMatrix& b);

/// Copies the logical M x N region out of a padded accumulator.
MatrixI32 slice_logical(const MatrixI32& padded, i64 m, i64 n);

}  // namespace qgtc
