// Zero-tile census and jump maps (paper §4.3). A "tile" is the 8x128 A-side
// input of one 1-bit TC MMA. Batched subgraph adjacency matrices are mostly
// all-zero tiles (no edges between different subgraphs of a batch, plus
// missing intra-subgraph edges), so the BMM kernels skip them.
#pragma once

#include <vector>

#include "bittensor/bit_matrix.hpp"
#include "bittensor/tile_sparse.hpp"

namespace qgtc {

/// Precomputed per-(rowTile, kTile) non-zero flags for a kRowMajorK matrix.
struct TileMap {
  i64 tiles_m = 0;  // row-tile count (padded_rows / 8)
  i64 tiles_k = 0;  // K-tile count (padded_cols / 128)
  std::vector<u8> nonzero;  // tiles_m * tiles_k flags
  /// Non-zero flag total, counted once by build_tile_map — callers poll this
  /// in per-batch loops, so it must not re-sum the flag vector.
  i64 nonzero_count = 0;

  [[nodiscard]] bool is_nonzero(i64 tm, i64 tk) const {
    return nonzero[static_cast<std::size_t>(tm * tiles_k + tk)] != 0;
  }
  [[nodiscard]] i64 total_tiles() const { return tiles_m * tiles_k; }
  [[nodiscard]] i64 nonzero_tiles() const { return nonzero_count; }
  /// Fraction of tiles that must actually be processed (Figure 8's metric).
  [[nodiscard]] double nonzero_ratio() const {
    return total_tiles() == 0
               ? 0.0
               : static_cast<double>(nonzero_tiles()) /
                     static_cast<double>(total_tiles());
  }
};

/// Scans a packed kRowMajorK matrix with the §4.3 OR+ballot test per tile.
TileMap build_tile_map(const BitMatrix& a);

/// Structural census of a tile-CSR matrix: flags come straight from the
/// stored-tile index lists in O(nnz) — no bit scan (stored tiles are nonzero
/// by construction in both builders).
TileMap build_tile_map(const TileSparseBitMatrix& a);

}  // namespace qgtc
