// Any-bitwidth matrix multiplication composed from 1-bit BMMs
// (paper §3, Algorithm 1), plus the two system optimisations that act at
// this level:
//
//  * non-zero tile reuse (§4.4): cross-tile reduction keeps a loaded A tile
//    resident while sweeping every bit-plane of the other operand;
//  * inter-layer kernel fusion (§4.5): ReLU / batch-norm / requantization +
//    bit-decomposition run inside the GEMM epilogue so hidden layers hand
//    packed low-bit planes straight to the next layer.
//
// Every entry point executes its tile ops on the substrate backend of the
// caller's ExecutionContext (BmmOptions::ctx; null = process default) and
// draws scratch from that context's per-thread workspace arena.
#pragma once

#include <vector>

#include "bittensor/stacked.hpp"
#include "kernels/bmm.hpp"

namespace qgtc {

/// Figure 6's two reduction orders for aggregation (1-bit A x s-bit X).
enum class ReuseMode {
  kCrossBit,   // (a): one full pass per bit-plane; A tiles re-loaded per bit
  kCrossTile,  // (b): per non-zero A tile, sweep all bit-planes (O(1) loads)
};

/// Fused epilogue applied to each finished 8x8 int32 output tile (§4.5).
struct FusedEpilogue {
  /// Elementwise activation (identity / relu / relu6 / hardswish) applied in
  /// the requantized domain — see tcsim::apply_epilogue for exact semantics.
  tcsim::Activation act = tcsim::Activation::kIdentity;
  /// Per-output-column batch-norm folded to y = x * scale[j] + bias[j]
  /// (Eq. 8 with E/Var/gamma/beta pre-folded by the caller).
  bool use_bn = false;
  std::vector<float> bn_scale;
  std::vector<float> bn_bias;
  /// Requantization right-shift used by the to-bit output path:
  /// out = clamp(acc >> rshift, 0, 2^out_bits - 1). Calibrated per layer.
  int rshift = 0;
};

/// bitMM2Int (paper §5): C = A(s-bit) x B(t-bit) with int32 output.
/// Straightforward Algorithm-1 composition: one shifted BMM pass per
/// (s, t) bit-plane pair.
MatrixI32 bitmm_to_int(const StackedBitTensor& a, const StackedBitTensor& b,
                       const BmmOptions& opt = {});

/// Fused single-pass variant of bitMM2Int: per output tile, all bit-plane
/// pairs and K tiles are reduced locally, then the epilogue (ReLU/BN) runs
/// before the single store. This is the production path for output layers.
MatrixI32 bitmm_fused_int(const StackedBitTensor& a, const StackedBitTensor& b,
                          const FusedEpilogue& epi = {},
                          const BmmOptions& opt = {});

/// In-place variant of bitmm_fused_int writing into caller-provided storage
/// (typically the ExecutionContext workspace's int32_scratch — the unfused
/// fallback path allocates nothing per call). `out` must be a.rows x b.cols;
/// every element is assigned.
void bitmm_fused_int_into(const StackedBitTensor& a, const StackedBitTensor& b,
                          MatrixI32& out, const FusedEpilogue& epi = {},
                          const BmmOptions& opt = {});

/// bitMM2Bit (paper §5): fused any-bit MM whose epilogue requantizes to
/// `out_bits` and bit-decomposes straight into packed planes laid out as the
/// next layer's A operand (kRowMajorK). `out_pad` must be kOperand128 when
/// the result feeds another packed MM (§4.2's hidden-layer padding rule).
/// `out_layout` chooses which side of the next MM the result feeds:
/// kRowMajorK when it becomes the next A operand (GCN hidden layers),
/// kColMajorK when it becomes the next B operand (GIN update-then-aggregate).
StackedBitTensor bitmm_fused_bit(const StackedBitTensor& a,
                                 const StackedBitTensor& b, int out_bits,
                                 const FusedEpilogue& epi = {},
                                 const BmmOptions& opt = {},
                                 PadPolicy out_pad = PadPolicy::kOperand128,
                                 BitLayout out_layout = BitLayout::kRowMajorK);

/// Neighbour aggregation X_new = A_bin x X with selectable reduction order
/// (the Figure 10 ablation). int32 output.
MatrixI32 aggregate_1bit(const BitMatrix& a_bin, const StackedBitTensor& x,
                         ReuseMode mode, const BmmOptions& opt = {});

/// Structurally sparse aggregation: A is a tile-CSR adjacency, so only the
/// stored tiles are ever visited — zero-tile jumping without a flag test or
/// dense scan. Bit-identical to the dense overload; substrate accounting
/// (bmma_ops / tiles_jumped) matches the flag-based jump exactly.
MatrixI32 aggregate_1bit(const TileSparseBitMatrix& a_bin,
                         const StackedBitTensor& x, ReuseMode mode,
                         const BmmOptions& opt = {});

/// In-place aggregation variants writing into caller-provided storage (same
/// contract as bitmm_fused_int_into; used by the unfused fallback path).
void aggregate_1bit_into(const BitMatrix& a_bin, const StackedBitTensor& x,
                         ReuseMode mode, MatrixI32& out,
                         const BmmOptions& opt = {});
void aggregate_1bit_into(const TileSparseBitMatrix& a_bin,
                         const StackedBitTensor& x, ReuseMode mode,
                         MatrixI32& out, const BmmOptions& opt = {});

/// Fused aggregation: requantizes X_new to `out_bits` inside the epilogue.
StackedBitTensor aggregate_fused_bit(const BitMatrix& a_bin,
                                     const StackedBitTensor& x, int out_bits,
                                     const FusedEpilogue& epi = {},
                                     const BmmOptions& opt = {},
                                     PadPolicy out_pad = PadPolicy::kOperand128);

/// Fused aggregation over a tile-CSR adjacency (structural jumping).
StackedBitTensor aggregate_fused_bit(const TileSparseBitMatrix& a_bin,
                                     const StackedBitTensor& x, int out_bits,
                                     const FusedEpilogue& epi = {},
                                     const BmmOptions& opt = {},
                                     PadPolicy out_pad = PadPolicy::kOperand128);

/// Right-shift such that `max_acc` lands inside `out_bits` bits.
int calibrate_rshift(i32 max_acc, int out_bits);

/// Throws if K * (2^s-1) * (2^t-1) could overflow the int32 accumulator.
void check_accumulator_bounds(i64 k, int s_bits, int t_bits);

}  // namespace qgtc
