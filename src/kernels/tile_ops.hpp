// Internal hot-loop primitives for the BMM kernels: the same 8x8x128 tile
// semantics as tcsim::bmma_sync, but operating directly on packed storage
// with no fragment copies, and with substrate counters updated in bulk by
// the callers (one TLS access per row-block instead of per tile op).
// tcsim::wmma.hpp remains the semantic reference; tests assert both paths
// produce identical results.
//
// Two implementations of the tile accumulator:
//  * AVX2: nibble-LUT popcount (vpshufb) + vpsadbw reduction — sidesteps the
//    scalar POPCNT port bottleneck (~3-4x on this tile shape);
//  * scalar fallback: u64 AND + std::popcount.
// Both accumulate per-lane in u64 and truncate to u32 at flush, which makes
// the "uint32 wrap" contract exact for every shift in [0, 63] (a value
// shifted by >= 32 contributes 0 mod 2^32, with no UB).
#pragma once

#include <bit>
#include <cstring>

#include "common/defs.hpp"

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace qgtc::detail {

/// One packed 128-bit lane pair (a tile row or column) as two u64 words.
struct Lane128 {
  u64 w0, w1;
};

/// Loads the 4 consecutive u32 words at `p` as two u64 lanes.
inline Lane128 load_lane(const u32* p) {
  Lane128 l;
  std::memcpy(&l.w0, p, 8);
  std::memcpy(&l.w1, p + 2, 8);
  return l;
}

/// AND + popcount over one 128-bit lane pair.
inline i32 and_popcount(const Lane128& a, const Lane128& b) {
  return static_cast<i32>(std::popcount(a.w0 & b.w0) +
                          std::popcount(a.w1 & b.w1));
}

/// XOR + popcount over one 128-bit lane pair (the +-1 binary-network mode).
inline i32 xor_popcount(const Lane128& a, const Lane128& b) {
  return static_cast<i32>(std::popcount(a.w0 ^ b.w0) +
                          std::popcount(a.w1 ^ b.w1));
}

#if defined(__AVX512VPOPCNTDQ__) && defined(__AVX512F__)

/// 8x8 tile accumulator on AVX512-VPOPCNTDQ: one 512-bit vector holds four
/// B columns (4 x 128-bit lanes = 8 u64), so a whole A-row-vs-8-columns step
/// is 2 x (AND + VPOPCNTQ + SLL + ADD).
class TileAcc {
 public:
  /// Preloaded A tile: each of the 8 rows broadcast across the vector.
  struct APanel {
    __m512i av[kTileM];
  };

  static void load_a(APanel& p, const u32* a_base, i64 a_stride) {
    for (int i = 0; i < kTileM; ++i) {
      p.av[i] = _mm512_broadcast_i32x4(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(a_base + i * a_stride)));
    }
  }

  void reset() {
    for (auto& row : vacc_) {
      for (auto& v : row) v = _mm512_setzero_si512();
    }
  }

  void mma_preloaded(const APanel& a, const u32* b_base, i64 b_stride,
                     int shift, bool use_xor = false) {
    __m512i bc[2];
    for (int g = 0; g < 2; ++g) {
      __m512i v = _mm512_castsi128_si512(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(b_base + (4 * g) * b_stride)));
      v = _mm512_inserti32x4(v, _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                                    b_base + (4 * g + 1) * b_stride)), 1);
      v = _mm512_inserti32x4(v, _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                                    b_base + (4 * g + 2) * b_stride)), 2);
      v = _mm512_inserti32x4(v, _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                                    b_base + (4 * g + 3) * b_stride)), 3);
      bc[g] = v;
    }
    for (int i = 0; i < kTileM; ++i) {
      for (int g = 0; g < 2; ++g) {
        const __m512i mixed = use_xor ? _mm512_xor_si512(a.av[i], bc[g])
                                      : _mm512_and_si512(a.av[i], bc[g]);
        const __m512i cnt = _mm512_popcnt_epi64(mixed);
        vacc_[i][g] = _mm512_add_epi64(
            vacc_[i][g], _mm512_slli_epi64(cnt, static_cast<unsigned>(shift)));
      }
    }
  }

  void mma(const u32* a_base, i64 a_stride, const u32* b_base, i64 b_stride,
           int shift, bool use_xor = false) {
    APanel p;
    load_a(p, a_base, a_stride);
    mma_preloaded(p, b_base, b_stride, shift, use_xor);
  }

  void flush(i32* acc64) const {
    alignas(64) u64 tmp[8];
    for (int i = 0; i < kTileM; ++i) {
      i32* row = acc64 + i * kTileN;
      for (int g = 0; g < 2; ++g) {
        _mm512_store_si512(reinterpret_cast<__m512i*>(tmp), vacc_[i][g]);
        for (int c = 0; c < 4; ++c) {
          const int j = 4 * g + c;
          row[j] = static_cast<i32>(static_cast<u32>(row[j]) +
                                    static_cast<u32>(tmp[2 * c] + tmp[2 * c + 1]));
        }
      }
    }
  }

 private:
  __m512i vacc_[kTileM][2];
};

#elif defined(__AVX2__)

/// Per-byte popcount of a 256-bit vector via the classic 4-bit LUT.
inline __m256i popcount_bytes(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

/// 8x8 tile accumulator: one reset/flush pair brackets the whole K x
/// bit-plane reduction of an output tile, so per-MMA work stays in vector
/// registers.
class TileAcc {
 public:
  struct APanel {
    __m256i av[kTileM];
  };

  static void load_a(APanel& p, const u32* a_base, i64 a_stride) {
    for (int i = 0; i < kTileM; ++i) {
      p.av[i] = _mm256_broadcastsi128_si256(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(a_base + i * a_stride)));
    }
  }

  void reset() {
    for (auto& row : vacc_) {
      for (auto& v : row) v = _mm256_setzero_si256();
    }
  }

  /// vacc += (A_tile x B_tile) << shift with A rows already broadcast.
  void mma_preloaded(const APanel& a, const u32* b_base, i64 b_stride,
                     int shift, bool use_xor = false) {
    // Pack the 8 B columns as 4 vectors of two 128-bit lanes each.
    __m256i bc[4];
    for (int p = 0; p < 4; ++p) {
      const __m128i lo = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(b_base + (2 * p) * b_stride));
      const __m128i hi = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(b_base + (2 * p + 1) * b_stride));
      bc[p] = _mm256_set_m128i(hi, lo);
    }
    const __m256i zero = _mm256_setzero_si256();
    for (int i = 0; i < kTileM; ++i) {
      for (int p = 0; p < 4; ++p) {
        const __m256i x = use_xor ? _mm256_xor_si256(a.av[i], bc[p])
                                  : _mm256_and_si256(a.av[i], bc[p]);
        // vpsadbw sums 8 popcount bytes into each of 4 u64 lanes:
        // [col 2p bytes 0-7 | col 2p bytes 8-15 | col 2p+1 ... ].
        const __m256i sums = _mm256_sad_epu8(popcount_bytes(x), zero);
        vacc_[i][p] = _mm256_add_epi64(
            vacc_[i][p], _mm256_slli_epi64(sums, shift));
      }
    }
  }

  void mma(const u32* a_base, i64 a_stride, const u32* b_base, i64 b_stride,
           int shift, bool use_xor = false) {
    APanel p;
    load_a(p, a_base, a_stride);
    mma_preloaded(p, b_base, b_stride, shift, use_xor);
  }

  /// acc64[8x8] (+)= vacc truncated to u32 (exact uint32-wrap contract).
  void flush(i32* acc64) const {
    alignas(32) u64 tmp[4];
    for (int i = 0; i < kTileM; ++i) {
      i32* row = acc64 + i * kTileN;
      for (int p = 0; p < 4; ++p) {
        _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), vacc_[i][p]);
        row[2 * p] = static_cast<i32>(static_cast<u32>(row[2 * p]) +
                                      static_cast<u32>(tmp[0] + tmp[1]));
        row[2 * p + 1] = static_cast<i32>(static_cast<u32>(row[2 * p + 1]) +
                                          static_cast<u32>(tmp[2] + tmp[3]));
      }
    }
  }

 private:
  __m256i vacc_[kTileM][4];
};

#else  // scalar fallback

class TileAcc {
 public:
  struct APanel {
    Lane128 ar[kTileM];
  };

  static void load_a(APanel& p, const u32* a_base, i64 a_stride) {
    for (int i = 0; i < kTileM; ++i) p.ar[i] = load_lane(a_base + i * a_stride);
  }

  void reset() { std::memset(vacc_, 0, sizeof(vacc_)); }

  void mma_preloaded(const APanel& a, const u32* b_base, i64 b_stride,
                     int shift, bool use_xor = false) {
    Lane128 bc[kTileN];
    for (int j = 0; j < kTileN; ++j) bc[j] = load_lane(b_base + j * b_stride);
    for (int i = 0; i < kTileM; ++i) {
      u64* row = vacc_[i];
      for (int j = 0; j < kTileN; ++j) {
        const i32 cnt = use_xor ? xor_popcount(a.ar[i], bc[j])
                                : and_popcount(a.ar[i], bc[j]);
        row[j] += static_cast<u64>(cnt) << shift;
      }
    }
  }

  void mma(const u32* a_base, i64 a_stride, const u32* b_base, i64 b_stride,
           int shift, bool use_xor = false) {
    APanel p;
    load_a(p, a_base, a_stride);
    mma_preloaded(p, b_base, b_stride, shift, use_xor);
  }

  void flush(i32* acc64) const {
    for (int i = 0; i < kTileM; ++i) {
      i32* row = acc64 + i * kTileN;
      for (int j = 0; j < kTileN; ++j) {
        row[j] = static_cast<i32>(static_cast<u32>(row[j]) +
                                  static_cast<u32>(vacc_[i][j]));
      }
    }
  }

 private:
  u64 vacc_[kTileM][kTileN];
};

#endif

}  // namespace qgtc::detail
