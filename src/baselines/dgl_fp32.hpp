// DGL-substitute baseline (see DESIGN.md): the full-precision GNN compute
// path the paper compares against. DGL runs highly-optimised fp32 CUDA-core
// kernels — sparse SpMM for neighbour aggregation and dense GEMM for the
// node update; we provide the OpenMP CPU equivalents.
#pragma once

#include "common/matrix.hpp"
#include "graph/csr.hpp"

namespace qgtc::baselines {

/// Y = A x X (sum aggregation over the local CSR adjacency), optionally
/// adding the self term (A + I).
MatrixF spmm_csr(const CsrGraph& local, const MatrixF& x, bool add_self = true);

/// Dense fp32 GEMM, OpenMP-parallel, i-k-j loop order (vectorisable inner j).
MatrixF gemm_f32(const MatrixF& a, const MatrixF& b);

/// Dense fp32 aggregation (Y = A_dense x X) for studies that want the dense
/// CUDA-core-style data path.
MatrixF dense_aggregate_f32(const MatrixF& a_dense, const MatrixF& x);

void relu_inplace(MatrixF& m);

}  // namespace qgtc::baselines
