#include "baselines/int8_gemm.hpp"

#include <algorithm>

#include "parallel/parallel_for.hpp"

namespace qgtc::baselines {

MatrixI8 to_int8(const MatrixI32& m) {
  MatrixI8 out(m.rows(), m.cols());
  parallel_for(0, m.size(), [&](i64 i) {
    out.data()[i] = static_cast<std::int8_t>(std::clamp(m.data()[i], -128, 127));
  });
  return out;
}

MatrixI32 gemm_int8(const MatrixI8& a, const MatrixI8& b) {
  QGTC_CHECK(a.cols() == b.rows(), "gemm_int8: inner dimensions differ");
  MatrixI32 c(a.rows(), b.cols(), 0);
  const i64 n = b.cols();
  parallel_for(0, a.rows(), [&](i64 i) {
    i32* crow = c.row(i).data();
    for (i64 k = 0; k < a.cols(); ++k) {
      // No zero-skipping: cuBLAS executes the dense GEMM regardless of the
      // operand's sparsity, which is exactly the inefficiency Figure 7(c)
      // exposes.
      const i32 aik = a(i, k);
      const std::int8_t* brow = b.row(k).data();
      for (i64 j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  });
  return c;
}

}  // namespace qgtc::baselines
