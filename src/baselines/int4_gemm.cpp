#include "baselines/int4_gemm.hpp"

#include "parallel/parallel_for.hpp"

namespace qgtc::baselines {

Int4Matrix::Int4Matrix(i64 rows, i64 cols)
    : rows_(rows), cols_(cols), bytes_per_row_(ceil_div(cols, 2)) {
  data_.assign(static_cast<std::size_t>(rows_ * bytes_per_row_), 0);
}

void Int4Matrix::set(i64 r, i64 c, i32 v) {
  QGTC_CHECK(v >= 0 && v <= 15, "int4 value out of [0,15]");
  u8& byte = data_[static_cast<std::size_t>(r * bytes_per_row_ + c / 2)];
  if (c % 2 == 0) {
    byte = static_cast<u8>((byte & 0xF0) | v);
  } else {
    byte = static_cast<u8>((byte & 0x0F) | (v << 4));
  }
}

Int4Matrix Int4Matrix::pack(const MatrixI32& m) {
  Int4Matrix out(m.rows(), m.cols());
  for (i64 r = 0; r < m.rows(); ++r) {
    for (i64 c = 0; c < m.cols(); ++c) out.set(r, c, m(r, c));
  }
  return out;
}

MatrixI32 gemm_int4(const Int4Matrix& a, const Int4Matrix& b) {
  QGTC_CHECK(a.cols() == b.rows(), "gemm_int4: inner dimensions differ");
  MatrixI32 c(a.rows(), b.cols(), 0);
  const i64 n = b.cols();
  // Dequantize-on-load model: B is unpacked once to an int32 panel (the
  // fragment-load conversion a TC int4 pipeline performs), then the dense
  // GEMM runs with no sparsity skipping — CUTLASS computes every MAC, which
  // is the Table 3 comparison point.
  MatrixI32 bu(b.rows(), n);
  parallel_for(0, b.rows(), [&](i64 k) {
    i32* row = bu.row(k).data();
    for (i64 j = 0; j < n; ++j) row[j] = b.get(k, j);
  });
  parallel_for(0, a.rows(), [&](i64 i) {
    i32* crow = c.row(i).data();
    for (i64 k = 0; k < a.cols(); ++k) {
      const i32 aik = a.get(i, k);
      const i32* brow = bu.row(k).data();
      for (i64 j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  });
  return c;
}

}  // namespace qgtc::baselines
