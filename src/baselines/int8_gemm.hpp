// cuBLASgemmEX(int8) substitute (paper §6.2, Figure 7(c)): a fixed-8-bit
// quantized GEMM with int32 accumulation — the minimum bitwidth cuBLAS
// supports on Tensor Cores. QGTC's any-bitwidth path is compared against it.
#pragma once

#include "common/matrix.hpp"

namespace qgtc::baselines {

using MatrixI8 = Matrix<std::int8_t>;

/// Clamps an int32 matrix (values expected in [0, 255)) to int8 storage for
/// the baseline; values outside [-128, 127] saturate.
MatrixI8 to_int8(const MatrixI32& m);

/// C = A x B with int8 inputs and int32 accumulation, OpenMP-parallel.
MatrixI32 gemm_int8(const MatrixI8& a, const MatrixI8& b);

}  // namespace qgtc::baselines
