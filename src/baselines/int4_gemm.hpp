// CUTLASS(int4) substitute (paper §6.2, Table 3): a nibble-packed 4-bit
// GEMM with int32 accumulation. CUTLASS only supports 4-bit x 4-bit, so the
// binary adjacency must also be stored in 4 bits — the inefficiency QGTC's
// 1-bit x n-bit path removes.
#pragma once

#include "common/matrix.hpp"

namespace qgtc::baselines {

/// Unsigned 4-bit matrix, two values per byte (low nibble = even column).
class Int4Matrix {
 public:
  Int4Matrix() = default;
  Int4Matrix(i64 rows, i64 cols);

  /// Packs an int32 matrix with values in [0, 15] (checked).
  static Int4Matrix pack(const MatrixI32& m);

  [[nodiscard]] i64 rows() const { return rows_; }
  [[nodiscard]] i64 cols() const { return cols_; }
  [[nodiscard]] i32 get(i64 r, i64 c) const {
    const u8 byte = data_[static_cast<std::size_t>(r * bytes_per_row_ + c / 2)];
    return (c % 2 == 0) ? (byte & 0xF) : (byte >> 4);
  }
  void set(i64 r, i64 c, i32 v);

  [[nodiscard]] const u8* row_data(i64 r) const {
    return data_.data() + r * bytes_per_row_;
  }
  [[nodiscard]] i64 bytes_per_row() const { return bytes_per_row_; }

 private:
  i64 rows_ = 0, cols_ = 0, bytes_per_row_ = 0;
  AlignedVector<u8> data_;
};

/// C = A x B where both operands are unsigned 4-bit, int32 accumulation.
MatrixI32 gemm_int4(const Int4Matrix& a, const Int4Matrix& b);

}  // namespace qgtc::baselines
