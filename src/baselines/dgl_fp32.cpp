#include "baselines/dgl_fp32.hpp"

#include "parallel/parallel_for.hpp"

namespace qgtc::baselines {

MatrixF spmm_csr(const CsrGraph& local, const MatrixF& x, bool add_self) {
  QGTC_CHECK(local.num_nodes() == x.rows(),
             "spmm_csr: adjacency/feature row mismatch");
  MatrixF y(x.rows(), x.cols(), 0.0f);
  const i64 d = x.cols();
  parallel_for(0, local.num_nodes(), [&](i64 u) {
    float* out = y.row(u).data();
    if (add_self) {
      const float* self = x.row(u).data();
      for (i64 j = 0; j < d; ++j) out[j] = self[j];
    }
    for (const i32 v : local.neighbors(u)) {
      const float* src = x.row(v).data();
      for (i64 j = 0; j < d; ++j) out[j] += src[j];
    }
  });
  return y;
}

MatrixF gemm_f32(const MatrixF& a, const MatrixF& b) {
  QGTC_CHECK(a.cols() == b.rows(), "gemm_f32: inner dimensions differ");
  MatrixF c(a.rows(), b.cols(), 0.0f);
  const i64 n = b.cols();
  parallel_for(0, a.rows(), [&](i64 i) {
    float* crow = c.row(i).data();
    for (i64 k = 0; k < a.cols(); ++k) {
      const float aik = a(i, k);
      const float* brow = b.row(k).data();
      for (i64 j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  });
  return c;
}

MatrixF dense_aggregate_f32(const MatrixF& a_dense, const MatrixF& x) {
  return gemm_f32(a_dense, x);
}

void relu_inplace(MatrixF& m) {
  parallel_for(0, m.size(), [&](i64 i) {
    if (m.data()[i] < 0.0f) m.data()[i] = 0.0f;
  });
}

}  // namespace qgtc::baselines
