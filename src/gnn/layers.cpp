#include "gnn/layers.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace qgtc::gnn {

const char* model_name(ModelKind k) {
  return k == ModelKind::kClusterGCN ? "Cluster GCN" : "Batched GIN";
}

std::vector<LayerWeights> init_weights(const GnnConfig& cfg, u64 seed) {
  QGTC_CHECK(cfg.num_layers >= 1, "model needs at least one layer");
  QGTC_CHECK(cfg.in_dim > 0 && cfg.out_dim > 0, "in/out dims must be set");
  std::vector<LayerWeights> ws;
  ws.reserve(static_cast<std::size_t>(cfg.num_layers));
  Rng rng(seed);
  for (int l = 0; l < cfg.num_layers; ++l) {
    const i64 fan_in = cfg.layer_in(l);
    const i64 fan_out = cfg.layer_out(l);
    const float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
    MatrixF w(fan_in, fan_out);
    for (i64 i = 0; i < w.size(); ++i) w.data()[i] = rng.next_float(-bound, bound);
    LayerWeights lw{std::move(w), {}};
    if (cfg.gin_mlp) {
      const float b2 = std::sqrt(6.0f / static_cast<float>(2 * fan_out));
      lw.w2 = MatrixF(fan_out, fan_out);
      for (i64 i = 0; i < lw.w2.size(); ++i) {
        lw.w2.data()[i] = rng.next_float(-b2, b2);
      }
    }
    ws.push_back(std::move(lw));
  }
  return ws;
}

}  // namespace qgtc::gnn
