// GNN layer configuration and weights. Two model families from the paper's
// evaluation (§6): Cluster GCN (aggregate -> update, hidden dim 16) and
// Batched GIN (update -> aggregate, hidden dim 64).
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "kernels/anybit_mm.hpp"

namespace qgtc::gnn {

enum class ModelKind { kClusterGCN, kBatchedGIN };

[[nodiscard]] const char* model_name(ModelKind k);

struct GnnConfig {
  ModelKind kind = ModelKind::kClusterGCN;
  int num_layers = 3;
  i64 in_dim = 0;
  i64 hidden_dim = 16;
  i64 out_dim = 0;      // number of classes
  int feat_bits = 8;    // s: activation bitwidth
  int weight_bits = 8;  // t: weight bitwidth

  // Kernel options (the §4 optimisations; all individually toggleable so the
  // ablation bench can isolate each).
  bool zero_tile_jump = true;
  ReuseMode reuse = ReuseMode::kCrossTile;
  bool fused_epilogue = true;

  /// Hidden-layer activation, executed inside the fused epilogue (or the
  /// bit-identical standalone requantization when fused_epilogue is off).
  tcsim::Activation activation = tcsim::Activation::kRelu;

  /// Per-layer bit-width selection at calibration: each requantizing stage
  /// (and each cached weight tensor) stores only the planes its calibrated
  /// value range needs, up to feat_bits/weight_bits. Exact on the
  /// calibration batch; other batches clamp into the narrowed range.
  bool per_layer_bits = true;

  /// GIN variant: 2-layer MLP update (w then w2) instead of a single linear
  /// layer (§2.1: "a single fully connected layer or an MLP").
  bool gin_mlp = false;

  /// Output dimension of layer `l` (hidden for all but the last).
  [[nodiscard]] i64 layer_out(int l) const {
    return l + 1 == num_layers ? out_dim : hidden_dim;
  }
  /// Input dimension of layer `l`.
  [[nodiscard]] i64 layer_in(int l) const {
    return l == 0 ? in_dim : hidden_dim;
  }
};

/// Per-layer fp32 master weights (in_dim x out_dim, no bias: the integer
/// pipeline folds affine terms through the BN epilogue when needed).
/// `w2` (out_dim x out_dim) is present only for MLP updates (gin_mlp).
struct LayerWeights {
  MatrixF w;
  MatrixF w2;  // empty unless cfg.gin_mlp
};

/// Xavier-uniform initialised weights for every layer, deterministic in seed.
std::vector<LayerWeights> init_weights(const GnnConfig& cfg, u64 seed);

}  // namespace qgtc::gnn
