// Fully binarized (+-1) GNN on the tensor-core substrate — the extension the
// paper positions TC XOR support for (§2.3 cites Binary Graph Neural
// Networks; §3.1 builds on binarized-NN arithmetic). Weights and activations
// are sign-binarized; the update GEMM runs as XOR+popcount
// (dot = K - 2 * popcnt(a XOR b)) and the aggregation as AND+popcount with a
// degree correction (sum of +-1 neighbours = 2 * popcnt(adj AND x+) - deg).
#pragma once

#include "bittensor/bit_matrix.hpp"
#include "gnn/layers.hpp"
#include "graph/batching.hpp"

namespace qgtc::gnn {

/// Packs a +-1 matrix as bits (+1 -> 1, -1 -> 0).
BitMatrix pack_pm1(const MatrixI32& pm1, BitLayout layout,
                   PadPolicy pad = PadPolicy::kTile8);

/// Sign-binarize an int32 matrix to +-1 (>= 0 maps to +1).
MatrixI32 sign_pm1(const MatrixI32& m);

/// Sign-binarize an fp32 matrix to +-1.
MatrixI32 sign_pm1(const MatrixF& m);

/// C = A x B where both operands are +-1 matrices stored as bits:
/// C[i,j] = K - 2 * popcnt(row_a XOR col_b). Exact integer result.
MatrixI32 xnor_mm_pm1(const BitMatrix& a, const BitMatrix& b, i64 logical_k);

/// Y = Adj x X where Adj is 0/1 (kRowMajorK) and X is +-1 bits (kColMajorK):
/// Y[i,j] = 2 * popcnt(adj_i AND xplus_j) - deg(i). `row_degree` must hold
/// the row sums of Adj (self-loops included if present).
MatrixI32 binary_aggregate(const BitMatrix& adj, const BitMatrix& x_plus,
                           const std::vector<i32>& row_degree,
                           bool zero_tile_jump = true);

/// Row degrees of a packed 0/1 adjacency (popcount per row).
std::vector<i32> adjacency_row_degrees(const BitMatrix& adj);

/// A fully binarized Cluster-GCN-style model: per layer, aggregate +-1
/// activations over the binary adjacency, update with +-1 weights via XOR
/// GEMM, and re-binarize by sign. The final layer emits int32 scores.
class BinaryGnnModel {
 public:
  static BinaryGnnModel create(const GnnConfig& cfg, u64 seed);

  [[nodiscard]] const GnnConfig& config() const { return cfg_; }

  /// Forward one batch: fp32 features are sign-binarized at the input.
  MatrixI32 forward(const BitMatrix& adj, const MatrixF& x) const;

  /// Integer reference implementation (naive loops) for testing.
  MatrixI32 forward_reference(const BitMatrix& adj, const MatrixF& x) const;

 private:
  GnnConfig cfg_;
  std::vector<MatrixI32> w_pm1_;     // +-1 weights per layer
  std::vector<BitMatrix> w_bits_;    // packed kColMajorK
};

}  // namespace qgtc::gnn
