#include "gnn/qat.hpp"

#include <algorithm>
#include <cmath>

#include "baselines/dgl_fp32.hpp"
#include "common/rng.hpp"
#include "parallel/parallel_for.hpp"

namespace qgtc::gnn {

MatrixF fake_quant(const MatrixF& m, int bits) {
  if (bits >= 32) return m;
  const QuantParams qp = quant_params_from_data(m, bits);
  return dequantize_matrix(quantize_matrix(m, qp), qp);
}

namespace {

/// Symmetrically-normalised aggregation Y = D^-1/2 (A + I) D^-1/2 X.
/// Symmetric, so its transpose (needed in backprop) is itself.
MatrixF spmm_sym(const CsrGraph& g, const std::vector<float>& norm,
                 const MatrixF& x) {
  MatrixF y(x.rows(), x.cols(), 0.0f);
  const i64 d = x.cols();
  parallel_for(0, g.num_nodes(), [&](i64 u) {
    float* out = y.row(u).data();
    const float nu = norm[static_cast<std::size_t>(u)];
    const float* self = x.row(u).data();
    for (i64 j = 0; j < d; ++j) out[j] = nu * self[j];
    for (const i32 v : g.neighbors(u)) {
      const float nv = norm[static_cast<std::size_t>(v)];
      const float* src = x.row(v).data();
      for (i64 j = 0; j < d; ++j) out[j] += nv * src[j];
    }
    for (i64 j = 0; j < d; ++j) out[j] *= nu;
  });
  return y;
}

/// C = A^T * B (used for weight gradients).
MatrixF gemm_tn(const MatrixF& a, const MatrixF& b) {
  MatrixF c(a.cols(), b.cols(), 0.0f);
  const i64 n = b.cols();
#pragma omp parallel
  {
    MatrixF local(a.cols(), n, 0.0f);
#pragma omp for schedule(static) nowait
    for (i64 k = 0; k < a.rows(); ++k) {
      const float* arow = a.row(k).data();
      const float* brow = b.row(k).data();
      for (i64 i = 0; i < a.cols(); ++i) {
        const float aki = arow[i];
        if (aki == 0.0f) continue;
        float* crow = local.row(i).data();
        for (i64 j = 0; j < n; ++j) crow[j] += aki * brow[j];
      }
    }
#pragma omp critical
    for (i64 i = 0; i < c.size(); ++i) c.data()[i] += local.data()[i];
  }
  return c;
}

/// C = A * B^T (used for activation gradients).
MatrixF gemm_nt(const MatrixF& a, const MatrixF& b) {
  MatrixF c(a.rows(), b.rows(), 0.0f);
  parallel_for(0, a.rows(), [&](i64 i) {
    const float* arow = a.row(i).data();
    float* crow = c.row(i).data();
    for (i64 j = 0; j < b.rows(); ++j) {
      const float* brow = b.row(j).data();
      float acc = 0.0f;
      for (i64 k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      crow[j] = acc;
    }
  });
  return c;
}

MatrixF gemm_nn(const MatrixF& a, const MatrixF& b) {
  MatrixF c(a.rows(), b.cols(), 0.0f);
  const i64 n = b.cols();
  parallel_for(0, a.rows(), [&](i64 i) {
    float* crow = c.row(i).data();
    for (i64 k = 0; k < a.cols(); ++k) {
      const float aik = a(i, k);
      const float* brow = b.row(k).data();
      for (i64 j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  });
  return c;
}

float accuracy(const MatrixF& logits, const std::vector<i32>& labels,
               const std::vector<u8>& mask, u8 want) {
  i64 correct = 0, total = 0;
  for (i64 u = 0; u < logits.rows(); ++u) {
    if (mask[static_cast<std::size_t>(u)] != want) continue;
    const auto row = logits.row(u);
    const i64 pred = static_cast<i64>(
        std::max_element(row.begin(), row.end()) - row.begin());
    correct += (pred == labels[static_cast<std::size_t>(u)]);
    ++total;
  }
  return total == 0 ? 0.0f : static_cast<float>(correct) / static_cast<float>(total);
}

}  // namespace

QatResult train_qat_gcn(const Dataset& ds, const QatConfig& cfg) {
  const CsrGraph& g = ds.graph;
  const i64 n = g.num_nodes();
  const i64 d = ds.features.cols();
  const i64 classes = ds.spec.num_classes;

  std::vector<float> norm(static_cast<std::size_t>(n));
  for (i64 u = 0; u < n; ++u) {
    norm[static_cast<std::size_t>(u)] =
        1.0f / std::sqrt(static_cast<float>(g.degree(u) + 1));
  }

  // Train/test split.
  std::vector<u8> train_mask(static_cast<std::size_t>(n), 0);
  Rng rng(cfg.seed);
  for (i64 u = 0; u < n; ++u) {
    train_mask[static_cast<std::size_t>(u)] = rng.next_bool(cfg.train_frac) ? 1 : 0;
  }
  i64 n_train = 0;
  for (const u8 m : train_mask) n_train += m;
  if (n_train == 0) n_train = 1;

  // Layer-0 aggregation is constant across epochs: P = A_hat * fq(X).
  const MatrixF x0 = fake_quant(ds.features, cfg.bits);
  const MatrixF p = spmm_sym(g, norm, x0);

  GnnConfig mcfg;
  mcfg.kind = ModelKind::kClusterGCN;
  mcfg.num_layers = 2;
  mcfg.in_dim = d;
  mcfg.hidden_dim = cfg.hidden;
  mcfg.out_dim = classes;
  auto weights = init_weights(mcfg, cfg.seed ^ 0xabcdULL);
  MatrixF v1(weights[0].w.rows(), weights[0].w.cols(), 0.0f);  // momentum
  MatrixF v2(weights[1].w.rows(), weights[1].w.cols(), 0.0f);

  MatrixF logits;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    const float lr =
        cfg.lr * (epoch >= cfg.epochs * 2 / 3 ? 0.25f : 1.0f);
    const MatrixF w1q = fake_quant(weights[0].w, cfg.bits);
    const MatrixF w2q = fake_quant(weights[1].w, cfg.bits);

    // Forward.
    MatrixF z1 = gemm_nn(p, w1q);
    MatrixF h1 = z1;
    baselines::relu_inplace(h1);
    const MatrixF h1q = fake_quant(h1, cfg.bits);
    const MatrixF q = spmm_sym(g, norm, h1q);
    logits = gemm_nn(q, w2q);

    // Backward: dZ2 = (softmax - onehot) / n_train on train nodes.
    MatrixF dz2(n, classes, 0.0f);
    parallel_for(0, n, [&](i64 u) {
      if (train_mask[static_cast<std::size_t>(u)] == 0) return;
      const auto row = logits.row(u);
      const float mx = *std::max_element(row.begin(), row.end());
      float sum = 0.0f;
      float* out = dz2.row(u).data();
      for (i64 c = 0; c < classes; ++c) {
        out[c] = std::exp(row[static_cast<std::size_t>(c)] - mx);
        sum += out[c];
      }
      const float inv = 1.0f / (sum * static_cast<float>(n_train));
      for (i64 c = 0; c < classes; ++c) out[c] *= inv;
      out[ds.labels[static_cast<std::size_t>(u)]] -=
          1.0f / static_cast<float>(n_train);
    });

    const MatrixF dw2 = gemm_tn(q, dz2);
    // dH1q = A_hat^T (dZ2 W2^T); A_hat symmetric so reuse spmm_sym.
    MatrixF dh1 = spmm_sym(g, norm, gemm_nt(dz2, w2q));
    // Straight-through: fake-quant and ReLU gradients gate on the fp32 z1.
    parallel_for(0, dh1.size(), [&](i64 i) {
      if (z1.data()[i] <= 0.0f) dh1.data()[i] = 0.0f;
    });
    const MatrixF dw1 = gemm_tn(p, dh1);

    // SGD with momentum (gradients flow straight through fake_quant to the
    // fp32 masters).
    parallel_for(0, v1.size(), [&](i64 i) {
      v1.data()[i] = cfg.momentum * v1.data()[i] - lr * dw1.data()[i];
      weights[0].w.data()[i] += v1.data()[i];
    });
    parallel_for(0, v2.size(), [&](i64 i) {
      v2.data()[i] = cfg.momentum * v2.data()[i] - lr * dw2.data()[i];
      weights[1].w.data()[i] += v2.data()[i];
    });
  }

  QatResult res;
  res.train_acc = accuracy(logits, ds.labels, train_mask, 1);
  res.test_acc = accuracy(logits, ds.labels, train_mask, 0);
  res.weights = std::move(weights);
  return res;
}

}  // namespace qgtc::gnn
