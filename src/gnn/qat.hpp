// Quantization-aware training (paper §6.1, Table 2): a 2-layer GCN trained
// full-graph with fake-quantized weights and activations (straight-through
// estimator), evaluated at several bitwidths to reproduce the
// accuracy-vs-bits trend (fp32 ≈ 16 ≈ 8 > 4 >> 2).
#pragma once

#include "gnn/layers.hpp"
#include "graph/generator.hpp"

namespace qgtc::gnn {

struct QatConfig {
  i64 hidden = 64;
  int bits = 32;  // 32 disables fake-quant (the FP32 column of Table 2)
  int epochs = 30;
  float lr = 0.1f;
  float momentum = 0.9f;
  float train_frac = 0.6f;
  u64 seed = 42;
};

struct QatResult {
  float train_acc = 0.0f;
  float test_acc = 0.0f;
  std::vector<LayerWeights> weights;  // trained fp32 master weights
};

/// Trains and evaluates; deterministic in cfg.seed.
QatResult train_qat_gcn(const Dataset& ds, const QatConfig& cfg);

/// Fake-quantize a matrix at `bits` (identity when bits >= 32): quantize per
/// Eq. 2 then dequantize, so the forward pass sees quantization error while
/// gradients flow straight through.
MatrixF fake_quant(const MatrixF& m, int bits);

}  // namespace qgtc::gnn
