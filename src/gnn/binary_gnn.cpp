#include "gnn/binary_gnn.hpp"

#include <bit>

#include "kernels/bmm.hpp"
#include "parallel/parallel_for.hpp"

namespace qgtc::gnn {

BitMatrix pack_pm1(const MatrixI32& pm1, BitLayout layout, PadPolicy pad) {
  BitMatrix bm(pm1.rows(), pm1.cols(), layout, pad);
  for (i64 r = 0; r < pm1.rows(); ++r) {
    for (i64 c = 0; c < pm1.cols(); ++c) {
      const i32 v = pm1(r, c);
      QGTC_CHECK(v == 1 || v == -1, "pack_pm1 expects +-1 values");
      if (v == 1) bm.set(r, c, true);
    }
  }
  return bm;
}

MatrixI32 sign_pm1(const MatrixI32& m) {
  MatrixI32 out(m.rows(), m.cols());
  parallel_for(0, m.size(), [&](i64 i) {
    out.data()[i] = m.data()[i] >= 0 ? 1 : -1;
  });
  return out;
}

MatrixI32 sign_pm1(const MatrixF& m) {
  MatrixI32 out(m.rows(), m.cols());
  parallel_for(0, m.size(), [&](i64 i) {
    out.data()[i] = m.data()[i] >= 0.0f ? 1 : -1;
  });
  return out;
}

MatrixI32 xnor_mm_pm1(const BitMatrix& a, const BitMatrix& b, i64 logical_k) {
  // XOR popcount counts disagreements d; the +-1 dot product over K terms is
  // (K - d) - d = K - 2d. Padding bits are zero in both operands, so they
  // contribute zero disagreements.
  BmmOptions opt;
  opt.op = tcsim::BmmaOp::kXor;
  MatrixI32 padded = make_padded_accumulator(a, b);
  bmm_accumulate(a, b, padded, /*shift=*/0, opt);
  MatrixI32 out = slice_logical(padded, a.rows(), b.cols());
  const i32 k = static_cast<i32>(logical_k);
  parallel_for(0, out.size(), [&](i64 i) {
    out.data()[i] = k - 2 * out.data()[i];
  });
  return out;
}

std::vector<i32> adjacency_row_degrees(const BitMatrix& adj) {
  QGTC_CHECK(adj.layout() == BitLayout::kRowMajorK,
             "row degrees need the kRowMajorK layout");
  std::vector<i32> deg(static_cast<std::size_t>(adj.rows()), 0);
  parallel_for(0, adj.rows(), [&](i64 r) {
    const u32* words = adj.row_words(r);
    i32 d = 0;
    for (i64 w = 0; w < adj.k_words(); ++w) d += std::popcount(words[w]);
    deg[static_cast<std::size_t>(r)] = d;
  });
  return deg;
}

MatrixI32 binary_aggregate(const BitMatrix& adj, const BitMatrix& x_plus,
                           const std::vector<i32>& row_degree,
                           bool zero_tile_jump) {
  QGTC_CHECK(static_cast<i64>(row_degree.size()) == adj.rows(),
             "row_degree size must match adjacency rows");
  // popcnt(adj AND x+) counts +1 neighbours p; the +-1 sum over deg
  // neighbours is p - (deg - p) = 2p - deg. AND semantics keep zero-tile
  // jumping valid here.
  BmmOptions opt;
  opt.zero_tile_jump = zero_tile_jump;
  MatrixI32 padded = make_padded_accumulator(adj, x_plus);
  bmm_accumulate(adj, x_plus, padded, /*shift=*/0, opt);
  MatrixI32 out = slice_logical(padded, adj.rows(), x_plus.cols());
  parallel_for(0, out.rows(), [&](i64 r) {
    const i32 d = row_degree[static_cast<std::size_t>(r)];
    i32* row = out.row(r).data();
    for (i64 c = 0; c < out.cols(); ++c) row[c] = 2 * row[c] - d;
  });
  return out;
}

BinaryGnnModel BinaryGnnModel::create(const GnnConfig& cfg, u64 seed) {
  BinaryGnnModel m;
  m.cfg_ = cfg;
  for (const LayerWeights& lw : init_weights(cfg, seed)) {
    MatrixI32 w = sign_pm1(lw.w);
    m.w_bits_.push_back(pack_pm1(w, BitLayout::kColMajorK));
    m.w_pm1_.push_back(std::move(w));
  }
  return m;
}

MatrixI32 BinaryGnnModel::forward(const BitMatrix& adj, const MatrixF& x) const {
  const std::vector<i32> deg = adjacency_row_degrees(adj);
  MatrixI32 act = sign_pm1(x);
  MatrixI32 scores;
  for (int l = 0; l < cfg_.num_layers; ++l) {
    const bool last = (l + 1 == cfg_.num_layers);
    // Aggregate +-1 activations over the binary adjacency (+1 bits packed
    // on the B side).
    const BitMatrix x_plus = pack_pm1(act, BitLayout::kColMajorK);
    const MatrixI32 agg = binary_aggregate(adj, x_plus, deg);
    // Binarize the aggregate and update with +-1 weights via XOR GEMM.
    const MatrixI32 h = sign_pm1(agg);
    const BitMatrix h_bits = pack_pm1(h, BitLayout::kRowMajorK);
    scores = xnor_mm_pm1(h_bits, w_bits_[static_cast<std::size_t>(l)], h.cols());
    if (last) break;
    act = sign_pm1(scores);
  }
  return scores;
}

MatrixI32 BinaryGnnModel::forward_reference(const BitMatrix& adj,
                                            const MatrixF& x) const {
  MatrixI32 act = sign_pm1(x);
  MatrixI32 scores;
  for (int l = 0; l < cfg_.num_layers; ++l) {
    const bool last = (l + 1 == cfg_.num_layers);
    // Naive aggregation: sum +-1 activations of adjacency-connected nodes.
    MatrixI32 agg(adj.rows(), act.cols(), 0);
    for (i64 i = 0; i < adj.rows(); ++i) {
      for (i64 j = 0; j < adj.cols(); ++j) {
        if (!adj.get(i, j)) continue;
        for (i64 c = 0; c < act.cols(); ++c) agg(i, c) += act(j, c);
      }
    }
    const MatrixI32 h = sign_pm1(agg);
    scores = matmul_reference(h, w_pm1_[static_cast<std::size_t>(l)]);
    if (last) break;
    act = sign_pm1(scores);
  }
  return scores;
}

}  // namespace qgtc::gnn
