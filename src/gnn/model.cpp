#include "gnn/model.hpp"

#include <algorithm>
#include <bit>

#include "baselines/dgl_fp32.hpp"

namespace qgtc::gnn {

namespace {

/// Planes required to represent non-negative value `v` (>= 1).
int bits_needed(i32 v) {
  return v <= 0 ? 1 : 32 - std::countl_zero(static_cast<u32>(v));
}

i32 max_value(const MatrixI32& m) {
  i32 mx = 0;
  for (i64 i = 0; i < m.size(); ++i) mx = std::max(mx, m.data()[i]);
  return mx;
}

/// The stage plan's epilogue, in kernel form (fused to-bit paths).
FusedEpilogue epi_of(const EpiloguePlan& p) {
  FusedEpilogue e;
  e.act = p.act;
  e.rshift = p.rshift;
  return e;
}

/// The stage plan's epilogue, in substrate form (unfused fallback).
tcsim::EpilogueSpec spec_of(const EpiloguePlan& p) {
  return tcsim::EpilogueSpec{p.act, p.rshift,
                             static_cast<i32>((u32{1} << p.out_bits) - 1)};
}

/// Standalone requantization of an int32 activation matrix, in place,
/// through the one shared epilogue definition — bit-identical to what the
/// fused flush applies tile-by-tile.
void requant_inplace(MatrixI32& m, const EpiloguePlan& p) {
  const tcsim::EpilogueSpec spec = spec_of(p);
  for (i64 i = 0; i < m.size(); ++i) {
    m.data()[i] = tcsim::apply_epilogue(m.data()[i], spec);
  }
}

}  // namespace

QgtcModel QgtcModel::create(const GnnConfig& cfg, u64 seed) {
  return from_weights(cfg, init_weights(cfg, seed));
}

QgtcModel QgtcModel::from_weights(const GnnConfig& cfg,
                                  std::vector<LayerWeights> weights) {
  QGTC_CHECK(static_cast<int>(weights.size()) == cfg.num_layers,
             "weight count does not match layer count");
  QgtcModel m;
  m.cfg_ = cfg;
  m.fp_weights_ = std::move(weights);
  m.build_plan();
  m.quantize_weights();
  return m;
}

void QgtcModel::build_plan() {
  const int n = cfg_.num_layers;
  agg_plan_.assign(static_cast<std::size_t>(n), {});
  upd_plan_.assign(static_cast<std::size_t>(n), {});
  upd2_plan_.assign(static_cast<std::size_t>(n), {});
  const bool gcn = cfg_.kind == ModelKind::kClusterGCN;
  for (int l = 0; l < n; ++l) {
    const bool last = (l + 1 == n);
    EpiloguePlan& ap = agg_plan_[static_cast<std::size_t>(l)];
    EpiloguePlan& up = upd_plan_[static_cast<std::size_t>(l)];
    EpiloguePlan& up2 = upd2_plan_[static_cast<std::size_t>(l)];
    ap.fused = up.fused = up2.fused = cfg_.fused_epilogue;
    ap.out_bits = up.out_bits = up2.out_bits = cfg_.feat_bits;
    // Aggregation requantizes without an activation (the nonlinearity sits on
    // the update stage, as in the paper's GCN/GIN layer definitions). The
    // update stage that feeds the final logits stays linear.
    ap.act = tcsim::Activation::kIdentity;
    if (gcn) {
      up.act = last ? tcsim::Activation::kIdentity : cfg_.activation;
    } else if (cfg_.gin_mlp) {
      up.act = cfg_.activation;  // between the two MLP stages, every layer
      up2.act = last ? tcsim::Activation::kIdentity : cfg_.activation;
    } else {
      up.act = last ? tcsim::Activation::kIdentity : cfg_.activation;
    }
  }
}

int QgtcModel::fused_stage_count() const {
  if (!cfg_.fused_epilogue) return 0;
  const int n = cfg_.num_layers;
  // GCN: every layer's aggregation requantizes (the last feeds the logits
  // MM); updates requantize on hidden layers only. GIN mirrors that with the
  // roles swapped, and the MLP variant doubles the update stages.
  if (cfg_.kind == ModelKind::kClusterGCN) return n + (n - 1);
  return n * (cfg_.gin_mlp ? 2 : 1) + (n - 1);
}

void QgtcModel::quantize_weights() {
  w_qparams_.clear();
  w_planes_.clear();
  w2_planes_.clear();
  for (const LayerWeights& lw : fp_weights_) {
    // Weights are quantized once and cached as packed planes (§3.2: W is
    // reused across every subgraph of a layer, so decomposition is
    // pre-computed). With per_layer_bits the cache keeps only the planes the
    // layer's actual code range occupies — always lossless, since the codes
    // are fixed at quantization time.
    const QuantParams qp = quant_params_from_data(lw.w, cfg_.weight_bits);
    w_qparams_.push_back(qp);
    const MatrixI32 q = quantize_matrix(lw.w, qp);
    const int wb = cfg_.per_layer_bits
                       ? std::clamp(bits_needed(max_value(q)), 1, cfg_.weight_bits)
                       : cfg_.weight_bits;
    w_planes_.push_back(StackedBitTensor::decompose(
        q, wb, BitLayout::kColMajorK, PadPolicy::kTile8));
    if (cfg_.gin_mlp) {
      QGTC_CHECK(!lw.w2.empty(), "gin_mlp requires a second weight matrix");
      const QuantParams qp2 = quant_params_from_data(lw.w2, cfg_.weight_bits);
      const MatrixI32 q2 = quantize_matrix(lw.w2, qp2);
      const int wb2 =
          cfg_.per_layer_bits
              ? std::clamp(bits_needed(max_value(q2)), 1, cfg_.weight_bits)
              : cfg_.weight_bits;
      w2_planes_.push_back(StackedBitTensor::decompose(
          q2, wb2, BitLayout::kColMajorK, PadPolicy::kTile8));
    }
  }
}

template <typename Adj>
void QgtcModel::calibrate_impl(const Adj& adj, const MatrixF& x) {
  const int s = cfg_.feat_bits;
  BmmOptions opt;
  opt.zero_tile_jump = cfg_.zero_tile_jump;
  opt.allow_overflow = (cfg_.feat_bits > 8 || cfg_.weight_bits > 8);

  const QuantParams xqp = quant_params_from_data(x, s);
  MatrixI32 xq = quantize_matrix(x, xqp);
  int cur_bits = s;

  // Completes one stage plan from the raw accumulators: derive the right
  // shift from the observed maximum, requantize `m` in place through the
  // shared epilogue, then (per_layer_bits) narrow the stage's plane count to
  // what the requantized range occupies. The narrowing is exact on the
  // calibration batch — the dropped high planes are all-zero here — and a
  // clamp on any batch whose range exceeds it.
  const auto requant_stage = [&](MatrixI32& m, EpiloguePlan& plan) {
    plan.rshift = calibrate_rshift(max_value(m), s);
    plan.out_bits = s;
    requant_inplace(m, plan);
    if (cfg_.per_layer_bits) {
      plan.out_bits = std::clamp(bits_needed(max_value(m)), 1, s);
    }
  };

  const bool gcn = cfg_.kind == ModelKind::kClusterGCN;
  // GCN consumes X on the aggregation B side first; GIN on the update A side.
  for (int l = 0; l < cfg_.num_layers; ++l) {
    const std::size_t li = static_cast<std::size_t>(l);
    const bool last = (l + 1 == cfg_.num_layers);
    if (gcn) {
      auto xp = StackedBitTensor::decompose(xq, cur_bits, BitLayout::kColMajorK,
                                            PadPolicy::kTile8);
      MatrixI32 agg = aggregate_1bit(adj, xp, cfg_.reuse, opt);
      requant_stage(agg, agg_plan_[li]);
      auto xn = StackedBitTensor::decompose(agg, agg_plan_[li].out_bits,
                                            BitLayout::kRowMajorK,
                                            PadPolicy::kTile8);
      MatrixI32 upd = bitmm_fused_int(xn, w_planes_[li], {}, opt);
      if (last) break;
      requant_stage(upd, upd_plan_[li]);
      cur_bits = upd_plan_[li].out_bits;
      xq = std::move(upd);
    } else {
      auto xp = StackedBitTensor::decompose(xq, cur_bits, BitLayout::kRowMajorK,
                                            PadPolicy::kTile8);
      MatrixI32 upd = bitmm_fused_int(xp, w_planes_[li], {}, opt);
      requant_stage(upd, upd_plan_[li]);
      int ub = upd_plan_[li].out_bits;
      if (cfg_.gin_mlp) {
        // Second MLP stage: requantized stage-1 output feeds another GEMM.
        auto xm = StackedBitTensor::decompose(upd, ub, BitLayout::kRowMajorK,
                                              PadPolicy::kTile8);
        MatrixI32 upd2 = bitmm_fused_int(xm, w2_planes_[li], {}, opt);
        requant_stage(upd2, upd2_plan_[li]);
        ub = upd2_plan_[li].out_bits;
        upd = std::move(upd2);
      }
      auto xu = StackedBitTensor::decompose(upd, ub, BitLayout::kColMajorK,
                                            PadPolicy::kTile8);
      MatrixI32 agg = aggregate_1bit(adj, xu, cfg_.reuse, opt);
      if (last) break;
      requant_stage(agg, agg_plan_[li]);
      cur_bits = agg_plan_[li].out_bits;
      xq = std::move(agg);
    }
  }
  calibrated_ = true;
}

void QgtcModel::calibrate(const BitMatrix& adj, const MatrixF& x) {
  calibrate_impl(adj, x);
}

void QgtcModel::calibrate(const TileSparseBitMatrix& adj, const MatrixF& x) {
  calibrate_impl(adj, x);
}

StackedBitTensor QgtcModel::prepare_input(const MatrixF& x) const {
  const QuantParams xqp = quant_params_from_data(x, cfg_.feat_bits);
  const MatrixI32 xq = quantize_matrix(x, xqp);
  const BitLayout layout = cfg_.kind == ModelKind::kClusterGCN
                               ? BitLayout::kColMajorK
                               : BitLayout::kRowMajorK;
  return StackedBitTensor::decompose(xq, cfg_.feat_bits, layout,
                                     PadPolicy::kTile8);
}

MatrixI32 QgtcModel::forward_quantized(const BitMatrix& adj, const MatrixF& x,
                                       ForwardStats* stats,
                                       const tcsim::ExecutionContext* ctx) const {
  return forward_prepared(adj, nullptr, prepare_input(x), stats, ctx);
}

template <typename Adj>
MatrixI32 QgtcModel::forward_impl(const Adj& adj, const TileMap* tile_map,
                                  const StackedBitTensor& x_planes,
                                  ForwardStats* stats,
                                  const tcsim::ExecutionContext* ctx) const {
  // `opt` drives the update-side MMs (activations x weights); the cached
  // adjacency flag map belongs only to the aggregation-side options — a
  // single-plane (1-bit) activation operand would otherwise be jumped with
  // the adjacency's map, whose tile grid it does not share.
  BmmOptions opt;
  opt.zero_tile_jump = cfg_.zero_tile_jump;
  opt.allow_overflow = (cfg_.feat_bits > 8 || cfg_.weight_bits > 8);
  opt.ctx = ctx;
  BmmOptions agg_opt = opt;
  agg_opt.tile_map = tile_map;

  const tcsim::ExecutionContext& exec = resolve_ctx(opt);
  tcsim::Counters before;
  if (stats != nullptr) before = exec.counters();

  const bool gcn = cfg_.kind == ModelKind::kClusterGCN;
  const i64 nodes = adj.rows();
  tcsim::Workspace& ws = exec.workspace();
  // Workspace scratch slots for the unfused fallback's int32 intermediates
  // (reused across layers and batches — nothing is heap-allocated per stage).
  constexpr int kAggScratch = 0, kUpdScratch = 1, kUpd2Scratch = 2;

  // `cur` tracks the packed activation between layers without copying the
  // caller's input planes. Each requantizing stage either runs its epilogue
  // fused (tile-local requantize + re-pack inside the flush, §4.5) or stages
  // through an arena int32 matrix and the same epilogue applied standalone —
  // the plan guarantees the two produce identical planes and tile schedules.
  const StackedBitTensor* cur = &x_planes;
  StackedBitTensor next;
  MatrixI32 logits;

  if (gcn) {
    for (int l = 0; l < cfg_.num_layers; ++l) {
      const std::size_t li = static_cast<std::size_t>(l);
      const bool last = (l + 1 == cfg_.num_layers);
      const EpiloguePlan& ap = agg_plan_[li];
      StackedBitTensor xn;
      if (ap.fused) {
        xn = aggregate_fused_bit(adj, *cur, ap.out_bits, epi_of(ap), agg_opt,
                                 PadPolicy::kTile8);
      } else {
        MatrixI32& agg = ws.int32_scratch(kAggScratch, nodes, cur->cols());
        aggregate_1bit_into(adj, *cur, cfg_.reuse, agg, agg_opt);
        requant_inplace(agg, ap);
        xn = StackedBitTensor::decompose(agg, ap.out_bits,
                                         BitLayout::kRowMajorK,
                                         PadPolicy::kTile8);
      }
      if (last) {
        logits = bitmm_fused_int(xn, w_planes_[li], {}, opt);
        break;
      }
      const EpiloguePlan& up = upd_plan_[li];
      if (up.fused) {
        next = bitmm_fused_bit(xn, w_planes_[li], up.out_bits, epi_of(up), opt,
                               PadPolicy::kTile8, BitLayout::kColMajorK);
      } else {
        MatrixI32& upd =
            ws.int32_scratch(kUpdScratch, nodes, w_planes_[li].cols());
        bitmm_fused_int_into(xn, w_planes_[li], upd, {}, opt);
        requant_inplace(upd, up);
        next = StackedBitTensor::decompose(upd, up.out_bits,
                                           BitLayout::kColMajorK,
                                           PadPolicy::kTile8);
      }
      cur = &next;
    }
  } else {
    for (int l = 0; l < cfg_.num_layers; ++l) {
      const std::size_t li = static_cast<std::size_t>(l);
      const bool last = (l + 1 == cfg_.num_layers);
      const EpiloguePlan& up = upd_plan_[li];
      // The first MLP stage hands kRowMajorK planes to the second stage's MM;
      // a single-stage update feeds the aggregation's B side directly.
      const BitLayout l1 = cfg_.gin_mlp ? BitLayout::kRowMajorK
                                        : BitLayout::kColMajorK;
      StackedBitTensor xu;
      if (up.fused) {
        xu = bitmm_fused_bit(*cur, w_planes_[li], up.out_bits, epi_of(up), opt,
                             PadPolicy::kTile8, l1);
      } else {
        MatrixI32& upd =
            ws.int32_scratch(kUpdScratch, nodes, w_planes_[li].cols());
        bitmm_fused_int_into(*cur, w_planes_[li], upd, {}, opt);
        requant_inplace(upd, up);
        xu = StackedBitTensor::decompose(upd, up.out_bits, l1,
                                         PadPolicy::kTile8);
      }
      if (cfg_.gin_mlp) {
        const EpiloguePlan& up2 = upd2_plan_[li];
        if (up2.fused) {
          xu = bitmm_fused_bit(xu, w2_planes_[li], up2.out_bits, epi_of(up2),
                               opt, PadPolicy::kTile8, BitLayout::kColMajorK);
        } else {
          MatrixI32& upd2 =
              ws.int32_scratch(kUpd2Scratch, nodes, w2_planes_[li].cols());
          bitmm_fused_int_into(xu, w2_planes_[li], upd2, {}, opt);
          requant_inplace(upd2, up2);
          xu = StackedBitTensor::decompose(upd2, up2.out_bits,
                                           BitLayout::kColMajorK,
                                           PadPolicy::kTile8);
        }
      }
      if (last) {
        logits = aggregate_1bit(adj, xu, cfg_.reuse, agg_opt);
        break;
      }
      const EpiloguePlan& ap = agg_plan_[li];
      if (ap.fused) {
        next = aggregate_fused_bit(adj, xu, ap.out_bits, epi_of(ap), agg_opt,
                                   PadPolicy::kTile8);
      } else {
        MatrixI32& agg = ws.int32_scratch(kAggScratch, nodes, xu.cols());
        aggregate_1bit_into(adj, xu, cfg_.reuse, agg, agg_opt);
        requant_inplace(agg, ap);
        next = StackedBitTensor::decompose(agg, ap.out_bits,
                                           BitLayout::kRowMajorK,
                                           PadPolicy::kTile8);
      }
      cur = &next;
    }
  }

  if (stats != nullptr) {
    const tcsim::Counters after = exec.counters();
    stats->tiles_jumped += static_cast<i64>(after.tiles_jumped - before.tiles_jumped);
    stats->bmma_ops += static_cast<i64>(after.bmma_ops - before.bmma_ops);
    stats->int32_bytes_avoided += static_cast<i64>(after.int32_bytes_avoided -
                                                   before.int32_bytes_avoided);
  }
  return logits;
}

MatrixI32 QgtcModel::forward_prepared(const BitMatrix& adj,
                                      const TileMap* tile_map,
                                      const StackedBitTensor& x_planes,
                                      ForwardStats* stats,
                                      const tcsim::ExecutionContext* ctx) const {
  return forward_impl(adj, tile_map, x_planes, stats, ctx);
}

MatrixI32 QgtcModel::forward_prepared(const TileSparseBitMatrix& adj,
                                      const StackedBitTensor& x_planes,
                                      ForwardStats* stats,
                                      const tcsim::ExecutionContext* ctx) const {
  return forward_impl(adj, /*tile_map=*/nullptr, x_planes, stats, ctx);
}

MatrixF QgtcModel::forward_fp32(const CsrGraph& local, const MatrixF& x) const {
  using baselines::gemm_f32;
  using baselines::spmm_csr;
  // fp32 mirror of the configured activation. relu/identity are exact
  // counterparts of the quantized epilogue; relu6/hardswish use the same
  // quantized-domain constants and are reference-only approximations.
  const auto act_inplace = [&](MatrixF& m) {
    switch (cfg_.activation) {
      case tcsim::Activation::kIdentity:
        break;
      case tcsim::Activation::kRelu:
        baselines::relu_inplace(m);
        break;
      case tcsim::Activation::kRelu6:
        for (i64 i = 0; i < m.size(); ++i) {
          m.data()[i] = std::clamp(m.data()[i], 0.0f, 6.0f);
        }
        break;
      case tcsim::Activation::kHardswish:
        for (i64 i = 0; i < m.size(); ++i) {
          const float v = m.data()[i];
          m.data()[i] = v * std::clamp(v + 3.0f, 0.0f, 6.0f) / 6.0f;
        }
        break;
    }
  };
  MatrixF cur = x;
  const bool gcn = cfg_.kind == ModelKind::kClusterGCN;
  for (int l = 0; l < cfg_.num_layers; ++l) {
    const bool last = (l + 1 == cfg_.num_layers);
    if (gcn) {
      MatrixF agg = spmm_csr(local, cur, /*add_self=*/true);
      cur = gemm_f32(agg, fp_weights_[static_cast<std::size_t>(l)].w);
      if (!last) act_inplace(cur);
    } else {
      MatrixF upd = gemm_f32(cur, fp_weights_[static_cast<std::size_t>(l)].w);
      if (cfg_.gin_mlp) {
        act_inplace(upd);
        upd = gemm_f32(upd, fp_weights_[static_cast<std::size_t>(l)].w2);
      }
      if (!last) act_inplace(upd);
      cur = spmm_csr(local, upd, /*add_self=*/true);
    }
  }
  return cur;
}

}  // namespace qgtc::gnn
