#include "gnn/model.hpp"

#include <algorithm>

#include "baselines/dgl_fp32.hpp"

namespace qgtc::gnn {

namespace {

/// ReLU + right-shift + clamp requantization of an int32 activation matrix
/// (the unfused counterpart of the kernel epilogue, used for calibration and
/// the no-fusion ablation).
MatrixI32 requantize(const MatrixI32& m, int rshift, int bits) {
  const i32 qmax = static_cast<i32>((u32{1} << bits) - 1);
  MatrixI32 out(m.rows(), m.cols());
  for (i64 i = 0; i < m.size(); ++i) {
    i32 v = m.data()[i];
    if (v < 0) v = 0;
    v >>= rshift;
    out.data()[i] = std::min(v, qmax);
  }
  return out;
}

i32 max_value(const MatrixI32& m) {
  i32 mx = 0;
  for (i64 i = 0; i < m.size(); ++i) mx = std::max(mx, m.data()[i]);
  return mx;
}

}  // namespace

QgtcModel QgtcModel::create(const GnnConfig& cfg, u64 seed) {
  return from_weights(cfg, init_weights(cfg, seed));
}

QgtcModel QgtcModel::from_weights(const GnnConfig& cfg,
                                  std::vector<LayerWeights> weights) {
  QGTC_CHECK(static_cast<int>(weights.size()) == cfg.num_layers,
             "weight count does not match layer count");
  QgtcModel m;
  m.cfg_ = cfg;
  m.fp_weights_ = std::move(weights);
  m.agg_rshift_.assign(static_cast<std::size_t>(cfg.num_layers), 0);
  m.upd_rshift_.assign(static_cast<std::size_t>(cfg.num_layers), 0);
  m.upd2_rshift_.assign(static_cast<std::size_t>(cfg.num_layers), 0);
  m.quantize_weights();
  return m;
}

void QgtcModel::quantize_weights() {
  w_qparams_.clear();
  w_planes_.clear();
  w2_planes_.clear();
  for (const LayerWeights& lw : fp_weights_) {
    // Weights are quantized once and cached as packed planes (§3.2: W is
    // reused across every subgraph of a layer, so decomposition is
    // pre-computed).
    const QuantParams qp = quant_params_from_data(lw.w, cfg_.weight_bits);
    w_qparams_.push_back(qp);
    const MatrixI32 q = quantize_matrix(lw.w, qp);
    w_planes_.push_back(StackedBitTensor::decompose(
        q, cfg_.weight_bits, BitLayout::kColMajorK, PadPolicy::kTile8));
    if (cfg_.gin_mlp) {
      QGTC_CHECK(!lw.w2.empty(), "gin_mlp requires a second weight matrix");
      const QuantParams qp2 = quant_params_from_data(lw.w2, cfg_.weight_bits);
      const MatrixI32 q2 = quantize_matrix(lw.w2, qp2);
      w2_planes_.push_back(StackedBitTensor::decompose(
          q2, cfg_.weight_bits, BitLayout::kColMajorK, PadPolicy::kTile8));
    }
  }
}

template <typename Adj>
void QgtcModel::calibrate_impl(const Adj& adj, const MatrixF& x) {
  const int s = cfg_.feat_bits;
  BmmOptions opt;
  opt.zero_tile_jump = cfg_.zero_tile_jump;
  opt.allow_overflow = (cfg_.feat_bits > 8 || cfg_.weight_bits > 8);

  const QuantParams xqp = quant_params_from_data(x, s);
  MatrixI32 xq = quantize_matrix(x, xqp);

  const bool gcn = cfg_.kind == ModelKind::kClusterGCN;
  // GCN consumes X on the aggregation B side first; GIN on the update A side.
  for (int l = 0; l < cfg_.num_layers; ++l) {
    const bool last = (l + 1 == cfg_.num_layers);
    if (gcn) {
      auto xp = StackedBitTensor::decompose(xq, s, BitLayout::kColMajorK,
                                            PadPolicy::kTile8);
      MatrixI32 agg = aggregate_1bit(adj, xp, cfg_.reuse, opt);
      agg_rshift_[static_cast<std::size_t>(l)] = calibrate_rshift(max_value(agg), s);
      const MatrixI32 xn_q = requantize(agg, agg_rshift_[static_cast<std::size_t>(l)], s);
      auto xn = StackedBitTensor::decompose(xn_q, s, BitLayout::kRowMajorK,
                                            PadPolicy::kTile8);
      MatrixI32 upd = bitmm_to_int(xn, w_planes_[static_cast<std::size_t>(l)], opt);
      if (last) break;
      upd_rshift_[static_cast<std::size_t>(l)] = calibrate_rshift(max_value(upd), s);
      xq = requantize(upd, upd_rshift_[static_cast<std::size_t>(l)], s);
    } else {
      auto xp = StackedBitTensor::decompose(xq, s, BitLayout::kRowMajorK,
                                            PadPolicy::kTile8);
      MatrixI32 upd = bitmm_to_int(xp, w_planes_[static_cast<std::size_t>(l)], opt);
      upd_rshift_[static_cast<std::size_t>(l)] = calibrate_rshift(max_value(upd), s);
      MatrixI32 xu_q = requantize(upd, upd_rshift_[static_cast<std::size_t>(l)], s);
      if (cfg_.gin_mlp) {
        // Second MLP stage: requantized stage-1 output feeds another GEMM.
        auto xm = StackedBitTensor::decompose(xu_q, s, BitLayout::kRowMajorK,
                                              PadPolicy::kTile8);
        MatrixI32 upd2 = bitmm_to_int(xm, w2_planes_[static_cast<std::size_t>(l)], opt);
        upd2_rshift_[static_cast<std::size_t>(l)] = calibrate_rshift(max_value(upd2), s);
        xu_q = requantize(upd2, upd2_rshift_[static_cast<std::size_t>(l)], s);
      }
      auto xu = StackedBitTensor::decompose(xu_q, s, BitLayout::kColMajorK,
                                            PadPolicy::kTile8);
      MatrixI32 agg = aggregate_1bit(adj, xu, cfg_.reuse, opt);
      if (last) break;
      agg_rshift_[static_cast<std::size_t>(l)] = calibrate_rshift(max_value(agg), s);
      xq = requantize(agg, agg_rshift_[static_cast<std::size_t>(l)], s);
    }
  }
  calibrated_ = true;
}

void QgtcModel::calibrate(const BitMatrix& adj, const MatrixF& x) {
  calibrate_impl(adj, x);
}

void QgtcModel::calibrate(const TileSparseBitMatrix& adj, const MatrixF& x) {
  calibrate_impl(adj, x);
}

StackedBitTensor QgtcModel::prepare_input(const MatrixF& x) const {
  const QuantParams xqp = quant_params_from_data(x, cfg_.feat_bits);
  const MatrixI32 xq = quantize_matrix(x, xqp);
  const BitLayout layout = cfg_.kind == ModelKind::kClusterGCN
                               ? BitLayout::kColMajorK
                               : BitLayout::kRowMajorK;
  return StackedBitTensor::decompose(xq, cfg_.feat_bits, layout,
                                     PadPolicy::kTile8);
}

MatrixI32 QgtcModel::forward_quantized(const BitMatrix& adj, const MatrixF& x,
                                       ForwardStats* stats,
                                       const tcsim::ExecutionContext* ctx) const {
  return forward_prepared(adj, nullptr, prepare_input(x), stats, ctx);
}

template <typename Adj>
MatrixI32 QgtcModel::forward_impl(const Adj& adj, const TileMap* tile_map,
                                  const StackedBitTensor& x_planes,
                                  ForwardStats* stats,
                                  const tcsim::ExecutionContext* ctx) const {
  const int s = cfg_.feat_bits;
  // `opt` drives the update-side MMs (activations x weights); the cached
  // adjacency flag map belongs only to the aggregation-side options — a
  // single-plane (1-bit) activation operand would otherwise be jumped with
  // the adjacency's map, whose tile grid it does not share.
  BmmOptions opt;
  opt.zero_tile_jump = cfg_.zero_tile_jump;
  opt.allow_overflow = (cfg_.feat_bits > 8 || cfg_.weight_bits > 8);
  opt.ctx = ctx;
  BmmOptions agg_opt = opt;
  agg_opt.tile_map = tile_map;

  const tcsim::ExecutionContext& exec = resolve_ctx(opt);
  tcsim::Counters before;
  if (stats != nullptr) before = exec.counters();

  const bool gcn = cfg_.kind == ModelKind::kClusterGCN;
  // `cur` tracks the packed activation between layers without copying the
  // caller's input planes.
  const StackedBitTensor* cur = &x_planes;
  StackedBitTensor next;

  MatrixI32 logits;
  if (cfg_.fused_epilogue) {
    if (gcn) {
      for (int l = 0; l < cfg_.num_layers; ++l) {
        const bool last = (l + 1 == cfg_.num_layers);
        FusedEpilogue agg_epi;
        agg_epi.rshift = agg_rshift_[static_cast<std::size_t>(l)];
        auto xn = aggregate_fused_bit(adj, *cur, s, agg_epi, agg_opt,
                                      PadPolicy::kTile8);
        if (last) {
          logits = bitmm_fused_int(xn, w_planes_[static_cast<std::size_t>(l)], {}, opt);
          break;
        }
        FusedEpilogue upd_epi;
        upd_epi.relu = true;
        upd_epi.rshift = upd_rshift_[static_cast<std::size_t>(l)];
        next = bitmm_fused_bit(xn, w_planes_[static_cast<std::size_t>(l)], s, upd_epi,
                               opt, PadPolicy::kTile8, BitLayout::kColMajorK);
        cur = &next;
      }
    } else {
      for (int l = 0; l < cfg_.num_layers; ++l) {
        const bool last = (l + 1 == cfg_.num_layers);
        FusedEpilogue upd_epi;
        upd_epi.relu = true;
        upd_epi.rshift = upd_rshift_[static_cast<std::size_t>(l)];
        auto xu = cfg_.gin_mlp
                      ? bitmm_fused_bit(*cur, w_planes_[static_cast<std::size_t>(l)], s,
                                        upd_epi, opt, PadPolicy::kTile8,
                                        BitLayout::kRowMajorK)
                      : StackedBitTensor{};
        if (cfg_.gin_mlp) {
          FusedEpilogue mlp2_epi;
          mlp2_epi.relu = !last;
          mlp2_epi.rshift = upd2_rshift_[static_cast<std::size_t>(l)];
          xu = bitmm_fused_bit(xu, w2_planes_[static_cast<std::size_t>(l)], s, mlp2_epi,
                               opt, PadPolicy::kTile8, BitLayout::kColMajorK);
        } else {
          upd_epi.relu = !last;
          xu = bitmm_fused_bit(*cur, w_planes_[static_cast<std::size_t>(l)], s,
                               upd_epi, opt, PadPolicy::kTile8,
                               BitLayout::kColMajorK);
        }
        if (last) {
          logits = aggregate_1bit(adj, xu, cfg_.reuse, agg_opt);
          break;
        }
        FusedEpilogue agg_epi;
        agg_epi.rshift = agg_rshift_[static_cast<std::size_t>(l)];
        next = aggregate_fused_bit(adj, xu, s, agg_epi, agg_opt, PadPolicy::kTile8);
        cur = &next;
      }
    }
  } else {
    // Unfused ablation path: every intermediate activation round-trips
    // through an int32 matrix + standalone requantization/decomposition.
    for (int l = 0; l < cfg_.num_layers; ++l) {
      const bool last = (l + 1 == cfg_.num_layers);
      if (gcn) {
        MatrixI32 agg = aggregate_1bit(adj, *cur, cfg_.reuse, agg_opt);
        const MatrixI32 xn_q = requantize(agg, agg_rshift_[static_cast<std::size_t>(l)], s);
        auto xn = StackedBitTensor::decompose(xn_q, s, BitLayout::kRowMajorK,
                                              PadPolicy::kTile8);
        MatrixI32 upd = bitmm_to_int(xn, w_planes_[static_cast<std::size_t>(l)], opt);
        if (last) {
          logits = std::move(upd);
          break;
        }
        const MatrixI32 nq = requantize(upd, upd_rshift_[static_cast<std::size_t>(l)], s);
        next = StackedBitTensor::decompose(nq, s, BitLayout::kColMajorK,
                                           PadPolicy::kTile8);
        cur = &next;
      } else {
        MatrixI32 upd = bitmm_to_int(*cur, w_planes_[static_cast<std::size_t>(l)], opt);
        MatrixI32 xu_q = requantize(upd, upd_rshift_[static_cast<std::size_t>(l)], s);
        if (cfg_.gin_mlp) {
          auto xm = StackedBitTensor::decompose(xu_q, s, BitLayout::kRowMajorK,
                                                PadPolicy::kTile8);
          MatrixI32 upd2 = bitmm_to_int(xm, w2_planes_[static_cast<std::size_t>(l)], opt);
          xu_q = requantize(upd2, upd2_rshift_[static_cast<std::size_t>(l)], s);
        }
        auto xu = StackedBitTensor::decompose(xu_q, s, BitLayout::kColMajorK,
                                              PadPolicy::kTile8);
        MatrixI32 agg = aggregate_1bit(adj, xu, cfg_.reuse, agg_opt);
        if (last) {
          logits = std::move(agg);
          break;
        }
        const MatrixI32 nq = requantize(agg, agg_rshift_[static_cast<std::size_t>(l)], s);
        next = StackedBitTensor::decompose(nq, s, BitLayout::kRowMajorK,
                                           PadPolicy::kTile8);
        cur = &next;
      }
    }
  }

  if (stats != nullptr) {
    const tcsim::Counters after = exec.counters();
    stats->tiles_jumped += static_cast<i64>(after.tiles_jumped - before.tiles_jumped);
    stats->bmma_ops += static_cast<i64>(after.bmma_ops - before.bmma_ops);
  }
  return logits;
}

MatrixI32 QgtcModel::forward_prepared(const BitMatrix& adj,
                                      const TileMap* tile_map,
                                      const StackedBitTensor& x_planes,
                                      ForwardStats* stats,
                                      const tcsim::ExecutionContext* ctx) const {
  return forward_impl(adj, tile_map, x_planes, stats, ctx);
}

MatrixI32 QgtcModel::forward_prepared(const TileSparseBitMatrix& adj,
                                      const StackedBitTensor& x_planes,
                                      ForwardStats* stats,
                                      const tcsim::ExecutionContext* ctx) const {
  return forward_impl(adj, /*tile_map=*/nullptr, x_planes, stats, ctx);
}

MatrixF QgtcModel::forward_fp32(const CsrGraph& local, const MatrixF& x) const {
  using baselines::gemm_f32;
  using baselines::relu_inplace;
  using baselines::spmm_csr;
  MatrixF cur = x;
  const bool gcn = cfg_.kind == ModelKind::kClusterGCN;
  for (int l = 0; l < cfg_.num_layers; ++l) {
    const bool last = (l + 1 == cfg_.num_layers);
    if (gcn) {
      MatrixF agg = spmm_csr(local, cur, /*add_self=*/true);
      cur = gemm_f32(agg, fp_weights_[static_cast<std::size_t>(l)].w);
      if (!last) relu_inplace(cur);
    } else {
      MatrixF upd = gemm_f32(cur, fp_weights_[static_cast<std::size_t>(l)].w);
      if (cfg_.gin_mlp) {
        relu_inplace(upd);
        upd = gemm_f32(upd, fp_weights_[static_cast<std::size_t>(l)].w2);
      }
      if (!last) relu_inplace(upd);
      cur = spmm_csr(local, upd, /*add_self=*/true);
    }
  }
  return cur;
}

}  // namespace qgtc::gnn
