// QGTC model runner: the per-batch quantized forward pass built on the
// kernel stack, plus the fp32 DGL-substitute path it is benchmarked against.
//
// Data layout discipline (paper §4.2's padding rules, applied per §4.5's
// fused hand-over):
//   Cluster GCN layer: X (kColMajorK) --agg--> X_new (kRowMajorK)
//                      --update+ReLU--> X' (kColMajorK, next layer's X)
//   Batched GIN layer: X (kRowMajorK) --update+ReLU--> Xu (kColMajorK)
//                      --agg--> X' (kRowMajorK, next layer's X)
// The final layer emits int32 logits (full precision for softmax, §4.5).
#pragma once

#include "bittensor/stacked.hpp"
#include "gnn/layers.hpp"
#include "graph/batching.hpp"
#include "kernels/anybit_mm.hpp"

namespace qgtc::gnn {

/// Per-batch kernel statistics surfaced to the engine / benches.
struct ForwardStats {
  i64 tiles_jumped = 0;
  i64 bmma_ops = 0;
  i64 int32_bytes_avoided = 0;
};

/// Per-stage epilogue rewrite decision (one per aggregate/update stage per
/// layer). Built at construction from the config; rshift and out_bits are
/// filled in by calibration. The same plan drives the fused epilogue and the
/// unfused fallback, so the two paths are bit-identical by construction.
struct EpiloguePlan {
  int rshift = 0;
  int out_bits = 8;
  tcsim::Activation act = tcsim::Activation::kIdentity;
  bool fused = true;
};

class QgtcModel {
 public:
  /// Builds a model with Xavier weights quantized to cfg.weight_bits.
  /// Weight bit-planes are cached in the update-side (kColMajorK) layout —
  /// the §3.2 observation that W is reused across all subgraphs of a layer.
  static QgtcModel create(const GnnConfig& cfg, u64 seed);

  /// Builds from existing fp32 weights (e.g. QAT-trained).
  static QgtcModel from_weights(const GnnConfig& cfg,
                                std::vector<LayerWeights> weights);

  [[nodiscard]] const GnnConfig& config() const { return cfg_; }
  [[nodiscard]] const std::vector<LayerWeights>& weights() const {
    return fp_weights_;
  }

  /// One-time requantization calibration (paper's fused epilogue needs the
  /// per-layer right-shift fixed before inference; we derive it from one
  /// representative batch, the standard post-training-calibration recipe).
  void calibrate(const BitMatrix& adj, const MatrixF& x);
  /// Calibration over a tile-CSR adjacency (the sparse-adjacency engine mode
  /// never materialises the dense batch matrix, calibration included).
  void calibrate(const TileSparseBitMatrix& adj, const MatrixF& x);
  [[nodiscard]] bool calibrated() const { return calibrated_; }

  /// Quantized QGTC forward for one batch: returns int32 logits
  /// (batch_nodes x out_dim). `adj` is the batch's binary adjacency
  /// (kRowMajorK); `x` the gathered fp32 features. Quantizes + packs the
  /// input inline — convenient, but production callers should pre-pack with
  /// `prepare_input` (the paper packs on the host before transfer, §4.6).
  /// `ctx` selects the substrate backend / counter sink (null = process
  /// default context).
  MatrixI32 forward_quantized(const BitMatrix& adj, const MatrixF& x,
                              ForwardStats* stats = nullptr,
                              const tcsim::ExecutionContext* ctx = nullptr) const;

  /// Host-side input packing: quantize to feat_bits and bit-decompose in the
  /// layout the first layer consumes (kColMajorK for GCN, kRowMajorK for GIN).
  [[nodiscard]] StackedBitTensor prepare_input(const MatrixF& x) const;

  /// Forward over a pre-packed input. `tile_map` (optional) is the cached
  /// zero-tile map of `adj`, reused across layers and bit-planes (§3.2).
  /// Every kernel in the pass runs on `ctx`'s backend and notes its counters
  /// into `ctx`'s sink; per-worker contexts make concurrent batch streams
  /// race-free (the engine's inter-batch parallelism).
  MatrixI32 forward_prepared(const BitMatrix& adj, const TileMap* tile_map,
                             const StackedBitTensor& x_planes,
                             ForwardStats* stats = nullptr,
                             const tcsim::ExecutionContext* ctx = nullptr) const;

  /// Forward over a tile-CSR adjacency: every aggregation consumes the
  /// stored tiles directly, so zero-tile jumping is structural (no flag map
  /// to build, cache or test). Bit-identical to the dense path.
  MatrixI32 forward_prepared(const TileSparseBitMatrix& adj,
                             const StackedBitTensor& x_planes,
                             ForwardStats* stats = nullptr,
                             const tcsim::ExecutionContext* ctx = nullptr) const;

  /// fp32 reference forward (the DGL-substitute path) over the batch's
  /// local CSR. Returns fp32 logits.
  MatrixF forward_fp32(const CsrGraph& local, const MatrixF& x) const;

  /// Requantizing stages the per-layer rewrite pass runs through the fused
  /// epilogue on each forward pass (0 when fusion is disabled).
  [[nodiscard]] int fused_stage_count() const;

  /// Per-layer stage plans (tests and diagnostics).
  [[nodiscard]] const EpiloguePlan& agg_plan(int l) const {
    return agg_plan_[static_cast<std::size_t>(l)];
  }
  [[nodiscard]] const EpiloguePlan& upd_plan(int l) const {
    return upd_plan_[static_cast<std::size_t>(l)];
  }
  [[nodiscard]] const EpiloguePlan& upd2_plan(int l) const {
    return upd2_plan_[static_cast<std::size_t>(l)];
  }

 private:
  GnnConfig cfg_;
  std::vector<LayerWeights> fp_weights_;
  std::vector<QuantParams> w_qparams_;
  std::vector<StackedBitTensor> w_planes_;   // kColMajorK, <= weight_bits planes
  std::vector<StackedBitTensor> w2_planes_;  // second MLP stage (gin_mlp)
  std::vector<EpiloguePlan> agg_plan_;       // per layer
  std::vector<EpiloguePlan> upd_plan_;       // per layer
  std::vector<EpiloguePlan> upd2_plan_;      // per layer, MLP stage 2
  bool calibrated_ = false;

  void quantize_weights();

  /// Fills the per-stage activation/fusion decisions from the config (the
  /// rewrite pass; rshift/out_bits are completed by calibrate()).
  void build_plan();

  /// Shared forward/calibration bodies, generic over the adjacency
  /// representation (dense BitMatrix or TileSparseBitMatrix — the aggregate
  /// kernels overload on it). `tile_map` is dense-only; sparse passes null.
  template <typename Adj>
  MatrixI32 forward_impl(const Adj& adj, const TileMap* tile_map,
                         const StackedBitTensor& x_planes, ForwardStats* stats,
                         const tcsim::ExecutionContext* ctx) const;
  template <typename Adj>
  void calibrate_impl(const Adj& adj, const MatrixF& x);
};

}  // namespace qgtc::gnn
