// Substrate backend registry (see DESIGN.md, "Backend registry").
//
// The 1-bit BMM substrate is the single atomic primitive everything in QGTC
// composes from (paper §2.3, Eq. 7). This header separates the *op surface*
// the kernels program against from the *substrate* that executes the
// 8x8x128 tile contract, so the same kernel code can run on different
// micro-kernel implementations selected at runtime:
//
//   kScalar   the reference path: per-tile u64 AND/XOR + std::popcount,
//             exactly the semantics of tcsim::dot128. One A-fragment load
//             per output tile (no cross-tile reuse).
//   kSimd     vectorised AND+popcount over the full 8x8x128 tile (AVX-512
//             VPOPCNTDQ or AVX2 nibble-LUT when compiled in AND supported by
//             the running CPU; otherwise an unrolled u64x4 fallback). Same
//             per-tile A loads as kScalar — it isolates the micro-kernel win.
//   kBlocked  the same best-available tile micro-kernel, but the panel loop
//             keeps a decoded A fragment resident across a block of N tiles
//             (generalising §4.4's cross-tile reuse to every MM in the
//             stack). This is the default production backend.
//
// All backends produce bit-identical results: accumulation is exact integer
// popcount arithmetic in u64 lanes, truncated to the hardware's uint32-wrap
// contract at flush.
#pragma once

#include <string_view>
#include <vector>

#include "common/defs.hpp"

namespace qgtc::tcsim {

enum class BackendKind { kScalar = 0, kSimd = 1, kBlocked = 2 };

/// Decoded A-operand tile (8 rows x 128 bits) in backend-specific layout.
/// Sized for the widest layout (8 rows broadcast to 512-bit vectors).
struct alignas(64) AFragment {
  u64 lanes[kTileM * 8];
};

/// u64 accumulator lanes per output tile. Opaque layout — only the backend
/// that filled an accumulator block may flush it. Sized for the widest
/// layout (AVX2/AVX-512 keep per-lane partial sums: 128 u64 per tile).
inline constexpr i64 kTileAccLanes = 128;

/// One entry of a sparse A-tile schedule: the stored tile's first word (its
/// 8 rows sit `a_stride` u32 apart) plus the K-tile index that selects the
/// matching 128-bit slice of every B column. Both the tile-CSR layout (tiles
/// stored contiguously, stride kTileKWords) and the dense layout (tiles in
/// place, stride k_words) describe their surviving tiles this way, so
/// flag-based and structural zero-tile jumping execute one schedule format.
struct SparseTileRef {
  const u32* a;
  i64 k_tile;
};

/// A substrate micro-kernel implementation. Stateless and shared across
/// threads: all mutable state lives in caller-provided scratch (the
/// ExecutionContext workspace arena), so one registry instance serves every
/// thread of every context.
class SubstrateBackend {
 public:
  virtual ~SubstrateBackend() = default;

  [[nodiscard]] virtual BackendKind kind() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Output-column tiles the kernel loop should keep resident per decoded
  /// A fragment (the §4.4 cross-tile blocking factor; 1 = reload A per tile).
  [[nodiscard]] virtual i64 panel_width() const = 0;

  /// Decode one 8x128 A tile (rows `a_stride` u32 apart) into `frag`.
  virtual void load_a(AFragment& frag, const u32* a, i64 a_stride) const = 0;

  /// acc[kTileAccLanes] += (A_frag x B_tile) << shift — one 8x8x128 tile op.
  /// B columns are `b_stride` u32 apart. `use_xor` selects the +-1 binary
  /// network combine (BmmaOp::kXor) instead of AND.
  virtual void mma(u64* acc, const AFragment& frag, const u32* b, i64 b_stride,
                   int shift, bool use_xor) const = 0;

  /// out[8x8, rows `out_stride` i32 apart] (+)= acc, truncating each element
  /// to the substrate's exact uint32-wrap contract.
  virtual void flush(i32* out, i64 out_stride, const u64* acc) const = 0;

  /// Sparse-schedule execution: sweeps a row block's surviving-tile list
  /// across a panel of `nb` consecutive output-column tiles, keeping each
  /// decoded A fragment resident for the whole panel (the §4.4 blocking,
  /// applied to an explicit tile list instead of a dense K loop). `b_cols`
  /// points at the first panel column's packed words (columns `b_stride` u32
  /// apart); entry `t` multiplies against words b_cols + blk*8*b_stride +
  /// tiles[t].k_tile*kTileKWords. `acc` holds nb * kTileAccLanes lanes.
  ///
  /// The base implementation composes load_a + mma, so every backend —
  /// kScalar, kSimd, kBlocked — consumes the same sparse schedule; overrides
  /// may fuse further.
  virtual void mma_tile_list(u64* acc, const SparseTileRef* tiles, i64 n_tiles,
                             i64 a_stride, const u32* b_cols, i64 b_stride,
                             i64 nb, int shift, bool use_xor) const;
};

/// Registry lookup. Instances are process-lifetime singletons; kSimd and
/// kBlocked resolve their micro-kernel once at first use from compile-time
/// availability + runtime CPU feature detection.
[[nodiscard]] const SubstrateBackend& backend(BackendKind k);

/// Display name ("scalar", "simd", "blocked").
[[nodiscard]] const char* backend_name(BackendKind k);

/// Parse a backend name; throws std::invalid_argument on unknown names.
[[nodiscard]] BackendKind parse_backend(std::string_view name);

/// All registered kinds, in registry order.
[[nodiscard]] std::vector<BackendKind> all_backends();

/// True when kSimd/kBlocked resolved to vector micro-kernels on this CPU
/// (false = the portable u64 fallback is active).
[[nodiscard]] bool simd_active();

/// Process default: QGTC_BACKEND env var ("scalar" | "simd" | "blocked") or
/// kBlocked. Read once.
[[nodiscard]] BackendKind default_backend();

}  // namespace qgtc::tcsim
