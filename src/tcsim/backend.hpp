// Substrate backend registry (see DESIGN.md, "Backend registry").
//
// The 1-bit BMM substrate is the single atomic primitive everything in QGTC
// composes from (paper §2.3, Eq. 7). This header separates the *op surface*
// the kernels program against from the *substrate* that executes the
// 8x8x128 tile contract, so the same kernel code can run on different
// micro-kernel implementations selected at runtime:
//
//   kScalar   the reference path: per-tile u64 AND/XOR + std::popcount,
//             exactly the semantics of tcsim::dot128. One A-fragment load
//             per output tile (no cross-tile reuse).
//   kSimd     vectorised AND+popcount over the full 8x8x128 tile (AVX-512
//             VPOPCNTDQ or AVX2 nibble-LUT when compiled in AND supported by
//             the running CPU; otherwise an unrolled u64x4 fallback). Same
//             per-tile A loads as kScalar — it isolates the micro-kernel win.
//   kBlocked  the same best-available tile micro-kernel, but the panel loop
//             keeps a decoded A fragment resident across a block of N tiles
//             (generalising §4.4's cross-tile reuse to every MM in the
//             stack). This is the default production backend.
//
// All backends produce bit-identical results: accumulation is exact integer
// popcount arithmetic in u64 lanes, truncated to the hardware's uint32-wrap
// contract at flush.
#pragma once

#include <string_view>
#include <vector>

#include "common/defs.hpp"

namespace qgtc::tcsim {

enum class BackendKind { kScalar = 0, kSimd = 1, kBlocked = 2 };

/// Elementwise activation the fused epilogue applies in the requantized
/// integer domain (after the arithmetic right-shift, before the clamp).
/// kRelu6 and kHardswish use the quantized-domain constants 3/6 — the
/// standard integer approximations (hardswish(x) = x * clamp(x+3, 0, 6) / 6
/// with truncating division).
enum class Activation { kIdentity = 0, kRelu = 1, kRelu6 = 2, kHardswish = 3 };

/// Epilogue parameters for the requantizing flush variants. Applied to each
/// accumulator value after the uint32-wrap truncation:
///   w = v >> rshift (arithmetic);  w = act(w);
///   if (qmax >= 0)  w = clamp(w, 0, qmax).
/// qmax < 0 leaves the activated value unclamped (int32 outputs such as
/// final-layer logits).
struct EpilogueSpec {
  Activation act = Activation::kIdentity;
  int rshift = 0;
  i32 qmax = -1;

  /// True when the epilogue is the identity (flush_epilogue degenerates to a
  /// plain truncating store).
  [[nodiscard]] constexpr bool is_raw() const {
    return act == Activation::kIdentity && rshift == 0 && qmax < 0;
  }
};

/// THE shared epilogue semantics. Every backend's fused flush and the
/// standalone (unfused) requantization pass call this one definition, so the
/// fused and unfused model paths are bit-identical by construction.
/// ReLU commutes with the arithmetic shift, so this matches the historical
/// "activate, then shift, then clamp" order exactly.
[[nodiscard]] constexpr i32 apply_epilogue(i32 v, const EpilogueSpec& spec) {
  i64 w = static_cast<i64>(v) >> spec.rshift;
  switch (spec.act) {
    case Activation::kIdentity:
      break;
    case Activation::kRelu:
      if (w < 0) w = 0;
      break;
    case Activation::kRelu6:
      w = w < 0 ? 0 : (w > 6 ? 6 : w);
      break;
    case Activation::kHardswish: {
      i64 g = w + 3;
      g = g < 0 ? 0 : (g > 6 ? 6 : g);
      w = (w * g) / 6;
      break;
    }
  }
  if (spec.qmax >= 0) w = w < 0 ? 0 : (w > spec.qmax ? spec.qmax : w);
  return static_cast<i32>(w);
}

/// Decoded A-operand tile (8 rows x 128 bits) in backend-specific layout.
/// Sized for the widest layout (8 rows broadcast to 512-bit vectors).
struct alignas(64) AFragment {
  u64 lanes[kTileM * 8];
};

/// u64 accumulator lanes per output tile. Opaque layout — only the backend
/// that filled an accumulator block may flush it. Sized for the widest
/// layout (AVX2/AVX-512 keep per-lane partial sums: 128 u64 per tile).
inline constexpr i64 kTileAccLanes = 128;

/// One entry of a sparse A-tile schedule: the stored tile's first word (its
/// 8 rows sit `a_stride` u32 apart) plus the K-tile index that selects the
/// matching 128-bit slice of every B column. Both the tile-CSR layout (tiles
/// stored contiguously, stride kTileKWords) and the dense layout (tiles in
/// place, stride k_words) describe their surviving tiles this way, so
/// flag-based and structural zero-tile jumping execute one schedule format.
struct SparseTileRef {
  const u32* a;
  i64 k_tile;
};

/// Destination descriptor for flush_planes: where one 8x8 output tile's
/// requantized values land as packed bit planes. `planes[b]` points at the
/// word of plane `b` that holds the tile's first line; successive lines sit
/// `line_stride` u32 apart, and the tile's 8-lane bit group occupies bit
/// offset `shift` within the word (tile extents divide the 32-bit packing,
/// so a group never straddles words). With `transpose == false` a line is an
/// output row and a lane an output column (kRowMajorK planes); with
/// `transpose == true` the roles swap (kColMajorK). `lines`/`lanes` bound
/// the logically valid region (<= 8 each) so edge tiles skip padding.
struct PlaneSink {
  u32* const* planes;
  i64 line_stride;
  int shift;
  int out_bits;
  i64 lines;
  i64 lanes;
  bool transpose;
};

/// Scatter a requantized 8x8 tile (`q`, row-major i32[64], values already in
/// [0, 2^out_bits)) into packed bit planes — one word RMW per (line, plane).
/// Shared by every backend's flush_planes and the unfused fallback paths.
inline void scatter_planes(const PlaneSink& s, const i32* q) {
  for (i64 l = 0; l < s.lines; ++l) {
    for (int b = 0; b < s.out_bits; ++b) {
      u32 lane = 0;
      if (!s.transpose) {
        const i32* row = q + l * 8;
        for (i64 j = 0; j < s.lanes; ++j) {
          lane |= static_cast<u32>((row[j] >> b) & 1) << j;
        }
      } else {
        for (i64 i = 0; i < s.lanes; ++i) {
          lane |= static_cast<u32>((q[i * 8 + l] >> b) & 1) << i;
        }
      }
      if (lane != 0) s.planes[b][l * s.line_stride] |= lane << s.shift;
    }
  }
}

/// A substrate micro-kernel implementation. Stateless and shared across
/// threads: all mutable state lives in caller-provided scratch (the
/// ExecutionContext workspace arena), so one registry instance serves every
/// thread of every context.
class SubstrateBackend {
 public:
  virtual ~SubstrateBackend() = default;

  [[nodiscard]] virtual BackendKind kind() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Output-column tiles the kernel loop should keep resident per decoded
  /// A fragment (the §4.4 cross-tile blocking factor; 1 = reload A per tile).
  [[nodiscard]] virtual i64 panel_width() const = 0;

  /// Decode one 8x128 A tile (rows `a_stride` u32 apart) into `frag`.
  virtual void load_a(AFragment& frag, const u32* a, i64 a_stride) const = 0;

  /// acc[kTileAccLanes] += (A_frag x B_tile) << shift — one 8x8x128 tile op.
  /// B columns are `b_stride` u32 apart. `use_xor` selects the +-1 binary
  /// network combine (BmmaOp::kXor) instead of AND.
  virtual void mma(u64* acc, const AFragment& frag, const u32* b, i64 b_stride,
                   int shift, bool use_xor) const = 0;

  /// out[8x8, rows `out_stride` i32 apart] (+)= acc, truncating each element
  /// to the substrate's exact uint32-wrap contract.
  virtual void flush(i32* out, i64 out_stride, const u64* acc) const = 0;

  /// Epilogue-parameterized flush (the CUTLASS-style fused epilogue, mapped
  /// to the flush hook — see DESIGN.md): out[8x8] = apply_epilogue(wrap(acc))
  /// while the accumulator lanes are still hot. Assigns (does not add); the
  /// uint32-wrap truncation precedes the epilogue, preserving the substrate
  /// contract. The base implementation drains through flush(); BackendImpl
  /// overrides it with the micro-kernel's fused lane reduction.
  virtual void flush_epilogue(i32* out, i64 out_stride, const u64* acc,
                              const EpilogueSpec& spec) const;

  /// Plane-writer flush: requantize the tile with `spec` and scatter the
  /// resulting bits straight into packed output planes (`sink`) — the §4.5
  /// re-pack executed inside the flush, so no int32 intermediate is ever
  /// materialised. `spec.qmax` must be >= 0 (values must fit the planes).
  virtual void flush_planes(const PlaneSink& sink, const u64* acc,
                            const EpilogueSpec& spec) const;

  /// Sparse-schedule execution: sweeps a row block's surviving-tile list
  /// across a panel of `nb` consecutive output-column tiles, keeping each
  /// decoded A fragment resident for the whole panel (the §4.4 blocking,
  /// applied to an explicit tile list instead of a dense K loop). `b_cols`
  /// points at the first panel column's packed words (columns `b_stride` u32
  /// apart); entry `t` multiplies against words b_cols + blk*8*b_stride +
  /// tiles[t].k_tile*kTileKWords. `acc` holds nb * kTileAccLanes lanes.
  ///
  /// The base implementation composes load_a + mma, so every backend —
  /// kScalar, kSimd, kBlocked — consumes the same sparse schedule; overrides
  /// may fuse further.
  virtual void mma_tile_list(u64* acc, const SparseTileRef* tiles, i64 n_tiles,
                             i64 a_stride, const u32* b_cols, i64 b_stride,
                             i64 nb, int shift, bool use_xor) const;
};

/// Registry lookup. Instances are process-lifetime singletons; kSimd and
/// kBlocked resolve their micro-kernel once at first use from compile-time
/// availability + runtime CPU feature detection.
[[nodiscard]] const SubstrateBackend& backend(BackendKind k);

/// Display name ("scalar", "simd", "blocked").
[[nodiscard]] const char* backend_name(BackendKind k);

/// Parse a backend name; throws std::invalid_argument on unknown names.
[[nodiscard]] BackendKind parse_backend(std::string_view name);

/// Display name ("identity", "relu", "relu6", "hardswish").
[[nodiscard]] const char* activation_name(Activation a);

/// Parse an activation name; throws std::invalid_argument on unknown names.
[[nodiscard]] Activation parse_activation(std::string_view name);

/// All registered kinds, in registry order.
[[nodiscard]] std::vector<BackendKind> all_backends();

/// True when kSimd/kBlocked resolved to vector micro-kernels on this CPU
/// (false = the portable u64 fallback is active).
[[nodiscard]] bool simd_active();

/// Process default: QGTC_BACKEND env var ("scalar" | "simd" | "blocked") or
/// kBlocked. Read once.
[[nodiscard]] BackendKind default_backend();

}  // namespace qgtc::tcsim
