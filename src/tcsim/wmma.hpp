// Software tensor-core substrate.
//
// Reproduces the semantics of NVIDIA's 1-bit WMMA path (paper §2.3,
// Listing 1): fragments are loaded tile-by-tile, `bmma_sync` computes
// D = popcount(A & B) + C over an 8x8x128 tile, and results are stored from
// the accumulator fragment. The tile-shape constraints (M = N = 8, K = 128)
// are enforced exactly, because QGTC's packing/padding/jumping logic is
// driven by them.
//
// The paper used the hardware unit; we execute the same contract on CPU
// words (see DESIGN.md substitution table). Per-thread operation counters
// let tests and benches verify optimisation claims (e.g. zero-tile jumping
// really skips tile ops).
#pragma once

#include <array>
#include <bit>
#include <cstring>

#include "common/defs.hpp"

namespace qgtc::tcsim {

/// Which bitwise combine the `b1` MMA uses. Ampere exposes AND (used by QGTC,
/// Eq. 7) and XOR (used by +-1 binary networks).
enum class BmmaOp { kAnd, kXor };

/// A-operand fragment: 8 rows x 128 bits, packed 4 x u32 per row
/// (row-major along K — the paper's "column-wise compression" layout).
struct FragmentA {
  std::array<u32, kTileM * kTileKWords> bits{};
};

/// B-operand fragment: 8 columns x 128 bits, packed 4 x u32 per column
/// (column-major along K — the paper's "row-wise compression" layout).
struct FragmentB {
  std::array<u32, kTileN * kTileKWords> bits{};
};

/// Accumulator fragment: 8x8 int32 (uint32 on hardware; all QGTC values are
/// non-negative and in-range, asserted in debug builds).
struct FragmentC {
  std::array<i32, kTileM * kTileN> acc{};
  void fill(i32 v) { acc.fill(v); }
};

/// Per-thread substrate counters (mirrors what a profiler would report from
/// the hardware unit). Aggregated by `Counters::snapshot_all()`.
struct Counters {
  u64 bmma_ops = 0;        // number of 8x8x128 MMA tile operations executed
  u64 frag_loads_a = 0;    // A-fragment loads from memory
  u64 frag_loads_b = 0;    // B-fragment loads from memory
  u64 frag_stores = 0;     // accumulator stores
  u64 tiles_jumped = 0;    // tiles skipped by zero-tile jumping
  u64 int32_bytes_avoided = 0;  // int32 intermediate bytes fused epilogues
                                // never materialised

  Counters& operator+=(const Counters& o) {
    bmma_ops += o.bmma_ops;
    frag_loads_a += o.frag_loads_a;
    frag_loads_b += o.frag_loads_b;
    frag_stores += o.frag_stores;
    tiles_jumped += o.tiles_jumped;
    int32_bytes_avoided += o.int32_bytes_avoided;
    return *this;
  }
};

/// Mutable reference to this thread's counter block.
Counters& thread_counters();

/// Sum of all threads' counters since the last `reset_counters()`.
Counters snapshot_counters();

/// Zero every thread's counters.
void reset_counters();

/// Load an A fragment: 8 consecutive rows starting at `ptr`, each row
/// `stride_words` u32 apart; 4 words (128 bits) per row are consumed.
inline void load_matrix_sync(FragmentA& frag, const u32* ptr, i64 stride_words) {
  for (int r = 0; r < kTileM; ++r) {
    std::memcpy(&frag.bits[static_cast<std::size_t>(r) * kTileKWords],
                ptr + r * stride_words, kTileKWords * sizeof(u32));
  }
  ++thread_counters().frag_loads_a;
}

/// Load a B fragment: 8 consecutive K-packed columns starting at `ptr`, each
/// column `stride_words` u32 apart.
inline void load_matrix_sync(FragmentB& frag, const u32* ptr, i64 stride_words) {
  for (int c = 0; c < kTileN; ++c) {
    std::memcpy(&frag.bits[static_cast<std::size_t>(c) * kTileKWords],
                ptr + c * stride_words, kTileKWords * sizeof(u32));
  }
  ++thread_counters().frag_loads_b;
}

/// 128-bit AND+popcount (or XOR+popcount) between one fragment row/column
/// pair, executed as two u64 lanes.
inline i32 dot128(const u32* a, const u32* b, BmmaOp op) {
  u64 a0, a1, b0, b1;
  std::memcpy(&a0, a, 8);
  std::memcpy(&a1, a + 2, 8);
  std::memcpy(&b0, b, 8);
  std::memcpy(&b1, b + 2, 8);
  if (op == BmmaOp::kAnd) {
    return static_cast<i32>(std::popcount(a0 & b0) + std::popcount(a1 & b1));
  }
  return static_cast<i32>(std::popcount(a0 ^ b0) + std::popcount(a1 ^ b1));
}

/// D = A (8x128 bits) x B (128x8 bits) + C, the `wmma::bmma_sync` contract.
inline void bmma_sync(FragmentC& d, const FragmentA& a, const FragmentB& b,
                      const FragmentC& c, BmmaOp op = BmmaOp::kAnd) {
  for (int i = 0; i < kTileM; ++i) {
    const u32* arow = &a.bits[static_cast<std::size_t>(i) * kTileKWords];
    for (int j = 0; j < kTileN; ++j) {
      const u32* bcol = &b.bits[static_cast<std::size_t>(j) * kTileKWords];
      d.acc[static_cast<std::size_t>(i) * kTileN + j] =
          c.acc[static_cast<std::size_t>(i) * kTileN + j] + dot128(arow, bcol, op);
    }
  }
  ++thread_counters().bmma_ops;
}

/// Store an accumulator fragment to row-major int32 memory with `stride`
/// elements between rows.
inline void store_matrix_sync(i32* ptr, const FragmentC& frag, i64 stride) {
  for (int r = 0; r < kTileM; ++r) {
    std::memcpy(ptr + r * stride, &frag.acc[static_cast<std::size_t>(r) * kTileN],
                kTileN * sizeof(i32));
  }
  ++thread_counters().frag_stores;
}

/// The zero-tile test from paper §4.3: OR-reduce each row's 4 words (the
/// uint4_v load + bitwise OR), then ballot across the 8 rows. Returns true
/// when the whole 8x128 tile is zero. Operates directly on memory so callers
/// can skip the fragment load entirely.
inline bool tile_is_zero(const u32* ptr, i64 stride_words) {
  u32 ballot = 0;
  for (int r = 0; r < kTileM; ++r) {
    const u32* row = ptr + r * stride_words;
    const u32 v = row[0] | row[1] | row[2] | row[3];
    ballot |= static_cast<u32>(v != 0) << r;
  }
  return ballot == 0;
}

}  // namespace qgtc::tcsim
