#include "tcsim/exec_context.hpp"

namespace qgtc::tcsim {

MatrixI32& Workspace::padded_acc(i64 rows, i64 cols) {
  if (padded_acc_.rows() != rows || padded_acc_.cols() != cols) {
    padded_acc_ = MatrixI32(rows, cols, 0);
  } else {
    padded_acc_.fill(0);
  }
  return padded_acc_;
}

MatrixI32& Workspace::int32_scratch(int slot, i64 rows, i64 cols) {
  if (static_cast<std::size_t>(slot) >= int32_scratch_.size()) {
    int32_scratch_.resize(static_cast<std::size_t>(slot) + 1);
  }
  MatrixI32& m = int32_scratch_[static_cast<std::size_t>(slot)];
  if (m.rows() != rows || m.cols() != cols) m = MatrixI32(rows, cols);
  return m;
}

std::vector<std::vector<i64>>& Workspace::k_lists(i64 n) {
  k_lists_.resize(static_cast<std::size_t>(n));
  for (auto& l : k_lists_) l.clear();
  return k_lists_;
}

std::vector<SparseTileRef>& Workspace::tile_refs() {
  tile_refs_.clear();
  return tile_refs_;
}

u64* Workspace::acc_lanes(i64 lanes) {
  if (static_cast<i64>(acc_lanes_.size()) < lanes) {
    acc_lanes_.resize(static_cast<std::size_t>(lanes));
  }
  return acc_lanes_.data();
}

std::size_t Workspace::footprint_bytes() const {
  std::size_t b = static_cast<std::size_t>(padded_acc_.size()) * sizeof(i32) +
                  tile_refs_.capacity() * sizeof(SparseTileRef) +
                  acc_lanes_.size() * sizeof(u64);
  for (const auto& m : int32_scratch_) {
    b += static_cast<std::size_t>(m.size()) * sizeof(i32);
  }
  for (const auto& l : k_lists_) b += l.capacity() * sizeof(i64);
  return b;
}

Workspace& thread_workspace() {
  thread_local Workspace ws;
  return ws;
}

ExecutionContext::ExecutionContext()
    : backend_(&qgtc::tcsim::backend(default_backend())), private_(false) {}

ExecutionContext::ExecutionContext(BackendKind kind, bool private_counters)
    : backend_(&qgtc::tcsim::backend(kind)), private_(private_counters) {}

void ExecutionContext::note(const Counters& delta) const {
  if (!private_) {
    thread_counters() += delta;
    return;
  }
  bmma_ops_.fetch_add(delta.bmma_ops, std::memory_order_relaxed);
  frag_loads_a_.fetch_add(delta.frag_loads_a, std::memory_order_relaxed);
  frag_loads_b_.fetch_add(delta.frag_loads_b, std::memory_order_relaxed);
  frag_stores_.fetch_add(delta.frag_stores, std::memory_order_relaxed);
  tiles_jumped_.fetch_add(delta.tiles_jumped, std::memory_order_relaxed);
  int32_bytes_avoided_.fetch_add(delta.int32_bytes_avoided,
                                 std::memory_order_relaxed);
}

Counters ExecutionContext::counters() const {
  if (!private_) return snapshot_counters();
  Counters c;
  c.bmma_ops = bmma_ops_.load(std::memory_order_relaxed);
  c.frag_loads_a = frag_loads_a_.load(std::memory_order_relaxed);
  c.frag_loads_b = frag_loads_b_.load(std::memory_order_relaxed);
  c.frag_stores = frag_stores_.load(std::memory_order_relaxed);
  c.tiles_jumped = tiles_jumped_.load(std::memory_order_relaxed);
  c.int32_bytes_avoided = int32_bytes_avoided_.load(std::memory_order_relaxed);
  return c;
}

void ExecutionContext::reset_counters() {
  if (!private_) {
    qgtc::tcsim::reset_counters();
    return;
  }
  bmma_ops_.store(0, std::memory_order_relaxed);
  frag_loads_a_.store(0, std::memory_order_relaxed);
  frag_loads_b_.store(0, std::memory_order_relaxed);
  frag_stores_.store(0, std::memory_order_relaxed);
  tiles_jumped_.store(0, std::memory_order_relaxed);
  int32_bytes_avoided_.store(0, std::memory_order_relaxed);
}

const ExecutionContext& ExecutionContext::default_context() {
  static const ExecutionContext ctx;
  return ctx;
}

}  // namespace qgtc::tcsim
