#include "tcsim/backend.hpp"

#include <bit>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/env.hpp"

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace qgtc::tcsim {
namespace {

// ------------------------------------------------------------------------
// Portable u64 micro-kernels. Accumulator layout: u64[8][8] row-major
// (lanes 64..127 unused). These are the semantic reference — dot128 shape.
// ------------------------------------------------------------------------

struct ScalarKernels {
  static void load_a(AFragment& frag, const u32* a, i64 a_stride) {
    for (int i = 0; i < kTileM; ++i) {
      std::memcpy(&frag.lanes[static_cast<std::size_t>(i) * 8],
                  a + i * a_stride, 16);
    }
  }

  static void mma(u64* acc, const AFragment& frag, const u32* b, i64 b_stride,
                  int shift, bool use_xor) {
    for (int j = 0; j < kTileN; ++j) {
      u64 b0, b1;
      std::memcpy(&b0, b + j * b_stride, 8);
      std::memcpy(&b1, b + j * b_stride + 2, 8);
      for (int i = 0; i < kTileM; ++i) {
        const u64 a0 = frag.lanes[static_cast<std::size_t>(i) * 8];
        const u64 a1 = frag.lanes[static_cast<std::size_t>(i) * 8 + 1];
        const u64 cnt =
            use_xor
                ? static_cast<u64>(std::popcount(a0 ^ b0) + std::popcount(a1 ^ b1))
                : static_cast<u64>(std::popcount(a0 & b0) + std::popcount(a1 & b1));
        acc[static_cast<std::size_t>(i) * kTileN + j] += cnt << shift;
      }
    }
  }

  static void flush(i32* out, i64 out_stride, const u64* acc) {
    for (int i = 0; i < kTileM; ++i) {
      i32* row = out + i * out_stride;
      for (int j = 0; j < kTileN; ++j) {
        row[j] = static_cast<i32>(
            static_cast<u32>(row[j]) +
            static_cast<u32>(acc[static_cast<std::size_t>(i) * kTileN + j]));
      }
    }
  }

  /// Drain the accumulator into a row-major i32[64] tile with the uint32-wrap
  /// truncation (the lane-combine half of flush, shared by the epilogue
  /// variants).
  static void reduce(i32* vals, const u64* acc) {
    for (int k = 0; k < kTileM * kTileN; ++k) {
      vals[k] = static_cast<i32>(static_cast<u32>(acc[k]));
    }
  }
};

/// Compile-time SIMD fallback: same layout as ScalarKernels but the B tile
/// is decoded once per tile op (u64 x 4 words) and the inner loop is
/// unrolled over column pairs — the best a portable build can do.
struct U64x4Kernels {
  static void load_a(AFragment& frag, const u32* a, i64 a_stride) {
    ScalarKernels::load_a(frag, a, a_stride);
  }

  static void mma(u64* acc, const AFragment& frag, const u32* b, i64 b_stride,
                  int shift, bool use_xor) {
    u64 bl[kTileN][2];
    for (int j = 0; j < kTileN; ++j) {
      std::memcpy(&bl[j][0], b + j * b_stride, 8);
      std::memcpy(&bl[j][1], b + j * b_stride + 2, 8);
    }
    for (int i = 0; i < kTileM; ++i) {
      const u64 a0 = frag.lanes[static_cast<std::size_t>(i) * 8];
      const u64 a1 = frag.lanes[static_cast<std::size_t>(i) * 8 + 1];
      u64* row = acc + static_cast<std::size_t>(i) * kTileN;
      if (use_xor) {
        for (int j = 0; j < kTileN; j += 2) {
          row[j] += static_cast<u64>(std::popcount(a0 ^ bl[j][0]) +
                                     std::popcount(a1 ^ bl[j][1]))
                    << shift;
          row[j + 1] += static_cast<u64>(std::popcount(a0 ^ bl[j + 1][0]) +
                                         std::popcount(a1 ^ bl[j + 1][1]))
                        << shift;
        }
      } else {
        for (int j = 0; j < kTileN; j += 2) {
          row[j] += static_cast<u64>(std::popcount(a0 & bl[j][0]) +
                                     std::popcount(a1 & bl[j][1]))
                    << shift;
          row[j + 1] += static_cast<u64>(std::popcount(a0 & bl[j + 1][0]) +
                                         std::popcount(a1 & bl[j + 1][1]))
                        << shift;
        }
      }
    }
  }

  static void flush(i32* out, i64 out_stride, const u64* acc) {
    ScalarKernels::flush(out, out_stride, acc);
  }

  static void reduce(i32* vals, const u64* acc) {
    ScalarKernels::reduce(vals, acc);
  }
};

#if defined(__AVX512VPOPCNTDQ__) && defined(__AVX512F__)

/// AVX-512 VPOPCNTDQ: one 512-bit vector holds four B columns (4 x 128-bit
/// lanes). Accumulator layout: __m512i[8][2] = 128 u64 per tile, per-lane
/// partial sums combined at flush (matches detail::TileAcc's AVX-512 path).
struct Avx512Kernels {
  static void load_a(AFragment& frag, const u32* a, i64 a_stride) {
    for (int i = 0; i < kTileM; ++i) {
      const __m512i v = _mm512_broadcast_i32x4(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i * a_stride)));
      _mm512_store_si512(
          reinterpret_cast<__m512i*>(&frag.lanes[static_cast<std::size_t>(i) * 8]), v);
    }
  }

  static void mma(u64* acc, const AFragment& frag, const u32* b, i64 b_stride,
                  int shift, bool use_xor) {
    __m512i bc[2];
    for (int g = 0; g < 2; ++g) {
      __m512i v = _mm512_castsi128_si512(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(b + (4 * g) * b_stride)));
      v = _mm512_inserti32x4(v, _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                                    b + (4 * g + 1) * b_stride)), 1);
      v = _mm512_inserti32x4(v, _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                                    b + (4 * g + 2) * b_stride)), 2);
      v = _mm512_inserti32x4(v, _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                                    b + (4 * g + 3) * b_stride)), 3);
      bc[g] = v;
    }
    for (int i = 0; i < kTileM; ++i) {
      const __m512i av = _mm512_load_si512(reinterpret_cast<const __m512i*>(
          &frag.lanes[static_cast<std::size_t>(i) * 8]));
      for (int g = 0; g < 2; ++g) {
        __m512i* slot = reinterpret_cast<__m512i*>(acc + (i * 2 + g) * 8);
        const __m512i mixed =
            use_xor ? _mm512_xor_si512(av, bc[g]) : _mm512_and_si512(av, bc[g]);
        const __m512i cnt = _mm512_popcnt_epi64(mixed);
        _mm512_storeu_si512(
            slot, _mm512_add_epi64(
                      _mm512_loadu_si512(slot),
                      _mm512_slli_epi64(cnt, static_cast<unsigned>(shift))));
      }
    }
  }

  static void flush(i32* out, i64 out_stride, const u64* acc) {
    for (int i = 0; i < kTileM; ++i) {
      i32* row = out + i * out_stride;
      for (int g = 0; g < 2; ++g) {
        const u64* tmp = acc + (i * 2 + g) * 8;
        for (int c = 0; c < 4; ++c) {
          const int j = 4 * g + c;
          row[j] = static_cast<i32>(static_cast<u32>(row[j]) +
                                    static_cast<u32>(tmp[2 * c] + tmp[2 * c + 1]));
        }
      }
    }
  }

  static void reduce(i32* vals, const u64* acc) {
    for (int i = 0; i < kTileM; ++i) {
      for (int g = 0; g < 2; ++g) {
        const u64* tmp = acc + (i * 2 + g) * 8;
        for (int c = 0; c < 4; ++c) {
          vals[i * kTileN + 4 * g + c] =
              static_cast<i32>(static_cast<u32>(tmp[2 * c] + tmp[2 * c + 1]));
        }
      }
    }
  }
};

#endif  // AVX512VPOPCNTDQ

#if defined(__AVX2__)

/// Per-byte popcount of a 256-bit vector via the classic 4-bit LUT
/// (sidesteps the scalar POPCNT port bottleneck on this tile shape).
inline __m256i popcount_bytes_256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

/// AVX2: one 256-bit vector holds two B columns. Accumulator layout:
/// __m256i[8][4] = 128 u64 per tile (per-vpsadbw-lane partial sums).
struct Avx2Kernels {
  static void load_a(AFragment& frag, const u32* a, i64 a_stride) {
    for (int i = 0; i < kTileM; ++i) {
      const __m256i v = _mm256_broadcastsi128_si256(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i * a_stride)));
      _mm256_store_si256(
          reinterpret_cast<__m256i*>(&frag.lanes[static_cast<std::size_t>(i) * 8]), v);
    }
  }

  static void mma(u64* acc, const AFragment& frag, const u32* b, i64 b_stride,
                  int shift, bool use_xor) {
    __m256i bc[4];
    for (int p = 0; p < 4; ++p) {
      const __m128i lo = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(b + (2 * p) * b_stride));
      const __m128i hi = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(b + (2 * p + 1) * b_stride));
      bc[p] = _mm256_set_m128i(hi, lo);
    }
    const __m256i zero = _mm256_setzero_si256();
    for (int i = 0; i < kTileM; ++i) {
      const __m256i av = _mm256_load_si256(reinterpret_cast<const __m256i*>(
          &frag.lanes[static_cast<std::size_t>(i) * 8]));
      for (int p = 0; p < 4; ++p) {
        __m256i* slot = reinterpret_cast<__m256i*>(acc + (i * 4 + p) * 4);
        const __m256i x =
            use_xor ? _mm256_xor_si256(av, bc[p]) : _mm256_and_si256(av, bc[p]);
        const __m256i sums = _mm256_sad_epu8(popcount_bytes_256(x), zero);
        _mm256_storeu_si256(
            slot, _mm256_add_epi64(_mm256_loadu_si256(slot),
                                   _mm256_slli_epi64(sums, shift)));
      }
    }
  }

  static void flush(i32* out, i64 out_stride, const u64* acc) {
    for (int i = 0; i < kTileM; ++i) {
      i32* row = out + i * out_stride;
      for (int p = 0; p < 4; ++p) {
        const u64* tmp = acc + (i * 4 + p) * 4;
        row[2 * p] = static_cast<i32>(static_cast<u32>(row[2 * p]) +
                                      static_cast<u32>(tmp[0] + tmp[1]));
        row[2 * p + 1] = static_cast<i32>(static_cast<u32>(row[2 * p + 1]) +
                                          static_cast<u32>(tmp[2] + tmp[3]));
      }
    }
  }

  static void reduce(i32* vals, const u64* acc) {
    for (int i = 0; i < kTileM; ++i) {
      for (int p = 0; p < 4; ++p) {
        const u64* tmp = acc + (i * 4 + p) * 4;
        vals[i * kTileN + 2 * p] =
            static_cast<i32>(static_cast<u32>(tmp[0] + tmp[1]));
        vals[i * kTileN + 2 * p + 1] =
            static_cast<i32>(static_cast<u32>(tmp[2] + tmp[3]));
      }
    }
  }
};

#endif  // AVX2

// ------------------------------------------------------------------------
// Registry plumbing
// ------------------------------------------------------------------------

template <typename Kernels>
class BackendImpl final : public SubstrateBackend {
 public:
  BackendImpl(BackendKind kind, const char* name, i64 width)
      : kind_(kind), name_(name), width_(width) {}

  [[nodiscard]] BackendKind kind() const override { return kind_; }
  [[nodiscard]] const char* name() const override { return name_; }
  [[nodiscard]] i64 panel_width() const override { return width_; }

  void load_a(AFragment& frag, const u32* a, i64 a_stride) const override {
    Kernels::load_a(frag, a, a_stride);
  }
  void mma(u64* acc, const AFragment& frag, const u32* b, i64 b_stride,
           int shift, bool use_xor) const override {
    Kernels::mma(acc, frag, b, b_stride, shift, use_xor);
  }
  void flush(i32* out, i64 out_stride, const u64* acc) const override {
    Kernels::flush(out, out_stride, acc);
  }
  void flush_epilogue(i32* out, i64 out_stride, const u64* acc,
                      const EpilogueSpec& spec) const override {
    alignas(64) i32 vals[kTileM * kTileN];
    Kernels::reduce(vals, acc);
    if (!spec.is_raw()) {
      for (int k = 0; k < kTileM * kTileN; ++k) {
        vals[k] = apply_epilogue(vals[k], spec);
      }
    }
    for (int i = 0; i < kTileM; ++i) {
      std::memcpy(out + i * out_stride, vals + i * kTileN,
                  kTileN * sizeof(i32));
    }
  }
  void flush_planes(const PlaneSink& sink, const u64* acc,
                    const EpilogueSpec& spec) const override {
    alignas(64) i32 vals[kTileM * kTileN];
    Kernels::reduce(vals, acc);
    for (int k = 0; k < kTileM * kTileN; ++k) {
      vals[k] = apply_epilogue(vals[k], spec);
    }
    scatter_planes(sink, vals);
  }

 private:
  BackendKind kind_;
  const char* name_;
  i64 width_;
};

/// §4.4 cross-tile blocking factor used by kBlocked (output-column tiles a
/// decoded A fragment stays resident for).
constexpr i64 kPanelWidth = 8;

/// True when the vector micro-kernels compiled in are usable on this CPU.
bool runtime_simd_ok() {
#if defined(__AVX512VPOPCNTDQ__) && defined(__AVX512F__)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512vpopcntdq");
#elif defined(__AVX2__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

const SubstrateBackend& simd_impl(BackendKind kind, i64 width) {
#if defined(__AVX512VPOPCNTDQ__) && defined(__AVX512F__)
  if (runtime_simd_ok()) {
    static const BackendImpl<Avx512Kernels> simd{BackendKind::kSimd,
                                                 "simd(avx512)", 1};
    static const BackendImpl<Avx512Kernels> blocked{BackendKind::kBlocked,
                                                    "blocked(avx512)", kPanelWidth};
    return kind == BackendKind::kSimd ? static_cast<const SubstrateBackend&>(simd)
                                      : blocked;
  }
#elif defined(__AVX2__)
  if (runtime_simd_ok()) {
    static const BackendImpl<Avx2Kernels> simd{BackendKind::kSimd, "simd(avx2)",
                                               1};
    static const BackendImpl<Avx2Kernels> blocked{BackendKind::kBlocked,
                                                  "blocked(avx2)", kPanelWidth};
    return kind == BackendKind::kSimd ? static_cast<const SubstrateBackend&>(simd)
                                      : blocked;
  }
#endif
  static const BackendImpl<U64x4Kernels> simd{BackendKind::kSimd, "simd(u64x4)",
                                              1};
  static const BackendImpl<U64x4Kernels> blocked{BackendKind::kBlocked,
                                                 "blocked(u64x4)", kPanelWidth};
  (void)width;
  return kind == BackendKind::kSimd ? static_cast<const SubstrateBackend&>(simd)
                                    : blocked;
}

}  // namespace

void SubstrateBackend::flush_epilogue(i32* out, i64 out_stride, const u64* acc,
                                      const EpilogueSpec& spec) const {
  // Generic drain: zero a scratch tile, add-flush into it (uint32-wrap), then
  // requantize. BackendImpl overrides skip the zero+add round trip.
  alignas(64) i32 vals[kTileM * kTileN] = {};
  flush(vals, kTileN, acc);
  if (!spec.is_raw()) {
    for (int k = 0; k < kTileM * kTileN; ++k) {
      vals[k] = apply_epilogue(vals[k], spec);
    }
  }
  for (int i = 0; i < kTileM; ++i) {
    std::memcpy(out + i * out_stride, vals + i * kTileN, kTileN * sizeof(i32));
  }
}

void SubstrateBackend::flush_planes(const PlaneSink& sink, const u64* acc,
                                    const EpilogueSpec& spec) const {
  alignas(64) i32 vals[kTileM * kTileN] = {};
  flush(vals, kTileN, acc);
  for (int k = 0; k < kTileM * kTileN; ++k) {
    vals[k] = apply_epilogue(vals[k], spec);
  }
  scatter_planes(sink, vals);
}

void SubstrateBackend::mma_tile_list(u64* acc, const SparseTileRef* tiles,
                                     i64 n_tiles, i64 a_stride,
                                     const u32* b_cols, i64 b_stride, i64 nb,
                                     int shift, bool use_xor) const {
  AFragment frag;
  for (i64 t = 0; t < n_tiles; ++t) {
    load_a(frag, tiles[t].a, a_stride);
    const u32* bk = b_cols + tiles[t].k_tile * kTileKWords;
    for (i64 blk = 0; blk < nb; ++blk) {
      mma(acc + blk * kTileAccLanes, frag, bk + blk * kTileN * b_stride,
          b_stride, shift, use_xor);
    }
  }
}

const SubstrateBackend& backend(BackendKind k) {
  switch (k) {
    case BackendKind::kScalar: {
      static const BackendImpl<ScalarKernels> scalar{BackendKind::kScalar,
                                                     "scalar", 1};
      return scalar;
    }
    case BackendKind::kSimd:
      return simd_impl(BackendKind::kSimd, 1);
    case BackendKind::kBlocked:
      return simd_impl(BackendKind::kBlocked, kPanelWidth);
  }
  throw std::invalid_argument("unknown BackendKind");
}

const char* backend_name(BackendKind k) { return backend(k).name(); }

BackendKind parse_backend(std::string_view name) {
  if (name == "scalar") return BackendKind::kScalar;
  if (name == "simd") return BackendKind::kSimd;
  if (name == "blocked") return BackendKind::kBlocked;
  throw std::invalid_argument("unknown backend '" + std::string(name) +
                              "' (expected scalar|simd|blocked)");
}

const char* activation_name(Activation a) {
  switch (a) {
    case Activation::kIdentity: return "identity";
    case Activation::kRelu: return "relu";
    case Activation::kRelu6: return "relu6";
    case Activation::kHardswish: return "hardswish";
  }
  return "?";
}

Activation parse_activation(std::string_view name) {
  if (name == "identity") return Activation::kIdentity;
  if (name == "relu") return Activation::kRelu;
  if (name == "relu6") return Activation::kRelu6;
  if (name == "hardswish") return Activation::kHardswish;
  throw std::invalid_argument("unknown activation '" + std::string(name) +
                              "' (expected identity|relu|relu6|hardswish)");
}

std::vector<BackendKind> all_backends() {
  return {BackendKind::kScalar, BackendKind::kSimd, BackendKind::kBlocked};
}

bool simd_active() { return runtime_simd_ok(); }

BackendKind default_backend() {
  // Falls back (with a warning) instead of throwing: this runs from default
  // member initializers, where an unparsable env var must not terminate.
  static const BackendKind kind = [] {
    const std::string s = env_str("QGTC_BACKEND", "blocked");
    try {
      return parse_backend(s);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "QGTC_BACKEND ignored: %s\n", e.what());
      return BackendKind::kBlocked;
    }
  }();
  return kind;
}

}  // namespace qgtc::tcsim
