// ExecutionContext — the object threaded through all four layers
// (tcsim -> kernels -> engine -> api; see DESIGN.md, "Execution contexts").
//
// A context bundles the three pieces of substrate state a kernel call needs:
//
//   * the SubstrateBackend that executes 8x8x128 tile ops,
//   * access to the per-thread workspace arena (padded accumulators,
//     surviving-K-tile lists, tile accumulator lanes — reused across calls
//     instead of heap-allocated per kernel),
//   * a counter sink: either this context's private counter block (engine
//     worker contexts, so per-batch-stream accounting merges
//     deterministically) or the process-wide per-thread tcsim counters
//     (the default context — unchanged legacy semantics).
//
// Contexts are cheap, immovable, and safe to share across threads: counter
// notes are atomic, the backend is a stateless singleton, and workspaces are
// keyed by OS thread, not by context.
#pragma once

#include <atomic>
#include <vector>

#include "common/matrix.hpp"
#include "tcsim/backend.hpp"
#include "tcsim/wmma.hpp"

namespace qgtc::tcsim {

/// Per-OS-thread scratch arena. Each named slot is a single-checkout buffer:
/// a kernel checks it out, uses it within the call, and the next call on the
/// same thread reuses the storage (capacity only grows). Slots are distinct
/// per use-site so nested kernel calls on one thread never alias.
class Workspace {
 public:
  /// Zeroed padded accumulator of at least rows x cols (reallocates only on
  /// shape growth/change; the engine's same-shaped batches hit the cache).
  MatrixI32& padded_acc(i64 rows, i64 cols);

  /// Uninitialised int32 scratch matrix of rows x cols (reallocates only on
  /// shape change; `slot` keys independent use-sites so stages with different
  /// shapes don't thrash each other's storage). Unlike padded_acc it is NOT
  /// zeroed: callers must fully overwrite the logical region (the unfused
  /// epilogue paths assign every element via flush_epilogue).
  MatrixI32& int32_scratch(int slot, i64 rows, i64 cols);

  /// `n` cleared K-tile lists (one per row block, shared across the N sweep).
  std::vector<std::vector<i64>>& k_lists(i64 n);

  /// Cleared sparse-schedule entry list (per row block, inside parallel
  /// loops) — the operand of SubstrateBackend::mma_tile_list.
  std::vector<SparseTileRef>& tile_refs();

  /// Uninitialised, 64-byte-aligned u64 tile-accumulator scratch.
  u64* acc_lanes(i64 lanes);

  /// Bytes currently retained by this thread's arena.
  [[nodiscard]] std::size_t footprint_bytes() const;

 private:
  MatrixI32 padded_acc_;
  std::vector<MatrixI32> int32_scratch_;
  std::vector<std::vector<i64>> k_lists_;
  std::vector<SparseTileRef> tile_refs_;
  AlignedVector<u64> acc_lanes_;
};

/// This OS thread's arena (created on first use, lives for the thread).
Workspace& thread_workspace();

class ExecutionContext {
 public:
  /// Default context: process default backend, counters routed to the global
  /// per-thread tcsim counter registry (legacy snapshot semantics).
  ExecutionContext();

  /// Context with an explicit backend. With `private_counters` (the engine's
  /// per-worker mode) substrate accounting lands in this context's own
  /// atomic counter block instead of the global registry.
  explicit ExecutionContext(BackendKind kind, bool private_counters = true);

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  [[nodiscard]] const SubstrateBackend& backend() const { return *backend_; }
  [[nodiscard]] BackendKind backend_kind() const { return backend_->kind(); }
  [[nodiscard]] bool has_private_counters() const { return private_; }

  /// The calling thread's workspace arena.
  [[nodiscard]] Workspace& workspace() const { return thread_workspace(); }

  /// Bulk substrate accounting (one note per kernel row-block). Thread-safe.
  void note(const Counters& delta) const;

  /// Counters attributed to this context (private mode) or the global
  /// all-thread snapshot (default mode).
  [[nodiscard]] Counters counters() const;

  /// Zero this context's counters (private mode) or the global registry.
  void reset_counters();

  /// The process-wide default context (used when kernel callers pass none).
  static const ExecutionContext& default_context();

 private:
  const SubstrateBackend* backend_;
  bool private_;
  mutable std::atomic<u64> bmma_ops_{0};
  mutable std::atomic<u64> frag_loads_a_{0};
  mutable std::atomic<u64> frag_loads_b_{0};
  mutable std::atomic<u64> frag_stores_{0};
  mutable std::atomic<u64> tiles_jumped_{0};
  mutable std::atomic<u64> int32_bytes_avoided_{0};
};

}  // namespace qgtc::tcsim
