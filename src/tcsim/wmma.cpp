#include "tcsim/wmma.hpp"

#include <mutex>
#include <vector>

namespace qgtc::tcsim {
namespace {

// Registry of per-thread counter blocks so snapshot_all can aggregate without
// requiring threads to check in explicitly.
std::mutex g_registry_mu;
std::vector<Counters*> g_registry;

struct ThreadSlot {
  Counters counters;
  ThreadSlot() {
    std::lock_guard<std::mutex> lk(g_registry_mu);
    g_registry.push_back(&counters);
  }
  // Note: slots are intentionally leaked from the registry on thread exit;
  // OpenMP worker threads live for the process lifetime, and keeping the
  // pointer valid keeps snapshotting race-free and simple.
};

ThreadSlot& slot() {
  thread_local ThreadSlot s;
  return s;
}

}  // namespace

Counters& thread_counters() { return slot().counters; }

Counters snapshot_counters() {
  std::lock_guard<std::mutex> lk(g_registry_mu);
  Counters total;
  for (const Counters* c : g_registry) total += *c;
  return total;
}

void reset_counters() {
  std::lock_guard<std::mutex> lk(g_registry_mu);
  for (Counters* c : g_registry) *c = Counters{};
}

}  // namespace qgtc::tcsim
