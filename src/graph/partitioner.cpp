#include "graph/partitioner.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/rng.hpp"

namespace qgtc {

double PartitionResult::intra_edge_fraction(const CsrView& g) const {
  if (g.num_edges() == 0) return 1.0;
  i64 intra = 0;
  for (i64 u = 0; u < g.num_nodes(); ++u) {
    for (const i32 v : g.neighbors(u)) {
      if (part_of[static_cast<std::size_t>(u)] == part_of[static_cast<std::size_t>(v)]) ++intra;
    }
  }
  return static_cast<double>(intra) / static_cast<double>(g.num_edges());
}

i64 PartitionResult::edge_cut(const CsrView& g) const {
  i64 cut = 0;
  for (i64 u = 0; u < g.num_nodes(); ++u) {
    for (const i32 v : g.neighbors(u)) {
      if (part_of[static_cast<std::size_t>(u)] !=
          part_of[static_cast<std::size_t>(v)]) {
        ++cut;
      }
    }
  }
  return cut;
}

std::vector<i32> PartitionResult::halo_of(const CsrView& g, i64 p) const {
  QGTC_CHECK(p >= 0 && p < num_parts, "partition id out of range");
  std::vector<i32> halo;
  for (const i32 u : members[static_cast<std::size_t>(p)]) {
    for (const i32 v : g.neighbors(u)) {
      if (part_of[static_cast<std::size_t>(v)] != static_cast<i32>(p)) {
        halo.push_back(v);
      }
    }
  }
  std::sort(halo.begin(), halo.end());
  halo.erase(std::unique(halo.begin(), halo.end()), halo.end());
  return halo;
}

i64 PartitionResult::total_halo(const CsrView& g) const {
  i64 total = 0;
  for (i64 p = 0; p < num_parts; ++p) {
    total += static_cast<i64>(halo_of(g, p).size());
  }
  return total;
}

namespace {

/// One refinement sweep: move boundary nodes to the neighbouring partition
/// that hosts the majority of their edges, when the balance bound allows it.
/// (Greedy single-node Kernighan-Lin-style gains.)
i64 refine_pass(const CsrView& g, std::vector<i32>& part_of,
                std::vector<i64>& part_size, i64 max_size, i64 num_parts) {
  i64 moves = 0;
  std::vector<i64> gain(static_cast<std::size_t>(num_parts), 0);
  std::vector<i32> touched;
  for (i64 u = 0; u < g.num_nodes(); ++u) {
    const i32 cur = part_of[static_cast<std::size_t>(u)];
    touched.clear();
    for (const i32 v : g.neighbors(u)) {
      const i32 p = part_of[static_cast<std::size_t>(v)];
      if (gain[static_cast<std::size_t>(p)] == 0) touched.push_back(p);
      ++gain[static_cast<std::size_t>(p)];
    }
    i32 best = cur;
    i64 best_gain = gain[static_cast<std::size_t>(cur)];
    for (const i32 p : touched) {
      if (p != cur && gain[static_cast<std::size_t>(p)] > best_gain &&
          part_size[static_cast<std::size_t>(p)] < max_size) {
        best = p;
        best_gain = gain[static_cast<std::size_t>(p)];
      }
    }
    for (const i32 p : touched) gain[static_cast<std::size_t>(p)] = 0;
    if (best != cur) {
      part_of[static_cast<std::size_t>(u)] = best;
      --part_size[static_cast<std::size_t>(cur)];
      ++part_size[static_cast<std::size_t>(best)];
      ++moves;
    }
  }
  return moves;
}

}  // namespace

PartitionResult partition_graph(const CsrView& g, i64 num_parts,
                                const PartitionOptions& opt) {
  QGTC_CHECK(num_parts >= 1, "need at least one partition");
  const i64 n = g.num_nodes();
  num_parts = std::min(num_parts, std::max<i64>(n, 1));
  const i64 target = ceil_div(std::max<i64>(n, 1), num_parts);
  const i64 max_size =
      std::max<i64>(target + 1, static_cast<i64>(static_cast<double>(target) * opt.balance_slack));

  PartitionResult res;
  res.num_parts = num_parts;
  res.part_of.assign(static_cast<std::size_t>(n), -1);

  // BFS growth: each partition grows from a seed until it reaches the target
  // size, preferring frontier nodes so parts stay connected and dense.
  Rng rng(opt.seed);
  std::vector<i32> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  // Deterministic shuffle of seed candidates.
  for (i64 i = n - 1; i > 0; --i) {
    std::swap(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>(rng.next_below(static_cast<u64>(i + 1)))]);
  }

  std::vector<i64> part_size(static_cast<std::size_t>(num_parts), 0);
  std::deque<i32> queue;
  i64 seed_cursor = 0;
  for (i32 p = 0; p < num_parts; ++p) {
    queue.clear();
    i64 filled = 0;
    while (filled < target) {
      i32 u = -1;
      while (!queue.empty()) {
        const i32 cand = queue.front();
        queue.pop_front();
        if (res.part_of[static_cast<std::size_t>(cand)] < 0) {
          u = cand;
          break;
        }
      }
      if (u < 0) {
        // Frontier exhausted: pick the next unassigned seed.
        while (seed_cursor < n &&
               res.part_of[static_cast<std::size_t>(order[static_cast<std::size_t>(seed_cursor)])] >= 0) {
          ++seed_cursor;
        }
        if (seed_cursor >= n) break;  // all nodes assigned
        u = order[static_cast<std::size_t>(seed_cursor)];
      }
      res.part_of[static_cast<std::size_t>(u)] = p;
      ++filled;
      for (const i32 v : g.neighbors(u)) {
        if (res.part_of[static_cast<std::size_t>(v)] < 0) queue.push_back(v);
      }
    }
    part_size[static_cast<std::size_t>(p)] = filled;
    if (seed_cursor >= n && queue.empty() && filled == 0) break;
  }
  // Any stragglers (possible when BFS exhausted early) go to the smallest
  // partition.
  for (i64 u = 0; u < n; ++u) {
    if (res.part_of[static_cast<std::size_t>(u)] < 0) {
      const auto it = std::min_element(part_size.begin(), part_size.end());
      const i32 p = static_cast<i32>(it - part_size.begin());
      res.part_of[static_cast<std::size_t>(u)] = p;
      ++part_size[static_cast<std::size_t>(p)];
    }
  }

  for (int pass = 0; pass < opt.refine_passes; ++pass) {
    if (refine_pass(g, res.part_of, part_size, max_size, num_parts) == 0) break;
  }

  res.members.assign(static_cast<std::size_t>(num_parts), {});
  for (i64 p = 0; p < num_parts; ++p) {
    res.members[static_cast<std::size_t>(p)].reserve(
        static_cast<std::size_t>(part_size[static_cast<std::size_t>(p)]));
  }
  for (i64 u = 0; u < n; ++u) {
    res.members[static_cast<std::size_t>(res.part_of[static_cast<std::size_t>(u)])].push_back(
        static_cast<i32>(u));
  }
  return res;
}

}  // namespace qgtc
