#include "graph/io.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "store/format.hpp"

namespace qgtc::io {
namespace {

constexpr u32 kMagic = 0x51475443;  // "QGTC"
// v2 added the endianness probe word after the version.
constexpr u32 kVersion = 2;

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  QGTC_CHECK(static_cast<bool>(in), "unexpected end of stream");
  return v;
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
  write_pod<u64>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& in) {
  const u64 n = read_pod<u64>(in);
  std::vector<T> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  QGTC_CHECK(static_cast<bool>(in), "unexpected end of stream");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod<u64>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const u64 n = read_pod<u64>(in);
  QGTC_CHECK(n < (1u << 20), "implausible string length in dataset stream");
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  QGTC_CHECK(static_cast<bool>(in), "unexpected end of stream");
  return s;
}

}  // namespace

CsrGraph read_edge_list(std::istream& in, i64 num_nodes) {
  std::vector<std::pair<i32, i32>> edges;
  i64 max_id = -1;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    i64 u, v;
    if (!(ls >> u >> v)) {
      throw std::invalid_argument("malformed edge-list line: " + line);
    }
    max_id = std::max({max_id, u, v});
    edges.emplace_back(static_cast<i32>(u), static_cast<i32>(v));
  }
  const i64 n = num_nodes >= 0 ? num_nodes : max_id + 1;
  return CsrGraph::from_edges(n, std::move(edges));
}

void write_edge_list(std::ostream& out, const CsrGraph& g) {
  out << "# qgtc edge list: " << g.num_nodes() << " nodes, "
      << g.num_edges() / 2 << " undirected edges\n";
  for (i64 u = 0; u < g.num_nodes(); ++u) {
    for (const i32 v : g.neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
}

void save_dataset(std::ostream& out, const Dataset& ds) {
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod(out, store::kEndianProbe);
  write_string(out, ds.spec.name);
  write_pod<i64>(out, ds.spec.num_nodes);
  write_pod<i64>(out, ds.spec.num_edges);
  write_pod<i64>(out, ds.spec.feature_dim);
  write_pod<i64>(out, ds.spec.num_classes);
  write_pod<i64>(out, ds.spec.num_clusters);
  write_pod<u64>(out, ds.spec.seed);

  write_vec(out, ds.graph.row_ptr());
  write_vec(out, ds.graph.col_idx());

  write_pod<i64>(out, ds.features.rows());
  write_pod<i64>(out, ds.features.cols());
  out.write(reinterpret_cast<const char*>(ds.features.data()),
            static_cast<std::streamsize>(ds.features.size() * sizeof(float)));
  write_vec(out, ds.labels);
}

Dataset load_dataset(std::istream& in) {
  QGTC_CHECK(read_pod<u32>(in) == kMagic, "not a QGTC dataset stream");
  QGTC_CHECK(read_pod<u32>(in) == kVersion, "unsupported dataset version");
  QGTC_CHECK(read_pod<u32>(in) == store::kEndianProbe,
             "dataset stream endianness mismatch");
  Dataset ds;
  ds.spec.name = read_string(in);
  ds.spec.num_nodes = read_pod<i64>(in);
  ds.spec.num_edges = read_pod<i64>(in);
  ds.spec.feature_dim = read_pod<i64>(in);
  ds.spec.num_classes = read_pod<i64>(in);
  ds.spec.num_clusters = read_pod<i64>(in);
  ds.spec.seed = read_pod<u64>(in);

  const std::vector<i64> row_ptr = read_vec<i64>(in);
  const std::vector<i32> col_idx = read_vec<i32>(in);
  QGTC_CHECK(static_cast<i64>(row_ptr.size()) == ds.spec.num_nodes + 1,
             "row_ptr size mismatch");
  // Rebuild through from_edges to revalidate invariants.
  std::vector<std::pair<i32, i32>> edges;
  edges.reserve(col_idx.size());
  for (i64 u = 0; u < ds.spec.num_nodes; ++u) {
    for (i64 e = row_ptr[static_cast<std::size_t>(u)];
         e < row_ptr[static_cast<std::size_t>(u) + 1]; ++e) {
      edges.emplace_back(static_cast<i32>(u), col_idx[static_cast<std::size_t>(e)]);
    }
  }
  ds.graph = CsrGraph::from_edges(ds.spec.num_nodes, std::move(edges),
                                  /*symmetrize=*/false);

  const i64 rows = read_pod<i64>(in);
  const i64 cols = read_pod<i64>(in);
  ds.features = MatrixF(rows, cols);
  in.read(reinterpret_cast<char*>(ds.features.data()),
          static_cast<std::streamsize>(rows * cols * static_cast<i64>(sizeof(float))));
  QGTC_CHECK(static_cast<bool>(in), "unexpected end of stream");
  ds.labels = read_vec<i32>(in);
  QGTC_CHECK(static_cast<i64>(ds.labels.size()) == ds.spec.num_nodes,
             "label count mismatch");
  return ds;
}

void save_dataset_file(const std::string& path, const Dataset& ds) {
  std::ofstream out(path, std::ios::binary);
  QGTC_CHECK(out.is_open(), "cannot open file for writing: " + path);
  save_dataset(out, ds);
}

Dataset load_dataset_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  QGTC_CHECK(in.is_open(), "cannot open file for reading: " + path);
  return load_dataset(in);
}

namespace {

std::ofstream open_store_file(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  QGTC_CHECK(out.is_open(), "cannot open store file for writing: " + path);
  return out;
}

store::FileHeader make_header(u32 magic) {
  store::FileHeader h;
  h.magic = magic;
  h.version = store::kStoreVersion;
  h.endian = store::kEndianProbe;
  return h;
}

}  // namespace

void save_dataset_store(const std::string& dir, const Dataset& ds,
                        const StoreWriteOptions& opt) {
  QGTC_CHECK(opt.chunk_cols > 0 && opt.nodes_per_shard > 0,
             "invalid store write geometry");
  QGTC_CHECK(ds.spec.num_nodes > 0 && ds.spec.feature_dim > 0,
             "cannot write a store for an empty dataset");
  std::filesystem::create_directories(dir);

  const i64 rows = ds.features.rows();
  const i64 cols = ds.features.cols();
  const i64 num_chunks = ceil_div(cols, opt.chunk_cols);
  const i64 num_shards = ceil_div(ds.spec.num_nodes, opt.nodes_per_shard);

  // Feature column chunks: rows x [col0, col1) slices, row-major per chunk.
  for (i64 c = 0; c < num_chunks; ++c) {
    const i64 col0 = c * opt.chunk_cols;
    const i64 ccols = std::min(opt.chunk_cols, cols - col0);
    store::ChunkHeader h;
    h.file = make_header(store::kChunkMagic);
    h.rows = rows;
    h.col0 = col0;
    h.cols = ccols;
    h.total_cols = cols;
    std::ofstream out = open_store_file(dir + "/" + store::chunk_filename(c));
    write_pod(out, h);
    std::vector<float> row_buf(static_cast<std::size_t>(ccols));
    for (i64 r = 0; r < rows; ++r) {
      const auto src = ds.features.row(r);
      std::copy(src.begin() + col0, src.begin() + col0 + ccols,
                row_buf.begin());
      out.write(reinterpret_cast<const char*>(row_buf.data()),
                static_cast<std::streamsize>(row_buf.size() * sizeof(float)));
    }
    QGTC_CHECK(static_cast<bool>(out), "short write to feature chunk");
  }

  // CSR shards: global row_ptr offsets + the node range's col_idx slice.
  const std::vector<i64>& row_ptr = ds.graph.row_ptr();
  const std::vector<i32>& col_idx = ds.graph.col_idx();
  for (i64 s = 0; s < num_shards; ++s) {
    const i64 first = s * opt.nodes_per_shard;
    const i64 n = std::min(opt.nodes_per_shard, ds.spec.num_nodes - first);
    store::ShardHeader h;
    h.file = make_header(store::kShardMagic);
    h.total_nodes = ds.spec.num_nodes;
    h.total_edges = ds.graph.num_edges();
    h.first_node = first;
    h.num_nodes = n;
    std::ofstream out = open_store_file(dir + "/" + store::shard_filename(s));
    write_pod(out, h);
    out.write(reinterpret_cast<const char*>(row_ptr.data() + first),
              static_cast<std::streamsize>((n + 1) * sizeof(i64)));
    const i64 e0 = row_ptr[static_cast<std::size_t>(first)];
    const i64 e1 = row_ptr[static_cast<std::size_t>(first + n)];
    out.write(reinterpret_cast<const char*>(col_idx.data() + e0),
              static_cast<std::streamsize>((e1 - e0) * sizeof(i32)));
    QGTC_CHECK(static_cast<bool>(out), "short write to CSR shard");
  }

  // Meta: header + spec + geometry + labels.
  std::ofstream out = open_store_file(dir + "/" + store::meta_filename());
  write_pod(out, make_header(store::kMetaMagic));
  write_string(out, ds.spec.name);
  write_pod<i64>(out, ds.spec.num_nodes);
  write_pod<i64>(out, ds.spec.num_edges);
  write_pod<i64>(out, ds.spec.feature_dim);
  write_pod<i64>(out, ds.spec.num_classes);
  write_pod<i64>(out, ds.spec.num_clusters);
  write_pod<u64>(out, ds.spec.seed);
  write_pod<i64>(out, num_chunks);
  write_pod<i64>(out, opt.nodes_per_shard);
  write_pod<i64>(out, num_shards);
  write_vec(out, ds.labels);
  QGTC_CHECK(static_cast<bool>(out), "short write to store meta");
}

}  // namespace qgtc::io
