#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace qgtc::io {
namespace {

constexpr u32 kMagic = 0x51475443;  // "QGTC"
constexpr u32 kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  QGTC_CHECK(static_cast<bool>(in), "unexpected end of stream");
  return v;
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
  write_pod<u64>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& in) {
  const u64 n = read_pod<u64>(in);
  std::vector<T> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  QGTC_CHECK(static_cast<bool>(in), "unexpected end of stream");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod<u64>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const u64 n = read_pod<u64>(in);
  QGTC_CHECK(n < (1u << 20), "implausible string length in dataset stream");
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  QGTC_CHECK(static_cast<bool>(in), "unexpected end of stream");
  return s;
}

}  // namespace

CsrGraph read_edge_list(std::istream& in, i64 num_nodes) {
  std::vector<std::pair<i32, i32>> edges;
  i64 max_id = -1;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    i64 u, v;
    if (!(ls >> u >> v)) {
      throw std::invalid_argument("malformed edge-list line: " + line);
    }
    max_id = std::max({max_id, u, v});
    edges.emplace_back(static_cast<i32>(u), static_cast<i32>(v));
  }
  const i64 n = num_nodes >= 0 ? num_nodes : max_id + 1;
  return CsrGraph::from_edges(n, std::move(edges));
}

void write_edge_list(std::ostream& out, const CsrGraph& g) {
  out << "# qgtc edge list: " << g.num_nodes() << " nodes, "
      << g.num_edges() / 2 << " undirected edges\n";
  for (i64 u = 0; u < g.num_nodes(); ++u) {
    for (const i32 v : g.neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
}

void save_dataset(std::ostream& out, const Dataset& ds) {
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_string(out, ds.spec.name);
  write_pod<i64>(out, ds.spec.num_nodes);
  write_pod<i64>(out, ds.spec.num_edges);
  write_pod<i64>(out, ds.spec.feature_dim);
  write_pod<i64>(out, ds.spec.num_classes);
  write_pod<i64>(out, ds.spec.num_clusters);
  write_pod<u64>(out, ds.spec.seed);

  write_vec(out, ds.graph.row_ptr());
  write_vec(out, ds.graph.col_idx());

  write_pod<i64>(out, ds.features.rows());
  write_pod<i64>(out, ds.features.cols());
  out.write(reinterpret_cast<const char*>(ds.features.data()),
            static_cast<std::streamsize>(ds.features.size() * sizeof(float)));
  write_vec(out, ds.labels);
}

Dataset load_dataset(std::istream& in) {
  QGTC_CHECK(read_pod<u32>(in) == kMagic, "not a QGTC dataset stream");
  QGTC_CHECK(read_pod<u32>(in) == kVersion, "unsupported dataset version");
  Dataset ds;
  ds.spec.name = read_string(in);
  ds.spec.num_nodes = read_pod<i64>(in);
  ds.spec.num_edges = read_pod<i64>(in);
  ds.spec.feature_dim = read_pod<i64>(in);
  ds.spec.num_classes = read_pod<i64>(in);
  ds.spec.num_clusters = read_pod<i64>(in);
  ds.spec.seed = read_pod<u64>(in);

  const std::vector<i64> row_ptr = read_vec<i64>(in);
  const std::vector<i32> col_idx = read_vec<i32>(in);
  QGTC_CHECK(static_cast<i64>(row_ptr.size()) == ds.spec.num_nodes + 1,
             "row_ptr size mismatch");
  // Rebuild through from_edges to revalidate invariants.
  std::vector<std::pair<i32, i32>> edges;
  edges.reserve(col_idx.size());
  for (i64 u = 0; u < ds.spec.num_nodes; ++u) {
    for (i64 e = row_ptr[static_cast<std::size_t>(u)];
         e < row_ptr[static_cast<std::size_t>(u) + 1]; ++e) {
      edges.emplace_back(static_cast<i32>(u), col_idx[static_cast<std::size_t>(e)]);
    }
  }
  ds.graph = CsrGraph::from_edges(ds.spec.num_nodes, std::move(edges),
                                  /*symmetrize=*/false);

  const i64 rows = read_pod<i64>(in);
  const i64 cols = read_pod<i64>(in);
  ds.features = MatrixF(rows, cols);
  in.read(reinterpret_cast<char*>(ds.features.data()),
          static_cast<std::streamsize>(rows * cols * static_cast<i64>(sizeof(float))));
  QGTC_CHECK(static_cast<bool>(in), "unexpected end of stream");
  ds.labels = read_vec<i32>(in);
  QGTC_CHECK(static_cast<i64>(ds.labels.size()) == ds.spec.num_nodes,
             "label count mismatch");
  return ds;
}

void save_dataset_file(const std::string& path, const Dataset& ds) {
  std::ofstream out(path, std::ios::binary);
  QGTC_CHECK(out.is_open(), "cannot open file for writing: " + path);
  save_dataset(out, ds);
}

Dataset load_dataset_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  QGTC_CHECK(in.is_open(), "cannot open file for reading: " + path);
  return load_dataset(in);
}

}  // namespace qgtc::io
