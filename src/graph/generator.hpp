// Synthetic dataset substrate. The paper evaluates on six real graphs
// (Table 1); this environment has no network or dataset archive, so we
// generate seeded stochastic-block-model (SBM) graphs matched to each
// dataset's |V|, |E|, feature dim and class count (see DESIGN.md,
// substitution table). Clustered structure is the property every QGTC
// experiment depends on (METIS-partitionable, dense subgraphs).
#pragma once

#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "graph/csr.hpp"

namespace qgtc {

/// One Table-1 row.
struct DatasetSpec {
  std::string name;
  i64 num_nodes = 0;
  i64 num_edges = 0;  // undirected edge count, as reported in Table 1
  i64 feature_dim = 0;
  i64 num_classes = 0;
  i64 num_clusters = 0;  // planted communities for the SBM
  u64 seed = 1;
};

/// A generated dataset: graph + node features + planted labels.
struct Dataset {
  DatasetSpec spec;
  CsrGraph graph;
  MatrixF features;           // num_nodes x feature_dim
  std::vector<i32> labels;    // num_nodes, in [0, num_classes)
};

/// The six Table-1 datasets. `scale` in (0, 1] shrinks |V| and |E|
/// proportionally (ogbn-products defaults to 0.1 on this 2-core host;
/// QGTC_FULL_SCALE=1 restores 1.0 — see bench harness).
std::vector<DatasetSpec> table1_specs(double products_scale = 0.1);

/// Look up a Table-1 spec by name (throws if unknown).
DatasetSpec table1_spec(const std::string& name, double products_scale = 0.1);

/// Generates the SBM graph for a spec: nodes are split into `num_clusters`
/// planted communities; ~85 % of edges are intra-community. Deterministic
/// in `spec.seed`.
CsrGraph generate_sbm_graph(const DatasetSpec& spec);

/// Generates features (cluster centroid + gaussian noise) and labels
/// (cluster-majority class with 10 % label noise) for a generated graph.
Dataset generate_dataset(const DatasetSpec& spec);

}  // namespace qgtc
