// Graph and dataset (de)serialization — the host-side data plumbing of the
// paper's artifact (datasets are shipped as preprocessed binary blobs and
// loaded by the host program before partitioning).
//
// Formats:
//  * text edge list: one "u v" pair per line, '#' comments;
//  * QGTC binary dataset: magic + spec + CSR arrays + features + labels,
//    little-endian, versioned.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/generator.hpp"

namespace qgtc::io {

/// Parses a text edge list (num_nodes inferred as max id + 1 unless given).
CsrGraph read_edge_list(std::istream& in, i64 num_nodes = -1);

/// Writes one undirected edge per line (u < v).
void write_edge_list(std::ostream& out, const CsrGraph& g);

/// Serializes a full dataset (spec + graph + features + labels).
void save_dataset(std::ostream& out, const Dataset& ds);

/// Loads a dataset written by save_dataset; throws on bad magic/version.
Dataset load_dataset(std::istream& in);

/// File-path conveniences.
void save_dataset_file(const std::string& path, const Dataset& ds);
Dataset load_dataset_file(const std::string& path);

/// Geometry knobs for the out-of-core store writer.
struct StoreWriteOptions {
  /// Feature columns per mmap'd chunk file. Full-row training gathers fault
  /// one page per (row, chunk) pair, so the default keeps a typical feature
  /// row inside a single chunk; narrow chunks only pay off when readers
  /// select column subsets.
  i64 chunk_cols = 1024;
  /// Nodes per CSR shard file (uniform except the last shard).
  i64 nodes_per_shard = 64 * 1024;
};

/// Writes `ds` as an out-of-core store directory (creating it): `store.meta`
/// plus feature column-chunk files and CSR shard files, each carrying a
/// magic + version + endianness header (store/format.hpp). Read back with
/// `store::DatasetStore::open`.
void save_dataset_store(const std::string& dir, const Dataset& ds,
                        const StoreWriteOptions& opt = {});

}  // namespace qgtc::io
