// Graph and dataset (de)serialization — the host-side data plumbing of the
// paper's artifact (datasets are shipped as preprocessed binary blobs and
// loaded by the host program before partitioning).
//
// Formats:
//  * text edge list: one "u v" pair per line, '#' comments;
//  * QGTC binary dataset: magic + spec + CSR arrays + features + labels,
//    little-endian, versioned.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/generator.hpp"

namespace qgtc::io {

/// Parses a text edge list (num_nodes inferred as max id + 1 unless given).
CsrGraph read_edge_list(std::istream& in, i64 num_nodes = -1);

/// Writes one undirected edge per line (u < v).
void write_edge_list(std::ostream& out, const CsrGraph& g);

/// Serializes a full dataset (spec + graph + features + labels).
void save_dataset(std::ostream& out, const Dataset& ds);

/// Loads a dataset written by save_dataset; throws on bad magic/version.
Dataset load_dataset(std::istream& in);

/// File-path conveniences.
void save_dataset_file(const std::string& path, const Dataset& ds);
Dataset load_dataset_file(const std::string& path);

}  // namespace qgtc::io
