#include "graph/batching.hpp"

#include <algorithm>
#include <cstring>

#include "parallel/parallel_for.hpp"

namespace qgtc {

std::vector<SubgraphBatch> make_batches(const PartitionResult& parts,
                                        i64 batch_size) {
  QGTC_CHECK(batch_size >= 1, "batch size must be at least 1");
  std::vector<SubgraphBatch> batches;
  for (i64 p0 = 0; p0 < parts.num_parts; p0 += batch_size) {
    SubgraphBatch b;
    b.part_bounds.push_back(0);
    const i64 p1 = std::min(p0 + batch_size, parts.num_parts);
    for (i64 p = p0; p < p1; ++p) {
      const auto& members = parts.members[static_cast<std::size_t>(p)];
      b.nodes.insert(b.nodes.end(), members.begin(), members.end());
      b.part_bounds.push_back(static_cast<i64>(b.nodes.size()));
    }
    if (!b.nodes.empty()) batches.push_back(std::move(b));
  }
  return batches;
}

std::vector<i32> expand_ego(const CsrView& g, const std::vector<i32>& seeds,
                            int fanout, i64 max_nodes) {
  QGTC_CHECK(!seeds.empty(), "ego-graph expansion needs at least one seed");
  QGTC_CHECK(fanout >= 0, "fanout must be non-negative");
  std::vector<u8> visited(static_cast<std::size_t>(g.num_nodes()), 0);
  std::vector<i32> nodes;
  nodes.reserve(seeds.size());
  for (const i32 s : seeds) {
    QGTC_CHECK(s >= 0 && s < g.num_nodes(), "seed node id out of range");
    QGTC_CHECK(!visited[static_cast<std::size_t>(s)], "duplicate seed node");
    visited[static_cast<std::size_t>(s)] = 1;
    nodes.push_back(s);
  }
  // Level-synchronous BFS over the discovery-ordered `nodes` vector itself:
  // [lo, hi) is the current frontier, appended neighbours form the next one.
  std::size_t lo = 0;
  for (int hop = 0; hop < fanout; ++hop) {
    const std::size_t hi = nodes.size();
    for (std::size_t i = lo; i < hi; ++i) {
      for (const i32 v : g.neighbors(nodes[i])) {
        if (visited[static_cast<std::size_t>(v)]) continue;
        if (max_nodes > 0 && static_cast<i64>(nodes.size()) >= max_nodes) {
          return nodes;
        }
        visited[static_cast<std::size_t>(v)] = 1;
        nodes.push_back(v);
      }
    }
    if (hi == nodes.size()) break;  // frontier exhausted early
    lo = hi;
  }
  return nodes;
}

namespace {

/// Applies fn(local_u, local_v) for every intra-partition edge of the batch
/// (plus optional self-loops), using a global->local scratch map.
template <typename Fn>
void for_each_batch_edge(const CsrView& g, const SubgraphBatch& batch,
                         bool add_self_loops, Fn&& fn) {
  std::vector<i32> local_of(static_cast<std::size_t>(g.num_nodes()), -1);
  std::vector<i32> part_of_local(static_cast<std::size_t>(batch.size()));
  for (i64 p = 0; p < batch.num_parts(); ++p) {
    for (i64 i = batch.part_bounds[static_cast<std::size_t>(p)];
         i < batch.part_bounds[static_cast<std::size_t>(p) + 1]; ++i) {
      local_of[static_cast<std::size_t>(batch.nodes[static_cast<std::size_t>(i)])] =
          static_cast<i32>(i);
      part_of_local[static_cast<std::size_t>(i)] = static_cast<i32>(p);
    }
  }
  for (i64 lu = 0; lu < batch.size(); ++lu) {
    const i32 gu = batch.nodes[static_cast<std::size_t>(lu)];
    if (add_self_loops) fn(lu, lu);
    for (const i32 gv : g.neighbors(gu)) {
      const i32 lv = local_of[static_cast<std::size_t>(gv)];
      // Keep only edges inside the batch AND inside one partition — the
      // batched adjacency is block-diagonal by construction (§4.1).
      if (lv >= 0 && part_of_local[static_cast<std::size_t>(lu)] ==
                         part_of_local[static_cast<std::size_t>(lv)]) {
        fn(lu, lv);
      }
    }
  }
}

}  // namespace

BitMatrix build_batch_adjacency(const CsrView& g, const SubgraphBatch& batch,
                                bool add_self_loops) {
  BitMatrix adj(batch.size(), batch.size(), BitLayout::kRowMajorK,
                PadPolicy::kTile8);
  for_each_batch_edge(g, batch, add_self_loops,
                      [&](i64 u, i64 v) { adj.set(u, v, true); });
  return adj;
}

TileSparseBitMatrix build_batch_adjacency_tiles(const CsrView& g,
                                                const SubgraphBatch& batch,
                                                bool add_self_loops) {
  const i64 n = batch.size();
  TileSparseBitMatrix adj(n, n);
  const i64 tiles_k = adj.tiles_k();

  // Streaming row-tile build: the edge walker visits rows in ascending
  // order, so a row block's touched K tiles accumulate in per-tile scratch
  // slots and flush (sorted) into the tile-CSR when the walker leaves the
  // block. Only touched tiles ever allocate scratch.
  std::vector<i32> slot_of(static_cast<std::size_t>(tiles_k), -1);
  std::vector<i64> touched;
  std::vector<u32> scratch;  // touched.size() * kTileWords words
  i64 open_tm = 0;

  const auto flush = [&](i64 tm) {
    if (touched.empty()) return;
    std::sort(touched.begin(), touched.end());
    for (const i64 tk : touched) {
      u32* dst = adj.append_tile(tm, tk);
      std::memcpy(dst,
                  scratch.data() +
                      static_cast<std::size_t>(slot_of[static_cast<std::size_t>(tk)]) *
                          TileSparseBitMatrix::kTileWords,
                  TileSparseBitMatrix::kTileWords * sizeof(u32));
      slot_of[static_cast<std::size_t>(tk)] = -1;
    }
    touched.clear();
  };

  for_each_batch_edge(g, batch, add_self_loops, [&](i64 u, i64 v) {
    const i64 tm = u / kTileM;
    if (tm != open_tm) {
      flush(open_tm);
      open_tm = tm;
    }
    const i64 tk = v / kTileK;
    i32 slot = slot_of[static_cast<std::size_t>(tk)];
    if (slot < 0) {
      slot = static_cast<i32>(touched.size());
      slot_of[static_cast<std::size_t>(tk)] = slot;
      touched.push_back(tk);
      const std::size_t need = static_cast<std::size_t>(slot + 1) *
                               TileSparseBitMatrix::kTileWords;
      if (scratch.size() < need) scratch.resize(need, 0u);
      std::fill_n(scratch.begin() +
                      static_cast<std::ptrdiff_t>(slot) *
                          TileSparseBitMatrix::kTileWords,
                  TileSparseBitMatrix::kTileWords, 0u);
    }
    const i64 in_tile_col = v % kTileK;
    scratch[static_cast<std::size_t>(slot) * TileSparseBitMatrix::kTileWords +
            static_cast<std::size_t>((u % kTileM) * kTileKWords +
                                     in_tile_col / kWordBits)] |=
        u32{1} << (in_tile_col % kWordBits);
  });
  flush(open_tm);
  adj.finalize();
  return adj;
}

CsrGraph build_batch_csr(const CsrView& g, const SubgraphBatch& batch,
                         bool add_self_loops) {
  std::vector<std::pair<i32, i32>> edges;
  for_each_batch_edge(g, batch, add_self_loops, [&](i64 u, i64 v) {
    edges.emplace_back(static_cast<i32>(u), static_cast<i32>(v));
  });
  // Self-loops were injected by the walker; from_edges drops them, so add
  // them back as explicit pairs is pointless — instead keep symmetrize off
  // (the walker already emits both directions) and retain self-loops by
  // bypassing from_edges' self-loop filter via diagonal sentinel handling.
  // Simpler: build CSR manually.
  const i64 n = batch.size();
  std::vector<u64> keys;
  keys.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    keys.push_back((static_cast<u64>(static_cast<u32>(u)) << 32) |
                   static_cast<u32>(v));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::vector<std::pair<i32, i32>> uniq;
  uniq.reserve(keys.size());
  for (const u64 k : keys) {
    uniq.emplace_back(static_cast<i32>(k >> 32),
                      static_cast<i32>(k & 0xffffffffu));
  }
  // from_edges drops self-loops; the fp32 baseline adds the self term
  // explicitly during SpMM, so symmetry with the bit path is preserved.
  return CsrGraph::from_edges(n, std::move(uniq), /*symmetrize=*/false);
}

MatrixF gather_rows(const store::FeatureSource& features,
                    const std::vector<i32>& nodes) {
  return features.gather(nodes);
}

i64 PreparedBatch::prepared_bytes() const {
  i64 total = 0;
  total += static_cast<i64>(batch.nodes.size() * sizeof(i32));
  total += static_cast<i64>(batch.part_bounds.size() * sizeof(i64));
  total += adj_tiles.bytes();
  total += adj.bytes();
  total += static_cast<i64>(tile_map.nonzero.size());
  total += static_cast<i64>(local.row_ptr().size() * sizeof(i64));
  total += static_cast<i64>(local.col_idx().size() * sizeof(i32));
  total += features.size() * static_cast<i64>(sizeof(float));
  return total;
}

PreparedBatch prepare_batch_data(const CsrView& g,
                                 const store::FeatureSource& features,
                                 const SubgraphBatch& batch, bool sparse_adj,
                                 bool add_self_loops, bool build_fp32_csr) {
  PreparedBatch bd;
  bd.batch = batch;
  // The tile-CSR adjacency is always built — straight from the global CSR,
  // never through a dense intermediate. Dense mode derives its plane and
  // flag map from the tile-CSR (one edge walk total; the flag census is
  // structural, not a rescan).
  bd.adj_tiles = build_batch_adjacency_tiles(g, batch, add_self_loops);
  if (!sparse_adj) {
    bd.adj = bd.adj_tiles.to_bit_matrix();
    bd.tile_map = build_tile_map(bd.adj_tiles);
  }
  if (build_fp32_csr) bd.local = build_batch_csr(g, batch, add_self_loops);
  bd.features = features.gather(batch.nodes);
  return bd;
}

std::vector<i32> gather_labels(const std::vector<i32>& labels,
                               const std::vector<i32>& nodes) {
  std::vector<i32> out(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    out[i] = labels[static_cast<std::size_t>(nodes[i])];
  }
  return out;
}

}  // namespace qgtc
