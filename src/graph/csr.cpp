#include "graph/csr.hpp"

#include <algorithm>

namespace qgtc {

CsrGraph CsrGraph::from_edges(i64 num_nodes,
                              std::vector<std::pair<i32, i32>> edges,
                              bool symmetrize) {
  QGTC_CHECK(num_nodes >= 0, "node count must be non-negative");
  // Encode each directed edge as a single u64 key so dedup is one
  // sort+unique pass (hash sets are too slow/fat at tens of millions of
  // edges).
  std::vector<u64> keys;
  keys.reserve(edges.size() * (symmetrize ? 2 : 1));
  for (const auto& [u, v] : edges) {
    QGTC_CHECK(u >= 0 && u < num_nodes && v >= 0 && v < num_nodes,
               "edge endpoint out of range");
    if (u == v) continue;  // self-loops are added by the model, not stored
    keys.push_back((static_cast<u64>(static_cast<u32>(u)) << 32) |
                   static_cast<u32>(v));
    if (symmetrize) {
      keys.push_back((static_cast<u64>(static_cast<u32>(v)) << 32) |
                     static_cast<u32>(u));
    }
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  CsrGraph g;
  g.num_nodes_ = num_nodes;
  g.row_ptr_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  g.col_idx_.resize(keys.size());
  for (const u64 k : keys) ++g.row_ptr_[(k >> 32) + 1];
  for (i64 v = 0; v < num_nodes; ++v) g.row_ptr_[v + 1] += g.row_ptr_[v];
  // Keys are sorted, so a single forward pass writes each adjacency list in
  // ascending neighbour order.
  std::vector<i64> cursor(g.row_ptr_.begin(), g.row_ptr_.end() - 1);
  for (const u64 k : keys) {
    const i64 u = static_cast<i64>(k >> 32);
    g.col_idx_[static_cast<std::size_t>(cursor[u]++)] =
        static_cast<i32>(k & 0xffffffffu);
  }
  return g;
}

bool CsrGraph::has_edge(i64 u, i64 v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), static_cast<i32>(v));
}

CsrView::CsrView(i64 num_nodes, i64 num_edges, std::vector<Segment> segments)
    : num_nodes_(num_nodes),
      num_edges_(num_edges),
      segments_(std::move(segments)) {
  QGTC_CHECK(!segments_.empty(), "CsrView needs at least one segment");
  i64 next = 0;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const Segment& s = segments_[i];
    QGTC_CHECK(s.first_node == next, "CSR segments must tile the node range");
    QGTC_CHECK(s.num_nodes > 0 && s.row_ptr != nullptr && s.col_idx != nullptr,
               "CSR segment is empty or unmapped");
    // Uniform span (except the last segment) is what makes segment_of O(1).
    if (i + 1 < segments_.size()) {
      QGTC_CHECK(s.num_nodes == segments_[0].num_nodes,
                 "non-uniform CSR segment span");
    }
    next += s.num_nodes;
  }
  QGTC_CHECK(next == num_nodes_, "CSR segments do not cover all nodes");
  nodes_per_segment_ = std::max<i64>(segments_[0].num_nodes, 1);
}

}  // namespace qgtc
