#include "graph/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "parallel/parallel_for.hpp"

namespace qgtc {

std::vector<DatasetSpec> table1_specs(double products_scale) {
  QGTC_CHECK(products_scale > 0.0 && products_scale <= 1.0,
             "products_scale must be in (0, 1]");
  // |V|, |E|, Dim, #Class straight from Table 1. Cluster counts are chosen
  // so average community size is a few hundred nodes (METIS-like partition
  // granularity at 1,500 partitions).
  std::vector<DatasetSpec> specs = {
      {"Proteins", 43471, 162088, 29, 2, 192, 11},
      {"artist", 50515, 1638396, 100, 12, 256, 12},
      {"BlogCatalog", 88784, 2093195, 128, 39, 384, 13},
      {"PPI", 56944, 818716, 50, 121, 256, 14},
      {"ogbn-arxiv", 169343, 1166243, 128, 40, 768, 15},
      {"ogbn-products",
       static_cast<i64>(2449029 * products_scale),
       static_cast<i64>(61859140 * products_scale), 100, 47, 1024, 16},
  };
  return specs;
}

DatasetSpec table1_spec(const std::string& name, double products_scale) {
  for (const auto& s : table1_specs(products_scale)) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("unknown Table-1 dataset: " + name);
}

CsrGraph generate_sbm_graph(const DatasetSpec& spec) {
  QGTC_CHECK(spec.num_nodes > 0 && spec.num_clusters > 0,
             "SBM spec needs nodes and clusters");
  const i64 n = spec.num_nodes;
  const i64 k = std::min(spec.num_clusters, n);
  const i64 cluster_size = ceil_div(n, k);
  Rng rng(spec.seed);

  // Nodes are assigned to clusters contiguously: cluster(v) = v / size.
  // 85 % of edges connect endpoints inside one cluster (planted density the
  // partitioner should recover), the rest are uniform background.
  constexpr double kIntraFrac = 0.85;
  std::vector<std::pair<i32, i32>> edges;
  edges.reserve(static_cast<std::size_t>(spec.num_edges) + 16);
  const i64 intra_target = static_cast<i64>(kIntraFrac * static_cast<double>(spec.num_edges));
  for (i64 e = 0; e < spec.num_edges; ++e) {
    i32 u, v;
    if (e < intra_target) {
      // When cluster_size doesn't divide n, trailing cluster ids map past
      // the node range; fold them onto the last real cluster.
      const i64 last_cluster = (n - 1) / cluster_size;
      const i64 c = std::min<i64>(
          static_cast<i64>(rng.next_below(static_cast<u64>(k))), last_cluster);
      const i64 lo = c * cluster_size;
      const i64 hi = std::min(lo + cluster_size, n);
      u = static_cast<i32>(lo + static_cast<i64>(rng.next_below(static_cast<u64>(hi - lo))));
      v = static_cast<i32>(lo + static_cast<i64>(rng.next_below(static_cast<u64>(hi - lo))));
    } else {
      u = static_cast<i32>(rng.next_below(static_cast<u64>(n)));
      v = static_cast<i32>(rng.next_below(static_cast<u64>(n)));
    }
    if (u != v) edges.emplace_back(u, v);
  }
  return CsrGraph::from_edges(n, std::move(edges), /*symmetrize=*/true);
}

Dataset generate_dataset(const DatasetSpec& spec) {
  Dataset ds;
  ds.spec = spec;
  ds.graph = generate_sbm_graph(spec);

  const i64 n = spec.num_nodes;
  const i64 d = spec.feature_dim;
  const i64 k = std::min(spec.num_clusters, n);
  const i64 cluster_size = ceil_div(n, k);

  // Cluster centroids: unit-scale gaussians; node features are
  // centroid + 0.5 * noise, giving label signal a GCN can learn (Table 2).
  MatrixF centroids(k, d);
  Rng crng(spec.seed ^ 0xfeedULL);
  for (i64 i = 0; i < centroids.size(); ++i) {
    centroids.data()[i] = crng.next_gaussian();
  }

  ds.features = MatrixF(n, d);
  ds.labels.assign(static_cast<std::size_t>(n), 0);
  parallel_for(0, n, [&](i64 v) {
    Rng r(spec.seed ^ (0x1234ULL + static_cast<u64>(v)));
    const i64 c = v / cluster_size;
    for (i64 j = 0; j < d; ++j) {
      ds.features(v, j) = centroids(c, j) + 0.5f * r.next_gaussian();
    }
    const i32 base = static_cast<i32>(c % spec.num_classes);
    // 10 % label noise keeps the task non-trivial.
    ds.labels[static_cast<std::size_t>(v)] =
        r.next_bool(0.1f)
            ? static_cast<i32>(r.next_below(static_cast<u64>(spec.num_classes)))
            : base;
  });
  return ds;
}

}  // namespace qgtc
