// Compressed-sparse-row graph storage, the substrate every GNN pipeline in
// the repo consumes. Graphs are undirected and stored symmetrised.
#pragma once

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "common/defs.hpp"

namespace qgtc {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds a CSR graph from an edge list. Self-loops are dropped, duplicate
  /// edges are merged, and (optionally) each edge is mirrored so the
  /// adjacency is symmetric.
  static CsrGraph from_edges(i64 num_nodes,
                             std::vector<std::pair<i32, i32>> edges,
                             bool symmetrize = true);

  [[nodiscard]] i64 num_nodes() const { return num_nodes_; }
  /// Number of directed edges stored (2x the undirected count after
  /// symmetrisation).
  [[nodiscard]] i64 num_edges() const { return static_cast<i64>(col_idx_.size()); }

  [[nodiscard]] i64 degree(i64 v) const { return row_ptr_[v + 1] - row_ptr_[v]; }

  [[nodiscard]] std::span<const i32> neighbors(i64 v) const {
    return {col_idx_.data() + row_ptr_[v],
            static_cast<std::size_t>(degree(v))};
  }

  [[nodiscard]] const std::vector<i64>& row_ptr() const { return row_ptr_; }
  [[nodiscard]] const std::vector<i32>& col_idx() const { return col_idx_; }

  [[nodiscard]] bool has_edge(i64 u, i64 v) const;

 private:
  i64 num_nodes_ = 0;
  std::vector<i64> row_ptr_;
  std::vector<i32> col_idx_;
};

/// Non-owning read view of a CSR graph, the traversal interface every graph
/// consumer (partitioner, batcher, ego expansion, prepare) takes. Backed by
/// either one in-core `CsrGraph` (implicit conversion, one segment) or a set
/// of contiguous node-range segments — e.g. mmap'd shard files from
/// `store::DatasetStore`, whose row pointers keep their *global* edge
/// offsets and whose column slices are per-segment local. All segments
/// except the last must span the same number of nodes, so segment lookup is
/// O(1) division rather than a binary search per neighbour access.
class CsrView {
 public:
  struct Segment {
    i64 first_node = 0;
    i64 num_nodes = 0;
    /// `num_nodes + 1` entries of global edge offsets.
    const i64* row_ptr = nullptr;
    /// The segment's edges; index with `row_ptr[local] - row_ptr[0]`.
    const i32* col_idx = nullptr;
  };

  CsrView() = default;

  /*implicit*/ CsrView(const CsrGraph& g)  // NOLINT(google-explicit-constructor)
      : num_nodes_(g.num_nodes()),
        num_edges_(g.num_edges()),
        nodes_per_segment_(std::max<i64>(g.num_nodes(), 1)) {
    segments_.push_back(Segment{0, g.num_nodes(), g.row_ptr().data(),
                                g.col_idx().data()});
  }

  /// Multi-segment view (out-of-core shards). Segments must be sorted,
  /// contiguous from node 0, and uniform in node span except the last.
  CsrView(i64 num_nodes, i64 num_edges, std::vector<Segment> segments);

  [[nodiscard]] i64 num_nodes() const { return num_nodes_; }
  [[nodiscard]] i64 num_edges() const { return num_edges_; }

  [[nodiscard]] i64 degree(i64 v) const {
    const Segment& s = segment_of(v);
    const i64 local = v - s.first_node;
    return s.row_ptr[local + 1] - s.row_ptr[local];
  }

  [[nodiscard]] std::span<const i32> neighbors(i64 v) const {
    const Segment& s = segment_of(v);
    const i64 local = v - s.first_node;
    return {s.col_idx + (s.row_ptr[local] - s.row_ptr[0]),
            static_cast<std::size_t>(s.row_ptr[local + 1] - s.row_ptr[local])};
  }

  [[nodiscard]] std::size_t num_segments() const { return segments_.size(); }

 private:
  [[nodiscard]] const Segment& segment_of(i64 v) const {
    const std::size_t si = std::min(
        static_cast<std::size_t>(v / nodes_per_segment_), segments_.size() - 1);
    return segments_[si];
  }

  i64 num_nodes_ = 0;
  i64 num_edges_ = 0;
  i64 nodes_per_segment_ = 1;
  std::vector<Segment> segments_;
};

}  // namespace qgtc
