// Compressed-sparse-row graph storage, the substrate every GNN pipeline in
// the repo consumes. Graphs are undirected and stored symmetrised.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "common/defs.hpp"

namespace qgtc {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds a CSR graph from an edge list. Self-loops are dropped, duplicate
  /// edges are merged, and (optionally) each edge is mirrored so the
  /// adjacency is symmetric.
  static CsrGraph from_edges(i64 num_nodes,
                             std::vector<std::pair<i32, i32>> edges,
                             bool symmetrize = true);

  [[nodiscard]] i64 num_nodes() const { return num_nodes_; }
  /// Number of directed edges stored (2x the undirected count after
  /// symmetrisation).
  [[nodiscard]] i64 num_edges() const { return static_cast<i64>(col_idx_.size()); }

  [[nodiscard]] i64 degree(i64 v) const { return row_ptr_[v + 1] - row_ptr_[v]; }

  [[nodiscard]] std::span<const i32> neighbors(i64 v) const {
    return {col_idx_.data() + row_ptr_[v],
            static_cast<std::size_t>(degree(v))};
  }

  [[nodiscard]] const std::vector<i64>& row_ptr() const { return row_ptr_; }
  [[nodiscard]] const std::vector<i32>& col_idx() const { return col_idx_; }

  [[nodiscard]] bool has_edge(i64 u, i64 v) const;

 private:
  i64 num_nodes_ = 0;
  std::vector<i64> row_ptr_;
  std::vector<i32> col_idx_;
};

}  // namespace qgtc
