// Subgraph batching (paper §4.1): partitions are grouped into batches; a
// batch is computed as one dense block-diagonal binary adjacency (edges only
// connect nodes of the same partition — the main source of Figure 8's
// all-zero tiles) over the gathered node features.
#pragma once

#include <vector>

#include "bittensor/bit_matrix.hpp"
#include "bittensor/tile_sparse.hpp"
#include "common/matrix.hpp"
#include "graph/csr.hpp"
#include "store/feature_store.hpp"
#include "graph/partitioner.hpp"
#include "kernels/zerotile.hpp"

namespace qgtc {

struct SubgraphBatch {
  std::vector<i32> nodes;        // global node ids, grouped by partition
  std::vector<i64> part_bounds;  // prefix offsets into `nodes`, one per part + 1
  [[nodiscard]] i64 size() const { return static_cast<i64>(nodes.size()); }
  [[nodiscard]] i64 num_parts() const {
    return static_cast<i64>(part_bounds.size()) - 1;
  }
};

/// Groups consecutive partitions into batches of `batch_size` partitions.
std::vector<SubgraphBatch> make_batches(const PartitionResult& parts,
                                        i64 batch_size);

/// Expands a request's seed nodes into an ego-graph node set by `fanout`-hop
/// BFS over the global CSR (fanout 0 = the seeds themselves). Nodes come
/// back deduplicated in discovery order, seeds first — the serving layer
/// treats the result as one partition of a dynamic micro-batch, so its edges
/// (intra-partition by the block-diagonal rule) are exactly the subgraph the
/// request asked about. `max_nodes > 0` truncates the frontier once the set
/// reaches that size (admission control for runaway hubs); seeds are always
/// kept. Throws if any seed is out of range or duplicated.
std::vector<i32> expand_ego(const CsrView& g, const std::vector<i32>& seeds,
                            int fanout, i64 max_nodes = 0);

/// Builds the batch's dense binary adjacency (kRowMajorK, PAD8 rows) with
/// only intra-partition edges, plus self-loops when `add_self_loops`.
BitMatrix build_batch_adjacency(const CsrView& g, const SubgraphBatch& batch,
                                bool add_self_loops = true);

/// Same adjacency in the tile-CSR layout, built straight from the global CSR
/// — the dense block-diagonal matrix is never allocated and no dense tile
/// scan runs. Memory is ~the nonzero-tile ratio of the dense layout
/// (Figure 8: typically 5–15 % for batched subgraphs).
TileSparseBitMatrix build_batch_adjacency_tiles(const CsrView& g,
                                                const SubgraphBatch& batch,
                                                bool add_self_loops = true);

/// Same adjacency in local CSR form, for the fp32 SpMM baseline.
CsrGraph build_batch_csr(const CsrView& g, const SubgraphBatch& batch,
                         bool add_self_loops = true);

/// Gathers the feature rows of the batch's nodes: (batch.size() x dim) —
/// from the in-core matrix or through the out-of-core feature store, via the
/// implicit-converting `store::FeatureSource`.
MatrixF gather_rows(const store::FeatureSource& features,
                    const std::vector<i32>& nodes);

/// Everything the graph layer prepares for one batch, in both engine modes:
/// the precomputed engine materialises one per batch up front, the streaming
/// pipeline builds them lazily (peak-resident O(pipeline_depth), not
/// O(epoch)). The model layer adds its packed input planes on top.
struct PreparedBatch {
  SubgraphBatch batch;
  /// Tile-CSR adjacency, always built straight from the global CSR.
  TileSparseBitMatrix adj_tiles;
  BitMatrix adj;      // dense binary adjacency (empty when sparse_adj)
  TileMap tile_map;   // cached zero-tile map of adj (dense mode only)
  CsrGraph local;     // same adjacency as CSR (fp32 baseline path)
  MatrixF features;   // gathered fp32 features

  /// Resident bytes of the graph-side prepared state (the streaming
  /// pipeline's peak-memory accounting unit).
  [[nodiscard]] i64 prepared_bytes() const;
};

/// Builds the complete graph-side state for one batch from the global CSR +
/// feature matrix. The single per-batch prepare entry point shared by the
/// precomputed engine constructor and the streaming pipeline's prepare stage
/// — both modes see bit-identical batch data by construction.
/// `build_fp32_csr=false` skips the local CSR (it feeds only the fp32
/// baseline path; the streaming quantized pipeline never touches it, and
/// its edge sort is a large share of the prepare cost).
PreparedBatch prepare_batch_data(const CsrView& g,
                                 const store::FeatureSource& features,
                                 const SubgraphBatch& batch, bool sparse_adj,
                                 bool add_self_loops = true,
                                 bool build_fp32_csr = true);

/// Gathers labels.
std::vector<i32> gather_labels(const std::vector<i32>& labels,
                               const std::vector<i32>& nodes);

}  // namespace qgtc
