// Graph partitioner — the METIS substitute (paper §4.1 uses METIS; see
// DESIGN.md). BFS-grown balanced partitions followed by greedy boundary
// refinement: good-modularity, size-bounded parts, which is the property the
// QGTC pipeline needs (denser subgraphs => fewer zero tiles).
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace qgtc {

struct PartitionResult {
  i64 num_parts = 0;
  std::vector<i32> part_of;               // node -> partition id
  std::vector<std::vector<i32>> members;  // partition id -> sorted node list

  /// Fraction of edges whose endpoints share a partition (modularity-style
  /// quality signal; random partitioning scores ~1/num_parts).
  double intra_edge_fraction(const CsrView& g) const;

  /// Directed edges whose endpoints land in different partitions — the edge
  /// cut a sharded deployment pays in cross-shard traffic.
  /// edge_cut(g) == num_edges * (1 - intra_edge_fraction(g)).
  i64 edge_cut(const CsrView& g) const;

  /// Partition p's halo: the distinct remote nodes adjacent to it (neighbours
  /// owned by another partition), sorted ascending. This is exactly the node
  /// set whose features a shard hosting p must fetch across the interconnect.
  std::vector<i32> halo_of(const CsrView& g, i64 p) const;

  /// Total halo size summed over every partition (a node bordering k foreign
  /// partitions is counted once per bordering partition — it is replicated
  /// k times in a sharded run).
  i64 total_halo(const CsrView& g) const;
};

struct PartitionOptions {
  /// Max allowed partition size as a multiple of the balanced size.
  double balance_slack = 1.15;
  /// Boundary-refinement sweeps (0 disables refinement).
  int refine_passes = 2;
  u64 seed = 7;
};

/// Partition `g` into `num_parts` parts. Deterministic in `opt.seed`.
PartitionResult partition_graph(const CsrView& g, i64 num_parts,
                                const PartitionOptions& opt = {});

}  // namespace qgtc
