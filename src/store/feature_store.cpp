#include "store/feature_store.hpp"

#include <algorithm>
#include <cstring>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"

namespace qgtc::store {

namespace {

void check_file_header(const FileHeader& h, u32 expected_magic,
                       const std::string& path) {
  QGTC_CHECK(h.magic == expected_magic, "bad magic in store file: " + path);
  QGTC_CHECK(h.version == kStoreVersion,
             "unsupported store format version in: " + path);
  QGTC_CHECK(h.endian == kEndianProbe,
             "store file endianness mismatch: " + path);
}

}  // namespace

FeatureStore FeatureStore::open(const std::string& dir, i64 rows, i64 cols,
                                i64 num_chunks) {
  QGTC_CHECK(rows > 0 && cols > 0 && num_chunks > 0,
             "invalid feature store geometry");
  FeatureStore fs;
  fs.rows_ = rows;
  fs.cols_ = cols;
  i64 next_col = 0;
  for (i64 i = 0; i < num_chunks; ++i) {
    const std::string path = dir + "/" + chunk_filename(i);
    MappedFile file = MappedFile::open(path);
    QGTC_CHECK(file.size() >= static_cast<i64>(sizeof(ChunkHeader)),
               "feature chunk file truncated: " + path);
    ChunkHeader h{};
    std::memcpy(&h, file.data(), sizeof(h));
    check_file_header(h.file, kChunkMagic, path);
    QGTC_CHECK(h.rows == rows && h.total_cols == cols && h.col0 == next_col &&
                   h.cols > 0,
               "feature chunk geometry mismatch: " + path);
    QGTC_CHECK(file.size() == static_cast<i64>(sizeof(ChunkHeader)) +
                                  h.rows * h.cols *
                                      static_cast<i64>(sizeof(float)),
               "feature chunk payload size mismatch: " + path);
    Chunk c;
    c.col0 = h.col0;
    c.cols = h.cols;
    c.data = reinterpret_cast<const float*>(file.data() + sizeof(ChunkHeader));
    fs.mapped_bytes_ += file.size();
    c.file = std::move(file);
    fs.chunks_.push_back(std::move(c));
    next_col += h.cols;
  }
  QGTC_CHECK(next_col == cols, "feature chunks do not tile the column range");
  obs::MetricsRegistry::instance().gauge("store.mapped_bytes")
      .set(static_cast<double>(fs.mapped_bytes_));
  return fs;
}

MatrixF FeatureStore::gather(const std::vector<i32>& nodes) const {
  const i64 n = static_cast<i64>(nodes.size());
  QGTC_SPAN("store", "gather",
            {{"rows", n}, {"bytes", n * cols_ * static_cast<i64>(sizeof(float))}});
  MatrixF out(n, cols_);
  parallel_for(0, n, [&](i64 i) {
    const i64 r = nodes[static_cast<std::size_t>(i)];
    float* dst = out.row(i).data();
    for (const Chunk& c : chunks_) {
      std::memcpy(dst + c.col0, c.data + r * c.cols,
                  static_cast<std::size_t>(c.cols) * sizeof(float));
    }
  });
  const i64 bytes = n * cols_ * static_cast<i64>(sizeof(float));
  acct_->bytes_read.fetch_add(bytes, std::memory_order_relaxed);
  static obs::Counter& c_read =
      obs::MetricsRegistry::instance().counter("store.bytes_read");
  c_read.add(bytes);
  // Residency is page-granular: a scattered row gather faults one whole page
  // per (row, chunk) pair, so charge the budget with that upper bound
  // (clamped per chunk to the chunk's payload size) rather than the logical
  // bytes copied out.
  constexpr i64 kPageBytes = 4096;
  i64 faulted = 0;
  for (const Chunk& c : chunks_) {
    faulted += std::min(n * kPageBytes,
                        rows_ * c.cols * static_cast<i64>(sizeof(float)));
  }
  maybe_release(faulted);
  return out;
}

void FeatureStore::maybe_release(i64 bytes_faulted_estimate) const {
  if (residency_budget_ <= 0) return;
  if (acct_->since_release.fetch_add(bytes_faulted_estimate,
                                     std::memory_order_relaxed) +
          bytes_faulted_estimate <
      residency_budget_) {
    return;
  }
  // One thread performs the sweep; concurrent gathers just refault the
  // dropped (read-only, file-backed) pages, so data is never affected.
  std::lock_guard<std::mutex> lock(acct_->release_mu);
  if (acct_->since_release.load(std::memory_order_relaxed) <
      residency_budget_) {
    return;  // another thread swept while we waited
  }
  acct_->since_release.store(0, std::memory_order_relaxed);
  for (const Chunk& c : chunks_) c.file.release_residency();
  if (extra_release_) extra_release_();
  static obs::Counter& c_drop =
      obs::MetricsRegistry::instance().counter("store.residency_drops");
  c_drop.add(1);
}

i64 FeatureSource::rows() const {
  QGTC_CHECK(valid(), "FeatureSource is empty");
  return matrix_ != nullptr ? matrix_->rows() : store_->rows();
}

i64 FeatureSource::cols() const {
  QGTC_CHECK(valid(), "FeatureSource is empty");
  return matrix_ != nullptr ? matrix_->cols() : store_->cols();
}

MatrixF FeatureSource::gather(const std::vector<i32>& nodes) const {
  QGTC_CHECK(valid(), "FeatureSource is empty");
  if (store_ != nullptr) return store_->gather(nodes);
  // In-core path: byte-identical to the pre-store gather_rows.
  MatrixF out(static_cast<i64>(nodes.size()), matrix_->cols());
  parallel_for(0, static_cast<i64>(nodes.size()), [&](i64 i) {
    const auto src = matrix_->row(nodes[static_cast<std::size_t>(i)]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  });
  return out;
}

}  // namespace qgtc::store
