#include "store/dataset_store.hpp"

#include <cstring>
#include <fstream>

#include "obs/metrics.hpp"

namespace qgtc::store {

namespace {

template <typename T>
T read_pod(std::istream& in, const std::string& path) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  QGTC_CHECK(static_cast<bool>(in), "store meta file truncated: " + path);
  return v;
}

}  // namespace

DatasetStore DatasetStore::open(const std::string& dir,
                                const StoreOpenOptions& opt) {
  DatasetStore ds;
  const std::string meta_path = dir + "/" + meta_filename();
  std::ifstream meta(meta_path, std::ios::binary);
  QGTC_CHECK(meta.is_open(), "cannot open store meta file: " + meta_path);

  const auto h = read_pod<FileHeader>(meta, meta_path);
  QGTC_CHECK(h.magic == kMetaMagic, "not a QGTC store meta file: " + meta_path);
  QGTC_CHECK(h.version == kStoreVersion,
             "unsupported store format version in: " + meta_path);
  QGTC_CHECK(h.endian == kEndianProbe,
             "store meta endianness mismatch: " + meta_path);

  const u64 name_len = read_pod<u64>(meta, meta_path);
  QGTC_CHECK(name_len < (1u << 20), "implausible dataset name length");
  ds.spec_.name.resize(name_len);
  meta.read(ds.spec_.name.data(), static_cast<std::streamsize>(name_len));
  ds.spec_.num_nodes = read_pod<i64>(meta, meta_path);
  ds.spec_.num_edges = read_pod<i64>(meta, meta_path);
  ds.spec_.feature_dim = read_pod<i64>(meta, meta_path);
  ds.spec_.num_classes = read_pod<i64>(meta, meta_path);
  ds.spec_.num_clusters = read_pod<i64>(meta, meta_path);
  ds.spec_.seed = read_pod<u64>(meta, meta_path);
  const i64 num_chunks = read_pod<i64>(meta, meta_path);
  const i64 nodes_per_shard = read_pod<i64>(meta, meta_path);
  const i64 num_shards = read_pod<i64>(meta, meta_path);
  QGTC_CHECK(num_chunks > 0 && nodes_per_shard > 0 && num_shards > 0,
             "invalid store geometry in: " + meta_path);
  const u64 num_labels = read_pod<u64>(meta, meta_path);
  QGTC_CHECK(static_cast<i64>(num_labels) == ds.spec_.num_nodes,
             "label count mismatch in: " + meta_path);
  ds.labels_.resize(num_labels);
  meta.read(reinterpret_cast<char*>(ds.labels_.data()),
            static_cast<std::streamsize>(num_labels * sizeof(i32)));
  QGTC_CHECK(static_cast<bool>(meta), "store meta file truncated: " + meta_path);

  // CSR shards: each keeps global row_ptr offsets over its node range, so
  // the segments stitch into one CsrView with no translation tables.
  std::vector<CsrView::Segment> segments;
  ds.shards_ = std::make_shared<std::vector<MappedFile>>();
  i64 total_directed_edges = -1;
  for (i64 s = 0; s < num_shards; ++s) {
    const std::string path = dir + "/" + shard_filename(s);
    MappedFile file = MappedFile::open(path);
    QGTC_CHECK(file.size() >= static_cast<i64>(sizeof(ShardHeader)),
               "CSR shard file truncated: " + path);
    ShardHeader sh{};
    std::memcpy(&sh, file.data(), sizeof(sh));
    QGTC_CHECK(sh.file.magic == kShardMagic,
               "bad magic in CSR shard: " + path);
    QGTC_CHECK(sh.file.version == kStoreVersion,
               "unsupported store format version in: " + path);
    QGTC_CHECK(sh.file.endian == kEndianProbe,
               "CSR shard endianness mismatch: " + path);
    QGTC_CHECK(sh.total_nodes == ds.spec_.num_nodes &&
                   sh.first_node == s * nodes_per_shard && sh.num_nodes > 0,
               "CSR shard geometry mismatch: " + path);
    if (total_directed_edges < 0) total_directed_edges = sh.total_edges;
    QGTC_CHECK(sh.total_edges == total_directed_edges,
               "CSR shards disagree on edge count: " + path);

    const i64* row_ptr =
        reinterpret_cast<const i64*>(file.data() + sizeof(ShardHeader));
    const i64 shard_edges = row_ptr[sh.num_nodes] - row_ptr[0];
    const i64 expect = static_cast<i64>(sizeof(ShardHeader)) +
                       (sh.num_nodes + 1) * static_cast<i64>(sizeof(i64)) +
                       shard_edges * static_cast<i64>(sizeof(i32));
    QGTC_CHECK(file.size() == expect, "CSR shard payload size mismatch: " + path);
    const i32* col_idx = reinterpret_cast<const i32*>(
        file.data() + sizeof(ShardHeader) +
        static_cast<std::size_t>(sh.num_nodes + 1) * sizeof(i64));
    segments.push_back(
        CsrView::Segment{sh.first_node, sh.num_nodes, row_ptr, col_idx});
    ds.csr_mapped_bytes_ += file.size();
    ds.shards_->push_back(std::move(file));
  }
  ds.graph_ = CsrView(ds.spec_.num_nodes, total_directed_edges,
                      std::move(segments));

  ds.features_ = FeatureStore::open(dir, ds.spec_.num_nodes,
                                    ds.spec_.feature_dim, num_chunks);
  ds.features_.set_residency_budget(opt.residency_budget_bytes);
  // Drop the shard mappings in the same residency sweep as the chunks.
  ds.features_.set_extra_release_hook([shards = ds.shards_] {
    for (const MappedFile& f : *shards) f.release_residency();
  });
  obs::MetricsRegistry::instance().gauge("store.mapped_bytes")
      .set(static_cast<double>(ds.mapped_bytes()));
  return ds;
}

}  // namespace qgtc::store
