// Out-of-core dataset: the mmap-backed counterpart of `Dataset`. Opens a
// store directory written by `io::save_dataset_store` and exposes the same
// three surfaces the engine consumes — a `CsrView` over the shard files, a
// `FeatureStore` behind `FeatureSource`, and the (small, resident) label
// vector — so full-scale datasets run on hosts whose RAM cannot hold the
// global CSR + feature matrix.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generator.hpp"
#include "store/feature_store.hpp"

namespace qgtc::store {

/// Knobs for opening a store.
struct StoreOpenOptions {
  /// Residency budget handed to the FeatureStore (bytes gathered between
  /// MADV_DONTNEED sweeps over every mapping of the store). 0 = never drop.
  i64 residency_budget_bytes = 64ll << 20;
};

class DatasetStore {
 public:
  DatasetStore(DatasetStore&&) = default;
  DatasetStore& operator=(DatasetStore&&) = default;

  static DatasetStore open(const std::string& dir,
                           const StoreOpenOptions& opt = {});

  [[nodiscard]] const DatasetSpec& spec() const { return spec_; }
  [[nodiscard]] const CsrView& graph() const { return graph_; }
  [[nodiscard]] const FeatureStore& features() const { return features_; }
  [[nodiscard]] const std::vector<i32>& labels() const { return labels_; }

  /// Total mapped file bytes (feature chunks + CSR shards).
  [[nodiscard]] i64 mapped_bytes() const {
    return features_.mapped_bytes() + csr_mapped_bytes_;
  }

  void set_residency_budget(i64 bytes) {
    features_.set_residency_budget(bytes);
  }

 private:
  DatasetStore() = default;

  DatasetSpec spec_;
  std::vector<i32> labels_;
  FeatureStore features_;
  /// Shared so the FeatureStore's release hook stays valid across moves.
  std::shared_ptr<std::vector<MappedFile>> shards_;
  i64 csr_mapped_bytes_ = 0;
  CsrView graph_;
};

}  // namespace qgtc::store
