// Read-only mmap wrapper used by the out-of-core store. Mappings are
// MAP_PRIVATE + PROT_READ over immutable store files, so dropping residency
// with madvise(MADV_DONTNEED) is always safe: later accesses refault the
// identical file bytes.
#pragma once

#include <string>

#include "common/defs.hpp"

namespace qgtc::store {

class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& o) noexcept { *this = std::move(o); }
  MappedFile& operator=(MappedFile&& o) noexcept;
  ~MappedFile();

  /// Maps `path` read-only; throws on open/map failure or empty file.
  static MappedFile open(const std::string& path);

  [[nodiscard]] const u8* data() const { return data_; }
  [[nodiscard]] i64 size() const { return size_; }
  [[nodiscard]] bool valid() const { return data_ != nullptr; }

  /// Asks the kernel to drop this mapping's resident pages (best-effort;
  /// concurrent readers just refault). No-op on an empty mapping.
  void release_residency() const;

 private:
  const u8* data_ = nullptr;
  i64 size_ = 0;
};

}  // namespace qgtc::store
