// On-disk layout of the out-of-core dataset store — shared by the writer
// (graph/io::save_dataset_store) and the mmap loader (store::DatasetStore).
//
// A store is a directory:
//   store.meta            spec + labels + chunk/shard geometry
//   feat_<i>.qfc          one mmap'd column chunk of the feature matrix
//   csr_<i>.qcs           one mmap'd CSR shard (contiguous node range)
//
// Every file starts with the same 16-byte guard: magic, format version, the
// endianness probe 0x01020304 written as a native u32 (a big-endian writer
// produces 0x04030201 and is rejected at open — the payloads are raw
// little-endian arrays), and a reserved word. All offsets/sizes are i64.
#pragma once

#include "common/defs.hpp"

namespace qgtc::store {

struct FileHeader {
  u32 magic = 0;
  u32 version = 0;
  u32 endian = 0;
  u32 reserved = 0;
};

inline constexpr u32 kMetaMagic = 0x4d545351;   // "QSTM"
inline constexpr u32 kChunkMagic = 0x43465351;  // "QSFC"
inline constexpr u32 kShardMagic = 0x53435351;  // "QSCS"
inline constexpr u32 kStoreVersion = 1;
inline constexpr u32 kEndianProbe = 0x01020304;

/// Geometry of one feature column chunk: rows x [col0, col0+cols) floats,
/// row-major, immediately after the header.
struct ChunkHeader {
  FileHeader file;
  i64 rows = 0;
  i64 col0 = 0;
  i64 cols = 0;
  i64 total_cols = 0;
};

/// One CSR shard: nodes [first_node, first_node+num_nodes), row_ptr keeps
/// global edge offsets (num_nodes + 1 entries) followed by that range's
/// col_idx slice.
struct ShardHeader {
  FileHeader file;
  i64 total_nodes = 0;
  i64 total_edges = 0;
  i64 first_node = 0;
  i64 num_nodes = 0;
};

inline const char* meta_filename() { return "store.meta"; }
inline std::string chunk_filename(i64 i) {
  return "feat_" + std::to_string(i) + ".qfc";
}
inline std::string shard_filename(i64 i) {
  return "csr_" + std::to_string(i) + ".qcs";
}

}  // namespace qgtc::store
