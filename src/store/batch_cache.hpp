// Cross-epoch prepared-batch cache — the GPU-resident-reuse substitute of
// the paper's setting (see DESIGN.md substitution table). A byte-budgeted,
// sharded LRU of immutable prepared batches keyed by batch *membership*
// (nodes + partition bounds) plus a quantization-config fingerprint, so the
// key is invariant across epochs, run modes and engines sharing a prepare
// entry. Values are `shared_ptr<const V>`: a hit hands out shared ownership,
// so eviction never invalidates an in-flight consumer.
//
// Key and invalidation rules (also documented in DESIGN.md):
//  * lookup hashes the membership, then verifies FULL membership equality
//    and fingerprint equality — a 64-bit hash collision degrades to a miss,
//    never to wrong batch data;
//  * entries carry a capability mask (which optional pieces were built —
//    quantized planes, fp32 local CSR); a hit must cover the caller's needs,
//    otherwise it is a miss and the richer rebuild replaces the entry;
//  * an entry larger than one shard's budget is never inserted (a cache
//    whose budget is smaller than one batch degrades to pass-through);
//  * eviction is per-shard LRU by bytes.
#pragma once

#include <array>
#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/batching.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace qgtc::store {

/// Entry capability bits: which optional prepared pieces the entry holds.
inline constexpr u32 kCapPlanes = 1u << 0;   // quantized input bit planes
inline constexpr u32 kCapFp32Csr = 1u << 1;  // local CSR for the fp32 path

struct BatchCacheStats {
  i64 hits = 0;
  i64 misses = 0;
  i64 evictions = 0;
  i64 inserts = 0;
  i64 resident_bytes = 0;
  i64 entries = 0;
};

/// FNV-1a over the batch membership and config fingerprint.
inline u64 hash_batch_key(const SubgraphBatch& b, u64 fingerprint) {
  u64 h = 0xcbf29ce484222325ull;
  const auto mix = [&h](u64 v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(fingerprint);
  mix(static_cast<u64>(b.nodes.size()));
  for (const i32 v : b.nodes) mix(static_cast<u64>(static_cast<u32>(v)));
  for (const i64 v : b.part_bounds) mix(static_cast<u64>(v));
  return h;
}

template <typename V>
class BatchCache {
 public:
  static constexpr std::size_t kShards = 8;

  explicit BatchCache(i64 budget_bytes = 0) { set_budget(budget_bytes); }

  /// Budget 0 disables the cache entirely (lookup always misses without
  /// recording stats, insert is a no-op).
  void set_budget(i64 budget_bytes) {
    budget_ = budget_bytes > 0 ? budget_bytes : 0;
    shard_budget_ = budget_ / static_cast<i64>(kShards);
  }
  [[nodiscard]] bool enabled() const { return shard_budget_ > 0; }
  [[nodiscard]] i64 budget() const { return budget_; }

  /// Returns the cached value if membership + fingerprint match and the
  /// entry's capabilities cover `needs`; null otherwise.
  [[nodiscard]] std::shared_ptr<const V> lookup(const SubgraphBatch& batch,
                                                u64 fingerprint, u32 needs) {
    if (!enabled()) return nullptr;
    const u64 h = hash_batch_key(batch, fingerprint);
    Shard& sh = shards_[shard_of(h)];
    std::shared_ptr<const V> found;
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      const auto it = sh.index.find(h);
      if (it != sh.index.end()) {
        for (const auto& pos : it->second) {
          if (pos->fingerprint == fingerprint && (pos->caps & needs) == needs &&
              pos->nodes == batch.nodes &&
              pos->part_bounds == batch.part_bounds) {
            sh.lru.splice(sh.lru.begin(), sh.lru, pos);  // move to front
            found = pos->value;
            break;
          }
        }
      }
    }
    QGTC_SPAN("cache", "lookup",
              {{"hit", found ? 1 : 0}, {"nodes", batch.size()}});
    if (found) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      counters().hits->add(1);
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
      counters().misses->add(1);
    }
    return found;
  }

  /// Inserts (or replaces, when the new entry's capabilities are richer) and
  /// evicts LRU entries past the shard budget. Oversized entries are
  /// silently skipped.
  void insert(const SubgraphBatch& batch, u64 fingerprint, u32 caps, i64 bytes,
              std::shared_ptr<const V> value) {
    if (!enabled() || bytes > shard_budget_) return;
    const u64 h = hash_batch_key(batch, fingerprint);
    Shard& sh = shards_[shard_of(h)];
    i64 evicted = 0;
    i64 bytes_delta = 0;
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      const i64 bytes_before = sh.bytes;
      // Drop any existing entry for this exact key first (capability
      // upgrade path).
      auto it = sh.index.find(h);
      if (it != sh.index.end()) {
        auto& posns = it->second;
        for (std::size_t i = 0; i < posns.size(); ++i) {
          if (posns[i]->fingerprint == fingerprint &&
              posns[i]->nodes == batch.nodes &&
              posns[i]->part_bounds == batch.part_bounds) {
            sh.bytes -= posns[i]->bytes;
            sh.lru.erase(posns[i]);
            posns.erase(posns.begin() + static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
        if (posns.empty()) sh.index.erase(it);
      }
      sh.lru.push_front(Entry{h, fingerprint, batch.nodes, batch.part_bounds,
                              caps, bytes, std::move(value)});
      sh.index[h].push_back(sh.lru.begin());
      sh.bytes += bytes;
      while (sh.bytes > shard_budget_) {
        const auto victim = std::prev(sh.lru.end());
        sh.bytes -= victim->bytes;
        unindex(sh, victim);
        sh.lru.erase(victim);
        ++evicted;
      }
      bytes_delta = sh.bytes - bytes_before;
    }
    resident_bytes_.fetch_add(bytes_delta, std::memory_order_relaxed);
    inserts_.fetch_add(1, std::memory_order_relaxed);
    if (evicted > 0) {
      evictions_.fetch_add(evicted, std::memory_order_relaxed);
      counters().evictions->add(evicted);
    }
  }

  [[nodiscard]] BatchCacheStats stats() const {
    BatchCacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.inserts = inserts_.load(std::memory_order_relaxed);
    i64 bytes = 0, entries = 0;
    for (const Shard& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh.mu);
      bytes += sh.bytes;
      entries += static_cast<i64>(sh.lru.size());
    }
    s.resident_bytes = bytes;
    s.entries = entries;
    return s;
  }

  void clear() {
    for (Shard& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh.mu);
      sh.lru.clear();
      sh.index.clear();
      sh.bytes = 0;
    }
    resident_bytes_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Entry {
    u64 hash = 0;
    u64 fingerprint = 0;
    std::vector<i32> nodes;
    std::vector<i64> part_bounds;
    u32 caps = 0;
    i64 bytes = 0;
    std::shared_ptr<const V> value;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<u64, std::vector<typename std::list<Entry>::iterator>>
        index;
    i64 bytes = 0;
  };

  struct ObsCounters {
    obs::Counter* hits;
    obs::Counter* misses;
    obs::Counter* evictions;
  };
  static const ObsCounters& counters() {
    static const ObsCounters c{
        &obs::MetricsRegistry::instance().counter("cache.hits"),
        &obs::MetricsRegistry::instance().counter("cache.misses"),
        &obs::MetricsRegistry::instance().counter("cache.evictions")};
    return c;
  }

  static std::size_t shard_of(u64 h) {
    return static_cast<std::size_t>((h >> 56) % kShards);
  }

  void unindex(Shard& sh, typename std::list<Entry>::iterator victim) {
    const auto it = sh.index.find(victim->hash);
    if (it == sh.index.end()) return;
    auto& posns = it->second;
    for (std::size_t i = 0; i < posns.size(); ++i) {
      if (posns[i] == victim) {
        posns.erase(posns.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    if (posns.empty()) sh.index.erase(it);
  }

  i64 budget_ = 0;
  i64 shard_budget_ = 0;
  std::array<Shard, kShards> shards_;
  std::atomic<i64> hits_{0};
  std::atomic<i64> misses_{0};
  std::atomic<i64> evictions_{0};
  std::atomic<i64> inserts_{0};
  std::atomic<i64> resident_bytes_{0};
};

}  // namespace qgtc::store
