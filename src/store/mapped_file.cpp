#include "store/mapped_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace qgtc::store {

MappedFile& MappedFile::operator=(MappedFile&& o) noexcept {
  if (this != &o) {
    if (data_ != nullptr) {
      ::munmap(const_cast<u8*>(data_), static_cast<std::size_t>(size_));
    }
    data_ = std::exchange(o.data_, nullptr);
    size_ = std::exchange(o.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<u8*>(data_), static_cast<std::size_t>(size_));
  }
}

MappedFile MappedFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  QGTC_CHECK(fd >= 0, "cannot open store file: " + path + " (" +
                          std::strerror(errno) + ")");
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    QGTC_CHECK(false, "store file is empty or unreadable: " + path);
  }
  void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                   MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  QGTC_CHECK(p != MAP_FAILED, "mmap failed for store file: " + path);
  // Store access is random row gather; default readahead would fault in
  // ~128 KB clusters around every touched row and blow the residency budget.
  ::madvise(p, static_cast<std::size_t>(st.st_size), MADV_RANDOM);
  MappedFile f;
  f.data_ = static_cast<const u8*>(p);
  f.size_ = static_cast<i64>(st.st_size);
  return f;
}

void MappedFile::release_residency() const {
  if (data_ == nullptr) return;
  ::madvise(const_cast<u8*>(data_), static_cast<std::size_t>(size_),
            MADV_DONTNEED);
}

}  // namespace qgtc::store
