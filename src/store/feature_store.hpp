// Out-of-core feature matrix: mmap'd column-chunk files plus the
// `FeatureSource` indirection that lets `graph/batching::gather_rows` read
// either an in-core MatrixF or the store through one call shape. This is the
// UVM / pinned-host staging substitute of the paper's setting (see DESIGN.md
// substitution table): features never materialise in heap memory — gathers
// copy row segments straight out of the page cache, and a residency budget
// periodically drops the mapping's pages so peak RSS stays bounded by the
// budget instead of the dataset.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "store/format.hpp"
#include "store/mapped_file.hpp"

namespace qgtc::store {

class FeatureStore {
 public:
  FeatureStore() = default;
  FeatureStore(FeatureStore&&) = default;
  FeatureStore& operator=(FeatureStore&&) = default;

  /// Maps `num_chunks` chunk files under `dir`; validates headers and
  /// geometry (chunks must tile [0, cols)).
  static FeatureStore open(const std::string& dir, i64 rows, i64 cols,
                           i64 num_chunks);

  [[nodiscard]] i64 rows() const { return rows_; }
  [[nodiscard]] i64 cols() const { return cols_; }

  /// Gathers the feature rows of `nodes` into a (nodes.size() x cols)
  /// matrix — bit-identical to gathering from the in-core MatrixF the store
  /// was written from. Thread-safe; counts bytes read and enforces the
  /// residency budget.
  [[nodiscard]] MatrixF gather(const std::vector<i32>& nodes) const;

  /// Total bytes of file data currently mapped (chunk payloads + headers).
  [[nodiscard]] i64 mapped_bytes() const { return mapped_bytes_; }
  /// Cumulative feature bytes copied out by gather().
  [[nodiscard]] i64 bytes_read() const {
    return acct_->bytes_read.load(std::memory_order_relaxed);
  }

  /// Residency budget: once an estimated `budget` bytes of mapping pages
  /// have been faulted in since the last drop, every chunk mapping (and the
  /// extra hook below) gets MADV_DONTNEED. The estimate is page-granular —
  /// a scattered row gather faults a whole page per touched chunk, so
  /// charging logical bytes would undercount residency by 4-30x.
  /// 0 disables dropping (pure page-cache behaviour).
  void set_residency_budget(i64 budget) { residency_budget_ = budget; }
  [[nodiscard]] i64 residency_budget() const { return residency_budget_; }

  /// Invoked alongside chunk drops so sibling mappings (the CSR shards of
  /// the owning DatasetStore) release in the same sweep.
  void set_extra_release_hook(std::function<void()> hook) {
    extra_release_ = std::move(hook);
  }

 private:
  struct Chunk {
    i64 col0 = 0;
    i64 cols = 0;
    MappedFile file;
    const float* data = nullptr;  // rows x cols payload after the header
  };

  /// Shared-state block kept behind a pointer so FeatureStore stays movable
  /// (atomics and mutexes are not).
  struct Accounting {
    std::atomic<i64> bytes_read{0};
    std::atomic<i64> since_release{0};
    std::mutex release_mu;
  };

  void maybe_release(i64 bytes_faulted_estimate) const;

  i64 rows_ = 0;
  i64 cols_ = 0;
  i64 mapped_bytes_ = 0;
  i64 residency_budget_ = 0;
  std::vector<Chunk> chunks_;
  std::function<void()> extra_release_;
  std::unique_ptr<Accounting> acct_ = std::make_unique<Accounting>();
};

/// Non-owning feature source: the single parameter type the batching layer
/// gathers from. Implicitly constructible from the in-core feature matrix
/// (every existing call site) or from a FeatureStore (out-of-core engines).
class FeatureSource {
 public:
  FeatureSource() = default;
  /*implicit*/ FeatureSource(const MatrixF& m)  // NOLINT(google-explicit-constructor)
      : matrix_(&m) {}
  /*implicit*/ FeatureSource(const FeatureStore& s)  // NOLINT(google-explicit-constructor)
      : store_(&s) {}

  [[nodiscard]] bool valid() const {
    return matrix_ != nullptr || store_ != nullptr;
  }
  [[nodiscard]] bool out_of_core() const { return store_ != nullptr; }
  [[nodiscard]] i64 rows() const;
  [[nodiscard]] i64 cols() const;

  /// Gathers the rows of `nodes` (see FeatureStore::gather).
  [[nodiscard]] MatrixF gather(const std::vector<i32>& nodes) const;

 private:
  const MatrixF* matrix_ = nullptr;
  const FeatureStore* store_ = nullptr;
};

}  // namespace qgtc::store
