// Environment-variable configuration used by the benchmark harness
// (e.g. QGTC_QUICK=1 shrinks sweeps on small machines, QGTC_FULL_SCALE=1
// restores full Table-1 dataset sizes).
#pragma once

#include <string>

#include "common/defs.hpp"

namespace qgtc {

/// Returns the integer value of environment variable `name`, or `fallback`
/// when unset or unparsable.
i64 env_i64(const char* name, i64 fallback);

/// Returns true when `name` is set to a non-zero / non-empty truthy value.
bool env_flag(const char* name, bool fallback = false);

/// Returns env string or fallback.
std::string env_str(const char* name, const std::string& fallback);

}  // namespace qgtc
