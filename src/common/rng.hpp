// Deterministic, fast RNG (splitmix64 + xoshiro256**). Every experiment in
// the repo derives its randomness from an explicit seed so runs reproduce
// bit-for-bit.
#pragma once

#include <cstdint>

#include "common/defs.hpp"

namespace qgtc {

class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    u64 x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  u64 next_u64() {
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n).
  u64 next_below(u64 n) { return n == 0 ? 0 : next_u64() % n; }

  /// Uniform in [lo, hi].
  i64 next_in(i64 lo, i64 hi) {
    return lo + static_cast<i64>(next_below(static_cast<u64>(hi - lo + 1)));
  }

  /// Uniform float in [0, 1).
  float next_float() { return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f; }

  /// Uniform float in [lo, hi).
  float next_float(float lo, float hi) { return lo + (hi - lo) * next_float(); }

  /// Standard normal via Box-Muller (one value per call; simple and adequate).
  float next_gaussian();

  bool next_bool(float p_true) { return next_float() < p_true; }

 private:
  static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 s_[4];
};

}  // namespace qgtc
