#include "common/env.hpp"

#include <cstdlib>
#include <cstring>

namespace qgtc {

i64 env_i64(const char* name, i64 fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<i64>(parsed);
}

bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0 ||
           std::strcmp(v, "off") == 0);
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

}  // namespace qgtc
