#include "common/rng.hpp"

#include <cmath>

namespace qgtc {

float Rng::next_gaussian() {
  // Box-Muller; discards the paired value to keep the generator stateless
  // beyond its xoshiro state.
  float u1 = next_float();
  if (u1 < 1e-12f) u1 = 1e-12f;
  const float u2 = next_float();
  const float r = std::sqrt(-2.0f * std::log(u1));
  return r * std::cos(6.2831853f * u2);
}

}  // namespace qgtc
