// Process-memory instrumentation for the bounded-memory streaming pipeline:
// the peak-resident-bytes drop is a tracked bench metric, not a claim, so the
// engine and benches read the kernel's own high-water mark alongside the
// engine's prepared-bytes accounting.
#pragma once

#include "common/defs.hpp"

namespace qgtc {

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status). Returns 0 when the platform has no procfs.
[[nodiscard]] i64 vm_hwm_bytes();

/// Current resident set size in bytes (VmRSS). 0 when unavailable.
[[nodiscard]] i64 vm_rss_bytes();

}  // namespace qgtc
