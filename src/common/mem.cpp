#include "common/mem.hpp"

#include <cstdio>
#include <cstring>

namespace qgtc {

namespace {

/// Reads a "Vm...: N kB" line from /proc/self/status; 0 when absent.
i64 proc_status_kb(const char* key) {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  long long kb = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      if (std::sscanf(line + key_len + 1, "%lld", &kb) != 1) kb = 0;
      break;
    }
  }
  std::fclose(f);
  return static_cast<i64>(kb) * 1024;
#else
  (void)key;
  return 0;
#endif
}

}  // namespace

i64 vm_hwm_bytes() { return proc_status_kb("VmHWM"); }

i64 vm_rss_bytes() { return proc_status_kb("VmRSS"); }

}  // namespace qgtc
