// Core type aliases, padding helpers, and assertion macros shared by every
// QGTC subsystem.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace qgtc {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Number of bits packed into one storage word (paper §4.2: 32-bit alignment
/// for PyTorch interoperability).
inline constexpr int kWordBits = 32;

/// Tensor-core `b1` tile shape (paper §2.3: M=N=8, K=128 for 1-bit WMMA).
inline constexpr int kTileM = 8;
inline constexpr int kTileN = 8;
inline constexpr int kTileK = 128;
inline constexpr int kTileKWords = kTileK / kWordBits;  // 4 x u32 per tile row

/// Round `x` up to a multiple of `m` (m > 0).
[[nodiscard]] constexpr i64 round_up(i64 x, i64 m) { return (x + m - 1) / m * m; }

/// Paper §4.2 padding operators for the 8x8x128 TC tile constraint.
[[nodiscard]] constexpr i64 pad8(i64 x) { return round_up(x, 8); }
[[nodiscard]] constexpr i64 pad128(i64 x) { return round_up(x, 128); }

/// Ceiling division for non-negative operands.
[[nodiscard]] constexpr i64 ceil_div(i64 a, i64 b) { return (a + b - 1) / b; }

/// Throwing check used on public API boundaries (stays on in release builds,
/// unlike assert); reports the failing condition and a caller message.
#define QGTC_CHECK(cond, msg)                                                 \
  do {                                                                        \
    if (!(cond)) {                                                            \
      throw std::invalid_argument(std::string("QGTC_CHECK failed: ") + #cond + \
                                  " — " + (msg));                             \
    }                                                                         \
  } while (0)

}  // namespace qgtc
