#include "common/matrix.hpp"

namespace qgtc {

MatrixF matmul_reference(const MatrixF& a, const MatrixF& b) {
  QGTC_CHECK(a.cols() == b.rows(), "matmul_reference: inner dimensions differ");
  MatrixF c(a.rows(), b.cols(), 0.0f);
  for (i64 i = 0; i < a.rows(); ++i) {
    for (i64 k = 0; k < a.cols(); ++k) {
      const float aik = a(i, k);
      if (aik == 0.0f) continue;
      for (i64 j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

MatrixI32 matmul_reference(const MatrixI32& a, const MatrixI32& b) {
  QGTC_CHECK(a.cols() == b.rows(), "matmul_reference: inner dimensions differ");
  MatrixI32 c(a.rows(), b.cols(), 0);
  for (i64 i = 0; i < a.rows(); ++i) {
    for (i64 k = 0; k < a.cols(); ++k) {
      const i32 aik = a(i, k);
      if (aik == 0) continue;
      for (i64 j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

float max_abs_diff(const MatrixF& a, const MatrixF& b) {
  QGTC_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
             "max_abs_diff: shape mismatch");
  float m = 0.0f;
  for (i64 i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  }
  return m;
}

}  // namespace qgtc
