// Wall-clock timing helpers used by the benchmark harness and engine stats.
#pragma once

#include <algorithm>
#include <chrono>

namespace qgtc {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` repeatedly until at least `min_seconds` elapse (and at least
/// `min_iters` iterations run); returns the MINIMUM seconds per iteration.
/// Min-of-N is robust against scheduler and frequency-scaling noise on
/// shared hosts, which mean-based timing is not.
template <typename Fn>
double time_it(Fn&& fn, double min_seconds = 0.2, int min_iters = 3) {
  // Warm-up run so first-touch page faults don't pollute the measurement.
  fn();
  Timer total;
  double best = 1e300;
  int iters = 0;
  do {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
    ++iters;
  } while (total.seconds() < min_seconds || iters < min_iters);
  return best;
}

}  // namespace qgtc
