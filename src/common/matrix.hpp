// Dense row-major matrix with 64-byte-aligned storage. This is the byte-based
// "vehicle" type (paper §5) that full-precision values and int32 quantized
// values travel in before bit compression.
#pragma once

#include <algorithm>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "common/defs.hpp"

namespace qgtc {

/// Allocator returning 64-byte-aligned storage so packed rows can be streamed
/// with full-width vector loads.
template <typename T>
struct AlignedAllocator {
  using value_type = T;
  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}
  T* allocate(std::size_t n) {
    void* p = ::operator new(n * sizeof(T), std::align_val_t{64});
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{64});
  }
  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const { return true; }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// Dense row-major matrix of trivially-copyable elements.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(i64 rows, i64 cols, T fill = T{}) : rows_(rows), cols_(cols) {
    QGTC_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
    data_.assign(static_cast<std::size_t>(rows * cols), fill);
  }

  [[nodiscard]] i64 rows() const { return rows_; }
  [[nodiscard]] i64 cols() const { return cols_; }
  [[nodiscard]] i64 size() const { return rows_ * cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] T& at(i64 r, i64 c) { return data_[static_cast<std::size_t>(r * cols_ + c)]; }
  [[nodiscard]] const T& at(i64 r, i64 c) const {
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  [[nodiscard]] T& operator()(i64 r, i64 c) { return at(r, c); }
  [[nodiscard]] const T& operator()(i64 r, i64 c) const { return at(r, c); }

  [[nodiscard]] std::span<T> row(i64 r) {
    return {data_.data() + r * cols_, static_cast<std::size_t>(cols_)};
  }
  [[nodiscard]] std::span<const T> row(i64 r) const {
    return {data_.data() + r * cols_, static_cast<std::size_t>(cols_)};
  }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  bool operator==(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

 private:
  i64 rows_ = 0;
  i64 cols_ = 0;
  AlignedVector<T> data_;
};

using MatrixF = Matrix<float>;
using MatrixI32 = Matrix<i32>;

/// C = A * B in fp32, single-threaded reference used by tests.
MatrixF matmul_reference(const MatrixF& a, const MatrixF& b);

/// C = A * B over int32, single-threaded reference used by tests.
MatrixI32 matmul_reference(const MatrixI32& a, const MatrixI32& b);

/// Max-absolute-difference between two same-shape fp32 matrices.
float max_abs_diff(const MatrixF& a, const MatrixF& b);

}  // namespace qgtc
