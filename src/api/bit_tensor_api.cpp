#include "api/bit_tensor_api.hpp"

#include <algorithm>

#include "api/session.hpp"

namespace qgtc::api {

namespace {
BitLayout layout_for(BitTensor::Side side) {
  return side == BitTensor::Side::kLeft ? BitLayout::kRowMajorK
                                        : BitLayout::kColMajorK;
}
}  // namespace

BitTensor BitTensor::to_bit(const MatrixF& dense, int nbits, Side side) {
  BitTensor t;
  t.qparams_ = quant_params_from_data(dense, nbits);
  const MatrixI32 q = quantize_matrix(dense, t.qparams_);
  t.planes_ = StackedBitTensor::decompose(q, nbits, layout_for(side),
                                          PadPolicy::kTile8);
  t.from_float_ = true;
  return t;
}

BitTensor BitTensor::from_quantized(const MatrixI32& q, int nbits, Side side) {
  const i32 qmax = static_cast<i32>((u32{1} << nbits) - 1);
  for (i64 i = 0; i < q.size(); ++i) {
    QGTC_CHECK(q.data()[i] >= 0 && q.data()[i] <= qmax,
               "quantized code out of range for the requested bitwidth");
  }
  BitTensor t;
  t.qparams_ = QuantParams{0.0f, static_cast<float>(qmax + 1), nbits};
  t.planes_ = StackedBitTensor::decompose(q, nbits, layout_for(side),
                                          PadPolicy::kTile8);
  return t;
}

BitTensor BitTensor::from_planes(StackedBitTensor planes) {
  BitTensor t;
  t.qparams_ = QuantParams{
      0.0f, static_cast<float>(u32{1} << planes.bits()), planes.bits()};
  t.planes_ = std::move(planes);
  return t;
}

MatrixF BitTensor::to_float() const {
  return dequantize_matrix(planes_.compose(), qparams_);
}

namespace detail {

MatrixI32 mm_int(const BitTensor& a, const BitTensor& b,
                 const BmmOptions& opt) {
  QGTC_CHECK(a.planes().layout() == BitLayout::kRowMajorK,
             "bitMM2Int: A must be a left-side BitTensor");
  QGTC_CHECK(b.planes().layout() == BitLayout::kColMajorK,
             "bitMM2Int: B must be a right-side BitTensor");
  return bitmm_to_int(a.planes(), b.planes(), opt);
}

MatrixI32 mm_int(const TileSparseBitMatrix& a, const BitTensor& b,
                 const BmmOptions& opt) {
  QGTC_CHECK(b.planes().layout() == BitLayout::kColMajorK,
             "bitMM2Int: B must be a right-side BitTensor");
  // The sparse operand is 1-bit by construction; cross-tile reduction keeps
  // each stored tile resident across every B bit-plane (§4.4).
  return aggregate_1bit(a, b.planes(), ReuseMode::kCrossTile, opt);
}

BitTensor mm_bit(const BitTensor& a, const BitTensor& b, int bit_c,
                 tcsim::Activation act, const BmmOptions& opt) {
  QGTC_CHECK(a.planes().layout() == BitLayout::kRowMajorK,
             "bitMM2Bit: A must be a left-side BitTensor");
  QGTC_CHECK(b.planes().layout() == BitLayout::kColMajorK,
             "bitMM2Bit: B must be a right-side BitTensor");
  // Requantize with a data-independent shift derived from the worst-case
  // accumulator magnitude, so the API is one-shot (no calibration pass).
  const i64 k = a.cols();
  const i64 max_acc = k * ((i64{1} << a.bits()) - 1) * ((i64{1} << b.bits()) - 1);
  FusedEpilogue epi;
  epi.act = act;
  epi.rshift = calibrate_rshift(
      static_cast<i32>(std::min<i64>(max_acc, INT32_MAX)), bit_c);
  StackedBitTensor out = bitmm_fused_bit(a.planes(), b.planes(), bit_c, epi,
                                         opt, PadPolicy::kTile8,
                                         BitLayout::kRowMajorK);
  return BitTensor::from_planes(std::move(out));
}

}  // namespace detail

// The free functions route through the default Session unless the caller
// pinned a context via opt.ctx (legacy escape hatch, unchanged semantics).

MatrixI32 bitMM2Int(const BitTensor& a, const BitTensor& b,
                    const BmmOptions& opt) {
  if (opt.ctx != nullptr) return detail::mm_int(a, b, opt);
  return Session::default_session().mm_int(a, b, opt);
}

MatrixI32 bitMM2Int(const TileSparseBitMatrix& a, const BitTensor& b,
                    const BmmOptions& opt) {
  if (opt.ctx != nullptr) return detail::mm_int(a, b, opt);
  return Session::default_session().mm_int(a, b, opt);
}

BitTensor bitMM2Bit(const BitTensor& a, const BitTensor& b, int bit_c,
                    const BmmOptions& opt, tcsim::Activation act) {
  if (opt.ctx != nullptr) return detail::mm_bit(a, b, bit_c, act, opt);
  return Session::default_session().mm_bit(a, b, MmOut{bit_c, act}, opt);
}

MatrixI32 bitMM2Int(const BitTensor& a, const BitTensor& b,
                    const tcsim::ExecutionContext& ctx, const BmmOptions& opt) {
  BmmOptions pinned = opt;
  pinned.ctx = &ctx;
  return detail::mm_int(a, b, pinned);
}

MatrixI32 bitMM2Int(const TileSparseBitMatrix& a, const BitTensor& b,
                    const tcsim::ExecutionContext& ctx, const BmmOptions& opt) {
  BmmOptions pinned = opt;
  pinned.ctx = &ctx;
  return detail::mm_int(a, b, pinned);
}

BitTensor bitMM2Bit(const BitTensor& a, const BitTensor& b, int bit_c,
                    const tcsim::ExecutionContext& ctx, const BmmOptions& opt,
                    tcsim::Activation act) {
  BmmOptions pinned = opt;
  pinned.ctx = &ctx;
  return detail::mm_bit(a, b, bit_c, act, pinned);
}

}  // namespace qgtc::api
