#include "api/session.hpp"

namespace qgtc::api {

MatrixI32 Session::mm_int(const BitTensor& a, const BitTensor& b,
                          const BmmOptions& opt) const {
  BmmOptions pinned = opt;
  pinned.ctx = &ctx_;
  return detail::mm_int(a, b, pinned);
}

MatrixI32 Session::mm_int(const TileSparseBitMatrix& a, const BitTensor& b,
                          const BmmOptions& opt) const {
  BmmOptions pinned = opt;
  pinned.ctx = &ctx_;
  return detail::mm_int(a, b, pinned);
}

BitTensor Session::mm_bit(const BitTensor& a, const BitTensor& b,
                          const MmOut& out, const BmmOptions& opt) const {
  BmmOptions pinned = opt;
  pinned.ctx = &ctx_;
  return detail::mm_bit(a, b, out.bits, out.act, pinned);
}

const Session& Session::default_session() {
  static const Session session{DefaultTag{}};
  return session;
}

}  // namespace qgtc::api
