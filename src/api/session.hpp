// api::Session — the context-pinned call surface of the §5 framework
// integration. A Session owns one ExecutionContext (substrate backend +
// workspace arena access + private counter block) and exposes the two MM
// entry points on it:
//
//   session.mm_int(a, b)                    -> int32 Tensor output
//   session.mm_bit(a, b, MmOut{bits, act})  -> requantized bit-Tensor output
//
// This replaces the old six-way bitMM2Int/bitMM2Bit overload sprawl (three
// shapes x with/without an opt.ctx-overriding ExecutionContext parameter)
// with one handle: a framework integration creates one Session per stream /
// worker — exactly the handle the serving layer's compute workers hold — and
// every call on it runs on that session's backend and accounts into that
// session's counters. The legacy free functions remain as thin wrappers
// delegating to `Session::default_session()`.
#pragma once

#include "api/bit_tensor_api.hpp"

namespace qgtc::api {

/// Output description for Session::mm_bit: the requantized bitwidth and the
/// elementwise activation the fused epilogue applies before the clamp.
struct MmOut {
  int bits = 8;
  tcsim::Activation act = tcsim::Activation::kIdentity;
};

class Session {
 public:
  /// Session on the process default backend with a private counter block.
  Session() : Session(tcsim::default_backend()) {}

  /// Session on an explicit backend. `private_counters` (default) gives the
  /// session its own counter block so concurrent sessions account
  /// independently; false routes to the global per-thread registry.
  explicit Session(tcsim::BackendKind backend, bool private_counters = true)
      : ctx_(backend, private_counters) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// C = A x B with int32 output (quantized-code arithmetic). Runs on this
  /// session's backend; `opt.ctx`, if set, is overridden — the session IS
  /// the context.
  MatrixI32 mm_int(const BitTensor& a, const BitTensor& b,
                   const BmmOptions& opt = {}) const;

  /// Structurally sparse left operand: the 1-bit adjacency rides the
  /// tile-CSR path (only stored tiles execute, jumping free).
  MatrixI32 mm_int(const TileSparseBitMatrix& a, const BitTensor& b,
                   const BmmOptions& opt = {}) const;

  /// C = A x B requantized to `out.bits` with `out.act` applied in the fused
  /// epilogue, returned as a left-side BitTensor ready for the next MM.
  BitTensor mm_bit(const BitTensor& a, const BitTensor& b, const MmOut& out,
                   const BmmOptions& opt = {}) const;

  /// The execution context this session pins (the handle to hand to
  /// QgtcModel::forward_prepared and friends).
  [[nodiscard]] const tcsim::ExecutionContext& context() const { return ctx_; }
  [[nodiscard]] tcsim::BackendKind backend() const {
    return ctx_.backend_kind();
  }

  /// Substrate counters attributed to this session.
  [[nodiscard]] tcsim::Counters counters() const { return ctx_.counters(); }
  void reset_counters() { ctx_.reset_counters(); }

  /// The process-wide session backing the free-function API: process default
  /// backend, counters routed to the global per-thread registry (unchanged
  /// legacy snapshot semantics).
  static const Session& default_session();

 private:
  struct DefaultTag {};
  explicit Session(DefaultTag) : ctx_() {}

  tcsim::ExecutionContext ctx_;
};

}  // namespace qgtc::api
