// The framework-integration surface of paper §5, mirrored in C++ (the paper
// binds these into PyTorch; the semantics live here). A BitTensor rides on
// int32 storage ("the vehicle"), exposes `to_bit`/`to_val` conversions, and
// the two MM entry points:
//
//   bitMM2Int(C, A, B, bit_A, bit_B)        -> int32 Tensor output
//   bitMM2Bit(C, A, B, bit_A, bit_B, bit_C) -> quantized bit-Tensor output
#pragma once

#include "bittensor/stacked.hpp"
#include "kernels/anybit_mm.hpp"

namespace qgtc::api {

/// A quantized tensor held as 3D-stacked bit planes plus the quantization
/// parameters needed to decode element values.
class BitTensor {
 public:
  BitTensor() = default;

  /// `Tensor.to_bit(nbits)`: quantize an fp32 tensor per Eq. 2 and pack.
  /// `side` selects the MM operand layout this tensor will be used as.
  enum class Side { kLeft, kRight };
  static BitTensor to_bit(const MatrixF& dense, int nbits,
                          Side side = Side::kLeft);

  /// Wrap an already-quantized int32 tensor (values in [0, 2^nbits)).
  static BitTensor from_quantized(const MatrixI32& q, int nbits,
                                  Side side = Side::kLeft);

  /// Adopt already-packed planes (zero-copy wrap used by bitMM2Bit).
  static BitTensor from_planes(StackedBitTensor planes);

  /// `Tensor.to_val()`: decode to an int32 tensor of quantized codes.
  [[nodiscard]] MatrixI32 to_val() const { return planes_.compose(); }

  /// Decode to fp32 using the stored quantization parameters.
  [[nodiscard]] MatrixF to_float() const;

  [[nodiscard]] int bits() const { return planes_.bits(); }
  [[nodiscard]] i64 rows() const { return planes_.rows(); }
  [[nodiscard]] i64 cols() const { return planes_.cols(); }
  [[nodiscard]] const StackedBitTensor& planes() const { return planes_; }
  [[nodiscard]] const QuantParams& qparams() const { return qparams_; }

 private:
  StackedBitTensor planes_;
  QuantParams qparams_{0.0f, 1.0f, 1};
  bool from_float_ = false;
};

namespace detail {
/// Validation + kernel dispatch shared by the free functions and
/// api::Session (which pins its own context before delegating here).
MatrixI32 mm_int(const BitTensor& a, const BitTensor& b,
                 const BmmOptions& opt);
MatrixI32 mm_int(const TileSparseBitMatrix& a, const BitTensor& b,
                 const BmmOptions& opt);
BitTensor mm_bit(const BitTensor& a, const BitTensor& b, int bit_c,
                 tcsim::Activation act, const BmmOptions& opt);
}  // namespace detail

/// bitMM2Int: C = A x B with int32 output (quantized-code arithmetic).
/// Thin wrapper over the default api::Session (callers wanting a pinned
/// backend / private counters construct their own Session — see
/// api/session.hpp).
MatrixI32 bitMM2Int(const BitTensor& a, const BitTensor& b,
                    const BmmOptions& opt = {});

/// bitMM2Int with a structurally sparse left operand: the 1-bit adjacency
/// rides the tile-CSR path (only stored tiles execute, jumping free) while
/// the right operand stays a dense bit-Tensor — the paper's adjacency x
/// embedding split, with sparsity made structural.
MatrixI32 bitMM2Int(const TileSparseBitMatrix& a, const BitTensor& b,
                    const BmmOptions& opt = {});

/// bitMM2Bit: C = A x B requantized to `bit_c` bits, returned as a left-side
/// BitTensor ready for the next MM (hidden-layer chaining, §4.5). `act` is
/// the elementwise activation the fused epilogue applies before the clamp.
BitTensor bitMM2Bit(const BitTensor& a, const BitTensor& b, int bit_c,
                    const BmmOptions& opt = {},
                    tcsim::Activation act = tcsim::Activation::kIdentity);

/// Deprecated opt.ctx-overriding overloads, kept as delegating wrappers: the
/// per-stream handle is now api::Session, which owns the ExecutionContext
/// instead of threading it through every call site.
[[deprecated(
    "construct an api::Session (one per stream/worker) and call "
    "session.mm_int instead")]]
MatrixI32 bitMM2Int(const BitTensor& a, const BitTensor& b,
                    const tcsim::ExecutionContext& ctx,
                    const BmmOptions& opt = {});
[[deprecated(
    "construct an api::Session (one per stream/worker) and call "
    "session.mm_int instead")]]
MatrixI32 bitMM2Int(const TileSparseBitMatrix& a, const BitTensor& b,
                    const tcsim::ExecutionContext& ctx,
                    const BmmOptions& opt = {});
[[deprecated(
    "construct an api::Session (one per stream/worker) and call "
    "session.mm_bit(a, b, MmOut{bits, act}) instead")]]
BitTensor bitMM2Bit(const BitTensor& a, const BitTensor& b, int bit_c,
                    const tcsim::ExecutionContext& ctx,
                    const BmmOptions& opt = {},
                    tcsim::Activation act = tcsim::Activation::kIdentity);

}  // namespace qgtc::api
