#include "core/serving.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace qgtc::core {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Emits the stall half of a stage's busy/stall split as a trace span (the
/// interval `blocked` seconds long, ending now).
void stall_span(const char* cat, const char* name, double blocked) {
  if (blocked > 0.0) {
    const u64 dur = static_cast<u64>(blocked * 1e9);
    obs::emit_span(cat, name, obs::SpanSink::now_ns() - dur, dur);
  }
}

/// Folds one busy/stall increment into a stage breakdown under the stats
/// mutex. Called once per micro-batch / queue operation, never per span.
void note_stage(std::mutex& mu, obs::StageBreakdown& stage, double busy,
                double stall) {
  if (busy <= 0.0 && stall <= 0.0) return;
  std::lock_guard lock(mu);
  stage.busy_seconds += busy;
  stage.stall_seconds += stall;
}
}  // namespace

/// One admitted request riding through the pipeline: the expanded ego-graph
/// node set plus the promise the client is waiting on.
struct ServingEngine::Pending {
  ServingRequest req;
  std::vector<i32> nodes;
  std::promise<ServingResult> promise;
  Clock::time_point submitted{};
  u64 submit_ns = 0;         // trace-clock submit stamp (request span start)
  double queue_seconds = 0;  // stamped at dispatch
};

/// A coalesced micro-batch: member requests + the block-diagonal batch they
/// form (one partition per request) + the prepared data the pipeline fills.
struct ServingEngine::MicroBatch {
  std::vector<Pending> members;
  SubgraphBatch batch;
  QgtcEngine::BatchRef bd;
  /// True when bd came out of the engine's BatchCache — the ship stage then
  /// charges resident reuse (zero bytes) instead of packing.
  bool cached = false;
};

ServingEngine::ServingEngine(const Dataset& dataset, EngineConfig cfg,
                             const ServingPolicy& policy)
    : policy_(policy) {
  validate_policy();
  // Streaming mode: the engine calibrates off batch 0 but never materialises
  // an offline epoch — the server's batches are the dynamic micro-batches.
  cfg.mode.epoch = RunMode::Epoch::kStreaming;
  engine_ = std::make_unique<QgtcEngine>(dataset, cfg);
  start(cfg);
}

ServingEngine::ServingEngine(const store::DatasetStore& dstore,
                             EngineConfig cfg, const ServingPolicy& policy)
    : policy_(policy) {
  validate_policy();
  cfg.mode.epoch = RunMode::Epoch::kStreaming;
  engine_ = std::make_unique<QgtcEngine>(dstore, cfg);
  start(cfg);
}

void ServingEngine::validate_policy() const {
  QGTC_CHECK(policy_.max_batch_nodes >= 1 && policy_.max_batch_requests >= 1,
             "micro-batch budgets must be >= 1");
  QGTC_CHECK(policy_.max_wait_us >= 0, "max_wait_us must be non-negative");
  QGTC_CHECK(policy_.prepare_workers >= 1 && policy_.compute_workers >= 1,
             "stage worker counts must be >= 1");
  QGTC_CHECK(policy_.admission_capacity >= 1 && policy_.queue_depth >= 1,
             "queue capacities must be >= 1");
}

void ServingEngine::start(const EngineConfig& cfg) {
  admission_ = std::make_unique<BoundedQueue<Pending>>(
      static_cast<std::size_t>(policy_.admission_capacity));
  prep_q_ = std::make_unique<BoundedQueue<MicroBatch>>(
      static_cast<std::size_t>(policy_.queue_depth));
  ship_q_ = std::make_unique<BoundedQueue<MicroBatch>>(
      static_cast<std::size_t>(policy_.queue_depth));
  compute_q_ = std::make_unique<BoundedQueue<MicroBatch>>(
      static_cast<std::size_t>(policy_.queue_depth));

  for (int w = 0; w < policy_.compute_workers; ++w) {
    sessions_.emplace_back(cfg.backend, /*private_counters=*/true);
  }

  batcher_ = std::thread([this] { batcher_loop(); });
  preparers_.reserve(static_cast<std::size_t>(policy_.prepare_workers));
  for (int p = 0; p < policy_.prepare_workers; ++p) {
    preparers_.emplace_back([this] { prepare_loop(); });
  }
  shipper_ = std::thread([this] { ship_loop(); });
  computers_.reserve(static_cast<std::size_t>(policy_.compute_workers));
  for (int w = 0; w < policy_.compute_workers; ++w) {
    computers_.emplace_back([this, w] { compute_loop(static_cast<std::size_t>(w)); });
  }
  started_ = true;
}

ServingEngine::~ServingEngine() { stop(); }

std::future<ServingResult> ServingEngine::submit(ServingRequest req) {
  Pending p;
  p.submitted = Clock::now();
  p.submit_ns = obs::SpanSink::now_ns();
  std::future<ServingResult> fut = p.promise.get_future();
  {
    std::lock_guard lock(lifecycle_mu_);
    if (stopped_) throw std::runtime_error("ServingEngine is stopped");
  }
  // Admission-time expansion: a bad request fails its own future here, long
  // before it could poison a micro-batch.
  try {
    p.nodes = expand_ego(engine_->graph(), req.seeds, req.fanout,
                         req.max_nodes);
  } catch (...) {
    p.promise.set_exception(std::current_exception());
    return fut;
  }
  p.req = std::move(req);
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.requests_admitted;
  }
  if (!admission_->push(std::move(p))) {
    // Raced with stop(): push() refuses without consuming the item.
    p.promise.set_exception(std::make_exception_ptr(
        std::runtime_error("ServingEngine stopped during admission")));
  }
  return fut;
}

ServingResult ServingEngine::infer(ServingRequest req) {
  return submit(std::move(req)).get();
}

void ServingEngine::stop() {
  {
    std::lock_guard lock(lifecycle_mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  // Ordered drain: close each queue only after its producers have joined, so
  // every admitted request still flows through to its promise.
  admission_->close();
  batcher_.join();  // closes prep_q_ after flushing the partial batch
  for (std::thread& t : preparers_) t.join();
  ship_q_->close();
  shipper_.join();
  compute_q_->close();
  for (std::thread& t : computers_) t.join();
}

ServingStats ServingEngine::stats() const {
  ServingStats s;
  {
    std::lock_guard lock(stats_mu_);
    s = stats_;
  }
  for (const api::Session& session : sessions_) {
    const tcsim::Counters c = session.counters();
    s.bmma_ops += static_cast<i64>(c.bmma_ops);
    s.tiles_jumped += static_cast<i64>(c.tiles_jumped);
  }
  return s;
}

void ServingEngine::fail_batch(MicroBatch& batch,
                               const std::exception_ptr& err) {
  for (Pending& p : batch.members) p.promise.set_exception(err);
  std::lock_guard lock(stats_mu_);
  stats_.requests_failed += static_cast<i64>(batch.members.size());
}

void ServingEngine::dispatch(MicroBatch&& batch, bool timed_out) {
  const Clock::time_point now = Clock::now();
  batch.batch.part_bounds.assign(1, 0);
  batch.batch.nodes.clear();
  for (Pending& p : batch.members) {
    batch.batch.nodes.insert(batch.batch.nodes.end(), p.nodes.begin(),
                             p.nodes.end());
    batch.batch.part_bounds.push_back(
        static_cast<i64>(batch.batch.nodes.size()));
    p.queue_seconds = std::chrono::duration<double>(now - p.submitted).count();
  }
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.batches_dispatched;
    stats_.batch_nodes_total += batch.batch.size();
    ++(timed_out ? stats_.dispatches_timeout : stats_.dispatches_full);
  }
  // Batch-occupancy distributions (the coalescing dial's feedback signal).
  static obs::Histogram& batch_req_hist =
      obs::MetricsRegistry::instance().histogram("serving.batch_requests");
  static obs::Histogram& batch_nodes_hist =
      obs::MetricsRegistry::instance().histogram("serving.batch_nodes");
  batch_req_hist.record(static_cast<double>(batch.members.size()));
  batch_nodes_hist.record(static_cast<double>(batch.batch.size()));
  double push_blocked = 0.0;
  const bool pushed = prep_q_->push(std::move(batch), &push_blocked);
  stall_span("batcher", "stall.push", push_blocked);
  note_stage(stats_mu_, stats_.batcher_stage, 0.0, push_blocked);
  if (!pushed) {
    fail_batch(batch, std::make_exception_ptr(std::runtime_error(
                          "ServingEngine pipeline shut down mid-dispatch")));
  }
}

void ServingEngine::batcher_loop() {
  MicroBatch cur;
  i64 cur_nodes = 0;
  Clock::time_point oldest{};
  const auto flush = [&](bool timed_out) {
    if (cur.members.empty()) return;
    // The coalesce window: first member's submit stamp to dispatch. This is
    // the batcher's "busy" time — an open micro-batch accumulating members —
    // and the span the latency dial (max_wait_us) is tuned against.
    const u64 open_ns = cur.members.front().submit_ns;
    const u64 now_ns = obs::SpanSink::now_ns();
    const u64 window_ns = now_ns > open_ns ? now_ns - open_ns : 0;
    obs::emit_span("batcher", "coalesce", now_ns - window_ns, window_ns,
                   {{"nodes", cur_nodes},
                    {"requests", static_cast<i64>(cur.members.size())},
                    {"timed_out", timed_out ? 1 : 0}});
    note_stage(stats_mu_, stats_.batcher_stage,
               static_cast<double>(window_ns) * 1e-9, 0.0);
    dispatch(std::move(cur), timed_out);
    cur = MicroBatch{};
    cur_nodes = 0;
  };

  for (;;) {
    Pending p;
    if (cur.members.empty()) {
      // Nothing pending: block until a request (or shutdown) arrives. The
      // blocked time is the batcher's idle stall — no open batch, no work.
      double blocked = 0.0;
      std::optional<Pending> item = admission_->pop(&blocked);
      stall_span("batcher", "stall.pop", blocked);
      note_stage(stats_mu_, stats_.batcher_stage, 0.0, blocked);
      if (!item.has_value()) break;
      p = std::move(*item);
    } else {
      // A partial batch is open: wait at most the oldest member's remaining
      // max_wait budget, then dispatch what we have.
      const i64 waited_us = static_cast<i64>(seconds_since(oldest) * 1e6);
      const i64 remaining_us = policy_.max_wait_us - waited_us;
      if (remaining_us <= 0) {
        flush(/*timed_out=*/true);
        continue;
      }
      const auto st = admission_->pop_for(remaining_us, p);
      if (st == BoundedQueue<Pending>::PopStatus::kTimeout) {
        flush(/*timed_out=*/true);
        continue;
      }
      if (st == BoundedQueue<Pending>::PopStatus::kClosed) break;
    }

    const i64 n = static_cast<i64>(p.nodes.size());
    // Close the open batch first if this request would overflow it. A single
    // request larger than max_batch_nodes still dispatches — alone.
    if (!cur.members.empty() &&
        (cur_nodes + n > policy_.max_batch_nodes ||
         static_cast<i64>(cur.members.size()) >= policy_.max_batch_requests)) {
      flush(/*timed_out=*/false);
    }
    if (cur.members.empty()) oldest = p.submitted;
    cur_nodes += n;
    cur.members.push_back(std::move(p));
    if (cur_nodes >= policy_.max_batch_nodes ||
        static_cast<i64>(cur.members.size()) >= policy_.max_batch_requests) {
      flush(/*timed_out=*/false);
    }
  }
  flush(/*timed_out=*/false);  // shutdown: the partial batch still completes
  prep_q_->close();
}

void ServingEngine::prepare_loop() {
  for (;;) {
    double blocked = 0.0;
    std::optional<MicroBatch> mb = prep_q_->pop(&blocked);
    stall_span("prepare", "stall.pop", blocked);
    note_stage(stats_mu_, stats_.prepare_stage, 0.0, blocked);
    if (!mb.has_value()) break;
    Timer body;
    try {
      // The offline prepare path, verbatim: prepare_batch_data +
      // QgtcModel::prepare_input over the dynamic micro-batch.
      obs::SpanScope span("prepare", "microbatch",
                          {{"nodes", mb->batch.size()},
                           {"requests", static_cast<i64>(mb->members.size())}});
      mb->bd = engine_->prepare_subgraph(mb->batch, /*build_fp32_csr=*/false,
                                         &mb->cached);
      span.arg("cache_hit", mb->cached ? 1 : 0);
    } catch (...) {
      note_stage(stats_mu_, stats_.prepare_stage, body.seconds(), 0.0);
      fail_batch(*mb, std::current_exception());
      continue;
    }
    note_stage(stats_mu_, stats_.prepare_stage, body.seconds(), 0.0);
    double push_blocked = 0.0;
    const bool pushed = ship_q_->push(std::move(*mb), &push_blocked);
    stall_span("prepare", "stall.push", push_blocked);
    note_stage(stats_mu_, stats_.prepare_stage, 0.0, push_blocked);
    if (!pushed) {
      fail_batch(*mb, std::make_exception_ptr(std::runtime_error(
                          "ServingEngine pipeline shut down mid-prepare")));
    }
  }
}

void ServingEngine::ship_loop() {
  const bool sparse = engine_->config().mode.sparse_adj();
  for (;;) {
    double blocked = 0.0;
    std::optional<MicroBatch> mb = ship_q_->pop(&blocked);
    stall_span("ship", "stall.pop", blocked);
    note_stage(stats_mu_, stats_.ship_stage, 0.0, blocked);
    if (!mb.has_value()) break;
    Timer body;
    try {
      obs::SpanScope span("ship", "microbatch",
                          {{"nodes", mb->batch.size()},
                           {"requests", static_cast<i64>(mb->members.size())}});
      // A cache hit means the prepared payload is already device-resident:
      // nothing to pack, nothing on the wire.
      const transfer::PackedSubgraph packed =
          mb->cached ? transfer::resident_reuse()
                     : pack_prepared_batch(*mb->bd, sparse, ring_.next(),
                                           pcie_);
      span.arg("bytes", packed.total_bytes);
      std::lock_guard lock(stats_mu_);
      stats_.packed_bytes += packed.total_bytes;
      stats_.wire_seconds += packed.modeled_seconds;
      if (packed.transfers == 0) ++stats_.resident_reuse_batches;
      stats_.ship_stage.busy_seconds += body.seconds();
    } catch (...) {
      note_stage(stats_mu_, stats_.ship_stage, body.seconds(), 0.0);
      fail_batch(*mb, std::current_exception());
      continue;
    }
    double push_blocked = 0.0;
    const bool pushed = compute_q_->push(std::move(*mb), &push_blocked);
    stall_span("ship", "stall.push", push_blocked);
    note_stage(stats_mu_, stats_.ship_stage, 0.0, push_blocked);
    if (!pushed) {
      fail_batch(*mb, std::make_exception_ptr(std::runtime_error(
                          "ServingEngine pipeline shut down mid-ship")));
    }
  }
}

void ServingEngine::compute_loop(std::size_t worker) {
  const bool sparse = engine_->config().mode.sparse_adj();
  const api::Session& session = sessions_[worker];
  // Client-visible latency distribution, recorded at completion — the
  // `--metrics` dump and the load generator's percentile source.
  obs::Histogram& latency_ms =
      obs::MetricsRegistry::instance().histogram("serving.request_latency_ms");
  for (;;) {
    double blocked = 0.0;
    std::optional<MicroBatch> mb = compute_q_->pop(&blocked);
    stall_span("compute", "stall.pop", blocked);
    note_stage(stats_mu_, stats_.compute_stage, 0.0, blocked);
    if (!mb.has_value()) break;
    Timer body;
    try {
      const QgtcEngine::BatchData& bd = *mb->bd;
      MatrixI32 logits;
      {
        QGTC_SPAN("compute", "microbatch",
                  {{"nodes", mb->batch.size()},
                   {"requests", static_cast<i64>(mb->members.size())},
                   {"worker", static_cast<i64>(worker)}});
        logits =
            sparse ? engine_->model().forward_prepared(bd.adj_tiles,
                                                       bd.x_planes,
                                                       /*stats=*/nullptr,
                                                       &session.context())
                   : engine_->model().forward_prepared(bd.adj, &bd.tile_map,
                                                       bd.x_planes,
                                                       /*stats=*/nullptr,
                                                       &session.context());
      }
      const Clock::time_point done = Clock::now();
      const u64 done_ns = obs::SpanSink::now_ns();
      for (std::size_t m = 0; m < mb->members.size(); ++m) {
        Pending& p = mb->members[m];
        const i64 r0 = mb->batch.part_bounds[m];
        const i64 r1 = mb->batch.part_bounds[m + 1];
        ServingResult res;
        res.nodes = std::move(p.nodes);
        res.logits = MatrixI32(r1 - r0, logits.cols());
        for (i64 r = r0; r < r1; ++r) {
          const auto src = logits.row(r);
          std::copy(src.begin(), src.end(), res.logits.row(r - r0).begin());
        }
        res.batch_nodes = mb->batch.size();
        res.batch_requests = static_cast<i64>(mb->members.size());
        res.timing.queue_seconds = p.queue_seconds;
        res.timing.total_seconds =
            std::chrono::duration<double>(done - p.submitted).count();
        // The request's whole lifecycle — admission through completion — as
        // one span: the client-latency bar the stage spans decompose.
        obs::emit_span("request", "lifecycle", p.submit_ns,
                       done_ns > p.submit_ns ? done_ns - p.submit_ns : 0,
                       {{"queue_us", static_cast<i64>(p.queue_seconds * 1e6)},
                        {"batch_nodes", res.batch_nodes},
                        {"batch_requests", res.batch_requests}});
        latency_ms.record(res.timing.total_seconds * 1e3);
        p.promise.set_value(std::move(res));
      }
      std::lock_guard lock(stats_mu_);
      stats_.requests_completed += static_cast<i64>(mb->members.size());
      stats_.compute_stage.busy_seconds += body.seconds();
    } catch (...) {
      note_stage(stats_mu_, stats_.compute_stage, body.seconds(), 0.0);
      fail_batch(*mb, std::current_exception());
    }
  }
}

LoadReport run_poisson_load(ServingEngine& serving, const LoadSpec& spec) {
  QGTC_CHECK(spec.num_requests >= 1, "load spec needs at least one request");
  QGTC_CHECK(spec.target_qps > 0, "target_qps must be positive");
  QGTC_CHECK(spec.seeds_per_request >= 1, "need at least one seed per request");
  const i64 n = serving.engine().graph().num_nodes();
  QGTC_CHECK(n >= spec.seeds_per_request,
             "dataset smaller than seeds_per_request");

  Rng rng(spec.seed);
  std::vector<std::future<ServingResult>> futures;
  futures.reserve(static_cast<std::size_t>(spec.num_requests));

  // Open loop: arrival times are fixed up front by the Poisson process and
  // honoured regardless of completions, so queueing delay shows up in the
  // tail instead of being absorbed by a self-throttling client.
  Timer wall;
  double next_arrival = 0.0;
  for (i64 i = 0; i < spec.num_requests; ++i) {
    next_arrival +=
        -std::log(1.0 - static_cast<double>(rng.next_float())) /
        spec.target_qps;
    while (wall.seconds() < next_arrival) {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
    ServingRequest req;
    req.fanout = spec.fanout;
    req.max_nodes = spec.max_nodes;
    req.seeds.reserve(static_cast<std::size_t>(spec.seeds_per_request));
    while (static_cast<int>(req.seeds.size()) < spec.seeds_per_request) {
      const i32 s = static_cast<i32>(rng.next_below(static_cast<u64>(n)));
      bool dup = false;
      for (const i32 t : req.seeds) dup = dup || (t == s);
      if (!dup) req.seeds.push_back(s);
    }
    futures.push_back(serving.submit(std::move(req)));
  }

  LoadReport rep;
  rep.offered_qps = spec.target_qps;
  // Latencies reduce through the fixed-bucket histogram (≤ ~1.6% relative
  // quantile error, see obs/metrics.hpp) instead of core::percentile's
  // sort-a-copy — constant memory regardless of num_requests.
  obs::Histogram latencies_ms;
  double batch_requests_sum = 0;
  for (std::future<ServingResult>& f : futures) {
    try {
      const ServingResult res = f.get();
      latencies_ms.record(res.timing.total_seconds * 1e3);
      batch_requests_sum += static_cast<double>(res.batch_requests);
      ++rep.completed;
    } catch (...) {
      ++rep.failed;
    }
  }
  rep.wall_seconds = wall.seconds();
  rep.sustained_qps =
      rep.wall_seconds > 0 ? static_cast<double>(rep.completed) / rep.wall_seconds : 0;
  rep.p50_ms = latencies_ms.percentile(50.0);
  rep.p99_ms = latencies_ms.percentile(99.0);
  rep.p999_ms = latencies_ms.percentile(99.9);
  rep.mean_batch_requests =
      rep.completed > 0 ? batch_requests_sum / static_cast<double>(rep.completed) : 0;
  return rep;
}

}  // namespace qgtc::core
