#include "core/pipeline.hpp"

#include <algorithm>

namespace qgtc::core {

double exposed_transfer_seconds(std::span<const double> wire_seconds,
                                std::span<const double> compute_seconds) {
  QGTC_CHECK(wire_seconds.size() == compute_seconds.size(),
             "wire/compute series must cover the same batches");
  // Two serial engines: the copy engine runs transfers back-to-back, the
  // compute engine consumes batch i only after transfer i landed. Exposure
  // is the compute engine's wait time — batch 0's wire time is always
  // exposed (nothing to overlap it with); later transfers are exposed only
  // when they outlast the compute still in flight.
  double copy_free = 0.0, compute_free = 0.0, exposed = 0.0;
  for (std::size_t i = 0; i < wire_seconds.size(); ++i) {
    copy_free += wire_seconds[i];  // transfer i ends here
    exposed += std::max(0.0, copy_free - compute_free);
    compute_free = std::max(copy_free, compute_free) + compute_seconds[i];
  }
  return exposed;
}

}  // namespace qgtc::core
