#include "core/sharded.hpp"

#include <algorithm>
#include <thread>

#include "common/mem.hpp"
#include "core/autotune.hpp"
#include "core/pipeline.hpp"
#include "obs/trace.hpp"
#include "parallel/affinity.hpp"

namespace qgtc::core {

ShardPlan make_shard_plan(const CsrView& g,
                          const std::vector<SubgraphBatch>& batches,
                          int num_shards) {
  QGTC_CHECK(num_shards >= 1, "shard plan needs at least one shard");
  ShardPlan plan;
  plan.num_shards = num_shards;
  if (num_shards == 1) {
    plan.owner.assign(static_cast<std::size_t>(g.num_nodes()), 0);
  } else {
    // Coarse S-way ownership from the same METIS substitute the engine's
    // fine-grained partitioning uses: neighbours cluster under one owner, so
    // batch halos shrink the same way a METIS-driven multi-GPU split's do.
    plan.owner = partition_graph(g, num_shards, {}).part_of;
  }

  plan.shard_batches.assign(static_cast<std::size_t>(num_shards), {});
  plan.batch_shard.reserve(batches.size());
  std::vector<i64> votes(static_cast<std::size_t>(num_shards), 0);
  for (std::size_t b = 0; b < batches.size(); ++b) {
    std::fill(votes.begin(), votes.end(), 0);
    for (const i32 u : batches[b].nodes) {
      ++votes[static_cast<std::size_t>(plan.owner[static_cast<std::size_t>(u)])];
    }
    // Plurality owner, ties to the lowest shard id (deterministic).
    i64 best = 0;
    for (i64 s = 1; s < num_shards; ++s) {
      if (votes[static_cast<std::size_t>(s)] > votes[static_cast<std::size_t>(best)]) best = s;
    }
    plan.batch_shard.push_back(best);
    plan.shard_batches[static_cast<std::size_t>(best)].push_back(
        static_cast<i64>(b));
  }
  return plan;
}

ShardedEngine::ShardedEngine(const Dataset& dataset, const EngineConfig& cfg,
                             const ShardedConfig& scfg)
    : dataset_(&dataset), cfg_(cfg), scfg_(scfg) {
  QGTC_CHECK(scfg_.num_shards >= 1, "num_shards must be >= 1");
  QGTC_CHECK(cfg_.shard_batches.empty(),
             "EngineConfig::shard_batches is owned by ShardedEngine");
  global_batches_ = make_epoch_batches(dataset.graph, cfg_);
  plan_ = make_shard_plan(dataset.graph, global_batches_, scfg_.num_shards);
  if (scfg_.pin_numa) {
    cpu_slices_ =
        affinity::shard_cpu_slices(affinity::detect_topology(), scfg_.num_shards);
  }
  halo_ = std::make_unique<comm::HaloExchange>(scfg_.num_shards,
                                               scfg_.interconnect);
  depth_override_.assign(static_cast<std::size_t>(scfg_.num_shards), 0);
  build_engines();
}

void ShardedEngine::set_plan(ShardPlan plan) {
  QGTC_CHECK(plan.num_shards == plan_.num_shards,
             "set_plan must keep the shard count");
  QGTC_CHECK(plan.num_batches() == static_cast<i64>(global_batches_.size()),
             "set_plan must cover the global batch list");
  plan_ = std::move(plan);
  reports_.clear();
  build_engines();
}

void ShardedEngine::build_engines() {
  const int S = plan_.num_shards;
  engines_.clear();
  engines_.resize(static_cast<std::size_t>(S));
  int nonempty = 0;
  for (int s = 0; s < S; ++s) {
    if (!plan_.shard_batches[static_cast<std::size_t>(s)].empty()) ++nonempty;
  }
  nonempty = std::max(nonempty, 1);
  // The worker budget splits across concurrently-running shards, so a
  // sharded run never oversubscribes the host relative to the single-engine
  // config it is compared against.
  const int shard_workers = std::max(1, cfg_.inter_batch_threads / nonempty);
  const int shard_preparers = std::max(1, cfg_.mode.prepare_threads / nonempty);

  // Each engine is constructed inside its shard's (optionally pinned)
  // thread: precomputed batch data gets first-touched on the shard's NUMA
  // node, which is the locality the pinning exists to exploit.
  std::vector<char> pinned(static_cast<std::size_t>(S), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) {
    if (plan_.shard_batches[static_cast<std::size_t>(s)].empty()) continue;
    threads.emplace_back([this, s, shard_workers, shard_preparers, &pinned] {
      if (scfg_.pin_numa && static_cast<std::size_t>(s) < cpu_slices_.size()) {
        pinned[static_cast<std::size_t>(s)] =
            affinity::pin_current_thread(
                cpu_slices_[static_cast<std::size_t>(s)])
                ? 1
                : 0;
      }
      EngineConfig ecfg = cfg_;
      ecfg.shard_batches = plan_.shard_batches[static_cast<std::size_t>(s)];
      ecfg.inter_batch_threads = shard_workers;
      ecfg.mode.prepare_threads = shard_preparers;
      if (depth_override_[static_cast<std::size_t>(s)] > 0) {
        ecfg.mode.pipeline_depth = depth_override_[static_cast<std::size_t>(s)];
      }
      engines_[static_cast<std::size_t>(s)] =
          std::make_unique<QgtcEngine>(*dataset_, ecfg);
    });
  }
  for (std::thread& t : threads) t.join();
  pinned_.assign(static_cast<std::size_t>(S), false);
  for (int s = 0; s < S; ++s) {
    pinned_[static_cast<std::size_t>(s)] = pinned[static_cast<std::size_t>(s)] != 0;
  }
}

EngineStats ShardedEngine::run_quantized(int rounds,
                                         std::vector<MatrixI32>* logits_out) {
  QGTC_CHECK(rounds >= 1, "rounds must be >= 1");
  const int S = plan_.num_shards;
  if (logits_out != nullptr) {
    logits_out->assign(static_cast<std::size_t>(num_batches()), MatrixI32{});
  }
  const store::FeatureSource features(dataset_->features);

  std::vector<EngineStats> shard_stats(static_cast<std::size_t>(S));
  std::vector<std::vector<MatrixI32>> local_logits(static_cast<std::size_t>(S));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) {
    if (engines_[static_cast<std::size_t>(s)] == nullptr) continue;
    threads.emplace_back([this, s, S, rounds, logits_out, &features,
                          &shard_stats, &local_logits] {
      QGTC_SPAN("shard", "run", {{"shard", s}});
      if (scfg_.pin_numa && static_cast<std::size_t>(s) < cpu_slices_.size()) {
        (void)affinity::pin_current_thread(
            cpu_slices_[static_cast<std::size_t>(s)]);
      }
      const std::vector<i64>& ids =
          plan_.shard_batches[static_cast<std::size_t>(s)];

      // Per-epoch halo movement: each of this shard's batches pulls its
      // foreign-owned feature rows through the modelled interconnect. One
      // pass = one epoch's traffic, matching the per-epoch normalisation of
      // every other EngineStats field.
      std::vector<double> wire(ids.size(), 0.0);
      i64 halo_nodes = 0, halo_bytes = 0;
      double wire_total = 0.0;
      {
        QGTC_SPAN("shard", "halo_exchange", {{"shard", s}});
        for (std::size_t k = 0; k < ids.size(); ++k) {
          const SubgraphBatch& b =
              global_batches_[static_cast<std::size_t>(ids[k])];
          const comm::HaloExchange::BatchHalo h = halo_->exchange(
              features, b.nodes, plan_.owner, s);
          wire[k] = h.wire_seconds;
          halo_nodes += h.halo_nodes;
          halo_bytes += h.bytes;
          wire_total += h.wire_seconds;
        }
      }

      EngineStats st = engines_[static_cast<std::size_t>(s)]->run_quantized(
          rounds, logits_out != nullptr ? &local_logits[static_cast<std::size_t>(s)]
                                        : nullptr);

      // Exposed-halo replay: the same two-engine overlap model streaming
      // transfers use, with each batch's compute slice estimated from its
      // node share of the shard's measured epoch.
      std::vector<double> compute(ids.size(), 0.0);
      i64 shard_nodes = 0;
      for (const i64 gid : ids) {
        shard_nodes += global_batches_[static_cast<std::size_t>(gid)].size();
      }
      if (shard_nodes > 0) {
        for (std::size_t k = 0; k < ids.size(); ++k) {
          const i64 n = global_batches_[static_cast<std::size_t>(ids[k])].size();
          compute[k] = st.forward_seconds * static_cast<double>(n) /
                       static_cast<double>(shard_nodes);
        }
      }
      st.shards = S;
      st.halo_nodes = halo_nodes;
      st.halo_bytes = halo_bytes;
      st.halo_wire_seconds = wire_total;
      st.exposed_halo_seconds = exposed_transfer_seconds(wire, compute);
      shard_stats[static_cast<std::size_t>(s)] = st;
    });
  }
  for (std::thread& t : threads) t.join();

  // Scatter shard-local logits back to their global batch slots — the
  // bit-parity surface against a single-engine run.
  if (logits_out != nullptr) {
    for (int s = 0; s < S; ++s) {
      const std::vector<i64>& ids =
          plan_.shard_batches[static_cast<std::size_t>(s)];
      std::vector<MatrixI32>& local = local_logits[static_cast<std::size_t>(s)];
      for (std::size_t k = 0; k < local.size(); ++k) {
        (*logits_out)[static_cast<std::size_t>(ids[k])] = std::move(local[k]);
      }
    }
  }

  // Per-shard reports + optional online depth adaptation for the next run.
  reports_.clear();
  reports_.reserve(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) {
    ShardReport rep;
    rep.shard = s;
    rep.pinned = pinned_[static_cast<std::size_t>(s)];
    rep.cpus = scfg_.pin_numa && static_cast<std::size_t>(s) < cpu_slices_.size()
                   ? static_cast<int>(cpu_slices_[static_cast<std::size_t>(s)].size())
                   : 0;
    if (engines_[static_cast<std::size_t>(s)] != nullptr) {
      const EngineStats& st = shard_stats[static_cast<std::size_t>(s)];
      rep.batches = st.batches;
      rep.nodes = st.nodes;
      rep.busy_seconds = st.forward_seconds;
      rep.stall_seconds = st.stage_breakdown.prepare.stall_seconds +
                          st.stage_breakdown.ship.stall_seconds +
                          st.stage_breakdown.compute.stall_seconds;
      rep.halo_nodes = st.halo_nodes;
      rep.halo_bytes = st.halo_bytes;
      rep.halo_wire_seconds = st.halo_wire_seconds;
      rep.exposed_halo_seconds = st.exposed_halo_seconds;
      rep.pipeline_depth = st.pipeline_depth;
      rep.stats = st;
      if (cfg_.mode.streaming()) {
        rep.suggested_depth = recommend_pipeline_depth(st.stage_breakdown,
                                                       st.pipeline_depth);
        if (scfg_.adapt_depth && rep.suggested_depth != st.pipeline_depth) {
          engines_[static_cast<std::size_t>(s)]->set_pipeline_depth(
              rep.suggested_depth);
          depth_override_[static_cast<std::size_t>(s)] = rep.suggested_depth;
        }
      }
    }
    reports_.push_back(std::move(rep));
  }

  // Deterministic merge: integer counters are order-independent sums over
  // shards (equal to the single-engine totals by the batch-subset
  // construction); the epoch wall time is the straggler shard's busy time
  // plus its un-overlapped halo bill.
  EngineStats merged;
  merged.shards = S;
  merged.streaming = cfg_.mode.streaming();
  for (int s = 0; s < S; ++s) {
    if (engines_[static_cast<std::size_t>(s)] == nullptr) continue;
    const EngineStats& st = shard_stats[static_cast<std::size_t>(s)];
    merged.forward_seconds =
        std::max(merged.forward_seconds,
                 st.forward_seconds + st.exposed_halo_seconds);
    merged.batches += st.batches;
    merged.nodes += st.nodes;
    merged.tiles_jumped += st.tiles_jumped;
    merged.bmma_ops += st.bmma_ops;
    merged.epilogue_fused_layers =
        std::max(merged.epilogue_fused_layers, st.epilogue_fused_layers);
    merged.int32_bytes_avoided += st.int32_bytes_avoided;
    merged.packed_bytes += st.packed_bytes;
    merged.packed_transfer_seconds += st.packed_transfer_seconds;
    merged.adj_bytes += st.adj_bytes;
    merged.exposed_transfer_seconds += st.exposed_transfer_seconds;
    merged.peak_prepared_bytes += st.peak_prepared_bytes;  // live concurrently
    merged.staging_capacity_bytes += st.staging_capacity_bytes;
    merged.prepare_bytes_read += st.prepare_bytes_read;
    merged.cache_hits += st.cache_hits;
    merged.cache_misses += st.cache_misses;
    merged.cache_evictions += st.cache_evictions;
    merged.cache_resident_bytes += st.cache_resident_bytes;
    merged.halo_nodes += st.halo_nodes;
    merged.halo_bytes += st.halo_bytes;
    merged.halo_wire_seconds += st.halo_wire_seconds;
    merged.exposed_halo_seconds += st.exposed_halo_seconds;
    merged.stage_breakdown.prepare += st.stage_breakdown.prepare;
    merged.stage_breakdown.ship += st.stage_breakdown.ship;
    merged.stage_breakdown.compute += st.stage_breakdown.compute;
    merged.backend = st.backend;
    merged.inter_batch_threads = st.inter_batch_threads;
    merged.pipeline_depth = std::max(merged.pipeline_depth, st.pipeline_depth);
    merged.prepare_threads = std::max(merged.prepare_threads, st.prepare_threads);
  }
  merged.vm_hwm_bytes = vm_hwm_bytes();
  return merged;
}

ImbalanceReport ShardedEngine::imbalance() const {
  ImbalanceReport rep;
  if (reports_.empty()) return rep;
  double total_busy = 0.0, total_exposed = 0.0;
  for (const ShardReport& r : reports_) {
    // Empty shards count with zero busy time: an idle shard IS the
    // imbalance signal (the skewed-plan test's whole surface).
    if (r.busy_seconds > rep.max_busy) {
      rep.max_busy = r.busy_seconds;
      rep.straggler = r.shard;
    }
    total_busy += r.busy_seconds;
    total_exposed += r.exposed_halo_seconds;
  }
  rep.mean_busy = total_busy / static_cast<double>(reports_.size());
  rep.max_over_mean = rep.mean_busy > 0.0 ? rep.max_busy / rep.mean_busy : 1.0;
  const double denom = total_busy + total_exposed;
  rep.halo_stall_share = denom > 0.0 ? total_exposed / denom : 0.0;
  return rep;
}

bool ShardedEngine::rebalance() {
  if (reports_.empty()) return false;
  const int S = plan_.num_shards;

  // Decompose each shard's measured busy time into per-batch cost estimates
  // (node-proportional split of the measurement); empty shards price batches
  // at the global mean cost per node, so batches can move onto them.
  std::vector<i64> shard_nodes(static_cast<std::size_t>(S), 0);
  for (int s = 0; s < S; ++s) {
    for (const i64 gid : plan_.shard_batches[static_cast<std::size_t>(s)]) {
      shard_nodes[static_cast<std::size_t>(s)] +=
          global_batches_[static_cast<std::size_t>(gid)].size();
    }
  }
  double total_busy = 0.0;
  i64 total_nodes = 0;
  for (const ShardReport& r : reports_) {
    total_busy += r.busy_seconds;
    total_nodes += r.nodes;
  }
  if (total_busy <= 0.0 || total_nodes <= 0) return false;
  const double mean_cost_per_node =
      total_busy / static_cast<double>(total_nodes);

  std::vector<double> cost(global_batches_.size(), 0.0);
  std::vector<double> load(static_cast<std::size_t>(S), 0.0);
  for (int s = 0; s < S; ++s) {
    const double per_node =
        shard_nodes[static_cast<std::size_t>(s)] > 0
            ? reports_[static_cast<std::size_t>(s)].busy_seconds /
                  static_cast<double>(shard_nodes[static_cast<std::size_t>(s)])
            : mean_cost_per_node;
    for (const i64 gid : plan_.shard_batches[static_cast<std::size_t>(s)]) {
      cost[static_cast<std::size_t>(gid)] =
          per_node *
          static_cast<double>(global_batches_[static_cast<std::size_t>(gid)].size());
      load[static_cast<std::size_t>(s)] += cost[static_cast<std::size_t>(gid)];
    }
  }

  ShardPlan next = plan_;
  bool moved = false;
  for (;;) {
    const auto max_it = std::max_element(load.begin(), load.end());
    const auto min_it = std::min_element(load.begin(), load.end());
    const int from = static_cast<int>(max_it - load.begin());
    const int to = static_cast<int>(min_it - load.begin());
    if (from == to) break;
    std::vector<i64>& donor = next.shard_batches[static_cast<std::size_t>(from)];
    if (donor.size() <= 1) break;  // never empty a shard below one batch
    // Cheapest batch on the straggler: the smallest move that can help.
    std::size_t pick = 0;
    for (std::size_t k = 1; k < donor.size(); ++k) {
      if (cost[static_cast<std::size_t>(donor[k])] <
          cost[static_cast<std::size_t>(donor[pick])]) {
        pick = k;
      }
    }
    const i64 gid = donor[pick];
    const double c = cost[static_cast<std::size_t>(gid)];
    const double new_max =
        std::max(*max_it - c, *min_it + c);  // other shards unchanged, < *max_it
    if (new_max >= *max_it) break;           // no improving move left
    donor.erase(donor.begin() + static_cast<std::ptrdiff_t>(pick));
    next.shard_batches[static_cast<std::size_t>(to)].push_back(gid);
    std::sort(next.shard_batches[static_cast<std::size_t>(to)].begin(),
              next.shard_batches[static_cast<std::size_t>(to)].end());
    next.batch_shard[static_cast<std::size_t>(gid)] = to;
    load[static_cast<std::size_t>(from)] -= c;
    load[static_cast<std::size_t>(to)] += c;
    moved = true;
  }
  if (!moved) return false;
  set_plan(std::move(next));
  return true;
}

}  // namespace qgtc::core
