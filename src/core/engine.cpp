#include "core/engine.hpp"

#include <algorithm>
#include <deque>

#include "common/mem.hpp"
#include "common/timer.hpp"
#include "core/pipeline.hpp"
#include "parallel/parallel_for.hpp"

namespace qgtc::core {

QgtcEngine::QgtcEngine(const Dataset& dataset, const EngineConfig& cfg)
    : cfg_(cfg), dataset_(&dataset) {
  QGTC_CHECK(cfg.model.in_dim == dataset.spec.feature_dim,
             "model in_dim must match dataset feature dim");
  QGTC_CHECK(cfg.model.out_dim == dataset.spec.num_classes,
             "model out_dim must match dataset class count");
  QGTC_CHECK(cfg.mode.pipeline_depth >= 1, "pipeline_depth must be >= 1");
  QGTC_CHECK(cfg.mode.prepare_threads >= 1, "prepare_threads must be >= 1");

  const PartitionResult parts =
      partition_graph(dataset.graph, cfg.num_partitions, {});
  batches_ = make_batches(parts, cfg.batch_size);

  model_ = gnn::QgtcModel::create(cfg.model, cfg.seed);

  // Calibration is hoisted ahead of any epoch pipeline: the representative
  // batch is prepared first and fixes the requantization shifts (§4.5's
  // fused epilogue needs them before inference). prepare_batch does not
  // depend on calibration state, so hoisting preserves bit-identity — and
  // streaming mode needs the shifts before its first compute stage runs.
  if (!batches_.empty()) {
    BatchData front = prepare_batch(0, /*build_fp32_csr=*/!cfg.mode.streaming());
    {
      QGTC_SPAN("engine", "calibrate", {{"nodes", front.batch.size()}});
      if (cfg.mode.sparse_adj()) {
        model_.calibrate(front.adj_tiles, front.features);
      } else {
        model_.calibrate(front.adj, front.features);
      }
    }
    if (!cfg.mode.streaming()) {
      // Precomputed mode materialises the whole epoch up front (untimed
      // preprocessing); the calibration batch is reused as batch 0.
      data_.reserve(batches_.size());
      data_.push_back(std::move(front));
      for (i64 i = 1; i < num_batches(); ++i) {
        data_.push_back(prepare_batch(i));
      }
    }
  }
}

QgtcEngine::BatchData QgtcEngine::prepare_batch(i64 i,
                                                bool build_fp32_csr) const {
  QGTC_CHECK(i >= 0 && i < num_batches(), "batch index out of range");
  return prepare_subgraph(batches_[static_cast<std::size_t>(i)],
                          build_fp32_csr);
}

QgtcEngine::BatchData QgtcEngine::prepare_subgraph(const SubgraphBatch& batch,
                                                   bool build_fp32_csr) const {
  BatchData bd;
  static_cast<PreparedBatch&>(bd) = prepare_batch_data(
      dataset_->graph, dataset_->features, batch, cfg_.mode.sparse_adj(),
      /*add_self_loops=*/true, build_fp32_csr);
  bd.x_planes = model_.prepare_input(bd.features);
  return bd;
}

void QgtcEngine::set_execution(tcsim::BackendKind backend,
                               int inter_batch_threads) {
  QGTC_CHECK(inter_batch_threads >= 1, "inter_batch_threads must be >= 1");
  cfg_.backend = backend;
  cfg_.inter_batch_threads = inter_batch_threads;
}

namespace {
/// Worker count actually usable for an epoch: no more workers than batches.
int epoch_workers(int requested, i64 batches) {
  return static_cast<int>(std::clamp<i64>(requested, 1, std::max<i64>(batches, 1)));
}

/// Execution-setup stamp shared by both run paths.
void stamp_execution(EngineStats& stats, const EngineConfig& cfg, int workers) {
  stats.backend = tcsim::backend_name(cfg.backend);
  stats.inter_batch_threads = workers;
  stats.streaming = cfg.mode.streaming();
  stats.pipeline_depth = cfg.mode.streaming() ? cfg.mode.pipeline_depth : 0;
  stats.vm_hwm_bytes = vm_hwm_bytes();
}
}  // namespace

transfer::PackedSubgraph pack_prepared_batch(const QgtcEngine::BatchData& bd,
                                             bool sparse_adj,
                                             transfer::StagingBuffer& slot,
                                             const transfer::PcieModel& pcie) {
  return sparse_adj
             ? transfer::pack_batch_tiles(bd.adj_tiles, bd.x_planes, slot, pcie)
             : transfer::pack_batch(bd.adj, bd.x_planes, slot, pcie);
}

EngineStats QgtcEngine::run_quantized(int rounds,
                                      std::vector<MatrixI32>* logits_out) {
  QGTC_CHECK(rounds >= 1, "rounds must be >= 1");
  if (logits_out != nullptr) {
    logits_out->assign(static_cast<std::size_t>(num_batches()), MatrixI32{});
  }
  return cfg_.mode.streaming() ? run_quantized_streaming(rounds, logits_out)
                        : run_quantized_precomputed(rounds, logits_out);
}

EngineStats QgtcEngine::run_quantized_precomputed(
    int rounds, std::vector<MatrixI32>* logits_out) {
  EngineStats stats;
  stats.batches = num_batches();
  const int workers = epoch_workers(cfg_.inter_batch_threads, num_batches());

  // One private-counter context per worker. Every batch's substrate
  // accounting lands in exactly one context; the post-epoch merge is a sum
  // over contexts, so totals are independent of which worker ran which
  // batch (and of `workers` itself).
  std::deque<tcsim::ExecutionContext> ctxs;
  for (int w = 0; w < workers; ++w) {
    ctxs.emplace_back(cfg_.backend, /*private_counters=*/true);
  }
  const auto epoch = [&] {
    parallel_for_workers(0, num_batches(), workers, [&](i64 i, int w) {
      QGTC_SPAN("compute", "batch", {{"batch", i}, {"worker", w}});
      const BatchData& bd = data_[static_cast<std::size_t>(i)];
      tcsim::ExecutionContext& ctx = ctxs[static_cast<std::size_t>(w)];
      MatrixI32 logits =
          cfg_.mode.sparse_adj()
              ? model_.forward_prepared(bd.adj_tiles, bd.x_planes,
                                        /*stats=*/nullptr, &ctx)
              : model_.forward_prepared(bd.adj, &bd.tile_map, bd.x_planes,
                                        /*stats=*/nullptr, &ctx);
      if (logits_out != nullptr) {
        (*logits_out)[static_cast<std::size_t>(i)] = std::move(logits);
      }
    });
  };

  // Warm-up epoch (first-touch allocation, per-worker arena growth).
  epoch();
  for (auto& ctx : ctxs) ctx.reset_counters();

  Timer t;
  for (int r = 0; r < rounds; ++r) {
    QGTC_SPAN("engine", "epoch", {{"round", r}, {"batches", stats.batches}});
    epoch();
  }
  stats.forward_seconds = t.seconds() / rounds;

  for (const BatchData& bd : data_) {
    stats.nodes += bd.batch.size();
    stats.peak_prepared_bytes += bd.prepared_bytes();  // whole epoch resident
  }
  tcsim::Counters total;
  for (const auto& ctx : ctxs) total += ctx.counters();
  stats.tiles_jumped = static_cast<i64>(total.tiles_jumped) / rounds;
  stats.bmma_ops = static_cast<i64>(total.bmma_ops) / rounds;
  stats.epilogue_fused_layers = model_.fused_stage_count();
  stats.int32_bytes_avoided = static_cast<i64>(total.int32_bytes_avoided) / rounds;
  stamp_execution(stats, cfg_, workers);
  return stats;
}

EngineStats QgtcEngine::run_quantized_streaming(
    int rounds, std::vector<MatrixI32>* logits_out) {
  EngineStats stats;
  stats.batches = num_batches();
  const int workers = epoch_workers(cfg_.inter_batch_threads, num_batches());
  const int preparers = epoch_workers(cfg_.mode.prepare_threads, num_batches());
  stats.prepare_threads = preparers;

  std::deque<tcsim::ExecutionContext> ctxs;
  for (int w = 0; w < workers; ++w) {
    ctxs.emplace_back(cfg_.backend, /*private_counters=*/true);
  }

  const transfer::PcieModel pcie;
  StreamEpochConfig pcfg;
  pcfg.num_batches = num_batches();
  pcfg.depth = cfg_.mode.pipeline_depth;
  pcfg.prepare_workers = preparers;
  pcfg.compute_workers = workers;
  // The ring outlives the per-epoch pipeline so the warm-up epoch grows the
  // staging slots once and timed epochs reuse their capacity.
  transfer::StagingRing ring(2);

  const auto epoch = [&] {
    return run_stream_epoch<BatchData>(
        pcfg, ring,
        /*prepare=*/
        [&](i64 i) { return prepare_batch(i, /*build_fp32_csr=*/false); },
        /*bytes=*/
        [](const BatchData& bd) { return bd.prepared_bytes(); },
        /*ship=*/
        [&](BatchData& bd, transfer::StagingBuffer& slot) {
          return pack_prepared_batch(bd, cfg_.mode.sparse_adj(), slot, pcie);
        },
        /*compute=*/
        [&](const BatchData& bd, i64 i, int w) {
          tcsim::ExecutionContext& ctx = ctxs[static_cast<std::size_t>(w)];
          MatrixI32 logits =
              cfg_.mode.sparse_adj()
                  ? model_.forward_prepared(bd.adj_tiles, bd.x_planes,
                                            /*stats=*/nullptr, &ctx)
                  : model_.forward_prepared(bd.adj, &bd.tile_map, bd.x_planes,
                                            /*stats=*/nullptr, &ctx);
          if (logits_out != nullptr) {
            (*logits_out)[static_cast<std::size_t>(i)] = std::move(logits);
          }
        });
  };

  // Warm-up epoch (arena growth, staging-slot capacity, OS page faults),
  // mirroring the precomputed timing protocol.
  (void)epoch();
  for (auto& ctx : ctxs) ctx.reset_counters();

  for (int r = 0; r < rounds; ++r) {
    QGTC_SPAN("engine", "epoch", {{"round", r}, {"batches", stats.batches}});
    const StreamEpochStats es = epoch();
    stats.forward_seconds += es.epoch_seconds;
    stats.packed_bytes += es.packed_bytes;
    stats.adj_bytes += es.adj_bytes;
    stats.packed_transfer_seconds += es.wire_seconds;
    stats.exposed_transfer_seconds += es.exposed_seconds;
    stats.peak_prepared_bytes =
        std::max(stats.peak_prepared_bytes, es.peak_prepared_bytes);
    stats.staging_capacity_bytes =
        std::max(stats.staging_capacity_bytes, es.staging_capacity_bytes);
    stats.stage_breakdown.prepare += es.prepare_stage;
    stats.stage_breakdown.ship += es.ship_stage;
    stats.stage_breakdown.compute += es.compute_stage;
  }
  stats.forward_seconds /= rounds;
  stats.packed_bytes /= rounds;
  stats.adj_bytes /= rounds;
  stats.packed_transfer_seconds /= rounds;
  stats.exposed_transfer_seconds /= rounds;
  const auto avg_stage = [&](obs::StageBreakdown& s) {
    s.busy_seconds /= rounds;
    s.stall_seconds /= rounds;
  };
  avg_stage(stats.stage_breakdown.prepare);
  avg_stage(stats.stage_breakdown.ship);
  avg_stage(stats.stage_breakdown.compute);

  for (const SubgraphBatch& b : batches_) stats.nodes += b.size();
  tcsim::Counters total;
  for (const auto& ctx : ctxs) total += ctx.counters();
  stats.tiles_jumped = static_cast<i64>(total.tiles_jumped) / rounds;
  stats.bmma_ops = static_cast<i64>(total.bmma_ops) / rounds;
  stats.epilogue_fused_layers = model_.fused_stage_count();
  stats.int32_bytes_avoided = static_cast<i64>(total.int32_bytes_avoided) / rounds;
  stamp_execution(stats, cfg_, workers);
  return stats;
}

EngineStats QgtcEngine::run_fp32(int rounds) {
  QGTC_CHECK(rounds >= 1, "rounds must be >= 1");
  EngineStats stats;
  stats.batches = num_batches();
  const int workers = epoch_workers(cfg_.inter_batch_threads, num_batches());
  stats.inter_batch_threads = workers;
  stats.streaming = cfg_.mode.streaming();
  const auto epoch = [&] {
    parallel_for_workers(0, num_batches(), workers, [&](i64 i, int) {
      if (cfg_.mode.streaming()) {
        // Bounded memory: each worker builds only the fp32 inputs its batch
        // needs and drops them at the end of the iteration.
        const SubgraphBatch& b = batches_[static_cast<std::size_t>(i)];
        const CsrGraph local =
            build_batch_csr(dataset_->graph, b, /*add_self_loops=*/true);
        const MatrixF features = gather_rows(dataset_->features, b.nodes);
        (void)model_.forward_fp32(local, features);
      } else {
        const BatchData& bd = data_[static_cast<std::size_t>(i)];
        (void)model_.forward_fp32(bd.local, bd.features);
      }
    });
  };
  epoch();
  Timer t;
  for (int r = 0; r < rounds; ++r) epoch();
  stats.forward_seconds = t.seconds() / rounds;
  for (const SubgraphBatch& b : batches_) stats.nodes += b.size();
  return stats;
}

EngineStats QgtcEngine::transfer_accounting() const {
  EngineStats stats;
  stats.batches = num_batches();
  stats.streaming = cfg_.mode.streaming();
  transfer::PcieModel pcie;
  transfer::StagingBuffer staging;
  // Packed path: 1-bit adjacency + s-bit embedding planes as one compound
  // object, shipping the *prepared* input planes byte-for-byte (the host
  // quantizes and decomposes exactly once, in prepare_batch — nothing is
  // re-derived here). Sparse mode ships the tile-CSR instead of the dense
  // bit plane.
  const auto account = [&](const BatchData& bd) {
    const auto packed = pack_prepared_batch(bd, cfg_.mode.sparse_adj(), staging, pcie);
    stats.packed_bytes += packed.total_bytes;
    stats.packed_transfer_seconds += packed.modeled_seconds;
    stats.adj_bytes += packed.adjacency_bytes;

    const auto dense = transfer::dense_fp32_baseline(
        bd.batch.size(), dataset_->spec.feature_dim, pcie);
    stats.dense_bytes += dense.total_bytes;
    stats.dense_transfer_seconds += dense.modeled_seconds;
  };
  if (cfg_.mode.streaming()) {
    // One batch resident at a time — accounting stays inside the streaming
    // memory budget (the fp32-only CSR is not part of the packed payload).
    for (i64 i = 0; i < num_batches(); ++i) {
      account(prepare_batch(i, /*build_fp32_csr=*/false));
    }
  } else {
    for (const BatchData& bd : data_) account(bd);
  }
  return stats;
}

double QgtcEngine::nonzero_tile_ratio() const {
  // The tile-CSR knows its census structurally — no per-batch dense rescan.
  i64 total = 0, nonzero = 0;
  const auto census = [&](const TileSparseBitMatrix& tiles) {
    total += tiles.total_tiles();
    nonzero += tiles.nnz_tiles();
  };
  if (cfg_.mode.streaming()) {
    for (const SubgraphBatch& b : batches_) {
      census(build_batch_adjacency_tiles(dataset_->graph, b,
                                         /*add_self_loops=*/true));
    }
  } else {
    for (const BatchData& bd : data_) census(bd.adj_tiles);
  }
  return total == 0 ? 0.0
                    : static_cast<double>(nonzero) / static_cast<double>(total);
}

}  // namespace qgtc::core
