#include "core/engine.hpp"

#include <algorithm>
#include <deque>

#include "common/mem.hpp"
#include "common/timer.hpp"
#include "core/pipeline.hpp"
#include "parallel/parallel_for.hpp"

namespace qgtc::core {

QgtcEngine::QgtcEngine(const Dataset& dataset, const EngineConfig& cfg)
    : cfg_(cfg),
      dataset_(&dataset),
      spec_(dataset.spec),
      graph_(dataset.graph),
      features_(dataset.features) {
  init();
}

QgtcEngine::QgtcEngine(const store::DatasetStore& dstore,
                       const EngineConfig& cfg)
    : cfg_(cfg),
      dstore_(&dstore),
      spec_(dstore.spec()),
      graph_(dstore.graph()),
      features_(dstore.features()) {
  init();
}

void QgtcEngine::init() {
  QGTC_CHECK(cfg_.model.in_dim == spec_.feature_dim,
             "model in_dim must match dataset feature dim");
  QGTC_CHECK(cfg_.model.out_dim == spec_.num_classes,
             "model out_dim must match dataset class count");
  QGTC_CHECK(cfg_.mode.pipeline_depth >= 1, "pipeline_depth must be >= 1");
  QGTC_CHECK(cfg_.mode.prepare_threads >= 1, "prepare_threads must be >= 1");

  // The cache key's config half: anything that changes what prepare builds
  // for a given membership. (The cache is per-engine, so this is defensive —
  // it keeps keys unambiguous if entries ever move between engines.)
  u64 fp = 0xcbf29ce484222325ull;
  const auto mix = [&fp](u64 v) {
    fp ^= v;
    fp *= 0x100000001b3ull;
  };
  mix(static_cast<u64>(cfg_.mode.sparse_adj()));
  mix(cfg_.seed);
  mix(static_cast<u64>(cfg_.model.feat_bits));
  mix(static_cast<u64>(cfg_.model.weight_bits));
  mix(static_cast<u64>(cfg_.model.in_dim));
  cache_fingerprint_ = fp;
  cache_.set_budget(cfg_.cache_budget_bytes);

  batches_ = make_epoch_batches(graph_, cfg_);

  model_ = gnn::QgtcModel::create(cfg_.model, cfg_.seed);

  // Calibration is hoisted ahead of any epoch pipeline: the representative
  // batch is prepared first and fixes the requantization shifts (§4.5's
  // fused epilogue needs them before inference). prepare_batch does not
  // depend on calibration state, so hoisting preserves bit-identity — and
  // streaming mode needs the shifts before its first compute stage runs.
  if (!batches_.empty()) {
    // Always calibrate on GLOBAL batch 0, before any shard filter narrows
    // the batch list: every shard of a sharded run quantizes with the exact
    // shifts a single-engine run derives, which is what makes S-shard logits
    // bit-identical to 1-engine logits.
    BatchRef front =
        prepare_subgraph(batches_.front(),
                         /*build_fp32_csr=*/!cfg_.mode.streaming());
    {
      QGTC_SPAN("engine", "calibrate", {{"nodes", front->batch.size()}});
      if (cfg_.mode.sparse_adj()) {
        model_.calibrate(front->adj_tiles, front->features);
      } else {
        model_.calibrate(front->adj, front->features);
      }
    }

    // Shard filter: narrow to the listed global batch ids. Applied after
    // calibration so the filter changes only *which* batches run, never how
    // any batch is prepared or quantized.
    const bool front_is_batch0 =
        cfg_.shard_batches.empty() || cfg_.shard_batches.front() == 0;
    if (!cfg_.shard_batches.empty()) {
      std::vector<SubgraphBatch> sel;
      sel.reserve(cfg_.shard_batches.size());
      for (const i64 gid : cfg_.shard_batches) {
        QGTC_CHECK(gid >= 0 && gid < num_batches(),
                   "shard_batches id outside the global epoch batch list");
        sel.push_back(batches_[static_cast<std::size_t>(gid)]);
      }
      batches_ = std::move(sel);
    }

    if (!cfg_.mode.streaming()) {
      // Precomputed mode materialises the whole (filtered) epoch up front
      // (untimed preprocessing); the calibration batch is reused when it is
      // this engine's batch 0. The refs share ownership with the cache when
      // one is configured.
      data_.reserve(batches_.size());
      for (i64 i = 0; i < num_batches(); ++i) {
        if (i == 0 && front_is_batch0) {
          data_.push_back(front);
        } else {
          data_.push_back(prepare_batch(i));
        }
      }
    }
  }
}

std::vector<SubgraphBatch> make_epoch_batches(const CsrView& g,
                                              const EngineConfig& cfg) {
  const PartitionResult parts = partition_graph(g, cfg.num_partitions, {});
  return make_batches(parts, cfg.batch_size);
}

QgtcEngine::BatchRef QgtcEngine::prepare_batch(i64 i, bool build_fp32_csr,
                                               bool* cache_hit) const {
  QGTC_CHECK(i >= 0 && i < num_batches(), "batch index out of range");
  return prepare_subgraph(batches_[static_cast<std::size_t>(i)],
                          build_fp32_csr, cache_hit);
}

QgtcEngine::BatchRef QgtcEngine::prepare_subgraph(const SubgraphBatch& batch,
                                                  bool build_fp32_csr,
                                                  bool* cache_hit) const {
  if (cache_hit != nullptr) *cache_hit = false;
  const u32 needs =
      store::kCapPlanes | (build_fp32_csr ? store::kCapFp32Csr : 0u);
  if (cache_.enabled()) {
    if (BatchRef hit = cache_.lookup(batch, cache_fingerprint_, needs)) {
      if (cache_hit != nullptr) *cache_hit = true;
      return hit;
    }
  }
  auto bd = std::make_shared<BatchData>();
  static_cast<PreparedBatch&>(*bd) = prepare_batch_data(
      graph_, features_, batch, cfg_.mode.sparse_adj(),
      /*add_self_loops=*/true, build_fp32_csr);
  bd->x_planes = model_.prepare_input(bd->features);
  prepare_bytes_read_.fetch_add(
      batch.size() * spec_.feature_dim * static_cast<i64>(sizeof(float)),
      std::memory_order_relaxed);
  if (cache_.enabled()) {
    cache_.insert(batch, cache_fingerprint_, needs, bd->prepared_bytes(), bd);
  }
  return bd;
}

void QgtcEngine::stamp_cache_stats(EngineStats& stats,
                                   const store::BatchCacheStats& before,
                                   i64 bytes_before, int rounds) const {
  const store::BatchCacheStats after = cache_.stats();
  stats.cache_hits = (after.hits - before.hits) / rounds;
  stats.cache_misses = (after.misses - before.misses) / rounds;
  stats.cache_evictions = (after.evictions - before.evictions) / rounds;
  stats.cache_resident_bytes = after.resident_bytes;
  stats.prepare_bytes_read =
      (prepare_bytes_read() - bytes_before) / rounds;
  stats.mapped_bytes = mapped_bytes();
}

void QgtcEngine::set_execution(tcsim::BackendKind backend,
                               int inter_batch_threads) {
  QGTC_CHECK(inter_batch_threads >= 1, "inter_batch_threads must be >= 1");
  cfg_.backend = backend;
  cfg_.inter_batch_threads = inter_batch_threads;
}

void QgtcEngine::set_pipeline_depth(int depth) {
  QGTC_CHECK(depth >= 1, "pipeline_depth must be >= 1");
  cfg_.mode.pipeline_depth = depth;
}

namespace {
/// Worker count actually usable for an epoch: no more workers than batches.
int epoch_workers(int requested, i64 batches) {
  return static_cast<int>(std::clamp<i64>(requested, 1, std::max<i64>(batches, 1)));
}

/// Execution-setup stamp shared by both run paths.
void stamp_execution(EngineStats& stats, const EngineConfig& cfg, int workers) {
  stats.backend = tcsim::backend_name(cfg.backend);
  stats.inter_batch_threads = workers;
  stats.streaming = cfg.mode.streaming();
  stats.pipeline_depth = cfg.mode.streaming() ? cfg.mode.pipeline_depth : 0;
  stats.vm_hwm_bytes = vm_hwm_bytes();
}
}  // namespace

transfer::PackedSubgraph pack_prepared_batch(const QgtcEngine::BatchData& bd,
                                             bool sparse_adj,
                                             transfer::StagingBuffer& slot,
                                             const transfer::PcieModel& pcie) {
  return sparse_adj
             ? transfer::pack_batch_tiles(bd.adj_tiles, bd.x_planes, slot, pcie)
             : transfer::pack_batch(bd.adj, bd.x_planes, slot, pcie);
}

EngineStats QgtcEngine::run_quantized(int rounds,
                                      std::vector<MatrixI32>* logits_out) {
  QGTC_CHECK(rounds >= 1, "rounds must be >= 1");
  if (logits_out != nullptr) {
    logits_out->assign(static_cast<std::size_t>(num_batches()), MatrixI32{});
  }
  return cfg_.mode.streaming() ? run_quantized_streaming(rounds, logits_out)
                        : run_quantized_precomputed(rounds, logits_out);
}

EngineStats QgtcEngine::run_quantized_precomputed(
    int rounds, std::vector<MatrixI32>* logits_out) {
  EngineStats stats;
  stats.batches = num_batches();
  const int workers = epoch_workers(cfg_.inter_batch_threads, num_batches());

  // One private-counter context per worker. Every batch's substrate
  // accounting lands in exactly one context; the post-epoch merge is a sum
  // over contexts, so totals are independent of which worker ran which
  // batch (and of `workers` itself).
  std::deque<tcsim::ExecutionContext> ctxs;
  for (int w = 0; w < workers; ++w) {
    ctxs.emplace_back(cfg_.backend, /*private_counters=*/true);
  }
  const auto epoch = [&] {
    parallel_for_workers(0, num_batches(), workers, [&](i64 i, int w) {
      QGTC_SPAN("compute", "batch", {{"batch", i}, {"worker", w}});
      const BatchData& bd = *data_[static_cast<std::size_t>(i)];
      tcsim::ExecutionContext& ctx = ctxs[static_cast<std::size_t>(w)];
      MatrixI32 logits =
          cfg_.mode.sparse_adj()
              ? model_.forward_prepared(bd.adj_tiles, bd.x_planes,
                                        /*stats=*/nullptr, &ctx)
              : model_.forward_prepared(bd.adj, &bd.tile_map, bd.x_planes,
                                        /*stats=*/nullptr, &ctx);
      if (logits_out != nullptr) {
        (*logits_out)[static_cast<std::size_t>(i)] = std::move(logits);
      }
    });
  };

  // Warm-up epoch (first-touch allocation, per-worker arena growth).
  epoch();
  for (auto& ctx : ctxs) ctx.reset_counters();
  const store::BatchCacheStats cache0 = cache_.stats();
  const i64 bytes0 = prepare_bytes_read();

  Timer t;
  for (int r = 0; r < rounds; ++r) {
    QGTC_SPAN("engine", "epoch", {{"round", r}, {"batches", stats.batches}});
    epoch();
  }
  stats.forward_seconds = t.seconds() / rounds;
  stamp_cache_stats(stats, cache0, bytes0, rounds);

  for (const BatchRef& bd : data_) {
    stats.nodes += bd->batch.size();
    stats.peak_prepared_bytes += bd->prepared_bytes();  // whole epoch resident
  }
  tcsim::Counters total;
  for (const auto& ctx : ctxs) total += ctx.counters();
  stats.tiles_jumped = static_cast<i64>(total.tiles_jumped) / rounds;
  stats.bmma_ops = static_cast<i64>(total.bmma_ops) / rounds;
  stats.epilogue_fused_layers = model_.fused_stage_count();
  stats.int32_bytes_avoided = static_cast<i64>(total.int32_bytes_avoided) / rounds;
  stamp_execution(stats, cfg_, workers);
  return stats;
}

EngineStats QgtcEngine::run_quantized_streaming(
    int rounds, std::vector<MatrixI32>* logits_out) {
  EngineStats stats;
  stats.batches = num_batches();
  const int workers = epoch_workers(cfg_.inter_batch_threads, num_batches());
  const int preparers = epoch_workers(cfg_.mode.prepare_threads, num_batches());
  stats.prepare_threads = preparers;

  std::deque<tcsim::ExecutionContext> ctxs;
  for (int w = 0; w < workers; ++w) {
    ctxs.emplace_back(cfg_.backend, /*private_counters=*/true);
  }

  const transfer::PcieModel pcie;
  StreamEpochConfig pcfg;
  pcfg.num_batches = num_batches();
  pcfg.depth = cfg_.mode.pipeline_depth;
  pcfg.prepare_workers = preparers;
  pcfg.compute_workers = workers;
  // The ring outlives the per-epoch pipeline so the warm-up epoch grows the
  // staging slots once and timed epochs reuse their capacity.
  transfer::StagingRing ring(2);

  // A pipeline item is a shared ref into the cache (or a freshly-built
  // batch); `cached` steers the ship stage — a hit's payload is already
  // device-resident, so nothing is packed or charged to the wire.
  struct StreamItem {
    BatchRef bd;
    bool cached = false;
  };
  const auto epoch = [&] {
    return run_stream_epoch<StreamItem>(
        pcfg, ring,
        /*prepare=*/
        [&](i64 i) {
          StreamItem item;
          item.bd = prepare_batch(i, /*build_fp32_csr=*/false, &item.cached);
          return item;
        },
        /*bytes=*/
        [](const StreamItem& item) {
          // Cache hits add no pipeline residency beyond the cache itself
          // (reported separately as cache_resident_bytes).
          return item.cached ? 0 : item.bd->prepared_bytes();
        },
        /*ship=*/
        [&](StreamItem& item, transfer::StagingBuffer& slot) {
          if (item.cached) return transfer::resident_reuse();
          return pack_prepared_batch(*item.bd, cfg_.mode.sparse_adj(), slot,
                                     pcie);
        },
        /*compute=*/
        [&](const StreamItem& item, i64 i, int w) {
          const BatchData& bd = *item.bd;
          tcsim::ExecutionContext& ctx = ctxs[static_cast<std::size_t>(w)];
          MatrixI32 logits =
              cfg_.mode.sparse_adj()
                  ? model_.forward_prepared(bd.adj_tiles, bd.x_planes,
                                            /*stats=*/nullptr, &ctx)
                  : model_.forward_prepared(bd.adj, &bd.tile_map, bd.x_planes,
                                            /*stats=*/nullptr, &ctx);
          if (logits_out != nullptr) {
            (*logits_out)[static_cast<std::size_t>(i)] = std::move(logits);
          }
        });
  };

  // Warm-up epoch (arena growth, staging-slot capacity, OS page faults),
  // mirroring the precomputed timing protocol. With a cache budget this is
  // also the fill epoch: timed rounds hit whatever it inserted.
  (void)epoch();
  for (auto& ctx : ctxs) ctx.reset_counters();
  const store::BatchCacheStats cache0 = cache_.stats();
  const i64 bytes0 = prepare_bytes_read();

  for (int r = 0; r < rounds; ++r) {
    QGTC_SPAN("engine", "epoch", {{"round", r}, {"batches", stats.batches}});
    const StreamEpochStats es = epoch();
    stats.forward_seconds += es.epoch_seconds;
    stats.packed_bytes += es.packed_bytes;
    stats.adj_bytes += es.adj_bytes;
    stats.packed_transfer_seconds += es.wire_seconds;
    stats.exposed_transfer_seconds += es.exposed_seconds;
    stats.peak_prepared_bytes =
        std::max(stats.peak_prepared_bytes, es.peak_prepared_bytes);
    stats.staging_capacity_bytes =
        std::max(stats.staging_capacity_bytes, es.staging_capacity_bytes);
    stats.stage_breakdown.prepare += es.prepare_stage;
    stats.stage_breakdown.ship += es.ship_stage;
    stats.stage_breakdown.compute += es.compute_stage;
  }
  stats.forward_seconds /= rounds;
  stats.packed_bytes /= rounds;
  stats.adj_bytes /= rounds;
  stats.packed_transfer_seconds /= rounds;
  stats.exposed_transfer_seconds /= rounds;
  const auto avg_stage = [&](obs::StageBreakdown& s) {
    s.busy_seconds /= rounds;
    s.stall_seconds /= rounds;
  };
  avg_stage(stats.stage_breakdown.prepare);
  avg_stage(stats.stage_breakdown.ship);
  avg_stage(stats.stage_breakdown.compute);
  stamp_cache_stats(stats, cache0, bytes0, rounds);

  for (const SubgraphBatch& b : batches_) stats.nodes += b.size();
  tcsim::Counters total;
  for (const auto& ctx : ctxs) total += ctx.counters();
  stats.tiles_jumped = static_cast<i64>(total.tiles_jumped) / rounds;
  stats.bmma_ops = static_cast<i64>(total.bmma_ops) / rounds;
  stats.epilogue_fused_layers = model_.fused_stage_count();
  stats.int32_bytes_avoided = static_cast<i64>(total.int32_bytes_avoided) / rounds;
  stamp_execution(stats, cfg_, workers);
  return stats;
}

EngineStats QgtcEngine::run_fp32(int rounds) {
  QGTC_CHECK(rounds >= 1, "rounds must be >= 1");
  if (cfg_.mode.streaming()) return run_fp32_streaming(rounds);
  EngineStats stats;
  stats.batches = num_batches();
  const int workers = epoch_workers(cfg_.inter_batch_threads, num_batches());
  stats.inter_batch_threads = workers;
  stats.streaming = false;
  const auto epoch = [&] {
    parallel_for_workers(0, num_batches(), workers, [&](i64 i, int) {
      const BatchData& bd = *data_[static_cast<std::size_t>(i)];
      (void)model_.forward_fp32(bd.local, bd.features);
    });
  };
  epoch();
  Timer t;
  for (int r = 0; r < rounds; ++r) epoch();
  stats.forward_seconds = t.seconds() / rounds;
  for (const SubgraphBatch& b : batches_) stats.nodes += b.size();
  return stats;
}

EngineStats QgtcEngine::run_fp32_streaming(int rounds) {
  // The DGL-substitute baseline rides the SAME staged executor as the
  // quantized path (prepare workers -> ship -> compute workers over bounded
  // queues), so the comparison stays symmetric: both pay the pipeline's
  // coordination costs and both charge their transfer model inline. It does
  // NOT consult the BatchCache — prepared-batch reuse is this system's
  // optimisation, not the baseline's.
  EngineStats stats;
  stats.batches = num_batches();
  const int workers = epoch_workers(cfg_.inter_batch_threads, num_batches());
  const int preparers =
      epoch_workers(cfg_.mode.prepare_threads, num_batches());
  stats.inter_batch_threads = workers;
  stats.streaming = true;
  stats.pipeline_depth = cfg_.mode.pipeline_depth;
  stats.prepare_threads = preparers;

  const transfer::PcieModel pcie;
  StreamEpochConfig pcfg;
  pcfg.num_batches = num_batches();
  pcfg.depth = cfg_.mode.pipeline_depth;
  pcfg.prepare_workers = preparers;
  pcfg.compute_workers = workers;
  transfer::StagingRing ring(2);

  struct Fp32Item {
    CsrGraph local;
    MatrixF features;
  };
  const auto epoch = [&] {
    return run_stream_epoch<Fp32Item>(
        pcfg, ring,
        /*prepare=*/
        [&](i64 i) {
          const SubgraphBatch& b = batches_[static_cast<std::size_t>(i)];
          Fp32Item item;
          item.local = build_batch_csr(graph_, b, /*add_self_loops=*/true);
          item.features = features_.gather(b.nodes);
          return item;
        },
        /*bytes=*/
        [](const Fp32Item& item) {
          return item.features.size() * static_cast<i64>(sizeof(float)) +
                 static_cast<i64>(item.local.row_ptr().size() * sizeof(i64)) +
                 static_cast<i64>(item.local.col_idx().size() * sizeof(i32));
        },
        /*ship=*/
        [&](Fp32Item& item, transfer::StagingBuffer&) {
          // Modelled dense fp32 transfer (adjacency + standalone embedding),
          // charged inline; no staging copy — the baseline has no compound
          // packed object to build.
          return transfer::dense_fp32_baseline(item.features.rows(),
                                               spec_.feature_dim, pcie);
        },
        /*compute=*/
        [&](const Fp32Item& item, i64, int) {
          (void)model_.forward_fp32(item.local, item.features);
        });
  };

  (void)epoch();  // warm-up, mirroring the quantized timing protocol
  for (int r = 0; r < rounds; ++r) {
    const StreamEpochStats es = epoch();
    stats.forward_seconds += es.epoch_seconds;
    stats.dense_bytes += es.packed_bytes;
    stats.dense_transfer_seconds += es.wire_seconds;
    stats.exposed_transfer_seconds += es.exposed_seconds;
    stats.peak_prepared_bytes =
        std::max(stats.peak_prepared_bytes, es.peak_prepared_bytes);
    stats.stage_breakdown.prepare += es.prepare_stage;
    stats.stage_breakdown.ship += es.ship_stage;
    stats.stage_breakdown.compute += es.compute_stage;
  }
  stats.forward_seconds /= rounds;
  stats.dense_bytes /= rounds;
  stats.dense_transfer_seconds /= rounds;
  stats.exposed_transfer_seconds /= rounds;
  const auto avg_stage = [&](obs::StageBreakdown& s) {
    s.busy_seconds /= rounds;
    s.stall_seconds /= rounds;
  };
  avg_stage(stats.stage_breakdown.prepare);
  avg_stage(stats.stage_breakdown.ship);
  avg_stage(stats.stage_breakdown.compute);
  for (const SubgraphBatch& b : batches_) stats.nodes += b.size();
  stats.vm_hwm_bytes = vm_hwm_bytes();
  return stats;
}

EngineStats QgtcEngine::transfer_accounting() const {
  EngineStats stats;
  stats.batches = num_batches();
  stats.streaming = cfg_.mode.streaming();
  const store::BatchCacheStats cache0 = cache_.stats();
  const i64 bytes0 = prepare_bytes_read();
  transfer::PcieModel pcie;
  transfer::StagingBuffer staging;
  // Packed path: 1-bit adjacency + s-bit embedding planes as one compound
  // object, shipping the *prepared* input planes byte-for-byte (the host
  // quantizes and decomposes exactly once, in prepare_batch — nothing is
  // re-derived here). Sparse mode ships the tile-CSR instead of the dense
  // bit plane.
  const auto account = [&](const BatchData& bd) {
    const auto packed = pack_prepared_batch(bd, cfg_.mode.sparse_adj(), staging, pcie);
    stats.packed_bytes += packed.total_bytes;
    stats.packed_transfer_seconds += packed.modeled_seconds;
    stats.adj_bytes += packed.adjacency_bytes;

    const auto dense = transfer::dense_fp32_baseline(
        bd.batch.size(), spec_.feature_dim, pcie);
    stats.dense_bytes += dense.total_bytes;
    stats.dense_transfer_seconds += dense.modeled_seconds;
  };
  if (cfg_.mode.streaming()) {
    // One batch resident at a time — accounting stays inside the streaming
    // memory budget (the fp32-only CSR is not part of the packed payload).
    // With a cache budget, batches a prior run inserted are not re-prepared.
    for (i64 i = 0; i < num_batches(); ++i) {
      account(*prepare_batch(i, /*build_fp32_csr=*/false));
    }
  } else {
    for (const BatchRef& bd : data_) account(*bd);
  }
  stamp_cache_stats(stats, cache0, bytes0, /*rounds=*/1);
  return stats;
}

double QgtcEngine::nonzero_tile_ratio() const {
  // The tile-CSR knows its census structurally — no per-batch dense rescan.
  i64 total = 0, nonzero = 0;
  const auto census = [&](const TileSparseBitMatrix& tiles) {
    total += tiles.total_tiles();
    nonzero += tiles.nnz_tiles();
  };
  if (cfg_.mode.streaming()) {
    for (const SubgraphBatch& b : batches_) {
      census(build_batch_adjacency_tiles(graph_, b,
                                         /*add_self_loops=*/true));
    }
  } else {
    for (const BatchRef& bd : data_) census(bd->adj_tiles);
  }
  return total == 0 ? 0.0
                    : static_cast<double>(nonzero) / static_cast<double>(total);
}

}  // namespace qgtc::core
