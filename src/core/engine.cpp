#include "core/engine.hpp"

#include <algorithm>
#include <deque>

#include "common/timer.hpp"
#include "kernels/zerotile.hpp"
#include "parallel/parallel_for.hpp"

namespace qgtc::core {

QgtcEngine::QgtcEngine(const Dataset& dataset, const EngineConfig& cfg)
    : cfg_(cfg), dataset_(&dataset) {
  QGTC_CHECK(cfg.model.in_dim == dataset.spec.feature_dim,
             "model in_dim must match dataset feature dim");
  QGTC_CHECK(cfg.model.out_dim == dataset.spec.num_classes,
             "model out_dim must match dataset class count");

  const PartitionResult parts =
      partition_graph(dataset.graph, cfg.num_partitions, {});
  batches_ = make_batches(parts, cfg.batch_size);

  model_ = gnn::QgtcModel::create(cfg.model, cfg.seed);

  data_.reserve(batches_.size());
  for (const SubgraphBatch& b : batches_) {
    BatchData bd;
    bd.batch = b;
    // The tile-CSR adjacency is always built — straight from the global CSR,
    // never through a dense intermediate. Dense mode derives its plane and
    // flag map from the tile-CSR (one edge walk total; the flag census is
    // structural, not a rescan).
    bd.adj_tiles =
        build_batch_adjacency_tiles(dataset.graph, b, /*add_self_loops=*/true);
    if (!cfg.sparse_adj) {
      bd.adj = bd.adj_tiles.to_bit_matrix();
      bd.tile_map = build_tile_map(bd.adj_tiles);
    }
    bd.local = build_batch_csr(dataset.graph, b, /*add_self_loops=*/true);
    bd.features = gather_rows(dataset.features, b.nodes);
    bd.x_planes = model_.prepare_input(bd.features);
    data_.push_back(std::move(bd));
  }

  // Requantization shifts come from one representative batch (§4.5's fused
  // epilogue needs them fixed before inference).
  if (!data_.empty()) {
    if (cfg.sparse_adj) {
      model_.calibrate(data_.front().adj_tiles, data_.front().features);
    } else {
      model_.calibrate(data_.front().adj, data_.front().features);
    }
  }
}

void QgtcEngine::set_execution(tcsim::BackendKind backend,
                               int inter_batch_threads) {
  QGTC_CHECK(inter_batch_threads >= 1, "inter_batch_threads must be >= 1");
  cfg_.backend = backend;
  cfg_.inter_batch_threads = inter_batch_threads;
}

namespace {
/// Worker count actually usable for an epoch: no more workers than batches.
int epoch_workers(int requested, i64 batches) {
  return static_cast<int>(std::clamp<i64>(requested, 1, std::max<i64>(batches, 1)));
}
}  // namespace

EngineStats QgtcEngine::run_quantized(int rounds) {
  QGTC_CHECK(rounds >= 1, "rounds must be >= 1");
  EngineStats stats;
  stats.batches = num_batches();
  const int workers = epoch_workers(cfg_.inter_batch_threads, num_batches());
  stats.backend = tcsim::backend_name(cfg_.backend);
  stats.inter_batch_threads = workers;

  // One private-counter context per worker. Every batch's substrate
  // accounting lands in exactly one context; the post-epoch merge is a sum
  // over contexts, so totals are independent of which worker ran which
  // batch (and of `workers` itself).
  std::deque<tcsim::ExecutionContext> ctxs;
  for (int w = 0; w < workers; ++w) {
    ctxs.emplace_back(cfg_.backend, /*private_counters=*/true);
  }
  const auto epoch = [&] {
    parallel_for_workers(0, num_batches(), workers, [&](i64 i, int w) {
      const BatchData& bd = data_[static_cast<std::size_t>(i)];
      tcsim::ExecutionContext& ctx = ctxs[static_cast<std::size_t>(w)];
      if (cfg_.sparse_adj) {
        (void)model_.forward_prepared(bd.adj_tiles, bd.x_planes,
                                      /*stats=*/nullptr, &ctx);
      } else {
        (void)model_.forward_prepared(bd.adj, &bd.tile_map, bd.x_planes,
                                      /*stats=*/nullptr, &ctx);
      }
    });
  };

  // Warm-up epoch (first-touch allocation, per-worker arena growth).
  epoch();
  for (auto& ctx : ctxs) ctx.reset_counters();

  Timer t;
  for (int r = 0; r < rounds; ++r) epoch();
  stats.forward_seconds = t.seconds() / rounds;

  for (const BatchData& bd : data_) stats.nodes += bd.batch.size();
  tcsim::Counters total;
  for (const auto& ctx : ctxs) total += ctx.counters();
  stats.tiles_jumped = static_cast<i64>(total.tiles_jumped) / rounds;
  stats.bmma_ops = static_cast<i64>(total.bmma_ops) / rounds;
  return stats;
}

EngineStats QgtcEngine::run_fp32(int rounds) {
  QGTC_CHECK(rounds >= 1, "rounds must be >= 1");
  EngineStats stats;
  stats.batches = num_batches();
  const int workers = epoch_workers(cfg_.inter_batch_threads, num_batches());
  stats.inter_batch_threads = workers;
  const auto epoch = [&] {
    parallel_for_workers(0, num_batches(), workers, [&](i64 i, int) {
      const BatchData& bd = data_[static_cast<std::size_t>(i)];
      (void)model_.forward_fp32(bd.local, bd.features);
    });
  };
  epoch();
  Timer t;
  for (int r = 0; r < rounds; ++r) epoch();
  stats.forward_seconds = t.seconds() / rounds;
  for (const BatchData& bd : data_) stats.nodes += bd.batch.size();
  return stats;
}

EngineStats QgtcEngine::transfer_accounting() const {
  EngineStats stats;
  stats.batches = num_batches();
  transfer::PcieModel pcie;
  transfer::StagingBuffer staging;
  for (const BatchData& bd : data_) {
    // Packed path: 1-bit adjacency + s-bit embedding planes as one compound
    // object. Sparse mode ships the tile-CSR (payload + indices) instead of
    // the dense bit plane.
    const QuantParams qp =
        quant_params_from_data(bd.features, cfg_.model.feat_bits);
    const MatrixI32 q = quantize_matrix(bd.features, qp);
    const auto planes = StackedBitTensor::decompose(
        q, cfg_.model.feat_bits, BitLayout::kColMajorK, PadPolicy::kTile8);
    const auto packed =
        cfg_.sparse_adj
            ? transfer::pack_batch_tiles(bd.adj_tiles, planes, staging, pcie)
            : transfer::pack_batch(bd.adj, planes, staging, pcie);
    stats.packed_bytes += packed.total_bytes;
    stats.packed_transfer_seconds += packed.modeled_seconds;
    stats.adj_bytes += packed.adjacency_bytes;

    const auto dense = transfer::dense_fp32_baseline(
        bd.batch.size(), dataset_->spec.feature_dim, pcie);
    stats.dense_bytes += dense.total_bytes;
    stats.dense_transfer_seconds += dense.modeled_seconds;
  }
  return stats;
}

double QgtcEngine::nonzero_tile_ratio() const {
  // The tile-CSR knows its census structurally — no per-batch dense rescan.
  i64 total = 0, nonzero = 0;
  for (const BatchData& bd : data_) {
    total += bd.adj_tiles.total_tiles();
    nonzero += bd.adj_tiles.nnz_tiles();
  }
  return total == 0 ? 0.0
                    : static_cast<double>(nonzero) / static_cast<double>(total);
}

}  // namespace qgtc::core
