// Online inference serving (the deployment shape of paper §6's batched
// inference): a long-lived ServingEngine owns one calibrated QgtcEngine and
// answers per-request ego-graph queries — seed nodes + fanout — instead of
// fixed offline epochs.
//
//   submit() --[admission BoundedQueue]--> batcher (coalesce)
//       --[BoundedQueue]--> prepare (P workers)
//       --[BoundedQueue]--> ship (1 worker, StagingRing + PcieModel)
//       --[BoundedQueue]--> compute (C workers, one api::Session each)
//
// The batcher coalesces admitted requests into *dynamic micro-batches* under
// a max_batch_nodes / max_batch_requests / max_wait_us policy: each request's
// ego-graph becomes one partition of a block-diagonal SubgraphBatch (the
// intra-partition-edges-only rule keeps requests independent inside the
// shared adjacency), so the micro-batch rides the exact offline prepare path
// (`QgtcEngine::prepare_subgraph` = `prepare_batch_data` +
// `QgtcModel::prepare_input`) and the streaming pipeline's ship/compute
// stages. A request served online is therefore bit-identical to the same
// batch membership run through the offline epoch path — the serving parity
// test surface.
//
// Failure is per-batch, not per-server: a request whose seeds are invalid
// fails its own future at admission; a micro-batch whose stage throws fails
// the futures of exactly its member requests and the pipeline keeps serving
// (see BoundedQueue::reset for the recovered-abort discipline this builds on).
#pragma once

#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "core/engine.hpp"
#include "core/pipeline.hpp"

namespace qgtc::core {

/// Micro-batch coalescing + pipeline staffing policy. The dispatch rule: a
/// batch goes out when adding the next request would exceed `max_batch_nodes`
/// or `max_batch_requests`, or when the oldest admitted request has waited
/// `max_wait_us` — the classic dynamic-batching latency/throughput dial.
struct ServingPolicy {
  /// Node budget per micro-batch (padded tiles grow with nodes; this bounds
  /// the adjacency/activation footprint of one dispatch).
  i64 max_batch_nodes = 4096;
  /// Request budget per micro-batch.
  i64 max_batch_requests = 64;
  /// Oldest-request wait bound before a partial batch dispatches anyway.
  i64 max_wait_us = 200;
  /// Stage staffing (see pipeline.hpp for the GPU analogy: prepare = host
  /// DataLoader threads, ship = copy engine, compute = device streams).
  int prepare_workers = 1;
  int compute_workers = 1;
  /// Admission queue capacity: submit() blocks past this backlog —
  /// open-loop overload turns into queueing delay, not unbounded memory.
  i64 admission_capacity = 256;
  /// Capacity of each inter-stage micro-batch queue.
  int queue_depth = 2;
};

/// One ego-graph inference request: `fanout`-hop BFS neighbourhood around
/// `seeds` (fanout 0 = exactly the listed nodes — the offline-parity shape).
/// `max_nodes > 0` truncates the expansion (admission control for hubs).
struct ServingRequest {
  std::vector<i32> seeds;
  int fanout = 0;
  i64 max_nodes = 0;
};

/// Per-request latency breakdown, all in seconds since submit().
struct RequestTiming {
  double queue_seconds = 0;  // submit -> micro-batch dispatch
  double total_seconds = 0;  // submit -> result ready (the client latency)
};

/// What a request's future resolves to.
struct ServingResult {
  /// The ego-graph's node ids (seeds first, then BFS discovery order) —
  /// logits row i is node `nodes[i]`.
  std::vector<i32> nodes;
  /// int32 logits, nodes.size() x out_dim, bit-identical to the offline
  /// epoch path for the same micro-batch membership.
  MatrixI32 logits;
  /// The micro-batch this request rode in (coalescing observability).
  i64 batch_nodes = 0;
  i64 batch_requests = 0;
  RequestTiming timing;
};

/// Server-lifetime accounting (monotonic; snapshot via stats()).
struct ServingStats {
  i64 requests_admitted = 0;
  i64 requests_completed = 0;
  i64 requests_failed = 0;
  i64 batches_dispatched = 0;
  i64 batch_nodes_total = 0;
  /// Dispatch-cause split: budget-full vs max_wait timeout flushes.
  i64 dispatches_full = 0;
  i64 dispatches_timeout = 0;
  /// Transfer accounting charged by the ship stage (PCIe model, §4.6).
  i64 packed_bytes = 0;
  double wire_seconds = 0;
  /// Micro-batches whose prepared payload was a BatchCache hit: the ship
  /// stage charged zero bytes / zero transfers (transfer::resident_reuse).
  i64 resident_reuse_batches = 0;
  /// Substrate counters summed over the compute workers' sessions.
  i64 bmma_ops = 0;
  i64 tiles_jumped = 0;
  /// Per-stage busy-vs-stall decomposition, summed over each stage's workers
  /// since server start. `batcher.busy` is time spent with an open micro-
  /// batch (the coalesce window); `batcher.stall` is idle time waiting for
  /// the first request of a batch plus downstream backpressure on dispatch
  /// (the prepare queue refusing the push). For prepare/ship/compute, busy is the
  /// stage body and stall is time blocked on inter-stage queues — exactly
  /// the queue-wait vs service-time split the latency tail debugging needs.
  obs::StageBreakdown batcher_stage;
  obs::StageBreakdown prepare_stage;
  obs::StageBreakdown ship_stage;
  obs::StageBreakdown compute_stage;
};

/// Long-lived serving engine. Construction builds and calibrates the
/// underlying QgtcEngine (the epoch mode is forced to streaming so no offline
/// epoch is materialised) and spins up the pipeline threads; stop() drains
/// and joins them (idempotent, also run by the destructor). submit() is
/// thread-safe.
class ServingEngine {
 public:
  ServingEngine(const Dataset& dataset, EngineConfig cfg,
                const ServingPolicy& policy);
  /// Out-of-core variant: serves straight off a mmap'd DatasetStore (which
  /// must outlive the server). Same pipeline, same cache, same parity.
  ServingEngine(const store::DatasetStore& dstore, EngineConfig cfg,
                const ServingPolicy& policy);
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Admits one request. The future fails with std::invalid_argument for bad
  /// seeds, and with whatever a pipeline stage threw if the request's
  /// micro-batch failed mid-flight. Throws std::runtime_error if the server
  /// is stopped.
  std::future<ServingResult> submit(ServingRequest req);

  /// Blocking convenience: submit + get.
  ServingResult infer(ServingRequest req);

  /// Closes admission, flushes every in-flight micro-batch, joins all stage
  /// threads. Pending requests still complete; new submits fail.
  void stop();

  [[nodiscard]] ServingStats stats() const;
  [[nodiscard]] const QgtcEngine& engine() const { return *engine_; }
  [[nodiscard]] const ServingPolicy& policy() const { return policy_; }

 private:
  struct Pending;
  struct MicroBatch;

  void validate_policy() const;
  /// Builds queues, sessions and stage threads around the already-constructed
  /// engine_ (shared tail of both constructors).
  void start(const EngineConfig& cfg);
  void batcher_loop();
  void prepare_loop();
  void ship_loop();
  void compute_loop(std::size_t worker);

  /// Dispatches `batch` downstream (or fails it if the server is aborting).
  void dispatch(MicroBatch&& batch, bool timed_out);
  /// Fails every member request of `batch` with `err` and keeps serving —
  /// per-batch failure isolation, not server death.
  void fail_batch(MicroBatch& batch, const std::exception_ptr& err);

  ServingPolicy policy_;
  std::unique_ptr<QgtcEngine> engine_;

  std::unique_ptr<BoundedQueue<Pending>> admission_;
  std::unique_ptr<BoundedQueue<MicroBatch>> prep_q_;
  std::unique_ptr<BoundedQueue<MicroBatch>> ship_q_;
  std::unique_ptr<BoundedQueue<MicroBatch>> compute_q_;

  transfer::StagingRing ring_{2};
  transfer::PcieModel pcie_;

  /// One context-pinned Session per compute worker — exactly the "one
  /// Session per stream" handle the api redesign introduces.
  std::deque<api::Session> sessions_;

  std::thread batcher_;
  std::vector<std::thread> preparers_;
  std::thread shipper_;
  std::vector<std::thread> computers_;
  bool started_ = false;
  bool stopped_ = false;
  std::mutex lifecycle_mu_;

  mutable std::mutex stats_mu_;
  ServingStats stats_;
};

/// Open-loop load-generation spec: arrivals are a Poisson process at
/// `target_qps` (exponential inter-arrival gaps from `seed`), submitted
/// without waiting for completions — the standard tail-latency protocol
/// (closed-loop clients hide queueing by self-throttling).
struct LoadSpec {
  i64 num_requests = 256;
  double target_qps = 500.0;
  /// Per-request shape: `seeds_per_request` random seed nodes + `fanout`-hop
  /// expansion, capped at `max_nodes`.
  int seeds_per_request = 4;
  int fanout = 1;
  i64 max_nodes = 512;
  u64 seed = 7;
};

/// What the load run measured.
struct LoadReport {
  i64 completed = 0;
  i64 failed = 0;
  double wall_seconds = 0;
  double sustained_qps = 0;  // completed / wall
  double offered_qps = 0;    // the spec's target
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double mean_batch_requests = 0;  // coalescing actually achieved
};

/// Drives `serving` with the open-loop Poisson client and reduces the
/// latency distribution to p50/p99/p999 + sustained QPS.
LoadReport run_poisson_load(ServingEngine& serving, const LoadSpec& spec);

}  // namespace qgtc::core
