// Staged streaming executor (paper §4.6 / §6 deployed as a pipeline): one
// epoch flows through three stages connected by bounded queues —
//
//   prepare (P workers) --[BoundedQueue, depth]--> ship (1 worker)
//        --[BoundedQueue, depth]--> compute (C workers)
//
// *prepare* builds a batch's data lazily from the global CSR + features,
// *ship* packs it into a double-buffered StagingRing slot and charges the
// PcieModel inline (on the timed path), *compute* runs the quantized forward
// pass. Peak resident memory is O(depth) prepared batches instead of
// O(epoch): a full prep queue blocks the producers until compute drains.
//
// The GPU analogy (see DESIGN.md substitution table): prepare workers are
// the host-side DataLoader threads, the ship worker is the copy engine
// feeding pinned buffers, compute workers are the device streams. Overlap
// accounting replays the epoch on a two-engine timeline (serial copy engine,
// serial compute engine) to report the modelled wire time that was NOT
// hidden behind compute (`exposed_transfer_seconds`).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "transfer/packing.hpp"

namespace qgtc::core {

/// Bounded multi-producer / multi-consumer queue connecting pipeline stages.
/// push() blocks while the queue is full; pop() blocks while it is empty.
/// close() ends the stream: pops drain the remaining items, then return
/// nullopt. abort() additionally drops pending items and fails in-flight
/// pushes — the shutdown-on-exception path, so a throwing stage never leaves
/// a peer blocked on a queue that will not move again.
///
/// Every blocking entry point reports the time it actually spent blocked
/// through an optional `blocked_seconds` out-param (0.0 on the uncontended
/// fast path, which skips the clock reads entirely). This is the stall half
/// of every stage's busy-vs-stall decomposition: callers previously could
/// not tell queue wait from service time without wrapping the queue in
/// their own timers.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : cap_(capacity) {
    QGTC_CHECK(capacity >= 1, "queue capacity must be >= 1");
  }

  /// False when the queue was closed/aborted before the item went in.
  /// `blocked_seconds` (optional) receives the time spent waiting for space.
  bool push(T&& v, double* blocked_seconds = nullptr) {
    std::unique_lock lock(mu_);
    if (blocked_seconds != nullptr) *blocked_seconds = 0.0;
    if (items_.size() >= cap_ && !closed_) {
      const Timer t;
      not_full_.wait(lock, [&] { return items_.size() < cap_ || closed_; });
      if (blocked_seconds != nullptr) *blocked_seconds = t.seconds();
    }
    if (closed_) return false;
    items_.push_back(std::move(v));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Outcome of a timed pop: an item, a timeout (queue still live), or the
  /// end of the stream (closed and drained / aborted).
  enum class PopStatus { kItem, kTimeout, kClosed };

  /// pop() with a deadline: waits up to `timeout_us` for an item, writing it
  /// into `out` on success. kTimeout means the queue is still open but
  /// nothing arrived in time — the serving batcher's max-wait dispatch edge.
  /// `blocked_seconds` receives the wait time (including a full timeout).
  PopStatus pop_for(i64 timeout_us, T& out, double* blocked_seconds = nullptr) {
    std::unique_lock lock(mu_);
    if (blocked_seconds != nullptr) *blocked_seconds = 0.0;
    if (items_.empty() && !closed_) {
      const Timer t;
      const bool ready =
          not_empty_.wait_for(lock, std::chrono::microseconds(timeout_us),
                              [&] { return !items_.empty() || closed_; });
      if (blocked_seconds != nullptr) *blocked_seconds = t.seconds();
      if (!ready) return PopStatus::kTimeout;
    }
    if (items_.empty()) return PopStatus::kClosed;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return PopStatus::kItem;
  }

  /// Nullopt when the stream ended (closed and drained, or aborted).
  /// `blocked_seconds` (optional) receives the time spent waiting for items.
  std::optional<T> pop(double* blocked_seconds = nullptr) {
    std::unique_lock lock(mu_);
    if (blocked_seconds != nullptr) *blocked_seconds = 0.0;
    if (items_.empty() && !closed_) {
      const Timer t;
      not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
      if (blocked_seconds != nullptr) *blocked_seconds = t.seconds();
    }
    if (items_.empty()) return std::nullopt;
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  /// No more pushes; pending items still drain through pop().
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Close and drop pending items (failure shutdown — nothing downstream
  /// should consume work from a broken epoch).
  void abort() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
      items_.clear();
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Reopens a closed or aborted queue for reuse, dropping any still-pending
  /// items. A long-lived server that aborted a poisoned epoch calls this to
  /// survive: the failure kills that epoch's items, not the queue — without
  /// it a single bad batch would leave every later push/pop returning
  /// end-of-stream forever.
  void reset() {
    {
      std::lock_guard lock(mu_);
      items_.clear();
      closed_ = false;
    }
    // Producers parked in push() re-check the (now open, empty) queue.
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t capacity() const { return cap_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
  std::deque<T> items_;
  std::size_t cap_;
  bool closed_ = false;
};

/// Overlap accounting: replays one epoch on the modelled two-engine timeline.
/// The copy engine executes the per-batch wire times serially; the compute
/// engine executes the measured per-batch compute times serially, and batch
/// i's compute cannot start before its transfer lands. The returned value is
/// the total time the compute engine sat idle waiting on a transfer — the
/// modelled wire time NOT hidden behind compute. In a healthy pipeline this
/// converges to ~the first batch's wire time; in a transfer-bound epoch it
/// approaches the full wire total.
double exposed_transfer_seconds(std::span<const double> wire_seconds,
                                std::span<const double> compute_seconds);

/// Stage worker layout of one streaming epoch.
struct StreamEpochConfig {
  i64 num_batches = 0;
  /// Capacity of each inter-stage queue: peak resident prepared batches is
  /// ~2*depth + workers (both queues full + items held by stage hands).
  int depth = 2;
  int prepare_workers = 1;
  int compute_workers = 1;
};

/// Per-epoch accounting the pipeline hands back to the engine.
struct StreamEpochStats {
  double epoch_seconds = 0;  // wall time, all three stages overlapped
  // Transfer accounting, charged inline by the ship stage.
  i64 packed_bytes = 0;
  i64 adj_bytes = 0;
  double wire_seconds = 0;     // total modelled PCIe time
  double exposed_seconds = 0;  // wire time not hidden behind compute
  double staging_seconds = 0;  // measured pack-into-slot memcpy time
  // Peak bytes of simultaneously-live prepared batches (the O(depth) bound)
  // plus the staging-ring allocation high-water.
  i64 peak_prepared_bytes = 0;
  i64 staging_capacity_bytes = 0;
  // Batches whose ship stage reported a device-resident payload
  // (transfer::resident_reuse() — BatchCache hits skipping pack + wire).
  i64 resident_reuse_batches = 0;
  // Per-stage busy-vs-stall decomposition, summed over each stage's workers
  // (so a stage's busy+stall can exceed epoch wall time when it has several
  // workers). Stall is time blocked on the inter-stage queues — a stalling
  // prepare stage means depth/workers are undersized, a stalling compute
  // stage means prepare or ship is the bottleneck.
  obs::StageBreakdown prepare_stage;
  obs::StageBreakdown ship_stage;
  obs::StageBreakdown compute_stage;
};

/// Runs one epoch through the three-stage pipeline. `ring` is the ship
/// stage's staging-slot ring; the caller owns it so its capacity survives
/// across epochs (the warm-up epoch grows the slots once, timed epochs
/// reuse them — the pinned-buffer discipline).
///
///   prepare(i)            -> Item            build batch i's data
///   bytes(item)           -> i64             resident size (peak accounting)
///   ship(item, slot)      -> PackedSubgraph  pack into a staging slot
///   compute(item, i, w)   -> void            forward pass on worker w
///
/// Item indices are handed to prepare in ascending order but may complete —
/// and therefore ship and compute — out of order; callers must not depend on
/// batch execution order (the engine's counters and logits are index-keyed).
/// If any stage throws, both queues abort, every worker unwinds, and the
/// first exception is rethrown here after all threads joined.
template <typename Item, typename PrepareFn, typename BytesFn,
          typename ShipFn, typename ComputeFn>
StreamEpochStats run_stream_epoch(const StreamEpochConfig& cfg,
                                  transfer::StagingRing& ring,
                                  PrepareFn&& prepare, BytesFn&& bytes,
                                  ShipFn&& ship, ComputeFn&& compute) {
  QGTC_CHECK(cfg.num_batches >= 0, "num_batches must be non-negative");
  QGTC_CHECK(cfg.depth >= 1, "pipeline depth must be >= 1");
  QGTC_CHECK(cfg.prepare_workers >= 1 && cfg.compute_workers >= 1,
             "stage worker counts must be >= 1");

  StreamEpochStats stats;
  if (cfg.num_batches == 0) return stats;
  const std::size_t n = static_cast<std::size_t>(cfg.num_batches);

  struct Slot {
    i64 index = 0;
    Item item;
  };
  BoundedQueue<Slot> prep_q(static_cast<std::size_t>(cfg.depth));
  BoundedQueue<Slot> ship_q(static_cast<std::size_t>(cfg.depth));

  std::atomic<i64> next_batch{0};
  std::atomic<i64> live_bytes{0};
  std::atomic<i64> peak_bytes{0};
  std::vector<double> wire(n, 0.0), comp(n, 0.0);

  std::mutex err_mu;
  std::exception_ptr first_error;
  const auto fail = [&](std::exception_ptr e) {
    {
      std::lock_guard lock(err_mu);
      if (!first_error) first_error = e;
    }
    prep_q.abort();
    ship_q.abort();
  };

  // Per-stage busy/stall accumulation: each worker sums locally, merges once
  // under a mutex at thread end — nothing shared on the per-batch path.
  std::mutex stage_mu;
  const auto merge_stage = [&](obs::StageBreakdown& into,
                               const obs::StageBreakdown& local) {
    std::lock_guard lock(stage_mu);
    into += local;
  };
  // Emits the stall half of the decomposition as a trace span (the busy half
  // is the stage-body span): `blocked` seconds ending now.
  const auto stall_span = [](const char* cat, const char* name,
                             double blocked) {
    if (blocked > 0.0) {
      const u64 dur = static_cast<u64>(blocked * 1e9);
      obs::emit_span(cat, name, obs::SpanSink::now_ns() - dur, dur);
    }
  };

  Timer epoch_timer;
  std::vector<std::thread> prepare_threads;
  prepare_threads.reserve(static_cast<std::size_t>(cfg.prepare_workers));
  for (int p = 0; p < cfg.prepare_workers; ++p) {
    prepare_threads.emplace_back([&] {
      obs::StageBreakdown local;
      try {
        for (;;) {
          const i64 i = next_batch.fetch_add(1, std::memory_order_relaxed);
          if (i >= cfg.num_batches) break;
          Timer busy;
          i64 sz = 0;
          Slot s{i, [&] {
                   QGTC_SPAN("prepare", "batch", {{"batch", i}});
                   return prepare(i);
                 }()};
          sz = bytes(s.item);
          local.busy_seconds += busy.seconds();
          const i64 live = live_bytes.fetch_add(sz, std::memory_order_relaxed) + sz;
          i64 peak = peak_bytes.load(std::memory_order_relaxed);
          while (live > peak &&
                 !peak_bytes.compare_exchange_weak(peak, live,
                                                   std::memory_order_relaxed)) {
          }
          double blocked = 0.0;
          const bool pushed = prep_q.push(std::move(s), &blocked);
          local.stall_seconds += blocked;
          stall_span("prepare", "stall.push", blocked);
          if (!pushed) break;  // aborted epoch
        }
      } catch (...) {
        fail(std::current_exception());
      }
      merge_stage(stats.prepare_stage, local);
    });
  }

  std::thread ship_thread([&] {
    obs::StageBreakdown local;
    try {
      for (;;) {
        double blocked = 0.0;
        std::optional<Slot> s = prep_q.pop(&blocked);
        local.stall_seconds += blocked;
        stall_span("ship", "stall.pop", blocked);
        if (!s.has_value()) break;
        Timer busy;
        const transfer::PackedSubgraph packed = [&] {
          QGTC_SPAN("ship", "batch", {{"batch", s->index}});
          return ship(s->item, ring.next());
        }();
        local.busy_seconds += busy.seconds();
        wire[static_cast<std::size_t>(s->index)] = packed.modeled_seconds;
        stats.packed_bytes += packed.total_bytes;
        stats.adj_bytes += packed.adjacency_bytes;
        stats.wire_seconds += packed.modeled_seconds;
        stats.staging_seconds += packed.staging_seconds;
        if (packed.transfers == 0) ++stats.resident_reuse_batches;
        blocked = 0.0;
        const bool pushed = ship_q.push(std::move(*s), &blocked);
        local.stall_seconds += blocked;
        stall_span("ship", "stall.push", blocked);
        if (!pushed) break;  // aborted epoch
      }
      stats.staging_capacity_bytes = ring.capacity_bytes();
      ship_q.close();
    } catch (...) {
      fail(std::current_exception());
    }
    merge_stage(stats.ship_stage, local);
  });

  std::vector<std::thread> compute_threads;
  compute_threads.reserve(static_cast<std::size_t>(cfg.compute_workers));
  for (int w = 0; w < cfg.compute_workers; ++w) {
    compute_threads.emplace_back([&, w] {
      obs::StageBreakdown local;
      try {
        for (;;) {
          double blocked = 0.0;
          std::optional<Slot> s = ship_q.pop(&blocked);
          local.stall_seconds += blocked;
          stall_span("compute", "stall.pop", blocked);
          if (!s.has_value()) break;
          Timer t;
          {
            QGTC_SPAN("compute", "batch",
                      {{"batch", s->index}, {"worker", w}});
            compute(s->item, s->index, w);
          }
          const double busy = t.seconds();
          comp[static_cast<std::size_t>(s->index)] = busy;
          local.busy_seconds += busy;
          live_bytes.fetch_sub(bytes(s->item), std::memory_order_relaxed);
          // `s` (and the prepared batch) dies here — O(depth) residency.
        }
      } catch (...) {
        fail(std::current_exception());
      }
      merge_stage(stats.compute_stage, local);
    });
  }

  for (std::thread& t : prepare_threads) t.join();
  prep_q.close();  // producers done: let the ship stage drain and finish
  ship_thread.join();
  for (std::thread& t : compute_threads) t.join();
  stats.epoch_seconds = epoch_timer.seconds();

  {
    std::lock_guard lock(err_mu);
    if (first_error) std::rethrow_exception(first_error);
  }

  stats.peak_prepared_bytes = peak_bytes.load(std::memory_order_relaxed);
  stats.exposed_seconds = exposed_transfer_seconds(wire, comp);
  return stats;
}

}  // namespace qgtc::core
