// NUMA-sharded scale-out of the QGTC engine. A multi-GPU QGTC deployment
// splits the partitioned graph across devices and exchanges boundary
// (halo) features over NVLink; this environment has neither, so the shard
// axis maps onto NUMA domains (or logical CPU slices): each shard owns a
// disjoint subset of the global epoch batches, runs its own QgtcEngine with
// workers pinned to its CPU slice, and pays a modelled interconnect for the
// feature rows its batches read from foreign-owned nodes
// (comm::HaloExchange — see DESIGN.md's substitution table).
//
// Determinism contract: sharding is a *batch-subset filter* over one shared
// global plan. Every shard engine partitions the same graph, builds the same
// global batch list, creates the same seeded model and calibrates on global
// batch 0, so per-batch logits and substrate counters are bit-identical to a
// single-engine run; the coordinator scatters logits back to global batch
// slots and merges counters as order-independent integer sums. An S-shard
// run therefore equals the 1-engine run bit-for-bit, with the speedup and
// the halo bill showing up only in the timing/traffic columns.
#pragma once

#include <memory>
#include <vector>

#include "comm/shard_channel.hpp"
#include "core/engine.hpp"

namespace qgtc::core {

/// The shard assignment: node ownership (for halo membership) plus the
/// global-batch -> shard mapping both the engines and the coordinator index
/// through. Built once by make_shard_plan, editable (set_plan / rebalance)
/// for skew experiments.
struct ShardPlan {
  int num_shards = 1;
  std::vector<i32> owner;                       // global node -> owning shard
  std::vector<std::vector<i64>> shard_batches;  // shard -> global batch ids
  std::vector<i64> batch_shard;                 // global batch id -> shard

  [[nodiscard]] i64 num_batches() const {
    return static_cast<i64>(batch_shard.size());
  }
};

/// Plans S shards over the global epoch batches of `cfg`: node ownership
/// comes from a coarse S-way METIS-substitute partition, and each batch goes
/// to the shard owning the plurality of its nodes (ties to the lowest shard
/// id). Deterministic in the graph + cfg.
ShardPlan make_shard_plan(const CsrView& g,
                          const std::vector<SubgraphBatch>& batches,
                          int num_shards);

struct ShardedConfig {
  int num_shards = 2;
  /// Pin each shard's thread (and its OpenMP team, via mask inheritance) to
  /// its affinity::shard_cpu_slices slice. Advisory — shards run unpinned
  /// wherever the platform cannot pin, and report `pinned=false`.
  bool pin_numa = false;
  /// The modelled cross-shard interconnect halo traffic is charged to.
  comm::InterconnectModel interconnect;
  /// Streaming mode only: after each run, retune every shard's pipeline
  /// depth from its stage stall telemetry (autotune::recommend_pipeline_depth)
  /// so the next run absorbs the suggestion online.
  bool adapt_depth = false;
};

/// Per-shard outcome of the last run (reporting surface for the CLI table,
/// bench JSON rows and the imbalance analysis).
struct ShardReport {
  int shard = 0;
  i64 batches = 0;
  i64 nodes = 0;
  double busy_seconds = 0.0;   // the shard engine's forward_seconds
  double stall_seconds = 0.0;  // summed stage stalls (streaming; 0 otherwise)
  i64 halo_nodes = 0;
  i64 halo_bytes = 0;
  double halo_wire_seconds = 0.0;
  double exposed_halo_seconds = 0.0;
  bool pinned = false;
  int cpus = 0;             // size of the shard's CPU slice (0 = unpinned)
  int pipeline_depth = 0;   // depth this run used (streaming)
  int suggested_depth = 0;  // telemetry-driven depth for the next run
  EngineStats stats;        // the shard engine's full per-run stats
};

/// Shard load-balance summary over the last run. `max_over_mean` is the
/// straggler amplification (1.0 = perfectly balanced; an epoch finishes when
/// the slowest shard does); `halo_stall_share` is the fraction of total
/// shard-seconds lost to exposed (un-overlapped) halo wire time.
struct ImbalanceReport {
  double max_busy = 0.0;
  double mean_busy = 0.0;
  double max_over_mean = 1.0;
  int straggler = 0;
  double halo_stall_share = 0.0;

  [[nodiscard]] bool skewed(double threshold = 1.5) const {
    return max_over_mean > threshold;
  }
};

class ShardedEngine {
 public:
  /// Plans the shards and constructs one QgtcEngine per non-empty shard.
  /// Engine construction happens inside each shard's (optionally pinned)
  /// thread, so precomputed batch data is first-touched on the shard's NUMA
  /// node. Worker budgets divide across shards: each shard engine gets
  /// max(1, inter_batch_threads / S) compute workers (same for preparers).
  ShardedEngine(const Dataset& dataset, const EngineConfig& cfg,
                const ShardedConfig& scfg);

  [[nodiscard]] const ShardPlan& plan() const { return plan_; }
  [[nodiscard]] int num_shards() const { return plan_.num_shards; }
  [[nodiscard]] i64 num_batches() const { return plan_.num_batches(); }

  /// Replaces the shard plan (same shard count, same global batch universe)
  /// and rebuilds the shard engines — the skew-experiment and rebalance
  /// entry point.
  void set_plan(ShardPlan plan);

  /// One sharded quantized run: every shard executes its batch subset
  /// concurrently (rounds epochs, same protocol as QgtcEngine) and exchanges
  /// its per-epoch halo features through the modelled interconnect.
  /// `logits_out`, when non-null, receives all `num_batches()` global
  /// batches' logits — bit-identical to a single-engine run_quantized.
  EngineStats run_quantized(int rounds = 1,
                            std::vector<MatrixI32>* logits_out = nullptr);

  /// Per-shard reports from the last run (empty before the first run).
  [[nodiscard]] const std::vector<ShardReport>& shard_reports() const {
    return reports_;
  }

  /// Load-balance summary of the last run.
  [[nodiscard]] ImbalanceReport imbalance() const;

  /// Telemetry-driven rebalance: greedily moves batches off the measured
  /// straggler shard onto the least-loaded shard while the predicted
  /// straggler time improves, then rebuilds the engines on the new plan.
  /// Returns false (and changes nothing) when there is no last run to learn
  /// from or no move helps.
  bool rebalance();

  /// The halo fabric (cumulative S x S traffic matrix across runs).
  [[nodiscard]] const comm::HaloExchange& halo() const { return *halo_; }

 private:
  void build_engines();

  const Dataset* dataset_ = nullptr;
  EngineConfig cfg_;
  ShardedConfig scfg_;
  ShardPlan plan_;
  std::vector<SubgraphBatch> global_batches_;
  std::vector<std::vector<int>> cpu_slices_;  // pin_numa only
  std::unique_ptr<comm::HaloExchange> halo_;
  std::vector<std::unique_ptr<QgtcEngine>> engines_;  // null for empty shards
  std::vector<bool> pinned_;
  std::vector<int> depth_override_;  // adapt_depth carry-over, 0 = none
  std::vector<ShardReport> reports_;
};

}  // namespace qgtc::core
