#include "core/autotune.hpp"

#include <algorithm>

#include "parallel/affinity.hpp"
#include "parallel/parallel_for.hpp"

namespace qgtc::core {

TunedConfig generate_runtime_config(const DatasetSpec& spec,
                                    const gnn::GnnConfig& model,
                                    const DeviceProfile& dev, bool sparse_adj,
                                    TuneObjective objective) {
  QGTC_CHECK(spec.num_nodes > 0, "dataset spec has no nodes");
  QGTC_CHECK(dev.target_partition_nodes > 0 && dev.parallel_units > 0 &&
                 dev.memory_bytes > 0,
             "device profile fields must be positive");
  TunedConfig t;
  t.objective = objective;
  t.mode.adjacency = sparse_adj ? RunMode::Adjacency::kTileSparse
                                : RunMode::Adjacency::kDenseJump;
  t.fuse_epilogue = true;
  t.activation = model.activation;

  // Partition count: aim for target_partition_nodes per subgraph, clamped to
  // a sane range (at least one partition per parallel unit so batching can
  // feed the device; at most one partition per 8 nodes so TC tiles are not
  // all padding).
  const i64 by_size = ceil_div(spec.num_nodes, dev.target_partition_nodes);
  t.num_partitions = std::clamp<i64>(by_size, dev.parallel_units,
                                     std::max<i64>(spec.num_nodes / 8, dev.parallel_units));

  // Batch size: grow until the packed batch (1-bit N_b^2 adjacency + s-bit
  // activations across the widest layer) would exceed a conservative slice
  // of device memory, or until a batch spans ~2x the parallel units.
  const i64 mem_budget = dev.memory_bytes / 4;  // leave room for weights/etc.
  const i64 avg_part_nodes = ceil_div(spec.num_nodes, t.num_partitions);
  const i64 widest_dim =
      std::max({spec.feature_dim, model.hidden_dim, model.out_dim});
  // The tile-sparse adjacency's block-diagonal batches store ~one dense
  // partition block per subgraph instead of the full nb x nb plane — that is
  // what lets batch sizes grow past the dense layout's memory wall. Batch
  // sizing must follow whichever layout the run will actually use.
  const auto adj_bits_estimate = [&](i64 parts_in_batch, i64 nb) {
    return t.mode.sparse_adj() ? parts_in_batch * pad8(avg_part_nodes) *
                                     pad128(avg_part_nodes)
                               : pad8(nb) * pad128(nb);
  };
  i64 batch = 1;
  while (batch < 2 * dev.parallel_units) {
    const i64 nb = avg_part_nodes * (batch + 1);
    const i64 adj_bits = adj_bits_estimate(batch + 1, nb);
    const i64 act_bits = pad8(nb) * pad128(widest_dim) *
                         static_cast<i64>(model.feat_bits);
    const i64 bytes = (adj_bits + act_bits) / 8;
    if (bytes > mem_budget) break;
    ++batch;
  }
  t.batch_size = std::min<i64>(batch, t.num_partitions);

  const i64 nb = avg_part_nodes * t.batch_size;
  t.batch_bytes_estimate =
      (adj_bits_estimate(t.batch_size, nb) +
       pad8(nb) * pad128(widest_dim) * static_cast<i64>(model.feat_bits)) /
      8;

  // Inter-batch workers: one per parallel unit until the epoch runs out of
  // batches (a worker without a batch is idle, not parallelism), capped at
  // the host's actual worker-thread count.
  const i64 batches_per_epoch =
      std::max<i64>(ceil_div(t.num_partitions, t.batch_size), 1);
  t.inter_batch_threads = static_cast<int>(std::clamp<i64>(
      std::min<i64>(dev.parallel_units, num_threads()), 1, batches_per_epoch));

  // Streaming pipeline knobs. Precomputed mode holds the whole epoch
  // resident; when that estimate exceeds the precompute budget, tuned runs
  // switch to the streaming executor and size its queues so the in-flight
  // window (~2*depth + workers batches, see pipeline.hpp) stays inside the
  // same budget.
  t.epoch_bytes_estimate = batches_per_epoch * t.batch_bytes_estimate;
  t.mode.epoch = t.epoch_bytes_estimate > mem_budget
                     ? RunMode::Epoch::kStreaming
                     : RunMode::Epoch::kPrecomputed;
  const i64 batches_in_budget =
      mem_budget / std::max<i64>(t.batch_bytes_estimate, 1);
  // Prepare workers: host threads not already staffing the compute stage,
  // capped — every prepare worker holds one fully-built batch while blocked
  // on a full queue, so oversubscribing prepare inflates the in-flight
  // window the depth bound below must cover.
  t.mode.prepare_threads = static_cast<int>(std::clamp<i64>(
      num_threads() - t.inter_batch_threads, 1,
      std::min<i64>(batches_per_epoch, 8)));
  // Queue depth: the peak in-flight window is ~2*depth + prepare_workers +
  // compute_workers + 1 batches (both queues full plus one batch in each
  // stage's hands — see pipeline.hpp). Solve that for the budget.
  const i64 depth = (batches_in_budget - t.mode.prepare_threads -
                     t.inter_batch_threads - 1) /
                    2;
  t.mode.pipeline_depth = static_cast<int>(
      std::clamp<i64>(depth, 1, std::min<i64>(batches_per_epoch, 8)));

  if (objective == TuneObjective::kLatency) {
    // Latency profile: the serving critical path is submit -> coalesce ->
    // prepare -> ship -> compute for ONE micro-batch, so depth beyond 1 only
    // adds a queue for a request to age in, and prepare (host-side batch
    // construction) dominates the per-request cost — staff it ahead of
    // compute. Micro-batches are sized well below the throughput batch so a
    // request never waits on a huge co-batch.
    t.mode.pipeline_depth = 1;
    const int workers = static_cast<int>(std::max<i64>(num_threads(), 2));
    t.mode.prepare_threads = std::max(workers - workers / 3, 1);
    t.inter_batch_threads = std::max(workers / 3, 1);
    t.serving.prepare_workers = t.mode.prepare_threads;
    t.serving.compute_workers = t.inter_batch_threads;
    t.serving.queue_depth = 1;
    // Node budget: a few partitions' worth per dispatch — enough coalescing
    // to amortise the forward pass, small enough that padding + co-batch
    // wait stay bounded.
    t.serving.max_batch_nodes =
        std::clamp<i64>(4 * avg_part_nodes, 256, 8192);
    t.serving.max_batch_requests = 64;
    t.serving.max_wait_us = 200;
  }

  // NUMA sharding: throughput epochs split across sockets when the host has
  // them; a single-node host with enough cores still gets two logical
  // shards (the coordinator halves each shard's worker budget, so this only
  // helps when there are cores to split). Latency runs keep one engine —
  // serving's micro-batches are too small to amortise a shard fan-out.
  if (objective == TuneObjective::kThroughput) {
    const affinity::Topology topo = affinity::detect_topology();
    i64 shards = 1;
    if (topo.num_nodes() > 1) {
      shards = topo.num_nodes();
      t.pin_numa = topo.from_sysfs;
    } else if (topo.total_cpus() >= 4) {
      shards = 2;
    }
    t.num_shards = static_cast<int>(
        std::clamp<i64>(shards, 1, batches_per_epoch));
    if (t.num_shards <= 1) t.pin_numa = false;
  }

  // Prepared-batch cache budget (cross-epoch reuse). Derived AFTER the
  // objective override so the footprint reflects the knobs the run will use.
  t.streaming_footprint_estimate =
      (2 * static_cast<i64>(t.mode.pipeline_depth) + t.mode.prepare_threads +
       t.inter_batch_threads + 1) *
      t.batch_bytes_estimate;
  if (t.mode.streaming()) {
    const i64 leftover = mem_budget - t.streaming_footprint_estimate;
    // A budget that cannot hold one batch degrades to pass-through — disable
    // it outright so the engine skips lookups too.
    t.cache_budget_bytes =
        leftover >= t.batch_bytes_estimate
            ? std::min<i64>(leftover, t.epoch_bytes_estimate)
            : 0;
  }
  return t;
}

void apply(const TunedConfig& tuned, EngineConfig& cfg) {
  cfg.num_partitions = tuned.num_partitions;
  cfg.batch_size = tuned.batch_size;
  cfg.inter_batch_threads = tuned.inter_batch_threads;
  cfg.mode = tuned.mode;
  cfg.cache_budget_bytes = tuned.cache_budget_bytes;
  cfg.model.fused_epilogue = tuned.fuse_epilogue;
  cfg.model.activation = tuned.activation;
}

int recommend_pipeline_depth(const EngineStats::StageBreakdownSet& telemetry,
                             int current_depth, int max_depth) {
  QGTC_CHECK(current_depth >= 1, "current depth must be >= 1");
  QGTC_CHECK(max_depth >= 1, "max depth must be >= 1");
  // Starved compute + healthy prepare: the queues are too shallow to absorb
  // prepare jitter — deepen. Blocked prepare + busy compute: the window is
  // wider than compute can drain — shallower queues stop buying anything but
  // resident batches. Anything in between holds (a dead band keeps the
  // controller from oscillating run-to-run on noisy small epochs).
  const double compute_stall = telemetry.compute.stall_fraction();
  const double prepare_stall = telemetry.prepare.stall_fraction();
  if (compute_stall > 0.25 && prepare_stall < 0.10) {
    return std::min(current_depth * 2, max_depth);
  }
  if (prepare_stall > 0.50 && compute_stall < 0.10 && current_depth > 1) {
    return std::max(current_depth / 2, 1);
  }
  return std::clamp(current_depth, 1, max_depth);
}

}  // namespace qgtc::core
