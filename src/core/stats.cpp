#include "core/stats.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace qgtc::core {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

TablePrinter& TablePrinter::add_row(std::vector<std::string> cells) {
  QGTC_CHECK(cells.size() == headers_.size(),
             "row width does not match header width");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TablePrinter::fmt(double v, int prec) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(prec) << v;
  return ss.str();
}

std::string TablePrinter::fmt_pct(double v, int prec) {
  return fmt(v * 100.0, prec) + "%";
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  QGTC_CHECK(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

}  // namespace qgtc::core
