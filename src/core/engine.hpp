// QgtcEngine — the public end-to-end pipeline a downstream user adopts:
// dataset -> METIS-substitute partitioning -> subgraph batching -> packed
// transfer -> per-batch quantized GNN inference on the tensor-core
// substrate, with the fp32 DGL-substitute path available for comparison.
//
// Like the paper's evaluation (§6, artifact appendix), reported inference
// time covers the quantized forward pass over all batches; partitioning,
// feature generation and weight preparation are one-time preprocessing and
// excluded. Host->device transfer is accounted separately via the PCIe
// model.
#pragma once

#include <vector>

#include "gnn/model.hpp"
#include "graph/generator.hpp"
#include "transfer/packing.hpp"

namespace qgtc::core {

struct EngineConfig {
  gnn::GnnConfig model;
  i64 num_partitions = 1500;  // paper's METIS setting
  i64 batch_size = 16;        // partitions per batch
  u64 seed = 3;
  /// Substrate backend every kernel of the forward pass executes on.
  tcsim::BackendKind backend = tcsim::default_backend();
  /// Partition-batches executed concurrently by run_quantized / run_fp32
  /// (each worker owns a private ExecutionContext; counters and stats merge
  /// deterministically). 1 = the sequential legacy schedule.
  int inter_batch_threads = 1;
  /// Structural sparsity: store, schedule and ship each batch adjacency as a
  /// tile-CSR (only nonzero 8x128 tiles) instead of a dense BitMatrix + flag
  /// map. Bit-identical results; adjacency memory and packed-transfer bytes
  /// shrink to ~the nonzero-tile ratio (Figure 8). Default off so the dense
  /// baseline/ablation paths stay directly comparable.
  bool sparse_adj = false;
};

struct EngineStats {
  // Forward-pass wall time over one full epoch (all batches), seconds.
  double forward_seconds = 0.0;
  i64 batches = 0;
  i64 nodes = 0;
  // Substrate counters accumulated over the epoch.
  i64 tiles_jumped = 0;
  i64 bmma_ops = 0;
  // Transfer accounting (bytes staged + modelled PCIe seconds).
  i64 packed_bytes = 0;
  double packed_transfer_seconds = 0.0;
  i64 dense_bytes = 0;
  double dense_transfer_seconds = 0.0;
  // Adjacency share of the packed payload (tile-CSR bytes in sparse mode,
  // the dense bit plane otherwise).
  i64 adj_bytes = 0;
  // Execution setup the run used (for reporting / JSON bench output).
  const char* backend = "";
  int inter_batch_threads = 1;
};

class QgtcEngine {
 public:
  /// Prepares partitions, batches, per-batch adjacencies/features and the
  /// calibrated quantized model. All of this is preprocessing (untimed).
  QgtcEngine(const Dataset& dataset, const EngineConfig& cfg);

  [[nodiscard]] const EngineConfig& config() const { return cfg_; }
  [[nodiscard]] const gnn::QgtcModel& model() const { return model_; }
  [[nodiscard]] i64 num_batches() const { return static_cast<i64>(batches_.size()); }

  /// Re-points subsequent runs at a different backend / worker count without
  /// rebuilding partitions, batches or the model (the backend-sweep bench).
  void set_execution(tcsim::BackendKind backend, int inter_batch_threads);

  /// Quantized QGTC inference over every batch, `rounds` epochs averaged.
  EngineStats run_quantized(int rounds = 1);

  /// fp32 DGL-substitute inference over every batch.
  EngineStats run_fp32(int rounds = 1);

  /// Transfer accounting for the whole epoch (packed vs dense fp32, §4.6).
  EngineStats transfer_accounting() const;

  /// Zero-tile census across every batch adjacency (Figure 8's metric).
  [[nodiscard]] double nonzero_tile_ratio() const;

  /// Per-batch prepared data, exposed for the ablation/zero-tile benches.
  struct BatchData {
    SubgraphBatch batch;
    /// Tile-CSR adjacency, built straight from the global CSR (always
    /// present — it costs ~the nonzero-tile ratio of the dense plane).
    TileSparseBitMatrix adj_tiles;
    BitMatrix adj;      // dense binary adjacency (empty when cfg.sparse_adj)
    TileMap tile_map;   // cached zero-tile map of adj (dense mode only)
    CsrGraph local;     // same adjacency as CSR (fp32 baseline path)
    MatrixF features;   // gathered fp32 features
    StackedBitTensor x_planes;  // host-packed quantized input (§4.6)
  };
  [[nodiscard]] const std::vector<BatchData>& batch_data() const {
    return data_;
  }

 private:
  EngineConfig cfg_;
  const Dataset* dataset_;
  gnn::QgtcModel model_;
  std::vector<SubgraphBatch> batches_;
  std::vector<BatchData> data_;
};

}  // namespace qgtc::core
