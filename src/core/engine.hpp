// QgtcEngine — the public end-to-end pipeline a downstream user adopts:
// dataset -> METIS-substitute partitioning -> subgraph batching -> packed
// transfer -> per-batch quantized GNN inference on the tensor-core
// substrate, with the fp32 DGL-substitute path available for comparison.
//
// Two execution modes share one bit-identical per-batch prepare path
// (`prepare_batch_data` + `QgtcModel::prepare_input`):
//
// * **Precomputed** (legacy, default): every batch's adjacency tiles, dense
//   plane, local CSR, fp32 features and quantized planes are materialised up
//   front (untimed preprocessing, O(epoch) resident); reported inference
//   time covers the quantized forward pass only, and host->device transfer
//   is accounted post-hoc via `transfer_accounting()` — the paper's §6
//   timing protocol.
// * **Streaming** (`EngineConfig::streaming`): one epoch flows through the
//   three-stage prepare/ship/compute pipeline (`core/pipeline.hpp`) with
//   bounded queues, so peak memory is O(pipeline_depth) batches and the
//   PCIe model is charged inline on the timed path, with overlap accounting
//   (`exposed_transfer_seconds`). Logits, `bmma_ops`, `tiles_jumped` and
//   `nodes` are bit-identical to precomputed mode in every backend ×
//   adjacency-layout combination.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "gnn/model.hpp"
#include "graph/generator.hpp"
#include "obs/metrics.hpp"
#include "store/batch_cache.hpp"
#include "store/dataset_store.hpp"
#include "transfer/packing.hpp"

namespace qgtc::core {

/// Run-mode knobs collapsed into one documented object — every constructor
/// of an engine config (CLI, autotuner, tests, serving layer) picks an epoch
/// execution discipline and an adjacency layout the same way, instead of the
/// old `streaming` / `sparse_adj` boolean sprawl.
struct RunMode {
  /// Epoch execution discipline.
  enum class Epoch {
    /// Materialise every batch up front (untimed preprocessing, O(epoch)
    /// resident) — the paper's §6 timing protocol.
    kPrecomputed,
    /// Batches are prepared lazily and flow through the bounded
    /// prepare/ship/compute pipeline: O(pipeline_depth) resident, PCIe model
    /// charged inline. Datasets larger than the precompute budget become a
    /// config knob, not a crash.
    kStreaming,
  };
  /// Batch-adjacency storage / scheduling / transfer layout.
  enum class Adjacency {
    /// Dense BitMatrix + cached zero-tile jump map (the flag-jump baseline).
    kDenseJump,
    /// Tile-CSR holding only nonzero 8x128 tiles: bit-identical results,
    /// adjacency memory and shipped bytes at ~the nonzero-tile ratio
    /// (Figure 8). Default off so the dense baseline stays comparable.
    kTileSparse,
  };

  Epoch epoch = Epoch::kPrecomputed;
  Adjacency adjacency = Adjacency::kDenseJump;
  /// Streaming only: capacity of each inter-stage queue — the peak-memory
  /// bound is ~(2*depth + workers) live batches.
  int pipeline_depth = 2;
  /// Streaming only: prepare-stage workers (host-side batch construction).
  int prepare_threads = 1;

  [[nodiscard]] bool streaming() const { return epoch == Epoch::kStreaming; }
  [[nodiscard]] bool sparse_adj() const {
    return adjacency == Adjacency::kTileSparse;
  }

  static RunMode precomputed(Adjacency adj = Adjacency::kDenseJump) {
    return RunMode{Epoch::kPrecomputed, adj, 2, 1};
  }
  static RunMode streaming_pipeline(int depth, int prepare,
                                    Adjacency adj = Adjacency::kDenseJump) {
    return RunMode{Epoch::kStreaming, adj, depth, prepare};
  }
};

struct EngineConfig {
  gnn::GnnConfig model;
  i64 num_partitions = 1500;  // paper's METIS setting
  i64 batch_size = 16;        // partitions per batch
  u64 seed = 3;
  /// Substrate backend every kernel of the forward pass executes on.
  tcsim::BackendKind backend = tcsim::default_backend();
  /// Partition-batches executed concurrently by run_quantized / run_fp32
  /// (each worker owns a private ExecutionContext; counters and stats merge
  /// deterministically). 1 = the sequential legacy schedule. In streaming
  /// mode this is the compute-stage worker count.
  int inter_batch_threads = 1;
  /// Epoch execution discipline + adjacency layout (see RunMode).
  RunMode mode;
  /// Byte budget of the cross-epoch prepared-batch cache consulted at the
  /// shared prepare entry (prepare_batch / prepare_subgraph). 0 disables
  /// caching entirely (pure pass-through). Hits skip prepare + pack and ship
  /// zero bytes (device-resident reuse); results stay bit-identical either
  /// way because cached entries ARE the prepared data.
  i64 cache_budget_bytes = 0;
  /// Shard filter: when non-empty, this engine runs only the listed *global*
  /// batch ids (indices into the unfiltered epoch batch list). Partitioning,
  /// batching, model creation and calibration are all computed on the full
  /// graph first — identical across every shard of a sharded run — so a
  /// filtered engine's per-batch results are bit-identical to the same
  /// batches in an unfiltered run. Empty = run every batch (the default).
  std::vector<i64> shard_batches;
};

struct EngineStats {
  // Forward-pass wall time over one full epoch (all batches), seconds. In
  // streaming mode this is the full pipeline wall time: prepare, packed
  // transfer and compute, overlapped.
  double forward_seconds = 0.0;
  i64 batches = 0;
  i64 nodes = 0;
  // Substrate counters accumulated over the epoch.
  i64 tiles_jumped = 0;
  i64 bmma_ops = 0;
  // Epilogue fusion accounting: requantizing stages the model's rewrite pass
  // runs fused per forward pass, and the int32 intermediate bytes those
  // stages never materialised (per epoch, averaged over rounds).
  i64 epilogue_fused_layers = 0;
  i64 int32_bytes_avoided = 0;
  // Transfer accounting (bytes staged + modelled PCIe seconds). Filled
  // post-hoc by transfer_accounting(); in streaming mode run_quantized also
  // fills them inline, per epoch.
  i64 packed_bytes = 0;
  double packed_transfer_seconds = 0.0;
  i64 dense_bytes = 0;
  double dense_transfer_seconds = 0.0;
  // Adjacency share of the packed payload (tile-CSR bytes in sparse mode,
  // the dense bit plane otherwise).
  i64 adj_bytes = 0;
  // Overlap accounting (streaming mode): modelled wire time NOT hidden
  // behind compute on the two-engine replay (see pipeline.hpp). 0 in
  // precomputed mode, where transfers are entirely post-hoc.
  double exposed_transfer_seconds = 0.0;
  // Peak bytes of simultaneously-live prepared batch data: the whole epoch
  // in precomputed mode, the O(pipeline_depth) high-water in streaming mode.
  i64 peak_prepared_bytes = 0;
  // Staging-slot allocation high-water (streaming ship stage).
  i64 staging_capacity_bytes = 0;
  // Kernel-reported process peak RSS (VmHWM), for bench JSON output.
  i64 vm_hwm_bytes = 0;
  // Feature/CSR bytes read from the batch source during the timed epochs'
  // prepare stages (per epoch, averaged over rounds). 0 when every batch
  // hit the cache or the epoch was precomputed.
  i64 prepare_bytes_read = 0;
  // BatchCache activity during the timed epochs (per epoch, averaged over
  // rounds) plus the cache's resident footprint at the end of the run.
  i64 cache_hits = 0;
  i64 cache_misses = 0;
  i64 cache_evictions = 0;
  i64 cache_resident_bytes = 0;
  // Total mmap'd store bytes (feature chunks + CSR shards); 0 for in-core
  // engines.
  i64 mapped_bytes = 0;
  // Streaming mode: per-stage busy/stall decomposition of the pipeline
  // (summed over each stage's workers, averaged over rounds). All zeros in
  // precomputed mode, which has no inter-stage queues to stall on. This is
  // the signal the adaptive-depth / worker-resizing roadmap items consume:
  // a stalling prepare stage wants more depth or fewer preparers; a
  // stalling compute stage means prepare or ship is the straggler.
  struct StageBreakdownSet {
    obs::StageBreakdown prepare;
    obs::StageBreakdown ship;
    obs::StageBreakdown compute;
  };
  StageBreakdownSet stage_breakdown;
  // Sharded-run accounting (filled by ShardedEngine; single-engine runs keep
  // the defaults). Halo traffic is the boundary-feature movement between
  // shards over the modelled interconnect (comm::InterconnectModel), per
  // epoch; `exposed_halo_seconds` is the share of that wire time NOT hidden
  // behind shard compute on the two-engine overlap replay.
  int shards = 1;
  i64 halo_nodes = 0;
  i64 halo_bytes = 0;
  double halo_wire_seconds = 0.0;
  double exposed_halo_seconds = 0.0;
  // Execution setup the run used (for reporting / JSON bench output).
  const char* backend = "";
  int inter_batch_threads = 1;
  bool streaming = false;
  int pipeline_depth = 0;
  int prepare_threads = 0;
};

class QgtcEngine {
 public:
  /// Prepares partitions, batches and the calibrated quantized model; in
  /// precomputed mode also materialises every batch's data (all of this is
  /// preprocessing, untimed). Calibration is hoisted in both modes: the
  /// representative batch is prepared first and calibrated before any
  /// pipeline starts, so streaming and precomputed runs quantize with
  /// identical shifts.
  QgtcEngine(const Dataset& dataset, const EngineConfig& cfg);

  /// Same pipeline over an out-of-core store: the global CSR is walked
  /// through the store's mmap'd shard view and features gather through the
  /// FeatureStore — bit-identical to the in-core constructor on the same
  /// dataset (the store round-trips the exact bytes).
  QgtcEngine(const store::DatasetStore& dstore, const EngineConfig& cfg);

  [[nodiscard]] const EngineConfig& config() const { return cfg_; }
  [[nodiscard]] const gnn::QgtcModel& model() const { return model_; }
  [[nodiscard]] i64 num_batches() const { return static_cast<i64>(batches_.size()); }

  /// Re-points subsequent runs at a different backend / worker count without
  /// rebuilding partitions, batches or the model (the backend-sweep bench).
  void set_execution(tcsim::BackendKind backend, int inter_batch_threads);

  /// Retunes the streaming pipeline's queue depth for subsequent runs (the
  /// online adaptive-depth hook the sharded coordinator drives from stage
  /// stall telemetry). No effect on results — depth only bounds residency
  /// and overlap. Precomputed-mode engines accept and ignore it.
  void set_pipeline_depth(int depth);

  /// Quantized QGTC inference over every batch, `rounds` epochs averaged.
  /// When `logits_out` is non-null it receives each batch's int32 logits
  /// (indexed by batch), captured identically in both modes — the
  /// streaming-equivalence test surface.
  EngineStats run_quantized(int rounds = 1,
                            std::vector<MatrixI32>* logits_out = nullptr);

  /// fp32 DGL-substitute inference over every batch.
  EngineStats run_fp32(int rounds = 1);

  /// Transfer accounting for the whole epoch (packed vs dense fp32, §4.6).
  /// Ships the batches' *prepared* planes — the exact bytes the device
  /// computes on; nothing is re-quantized on the accounting path. Streaming
  /// engines prepare one batch at a time here (bounded memory).
  EngineStats transfer_accounting() const;

  /// Zero-tile census across every batch adjacency (Figure 8's metric).
  [[nodiscard]] double nonzero_tile_ratio() const;

  /// Per-batch prepared data: the graph-side `PreparedBatch` plus the
  /// host-packed quantized input planes (§4.6).
  struct BatchData : PreparedBatch {
    StackedBitTensor x_planes;
    [[nodiscard]] i64 prepared_bytes() const {
      return PreparedBatch::prepared_bytes() + x_planes.bytes();
    }
  };

  /// Shared-ownership handle to immutable prepared batch data. The cache,
  /// the precomputed epoch store and in-flight pipeline items all share one
  /// allocation; eviction never invalidates a consumer.
  using BatchRef = std::shared_ptr<const BatchData>;

  /// Builds batch `i`'s complete data from the global CSR + features — the
  /// single prepare entry point both modes run (precomputed at construction,
  /// streaming inside the pipeline's prepare stage). `build_fp32_csr=false`
  /// skips the fp32-only local CSR; the quantized streaming pipeline and
  /// the transfer accounting never read it.
  /// Consults the BatchCache first when a budget is configured;
  /// `cache_hit` (optional) reports whether the returned data came from it.
  [[nodiscard]] BatchRef prepare_batch(i64 i, bool build_fp32_csr = true,
                                       bool* cache_hit = nullptr) const;

  /// Builds complete batch data for an *arbitrary* subgraph batch — the
  /// serving layer's dynamic micro-batches ride the exact same prepare path
  /// as the epoch batches (`prepare_batch_data` + `QgtcModel::prepare_input`),
  /// so a request served online is bit-identical to the same batch
  /// membership run through the offline epoch path.
  [[nodiscard]] BatchRef prepare_subgraph(const SubgraphBatch& batch,
                                          bool build_fp32_csr = false,
                                          bool* cache_hit = nullptr) const;

  /// The dataset this engine serves when constructed in-core. Store-backed
  /// engines have no materialised Dataset — use graph() / spec() instead.
  [[nodiscard]] const Dataset& dataset() const {
    QGTC_CHECK(dataset_ != nullptr,
               "store-backed engine has no in-core Dataset; use graph()");
    return *dataset_;
  }

  /// The global CSR this engine walks (in-core graph or mmap'd store view —
  /// the serving layer's ego-graph expansion traverses either).
  [[nodiscard]] const CsrView& graph() const { return graph_; }
  [[nodiscard]] const DatasetSpec& spec() const { return spec_; }

  /// Cumulative BatchCache activity since construction (both run modes; the
  /// per-run EngineStats carry the timed-epoch delta instead).
  [[nodiscard]] store::BatchCacheStats cache_stats() const {
    return cache_.stats();
  }
  /// Cumulative source bytes read by prepare misses since construction.
  [[nodiscard]] i64 prepare_bytes_read() const {
    return prepare_bytes_read_.load(std::memory_order_relaxed);
  }
  /// Total mmap'd store bytes backing this engine (0 in-core).
  [[nodiscard]] i64 mapped_bytes() const {
    return dstore_ != nullptr ? dstore_->mapped_bytes() : 0;
  }

  /// Precomputed mode only: the materialised per-batch data (exposed for
  /// the ablation/zero-tile benches). Throws in streaming mode, which never
  /// holds a full epoch.
  [[nodiscard]] const std::vector<BatchRef>& batch_data() const {
    QGTC_CHECK(!cfg_.mode.streaming(),
               "batch_data() is precomputed-mode only; streaming engines "
               "never materialise the epoch");
    return data_;
  }

 private:
  void init();

  EngineStats run_quantized_precomputed(int rounds,
                                        std::vector<MatrixI32>* logits_out);
  EngineStats run_quantized_streaming(int rounds,
                                      std::vector<MatrixI32>* logits_out);
  EngineStats run_fp32_streaming(int rounds);

  /// Stamps the timed-section cache/store deltas into `stats`.
  void stamp_cache_stats(EngineStats& stats,
                         const store::BatchCacheStats& before, i64 bytes_before,
                         int rounds) const;

  EngineConfig cfg_;
  const Dataset* dataset_ = nullptr;             // in-core engines only
  const store::DatasetStore* dstore_ = nullptr;  // store-backed engines only
  DatasetSpec spec_;
  CsrView graph_;
  store::FeatureSource features_;
  gnn::QgtcModel model_;
  std::vector<SubgraphBatch> batches_;
  std::vector<BatchRef> data_;  // precomputed mode only
  /// Keyed by membership + this fingerprint (quantization/layout config).
  u64 cache_fingerprint_ = 0;
  mutable store::BatchCache<BatchData> cache_;
  mutable std::atomic<i64> prepare_bytes_read_{0};
};

/// The global epoch batch list an engine with `cfg` runs before any shard
/// filter: METIS-substitute partitioning + partition batching, exactly as
/// QgtcEngine::init computes it. The sharded coordinator plans shard
/// assignments over this list, so a plan's global batch ids line up with
/// every shard engine's view by construction.
std::vector<SubgraphBatch> make_epoch_batches(const CsrView& g,
                                              const EngineConfig& cfg);

/// Packs an already-prepared batch into `slot` (dense plane or tile-CSR
/// payload, per `sparse_adj`) — the pack-into-slot dispatch shared by the
/// streaming ship stage, transfer accounting, and the serving pipeline's
/// ship stage. Ships the *prepared* input planes as-is: the host quantized
/// and decomposed the features exactly once, so the bytes on the wire are
/// byte-for-byte the bytes the device computes on.
transfer::PackedSubgraph pack_prepared_batch(const QgtcEngine::BatchData& bd,
                                             bool sparse_adj,
                                             transfer::StagingBuffer& slot,
                                             const transfer::PcieModel& pcie);

}  // namespace qgtc::core
