// QgtcEngine — the public end-to-end pipeline a downstream user adopts:
// dataset -> METIS-substitute partitioning -> subgraph batching -> packed
// transfer -> per-batch quantized GNN inference on the tensor-core
// substrate, with the fp32 DGL-substitute path available for comparison.
//
// Two execution modes share one bit-identical per-batch prepare path
// (`prepare_batch_data` + `QgtcModel::prepare_input`):
//
// * **Precomputed** (legacy, default): every batch's adjacency tiles, dense
//   plane, local CSR, fp32 features and quantized planes are materialised up
//   front (untimed preprocessing, O(epoch) resident); reported inference
//   time covers the quantized forward pass only, and host->device transfer
//   is accounted post-hoc via `transfer_accounting()` — the paper's §6
//   timing protocol.
// * **Streaming** (`EngineConfig::streaming`): one epoch flows through the
//   three-stage prepare/ship/compute pipeline (`core/pipeline.hpp`) with
//   bounded queues, so peak memory is O(pipeline_depth) batches and the
//   PCIe model is charged inline on the timed path, with overlap accounting
//   (`exposed_transfer_seconds`). Logits, `bmma_ops`, `tiles_jumped` and
//   `nodes` are bit-identical to precomputed mode in every backend ×
//   adjacency-layout combination.
#pragma once

#include <vector>

#include "gnn/model.hpp"
#include "graph/generator.hpp"
#include "obs/metrics.hpp"
#include "transfer/packing.hpp"

namespace qgtc::core {

/// Run-mode knobs collapsed into one documented object — every constructor
/// of an engine config (CLI, autotuner, tests, serving layer) picks an epoch
/// execution discipline and an adjacency layout the same way, instead of the
/// old `streaming` / `sparse_adj` boolean sprawl.
struct RunMode {
  /// Epoch execution discipline.
  enum class Epoch {
    /// Materialise every batch up front (untimed preprocessing, O(epoch)
    /// resident) — the paper's §6 timing protocol.
    kPrecomputed,
    /// Batches are prepared lazily and flow through the bounded
    /// prepare/ship/compute pipeline: O(pipeline_depth) resident, PCIe model
    /// charged inline. Datasets larger than the precompute budget become a
    /// config knob, not a crash.
    kStreaming,
  };
  /// Batch-adjacency storage / scheduling / transfer layout.
  enum class Adjacency {
    /// Dense BitMatrix + cached zero-tile jump map (the flag-jump baseline).
    kDenseJump,
    /// Tile-CSR holding only nonzero 8x128 tiles: bit-identical results,
    /// adjacency memory and shipped bytes at ~the nonzero-tile ratio
    /// (Figure 8). Default off so the dense baseline stays comparable.
    kTileSparse,
  };

  Epoch epoch = Epoch::kPrecomputed;
  Adjacency adjacency = Adjacency::kDenseJump;
  /// Streaming only: capacity of each inter-stage queue — the peak-memory
  /// bound is ~(2*depth + workers) live batches.
  int pipeline_depth = 2;
  /// Streaming only: prepare-stage workers (host-side batch construction).
  int prepare_threads = 1;

  [[nodiscard]] bool streaming() const { return epoch == Epoch::kStreaming; }
  [[nodiscard]] bool sparse_adj() const {
    return adjacency == Adjacency::kTileSparse;
  }

  static RunMode precomputed(Adjacency adj = Adjacency::kDenseJump) {
    return RunMode{Epoch::kPrecomputed, adj, 2, 1};
  }
  static RunMode streaming_pipeline(int depth, int prepare,
                                    Adjacency adj = Adjacency::kDenseJump) {
    return RunMode{Epoch::kStreaming, adj, depth, prepare};
  }
};

struct EngineConfig {
  gnn::GnnConfig model;
  i64 num_partitions = 1500;  // paper's METIS setting
  i64 batch_size = 16;        // partitions per batch
  u64 seed = 3;
  /// Substrate backend every kernel of the forward pass executes on.
  tcsim::BackendKind backend = tcsim::default_backend();
  /// Partition-batches executed concurrently by run_quantized / run_fp32
  /// (each worker owns a private ExecutionContext; counters and stats merge
  /// deterministically). 1 = the sequential legacy schedule. In streaming
  /// mode this is the compute-stage worker count.
  int inter_batch_threads = 1;
  /// Epoch execution discipline + adjacency layout (see RunMode).
  RunMode mode;
};

struct EngineStats {
  // Forward-pass wall time over one full epoch (all batches), seconds. In
  // streaming mode this is the full pipeline wall time: prepare, packed
  // transfer and compute, overlapped.
  double forward_seconds = 0.0;
  i64 batches = 0;
  i64 nodes = 0;
  // Substrate counters accumulated over the epoch.
  i64 tiles_jumped = 0;
  i64 bmma_ops = 0;
  // Epilogue fusion accounting: requantizing stages the model's rewrite pass
  // runs fused per forward pass, and the int32 intermediate bytes those
  // stages never materialised (per epoch, averaged over rounds).
  i64 epilogue_fused_layers = 0;
  i64 int32_bytes_avoided = 0;
  // Transfer accounting (bytes staged + modelled PCIe seconds). Filled
  // post-hoc by transfer_accounting(); in streaming mode run_quantized also
  // fills them inline, per epoch.
  i64 packed_bytes = 0;
  double packed_transfer_seconds = 0.0;
  i64 dense_bytes = 0;
  double dense_transfer_seconds = 0.0;
  // Adjacency share of the packed payload (tile-CSR bytes in sparse mode,
  // the dense bit plane otherwise).
  i64 adj_bytes = 0;
  // Overlap accounting (streaming mode): modelled wire time NOT hidden
  // behind compute on the two-engine replay (see pipeline.hpp). 0 in
  // precomputed mode, where transfers are entirely post-hoc.
  double exposed_transfer_seconds = 0.0;
  // Peak bytes of simultaneously-live prepared batch data: the whole epoch
  // in precomputed mode, the O(pipeline_depth) high-water in streaming mode.
  i64 peak_prepared_bytes = 0;
  // Staging-slot allocation high-water (streaming ship stage).
  i64 staging_capacity_bytes = 0;
  // Kernel-reported process peak RSS (VmHWM), for bench JSON output.
  i64 vm_hwm_bytes = 0;
  // Streaming mode: per-stage busy/stall decomposition of the pipeline
  // (summed over each stage's workers, averaged over rounds). All zeros in
  // precomputed mode, which has no inter-stage queues to stall on. This is
  // the signal the adaptive-depth / worker-resizing roadmap items consume:
  // a stalling prepare stage wants more depth or fewer preparers; a
  // stalling compute stage means prepare or ship is the straggler.
  struct StageBreakdownSet {
    obs::StageBreakdown prepare;
    obs::StageBreakdown ship;
    obs::StageBreakdown compute;
  };
  StageBreakdownSet stage_breakdown;
  // Execution setup the run used (for reporting / JSON bench output).
  const char* backend = "";
  int inter_batch_threads = 1;
  bool streaming = false;
  int pipeline_depth = 0;
  int prepare_threads = 0;
};

class QgtcEngine {
 public:
  /// Prepares partitions, batches and the calibrated quantized model; in
  /// precomputed mode also materialises every batch's data (all of this is
  /// preprocessing, untimed). Calibration is hoisted in both modes: the
  /// representative batch is prepared first and calibrated before any
  /// pipeline starts, so streaming and precomputed runs quantize with
  /// identical shifts.
  QgtcEngine(const Dataset& dataset, const EngineConfig& cfg);

  [[nodiscard]] const EngineConfig& config() const { return cfg_; }
  [[nodiscard]] const gnn::QgtcModel& model() const { return model_; }
  [[nodiscard]] i64 num_batches() const { return static_cast<i64>(batches_.size()); }

  /// Re-points subsequent runs at a different backend / worker count without
  /// rebuilding partitions, batches or the model (the backend-sweep bench).
  void set_execution(tcsim::BackendKind backend, int inter_batch_threads);

  /// Quantized QGTC inference over every batch, `rounds` epochs averaged.
  /// When `logits_out` is non-null it receives each batch's int32 logits
  /// (indexed by batch), captured identically in both modes — the
  /// streaming-equivalence test surface.
  EngineStats run_quantized(int rounds = 1,
                            std::vector<MatrixI32>* logits_out = nullptr);

  /// fp32 DGL-substitute inference over every batch.
  EngineStats run_fp32(int rounds = 1);

  /// Transfer accounting for the whole epoch (packed vs dense fp32, §4.6).
  /// Ships the batches' *prepared* planes — the exact bytes the device
  /// computes on; nothing is re-quantized on the accounting path. Streaming
  /// engines prepare one batch at a time here (bounded memory).
  EngineStats transfer_accounting() const;

  /// Zero-tile census across every batch adjacency (Figure 8's metric).
  [[nodiscard]] double nonzero_tile_ratio() const;

  /// Per-batch prepared data: the graph-side `PreparedBatch` plus the
  /// host-packed quantized input planes (§4.6).
  struct BatchData : PreparedBatch {
    StackedBitTensor x_planes;
    [[nodiscard]] i64 prepared_bytes() const {
      return PreparedBatch::prepared_bytes() + x_planes.bytes();
    }
  };

  /// Builds batch `i`'s complete data from the global CSR + features — the
  /// single prepare entry point both modes run (precomputed at construction,
  /// streaming inside the pipeline's prepare stage). `build_fp32_csr=false`
  /// skips the fp32-only local CSR; the quantized streaming pipeline and
  /// the transfer accounting never read it.
  [[nodiscard]] BatchData prepare_batch(i64 i, bool build_fp32_csr = true) const;

  /// Builds complete batch data for an *arbitrary* subgraph batch — the
  /// serving layer's dynamic micro-batches ride the exact same prepare path
  /// as the epoch batches (`prepare_batch_data` + `QgtcModel::prepare_input`),
  /// so a request served online is bit-identical to the same batch
  /// membership run through the offline epoch path.
  [[nodiscard]] BatchData prepare_subgraph(const SubgraphBatch& batch,
                                           bool build_fp32_csr = false) const;

  /// The dataset this engine serves (global CSR + features — the serving
  /// layer's ego-graph expansion walks it).
  [[nodiscard]] const Dataset& dataset() const { return *dataset_; }

  /// Precomputed mode only: the materialised per-batch data (exposed for
  /// the ablation/zero-tile benches). Throws in streaming mode, which never
  /// holds a full epoch.
  [[nodiscard]] const std::vector<BatchData>& batch_data() const {
    QGTC_CHECK(!cfg_.mode.streaming(),
               "batch_data() is precomputed-mode only; streaming engines "
               "never materialise the epoch");
    return data_;
  }

 private:
  EngineStats run_quantized_precomputed(int rounds,
                                        std::vector<MatrixI32>* logits_out);
  EngineStats run_quantized_streaming(int rounds,
                                      std::vector<MatrixI32>* logits_out);

  EngineConfig cfg_;
  const Dataset* dataset_;
  gnn::QgtcModel model_;
  std::vector<SubgraphBatch> batches_;
  std::vector<BatchData> data_;  // precomputed mode only
};

/// Packs an already-prepared batch into `slot` (dense plane or tile-CSR
/// payload, per `sparse_adj`) — the pack-into-slot dispatch shared by the
/// streaming ship stage, transfer accounting, and the serving pipeline's
/// ship stage. Ships the *prepared* input planes as-is: the host quantized
/// and decomposed the features exactly once, so the bytes on the wire are
/// byte-for-byte the bytes the device computes on.
transfer::PackedSubgraph pack_prepared_batch(const QgtcEngine::BatchData& bd,
                                             bool sparse_adj,
                                             transfer::StagingBuffer& slot,
                                             const transfer::PcieModel& pcie);

}  // namespace qgtc::core
