// Small fixed-width table printer used by the benchmark harness so every
// bench emits paper-style rows (same columns as the corresponding
// table/figure).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/defs.hpp"

namespace qgtc::core {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  TablePrinter& add_row(std::vector<std::string> cells);

  /// Formats a double with `prec` decimals.
  static std::string fmt(double v, int prec = 2);
  static std::string fmt_pct(double v, int prec = 2);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qgtc::core
