// Small fixed-width table printer used by the benchmark harness so every
// bench emits paper-style rows (same columns as the corresponding
// table/figure).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/defs.hpp"

namespace qgtc::core {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  TablePrinter& add_row(std::vector<std::string> cells);

  /// Formats a double with `prec` decimals.
  static std::string fmt(double v, int prec = 2);
  static std::string fmt_pct(double v, int prec = 2);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// The p-th percentile (p in [0, 100]) of `xs` by linear interpolation
/// between closest ranks.
/// Takes its argument by value (sorts a copy) — O(n log n) per call and O(n)
/// retained samples, so it is the *exact* reference reduction only. Hot
/// paths (serving latencies, load reports) use obs::Histogram instead:
/// constant memory, lock-free record, ≤ ~1.6% relative quantile error. The
/// histogram unit test pins the two against each other.
double percentile(std::vector<double> xs, double p);

}  // namespace qgtc::core
