// Runtime configuration generation (paper artifact appendix: "the runtime
// configuration generation on the host-side CPU program makes QGTC more
// adaptive towards various kinds of input settings").
//
// Given a dataset's shape and a device resource envelope, picks the
// partition count and batch size the engine should use: partitions sized for
// dense-but-parallel subgraphs, batches sized to fill the device without
// exceeding its memory budget. The `objective` selects between the offline
// throughput profile (big batches, deep pipeline) and the online latency
// profile (small micro-batches, shallow pipeline, prepare-heavy staffing —
// the serving layer's per-request critical path is dominated by prepare).
#pragma once

#include "core/engine.hpp"
#include "core/serving.hpp"

namespace qgtc::core {

/// Device resource envelope (defaults approximate the paper's RTX3090:
/// 24 GB, 82 SMs; on the CPU substrate "SMs" are worker threads).
struct DeviceProfile {
  i64 memory_bytes = i64{24} * 1024 * 1024 * 1024;
  i64 parallel_units = 82;
  /// Target nodes per partition (paper's 1,500-partition settings put a few
  /// hundred nodes in each).
  i64 target_partition_nodes = 160;
};

/// What the tuned run optimises for.
enum class TuneObjective {
  /// Offline epochs: maximise batch size / pipeline depth within the memory
  /// budget (the paper's §6 protocol).
  kThroughput,
  /// Online serving: bound per-request latency — small micro-batches, depth
  /// 1 (no queue for a request to age in), prepare-heavy worker split.
  kLatency,
};

struct TunedConfig {
  i64 num_partitions = 0;
  i64 batch_size = 0;
  /// Estimated per-batch device bytes (packed adjacency + activations).
  i64 batch_bytes_estimate = 0;
  /// Inter-batch workers for the engine's epoch loop: enough batch streams
  /// to cover the device's parallel units, never more than there are
  /// batches per epoch.
  int inter_batch_threads = 1;
  /// Epoch discipline + adjacency layout + streaming knobs, as one object —
  /// the tuner emits the same RunMode every other config constructor uses.
  /// Tile-sparse adjacency is the default for tuned runs (bit-identical to
  /// dense and never slower, with adjacency memory at ~the nonzero-tile
  /// ratio); callers wanting the dense baseline pass sparse_adj=false so
  /// batch sizing follows the dense memory model. Streaming turns on when
  /// materialising the whole epoch would blow the precompute budget.
  RunMode mode;
  /// The objective this config was generated for.
  TuneObjective objective = TuneObjective::kThroughput;
  /// Latency objective only: the serving layer's micro-batching policy
  /// (node/request budgets sized to the tuned batch, stage staffing from the
  /// same worker split as the pipeline knobs).
  ServingPolicy serving;
  /// Fused quantized epilogue: requantize/activate/re-pack inside the tile
  /// flush. Default-on for tuned runs — bit-identical to the unfused path
  /// and strictly less memory traffic (one int32 sweep saved per stage).
  bool fuse_epilogue = true;
  /// Hidden-layer activation the epilogue applies (mirrors the model config;
  /// kept here so a tuned run records the full scenario).
  tcsim::Activation activation = tcsim::Activation::kRelu;
  /// Estimated bytes of the fully-materialised epoch (what precomputed mode
  /// would hold resident).
  i64 epoch_bytes_estimate = 0;
  /// Estimated resident bytes of the streaming in-flight window
  /// (~(2*depth + prepare + compute + 1) batches — see pipeline.hpp).
  i64 streaming_footprint_estimate = 0;
  /// Prepared-batch cache budget (EngineConfig::cache_budget_bytes): the
  /// memory-budget slice left after the streaming footprint, capped at the
  /// epoch estimate (caching more than one epoch's batches buys nothing).
  /// Zero — cache disabled — for precomputed runs (the epoch is already
  /// resident) and for profiles whose leftover budget cannot hold even one
  /// batch (a smaller cache would thrash, never hit).
  i64 cache_budget_bytes = 0;
  /// NUMA sharding (ShardedEngine): shard count for throughput runs — one
  /// shard per NUMA node when sysfs reports several, two logical shards on
  /// a single-node host with enough cores to split, 1 (no sharding)
  /// otherwise and always for the latency objective (serving wants one
  /// engine). Never more shards than batches per epoch.
  int num_shards = 1;
  /// Pin each shard's workers to its NUMA node's CPUs — only when the host
  /// actually reported a multi-node sysfs topology (pinning inside a
  /// single node just restricts the scheduler for nothing).
  bool pin_numa = false;
};

/// Deterministically derives engine knobs from dataset shape + profile.
/// `sparse_adj` selects the adjacency layout the tuned run will use — batch
/// sizing follows its memory model (dense pays the full nb x nb plane).
TunedConfig generate_runtime_config(const DatasetSpec& spec,
                                    const gnn::GnnConfig& model,
                                    const DeviceProfile& dev = {},
                                    bool sparse_adj = true,
                                    TuneObjective objective =
                                        TuneObjective::kThroughput);

/// Applies a tuned config onto an EngineConfig.
void apply(const TunedConfig& tuned, EngineConfig& cfg);

/// Online pipeline-depth controller fed by one run's stage stall telemetry
/// (the adaptive-depth hook the sharded coordinator drives between runs).
/// A compute stage starved by queue stalls while prepare keeps up wants
/// deeper queues (depth doubles, capped); a prepare stage spending most of
/// its time blocked pushing into a full queue means the depth is buying
/// nothing — halve it. Telemetry inside the dead band keeps `current_depth`.
int recommend_pipeline_depth(const EngineStats::StageBreakdownSet& telemetry,
                             int current_depth, int max_depth = 8);

}  // namespace qgtc::core
