// Inter-shard communication layer for the NUMA-sharded engine. There is no
// NVLink/NCCL fabric in this environment (and no second socket on most CI
// hosts), so cross-shard traffic is modelled the same way PCIe is
// (`transfer::PcieModel`): boundary payloads are staged with a real measured
// memcpy into a per-destination channel buffer — the message-packing cost a
// real transport pays — and the wire time comes from a cross-socket
// interconnect envelope. Figure-level conclusions depend only on bytes moved
// and message count, both of which are exact.
//
// `HaloExchange` is the collective on top: for one batch it moves every
// feature row owned by a foreign shard through that shard's outbound link,
// one message per source shard (the all-to-all a halo update is), and keeps
// the S x S traffic matrix the PerFlow-style imbalance analysis reads.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "store/feature_store.hpp"
#include "transfer/pcie.hpp"

namespace qgtc::comm {

/// Modelled cross-socket interconnect (UPI / Infinity-Fabric class
/// envelope: tens of GB/s, ~a microsecond of initiation per message —
/// faster wire, lower latency than the PCIe model, which is the point of
/// staying on-node when the partitioner allows it).
struct InterconnectModel {
  double bandwidth_gbps = 40.0;
  double latency_us = 1.2;

  /// Modelled wire seconds for one message of `bytes`.
  [[nodiscard]] double transfer_seconds(i64 bytes) const {
    return latency_us * 1e-6 +
           static_cast<double>(bytes) / (bandwidth_gbps * 1e9);
  }
};

/// Accounting for one staged message on a channel.
struct ShardMessage {
  i64 bytes = 0;
  double modeled_seconds = 0;  // interconnect wire time
  double staging_seconds = 0;  // measured memcpy into the channel buffer
};

/// One shard's inbound link: messages are staged into a capacity-retaining
/// buffer (steady-state after one epoch, like the PCIe staging slots) and
/// charged to the interconnect model. Not thread-safe — each destination
/// shard's thread owns its channel exclusively.
class ShardChannel {
 public:
  explicit ShardChannel(const InterconnectModel& model = {}) : model_(model) {}

  /// Stages one message (measured memcpy) and charges the modelled wire.
  ShardMessage send(const void* src, i64 bytes);

  /// Drops staged content, keeping the allocation (per-batch reuse).
  void clear() { buf_.clear(); }

  [[nodiscard]] const u8* data() const { return buf_.data(); }
  [[nodiscard]] i64 staged_bytes() const { return buf_.bytes(); }
  /// Cumulative bytes ever sent through this channel.
  [[nodiscard]] i64 total_bytes() const { return total_bytes_; }
  [[nodiscard]] const InterconnectModel& model() const { return model_; }

 private:
  InterconnectModel model_;
  transfer::StagingBuffer buf_;
  i64 total_bytes_ = 0;
};

/// All-to-all halo mover over S shards. Each destination shard owns one
/// inbound `ShardChannel`; `exchange()` calls with distinct `self` values
/// are safe to run concurrently (the traffic matrix is atomic, and a
/// destination's buffer is touched only by its own call).
class HaloExchange {
 public:
  /// Per-batch halo accounting for one destination shard.
  struct BatchHalo {
    i64 halo_nodes = 0;          // foreign-owned rows fetched
    i64 bytes = 0;               // fp32 row bytes moved
    i64 messages = 0;            // one per source shard with any rows
    double wire_seconds = 0;     // modelled interconnect time
    double staging_seconds = 0;  // measured channel memcpy time
  };

  explicit HaloExchange(int num_shards, const InterconnectModel& model = {});

  /// Moves the feature rows of `nodes` owned by shards other than `self`
  /// through their owners' links into shard `self`'s channel: rows are
  /// grouped by owner, gathered, and staged as one message per source shard.
  /// `owner` maps every global node id to its owning shard. When `gathered`
  /// is non-null it receives one row per element of `nodes` — foreign rows
  /// filled from the channel-staged bytes, self-owned rows zero — the
  /// correctness surface halo tests compare against a direct local gather.
  BatchHalo exchange(const store::FeatureSource& features,
                     std::span<const i32> nodes, std::span<const i32> owner,
                     int self, MatrixF* gathered = nullptr);

  [[nodiscard]] int num_shards() const { return shards_; }
  [[nodiscard]] const InterconnectModel& model() const { return model_; }

  /// Cumulative bytes moved src -> dst (the PerFlow-style communication-
  /// pattern matrix; diagonal entries stay zero — local reads never cross).
  [[nodiscard]] i64 bytes_moved(int src, int dst) const;
  /// Cumulative bytes over the whole matrix.
  [[nodiscard]] i64 total_bytes() const;

 private:
  int shards_ = 0;
  InterconnectModel model_;
  std::vector<ShardChannel> inbound_;  // one per destination shard
  std::unique_ptr<std::atomic<i64>[]> matrix_;  // shards_ x shards_, row=src
};

}  // namespace qgtc::comm
