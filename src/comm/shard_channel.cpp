#include "comm/shard_channel.hpp"

#include <cstring>

#include "common/timer.hpp"

namespace qgtc::comm {

ShardMessage ShardChannel::send(const void* src, i64 bytes) {
  QGTC_CHECK(bytes >= 0, "message size must be non-negative");
  ShardMessage msg;
  msg.bytes = bytes;
  const Timer t;
  buf_.stage(src, bytes);
  msg.staging_seconds = t.seconds();
  msg.modeled_seconds = model_.transfer_seconds(bytes);
  total_bytes_ += bytes;
  return msg;
}

HaloExchange::HaloExchange(int num_shards, const InterconnectModel& model)
    : shards_(num_shards), model_(model) {
  QGTC_CHECK(num_shards >= 1, "halo exchange needs at least one shard");
  inbound_.reserve(static_cast<std::size_t>(shards_));
  for (int s = 0; s < shards_; ++s) inbound_.emplace_back(model_);
  matrix_ = std::make_unique<std::atomic<i64>[]>(
      static_cast<std::size_t>(shards_) * static_cast<std::size_t>(shards_));
  for (int i = 0; i < shards_ * shards_; ++i) {
    matrix_[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
  }
}

HaloExchange::BatchHalo HaloExchange::exchange(
    const store::FeatureSource& features, std::span<const i32> nodes,
    std::span<const i32> owner, int self, MatrixF* gathered) {
  QGTC_CHECK(self >= 0 && self < shards_, "destination shard out of range");
  BatchHalo out;
  const i64 dim = features.cols();
  const i64 row_bytes = dim * static_cast<i64>(sizeof(float));

  // Group the batch's foreign rows by owning shard: one message per source
  // shard is the all-to-all shape (a real transport coalesces exactly this
  // way; charging per-row latency would overstate initiation cost by the
  // halo size).
  std::vector<std::vector<i32>> by_owner(static_cast<std::size_t>(shards_));
  std::vector<std::vector<i64>> slot_of(static_cast<std::size_t>(shards_));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const i32 node = nodes[i];
    QGTC_CHECK(node >= 0 && static_cast<std::size_t>(node) < owner.size(),
               "batch node outside owner map");
    const i32 src = owner[static_cast<std::size_t>(node)];
    if (src == self) continue;
    QGTC_CHECK(src >= 0 && src < shards_, "owner shard out of range");
    by_owner[static_cast<std::size_t>(src)].push_back(node);
    slot_of[static_cast<std::size_t>(src)].push_back(static_cast<i64>(i));
  }

  if (gathered != nullptr) {
    *gathered = MatrixF(static_cast<i64>(nodes.size()), dim, 0.0f);
  }

  ShardChannel& channel = inbound_[static_cast<std::size_t>(self)];
  channel.clear();
  for (int src = 0; src < shards_; ++src) {
    const std::vector<i32>& remote = by_owner[static_cast<std::size_t>(src)];
    if (remote.empty()) continue;
    // The source shard's gather is the payload pack; staging it into the
    // destination channel is the measured message copy.
    const MatrixF payload = features.gather(remote);
    const i64 offset = channel.staged_bytes();
    const ShardMessage msg =
        channel.send(payload.data(), payload.size() * static_cast<i64>(sizeof(float)));
    out.halo_nodes += static_cast<i64>(remote.size());
    out.bytes += msg.bytes;
    out.messages += 1;
    out.wire_seconds += msg.modeled_seconds;
    out.staging_seconds += msg.staging_seconds;
    matrix_[static_cast<std::size_t>(src) * static_cast<std::size_t>(shards_) +
            static_cast<std::size_t>(self)]
        .fetch_add(msg.bytes, std::memory_order_relaxed);
    if (gathered != nullptr) {
      // Scatter the channel-staged rows (not `payload` — the test surface is
      // that bytes survive the modelled wire) back to their batch slots.
      const u8* base = channel.data() + offset;
      const std::vector<i64>& slots = slot_of[static_cast<std::size_t>(src)];
      for (std::size_t r = 0; r < slots.size(); ++r) {
        std::memcpy(gathered->row(slots[r]).data(),
                    base + static_cast<i64>(r) * row_bytes,
                    static_cast<std::size_t>(row_bytes));
      }
    }
  }
  return out;
}

i64 HaloExchange::bytes_moved(int src, int dst) const {
  QGTC_CHECK(src >= 0 && src < shards_ && dst >= 0 && dst < shards_,
             "shard index out of range");
  return matrix_[static_cast<std::size_t>(src) * static_cast<std::size_t>(shards_) +
                 static_cast<std::size_t>(dst)]
      .load(std::memory_order_relaxed);
}

i64 HaloExchange::total_bytes() const {
  i64 total = 0;
  for (int i = 0; i < shards_ * shards_; ++i) {
    total += matrix_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace qgtc::comm
