// Quantization of fp32 values to q-bit unsigned integers (paper §3, Eq. 2):
//
//   alpha_q = floor((alpha - alpha_min) / scale),
//   scale   = (alpha_max - alpha_min) / 2^q,
//
// with alpha_min / alpha_max empirical bounds. Values are clamped into
// [0, 2^q - 1] so out-of-range inputs saturate instead of wrapping.
#pragma once

#include "common/defs.hpp"
#include "common/matrix.hpp"

namespace qgtc {

struct QuantParams {
  float alpha_min = 0.0f;
  float alpha_max = 1.0f;
  int bits = 8;

  /// Eq. 2 scale: value range divided by the q-bit code range.
  [[nodiscard]] float scale() const {
    return (alpha_max - alpha_min) / static_cast<float>(1u << bits);
  }
  /// Largest representable code.
  [[nodiscard]] i32 qmax() const { return static_cast<i32>((1u << bits) - 1); }
};

/// Derive empirical bounds from the data itself (the "determined by users or
/// application settings" case defaults to observed min/max).
QuantParams quant_params_from_data(const MatrixF& m, int bits);

/// Quantize a single value per Eq. 2 (floor + clamp).
i32 quantize_value(float alpha, const QuantParams& p);

/// Dequantize a code back to fp32 (code-midpoint convention, so the
/// round-trip error of quantize->dequantize is bounded by scale/2 + ulp).
float dequantize_value(i32 q, const QuantParams& p);

/// Elementwise quantization of a matrix.
MatrixI32 quantize_matrix(const MatrixF& m, const QuantParams& p);

/// Elementwise dequantization of a matrix.
MatrixF dequantize_matrix(const MatrixI32& q, const QuantParams& p);

}  // namespace qgtc
