// Tile-sparse 1-bit matrices: the structural counterpart of zero-tile
// jumping (paper §4.1/§4.3, Figure 8). Batched subgraph adjacencies are
// overwhelmingly all-zero 8x128 tiles, so instead of materialising a dense
// BitMatrix and scanning it into a flag array, this layout stores *only* the
// nonzero tiles in a tile-CSR:
//
//   row_ptr  (tiles_m + 1)      offsets into col_idx / payload, per row tile
//   col_idx  (nnz_tiles)        K-tile column index of each stored tile
//   payload  (nnz_tiles x 32)   the tile's 8 rows x 4 words, row-major
//
// A stored tile's rows are contiguous with stride kTileKWords, so every
// SubstrateBackend consumes it through the ordinary load_a path. Jumping is
// free: kernels iterate stored tiles and never test a flag, and the transfer
// path ships payload + indices instead of the dense bit plane.
//
// The layout is A-side only (kRowMajorK semantics): it feeds the left
// operand of aggregation, which is the one operand the batching structure
// makes sparse. Weight and feature operands stay dense BitMatrix planes.
#pragma once

#include <vector>

#include "bittensor/bit_matrix.hpp"

namespace qgtc {

class TileSparseBitMatrix {
 public:
  /// u32 words per stored 8x128 tile (8 rows x 4 words).
  static constexpr i64 kTileWords = kTileM * kTileKWords;

  TileSparseBitMatrix() = default;

  /// Empty matrix of logical shape rows x cols (PAD8 rows, PAD128 cols —
  /// the §4.2 A-side tile padding). Tiles are added via append_tile().
  TileSparseBitMatrix(i64 rows, i64 cols);

  /// Converts a dense kRowMajorK matrix, storing only its nonzero tiles
  /// (the §4.3 OR test applied once at build).
  static TileSparseBitMatrix from_bit_matrix(const BitMatrix& dense);

  /// Densifies back to a kRowMajorK BitMatrix (tests / fallback paths).
  [[nodiscard]] BitMatrix to_bit_matrix() const;

  [[nodiscard]] i64 rows() const { return rows_; }
  [[nodiscard]] i64 cols() const { return cols_; }
  [[nodiscard]] i64 padded_rows() const { return padded_rows_; }
  [[nodiscard]] i64 padded_cols() const { return padded_cols_; }
  [[nodiscard]] i64 tiles_m() const { return tiles_m_; }
  [[nodiscard]] i64 tiles_k() const { return tiles_k_; }

  [[nodiscard]] i64 nnz_tiles() const { return static_cast<i64>(col_idx_.size()); }
  [[nodiscard]] i64 total_tiles() const { return tiles_m_ * tiles_k_; }
  /// Fraction of tiles actually stored (Figure 8's metric, structurally).
  [[nodiscard]] double nonzero_ratio() const {
    return total_tiles() == 0
               ? 0.0
               : static_cast<double>(nnz_tiles()) /
                     static_cast<double>(total_tiles());
  }

  /// Stored-tile range of row tile tm: handles in [row_begin, row_end).
  [[nodiscard]] i64 row_begin(i64 tm) const {
    return static_cast<i64>(row_ptr_[static_cast<std::size_t>(tm)]);
  }
  [[nodiscard]] i64 row_end(i64 tm) const {
    return static_cast<i64>(row_ptr_[static_cast<std::size_t>(tm) + 1]);
  }
  /// Stored tiles in row tile tm — the single source of truth for the
  /// per-row schedule length (jumped tiles are tiles_k() - row_nnz(tm)).
  [[nodiscard]] i64 row_nnz(i64 tm) const { return row_end(tm) - row_begin(tm); }
  /// K-tile column of stored tile `t` (col_idx ascending within each row).
  [[nodiscard]] i64 tile_col(i64 t) const {
    return static_cast<i64>(col_idx_[static_cast<std::size_t>(t)]);
  }
  /// First payload word of stored tile `t` (8 rows, kTileKWords apart).
  [[nodiscard]] const u32* tile_words(i64 t) const {
    return payload_.data() + t * kTileWords;
  }
  [[nodiscard]] u32* tile_words(i64 t) { return payload_.data() + t * kTileWords; }

  /// Bit test through the sparse structure (tests / debugging; O(log nnz_row)).
  [[nodiscard]] bool get(i64 r, i64 c) const;

  // Transfer accounting + staging views (§4.6). Indices ship as u32.
  [[nodiscard]] i64 payload_bytes() const {
    return static_cast<i64>(payload_.size() * sizeof(u32));
  }
  [[nodiscard]] i64 index_bytes() const {
    return static_cast<i64>((col_idx_.size() + row_ptr_.size()) * sizeof(u32));
  }
  /// Total bytes the packed-transfer path ships for this operand.
  [[nodiscard]] i64 bytes() const { return payload_bytes() + index_bytes(); }

  [[nodiscard]] const u32* payload_data() const { return payload_.data(); }
  [[nodiscard]] const u32* col_idx_data() const { return col_idx_.data(); }
  [[nodiscard]] const u32* row_ptr_data() const { return row_ptr_.data(); }

  // Builder surface: append stored tiles with non-decreasing tm and strictly
  // increasing tk within a row tile, then finalize() once. Returns the
  // tile's 32 zeroed payload words for the caller to fill — valid only until
  // the next append_tile() (the payload vector may reallocate).
  u32* append_tile(i64 tm, i64 tk);
  void finalize();

 private:
  i64 rows_ = 0, cols_ = 0;
  i64 padded_rows_ = 0, padded_cols_ = 0;
  i64 tiles_m_ = 0, tiles_k_ = 0;
  i64 open_tm_ = 0, open_tk_ = -1;  // append-order enforcement
  bool finalized_ = false;
  std::vector<u32> row_ptr_;  // tiles_m + 1 offsets
  std::vector<u32> col_idx_;  // nnz tile K-columns
  AlignedVector<u32> payload_;
};

}  // namespace qgtc
