#include "bittensor/bit_matrix.hpp"

#include "parallel/parallel_for.hpp"

namespace qgtc {

BitMatrix::BitMatrix(i64 rows, i64 cols, BitLayout layout, PadPolicy non_k_pad)
    : rows_(rows), cols_(cols), layout_(layout) {
  QGTC_CHECK(rows >= 0 && cols >= 0, "BitMatrix dimensions must be non-negative");
  if (layout == BitLayout::kRowMajorK) {
    // K runs along columns: PAD128 on K, caller-chosen pad on rows.
    padded_rows_ = apply_pad(rows, non_k_pad);
    padded_cols_ = pad128(cols);
    lines_ = padded_rows_;
    k_words_ = padded_cols_ / kWordBits;
  } else {
    // K runs along rows: PAD128 on K, caller-chosen pad on columns.
    padded_rows_ = pad128(rows);
    padded_cols_ = apply_pad(cols, non_k_pad);
    lines_ = padded_cols_;
    k_words_ = padded_rows_ / kWordBits;
  }
  data_.assign(static_cast<std::size_t>(lines_ * k_words_), 0u);
}

bool BitMatrix::get(i64 r, i64 c) const {
  if (layout_ == BitLayout::kRowMajorK) {
    const u32 w = row_words(r)[c / kWordBits];
    return (w >> (c % kWordBits)) & 1u;
  }
  const u32 w = col_words(c)[r / kWordBits];
  return (w >> (r % kWordBits)) & 1u;
}

void BitMatrix::set(i64 r, i64 c, bool v) {
  u32* w;
  int bit;
  if (layout_ == BitLayout::kRowMajorK) {
    w = &row_words(r)[c / kWordBits];
    bit = static_cast<int>(c % kWordBits);
  } else {
    w = &col_words(c)[r / kWordBits];
    bit = static_cast<int>(r % kWordBits);
  }
  if (v) {
    *w |= (1u << bit);
  } else {
    *w &= ~(1u << bit);
  }
}

namespace {

/// Shared packing driver: predicate(r, c) decides each logical bit.
template <typename Pred>
BitMatrix pack_with(const MatrixI32& m, BitLayout layout, PadPolicy pad,
                    Pred&& pred) {
  BitMatrix bm(m.rows(), m.cols(), layout, pad);
  if (layout == BitLayout::kRowMajorK) {
    parallel_for(0, m.rows(), [&](i64 r) {
      u32* words = bm.row_words(r);
      for (i64 c = 0; c < m.cols(); ++c) {
        if (pred(r, c)) words[c / kWordBits] |= (1u << (c % kWordBits));
      }
    });
  } else {
    parallel_for(0, m.cols(), [&](i64 c) {
      u32* words = bm.col_words(c);
      for (i64 r = 0; r < m.rows(); ++r) {
        if (pred(r, c)) words[r / kWordBits] |= (1u << (r % kWordBits));
      }
    });
  }
  return bm;
}

}  // namespace

BitMatrix pack_nonzero(const MatrixI32& m, BitLayout layout, PadPolicy pad) {
  return pack_with(m, layout, pad, [&](i64 r, i64 c) { return m(r, c) != 0; });
}

BitMatrix pack_bit_plane(const MatrixI32& m, int bit, BitLayout layout,
                         PadPolicy pad) {
  QGTC_CHECK(bit >= 0 && bit < 31, "bit-plane index out of range");
  return pack_with(m, layout, pad,
                   [&](i64 r, i64 c) { return (m(r, c) >> bit) & 1; });
}

MatrixI32 unpack_bits(const BitMatrix& bm) {
  MatrixI32 out(bm.rows(), bm.cols(), 0);
  for (i64 r = 0; r < bm.rows(); ++r) {
    for (i64 c = 0; c < bm.cols(); ++c) out(r, c) = bm.get(r, c) ? 1 : 0;
  }
  return out;
}

}  // namespace qgtc
