// Packed 1-bit matrices with the two compression layouts of paper §4.2
// (Figure 4), both 32-bit aligned and little-endian within each word:
//
//  * kRowMajorK ("column-wise compression", used for the left operand A):
//    each storage word holds 32 consecutive K-columns of one row, so a row's
//    128-bit tile slice is 4 contiguous words — coalesced across-column
//    access along each row.
//
//  * kColMajorK ("row-wise compression", used for the right operand B):
//    each storage word holds 32 consecutive K-rows of one column — coalesced
//    across-row access along each column.
//
// Both layouts pad the K extent to PAD128 and the non-K extent to PAD8 or
// PAD128 depending on whether the consumer is a TC tile (8) or the next
// layer's packed operand (128) — paper §4.2's two padding strategies.
#pragma once

#include "common/defs.hpp"
#include "common/matrix.hpp"

namespace qgtc {

enum class BitLayout {
  kRowMajorK,  // A-side: words run along K within a row
  kColMajorK,  // B-side: words run along K within a column
};

/// Non-K-extent padding policy (paper §4.2): PAD8 when the result feeds an
/// output layer, PAD128 when it becomes the next layer's packed operand.
enum class PadPolicy { kTile8, kOperand128 };

[[nodiscard]] constexpr i64 apply_pad(i64 x, PadPolicy p) {
  return p == PadPolicy::kTile8 ? pad8(x) : pad128(x);
}

class BitMatrix {
 public:
  BitMatrix() = default;

  /// Allocates a zeroed packed matrix for logical shape rows x cols.
  /// For kRowMajorK, K == cols; for kColMajorK, K == rows.
  BitMatrix(i64 rows, i64 cols, BitLayout layout,
            PadPolicy non_k_pad = PadPolicy::kTile8);

  [[nodiscard]] i64 rows() const { return rows_; }
  [[nodiscard]] i64 cols() const { return cols_; }
  [[nodiscard]] i64 padded_rows() const { return padded_rows_; }
  [[nodiscard]] i64 padded_cols() const { return padded_cols_; }
  [[nodiscard]] BitLayout layout() const { return layout_; }

  /// Number of u32 words along the packed (K) extent of one line.
  [[nodiscard]] i64 k_words() const { return k_words_; }
  /// Number of packed lines (rows for kRowMajorK, columns for kColMajorK).
  [[nodiscard]] i64 lines() const { return lines_; }

  /// Pointer to the packed words of row r (kRowMajorK only).
  [[nodiscard]] const u32* row_words(i64 r) const {
    return data_.data() + r * k_words_;
  }
  [[nodiscard]] u32* row_words(i64 r) { return data_.data() + r * k_words_; }

  /// Pointer to the packed words of column c (kColMajorK only).
  [[nodiscard]] const u32* col_words(i64 c) const {
    return data_.data() + c * k_words_;
  }
  [[nodiscard]] u32* col_words(i64 c) { return data_.data() + c * k_words_; }

  [[nodiscard]] bool get(i64 r, i64 c) const;
  void set(i64 r, i64 c, bool v);

  /// Bytes actually held by the packed representation (the number the
  /// bandwidth-optimised transfer path ships over PCIe).
  [[nodiscard]] i64 bytes() const {
    return static_cast<i64>(data_.size() * sizeof(u32));
  }

  [[nodiscard]] const u32* data() const { return data_.data(); }
  [[nodiscard]] u32* data() { return data_.data(); }

  void clear_all() { std::fill(data_.begin(), data_.end(), 0u); }

 private:
  i64 rows_ = 0, cols_ = 0;
  i64 padded_rows_ = 0, padded_cols_ = 0;
  i64 lines_ = 0, k_words_ = 0;
  BitLayout layout_ = BitLayout::kRowMajorK;
  AlignedVector<u32> data_;
};

/// Packs the non-zero pattern of an int32 matrix (value != 0 -> bit 1).
BitMatrix pack_nonzero(const MatrixI32& m, BitLayout layout,
                       PadPolicy non_k_pad = PadPolicy::kTile8);

/// Packs bit-plane `bit` of a quantized int32 matrix.
BitMatrix pack_bit_plane(const MatrixI32& m, int bit, BitLayout layout,
                         PadPolicy non_k_pad = PadPolicy::kTile8);

/// Unpacks to a 0/1 int32 matrix of the logical shape (drops padding).
MatrixI32 unpack_bits(const BitMatrix& bm);

}  // namespace qgtc
