#include "bittensor/tile_sparse.hpp"

#include <algorithm>
#include <cstring>

#include "tcsim/wmma.hpp"

namespace qgtc {

TileSparseBitMatrix::TileSparseBitMatrix(i64 rows, i64 cols)
    : rows_(rows),
      cols_(cols),
      padded_rows_(pad8(rows)),
      padded_cols_(pad128(cols)),
      tiles_m_(pad8(rows) / kTileM),
      tiles_k_(pad128(cols) / kTileK) {
  QGTC_CHECK(rows >= 0 && cols >= 0, "negative matrix shape");
  row_ptr_.assign(static_cast<std::size_t>(tiles_m_) + 1, 0);
}

u32* TileSparseBitMatrix::append_tile(i64 tm, i64 tk) {
  QGTC_CHECK(!finalized_, "append_tile after finalize");
  QGTC_CHECK(tm >= 0 && tm < tiles_m_ && tk >= 0 && tk < tiles_k_,
             "tile coordinates out of range");
  QGTC_CHECK(tm > open_tm_ || (tm == open_tm_ && tk > open_tk_),
             "tiles must be appended in (tm, tk) order");
  open_tm_ = tm;
  open_tk_ = tk;
  col_idx_.push_back(static_cast<u32>(tk));
  payload_.resize(payload_.size() + static_cast<std::size_t>(kTileWords), 0u);
  row_ptr_[static_cast<std::size_t>(tm) + 1] = static_cast<u32>(nnz_tiles());
  return payload_.data() + (nnz_tiles() - 1) * kTileWords;
}

void TileSparseBitMatrix::finalize() {
  // Ordered appends leave untouched rows at 0; a forward prefix-max turns
  // the per-row end marks into proper CSR offsets.
  for (std::size_t i = 1; i < row_ptr_.size(); ++i) {
    row_ptr_[i] = std::max(row_ptr_[i], row_ptr_[i - 1]);
  }
  finalized_ = true;
}

TileSparseBitMatrix TileSparseBitMatrix::from_bit_matrix(const BitMatrix& dense) {
  QGTC_CHECK(dense.layout() == BitLayout::kRowMajorK,
             "tile-sparse matrices are defined on the A-side (kRowMajorK) layout");
  TileSparseBitMatrix out(dense.rows(), dense.cols());
  // A PAD128-row dense operand has more row tiles than pad8 implies; adopt
  // the dense matrix's actual padding so the tile grids agree.
  out.padded_rows_ = dense.padded_rows();
  out.tiles_m_ = dense.padded_rows() / kTileM;
  out.row_ptr_.assign(static_cast<std::size_t>(out.tiles_m_) + 1, 0);
  const i64 stride = dense.k_words();
  for (i64 tm = 0; tm < out.tiles_m_; ++tm) {
    const u32* block = dense.row_words(tm * kTileM);
    for (i64 tk = 0; tk < out.tiles_k_; ++tk) {
      if (tcsim::tile_is_zero(block + tk * kTileKWords, stride)) continue;
      u32* dst = out.append_tile(tm, tk);
      for (int r = 0; r < kTileM; ++r) {
        std::memcpy(dst + r * kTileKWords, block + r * stride + tk * kTileKWords,
                    kTileKWords * sizeof(u32));
      }
    }
  }
  out.finalize();
  return out;
}

BitMatrix TileSparseBitMatrix::to_bit_matrix() const {
  QGTC_CHECK(finalized_, "to_bit_matrix() before finalize()");
  BitMatrix out(rows_, cols_, BitLayout::kRowMajorK, PadPolicy::kTile8);
  QGTC_CHECK(out.padded_rows() == padded_rows_,
             "densify only supports the PAD8 row padding this layout uses");
  const i64 stride = out.k_words();
  for (i64 tm = 0; tm < tiles_m_; ++tm) {
    for (i64 t = row_begin(tm); t < row_end(tm); ++t) {
      const i64 tk = tile_col(t);
      const u32* src = tile_words(t);
      u32* block = out.row_words(tm * kTileM);
      for (int r = 0; r < kTileM; ++r) {
        std::memcpy(block + r * stride + tk * kTileKWords, src + r * kTileKWords,
                    kTileKWords * sizeof(u32));
      }
    }
  }
  return out;
}

bool TileSparseBitMatrix::get(i64 r, i64 c) const {
  // Mid-build row_ptr holds raw per-row end marks, not CSR offsets — a
  // row_begin/row_end read there is an invalid range.
  QGTC_CHECK(finalized_, "get() before finalize()");
  QGTC_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_, "bit index out of range");
  const i64 tm = r / kTileM;
  const i64 tk = c / kTileK;
  const u32* lo = col_idx_.data() + row_begin(tm);
  const u32* hi = col_idx_.data() + row_end(tm);
  const u32* it = std::lower_bound(lo, hi, static_cast<u32>(tk));
  if (it == hi || *it != static_cast<u32>(tk)) return false;
  const i64 t = it - col_idx_.data();
  const i64 in_tile_col = c % kTileK;
  const u32 word =
      tile_words(t)[(r % kTileM) * kTileKWords + in_tile_col / kWordBits];
  return ((word >> (in_tile_col % kWordBits)) & 1u) != 0;
}

}  // namespace qgtc
