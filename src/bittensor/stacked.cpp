#include "bittensor/stacked.hpp"

namespace qgtc {

StackedBitTensor StackedBitTensor::decompose(const MatrixI32& q, int bits,
                                             BitLayout layout,
                                             PadPolicy non_k_pad) {
  QGTC_CHECK(bits >= 1 && bits <= 31, "stacked bit count must be in [1,31]");
  StackedBitTensor t;
  t.rows_ = q.rows();
  t.cols_ = q.cols();
  t.layout_ = layout;
  t.planes_.reserve(static_cast<std::size_t>(bits));
  for (int b = 0; b < bits; ++b) {
    t.planes_.push_back(pack_bit_plane(q, b, layout, non_k_pad));
  }
  return t;
}

StackedBitTensor StackedBitTensor::zeros(i64 rows, i64 cols, int bits,
                                         BitLayout layout,
                                         PadPolicy non_k_pad) {
  QGTC_CHECK(bits >= 1 && bits <= 31, "stacked bit count must be in [1,31]");
  StackedBitTensor t;
  t.rows_ = rows;
  t.cols_ = cols;
  t.layout_ = layout;
  t.planes_.reserve(static_cast<std::size_t>(bits));
  for (int b = 0; b < bits; ++b) {
    t.planes_.emplace_back(rows, cols, layout, non_k_pad);
  }
  return t;
}

MatrixI32 StackedBitTensor::compose() const {
  MatrixI32 out(rows_, cols_, 0);
  for (int b = 0; b < bits(); ++b) {
    const BitMatrix& p = plane(b);
    for (i64 r = 0; r < rows_; ++r) {
      for (i64 c = 0; c < cols_; ++c) {
        out(r, c) |= (p.get(r, c) ? 1 : 0) << b;
      }
    }
  }
  return out;
}

i64 StackedBitTensor::bytes() const {
  i64 total = 0;
  for (const BitMatrix& p : planes_) total += p.bytes();
  return total;
}

}  // namespace qgtc
