#include "bittensor/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/parallel_for.hpp"

namespace qgtc {

QuantParams quant_params_from_data(const MatrixF& m, int bits) {
  QGTC_CHECK(bits >= 1 && bits <= 31, "quantization bits must be in [1,31]");
  float lo = 0.0f, hi = 0.0f;
  if (m.size() > 0) {
    lo = hi = m.data()[0];
    for (i64 i = 1; i < m.size(); ++i) {
      lo = std::min(lo, m.data()[i]);
      hi = std::max(hi, m.data()[i]);
    }
  }
  if (hi <= lo) hi = lo + 1.0f;  // degenerate range: keep scale positive
  return QuantParams{lo, hi, bits};
}

i32 quantize_value(float alpha, const QuantParams& p) {
  // Clamp in double before the integer cast: at 31 bits the unclamped code
  // can exceed the int32 range, and float->int overflow is UB.
  const double s = p.scale();
  const double q = std::floor((static_cast<double>(alpha) - p.alpha_min) / s);
  const double clamped = std::clamp(q, 0.0, static_cast<double>(p.qmax()));
  return static_cast<i32>(clamped);
}

float dequantize_value(i32 q, const QuantParams& p) {
  return p.alpha_min + (static_cast<float>(q) + 0.5f) * p.scale();
}

MatrixI32 quantize_matrix(const MatrixF& m, const QuantParams& p) {
  MatrixI32 out(m.rows(), m.cols());
  parallel_for(0, m.size(), [&](i64 i) {
    out.data()[i] = quantize_value(m.data()[i], p);
  });
  return out;
}

MatrixF dequantize_matrix(const MatrixI32& q, const QuantParams& p) {
  MatrixF out(q.rows(), q.cols());
  parallel_for(0, q.size(), [&](i64 i) {
    out.data()[i] = dequantize_value(q.data()[i], p);
  });
  return out;
}

}  // namespace qgtc
