// 3D-stacked bit compression (paper §4.2, Figure 4): an s-bit matrix is
// stored as s packed 1-bit planes stacked along the z-axis. Plane b holds
// bit b (LSB = plane 0) of every quantized element. This is the bit-Tensor
// storage format the whole QGTC kernel stack computes on.
#pragma once

#include <vector>

#include "bittensor/bit_matrix.hpp"
#include "bittensor/quantize.hpp"

namespace qgtc {

class StackedBitTensor {
 public:
  StackedBitTensor() = default;

  /// Decompose a quantized int32 matrix (values in [0, 2^bits)) into `bits`
  /// stacked planes. `bitDecompose` of Algorithm 1.
  static StackedBitTensor decompose(const MatrixI32& q, int bits,
                                    BitLayout layout,
                                    PadPolicy non_k_pad = PadPolicy::kTile8);

  /// All-zero planes of the given logical shape (cheap output allocation for
  /// fused kernels — no input matrix is scanned).
  static StackedBitTensor zeros(i64 rows, i64 cols, int bits, BitLayout layout,
                                PadPolicy non_k_pad = PadPolicy::kTile8);

  [[nodiscard]] int bits() const { return static_cast<int>(planes_.size()); }
  [[nodiscard]] i64 rows() const { return rows_; }
  [[nodiscard]] i64 cols() const { return cols_; }
  [[nodiscard]] BitLayout layout() const { return layout_; }

  [[nodiscard]] const BitMatrix& plane(int b) const { return planes_[static_cast<std::size_t>(b)]; }
  [[nodiscard]] BitMatrix& plane(int b) { return planes_[static_cast<std::size_t>(b)]; }

  /// Recompose the quantized int32 matrix: sum_b plane_b << b.
  /// (`Tensor.to_val` of paper §5.)
  [[nodiscard]] MatrixI32 compose() const;

  /// Total packed bytes across all planes (the PCIe payload size).
  [[nodiscard]] i64 bytes() const;

 private:
  i64 rows_ = 0, cols_ = 0;
  BitLayout layout_ = BitLayout::kRowMajorK;
  std::vector<BitMatrix> planes_;
};

}  // namespace qgtc
